# Empty dependencies file for polaris_suite.
# This may be replaced when dependencies are built.
