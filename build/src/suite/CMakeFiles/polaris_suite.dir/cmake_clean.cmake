file(REMOVE_RECURSE
  "CMakeFiles/polaris_suite.dir/suite.cpp.o"
  "CMakeFiles/polaris_suite.dir/suite.cpp.o.d"
  "libpolaris_suite.a"
  "libpolaris_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
