file(REMOVE_RECURSE
  "libpolaris_suite.a"
)
