file(REMOVE_RECURSE
  "CMakeFiles/polaris_dep.dir/access.cpp.o"
  "CMakeFiles/polaris_dep.dir/access.cpp.o.d"
  "CMakeFiles/polaris_dep.dir/ddtest.cpp.o"
  "CMakeFiles/polaris_dep.dir/ddtest.cpp.o.d"
  "CMakeFiles/polaris_dep.dir/linear.cpp.o"
  "CMakeFiles/polaris_dep.dir/linear.cpp.o.d"
  "CMakeFiles/polaris_dep.dir/rangetest.cpp.o"
  "CMakeFiles/polaris_dep.dir/rangetest.cpp.o.d"
  "CMakeFiles/polaris_dep.dir/regions.cpp.o"
  "CMakeFiles/polaris_dep.dir/regions.cpp.o.d"
  "libpolaris_dep.a"
  "libpolaris_dep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_dep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
