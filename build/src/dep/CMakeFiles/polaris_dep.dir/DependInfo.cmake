
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dep/access.cpp" "src/dep/CMakeFiles/polaris_dep.dir/access.cpp.o" "gcc" "src/dep/CMakeFiles/polaris_dep.dir/access.cpp.o.d"
  "/root/repo/src/dep/ddtest.cpp" "src/dep/CMakeFiles/polaris_dep.dir/ddtest.cpp.o" "gcc" "src/dep/CMakeFiles/polaris_dep.dir/ddtest.cpp.o.d"
  "/root/repo/src/dep/linear.cpp" "src/dep/CMakeFiles/polaris_dep.dir/linear.cpp.o" "gcc" "src/dep/CMakeFiles/polaris_dep.dir/linear.cpp.o.d"
  "/root/repo/src/dep/rangetest.cpp" "src/dep/CMakeFiles/polaris_dep.dir/rangetest.cpp.o" "gcc" "src/dep/CMakeFiles/polaris_dep.dir/rangetest.cpp.o.d"
  "/root/repo/src/dep/regions.cpp" "src/dep/CMakeFiles/polaris_dep.dir/regions.cpp.o" "gcc" "src/dep/CMakeFiles/polaris_dep.dir/regions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/polaris_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/polaris_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/polaris_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/polaris_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
