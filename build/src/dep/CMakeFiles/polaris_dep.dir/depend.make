# Empty dependencies file for polaris_dep.
# This may be replaced when dependencies are built.
