file(REMOVE_RECURSE
  "libpolaris_dep.a"
)
