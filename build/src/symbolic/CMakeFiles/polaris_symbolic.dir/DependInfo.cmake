
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symbolic/compare.cpp" "src/symbolic/CMakeFiles/polaris_symbolic.dir/compare.cpp.o" "gcc" "src/symbolic/CMakeFiles/polaris_symbolic.dir/compare.cpp.o.d"
  "/root/repo/src/symbolic/context.cpp" "src/symbolic/CMakeFiles/polaris_symbolic.dir/context.cpp.o" "gcc" "src/symbolic/CMakeFiles/polaris_symbolic.dir/context.cpp.o.d"
  "/root/repo/src/symbolic/poly.cpp" "src/symbolic/CMakeFiles/polaris_symbolic.dir/poly.cpp.o" "gcc" "src/symbolic/CMakeFiles/polaris_symbolic.dir/poly.cpp.o.d"
  "/root/repo/src/symbolic/simplify.cpp" "src/symbolic/CMakeFiles/polaris_symbolic.dir/simplify.cpp.o" "gcc" "src/symbolic/CMakeFiles/polaris_symbolic.dir/simplify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/polaris_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
