file(REMOVE_RECURSE
  "CMakeFiles/polaris_symbolic.dir/compare.cpp.o"
  "CMakeFiles/polaris_symbolic.dir/compare.cpp.o.d"
  "CMakeFiles/polaris_symbolic.dir/context.cpp.o"
  "CMakeFiles/polaris_symbolic.dir/context.cpp.o.d"
  "CMakeFiles/polaris_symbolic.dir/poly.cpp.o"
  "CMakeFiles/polaris_symbolic.dir/poly.cpp.o.d"
  "CMakeFiles/polaris_symbolic.dir/simplify.cpp.o"
  "CMakeFiles/polaris_symbolic.dir/simplify.cpp.o.d"
  "libpolaris_symbolic.a"
  "libpolaris_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
