# Empty compiler generated dependencies file for polaris_symbolic.
# This may be replaced when dependencies are built.
