file(REMOVE_RECURSE
  "libpolaris_symbolic.a"
)
