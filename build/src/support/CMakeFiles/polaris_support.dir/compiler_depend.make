# Empty compiler generated dependencies file for polaris_support.
# This may be replaced when dependencies are built.
