file(REMOVE_RECURSE
  "CMakeFiles/polaris_support.dir/assert.cpp.o"
  "CMakeFiles/polaris_support.dir/assert.cpp.o.d"
  "CMakeFiles/polaris_support.dir/diagnostics.cpp.o"
  "CMakeFiles/polaris_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/polaris_support.dir/options.cpp.o"
  "CMakeFiles/polaris_support.dir/options.cpp.o.d"
  "CMakeFiles/polaris_support.dir/rational.cpp.o"
  "CMakeFiles/polaris_support.dir/rational.cpp.o.d"
  "CMakeFiles/polaris_support.dir/string_util.cpp.o"
  "CMakeFiles/polaris_support.dir/string_util.cpp.o.d"
  "libpolaris_support.a"
  "libpolaris_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
