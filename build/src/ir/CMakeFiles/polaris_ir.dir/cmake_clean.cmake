file(REMOVE_RECURSE
  "CMakeFiles/polaris_ir.dir/expr.cpp.o"
  "CMakeFiles/polaris_ir.dir/expr.cpp.o.d"
  "CMakeFiles/polaris_ir.dir/pattern.cpp.o"
  "CMakeFiles/polaris_ir.dir/pattern.cpp.o.d"
  "CMakeFiles/polaris_ir.dir/program.cpp.o"
  "CMakeFiles/polaris_ir.dir/program.cpp.o.d"
  "CMakeFiles/polaris_ir.dir/stmt.cpp.o"
  "CMakeFiles/polaris_ir.dir/stmt.cpp.o.d"
  "CMakeFiles/polaris_ir.dir/stmtlist.cpp.o"
  "CMakeFiles/polaris_ir.dir/stmtlist.cpp.o.d"
  "CMakeFiles/polaris_ir.dir/symbol.cpp.o"
  "CMakeFiles/polaris_ir.dir/symbol.cpp.o.d"
  "libpolaris_ir.a"
  "libpolaris_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
