file(REMOVE_RECURSE
  "libpolaris_ir.a"
)
