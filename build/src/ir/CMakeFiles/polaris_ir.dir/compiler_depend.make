# Empty compiler generated dependencies file for polaris_ir.
# This may be replaced when dependencies are built.
