file(REMOVE_RECURSE
  "CMakeFiles/polaris_machine.dir/machine.cpp.o"
  "CMakeFiles/polaris_machine.dir/machine.cpp.o.d"
  "libpolaris_machine.a"
  "libpolaris_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
