# Empty compiler generated dependencies file for polaris_machine.
# This may be replaced when dependencies are built.
