file(REMOVE_RECURSE
  "libpolaris_machine.a"
)
