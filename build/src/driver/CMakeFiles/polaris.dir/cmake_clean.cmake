file(REMOVE_RECURSE
  "CMakeFiles/polaris.dir/main.cpp.o"
  "CMakeFiles/polaris.dir/main.cpp.o.d"
  "polaris"
  "polaris.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
