# Empty dependencies file for polaris_driver.
# This may be replaced when dependencies are built.
