file(REMOVE_RECURSE
  "libpolaris_driver.a"
)
