file(REMOVE_RECURSE
  "CMakeFiles/polaris_driver.dir/compiler.cpp.o"
  "CMakeFiles/polaris_driver.dir/compiler.cpp.o.d"
  "libpolaris_driver.a"
  "libpolaris_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
