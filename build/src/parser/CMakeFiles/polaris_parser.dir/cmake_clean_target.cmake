file(REMOVE_RECURSE
  "libpolaris_parser.a"
)
