file(REMOVE_RECURSE
  "CMakeFiles/polaris_parser.dir/lexer.cpp.o"
  "CMakeFiles/polaris_parser.dir/lexer.cpp.o.d"
  "CMakeFiles/polaris_parser.dir/parser.cpp.o"
  "CMakeFiles/polaris_parser.dir/parser.cpp.o.d"
  "CMakeFiles/polaris_parser.dir/printer.cpp.o"
  "CMakeFiles/polaris_parser.dir/printer.cpp.o.d"
  "libpolaris_parser.a"
  "libpolaris_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
