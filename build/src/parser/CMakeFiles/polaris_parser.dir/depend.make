# Empty dependencies file for polaris_parser.
# This may be replaced when dependencies are built.
