file(REMOVE_RECURSE
  "CMakeFiles/polaris_runtime.dir/pdtest.cpp.o"
  "CMakeFiles/polaris_runtime.dir/pdtest.cpp.o.d"
  "libpolaris_runtime.a"
  "libpolaris_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
