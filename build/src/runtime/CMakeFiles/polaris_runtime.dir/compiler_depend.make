# Empty compiler generated dependencies file for polaris_runtime.
# This may be replaced when dependencies are built.
