file(REMOVE_RECURSE
  "libpolaris_runtime.a"
)
