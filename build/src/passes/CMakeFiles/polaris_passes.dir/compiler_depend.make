# Empty compiler generated dependencies file for polaris_passes.
# This may be replaced when dependencies are built.
