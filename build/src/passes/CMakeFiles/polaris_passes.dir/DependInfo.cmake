
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passes/constprop.cpp" "src/passes/CMakeFiles/polaris_passes.dir/constprop.cpp.o" "gcc" "src/passes/CMakeFiles/polaris_passes.dir/constprop.cpp.o.d"
  "/root/repo/src/passes/doall.cpp" "src/passes/CMakeFiles/polaris_passes.dir/doall.cpp.o" "gcc" "src/passes/CMakeFiles/polaris_passes.dir/doall.cpp.o.d"
  "/root/repo/src/passes/forwardsub.cpp" "src/passes/CMakeFiles/polaris_passes.dir/forwardsub.cpp.o" "gcc" "src/passes/CMakeFiles/polaris_passes.dir/forwardsub.cpp.o.d"
  "/root/repo/src/passes/induction.cpp" "src/passes/CMakeFiles/polaris_passes.dir/induction.cpp.o" "gcc" "src/passes/CMakeFiles/polaris_passes.dir/induction.cpp.o.d"
  "/root/repo/src/passes/inliner.cpp" "src/passes/CMakeFiles/polaris_passes.dir/inliner.cpp.o" "gcc" "src/passes/CMakeFiles/polaris_passes.dir/inliner.cpp.o.d"
  "/root/repo/src/passes/normalize.cpp" "src/passes/CMakeFiles/polaris_passes.dir/normalize.cpp.o" "gcc" "src/passes/CMakeFiles/polaris_passes.dir/normalize.cpp.o.d"
  "/root/repo/src/passes/privatization.cpp" "src/passes/CMakeFiles/polaris_passes.dir/privatization.cpp.o" "gcc" "src/passes/CMakeFiles/polaris_passes.dir/privatization.cpp.o.d"
  "/root/repo/src/passes/reduction.cpp" "src/passes/CMakeFiles/polaris_passes.dir/reduction.cpp.o" "gcc" "src/passes/CMakeFiles/polaris_passes.dir/reduction.cpp.o.d"
  "/root/repo/src/passes/strength.cpp" "src/passes/CMakeFiles/polaris_passes.dir/strength.cpp.o" "gcc" "src/passes/CMakeFiles/polaris_passes.dir/strength.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dep/CMakeFiles/polaris_dep.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/polaris_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/polaris_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/polaris_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/polaris_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
