file(REMOVE_RECURSE
  "libpolaris_passes.a"
)
