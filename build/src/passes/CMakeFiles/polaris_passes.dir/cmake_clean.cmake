file(REMOVE_RECURSE
  "CMakeFiles/polaris_passes.dir/constprop.cpp.o"
  "CMakeFiles/polaris_passes.dir/constprop.cpp.o.d"
  "CMakeFiles/polaris_passes.dir/doall.cpp.o"
  "CMakeFiles/polaris_passes.dir/doall.cpp.o.d"
  "CMakeFiles/polaris_passes.dir/forwardsub.cpp.o"
  "CMakeFiles/polaris_passes.dir/forwardsub.cpp.o.d"
  "CMakeFiles/polaris_passes.dir/induction.cpp.o"
  "CMakeFiles/polaris_passes.dir/induction.cpp.o.d"
  "CMakeFiles/polaris_passes.dir/inliner.cpp.o"
  "CMakeFiles/polaris_passes.dir/inliner.cpp.o.d"
  "CMakeFiles/polaris_passes.dir/normalize.cpp.o"
  "CMakeFiles/polaris_passes.dir/normalize.cpp.o.d"
  "CMakeFiles/polaris_passes.dir/privatization.cpp.o"
  "CMakeFiles/polaris_passes.dir/privatization.cpp.o.d"
  "CMakeFiles/polaris_passes.dir/reduction.cpp.o"
  "CMakeFiles/polaris_passes.dir/reduction.cpp.o.d"
  "CMakeFiles/polaris_passes.dir/strength.cpp.o"
  "CMakeFiles/polaris_passes.dir/strength.cpp.o.d"
  "libpolaris_passes.a"
  "libpolaris_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
