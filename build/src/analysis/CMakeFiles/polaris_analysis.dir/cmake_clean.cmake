file(REMOVE_RECURSE
  "CMakeFiles/polaris_analysis.dir/cfg.cpp.o"
  "CMakeFiles/polaris_analysis.dir/cfg.cpp.o.d"
  "CMakeFiles/polaris_analysis.dir/gsa.cpp.o"
  "CMakeFiles/polaris_analysis.dir/gsa.cpp.o.d"
  "CMakeFiles/polaris_analysis.dir/purity.cpp.o"
  "CMakeFiles/polaris_analysis.dir/purity.cpp.o.d"
  "CMakeFiles/polaris_analysis.dir/structure.cpp.o"
  "CMakeFiles/polaris_analysis.dir/structure.cpp.o.d"
  "libpolaris_analysis.a"
  "libpolaris_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
