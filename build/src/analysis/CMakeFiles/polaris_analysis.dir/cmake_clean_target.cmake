file(REMOVE_RECURSE
  "libpolaris_analysis.a"
)
