# Empty compiler generated dependencies file for polaris_analysis.
# This may be replaced when dependencies are built.
