
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cfg.cpp" "src/analysis/CMakeFiles/polaris_analysis.dir/cfg.cpp.o" "gcc" "src/analysis/CMakeFiles/polaris_analysis.dir/cfg.cpp.o.d"
  "/root/repo/src/analysis/gsa.cpp" "src/analysis/CMakeFiles/polaris_analysis.dir/gsa.cpp.o" "gcc" "src/analysis/CMakeFiles/polaris_analysis.dir/gsa.cpp.o.d"
  "/root/repo/src/analysis/purity.cpp" "src/analysis/CMakeFiles/polaris_analysis.dir/purity.cpp.o" "gcc" "src/analysis/CMakeFiles/polaris_analysis.dir/purity.cpp.o.d"
  "/root/repo/src/analysis/structure.cpp" "src/analysis/CMakeFiles/polaris_analysis.dir/structure.cpp.o" "gcc" "src/analysis/CMakeFiles/polaris_analysis.dir/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/symbolic/CMakeFiles/polaris_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/polaris_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/polaris_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
