# Empty dependencies file for polaris_interp.
# This may be replaced when dependencies are built.
