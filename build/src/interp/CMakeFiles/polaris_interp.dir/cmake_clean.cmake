file(REMOVE_RECURSE
  "CMakeFiles/polaris_interp.dir/interp.cpp.o"
  "CMakeFiles/polaris_interp.dir/interp.cpp.o.d"
  "CMakeFiles/polaris_interp.dir/memory.cpp.o"
  "CMakeFiles/polaris_interp.dir/memory.cpp.o.d"
  "libpolaris_interp.a"
  "libpolaris_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
