file(REMOVE_RECURSE
  "libpolaris_interp.a"
)
