file(REMOVE_RECURSE
  "CMakeFiles/explore_suite.dir/explore_suite.cpp.o"
  "CMakeFiles/explore_suite.dir/explore_suite.cpp.o.d"
  "explore_suite"
  "explore_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
