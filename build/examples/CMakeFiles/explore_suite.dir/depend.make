# Empty dependencies file for explore_suite.
# This may be replaced when dependencies are built.
