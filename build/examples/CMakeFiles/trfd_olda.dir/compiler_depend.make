# Empty compiler generated dependencies file for trfd_olda.
# This may be replaced when dependencies are built.
