file(REMOVE_RECURSE
  "CMakeFiles/trfd_olda.dir/trfd_olda.cpp.o"
  "CMakeFiles/trfd_olda.dir/trfd_olda.cpp.o.d"
  "trfd_olda"
  "trfd_olda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trfd_olda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
