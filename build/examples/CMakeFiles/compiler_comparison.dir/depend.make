# Empty dependencies file for compiler_comparison.
# This may be replaced when dependencies are built.
