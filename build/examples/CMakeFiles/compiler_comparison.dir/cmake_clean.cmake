file(REMOVE_RECURSE
  "CMakeFiles/compiler_comparison.dir/compiler_comparison.cpp.o"
  "CMakeFiles/compiler_comparison.dir/compiler_comparison.cpp.o.d"
  "compiler_comparison"
  "compiler_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
