# Empty dependencies file for speculative_runtime.
# This may be replaced when dependencies are built.
