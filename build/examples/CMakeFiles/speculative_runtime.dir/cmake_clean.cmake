file(REMOVE_RECURSE
  "CMakeFiles/speculative_runtime.dir/speculative_runtime.cpp.o"
  "CMakeFiles/speculative_runtime.dir/speculative_runtime.cpp.o.d"
  "speculative_runtime"
  "speculative_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speculative_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
