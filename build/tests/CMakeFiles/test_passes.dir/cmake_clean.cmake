file(REMOVE_RECURSE
  "CMakeFiles/test_passes.dir/passes/constprop_test.cpp.o"
  "CMakeFiles/test_passes.dir/passes/constprop_test.cpp.o.d"
  "CMakeFiles/test_passes.dir/passes/doall_test.cpp.o"
  "CMakeFiles/test_passes.dir/passes/doall_test.cpp.o.d"
  "CMakeFiles/test_passes.dir/passes/forwardsub_test.cpp.o"
  "CMakeFiles/test_passes.dir/passes/forwardsub_test.cpp.o.d"
  "CMakeFiles/test_passes.dir/passes/induction_test.cpp.o"
  "CMakeFiles/test_passes.dir/passes/induction_test.cpp.o.d"
  "CMakeFiles/test_passes.dir/passes/inliner_test.cpp.o"
  "CMakeFiles/test_passes.dir/passes/inliner_test.cpp.o.d"
  "CMakeFiles/test_passes.dir/passes/multiplicative_test.cpp.o"
  "CMakeFiles/test_passes.dir/passes/multiplicative_test.cpp.o.d"
  "CMakeFiles/test_passes.dir/passes/normalize_test.cpp.o"
  "CMakeFiles/test_passes.dir/passes/normalize_test.cpp.o.d"
  "CMakeFiles/test_passes.dir/passes/privatization_test.cpp.o"
  "CMakeFiles/test_passes.dir/passes/privatization_test.cpp.o.d"
  "CMakeFiles/test_passes.dir/passes/reduction_test.cpp.o"
  "CMakeFiles/test_passes.dir/passes/reduction_test.cpp.o.d"
  "CMakeFiles/test_passes.dir/passes/strength_test.cpp.o"
  "CMakeFiles/test_passes.dir/passes/strength_test.cpp.o.d"
  "test_passes"
  "test_passes.pdb"
  "test_passes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
