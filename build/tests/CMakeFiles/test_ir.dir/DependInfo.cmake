
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir/expr_test.cpp" "tests/CMakeFiles/test_ir.dir/ir/expr_test.cpp.o" "gcc" "tests/CMakeFiles/test_ir.dir/ir/expr_test.cpp.o.d"
  "/root/repo/tests/ir/pattern_test.cpp" "tests/CMakeFiles/test_ir.dir/ir/pattern_test.cpp.o" "gcc" "tests/CMakeFiles/test_ir.dir/ir/pattern_test.cpp.o.d"
  "/root/repo/tests/ir/program_test.cpp" "tests/CMakeFiles/test_ir.dir/ir/program_test.cpp.o" "gcc" "tests/CMakeFiles/test_ir.dir/ir/program_test.cpp.o.d"
  "/root/repo/tests/ir/stmtlist_test.cpp" "tests/CMakeFiles/test_ir.dir/ir/stmtlist_test.cpp.o" "gcc" "tests/CMakeFiles/test_ir.dir/ir/stmtlist_test.cpp.o.d"
  "/root/repo/tests/ir/symbol_test.cpp" "tests/CMakeFiles/test_ir.dir/ir/symbol_test.cpp.o" "gcc" "tests/CMakeFiles/test_ir.dir/ir/symbol_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/polaris_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
