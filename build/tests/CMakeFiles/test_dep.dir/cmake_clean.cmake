file(REMOVE_RECURSE
  "CMakeFiles/test_dep.dir/dep/ddtest_test.cpp.o"
  "CMakeFiles/test_dep.dir/dep/ddtest_test.cpp.o.d"
  "CMakeFiles/test_dep.dir/dep/linear_test.cpp.o"
  "CMakeFiles/test_dep.dir/dep/linear_test.cpp.o.d"
  "CMakeFiles/test_dep.dir/dep/rangetest_test.cpp.o"
  "CMakeFiles/test_dep.dir/dep/rangetest_test.cpp.o.d"
  "CMakeFiles/test_dep.dir/dep/regions_test.cpp.o"
  "CMakeFiles/test_dep.dir/dep/regions_test.cpp.o.d"
  "test_dep"
  "test_dep.pdb"
  "test_dep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
