# Empty dependencies file for test_dep.
# This may be replaced when dependencies are built.
