file(REMOVE_RECURSE
  "CMakeFiles/test_driver.dir/driver/compiler_test.cpp.o"
  "CMakeFiles/test_driver.dir/driver/compiler_test.cpp.o.d"
  "CMakeFiles/test_driver.dir/driver/property_test.cpp.o"
  "CMakeFiles/test_driver.dir/driver/property_test.cpp.o.d"
  "CMakeFiles/test_driver.dir/driver/report_test.cpp.o"
  "CMakeFiles/test_driver.dir/driver/report_test.cpp.o.d"
  "CMakeFiles/test_driver.dir/driver/roundtrip_test.cpp.o"
  "CMakeFiles/test_driver.dir/driver/roundtrip_test.cpp.o.d"
  "test_driver"
  "test_driver.pdb"
  "test_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
