
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parser/fuzz_test.cpp" "tests/CMakeFiles/test_parser.dir/parser/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_parser.dir/parser/fuzz_test.cpp.o.d"
  "/root/repo/tests/parser/lexer_test.cpp" "tests/CMakeFiles/test_parser.dir/parser/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/test_parser.dir/parser/lexer_test.cpp.o.d"
  "/root/repo/tests/parser/parser_test.cpp" "tests/CMakeFiles/test_parser.dir/parser/parser_test.cpp.o" "gcc" "tests/CMakeFiles/test_parser.dir/parser/parser_test.cpp.o.d"
  "/root/repo/tests/parser/printer_test.cpp" "tests/CMakeFiles/test_parser.dir/parser/printer_test.cpp.o" "gcc" "tests/CMakeFiles/test_parser.dir/parser/printer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parser/CMakeFiles/polaris_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/suite/CMakeFiles/polaris_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/polaris_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
