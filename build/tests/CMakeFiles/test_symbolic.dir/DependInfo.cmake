
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/symbolic/compare_test.cpp" "tests/CMakeFiles/test_symbolic.dir/symbolic/compare_test.cpp.o" "gcc" "tests/CMakeFiles/test_symbolic.dir/symbolic/compare_test.cpp.o.d"
  "/root/repo/tests/symbolic/context_test.cpp" "tests/CMakeFiles/test_symbolic.dir/symbolic/context_test.cpp.o" "gcc" "tests/CMakeFiles/test_symbolic.dir/symbolic/context_test.cpp.o.d"
  "/root/repo/tests/symbolic/poly_property_test.cpp" "tests/CMakeFiles/test_symbolic.dir/symbolic/poly_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_symbolic.dir/symbolic/poly_property_test.cpp.o.d"
  "/root/repo/tests/symbolic/poly_test.cpp" "tests/CMakeFiles/test_symbolic.dir/symbolic/poly_test.cpp.o" "gcc" "tests/CMakeFiles/test_symbolic.dir/symbolic/poly_test.cpp.o.d"
  "/root/repo/tests/symbolic/simplify_test.cpp" "tests/CMakeFiles/test_symbolic.dir/symbolic/simplify_test.cpp.o" "gcc" "tests/CMakeFiles/test_symbolic.dir/symbolic/simplify_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/symbolic/CMakeFiles/polaris_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/polaris_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/polaris_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
