
      program tfft2
c     FFT kernel: butterfly strides j*le + k are nonlinear in the symbolic
c     block size le (a multiplicative recurrence the stage loop keeps);
c     only the range test proves the block loop parallel.
      parameter (n = 4096, m = 12)
      real xr(n)
      integer le
      do i = 1, n
        xr(i) = mod(i*11, 127)*0.01
      end do
      le = 1
      do l = 1, m - 3
        le = le*2
        do j = 0, n/le - 1
          do k = 0, le/2 - 1
            xr(j*le + k + 1) = xr(j*le + k + 1)
     &        + xr(j*le + k + 1 + le/2)*0.5
            xr(j*le + k + 1 + le/2) = xr(j*le + k + 1)
     &        - xr(j*le + k + 1 + le/2)*0.25
          end do
        end do
      end do
      cks = 0.0
      do i = 1, n
        cks = cks + xr(i)
      end do
      print *, 'tfft2', cks
      end
