
      program arc2d
c     implicit finite-difference sweeps: the outer line loop needs the
c     work array w privatized (Polaris); the baseline only parallelizes
c     the short inner loops and drowns in fork/join overhead.
      parameter (im = 64, jm = 200, nsweep = 3)
      real q(im, jm), q2(im, jm), w(im)
      do j = 1, jm
        do i = 1, im
          q(i, j) = mod(i + j, 9)*0.125
          q2(i, j) = 0.0
        end do
      end do
      do s = 1, nsweep
        do j = 2, jm - 1
          do i = 1, im
            w(i) = q(i, j - 1) + q(i, j + 1)
          end do
          do i = 2, im - 1
            q2(i, j) = (w(i - 1) + w(i + 1))*0.25 + q(i, j)*0.5
          end do
        end do
        do j = 2, jm - 1
          do i = 2, im - 1
            q(i, j) = q2(i, j)
          end do
        end do
      end do
      cks = 0.0
      do j = 1, jm
        do i = 1, im
          cks = cks + q(i, j)
        end do
      end do
      print *, 'arc2d', cks
      end
