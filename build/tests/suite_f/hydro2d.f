
      program hydro2d
c     galactic jets via Navier-Stokes: 2D stencils with a privatizable
c     row buffer and a global sum reduction.
      parameter (nx = 100, ny = 100, nsteps = 3)
      real ro(nx, ny), rn(nx, ny), row(nx)
      do j = 1, ny
        do i = 1, nx
          ro(i, j) = mod(i + 2*j, 7)*0.2 + 1.0
        end do
      end do
      do s = 1, nsteps
        do j = 2, ny - 1
          do i = 1, nx
            row(i) = ro(i, j)*0.6 + ro(i, j - 1)*0.2 + ro(i, j + 1)*0.2
          end do
          do i = 2, nx - 1
            rn(i, j) = (row(i - 1) + row(i) + row(i + 1))/3.0
          end do
        end do
        do j = 2, ny - 1
          do i = 2, nx - 1
            ro(i, j) = rn(i, j)
          end do
        end do
      end do
      total = 0.0
      do j = 1, ny
        do i = 1, nx
          total = total + ro(i, j)
        end do
      end do
      print *, 'hydro2d', total
      end
