
      program appsp
c     gaussian-elimination style solver: long parallel sweeps plus 5-wide
c     block loops.  Both compilers find the parallelism, but PFA's
c     restructuring backfires on the short constant-trip inner loops.
      parameter (n = 2500, nb = 5, nsteps = 3)
      real v(n), rhs(n), c(nb)
      do i = 1, n
        v(i) = mod(i, 13)*0.25
      end do
      do kb = 1, nb
        c(kb) = kb*0.1
      end do
      do s = 1, nsteps
        do i = 2, n - 1
          rhs(i) = (v(i - 1) + v(i + 1))*0.5 - v(i)
        end do
        do i = 2, n - 1
          t = 0.0
          do kb = 1, nb
            t = t + rhs(i)*c(kb)
          end do
          v(i) = v(i) + t*0.2
        end do
      end do
      cks = 0.0
      do i = 1, n
        cks = cks + v(i)
      end do
      print *, 'appsp', cks
      end
