
      program su2cor
c     Monte Carlo quantum mechanics: the lattice update is driven by a
c     sequential congruential generator; both compilers keep it serial,
c     and PFA's back end wins on code quality alone.
      parameter (ns = 500, ng = 40)
      real lat(ns), g(ns, ng)
      integer seed
      seed = 12345
      do i = 1, 15000
        seed = mod(seed*109 + 24691, 65536)
        lat(mod(i, ns) + 1) = seed*0.0001
      end do
      do j = 1, ng
        do i = 1, ns
          g(i, j) = lat(i)*0.01 + j*0.001
        end do
      end do
      do j = 2, ng
        do i = 1, ns
          g(i, j) = g(i, j - 1)*0.99 + g(i, j)*0.01
        end do
      end do
      cks = 0.0
      do i = 1, ns
        cks = cks + g(i, ng)
      end do
      print *, 'su2cor', cks
      end
