
      program applu
c     parabolic/elliptic PDE solver: SSOR wavefront recurrence dominates;
c     neither compiler can parallelize it (true dependences), so the PFA
c     back end's better code generation wins slightly.
      parameter (nx = 60, ny = 60, nsteps = 4)
      real u(nx, ny)
      do j = 1, ny
        do i = 1, nx
          u(i, j) = mod(i*3 + j*7, 11)*0.1
        end do
      end do
      do s = 1, nsteps
        do j = 2, ny
          do i = 2, nx
            u(i, j) = (u(i - 1, j) + u(i, j - 1))*0.4999 + 0.01
          end do
        end do
      end do
      cks = 0.0
      do j = 1, ny
        do i = 1, nx
          cks = cks + u(i, j)
        end do
      end do
      print *, 'applu', cks
      end
