
      program wave5
c     particle-in-cell plasma code: the particle push parallelizes for
c     both; the scatter through the computed index is not a recognizable
c     reduction and the field recurrence is serial, so overall speedup
c     stays near 1 (as the paper reports for a few codes).
      parameter (np = 6000, ngrid = 800)
      real px(np), vx(np), e(ngrid), field(ngrid)
      dat1 = 0.5
      do i = 1, np
        px(i) = mod(i*17, ngrid)*1.0
        vx(i) = mod(i, 11)*0.1 - 0.5
      end do
      do i = 1, np
        px(i) = px(i) + vx(i)*0.5
        if (px(i) .lt. 0.0) px(i) = px(i) + 799.0
      end do
      do i = 1, ngrid
        e(i) = 0.0
      end do
      do i = 1, np
        ig = int(px(i)) + 1
        if (ig .gt. ngrid) ig = ngrid
        e(ig) = e(ig)*0.5 + dat1*0.125
      end do
      do i = 2, ngrid
        field(i) = field(i - 1)*0.5 + e(i)
      end do
      cks = 0.0
      do i = 1, ngrid
        cks = cks + field(i)
      end do
      print *, 'wave5', cks
      end
