
      program flo52
c     transonic flow past an airfoil: multi-stage sweeps whose line buffer
c     must be privatized for the outer loop (Polaris), plus a max-norm
c     residual reduction.
      parameter (ni = 96, nj = 120, nstage = 3)
      real w(ni, nj), wn(ni, nj), fs(ni)
      do j = 1, nj
        do i = 1, ni
          w(i, j) = mod(i*3 + j, 11)*0.1 + 0.5
        end do
      end do
      res = 0.0
      do s = 1, nstage
        do j = 2, nj - 1
          do i = 1, ni
            fs(i) = w(i, j)*0.5 + w(i, j - 1)*0.25 + w(i, j + 1)*0.25
          end do
          do i = 2, ni - 1
            wn(i, j) = (fs(i - 1) + fs(i + 1))*0.5
          end do
        end do
        res = 0.0
        do j = 2, nj - 1
          do i = 2, ni - 1
            res = max(res, abs(wn(i, j) - w(i, j)))
            w(i, j) = wn(i, j)
          end do
        end do
      end do
      print *, 'flo52', w(ni/2, nj/2), res
      end
