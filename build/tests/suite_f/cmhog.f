
      program cmhog
c     3D ideal gas dynamics (NCSA): directional sweeps with a privatizable
c     interface-state buffer per column; symbolic grid sizes.
      parameter (maxn = 150)
      real d(maxn, maxn), dn(maxn, maxn), wl(maxn)
      integer nx, ny
      nx = 120
      ny = 120
      do j = 1, ny
        do i = 1, nx
          d(i, j) = mod(i*2 + j, 19)*0.0625 + 0.5
        end do
      end do
      do s = 1, 2
        do j = 2, ny - 1
          do i = 1, nx
            wl(i) = d(i, j)*0.75 + d(i, j - 1)*0.25
          end do
          do i = 2, nx - 1
            dn(i, j) = (wl(i - 1) + wl(i + 1))*0.5
          end do
        end do
        do j = 2, ny - 1
          do i = 2, nx - 1
            d(i, j) = dn(i, j)
          end do
        end do
      end do
      cks = 0.0
      do j = 1, ny
        do i = 1, nx
          cks = cks + d(i, j)
        end do
      end do
      print *, 'cmhog', cks
      end
