
      program cloud3d
c     3D atmospheric convection (NCSA): parallel per-column microphysics
c     (needs the w buffer privatized) plus a sequential vertical
c     integration that bounds the overall speedup.
      parameter (nz = 60, ncol = 120, nsteps = 2)
      real t(nz, ncol), pr(nz, ncol), w(nz)
      do jc = 1, ncol
        do k = 1, nz
          t(k, jc) = mod(k*3 + jc, 23)*0.04 + 1.0
          pr(k, jc) = 0.0
        end do
      end do
      do s = 1, nsteps
        do jc = 1, ncol
          do k = 1, nz
            w(k) = t(k, jc)*0.9 + 0.1
          end do
          do k = 2, nz
            t(k, jc) = (w(k) + w(k - 1))*0.5
          end do
        end do
        do k = 2, nz
          do jc = 1, ncol
            pr(k, jc) = pr(k - 1, jc)*0.98 + t(k, jc)*0.02
          end do
        end do
      end do
      cks = 0.0
      do jc = 1, ncol
        do k = 1, nz
          cks = cks + t(k, jc) + pr(k, jc)
        end do
      end do
      print *, 'cloud3d', cks
      end
