
      program swim
c     shallow water equations: long regular 1D sweeps with no privatization
c     or symbolic obstacles — both compilers parallelize everything.
      parameter (n = 5000)
      real u(n), un(n)
      do i = 1, n
        u(i) = mod(i, 37)*0.05
      end do
      do i = 2, n - 1
        un(i) = u(i) + (u(i + 1) - 2.0*u(i) + u(i - 1))*0.125
      end do
      do i = 2, n - 1
        u(i) = un(i)
      end do
      do i = 2, n - 1
        un(i) = u(i) + (u(i + 1) - 2.0*u(i) + u(i - 1))*0.125
      end do
      do i = 2, n - 1
        u(i) = un(i)
      end do
      cks = 0.0
      do i = 1, n
        cks = cks + u(i)
      end do
      print *, 'swim', cks
      end
