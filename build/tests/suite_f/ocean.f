
      program ocean
c     Boussinesq fluid layer: the paper's Figure 3 FTRVMT kernel — the
c     nonlinear term 258*x*j defeats linear tests; the range test (with
c     the loop-order permutation) proves all three loops parallel.
      parameter (x = 4)
      integer z(0:3)
      real a(35000)
      do k = 0, x - 1
        z(k) = 24
      end do
      do i = 1, 33540
        a(i) = 0.0
      end do
      do k = 0, x - 1
        do j = 0, z(k)
          do i = 0, 128
            a(258*x*j + 129*k + i + 1) = a(258*x*j + 129*k + i + 1)
     &        + (k + 1)*0.25 + j*0.01 + (i + k)*0.002 + (j + k)*0.001
            a(258*x*j + 129*k + i + 1 + 129*x) = (i + 1)*0.004
     &        + (j + 1)*0.003 + (k + 1)*0.002 + (i + j + k)*0.001
          end do
        end do
      end do
      cks = 0.0
      do i = 1, 33540
        cks = cks + a(i)
      end do
      print *, 'ocean', cks
      end
