
      program mdg
c     molecular dynamics of water: pairwise forces accumulate into
c     per-particle arrays — histogram reductions (Polaris) — plus a
c     scalar energy reduction.
      parameter (np = 400, nnb = 27)
      real f(np), v(np)
      do i = 1, np
        v(i) = mod(i*13, 31)*0.03
        f(i) = 0.0
      end do
      energy = 0.0
      do i = 1, np
        do j = 1, nnb
          k = mod(i*7 + j*13, np) + 1
          f(k) = f(k) + v(i)*0.01
          f(i) = f(i) - v(k)*0.005
          energy = energy + v(i)*v(k)
        end do
      end do
      cks = 0.0
      do i = 1, np
        cks = cks + f(i)
      end do
      print *, 'mdg', cks, energy
      end
