
      program tomcatv
c     2D mesh generation: both compilers parallelize the relaxation, but
c     the 2-trip displacement loop inside the nest trips PFA's
c     restructuring into overhead (the paper's tomcatv observation).
      parameter (nx = 60, ny = 60, niter = 3)
      real x(nx, ny, 2), xn(nx, ny, 2)
      do j = 1, ny
        do i = 1, nx
          x(i, j, 1) = i*1.0 + mod(j, 5)*0.01
          x(i, j, 2) = j*1.0 + mod(i, 7)*0.01
        end do
      end do
      do it = 1, niter
        do j = 2, ny - 1
          do i = 2, nx - 1
            do d = 1, 2
              xn(i, j, d) = (x(i - 1, j, d) + x(i + 1, j, d)
     &          + x(i, j - 1, d) + x(i, j + 1, d))*0.25
            end do
          end do
        end do
        do j = 2, ny - 1
          do i = 2, nx - 1
            do d = 1, 2
              x(i, j, d) = xn(i, j, d)
            end do
          end do
        end do
      end do
      cks = 0.0
      do j = 1, ny
        do i = 1, nx
          cks = cks + x(i, j, 1) + x(i, j, 2)
        end do
      end do
      print *, 'tomcatv', cks
      end
