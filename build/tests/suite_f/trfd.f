
      program trfd
c     quantum mechanics integral transformation: the paper's Figure 2 OLDA
c     kernel — induction substitution produces the nonlinear subscript
c     (i*(n**2+n) + j**2 - j)/2 + k + 1 that only the range test handles;
c     the baseline cannot substitute in the triangular nest at all.
      parameter (nv = 40, nmo = 8)
      real xrsiq(6240)
      integer x
      do i = 1, 6240
        xrsiq(i) = 0.0
      end do
      x = 0
      do i = 0, nmo - 1
        do j = 0, nv - 1
          do k = 0, j - 1
            x = x + 1
            xrsiq(x) = (i + 1)*0.5 + j*0.25 + k*0.125
     &        + (i + j)*0.0625 + (j + k)*0.03125 + (i + k + 2)*0.015625
          end do
        end do
      end do
      cks = 0.0
      do i = 1, 6240
        cks = cks + xrsiq(i)
      end do
      print *, 'trfd', cks
      end
