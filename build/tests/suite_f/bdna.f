
      program bdna
c     molecular dynamics of biomolecules: the paper's Figure 5 kernel —
c     gather/compress through IND with the monotonic-counter proof; array
c     privatization of A and IND enables the outer loop.
      parameter (n = 150)
      real x(n, n), y(n, n), a(n)
      integer ind(n), p
      real r, w, z, rcuts
      w = 0.1
      z = 0.05
      rcuts = 1.1
      do i = 1, n
        do j = 1, n
          x(i, j) = mod(i*5 + j*3, 17)*0.125
          y(i, j) = mod(i + j*11, 13)*0.0625
        end do
      end do
      do i = 2, n
        do j = 1, i - 1
          ind(j) = 0
          a(j) = (x(i, j) - y(i, j))*1.125 + (x(i, j) + y(i, j))*0.0625
          r = a(j)*0.75 + a(j)*0.25 + w
          if (r .lt. rcuts) ind(j) = 1
        end do
        p = 0
        do k = 1, i - 1
          if (ind(k) .ne. 0) then
            p = p + 1
            ind(p) = k
          end if
        end do
        do l = 1, p
          m = ind(l)
          x(i, l) = a(m) + z
        end do
      end do
      cks = 0.0
      do i = 1, n
        do j = 1, n
          cks = cks + x(i, j)
        end do
      end do
      print *, 'bdna', cks
      end
