# Empty dependencies file for bench_fig6_pdtest.
# This may be replaced when dependencies are built.
