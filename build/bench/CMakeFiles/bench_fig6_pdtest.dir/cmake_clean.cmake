file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_pdtest.dir/bench_fig6_pdtest.cpp.o"
  "CMakeFiles/bench_fig6_pdtest.dir/bench_fig6_pdtest.cpp.o.d"
  "bench_fig6_pdtest"
  "bench_fig6_pdtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_pdtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
