file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_ocean.dir/bench_fig3_ocean.cpp.o"
  "CMakeFiles/bench_fig3_ocean.dir/bench_fig3_ocean.cpp.o.d"
  "bench_fig3_ocean"
  "bench_fig3_ocean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_ocean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
