# Empty dependencies file for bench_fig3_ocean.
# This may be replaced when dependencies are built.
