file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_induction.dir/bench_fig1_induction.cpp.o"
  "CMakeFiles/bench_fig1_induction.dir/bench_fig1_induction.cpp.o.d"
  "bench_fig1_induction"
  "bench_fig1_induction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_induction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
