# Empty dependencies file for bench_fig1_induction.
# This may be replaced when dependencies are built.
