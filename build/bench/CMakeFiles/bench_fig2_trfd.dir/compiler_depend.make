# Empty compiler generated dependencies file for bench_fig2_trfd.
# This may be replaced when dependencies are built.
