file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_trfd.dir/bench_fig2_trfd.cpp.o"
  "CMakeFiles/bench_fig2_trfd.dir/bench_fig2_trfd.cpp.o.d"
  "bench_fig2_trfd"
  "bench_fig2_trfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_trfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
