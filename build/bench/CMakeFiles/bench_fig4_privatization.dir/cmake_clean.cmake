file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_privatization.dir/bench_fig4_privatization.cpp.o"
  "CMakeFiles/bench_fig4_privatization.dir/bench_fig4_privatization.cpp.o.d"
  "bench_fig4_privatization"
  "bench_fig4_privatization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_privatization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
