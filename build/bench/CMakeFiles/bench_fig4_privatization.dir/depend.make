# Empty dependencies file for bench_fig4_privatization.
# This may be replaced when dependencies are built.
