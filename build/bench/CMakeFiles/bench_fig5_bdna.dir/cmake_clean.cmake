file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_bdna.dir/bench_fig5_bdna.cpp.o"
  "CMakeFiles/bench_fig5_bdna.dir/bench_fig5_bdna.cpp.o.d"
  "bench_fig5_bdna"
  "bench_fig5_bdna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_bdna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
