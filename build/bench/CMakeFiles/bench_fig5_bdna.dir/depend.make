# Empty dependencies file for bench_fig5_bdna.
# This may be replaced when dependencies are built.
