
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_scaling.cpp" "bench/CMakeFiles/bench_scaling.dir/bench_scaling.cpp.o" "gcc" "bench/CMakeFiles/bench_scaling.dir/bench_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/polaris_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/polaris_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/polaris_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/dep/CMakeFiles/polaris_dep.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/polaris_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/polaris_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/polaris_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/polaris_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/polaris_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/polaris_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/suite/CMakeFiles/polaris_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
