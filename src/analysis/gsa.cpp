#include "analysis/gsa.h"

#include <algorithm>

#include "analysis/structure.h"
#include "ir/build.h"
#include "support/statistic.h"
#include "symbolic/simplify.h"

namespace polaris {

namespace {

POLARIS_STATISTIC("gsa", value_queries,
                  "backward value-of walks (gamma/mu/eta gate demand)");
POLARIS_STATISTIC("gsa", gamma_forks,
                  "if-chains forked into per-arm values (gamma gates)");

/// Finds the IF heading the chain that contains `arm` (an ElseIf or Else),
/// scanning backward over balanced nested constructs.
Statement* chain_head(Statement* arm) {
  int depth = 0;
  for (Statement* s = arm->prev(); s != nullptr; s = s->prev()) {
    switch (s->kind()) {
      case StmtKind::EndIf: ++depth; break;
      case StmtKind::If:
        if (depth == 0) return s;
        --depth;
        break;
      default:
        break;
    }
  }
  p_unreachable("ELSE without IF survived revalidation");
}

/// Arm header statements (If / ElseIf / Else) of the chain at `ifs`.
std::vector<Statement*> chain_arms(IfStmt* ifs, bool* has_else) {
  std::vector<Statement*> arms;
  *has_else = false;
  Statement* arm = ifs;
  while (arm != ifs->end()) {
    arms.push_back(arm);
    if (arm->kind() == StmtKind::Else) *has_else = true;
    if (arm->kind() == StmtKind::If)
      arm = static_cast<IfStmt*>(arm)->next_arm();
    else if (arm->kind() == StmtKind::ElseIf)
      arm = static_cast<ElseIfStmt*>(arm)->next_arm();
    else
      arm = static_cast<ElseStmt*>(arm)->end();
  }
  return arms;
}

/// The statement that terminates `arm`'s region (the next arm header or
/// the chain's ENDIF).
Statement* arm_terminator(IfStmt* ifs, Statement* arm) {
  if (arm->kind() == StmtKind::If)
    return static_cast<IfStmt*>(arm)->next_arm();
  if (arm->kind() == StmtKind::ElseIf)
    return static_cast<ElseIfStmt*>(arm)->next_arm();
  return ifs->end();
}

/// May any statement in [first, last) define `v`?
bool may_define(Statement* first, Statement* last, Symbol* v) {
  Statement* real_last = nullptr;
  for (Statement* s = first; s != last; s = s->next()) real_last = s;
  if (real_last == nullptr) return false;
  return may_defined_symbols(first, real_last).count(v) > 0;
}

}  // namespace

std::vector<ExprPtr> GsaQuery::value_of(Symbol* v, Statement* at, int depth) {
  ++value_queries;
  std::vector<ExprPtr> out;
  auto add = [&](ExprPtr e) {
    for (const ExprPtr& existing : out)
      if (existing->equals(*e)) return;
    if (static_cast<int>(out.size()) < kMaxVariants)
      out.push_back(std::move(e));
  };
  auto add_opaque = [&] { add(ib::var(v)); };

  if (depth <= 0) {
    add_opaque();
    return out;
  }
  if (v->kind() == SymbolKind::Parameter && v->param_value()) {
    add(v->param_value()->clone());
    return out;
  }

  Statement* cur = at->prev();
  while (true) {
    if (cur == nullptr) {
      // Start of unit: DATA-initialized local scalars of the main program
      // have a known initial value; formals/commons are opaque.
      if (!v->is_formal() && !v->in_common() &&
          v->data_values().size() == 1 &&
          unit_.kind() == UnitKind::Program) {
        add(v->data_values()[0]->clone());
      } else {
        add_opaque();
      }
      break;
    }
    // Does this statement define v directly?  (Checked before the goto-
    // target join test: a def at the join dominates the use regardless of
    // which path reached the label.)
    bool defines_here =
        cur->kind() == StmtKind::Assign &&
        static_cast<AssignStmt*>(cur)->lhs().kind() == ExprKind::VarRef &&
        static_cast<AssignStmt*>(cur)->target() == v;

    // A goto target between definition and use is a join we cannot see.
    if (!defines_here && cur->label() != 0) {
      bool target = false;
      for (Statement* t : unit_.stmts())
        if (t->kind() == StmtKind::Goto &&
            static_cast<GotoStmt*>(t)->target() == cur->label()) {
          target = true;
          break;
        }
      if (target) {
        add_opaque();
        break;
      }
    }

    if (defines_here) {
      // Direct reaching definition: substitute the rhs at its own point.
      // A candidate that still mentions v (a self-recurrence whose inner
      // value is a mu/eta gate, e.g. k = k + 1 in a loop) would conflate
      // two distinct runtime values of v under one name — keep v opaque
      // in that case.
      auto* a = static_cast<AssignStmt*>(cur);
      for (ExprPtr& val : possible_values(a->rhs(), cur, depth - 1)) {
        if (val->references(v))
          add_opaque();
        else
          add(std::move(val));
      }
      break;
    }
    if (cur->kind() == StmtKind::Assign) {
      cur = cur->prev();
    } else if (cur->kind() == StmtKind::Call) {
      auto* c = static_cast<CallStmt*>(cur);
      bool clobbers = v->in_common();
      for (const ExprPtr& arg : c->args())
        if (arg->references(v)) clobbers = true;
      if (clobbers) {
        add_opaque();
        break;
      }
      cur = cur->prev();
    } else if (cur->kind() == StmtKind::EndDo) {
      // A whole loop behind us: eta gate if it may define v.
      DoStmt* d = static_cast<EndDoStmt*>(cur)->header();
      if (d->index() == v || may_define(d->next(), d->follow(), v)) {
        add_opaque();
        break;
      }
      cur = d->prev();
    } else if (cur->kind() == StmtKind::Do) {
      // We are inside this loop: mu gate if the body may redefine v.
      auto* d = static_cast<DoStmt*>(cur);
      if (d->index() == v || may_define(d->next(), d->follow(), v)) {
        add_opaque();
        break;
      }
      cur = cur->prev();
    } else if (cur->kind() == StmtKind::ElseIf ||
               cur->kind() == StmtKind::Else) {
      // Walking out of an arm backward: continue before the chain's IF
      // (earlier arms are on mutually exclusive paths).
      cur = chain_head(cur)->prev();
    } else if (cur->kind() == StmtKind::EndIf) {
      // A whole if-chain behind us: gamma gate.  Fork into per-arm values.
      ++gamma_forks;
      auto* endif = static_cast<EndIfStmt*>(cur);
      int nest = 0;
      IfStmt* head = nullptr;
      for (Statement* s = endif->prev(); s != nullptr; s = s->prev()) {
        if (s->kind() == StmtKind::EndIf) {
          ++nest;
        } else if (s->kind() == StmtKind::If) {
          if (nest == 0) {
            head = static_cast<IfStmt*>(s);
            break;
          }
          --nest;
        }
      }
      p_assert(head != nullptr);
      bool has_else = false;
      std::vector<Statement*> arms = chain_arms(head, &has_else);
      bool any_def = false;
      for (Statement* arm : arms)
        if (may_define(arm->next(), arm_terminator(head, arm), v))
          any_def = true;
      if (!any_def) {
        cur = head->prev();
        continue;
      }
      // Each arm's exit value (a non-defining arm's backward walk escapes
      // to before the IF by itself), plus the fall-through value when the
      // chain has no ELSE.
      for (Statement* arm : arms) {
        Statement* term = arm_terminator(head, arm);
        for (ExprPtr& val : value_of(v, term, depth - 1))
          add(std::move(val));
      }
      if (!has_else) {
        for (ExprPtr& val : value_of(v, head, depth - 1))
          add(std::move(val));
      }
      break;
    } else {
      cur = cur->prev();
    }
  }

  if (out.empty()) add_opaque();
  return out;
}

std::vector<ExprPtr> GsaQuery::possible_values(const Expression& e,
                                               Statement* at, int depth) {
  std::vector<ExprPtr> variants;
  variants.push_back(e.clone());
  if (depth <= 0) return variants;

  // Loop indices of enclosing loops stay symbolic: they are the induction
  // atoms the comparison engine ranges over.
  SymbolSet skip;
  for (DoStmt* d = at->outer(); d != nullptr; d = d->outer())
    skip.insert(d->index());

  SymbolSet vars;
  walk(e, [&](const Expression& node) {
    if (node.kind() == ExprKind::VarRef) {
      Symbol* s = static_cast<const VarRef&>(node).symbol();
      if ((s->kind() == SymbolKind::Variable ||
           s->kind() == SymbolKind::Parameter) &&
          !skip.count(s))
        vars.insert(s);
    }
  });

  for (Symbol* v : vars) {
    std::vector<ExprPtr> vals = value_of(v, at, depth - 1);
    std::vector<ExprPtr> next;
    for (const ExprPtr& variant : variants) {
      for (const ExprPtr& val : vals) {
        if (static_cast<int>(next.size()) >= kMaxVariants) break;
        ExprPtr copy = variant->clone();
        replace_var(copy, v, *val);
        simplify_in_place(copy);
        bool dup = false;
        for (const ExprPtr& ex : next)
          if (ex->equals(*copy)) dup = true;
        if (!dup) next.push_back(std::move(copy));
      }
    }
    if (!next.empty()) variants = std::move(next);
  }
  return variants;
}

bool GsaQuery::prove_ge_at(const Expression& e1, const Expression& e2,
                           Statement* at, const FactContext& ctx) {
  ExprPtr diff = ib::sub(e1.clone(), e2.clone());
  std::vector<ExprPtr> vals = possible_values(*diff, at);
  p_assert(!vals.empty());
  for (const ExprPtr& val : vals)
    if (!prove_ge0(Polynomial::from_expr(*val), ctx)) return false;
  return true;
}

bool GsaQuery::prove_le_at(const Expression& e1, const Expression& e2,
                           Statement* at, const FactContext& ctx) {
  return prove_ge_at(e2, e1, at, ctx);
}

}  // namespace polaris
