#include "analysis/structure.h"

#include <algorithm>

#include "parser/parser.h"

namespace polaris {

namespace {

/// Adds every scalar symbol read by `e` to `out`; array element reads add
/// the base symbol as well (a use of the array).
void collect_uses(const Expression& e, SymbolSet& out) {
  walk(e, [&](const Expression& node) {
    if (node.kind() == ExprKind::VarRef)
      out.insert(static_cast<const VarRef&>(node).symbol());
    else if (node.kind() == ExprKind::ArrayRef)
      out.insert(static_cast<const ArrayRef&>(node).symbol());
  });
}

/// Structured region abstract walker.  Computes, in one pass over
/// [first, last]:
///   must_def  — scalars assigned on all paths
///   may_def   — symbols possibly written
///   exposed   — scalar uses not dominated by a prior region definition
struct FlowState {
  SymbolSet must_def;
  SymbolSet may_def;
  SymbolSet exposed;
  bool irregular = false;

  void use(Symbol* s) {
    if (!must_def.count(s)) exposed.insert(s);
  }
  void use_expr(const Expression& e) {
    SymbolSet syms;
    collect_uses(e, syms);
    for (Symbol* s : syms) use(s);
  }
  void merge_branches(const std::vector<FlowState>& arms, bool exhaustive) {
    // may/exposed union; must intersect (only if an else arm exists).
    for (const FlowState& a : arms) {
      may_def.insert(a.may_def.begin(), a.may_def.end());
      for (Symbol* s : a.exposed) use(s);
      irregular = irregular || a.irregular;
    }
    if (exhaustive && !arms.empty()) {
      SymbolSet common = arms[0].must_def;
      for (size_t i = 1; i < arms.size(); ++i) {
        SymbolSet next;
        std::set_intersection(common.begin(), common.end(),
                              arms[i].must_def.begin(),
                              arms[i].must_def.end(),
                              std::inserter(next, next.begin()));
        common = std::move(next);
      }
      must_def.insert(common.begin(), common.end());
    }
  }
};

/// Walks [first, last] inclusive; returns the combined state.  `first`
/// through `last` must be a well-formed block.
FlowState walk_region(Statement* first, Statement* last);

/// Walks statements from `s` up to (but not including) `stop`; returns the
/// state and leaves *next pointing at `stop`.
/// True if some GOTO in the statement's list targets this statement's
/// label.  A label alone (e.g. a classic DO terminator) is harmless.
bool is_jump_target(const Statement* s) {
  if (s->label() == 0 || s->list() == nullptr) return false;
  for (Statement* t : *s->list())
    if (t->kind() == StmtKind::Goto &&
        static_cast<const GotoStmt*>(t)->target() == s->label())
      return true;
  return false;
}

FlowState walk_until(Statement*& s, Statement* stop) {
  FlowState st;
  while (s != stop) {
    p_assert(s != nullptr);
    if (is_jump_target(s)) st.irregular = true;
    switch (s->kind()) {
      case StmtKind::Assign: {
        auto* a = static_cast<AssignStmt*>(s);
        st.use_expr(a->rhs());
        if (a->lhs().kind() == ExprKind::ArrayRef) {
          // Subscripts are uses; the array is may-defined.
          for (const auto& sub :
               static_cast<const ArrayRef&>(a->lhs()).subscripts())
            st.use_expr(*sub);
          st.may_def.insert(a->target());
        } else {
          st.may_def.insert(a->target());
          st.must_def.insert(a->target());
        }
        s = s->next();
        break;
      }
      case StmtKind::Do: {
        auto* d = static_cast<DoStmt*>(s);
        st.use_expr(d->init());
        st.use_expr(d->limit());
        st.use_expr(d->step());
        st.may_def.insert(d->index());
        st.must_def.insert(d->index());  // index assigned even if 0 trips
        // Loop body may execute zero times: defs are may, uses exposed.
        Statement* body_first = d->next();
        FlowState body;
        if (body_first != d->follow()) {
          Statement* cur = body_first;
          body = walk_until(cur, d->follow());
        }
        st.may_def.insert(body.may_def.begin(), body.may_def.end());
        for (Symbol* sym : body.exposed) st.use(sym);
        st.irregular = st.irregular || body.irregular;
        s = d->follow()->next();
        break;
      }
      case StmtKind::If: {
        auto* ifs = static_cast<IfStmt*>(s);
        std::vector<FlowState> arms;
        bool has_else = false;
        Statement* arm = ifs;
        while (arm != ifs->end()) {
          ExprPtr* cond_slot = nullptr;
          if (arm->kind() == StmtKind::If)
            cond_slot = &static_cast<IfStmt*>(arm)->cond_slot();
          else if (arm->kind() == StmtKind::ElseIf)
            cond_slot = &static_cast<ElseIfStmt*>(arm)->cond_slot();
          else
            has_else = true;
          if (cond_slot) st.use_expr(**cond_slot);

          Statement* next_arm =
              arm->kind() == StmtKind::If
                  ? static_cast<IfStmt*>(arm)->next_arm()
                  : (arm->kind() == StmtKind::ElseIf
                         ? static_cast<ElseIfStmt*>(arm)->next_arm()
                         : static_cast<Statement*>(ifs->end()));
          Statement* cur = arm->next();
          arms.push_back(walk_until(cur, next_arm));
          arm = next_arm;
        }
        st.merge_branches(arms, has_else);
        s = ifs->end()->next();
        break;
      }
      case StmtKind::Call: {
        auto* c = static_cast<CallStmt*>(s);
        for (const ExprPtr& arg : c->args()) {
          st.use_expr(*arg);
          // Any symbol passed (by reference) may be modified.
          SymbolSet syms;
          collect_uses(*arg, syms);
          st.may_def.insert(syms.begin(), syms.end());
        }
        s = s->next();
        break;
      }
      case StmtKind::Print: {
        for (const Expression* e : s->expressions()) st.use_expr(*e);
        s = s->next();
        break;
      }
      case StmtKind::Goto:
      case StmtKind::Return:
      case StmtKind::Stop:
        st.irregular = true;
        s = s->next();
        break;
      case StmtKind::EndDo:
      case StmtKind::ElseIf:
      case StmtKind::Else:
      case StmtKind::EndIf:
        // Structure markers reached only when the caller's region boundary
        // is inside a construct; treat as irregular and stop descending.
        st.irregular = true;
        s = s->next();
        break;
      case StmtKind::Continue:
      case StmtKind::Comment:
        s = s->next();
        break;
    }
  }
  return st;
}

FlowState walk_region(Statement* first, Statement* last) {
  if (first == nullptr) return {};
  Statement* cur = first;
  Statement* stop = last ? last->next() : nullptr;
  FlowState st = walk_until(cur, stop);
  return st;
}

bool expr_has_user_call(const Expression& e) {
  return e.contains([](const Expression& n) {
    return n.kind() == ExprKind::FuncCall &&
           !is_intrinsic_name(static_cast<const FuncCall&>(n).name());
  });
}

}  // namespace

SymbolSet must_defined_scalars(Statement* first, Statement* last) {
  return walk_region(first, last).must_def;
}

SymbolSet may_defined_symbols(Statement* first, Statement* last) {
  return walk_region(first, last).may_def;
}

SymbolSet upward_exposed_scalars(Statement* first, Statement* last) {
  return walk_region(first, last).exposed;
}

SymbolSet used_symbols(Statement* first, Statement* last) {
  SymbolSet out;
  Statement* stop = last ? last->next() : nullptr;
  for (Statement* s = first; s != stop; s = s->next()) {
    p_assert(s != nullptr);
    for (const Expression* e : s->expressions()) collect_uses(*e, out);
  }
  return out;
}

bool has_irregular_flow(Statement* first, Statement* last) {
  Statement* stop = last ? last->next() : nullptr;
  for (Statement* s = first; s != stop; s = s->next()) {
    p_assert(s != nullptr);
    if (s->kind() == StmtKind::Goto || s->kind() == StmtKind::Return ||
        s->kind() == StmtKind::Stop || is_jump_target(s))
      return true;
  }
  return false;
}

bool has_calls(Statement* first, Statement* last) {
  Statement* stop = last ? last->next() : nullptr;
  for (Statement* s = first; s != stop; s = s->next()) {
    p_assert(s != nullptr);
    if (s->kind() == StmtKind::Call) return true;
    for (const Expression* e : s->expressions())
      if (expr_has_user_call(*e)) return true;
  }
  return false;
}

bool is_loop_invariant(const Expression& e, DoStmt* loop) {
  return is_loop_invariant(e, loop,
                           may_defined_symbols(loop, loop->follow()));
}

bool is_loop_invariant(const Expression& e, DoStmt* loop,
                       const SymbolSet& loop_may_defined) {
  (void)loop;
  if (expr_has_user_call(e)) return false;
  SymbolSet used;
  collect_uses(e, used);
  for (Symbol* s : used)
    if (loop_may_defined.count(s)) return false;
  return true;
}

bool is_live_after(DoStmt* loop, Symbol* s) {
  Statement* cur = loop->follow()->next();
  // Conservative scan to the end of the unit's statement list.
  while (cur != nullptr) {
    if (cur->kind() == StmtKind::Goto) return true;  // flow unknown
    if (cur->kind() == StmtKind::Assign) {
      auto* a = static_cast<AssignStmt*>(cur);
      // Uses: the rhs, plus subscripts when the target is an array element
      // (a scalar lhs is a kill, not a use).
      SymbolSet used;
      collect_uses(a->rhs(), used);
      if (a->lhs().kind() == ExprKind::ArrayRef) {
        for (const auto& sub :
             static_cast<const ArrayRef&>(a->lhs()).subscripts())
          collect_uses(*sub, used);
      }
      if (used.count(s)) return true;
      if (a->lhs().kind() == ExprKind::VarRef && a->target() == s)
        return false;  // killed
    } else {
      for (const Expression* e : cur->expressions()) {
        SymbolSet used;
        collect_uses(*e, used);
        if (used.count(s)) return true;
      }
      if (cur->kind() == StmtKind::Do &&
          static_cast<DoStmt*>(cur)->index() == s)
        return false;  // killed by the index assignment (bounds already
                       // checked above)
    }
    cur = cur->next();
  }
  return false;
}

std::vector<DoStmt*> loops_postorder(StmtList& stmts) {
  std::vector<DoStmt*> out;
  // Source order gives outer before inner; reverse nesting via depth sort.
  std::vector<DoStmt*> loops = stmts.loops();
  std::stable_sort(loops.begin(), loops.end(),
                   [&](DoStmt* a, DoStmt* b) {
                     return stmts.depth(a) > stmts.depth(b);
                   });
  return loops;
}

std::vector<DoStmt*> enclosing_loops(Statement* s, DoStmt* stop) {
  std::vector<DoStmt*> out;
  for (DoStmt* d = s->outer(); d != nullptr; d = d->outer()) {
    out.push_back(d);
    if (d == stop) break;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace polaris
