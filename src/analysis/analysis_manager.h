// Cached analysis results shared across restructuring passes.
//
// Polaris's passes repeatedly ask the same structural questions about the
// same regions — "what may this loop body write?", "which scalars are
// upward-exposed?" — and, in the seed, every call recomputed the answer by
// walking the region.  AnalysisManager memoizes those queries (keyed by
// region endpoints, which are stable Statement identities while the IR is
// not mutated) so that within a pass every repeated query is a cache hit.
//
// Invalidation follows the LLVM PreservedAnalyses idiom: each pass returns
// the set of analyses its transformation kept valid; the pass manager then
// drops everything else from the cache.  A pass that only annotates
// (e.g. DOALL marking) preserves everything; a pass that rewrites
// statements or expressions preserves nothing.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "analysis/gsa.h"
#include "analysis/structure.h"
#include "ir/program.h"
#include "symbolic/compare.h"

namespace polaris {

class CompileContext;  // support/context.h

/// The analysis families the manager caches.  Coarse by design: passes
/// reason about "structure facts" as a unit, not per-region entries.
enum class AnalysisID : unsigned {
  StructureFacts = 0,  ///< region def/use sets, loop lists, invariance
  GsaFacts = 1,        ///< demand-driven GSA query engines
  FactContexts = 2,    ///< loop/guard FactContexts for symbolic proofs
  CanonForms = 3,      ///< the AtomTable's Expression->Polynomial cache
};

/// A pass's declaration of which cached analyses survived it.
class PreservedAnalyses {
 public:
  /// Nothing survived: the pass rewrote the IR.
  static PreservedAnalyses none() { return PreservedAnalyses{0}; }
  /// Everything survived: the pass only read or annotated the IR.
  static PreservedAnalyses all() { return PreservedAnalyses{~0u}; }

  PreservedAnalyses& preserve(AnalysisID id) {
    mask_ |= 1u << static_cast<unsigned>(id);
    return *this;
  }
  bool preserved(AnalysisID id) const {
    return (mask_ >> static_cast<unsigned>(id)) & 1u;
  }
  bool preserved_all() const { return mask_ == ~0u; }

 private:
  explicit PreservedAnalyses(unsigned mask) : mask_(mask) {}
  unsigned mask_;
};

class AnalysisManager {
 public:
  AnalysisManager() = default;
  /// Binds the manager to a compilation: expensive recomputes (GSA engine
  /// builds) emit trace spans into `ctx`'s collector.  The context also
  /// rides along to code that receives the manager but not the context
  /// directly (dependence testers).  Null behaves like the default ctor.
  explicit AnalysisManager(CompileContext* ctx) : ctx_(ctx) {}
  AnalysisManager(const AnalysisManager&) = delete;
  AnalysisManager& operator=(const AnalysisManager&) = delete;

  /// The owning compilation's context (null when unbound, e.g. in
  /// analysis unit tests).
  CompileContext* context() const { return ctx_; }

  // --- memoized structure queries (see analysis/structure.h) ---------------
  const SymbolSet& must_defined_scalars(Statement* first,
                                                Statement* last);
  const SymbolSet& may_defined_symbols(Statement* first,
                                               Statement* last);
  const SymbolSet& upward_exposed_scalars(Statement* first,
                                                  Statement* last);
  const SymbolSet& used_symbols(Statement* first, Statement* last);

  /// Loop-invariance through the cached may-defined set of the loop.
  bool is_loop_invariant(const Expression& e, DoStmt* loop);

  /// All loops of the unit, innermost first (cached per statement list).
  const std::vector<DoStmt*>& loops_postorder(ProgramUnit& unit);

  // --- GSA query engines ---------------------------------------------------
  /// The unit's demand-driven GSA engine (one instance per unit, reused by
  /// privatization and dependence analysis within a pass).
  GsaQuery& gsa(ProgramUnit& unit);

  // --- symbolic fact contexts ----------------------------------------------
  /// Memoized FactContext for a program point; `compute` runs on a miss.
  /// The builder lives in dep/regions.cpp, so the manager takes it as a
  /// callback rather than depending on the dep layer.
  const FactContext& fact_context(Statement* at,
                                  const std::function<FactContext()>& compute);
  /// Same, keyed by (carrier, ordered access pair) — the range test builds
  /// one context per tested pair per carrier loop.  The pair is ordered
  /// because elimination ranks differ between (a, b) and (b, a).
  const FactContext& pair_fact_context(
      Statement* carrier, Statement* a, Statement* b,
      const std::function<FactContext()>& compute);

  // --- range-test search guidance ------------------------------------------
  /// Histogram of range-test proofs by the popcount of the winning
  /// fixed-subset mask.  Counter-guided candidate ordering
  /// (`-rangetest-max-permutations=N`) ranks popcount buckets by these
  /// observed successes.  The histogram is shard-local — one manager sees
  /// exactly one unit's queries in pass order regardless of `-jobs`, so
  /// guided ordering is deterministic at any worker count.  It survives
  /// invalidation on purpose: it records search outcomes, not IR facts.
  void note_range_success(unsigned popcount) {
    if (popcount < range_success_.size()) ++range_success_[popcount];
  }
  const std::array<std::uint64_t, 16>& range_success_by_popcount() const {
    return range_success_;
  }

  // --- invalidation --------------------------------------------------------
  /// Drops every cached family `pa` does not preserve.
  void invalidate(const PreservedAnalyses& pa);
  void invalidate_all();
  /// Drops every cache WITHOUT counting an invalidation.  Bookkeeping for
  /// group boundaries under sharded execution: the parent manager's
  /// caches (keyed on Statement pointers the unit shards just rewrote)
  /// are discarded, but no pass "caused" it, so the accounting — which
  /// must be identical to a sequential run — is untouched.
  void clear_caches();

  // --- accounting ----------------------------------------------------------
  struct Stats {
    std::uint64_t queries = 0;     ///< memoized lookups answered
    std::uint64_t hits = 0;        ///< answered from cache
    std::uint64_t recomputes = 0;  ///< answered by running the analysis
    std::uint64_t invalidations = 0;
  };
  const Stats& stats() const { return stats_; }
  /// Adds a finished unit shard's accounting into this manager (the
  /// parent compile's aggregate under `-jobs=N`).
  void absorb_stats(const Stats& shard) {
    stats_.queries += shard.queries;
    stats_.hits += shard.hits;
    stats_.recomputes += shard.recomputes;
    stats_.invalidations += shard.invalidations;
  }

 private:
  enum StructureQuery { kMustDef = 0, kMayDef, kExposed, kUsed, kNumQueries };
  using RegionKey = std::pair<Statement*, Statement*>;

  const SymbolSet& region_query(StructureQuery q, Statement* first,
                                        Statement* last);

  std::map<RegionKey, SymbolSet> region_[kNumQueries];
  std::map<StmtList*, std::vector<DoStmt*>> loops_;
  std::map<ProgramUnit*, std::unique_ptr<GsaQuery>> gsa_;
  using PairKey = std::pair<Statement*, RegionKey>;

  std::map<Statement*, FactContext> facts_;
  std::map<PairKey, FactContext> pair_facts_;
  std::array<std::uint64_t, 16> range_success_{};
  Stats stats_;
  CompileContext* ctx_ = nullptr;
};

}  // namespace polaris
