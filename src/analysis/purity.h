// Pure-function detection — a slice of the "comprehensive interprocedural
// analysis framework" the paper lists as in progress (Section 3.1).
//
// A user FUNCTION is pure when it can be invoked from concurrent loop
// iterations without interference: it writes only its result variable and
// its own locals (never a formal or a COMMON member), touches no COMMON at
// all, performs no I/O or STOP, and calls only intrinsics or other pure
// functions.  Calls to pure functions then behave like intrinsic calls for
// the DOALL analysis instead of serializing the loop.
#pragma once

#include <set>

#include "ir/program.h"

namespace polaris {

/// Names of the program's pure functions (fixed point over the call graph).
std::set<std::string> pure_functions(const Program& program);

/// True if the region contains a subprogram reference that could interfere
/// with concurrent execution: a CALL statement, a function outside `pure`,
/// or a pure function receiving a *whole array* that the region itself
/// writes (the callee could read elements other iterations write; element
/// actuals are visible to the dependence tests and are fine).
bool has_impure_calls(Statement* first, Statement* last,
                      const std::set<std::string>& pure,
                      const SymbolSet& written_arrays);

}  // namespace polaris
