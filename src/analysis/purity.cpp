#include "analysis/purity.h"

#include "parser/parser.h"

namespace polaris {

namespace {

/// Collects the names of user functions called anywhere in the unit.
std::set<std::string> called_functions(const ProgramUnit& unit) {
  std::set<std::string> out;
  for (Statement* s : unit.stmts()) {
    for (const Expression* e : s->expressions()) {
      walk(*e, [&](const Expression& n) {
        if (n.kind() == ExprKind::FuncCall) {
          const auto& f = static_cast<const FuncCall&>(n);
          if (!is_intrinsic_name(f.name())) out.insert(f.name());
        }
      });
    }
  }
  return out;
}

/// Purity of one unit assuming every function in `assumed` is pure.
bool unit_pure(const ProgramUnit& unit,
               const std::set<std::string>& assumed) {
  if (unit.kind() != UnitKind::Function) return false;
  for (Symbol* sym : unit.symtab().symbols())
    if (sym->in_common()) return false;  // no global state at all
  for (Statement* s : unit.stmts()) {
    switch (s->kind()) {
      case StmtKind::Assign: {
        auto* a = static_cast<const AssignStmt*>(s);
        Symbol* t = a->target();
        if (t->is_formal()) return false;  // writes escape via reference
        break;
      }
      case StmtKind::Call:
      case StmtKind::Print:
      case StmtKind::Stop:
        return false;  // subroutine side effects / I/O / termination
      default:
        break;
    }
  }
  for (const std::string& callee : called_functions(unit))
    if (!assumed.count(callee)) return false;
  return true;
}

}  // namespace

std::set<std::string> pure_functions(const Program& program) {
  // Optimistic fixed point: start with every function assumed pure, then
  // strike out violators until stable (handles mutual recursion soundly —
  // a function is pure only if everything it reaches is).
  std::set<std::string> pure;
  for (const auto& unit : program.units())
    if (unit->kind() == UnitKind::Function) pure.insert(unit->name());

  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& unit : program.units()) {
      if (unit->kind() != UnitKind::Function) continue;
      if (!pure.count(unit->name())) continue;
      if (!unit_pure(*unit, pure)) {
        pure.erase(unit->name());
        changed = true;
      }
    }
  }
  return pure;
}

bool has_impure_calls(Statement* first, Statement* last,
                      const std::set<std::string>& pure,
                      const SymbolSet& written_arrays) {
  Statement* stop = last ? last->next() : nullptr;
  for (Statement* s = first; s != stop; s = s->next()) {
    p_assert(s != nullptr);
    if (s->kind() == StmtKind::Call) return true;  // subroutines: by-ref
    for (const Expression* e : s->expressions()) {
      bool impure = e->contains([&](const Expression& n) {
        if (n.kind() != ExprKind::FuncCall) return false;
        const auto& f = static_cast<const FuncCall&>(n);
        if (!is_intrinsic_name(f.name()) && !pure.count(f.name()))
          return true;
        // Whole-array actual of an array the region writes: the callee's
        // element reads are invisible to the dependence tests.
        for (const ExprPtr& arg : f.args()) {
          if (arg->kind() == ExprKind::VarRef) {
            Symbol* sym = static_cast<const VarRef&>(*arg).symbol();
            if (sym->is_array() && written_arrays.count(sym)) return true;
          }
        }
        return false;
      });
      if (impure) return true;
    }
  }
  return false;
}

}  // namespace polaris
