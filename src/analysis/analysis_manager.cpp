#include "analysis/analysis_manager.h"

#include "support/context.h"
#include "support/trace.h"

namespace polaris {

const SymbolSet& AnalysisManager::region_query(StructureQuery q,
                                                       Statement* first,
                                                       Statement* last) {
  ++stats_.queries;
  RegionKey key{first, last};
  auto it = region_[q].find(key);
  if (it != region_[q].end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.recomputes;
  SymbolSet result;
  switch (q) {
    case kMustDef:
      result = polaris::must_defined_scalars(first, last);
      break;
    case kMayDef:
      result = polaris::may_defined_symbols(first, last);
      break;
    case kExposed:
      result = polaris::upward_exposed_scalars(first, last);
      break;
    case kUsed:
      result = polaris::used_symbols(first, last);
      break;
    case kNumQueries:
      p_assert(false);
  }
  return region_[q].emplace(key, std::move(result)).first->second;
}

const SymbolSet& AnalysisManager::must_defined_scalars(
    Statement* first, Statement* last) {
  return region_query(kMustDef, first, last);
}

const SymbolSet& AnalysisManager::may_defined_symbols(
    Statement* first, Statement* last) {
  return region_query(kMayDef, first, last);
}

const SymbolSet& AnalysisManager::upward_exposed_scalars(
    Statement* first, Statement* last) {
  return region_query(kExposed, first, last);
}

const SymbolSet& AnalysisManager::used_symbols(Statement* first,
                                                       Statement* last) {
  return region_query(kUsed, first, last);
}

bool AnalysisManager::is_loop_invariant(const Expression& e, DoStmt* loop) {
  return polaris::is_loop_invariant(
      e, loop, may_defined_symbols(loop, loop->follow()));
}

const std::vector<DoStmt*>& AnalysisManager::loops_postorder(
    ProgramUnit& unit) {
  ++stats_.queries;
  auto it = loops_.find(&unit.stmts());
  if (it != loops_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.recomputes;
  return loops_
      .emplace(&unit.stmts(), polaris::loops_postorder(unit.stmts()))
      .first->second;
}

GsaQuery& AnalysisManager::gsa(ProgramUnit& unit) {
  ++stats_.queries;
  auto it = gsa_.find(&unit);
  if (it != gsa_.end()) {
    ++stats_.hits;
    return *it->second;
  }
  ++stats_.recomputes;
  trace::TraceSpan gsa_span(ctx_ != nullptr ? &ctx_->trace() : nullptr,
                            "gsa-build", "analysis");
  gsa_span.arg("unit", unit.name());
  return *gsa_.emplace(&unit, std::make_unique<GsaQuery>(unit))
              .first->second;
}

const FactContext& AnalysisManager::fact_context(
    Statement* at, const std::function<FactContext()>& compute) {
  ++stats_.queries;
  auto it = facts_.find(at);
  if (it != facts_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.recomputes;
  return facts_.emplace(at, compute()).first->second;
}

const FactContext& AnalysisManager::pair_fact_context(
    Statement* carrier, Statement* a, Statement* b,
    const std::function<FactContext()>& compute) {
  ++stats_.queries;
  PairKey key{carrier, RegionKey{a, b}};
  auto it = pair_facts_.find(key);
  if (it != pair_facts_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.recomputes;
  return pair_facts_.emplace(key, compute()).first->second;
}

void AnalysisManager::invalidate(const PreservedAnalyses& pa) {
  if (pa.preserved_all()) return;
  ++stats_.invalidations;
  if (!pa.preserved(AnalysisID::StructureFacts)) {
    for (auto& m : region_) m.clear();
    loops_.clear();
  }
  if (!pa.preserved(AnalysisID::GsaFacts)) gsa_.clear();
  if (!pa.preserved(AnalysisID::FactContexts)) {
    facts_.clear();
    pair_facts_.clear();
  }
  // The canonicalization cache lives in the thread-bound AtomTable (the
  // shard's own under -jobs=N): cached polynomials describe the pre-pass
  // IR, so any pass that does not explicitly preserve them drops them
  // along with the other derived facts.
  if (!pa.preserved(AnalysisID::CanonForms))
    AtomTable::current().clear_canon_cache();
}

void AnalysisManager::invalidate_all() {
  invalidate(PreservedAnalyses::none());
}

void AnalysisManager::clear_caches() {
  for (auto& m : region_) m.clear();
  loops_.clear();
  gsa_.clear();
  facts_.clear();
  pair_facts_.clear();
  AtomTable::current().clear_canon_cache();
}

}  // namespace polaris
