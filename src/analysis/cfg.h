// Statement-level control flow graph.
//
// The paper's base Statement class carries "sets of successor and
// predecessor flow links"; this module derives exactly those from the
// structured statement list: fall-through edges, DO back/exit edges
// (including the zero-trip bypass), IF-chain dispatch edges, GOTO edges,
// and RETURN/STOP edges to the exit node.  The graph is a read-only
// snapshot — rebuild after structural edits (the Polaris "automatic
// updates" correspond to our revalidate-plus-rebuild discipline).
#pragma once

#include <map>
#include <vector>

#include "ir/program.h"

namespace polaris {

class ControlFlowGraph {
 public:
  /// Builds the graph for a unit's statement list.
  explicit ControlFlowGraph(const ProgramUnit& unit);

  /// Successors of `s` in execution order (empty for statements flowing
  /// to the unit exit).
  const std::vector<Statement*>& successors(Statement* s) const;
  /// Predecessors of `s` (entry statement may have none).
  const std::vector<Statement*>& predecessors(Statement* s) const;

  /// The first executable statement, or null for an empty unit.
  Statement* entry() const { return entry_; }

  /// True if `s` can flow to the unit exit (RETURN/STOP/end of list).
  bool exits(Statement* s) const;

  /// Statements reachable from the entry.
  std::vector<Statement*> reachable() const;

  /// True if `target` is reachable from `from` (following edges, not
  /// through the exit).
  bool reaches(Statement* from, Statement* target) const;

 private:
  void add_edge(Statement* from, Statement* to);

  Statement* entry_ = nullptr;
  std::map<Statement*, std::vector<Statement*>> succ_;
  std::map<Statement*, std::vector<Statement*>> pred_;
  std::map<Statement*, bool> exits_;
  std::vector<Statement*> empty_;
};

}  // namespace polaris
