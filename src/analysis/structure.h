// Structured dataflow queries over the flat statement list.
//
// Polaris works on structured Fortran (DO/ENDDO, block IF); these helpers
// compute the flow facts the restructuring passes need — must/may defined
// symbols, upward-exposed uses, loop invariance, liveness after a loop —
// by walking the statement structure directly.  GOTOs are handled
// conservatively: a region containing a GOTO (or a statement carrying a
// label that could be a GOTO target) reports worst-case answers.
#pragma once

#include <set>
#include <vector>

#include "ir/program.h"

namespace polaris {

/// Scalar symbols definitely assigned on every path through [first, last]
/// (inclusive).  Array assignments do not count (partial definition);
/// CALLs make their actual-argument symbols *may*-defined only.
SymbolSet must_defined_scalars(Statement* first, Statement* last);

/// Symbols (scalar or array base) possibly written in [first, last],
/// including DO indices and symbols passed to CALLs.
SymbolSet may_defined_symbols(Statement* first, Statement* last);

/// Scalar symbols with an upward-exposed use in [first, last]: a use that
/// may execute before any definition of the symbol in the region.
SymbolSet upward_exposed_scalars(Statement* first, Statement* last);

/// Symbols read anywhere in [first, last] (scalar uses and array bases),
/// including loop bounds and IF conditions.
SymbolSet used_symbols(Statement* first, Statement* last);

/// True if the region contains a GOTO, a RETURN/STOP, or a statement label
/// (conservatively treated as a join from elsewhere).
bool has_irregular_flow(Statement* first, Statement* last);

/// True if the region contains a CALL statement or a user-function call in
/// any expression.
bool has_calls(Statement* first, Statement* last);

/// True if `e` is invariant in `loop`: it references no symbol that may be
/// defined in the loop body, no enclosing loop index of `loop` itself, and
/// no user function calls.
bool is_loop_invariant(const Expression& e, DoStmt* loop);

/// Same, with the loop's may-defined set supplied by the caller (the
/// AnalysisManager caches it; the two-argument form recomputes per call).
bool is_loop_invariant(const Expression& e, DoStmt* loop,
                       const SymbolSet& loop_may_defined);

/// True if scalar `s` may be used after `loop` exits before being
/// redefined (conservative: region scan to the end of the unit; GOTO makes
/// everything live).
bool is_live_after(DoStmt* loop, Symbol* s);

/// All loops of the unit in postorder (innermost first).
std::vector<DoStmt*> loops_postorder(StmtList& stmts);

/// The loop nest around `s` (outermost first), up to and including `stop`
/// (null = all).
std::vector<DoStmt*> enclosing_loops(Statement* s, DoStmt* stop = nullptr);

}  // namespace polaris
