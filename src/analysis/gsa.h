// Demand-driven, GSA-based backward substitution (paper Section 3.4; Tu &
// Padua [18]).
//
// Queries like "is MP >= M*P at this loop?" are answered by walking
// backward from the use to the reaching definitions of each scalar and
// substituting their right-hand sides, recursively.  Control-flow joins
// behave like gating functions:
//   - gamma (if-join): the query forks — every arm's value must satisfy
//     the predicate (value sets, bounded by kMaxVariants);
//   - mu (loop header, value may come from a previous iteration) and eta
//     (loop exit) stop substitution of that variable — the variable stays
//     symbolic, exactly like an opaque GSA gate;
//   - calls, formals, commons and goto-reachable joins also stop it.
//
// The engine works on the structured statement list directly, so the gated
// SSA form is never materialized — this is the "demand-driven, sparse"
// aspect the paper highlights.
#pragma once

#include <vector>

#include "ir/program.h"
#include "symbolic/compare.h"

namespace polaris {

class GsaQuery {
 public:
  explicit GsaQuery(ProgramUnit& unit) : unit_(unit) {}

  /// Fully backward-substituted possible values of `e` at the program point
  /// immediately *before* statement `at`.  Result is non-empty; when
  /// substitution is blocked everywhere the original expression (with
  /// blocked variables left symbolic) is returned.
  std::vector<ExprPtr> possible_values(const Expression& e, Statement* at,
                                       int depth = 12);

  /// Proves e1 >= e2 before `at` for every possible value pair.
  bool prove_ge_at(const Expression& e1, const Expression& e2, Statement* at,
                   const FactContext& ctx);
  /// Proves e1 <= e2 before `at` for every possible value pair.
  bool prove_le_at(const Expression& e1, const Expression& e2, Statement* at,
                   const FactContext& ctx);

  /// Variant cap per query (gamma forks multiply variants).
  static constexpr int kMaxVariants = 8;

 private:
  /// Possible (already fully substituted) values of scalar `v` just before
  /// `at`.
  std::vector<ExprPtr> value_of(Symbol* v, Statement* at, int depth);

  ProgramUnit& unit_;
};

}  // namespace polaris
