#include "analysis/cfg.h"

#include <set>

namespace polaris {

namespace {

/// Fall-through target from "after statement s": arm headers reached by
/// sequential flow mean the arm completed, so control joins at the END IF.
Statement* resolve_fallthrough(Statement* t) {
  while (t != nullptr) {
    if (t->kind() == StmtKind::ElseIf) {
      t = static_cast<ElseIfStmt*>(t)->end();
    } else if (t->kind() == StmtKind::Else) {
      t = static_cast<ElseStmt*>(t)->end();
    } else {
      return t;
    }
  }
  return nullptr;
}

}  // namespace

ControlFlowGraph::ControlFlowGraph(const ProgramUnit& unit) {
  const StmtList& stmts = unit.stmts();
  entry_ = stmts.first();

  for (Statement* s : stmts) {
    switch (s->kind()) {
      case StmtKind::Do: {
        auto* d = static_cast<DoStmt*>(s);
        Statement* body = d->body_first() == d->follow()
                              ? static_cast<Statement*>(d->follow())
                              : d->body_first();
        add_edge(s, body);
        // Zero-trip bypass.
        Statement* after = resolve_fallthrough(d->follow()->next());
        if (after) add_edge(s, after);
        else exits_[s] = true;
        break;
      }
      case StmtKind::EndDo: {
        auto* e = static_cast<EndDoStmt*>(s);
        DoStmt* d = e->header();
        // Next iteration.
        Statement* body = d->body_first() == e
                              ? static_cast<Statement*>(e)
                              : d->body_first();
        if (body != e) add_edge(s, body);
        // Loop exit.
        Statement* after = resolve_fallthrough(s->next());
        if (after) add_edge(s, after);
        else exits_[s] = true;
        break;
      }
      case StmtKind::If:
      case StmtKind::ElseIf: {
        Statement* taken = s->next();
        add_edge(s, taken);
        Statement* not_taken = s->kind() == StmtKind::If
                                   ? static_cast<IfStmt*>(s)->next_arm()
                                   : static_cast<ElseIfStmt*>(s)->next_arm();
        add_edge(s, not_taken);
        break;
      }
      case StmtKind::Else:
        add_edge(s, s->next());
        break;
      case StmtKind::Goto: {
        Statement* target = unit.stmts().find_label(
            static_cast<GotoStmt*>(s)->target());
        p_assert_msg(target != nullptr, "GOTO to unknown label");
        add_edge(s, target);
        break;
      }
      case StmtKind::Return:
      case StmtKind::Stop:
        exits_[s] = true;
        break;
      default: {
        Statement* after = resolve_fallthrough(s->next());
        if (after) add_edge(s, after);
        else exits_[s] = true;
        break;
      }
    }
  }
}

void ControlFlowGraph::add_edge(Statement* from, Statement* to) {
  p_assert(from != nullptr && to != nullptr);
  succ_[from].push_back(to);
  pred_[to].push_back(from);
}

const std::vector<Statement*>& ControlFlowGraph::successors(
    Statement* s) const {
  auto it = succ_.find(s);
  return it == succ_.end() ? empty_ : it->second;
}

const std::vector<Statement*>& ControlFlowGraph::predecessors(
    Statement* s) const {
  auto it = pred_.find(s);
  return it == pred_.end() ? empty_ : it->second;
}

bool ControlFlowGraph::exits(Statement* s) const {
  auto it = exits_.find(s);
  return it != exits_.end() && it->second;
}

std::vector<Statement*> ControlFlowGraph::reachable() const {
  std::vector<Statement*> out;
  if (entry_ == nullptr) return out;
  std::set<Statement*> seen;
  std::vector<Statement*> work{entry_};
  seen.insert(entry_);
  while (!work.empty()) {
    Statement* s = work.back();
    work.pop_back();
    out.push_back(s);
    for (Statement* t : successors(s)) {
      if (seen.insert(t).second) work.push_back(t);
    }
  }
  return out;
}

bool ControlFlowGraph::reaches(Statement* from, Statement* target) const {
  std::set<Statement*> seen;
  std::vector<Statement*> work{from};
  seen.insert(from);
  while (!work.empty()) {
    Statement* s = work.back();
    work.pop_back();
    for (Statement* t : successors(s)) {
      if (t == target) return true;
      if (seen.insert(t).second) work.push_back(t);
    }
  }
  return false;
}

}  // namespace polaris
