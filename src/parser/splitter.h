// Cheap top-level unit splitter — the front half of parallel parsing.
//
// Program units (PROGRAM / SUBROUTINE / FUNCTION ... END) are textually
// independent: nothing in one unit changes how another one lexes or
// parses.  split_units scans the *physical* lines once, mirroring the
// lexer's logical-line discipline exactly (column-1 C/c/* and first
// non-blank '!' comments, '&' continuations, leading statement labels),
// and cuts a slice after every logical line that is exactly the unit
// terminator END.  Each slice then parses on a worker independently.
//
// The splitter never diagnoses anything: a malformed line simply stays
// inside whatever slice it falls in, and the per-slice parse reports the
// identical UserError a whole-file parse would have.  Comment and blank
// lines between units attach to the *following* slice, so a stray
// directive comment before a unit header misparses the same way in both
// modes.
#pragma once

#include <string>
#include <vector>

namespace polaris {

/// One top-level source slice: the text of (at most) one program unit,
/// terminator included, plus any leading comment/blank lines.
struct UnitSlice {
  std::string text;
  int start_line = 1;  ///< 1-based physical line of the slice's first line
};

/// Splits source text into per-unit slices.  Concatenating the slice
/// texts (plus dropped trailing comment/blank lines) reproduces the
/// input line-for-line; lexing slice i with `line_offset = start_line-1`
/// yields exactly the logical lines the whole-file lex assigns to that
/// unit.  Never throws: splitting is pure line classification.
std::vector<UnitSlice> split_units(const std::string& source);

}  // namespace polaris
