#include "parser/printer.h"

#include <map>
#include <ostream>
#include <sstream>

#include "support/assert.h"
#include "support/string_util.h"

namespace polaris {

namespace {

void print_label_margin(std::ostream& os, int label) {
  std::string lab = label == 0 ? "" : std::to_string(label);
  // 5-column label field plus one separator blank, fixed-form style.
  os << lab << std::string(lab.size() < 5 ? 5 - lab.size() : 0, ' ') << " ";
}

void print_indent(std::ostream& os, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
}

std::string dimension_text(const Symbol& s) {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < s.dims().size(); ++i) {
    if (i) os << ",";
    const Dimension& d = s.dims()[i];
    if (d.lower) {
      os << *d.lower << ":";
      if (d.upper) os << *d.upper;
      else os << "*";
    } else if (d.upper) {
      os << *d.upper;
    } else {
      os << "*";
    }
  }
  os << ")";
  return os.str();
}

void print_declarations(std::ostream& os, const ProgramUnit& unit) {
  // Type declarations grouped by type, in declaration order.
  std::map<TypeKind, std::vector<const Symbol*>> groups;
  for (const Symbol* s : unit.symtab().symbols()) {
    if (s->kind() == SymbolKind::Variable ||
        s->kind() == SymbolKind::Parameter)
      groups[s->type().kind()].push_back(s);
  }
  for (const auto& [kind, syms] : groups) {
    Type t(kind);
    std::vector<std::string> items;
    for (const Symbol* s : syms) {
      std::string item = s->name();
      if (s->is_array()) item += dimension_text(*s);
      items.push_back(item);
    }
    print_label_margin(os, 0);
    os << t.name() << " " << join(items, ", ") << "\n";
  }
  // PARAMETER statements.
  for (const Symbol* s : unit.symtab().symbols()) {
    if (s->kind() == SymbolKind::Parameter && s->param_value()) {
      print_label_margin(os, 0);
      os << "parameter (" << s->name() << " = " << *s->param_value() << ")\n";
    }
  }
  // COMMON blocks, preserving member order.
  std::map<std::string, std::vector<const Symbol*>> commons;
  for (const Symbol* s : unit.symtab().symbols())
    if (s->in_common()) commons[s->common_block()].push_back(s);
  for (const auto& [block, syms] : commons) {
    std::vector<std::string> items;
    for (const Symbol* s : syms) items.push_back(s->name());
    print_label_margin(os, 0);
    os << "common /" << block << "/ " << join(items, ", ") << "\n";
  }
  // DATA statements.
  for (const Symbol* s : unit.symtab().symbols()) {
    if (s->data_values().empty()) continue;
    print_label_margin(os, 0);
    os << "data " << s->name() << " /";
    for (size_t i = 0; i < s->data_values().size(); ++i) {
      if (i) os << ",";
      os << *s->data_values()[i];
    }
    os << "/\n";
  }
}

std::string reduction_op_text(ReductionKind k) {
  switch (k) {
    case ReductionKind::Sum: return "+";
    case ReductionKind::Product: return "*";
    case ReductionKind::Min: return "min";
    case ReductionKind::Max: return "max";
    case ReductionKind::None: break;
  }
  p_unreachable("bad ReductionKind");
}

void print_doall_directive(std::ostream& os, const DoStmt& d, int depth,
                           DirectiveStyle style) {
  print_label_margin(os, 0);
  print_indent(os, depth);
  const bool omp = style == DirectiveStyle::OpenMP;
  if (omp) {
    os << "!$omp parallel do";
    if (d.par.speculative) os << "  ! speculative (LRPD run-time test)";
  } else {
    os << "!csrd$ " << (d.par.speculative ? "speculative doall" : "doall");
  }
  if (!d.par.private_vars.empty()) {
    os << " private(";
    for (size_t i = 0; i < d.par.private_vars.size(); ++i) {
      if (i) os << ",";
      os << d.par.private_vars[i]->name();
    }
    os << ")";
  }
  for (const ReductionInfo& r : d.par.reductions) {
    os << " reduction(" << reduction_op_text(r.op) << ":" << r.var->name();
    if (!omp && r.histogram) os << ",histogram";
    os << ")";
  }
  if (!d.par.lastvalue_vars.empty()) {
    os << (omp ? " lastprivate(" : " lastvalue(");
    for (size_t i = 0; i < d.par.lastvalue_vars.size(); ++i) {
      if (i) os << ",";
      os << d.par.lastvalue_vars[i]->name();
    }
    os << ")";
  }
  if (!omp && !d.par.speculative_arrays.empty()) {
    os << " shadow(";
    for (size_t i = 0; i < d.par.speculative_arrays.size(); ++i) {
      if (i) os << ",";
      os << d.par.speculative_arrays[i]->name();
    }
    os << ")";
  }
  os << "\n";
}

void print_statements(std::ostream& os, const StmtList& stmts,
                      DirectiveStyle style) {
  int depth = 1;
  for (Statement* s : stmts) {
    switch (s->kind()) {
      case StmtKind::EndDo:
      case StmtKind::EndIf:
        --depth;
        break;
      case StmtKind::ElseIf:
      case StmtKind::Else:
        --depth;
        break;
      default:
        break;
    }
    if (s->kind() == StmtKind::Do) {
      const auto* d = static_cast<const DoStmt*>(s);
      if (d->par.is_parallel || (d->par.speculative &&
                                 style == DirectiveStyle::Csrd))
        print_doall_directive(os, *d, depth, style);
    }
    print_label_margin(os, s->label());
    if (s->kind() != StmtKind::Comment) print_indent(os, depth);
    os << *s << "\n";
    switch (s->kind()) {
      case StmtKind::Do:
      case StmtKind::If:
      case StmtKind::ElseIf:
      case StmtKind::Else:
        ++depth;
        break;
      default:
        break;
    }
  }
}

}  // namespace

void print_unit(std::ostream& os, const ProgramUnit& unit,
                DirectiveStyle style) {
  print_label_margin(os, 0);
  switch (unit.kind()) {
    case UnitKind::Program:
      os << "program " << unit.name() << "\n";
      break;
    case UnitKind::Subroutine: {
      os << "subroutine " << unit.name();
      if (!unit.formals().empty()) {
        os << "(";
        for (size_t i = 0; i < unit.formals().size(); ++i) {
          if (i) os << ",";
          os << unit.formals()[i]->name();
        }
        os << ")";
      }
      os << "\n";
      break;
    }
    case UnitKind::Function: {
      p_assert(unit.result() != nullptr);
      os << unit.result()->type().name() << " function " << unit.name() << "(";
      for (size_t i = 0; i < unit.formals().size(); ++i) {
        if (i) os << ",";
        os << unit.formals()[i]->name();
      }
      os << ")\n";
      break;
    }
  }
  print_declarations(os, unit);
  print_statements(os, unit.stmts(), style);
  print_label_margin(os, 0);
  os << "end\n";
}

void print_program(std::ostream& os, const Program& program,
                   DirectiveStyle style) {
  for (const auto& unit : program.units()) {
    print_unit(os, *unit, style);
    os << "\n";
  }
}

std::string to_source(const ProgramUnit& unit, DirectiveStyle style) {
  std::ostringstream os;
  print_unit(os, unit, style);
  return os.str();
}

std::string to_source(const Program& program, DirectiveStyle style) {
  std::ostringstream os;
  print_program(os, program, style);
  return os.str();
}

}  // namespace polaris
