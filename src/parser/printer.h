// Source printer (unparser).
//
// Regenerates compilable PF77 source from the IR, including reconstructed
// declaration sections and parallelization directives ("csrd$ doall ...")
// for loops the analysis marked parallel — Polaris's source-to-source
// output format.
#pragma once

#include <iosfwd>
#include <string>

#include "ir/program.h"

namespace polaris {

/// Directive dialect for parallel loops in the printed output.
/// Csrd emits the historical "!csrd$ doall ..." annotations; OpenMP emits
/// "!$omp parallel do ..." accepted by modern compilers (lastvalue maps to
/// lastprivate, histogram reductions to array reductions).
enum class DirectiveStyle { Csrd, OpenMP };

void print_unit(std::ostream& os, const ProgramUnit& unit,
                DirectiveStyle style = DirectiveStyle::Csrd);
void print_program(std::ostream& os, const Program& program,
                   DirectiveStyle style = DirectiveStyle::Csrd);

std::string to_source(const ProgramUnit& unit,
                      DirectiveStyle style = DirectiveStyle::Csrd);
std::string to_source(const Program& program,
                      DirectiveStyle style = DirectiveStyle::Csrd);

}  // namespace polaris
