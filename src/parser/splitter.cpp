#include "parser/splitter.h"

#include <cctype>

#include "parser/lexer.h"
#include "support/string_util.h"

namespace polaris {

namespace {

/// True when one assembled logical line is exactly the unit terminator:
/// an optional statement label, then the identifier END, then end of
/// statement — the token shape Parser::parse_unit tests with
/// `is_ident("end") && peek(1) == EndOfLine`.  Tokenization failures
/// (the lexer would diagnose this line) mean "not a terminator": the
/// line stays in its slice and the slice's parse reports the error.
bool is_end_logical_line(const std::string& pending) {
  // Mirror the lexer's label extraction: leading blanks, a digit run,
  // then a blank — only then is the digit run a label and stripped.
  std::size_t i = 0;
  while (i < pending.size() && (pending[i] == ' ' || pending[i] == '\t'))
    ++i;
  std::size_t lab_start = i;
  while (i < pending.size() &&
         std::isdigit(static_cast<unsigned char>(pending[i])))
    ++i;
  std::size_t body_start = lab_start;
  if (i > lab_start && i < pending.size() &&
      (pending[i] == ' ' || pending[i] == '\t'))
    body_start = i;
  // Cheap prefilter before paying for tokenization: the terminator's
  // first significant character can only be e/E.
  std::size_t j = body_start;
  while (j < pending.size() && (pending[j] == ' ' || pending[j] == '\t'))
    ++j;
  if (j >= pending.size() || (pending[j] != 'e' && pending[j] != 'E'))
    return false;
  try {
    std::vector<Token> toks = tokenize(pending.substr(body_start));
    return toks.size() == 2 && toks[0].kind == TokKind::Ident &&
           toks[0].text == "end";
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

std::vector<UnitSlice> split_units(const std::string& source) {
  std::vector<UnitSlice> slices;
  std::vector<std::string> physical = split(source, '\n');
  // split() yields one empty element for the final '\n' (not a real blank
  // line — finish_slice re-appends the newline itself); drop exactly it.
  if (!physical.empty() && physical.back().empty()) physical.pop_back();

  std::size_t slice_start = 0;   // first physical line of the open slice
  bool has_content = false;      // open slice holds a logical line/directive
  std::string pending;           // logical line under assembly (lex mirror)
  std::size_t pending_last = 0;  // last physical line joined into pending

  auto finish_slice = [&](std::size_t end) {
    std::string text;
    for (std::size_t k = slice_start; k < end; ++k) {
      text += physical[k];
      text += '\n';
    }
    UnitSlice s;
    s.text = std::move(text);
    s.start_line = static_cast<int>(slice_start) + 1;
    slices.push_back(std::move(s));
    slice_start = end;
    has_content = false;
  };

  // The cut happens when the terminator's logical line is *complete*,
  // i.e. at the next non-continuation line (or EOF) — by then comment
  // lines may already sit between the END and the cursor, and they
  // belong to the next slice (pending_last + 1 excludes them), so a
  // directive comment ahead of the next unit header misparses there
  // exactly as it does in a whole-file parse.
  auto flush_pending = [&]() {
    if (pending.empty()) return;
    if (is_end_logical_line(pending)) finish_slice(pending_last + 1);
    pending.clear();
  };

  // Line classification below mirrors lex() clause for clause; the two
  // loops must agree on what is a comment, a continuation, and a new
  // logical line, or a slice would lex differently than the whole file.
  for (std::size_t ln = 0; ln < physical.size(); ++ln) {
    std::string line = physical[ln];
    if (!line.empty() && line.back() == '\r') line.pop_back();

    std::string trimmed = trim(line);
    bool comment_col1 =
        !line.empty() && (line[0] == 'C' || line[0] == 'c' || line[0] == '*');
    bool comment_bang = !trimmed.empty() && trimmed[0] == '!';
    if (comment_col1 || comment_bang) {
      std::string body = comment_bang ? trim(trimmed.substr(1)) : trimmed;
      bool is_directive = starts_with(to_lower(body), "csrd$") ||
                          starts_with(to_lower(body), "$");
      if (is_directive) {
        flush_pending();
        has_content = true;  // directives lex to a kept logical line
      }
      continue;
    }
    if (trimmed.empty()) continue;

    bool continues_prev =
        (!pending.empty() && ends_with(trim(pending), "&")) ||
        (!pending.empty() && trimmed[0] == '&');
    if (continues_prev) {
      std::string prev = trim(pending);
      if (ends_with(prev, "&")) prev.pop_back();
      std::string cur = trimmed;
      if (!cur.empty() && cur[0] == '&') cur = cur.substr(1);
      pending = prev + " " + cur;
      pending_last = ln;
      continue;
    }
    flush_pending();
    pending = line;
    pending_last = ln;
    has_content = true;
  }
  flush_pending();
  // Trailing lines after the last END: only worth a slice when they lex
  // to something (a directive); pure comment/blank tails produce no
  // logical lines in a whole-file parse either.
  if (slice_start < physical.size() && has_content)
    finish_slice(physical.size());
  return slices;
}

}  // namespace polaris
