#include "parser/lexer.h"

#include <cctype>

#include "support/assert.h"
#include "support/string_util.h"

namespace polaris {

namespace {

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

const char* const kDotOps[] = {"lt", "le", "gt", "ge", "eq",  "ne",
                               "and", "or", "not", "true", "false"};

bool is_dot_op(const std::string& s) {
  for (const char* op : kDotOps)
    if (s == op) return true;
  return false;
}

[[noreturn]] void lex_error(int line, int col, const std::string& msg) {
  throw UserError("lex error at line " + std::to_string(line) + ", column " +
                  std::to_string(col) + ": " + msg);
}

}  // namespace

std::vector<Token> tokenize(const std::string& text, int source_line) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();
  auto push = [&](TokKind k, std::string t, int col) {
    Token tok;
    tok.kind = k;
    tok.text = std::move(t);
    tok.column = col;
    out.push_back(std::move(tok));
  };

  while (i < n) {
    char c = text[i];
    int col = static_cast<int>(i) + 1;
    if (c == ' ' || c == '\t') {
      ++i;
      continue;
    }
    if (c == '!') break;  // inline comment
    if (is_ident_start(c)) {
      size_t j = i;
      while (j < n && is_ident_char(text[j])) ++j;
      push(TokKind::Ident, to_lower(text.substr(i, j - i)), col);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      // Integer or real literal.  Careful: "1." followed by "lt." would be
      // a dot-op (e.g. "1.lt.x"); Fortran resolves this by checking whether
      // the characters after '.' form a dot operator.
      size_t j = i;
      while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      bool is_real = false;
      if (j < n && text[j] == '.') {
        // Peek: is this ".op." ?
        size_t k = j + 1;
        std::string word;
        while (k < n && std::isalpha(static_cast<unsigned char>(text[k])))
          word += static_cast<char>(std::tolower(text[k++]));
        if (!(k < n && text[k] == '.' && is_dot_op(word))) {
          is_real = true;
          ++j;
          while (j < n && std::isdigit(static_cast<unsigned char>(text[j])))
            ++j;
        }
      }
      bool is_double = false;
      if (j < n && (text[j] == 'e' || text[j] == 'E' || text[j] == 'd' ||
                    text[j] == 'D')) {
        size_t k = j + 1;
        if (k < n && (text[k] == '+' || text[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(text[k]))) {
          is_real = true;
          is_double = (text[j] == 'd' || text[j] == 'D');
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(text[j])))
            ++j;
        }
      }
      std::string lit = text.substr(i, j - i);
      Token tok;
      tok.column = col;
      if (is_real) {
        for (char& ch : lit)
          if (ch == 'd' || ch == 'D') ch = 'e';
        tok.kind = TokKind::RealLit;
        tok.real_value = std::stod(lit);
        tok.is_double = is_double;
      } else {
        tok.kind = TokKind::IntLit;
        tok.int_value = std::stoll(lit);
      }
      tok.text = lit;
      out.push_back(std::move(tok));
      i = j;
      continue;
    }
    if (c == '.') {
      // dot operator or real like ".5"
      size_t k = i + 1;
      std::string word;
      while (k < n && std::isalpha(static_cast<unsigned char>(text[k])))
        word += static_cast<char>(std::tolower(text[k++]));
      if (k < n && text[k] == '.' && is_dot_op(word)) {
        push(TokKind::DotOp, word, col);
        i = k + 1;
        continue;
      }
      lex_error(source_line, col, "unexpected '.'");
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      size_t j = i + 1;
      std::string value;
      while (true) {
        if (j >= n) lex_error(source_line, col, "unterminated string");
        if (text[j] == quote) {
          if (j + 1 < n && text[j + 1] == quote) {  // doubled quote escape
            value += quote;
            j += 2;
            continue;
          }
          break;
        }
        value += text[j++];
      }
      Token tok;
      tok.kind = TokKind::StringLit;
      tok.text = value;
      tok.column = col;
      out.push_back(std::move(tok));
      i = j + 1;
      continue;
    }
    // Punctuation, including two-char forms.
    auto two = [&](const char* s) {
      return i + 1 < n && text[i] == s[0] && text[i + 1] == s[1];
    };
    if (two("**")) { push(TokKind::Punct, "**", col); i += 2; continue; }
    if (two("<=")) { push(TokKind::Punct, "<=", col); i += 2; continue; }
    if (two(">=")) { push(TokKind::Punct, ">=", col); i += 2; continue; }
    if (two("==")) { push(TokKind::Punct, "==", col); i += 2; continue; }
    if (two("/=")) { push(TokKind::Punct, "/=", col); i += 2; continue; }
    if (std::string("()+-*/,=:<>").find(c) != std::string::npos) {
      push(TokKind::Punct, std::string(1, c), col);
      ++i;
      continue;
    }
    lex_error(source_line, col, std::string("unexpected character '") + c + "'");
  }
  Token eol;
  eol.kind = TokKind::EndOfLine;
  eol.column = static_cast<int>(n) + 1;
  out.push_back(std::move(eol));
  return out;
}

std::vector<LogicalLine> lex(const std::string& source) {
  return lex(source, /*line_offset=*/0);
}

std::vector<LogicalLine> lex(const std::string& source, int line_offset) {
  std::vector<LogicalLine> out;
  std::vector<std::string> physical = split(source, '\n');

  // Assemble logical lines.
  std::string pending;
  int pending_start = 0;
  auto flush = [&]() {
    if (pending.empty()) return;
    LogicalLine ll;
    ll.source_line = pending_start;
    // Extract a leading numeric label.
    size_t i = 0;
    while (i < pending.size() && (pending[i] == ' ' || pending[i] == '\t'))
      ++i;
    size_t lab_start = i;
    while (i < pending.size() &&
           std::isdigit(static_cast<unsigned char>(pending[i])))
      ++i;
    if (i > lab_start && i < pending.size() &&
        (pending[i] == ' ' || pending[i] == '\t')) {
      // Bounded accumulation instead of std::stoi: a hostile digit run
      // ("123456789012345 continue") must surface as a positioned
      // UserError, not escape the frontend as std::out_of_range.  The
      // Fortran 77 bound (labels are 1-99999) is checked after the
      // digits, so "00100" stays legal.
      long value = 0;
      for (size_t k = lab_start; k < i && value <= kMaxStatementLabel; ++k)
        value = value * 10 + (pending[k] - '0');
      if (value > kMaxStatementLabel)
        lex_error(pending_start, static_cast<int>(lab_start) + 1,
                  "statement label '" +
                      pending.substr(lab_start, i - lab_start) +
                      "' exceeds the maximum " +
                      std::to_string(kMaxStatementLabel));
      ll.label = static_cast<int>(value);
      pending = pending.substr(i);
    }
    ll.tokens = tokenize(pending, pending_start);
    if (ll.tokens.size() > 1 || ll.label != 0) out.push_back(std::move(ll));
    pending.clear();
  };

  for (size_t ln = 0; ln < physical.size(); ++ln) {
    std::string line = physical[ln];
    if (!line.empty() && line.back() == '\r') line.pop_back();

    // Fixed-form comment: C/c/*/! in column 1; free-form: first non-blank '!'.
    std::string trimmed = trim(line);
    bool comment_col1 =
        !line.empty() && (line[0] == 'C' || line[0] == 'c' || line[0] == '*');
    bool comment_bang = !trimmed.empty() && trimmed[0] == '!';
    if (comment_col1 || comment_bang) {
      // Keep directive comments ("csrd$ ..." or "!$...") verbatim; drop
      // ordinary comments.
      std::string body = comment_bang ? trim(trimmed.substr(1)) : trimmed;
      bool is_directive = starts_with(to_lower(body), "csrd$") ||
                          starts_with(to_lower(body), "$");
      if (is_directive) {
        flush();
        LogicalLine ll;
        ll.source_line = line_offset + static_cast<int>(ln) + 1;
        ll.is_comment = true;
        ll.comment = body;
        Token eol;
        eol.kind = TokKind::EndOfLine;
        ll.tokens.push_back(eol);
        out.push_back(std::move(ll));
      }
      continue;
    }
    if (trimmed.empty()) continue;

    // Continuation: previous line ended with '&', or this line starts with '&'.
    bool continues_prev =
        (!pending.empty() && ends_with(trim(pending), "&")) ||
        (!pending.empty() && trimmed[0] == '&');
    if (continues_prev) {
      std::string prev = trim(pending);
      if (ends_with(prev, "&")) prev.pop_back();
      std::string cur = trimmed;
      if (!cur.empty() && cur[0] == '&') cur = cur.substr(1);
      pending = prev + " " + cur;
      continue;
    }
    flush();
    pending = line;
    pending_start = line_offset + static_cast<int>(ln) + 1;
  }
  flush();
  return out;
}

}  // namespace polaris
