// Recursive-descent parser for the PF77 Fortran subset.
//
// Supported constructs (everything the paper's analyses exercise):
//   - PROGRAM / SUBROUTINE / FUNCTION units terminated by END
//   - type declarations: integer, real, real*8, double precision, logical
//   - DIMENSION, PARAMETER, COMMON, DATA (with n*value repeat counts),
//     IMPLICIT NONE, SAVE/EXTERNAL/INTRINSIC (accepted and ignored)
//   - DO / ENDDO loops, classic labeled "DO 100 I = ..." loops
//   - block IF / ELSE IF / ELSE / END IF, logical IF (desugared to a block)
//   - assignment, CALL, GOTO, CONTINUE, RETURN, STOP, PRINT *, WRITE(*,*)
//   - expressions with Fortran operators, intrinsic calls, user function
//     calls, and implicit i-n integer typing
//
// Unsupported Fortran 77 (EQUIVALENCE, arithmetic IF, computed GOTO,
// FORMAT/file I/O, ENTRY, statement functions, CHARACTER operations) raises
// UserError with a clear message.
#pragma once

#include <memory>
#include <string>

#include "ir/program.h"

namespace polaris {

class CompileContext;  // support/context.h

/// Parses Fortran source text into a Program.  If the source does not begin
/// with a unit header, the statements are wrapped in an implicit
/// "program main".  Throws UserError on malformed input — including input
/// degenerate enough to trip a parser invariant: InternalError never
/// escapes this boundary.
std::unique_ptr<Program> parse_program(const std::string& source);
/// Same, attributed to a compilation: emits the "parse" trace span (with
/// a unit-count arg) into `cc`'s collector.  Null behaves like the short
/// form.
std::unique_ptr<Program> parse_program(const std::string& source,
                                       CompileContext* cc);
/// Same, parsing program units in parallel on `cc`'s worker pool when
/// `jobs > 1`: the source is split into per-unit slices (see
/// parser/splitter.h), each slice parses independently with per-slice
/// error capture, and the fragments merge in textual unit order.  Output
/// is byte-identical at any jobs count; a malformed unit poisons only
/// itself and the textually-first slice error is the one reported.  After
/// the merge, statement and symbol ids are renumbered 1..n in textual
/// order, so id-derived names ("do#<id>") never depend on scheduling or
/// on earlier compilations in the process.
std::unique_ptr<Program> parse_program(const std::string& source,
                                       CompileContext* cc, int jobs);

/// Parses a single expression (test and tooling helper).  Symbols are
/// resolved/created in `symtab` with implicit typing.
ExprPtr parse_expression(const std::string& text, SymbolTable& symtab);

/// True if `name` names a recognized Fortran intrinsic (after alias
/// canonicalization: dabs -> abs, amax1 -> max, ...).
bool is_intrinsic_name(const std::string& name);

/// Canonical generic name of an intrinsic ("dsqrt" -> "sqrt").
std::string canonical_intrinsic(const std::string& name);

}  // namespace polaris
