// Line-oriented lexer for the PF77 Fortran subset.
//
// Works in two stages, mirroring Fortran's line discipline:
//   1. LogicalLine assembly: comment lines dropped (a line whose first
//      non-blank character is '!' or whose column-1 character is C/c/*),
//      continuations joined ('&' at end of line, or a leading '&' on the
//      next line), statement labels (leading integers) extracted.
//   2. Tokenization of each logical line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace polaris {

enum class TokKind {
  Ident,
  IntLit,
  RealLit,     ///< value in `real_value`, is_double flags d-exponent
  StringLit,
  Punct,       ///< text in `text`: ( ) , = : ** * / + - < <= > >= == /=
  DotOp,       ///< .lt. .le. .gt. .ge. .eq. .ne. .and. .or. .not. .true. .false.
  EndOfLine,
};

struct Token {
  TokKind kind = TokKind::EndOfLine;
  std::string text;         ///< identifier (lower-cased), punct, or dot-op name
  std::int64_t int_value = 0;
  double real_value = 0.0;
  bool is_double = false;   ///< real literal had a 'd' exponent
  int column = 0;           ///< for error messages
};

struct LogicalLine {
  int label = 0;             ///< statement label, 0 if none
  int source_line = 0;       ///< first physical line number
  std::vector<Token> tokens; ///< always terminated by EndOfLine
  std::string comment;       ///< set when the line is a kept directive/comment
  bool is_comment = false;
};

/// Largest accepted statement label (the Fortran 77 five-digit field).
/// Longer digit runs are rejected with a positioned UserError — the bound
/// exists so a hostile label can never overflow the accumulator.
constexpr long kMaxStatementLabel = 99999;

/// Splits Fortran source text into logical lines and tokenizes them.
/// Throws UserError on malformed input (bad characters, unterminated
/// strings, out-of-range statement labels).  Directive comments beginning
/// with "csrd$" or "!$" are kept as comment lines; ordinary comments are
/// dropped.
std::vector<LogicalLine> lex(const std::string& source);

/// Same, with every reported line number offset by `line_offset` physical
/// lines — the per-unit parallel parse lexes source *slices* but must
/// diagnose with whole-file line numbers.
std::vector<LogicalLine> lex(const std::string& source, int line_offset);

/// Tokenizes one statement's text (no labels/continuations); test helper
/// and building block for expression parsing utilities.
std::vector<Token> tokenize(const std::string& text, int source_line = 0);

}  // namespace polaris
