#include "parser/parser.h"

#include <map>
#include <optional>
#include <set>

#include <exception>

#include "ir/build.h"
#include "parser/lexer.h"
#include "parser/splitter.h"
#include "support/context.h"
#include "support/trace.h"
#include "support/string_util.h"

namespace polaris {

namespace {

// --- intrinsics ---------------------------------------------------------------

const std::map<std::string, std::string>& intrinsic_aliases() {
  static const std::map<std::string, std::string> aliases = {
      {"iabs", "abs"},   {"dabs", "abs"},   {"cabs", "abs"},
      {"amax1", "max"},  {"max0", "max"},   {"dmax1", "max"},
      {"amin1", "min"},  {"min0", "min"},   {"dmin1", "min"},
      {"dsqrt", "sqrt"}, {"dexp", "exp"},   {"alog", "log"},
      {"dlog", "log"},   {"dcos", "cos"},   {"dsin", "sin"},
      {"dtan", "tan"},   {"datan", "atan"}, {"datan2", "atan2"},
      {"dmod", "mod"},   {"amod", "mod"},   {"idint", "int"},
      {"ifix", "int"},   {"float", "real"}, {"dfloat", "dble"},
      {"isign", "sign"}, {"dsign", "sign"}, {"idnint", "nint"},
  };
  return aliases;
}

const std::set<std::string>& intrinsic_names() {
  static const std::set<std::string> names = {
      "abs", "max",  "min",  "mod",  "sqrt", "exp",  "log",   "log10",
      "sin", "cos",  "tan",  "atan", "atan2", "sign", "int",  "nint",
      "real", "dble", "iand", "ior",  "ieor",
  };
  return names;
}

Type intrinsic_result_type(const std::string& name,
                           const std::vector<ExprPtr>& args) {
  auto promote_args = [&]() {
    Type t = Type::integer();
    for (const auto& a : args) t = Type::promote(t, a->type());
    return t;
  };
  if (name == "int" || name == "nint" || name == "iand" || name == "ior" ||
      name == "ieor")
    return Type::integer();
  if (name == "real") return Type::real();
  if (name == "dble") return Type::double_precision();
  if (name == "abs" || name == "max" || name == "min" || name == "mod" ||
      name == "sign")
    return promote_args();
  // Transcendentals: at least real.
  Type t = promote_args();
  return t.is_integer() ? Type::real() : t;
}

Type implicit_type(const std::string& name) {
  p_assert(!name.empty());
  char c = name[0];
  return (c >= 'i' && c <= 'n') ? Type::integer() : Type::real();
}

// --- token cursor -------------------------------------------------------------

/// Cursor over one logical line's tokens.
class Cursor {
 public:
  Cursor(const std::vector<Token>& toks, int line)
      : toks_(toks), line_(line) {}

  const Token& peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& next() {
    const Token& t = peek();
    if (pos_ < toks_.size() - 1) ++pos_;
    return t;
  }
  bool at_end() const { return peek().kind == TokKind::EndOfLine; }

  bool is_punct(const std::string& p, int ahead = 0) const {
    return peek(ahead).kind == TokKind::Punct && peek(ahead).text == p;
  }
  bool is_ident(const std::string& name, int ahead = 0) const {
    return peek(ahead).kind == TokKind::Ident && peek(ahead).text == name;
  }
  bool accept_punct(const std::string& p) {
    if (!is_punct(p)) return false;
    next();
    return true;
  }
  bool accept_ident(const std::string& name) {
    if (!is_ident(name)) return false;
    next();
    return true;
  }
  void expect_punct(const std::string& p) {
    if (!accept_punct(p)) error("expected '" + p + "'");
  }
  std::string expect_ident() {
    if (peek().kind != TokKind::Ident) error("expected identifier");
    return next().text;
  }
  void expect_end() {
    if (!at_end()) error("unexpected trailing tokens ('" + peek().text + "')");
  }

  [[noreturn]] void error(const std::string& msg) const {
    throw UserError("parse error at line " + std::to_string(line_) + ": " +
                    msg);
  }

  int line() const { return line_; }

 private:
  const std::vector<Token>& toks_;
  int line_;
  size_t pos_ = 0;
};

// --- the parser ------------------------------------------------------------------

class Parser {
 public:
  /// `line_offset` shifts every diagnostic's line number: a parallel parse
  /// hands each Parser one unit *slice*, and errors must still point at
  /// whole-file lines.
  explicit Parser(const std::string& source, int line_offset = 0)
      : lines_(lex(source, line_offset)) {}

  std::unique_ptr<Program> parse() {
    auto program = std::make_unique<Program>();
    while (pos_ < lines_.size()) {
      program->add_unit(parse_unit());
    }
    return program;
  }

 private:
  // --- unit-level parsing -----------------------------------------------------

  std::unique_ptr<ProgramUnit> parse_unit() {
    const LogicalLine& first = lines_[pos_];
    p_assert(!first.is_comment || first.tokens.size() == 1);
    Cursor c(first.tokens, first.source_line);

    std::unique_ptr<ProgramUnit> unit;
    if (c.is_ident("program")) {
      c.next();
      unit = std::make_unique<ProgramUnit>(UnitKind::Program,
                                           c.expect_ident());
      c.expect_end();
      ++pos_;
    } else if (c.is_ident("subroutine")) {
      c.next();
      unit = std::make_unique<ProgramUnit>(UnitKind::Subroutine,
                                           c.expect_ident());
      parse_formals(c, *unit);
      c.expect_end();
      ++pos_;
    } else if (is_function_header(c)) {
      unit = parse_function_header(c);
      ++pos_;
    } else {
      // Implicit "program main" wrapping bare statements.
      unit = std::make_unique<ProgramUnit>(UnitKind::Program, "main");
    }

    unit_ = unit.get();
    in_decls_ = true;
    implicit_none_ = false;
    labeled_do_stack_.clear();
    pending_.clear();
    pending_directive_.reset();

    bool ended = false;
    while (pos_ < lines_.size()) {
      const LogicalLine& ll = lines_[pos_];
      if (ll.is_comment) {
        // "csrd$ [speculative] doall ..." directives re-attach the
        // parallelization annotations to the following DO (so Polaris
        // output is executable as-is); other comments are kept verbatim.
        std::string low = to_lower(ll.comment);
        if (starts_with(low, "csrd$") &&
            low.find("doall") != std::string::npos) {
          pending_directive_ = low;
        } else {
          pending_.push_back(std::make_unique<CommentStmt>(ll.comment));
        }
        ++pos_;
        continue;
      }
      Cursor cur(ll.tokens, ll.source_line);
      if (cur.is_ident("end") && cur.peek(1).kind == TokKind::EndOfLine) {
        ++pos_;
        ended = true;
        break;
      }
      if (ll.label == 0 && in_decls_ && try_parse_declaration(cur)) {
        ++pos_;
        continue;
      }
      in_decls_ = false;
      parse_statement(cur, ll.label);
      ++pos_;
    }
    if (!ended && unit_->kind() != UnitKind::Program)
      throw UserError("missing END for unit " + unit_->name());
    if (!labeled_do_stack_.empty())
      throw UserError("unterminated labeled DO in " + unit_->name());
    // Statements were assembled in a detached fragment (the paper's
    // List<Statement> idiom); consistency is checked at incorporation.
    unit_->stmts().splice_back(std::move(pending_));
    pending_.clear();
    unit_ = nullptr;
    return unit;
  }

  bool is_function_header(Cursor& c) const {
    if (c.is_ident("function")) return true;
    // "real function f(...)", "integer function ...", "double precision
    // function ..."
    if (c.is_ident("integer") || c.is_ident("real") || c.is_ident("logical"))
      return c.is_ident("function", 1);
    if (c.is_ident("double") && c.is_ident("precision", 1))
      return c.is_ident("function", 2);
    return false;
  }

  std::unique_ptr<ProgramUnit> parse_function_header(Cursor& c) {
    Type t;  // none => implicit
    if (c.accept_ident("integer")) t = Type::integer();
    else if (c.accept_ident("real")) t = Type::real();
    else if (c.accept_ident("logical")) t = Type::logical();
    else if (c.accept_ident("double")) {
      if (!c.accept_ident("precision")) c.error("expected 'precision'");
      t = Type::double_precision();
    }
    if (!c.accept_ident("function")) c.error("expected 'function'");
    std::string name = c.expect_ident();
    auto unit = std::make_unique<ProgramUnit>(UnitKind::Function, name);
    if (t.kind() == TypeKind::None) t = implicit_type(name);
    Symbol* result = unit->symtab().declare(name, t, SymbolKind::Variable);
    unit->set_result(result);
    parse_formals(c, *unit);
    c.expect_end();
    return unit;
  }

  void parse_formals(Cursor& c, ProgramUnit& unit) {
    if (!c.accept_punct("(")) return;
    if (c.accept_punct(")")) return;
    while (true) {
      std::string name = c.expect_ident();
      Symbol* s = unit.symtab().declare(name, implicit_type(name),
                                        SymbolKind::Variable);
      unit.add_formal(s);
      if (c.accept_punct(")")) break;
      c.expect_punct(",");
    }
  }

  // --- declarations ---------------------------------------------------------

  bool try_parse_declaration(Cursor& c) {
    if (c.peek().kind != TokKind::Ident) return false;
    const std::string& kw = c.peek().text;
    if (kw == "integer" || kw == "real" || kw == "logical" ||
        kw == "double") {
      // Distinguish a declaration from an assignment to a variable with a
      // keyword-like name: declarations are followed by an identifier (or
      // *len) rather than '='.
      if (c.is_punct("=", 1)) return false;
      parse_type_decl(c);
      return true;
    }
    if (kw == "dimension" && !c.is_punct("=", 1)) {
      c.next();
      parse_decl_items(c, Type(), /*dimension_only=*/true);
      return true;
    }
    if (kw == "parameter" && c.is_punct("(", 1)) {
      c.next();
      parse_parameter(c);
      return true;
    }
    if (kw == "common" && !c.is_punct("=", 1)) {
      c.next();
      parse_common(c);
      return true;
    }
    if (kw == "data" && !c.is_punct("=", 1)) {
      c.next();
      parse_data(c);
      return true;
    }
    if (kw == "implicit") {
      c.next();
      if (c.accept_ident("none")) {
        implicit_none_ = true;
        c.expect_end();
        return true;
      }
      c.error("only IMPLICIT NONE is supported");
    }
    if (kw == "save" || kw == "external" || kw == "intrinsic") {
      return true;  // accepted and ignored (whole line)
    }
    return false;
  }

  void parse_type_decl(Cursor& c) {
    Type t;
    if (c.accept_ident("integer")) t = Type::integer();
    else if (c.accept_ident("logical")) t = Type::logical();
    else if (c.accept_ident("real")) {
      t = Type::real();
      if (c.accept_punct("*")) {
        const Token& len = c.next();
        if (len.kind != TokKind::IntLit) c.error("expected length after '*'");
        if (len.int_value == 8) t = Type::double_precision();
      }
    } else if (c.accept_ident("double")) {
      if (!c.accept_ident("precision")) c.error("expected 'precision'");
      t = Type::double_precision();
    } else {
      c.error("expected type keyword");
    }
    parse_decl_items(c, t, /*dimension_only=*/false);
  }

  void parse_decl_items(Cursor& c, Type t, bool dimension_only) {
    while (true) {
      std::string name = c.expect_ident();
      Symbol* s = unit_->symtab().lookup(name);
      if (s == nullptr) {
        Type st = dimension_only ? implicit_type(name) : t;
        s = unit_->symtab().declare(name, st, SymbolKind::Variable);
      } else if (!dimension_only) {
        s->set_type(t);
      }
      if (c.is_punct("(")) {
        std::vector<Dimension> dims = parse_dims(c);
        p_assert_msg(!s->is_array() || s->dims().empty(),
                     "array redimensioned: " + name);
        s->set_dims(std::move(dims));
      }
      if (c.at_end()) break;
      c.expect_punct(",");
    }
  }

  std::vector<Dimension> parse_dims(Cursor& c) {
    c.expect_punct("(");
    std::vector<Dimension> dims;
    while (true) {
      if (c.is_punct("*")) {
        c.next();
        dims.emplace_back(nullptr, nullptr);  // assumed size
      } else {
        ExprPtr first = parse_expr(c);
        if (c.accept_punct(":")) {
          if (c.is_punct("*")) {
            c.next();
            dims.emplace_back(std::move(first), nullptr);
          } else {
            ExprPtr upper = parse_expr(c);
            dims.emplace_back(std::move(first), std::move(upper));
          }
        } else {
          dims.emplace_back(nullptr, std::move(first));
        }
      }
      if (c.accept_punct(")")) break;
      c.expect_punct(",");
    }
    return dims;
  }

  void parse_parameter(Cursor& c) {
    c.expect_punct("(");
    while (true) {
      std::string name = c.expect_ident();
      c.expect_punct("=");
      ExprPtr value = parse_expr(c);
      Symbol* s = unit_->symtab().lookup(name);
      if (s == nullptr)
        s = unit_->symtab().declare(name, implicit_type(name),
                                    SymbolKind::Parameter);
      else
        s->set_kind(SymbolKind::Parameter);
      s->set_param_value(std::move(value));
      if (c.accept_punct(")")) break;
      c.expect_punct(",");
    }
    c.expect_end();
  }

  void parse_common(Cursor& c) {
    c.expect_punct("/");
    std::string block = c.expect_ident();
    c.expect_punct("/");
    while (true) {
      std::string name = c.expect_ident();
      Symbol* s = unit_->symtab().get_or_declare(name, implicit_type(name));
      s->set_common_block(block);
      if (c.is_punct("(")) {
        std::vector<Dimension> dims = parse_dims(c);
        s->set_dims(std::move(dims));
      }
      if (c.at_end()) break;
      c.expect_punct(",");
    }
  }

  void parse_data(Cursor& c) {
    // data v1, v2, ... / val1, r*val2, ... /
    std::vector<Symbol*> vars;
    while (true) {
      std::string name = c.expect_ident();
      Symbol* s = unit_->symtab().lookup(name);
      if (s == nullptr) c.error("DATA for undeclared variable " + name);
      vars.push_back(s);
      if (c.is_punct("/")) break;
      c.expect_punct(",");
    }
    c.expect_punct("/");
    std::vector<ExprPtr> values;
    while (true) {
      std::int64_t repeat = 1;
      if (c.peek().kind == TokKind::IntLit && c.is_punct("*", 1)) {
        repeat = c.next().int_value;
        c.next();  // '*'
      }
      // DATA values are (signed) constants or named constants — never
      // general expressions, or the closing '/' would parse as division.
      ExprPtr v = parse_data_value(c);
      for (std::int64_t r = 0; r < repeat - 1; ++r)
        values.push_back(v->clone());
      values.push_back(std::move(v));
      if (c.accept_punct("/")) break;
      c.expect_punct(",");
    }
    c.expect_end();
    // Distribute values across the listed variables in order.
    size_t vi = 0;
    for (Symbol* s : vars) {
      std::int64_t count = s->is_array() ? element_count(*s, c) : 1;
      for (std::int64_t k = 0; k < count; ++k) {
        p_assert_msg(vi < values.size(),
                     "DATA: not enough values for " + s->name());
        s->add_data_value(std::move(values[vi++]));
      }
    }
    if (vi != values.size()) c.error("DATA: surplus values");
  }

  /// One DATA value: [+|-] literal | named-constant | .true./.false.
  ExprPtr parse_data_value(Cursor& c) {
    bool negate = false;
    if (c.accept_punct("-")) negate = true;
    else c.accept_punct("+");
    ExprPtr v;
    const Token& t = c.peek();
    if (t.kind == TokKind::IntLit) {
      c.next();
      v = ib::ic(t.int_value);
    } else if (t.kind == TokKind::RealLit) {
      c.next();
      v = ib::rc(t.real_value, t.is_double);
    } else if (t.kind == TokKind::DotOp &&
               (t.text == "true" || t.text == "false")) {
      c.next();
      v = ib::lc(t.text == "true");
    } else if (t.kind == TokKind::Ident) {
      std::string name = c.next().text;
      Symbol* s = unit_->symtab().lookup(name);
      if (s == nullptr || s->kind() != SymbolKind::Parameter)
        c.error("DATA value must be a constant, got '" + name + "'");
      v = ib::var(s);
    } else {
      c.error("expected a constant in DATA");
    }
    return negate ? ib::neg(std::move(v)) : std::move(v);
  }

  /// Statically-evaluated element count of an array (dims must fold to
  /// constants through PARAMETER symbols).
  std::int64_t element_count(const Symbol& s, Cursor& c) {
    std::int64_t total = 1;
    for (const Dimension& d : s.dims()) {
      std::optional<std::int64_t> lo =
          d.lower ? fold_int(*d.lower) : std::optional<std::int64_t>(1);
      if (!d.upper) c.error("DATA for assumed-size array " + s.name());
      std::optional<std::int64_t> hi = fold_int(*d.upper);
      if (!lo || !hi) c.error("DATA needs constant bounds for " + s.name());
      total *= (*hi - *lo + 1);
    }
    return total;
  }

  /// Folds an expression of integer literals and integer PARAMETERs.
  static std::optional<std::int64_t> fold_int(const Expression& e) {
    switch (e.kind()) {
      case ExprKind::IntConst:
        return static_cast<const IntConst&>(e).value();
      case ExprKind::VarRef: {
        const Symbol* s = static_cast<const VarRef&>(e).symbol();
        if (s->kind() == SymbolKind::Parameter && s->param_value())
          return fold_int(*s->param_value());
        return std::nullopt;
      }
      case ExprKind::UnOp: {
        const auto& u = static_cast<const UnOp&>(e);
        if (u.op() != UnOpKind::Neg) return std::nullopt;
        auto v = fold_int(u.operand());
        return v ? std::optional<std::int64_t>(-*v) : std::nullopt;
      }
      case ExprKind::BinOp: {
        const auto& b = static_cast<const BinOp&>(e);
        auto l = fold_int(b.left());
        auto r = fold_int(b.right());
        if (!l || !r) return std::nullopt;
        switch (b.op()) {
          case BinOpKind::Add: return *l + *r;
          case BinOpKind::Sub: return *l - *r;
          case BinOpKind::Mul: return *l * *r;
          case BinOpKind::Div: return *r == 0 ? std::nullopt
                                              : std::optional<std::int64_t>(*l / *r);
          default: return std::nullopt;
        }
      }
      default:
        return std::nullopt;
    }
  }

  // --- executable statements ----------------------------------------------------

  void parse_statement(Cursor& c, int label) {
    Statement* stmt = parse_one_statement(c, label);
    (void)stmt;
    close_labeled_dos(label);
  }

  Statement* parse_one_statement(Cursor& c, int label) {
    if (c.peek().kind != TokKind::Ident)
      c.error("expected a statement");
    const std::string kw = c.peek().text;

    // Assignment?  ident ( '=' | '(' ... ')' '=' )
    if (is_assignment(c)) return parse_assignment(c, label);

    if (kw == "do") return parse_do(c, label);
    if (kw == "enddo" ||
        (kw == "end" && c.is_ident("do", 1)))
      return parse_enddo(c, label);
    if (kw == "if") return parse_if(c, label);
    if (kw == "elseif" || (kw == "else" && c.is_ident("if", 1)))
      return parse_elseif(c, label);
    if (kw == "else") {
      c.next();
      c.expect_end();
      return add(std::make_unique<ElseStmt>(), label);
    }
    if (kw == "endif" || (kw == "end" && c.is_ident("if", 1))) {
      c.next();
      if (c.is_ident("if")) c.next();
      c.expect_end();
      return add(std::make_unique<EndIfStmt>(), label);
    }
    if (kw == "goto" || (kw == "go" && c.is_ident("to", 1))) {
      c.next();
      if (c.is_ident("to")) c.next();
      const Token& t = c.next();
      if (t.kind != TokKind::IntLit) c.error("expected label after GOTO");
      c.expect_end();
      return add(std::make_unique<GotoStmt>(static_cast<int>(t.int_value)),
                 label);
    }
    if (kw == "continue") {
      c.next();
      c.expect_end();
      return add(std::make_unique<ContinueStmt>(), label);
    }
    if (kw == "call") return parse_call(c, label);
    if (kw == "return") {
      c.next();
      c.expect_end();
      return add(std::make_unique<ReturnStmt>(), label);
    }
    if (kw == "stop") {
      c.next();
      if (!c.at_end()) c.next();  // optional stop code, ignored
      c.expect_end();
      return add(std::make_unique<StopStmt>(), label);
    }
    if (kw == "print") return parse_print(c, label);
    if (kw == "write") return parse_write(c, label);

    c.error("unsupported or unrecognized statement '" + kw + "'");
  }

  bool is_assignment(Cursor& c) {
    if (c.peek().kind != TokKind::Ident) return false;
    if (c.is_punct("=", 1)) return true;
    if (!c.is_punct("(", 1)) return false;
    // Scan for ')' at depth 0 followed by '='.
    int depth = 0;
    for (int i = 1;; ++i) {
      const Token& t = c.peek(i);
      if (t.kind == TokKind::EndOfLine) return false;
      if (t.kind == TokKind::Punct) {
        if (t.text == "(") ++depth;
        else if (t.text == ")") {
          --depth;
          if (depth == 0) return c.is_punct("=", i + 1);
        }
      }
    }
  }

  Statement* parse_assignment(Cursor& c, int label) {
    ExprPtr lhs = parse_primary(c, /*lvalue=*/true);
    c.expect_punct("=");
    ExprPtr rhs = parse_expr(c);
    c.expect_end();
    return add(std::make_unique<AssignStmt>(std::move(lhs), std::move(rhs)),
               label);
  }

  Statement* parse_do(Cursor& c, int label) {
    c.next();  // 'do'
    int terminal_label = 0;
    if (c.peek().kind == TokKind::IntLit) {
      terminal_label = static_cast<int>(c.next().int_value);
    }
    std::string index_name = c.expect_ident();
    Symbol* index = resolve_scalar(index_name, c);
    c.expect_punct("=");
    ExprPtr init = parse_expr(c);
    c.expect_punct(",");
    ExprPtr limit = parse_expr(c);
    ExprPtr step;
    if (c.accept_punct(",")) step = parse_expr(c);
    c.expect_end();
    auto stmt = std::make_unique<DoStmt>(index, std::move(init),
                                         std::move(limit), std::move(step));
    if (pending_directive_) {
      apply_doall_directive(*stmt, *pending_directive_, c);
      pending_directive_.reset();
    }
    Statement* raw = add(std::move(stmt), label);
    if (terminal_label != 0) labeled_do_stack_.push_back(terminal_label);
    return raw;
  }

  Statement* parse_enddo(Cursor& c, int label) {
    c.next();
    if (c.is_ident("do")) c.next();
    c.expect_end();
    return add(std::make_unique<EndDoStmt>(), label);
  }

  Statement* parse_if(Cursor& c, int label) {
    c.next();  // 'if'
    c.expect_punct("(");
    ExprPtr cond = parse_expr(c);
    c.expect_punct(")");
    if (c.accept_ident("then")) {
      c.expect_end();
      return add(std::make_unique<IfStmt>(std::move(cond)), label);
    }
    // Logical IF: desugar to a one-statement block IF.
    Statement* ifs = add(std::make_unique<IfStmt>(std::move(cond)), label);
    parse_one_statement(c, 0);
    add(std::make_unique<EndIfStmt>(), 0);
    return ifs;
  }

  Statement* parse_elseif(Cursor& c, int label) {
    c.next();
    if (c.is_ident("if")) c.next();
    c.expect_punct("(");
    ExprPtr cond = parse_expr(c);
    c.expect_punct(")");
    if (!c.accept_ident("then")) c.error("expected THEN");
    c.expect_end();
    return add(std::make_unique<ElseIfStmt>(std::move(cond)), label);
  }

  Statement* parse_call(Cursor& c, int label) {
    c.next();  // 'call'
    std::string name = c.expect_ident();
    std::vector<ExprPtr> args;
    if (c.accept_punct("(")) {
      if (!c.accept_punct(")")) {
        while (true) {
          args.push_back(parse_expr(c));
          if (c.accept_punct(")")) break;
          c.expect_punct(",");
        }
      }
    }
    c.expect_end();
    return add(std::make_unique<CallStmt>(name, std::move(args)), label);
  }

  Statement* parse_print(Cursor& c, int label) {
    c.next();  // 'print'
    c.expect_punct("*");
    std::vector<ExprPtr> items;
    while (c.accept_punct(",")) items.push_back(parse_expr(c));
    c.expect_end();
    return add(std::make_unique<PrintStmt>(std::move(items)), label);
  }

  Statement* parse_write(Cursor& c, int label) {
    c.next();  // 'write'
    c.expect_punct("(");
    c.expect_punct("*");
    c.expect_punct(",");
    c.expect_punct("*");
    c.expect_punct(")");
    std::vector<ExprPtr> items;
    if (!c.at_end()) {
      items.push_back(parse_expr(c));
      while (c.accept_punct(",")) items.push_back(parse_expr(c));
    }
    c.expect_end();
    return add(std::make_unique<PrintStmt>(std::move(items)), label);
  }

  /// Parses "csrd$ [speculative] doall private(..) reduction(op:v[,histogram])
  /// lastvalue(..) shadow(..)" and fills the DO's ParallelInfo.
  void apply_doall_directive(DoStmt& d, const std::string& text, Cursor& c) {
    d.par = ParallelInfo{};
    const bool speculative = text.find("speculative") != std::string::npos;
    d.par.is_parallel = !speculative;
    d.par.speculative = speculative;

    auto names_in = [&](const std::string& clause,
                        std::vector<Symbol*>* out) {
      size_t pos = text.find(clause + "(");
      while (pos != std::string::npos) {
        size_t open = pos + clause.size() + 1;
        size_t close = text.find(')', open);
        if (close == std::string::npos) c.error("malformed doall directive");
        for (const std::string& piece :
             split(text.substr(open, close - open), ',')) {
          std::string name = trim(piece);
          if (name.empty() || name == "histogram") continue;
          out->push_back(resolve_scalar(name, c));
        }
        pos = text.find(clause + "(", close);
      }
    };
    names_in("private", &d.par.private_vars);
    names_in("lastvalue", &d.par.lastvalue_vars);
    names_in("shadow", &d.par.speculative_arrays);

    size_t rpos = text.find("reduction(");
    while (rpos != std::string::npos) {
      size_t open = rpos + 10;
      size_t close = text.find(')', open);
      if (close == std::string::npos) c.error("malformed doall directive");
      std::string body = text.substr(open, close - open);
      size_t colon = body.find(':');
      if (colon == std::string::npos) c.error("malformed reduction clause");
      std::string op = trim(body.substr(0, colon));
      std::string rest = body.substr(colon + 1);
      ReductionInfo info;
      if (op == "+") info.op = ReductionKind::Sum;
      else if (op == "*") info.op = ReductionKind::Product;
      else if (op == "min") info.op = ReductionKind::Min;
      else if (op == "max") info.op = ReductionKind::Max;
      else c.error("unknown reduction operator '" + op + "'");
      auto pieces = split(rest, ',');
      info.var = resolve_scalar(trim(pieces[0]), c);
      info.histogram = rest.find("histogram") != std::string::npos;
      d.par.reductions.push_back(info);
      rpos = text.find("reduction(", close);
    }

    // Re-attaching annotations also requires re-flagging reduction
    // statements, which happens lazily: the execution engine only needs
    // the ParallelInfo, and the reduction statements' flags are used for
    // Blocked-scheme cost accounting (approximated as zero on re-parse).
  }

  Statement* add(StmtPtr s, int label) {
    s->set_label(label);
    Statement* raw = s.get();
    pending_.push_back(std::move(s));
    return raw;
  }

  /// Closes classic labeled DO loops whose terminal statement carries
  /// `label` (several DOs may share one terminal label).
  void close_labeled_dos(int label) {
    if (label == 0) return;
    while (!labeled_do_stack_.empty() && labeled_do_stack_.back() == label) {
      labeled_do_stack_.pop_back();
      add(std::make_unique<EndDoStmt>(), 0);
    }
  }

  // --- expressions --------------------------------------------------------------

  Symbol* resolve_scalar(const std::string& name, Cursor& c) {
    Symbol* s = unit_->symtab().lookup(name);
    if (s == nullptr) {
      if (implicit_none_)
        c.error("undeclared variable '" + name + "' under IMPLICIT NONE");
      s = unit_->symtab().declare(name, implicit_type(name),
                                  SymbolKind::Variable);
    }
    return s;
  }

  ExprPtr parse_expr(Cursor& c) { return parse_or(c); }

  ExprPtr parse_or(Cursor& c) {
    ExprPtr e = parse_and(c);
    while (c.peek().kind == TokKind::DotOp && c.peek().text == "or") {
      c.next();
      e = ib::lor(std::move(e), parse_and(c));
    }
    return e;
  }

  ExprPtr parse_and(Cursor& c) {
    ExprPtr e = parse_not(c);
    while (c.peek().kind == TokKind::DotOp && c.peek().text == "and") {
      c.next();
      e = ib::land(std::move(e), parse_not(c));
    }
    return e;
  }

  ExprPtr parse_not(Cursor& c) {
    if (c.peek().kind == TokKind::DotOp && c.peek().text == "not") {
      c.next();
      return ib::lnot(parse_not(c));
    }
    return parse_rel(c);
  }

  ExprPtr parse_rel(Cursor& c) {
    ExprPtr e = parse_arith(c);
    std::optional<BinOpKind> op;
    const Token& t = c.peek();
    if (t.kind == TokKind::DotOp) {
      if (t.text == "lt") op = BinOpKind::Lt;
      else if (t.text == "le") op = BinOpKind::Le;
      else if (t.text == "gt") op = BinOpKind::Gt;
      else if (t.text == "ge") op = BinOpKind::Ge;
      else if (t.text == "eq") op = BinOpKind::Eq;
      else if (t.text == "ne") op = BinOpKind::Ne;
    } else if (t.kind == TokKind::Punct) {
      if (t.text == "<") op = BinOpKind::Lt;
      else if (t.text == "<=") op = BinOpKind::Le;
      else if (t.text == ">") op = BinOpKind::Gt;
      else if (t.text == ">=") op = BinOpKind::Ge;
      else if (t.text == "==") op = BinOpKind::Eq;
      else if (t.text == "/=") op = BinOpKind::Ne;
    }
    if (!op) return e;
    c.next();
    return ib::bin(*op, std::move(e), parse_arith(c));
  }

  ExprPtr parse_arith(Cursor& c) {
    // Leading sign.
    bool negate = false;
    if (c.is_punct("-")) {
      c.next();
      negate = true;
    } else if (c.is_punct("+")) {
      c.next();
    }
    ExprPtr e = parse_term(c);
    if (negate) e = ib::neg(std::move(e));
    while (c.is_punct("+") || c.is_punct("-")) {
      bool plus = c.next().text == "+";
      ExprPtr rhs = parse_term(c);
      e = plus ? ib::add(std::move(e), std::move(rhs))
               : ib::sub(std::move(e), std::move(rhs));
    }
    return e;
  }

  ExprPtr parse_term(Cursor& c) {
    ExprPtr e = parse_power(c);
    while (c.is_punct("*") || c.is_punct("/")) {
      bool times = c.next().text == "*";
      ExprPtr rhs = parse_power(c);
      e = times ? ib::mul(std::move(e), std::move(rhs))
                : ib::div(std::move(e), std::move(rhs));
    }
    return e;
  }

  ExprPtr parse_power(Cursor& c) {
    ExprPtr base = parse_unary(c);
    if (c.is_punct("**")) {
      c.next();
      // '**' is right-associative in Fortran.
      ExprPtr exp = parse_power(c);
      return ib::pow(std::move(base), std::move(exp));
    }
    return base;
  }

  ExprPtr parse_unary(Cursor& c) {
    if (c.is_punct("-")) {
      c.next();
      return ib::neg(parse_unary(c));
    }
    if (c.is_punct("+")) {
      c.next();
      return parse_unary(c);
    }
    return parse_primary(c, /*lvalue=*/false);
  }

  ExprPtr parse_primary(Cursor& c, bool lvalue) {
    const Token& t = c.peek();
    switch (t.kind) {
      case TokKind::IntLit:
        c.next();
        return ib::ic(t.int_value);
      case TokKind::RealLit:
        c.next();
        return ib::rc(t.real_value, t.is_double);
      case TokKind::StringLit:
        c.next();
        return std::make_unique<StringConst>(t.text);
      case TokKind::DotOp:
        if (t.text == "true") {
          c.next();
          return ib::lc(true);
        }
        if (t.text == "false") {
          c.next();
          return ib::lc(false);
        }
        c.error("unexpected operator '." + t.text + ".'");
      case TokKind::Punct:
        if (t.text == "(") {
          c.next();
          ExprPtr e = parse_expr(c);
          c.expect_punct(")");
          return e;
        }
        c.error("unexpected '" + t.text + "'");
      case TokKind::Ident:
        break;
      case TokKind::EndOfLine:
        c.error("unexpected end of statement");
    }
    std::string name = c.next().text;
    if (!c.is_punct("(")) {
      Symbol* s = resolve_scalar(name, c);
      return ib::var(s);
    }
    // name(...) — array element, intrinsic, or user function call.
    Symbol* s = unit_->symtab().lookup(name);
    bool is_array = s != nullptr && s->is_array();
    if (is_array || lvalue) {
      if (!is_array && lvalue)
        c.error("assignment to undeclared array or function '" + name + "'");
      c.expect_punct("(");
      std::vector<ExprPtr> subs;
      while (true) {
        subs.push_back(parse_expr(c));
        if (c.accept_punct(")")) break;
        c.expect_punct(",");
      }
      if (static_cast<int>(subs.size()) != s->rank())
        c.error("rank mismatch in reference to " + name);
      return ib::aref(s, std::move(subs));
    }
    // Function call.
    c.expect_punct("(");
    std::vector<ExprPtr> args;
    if (!c.accept_punct(")")) {
      while (true) {
        args.push_back(parse_expr(c));
        if (c.accept_punct(")")) break;
        c.expect_punct(",");
      }
    }
    std::string canon = canonical_intrinsic(name);
    if (intrinsic_names().count(canon)) {
      Type rt = intrinsic_result_type(canon, args);
      return ib::call(canon, std::move(args), rt);
    }
    // User function: result type from an explicit declaration if present,
    // else implicit.
    Type rt = (s != nullptr) ? s->type() : implicit_type(name);
    return ib::call(name, std::move(args), rt);
  }

  std::vector<LogicalLine> lines_;
  size_t pos_ = 0;
  ProgramUnit* unit_ = nullptr;
  bool in_decls_ = true;
  bool implicit_none_ = false;
  std::vector<int> labeled_do_stack_;
  std::vector<StmtPtr> pending_;
  std::optional<std::string> pending_directive_;
};

}  // namespace

bool is_intrinsic_name(const std::string& name) {
  std::string canon = canonical_intrinsic(name);
  return intrinsic_names().count(canon) > 0;
}

std::string canonical_intrinsic(const std::string& name) {
  std::string low = to_lower(name);
  auto it = intrinsic_aliases().find(low);
  return it == intrinsic_aliases().end() ? low : it->second;
}

std::unique_ptr<Program> parse_program(const std::string& source) {
  return parse_program(source, nullptr);
}

std::unique_ptr<Program> parse_program(const std::string& source,
                                       CompileContext* cc) {
  return parse_program(source, cc, /*jobs=*/1);
}

std::unique_ptr<Program> parse_program(const std::string& source,
                                       CompileContext* cc, int jobs) {
  trace::TraceSpan parse_span(cc != nullptr ? &cc->trace() : nullptr,
                              "parse", "driver");
  // Robustness boundary: malformed input must always surface as UserError
  // (exit 1), never as InternalError (exit 3) — a p_assert tripped by a
  // degenerate source is a parser bug from the compiler's point of view,
  // but from the user's it is still just bad input.
  try {
    // Split into per-unit slices and parse each independently — on the
    // compilation's worker pool when jobs allow, inline otherwise.  Every
    // slice is parsed at every jobs count (no early exit on the first bad
    // slice): the set of parse-unit spans and per-slice outcomes must not
    // depend on scheduling.
    const std::vector<UnitSlice> slices = split_units(source);

    struct Fragment {
      std::unique_ptr<Program> program;
      trace::TraceCollector trace;  ///< shard collector, parent's epoch
      std::exception_ptr error;     ///< per-slice failure, slice stays poisoned
    };
    std::vector<Fragment> frags(slices.size());
    if (cc != nullptr)
      for (Fragment& f : frags) f.trace.start_shard_of(cc->trace());

    auto parse_slice = [&](std::size_t i) {
      Fragment& frag = frags[i];
      try {
        trace::TraceSpan unit_span(&frag.trace, "parse-unit", "driver");
        unit_span.arg("slice", static_cast<std::uint64_t>(i));
        Parser p(slices[i].text, slices[i].start_line - 1);
        frag.program = p.parse();
        if (!frag.program->units().empty())
          unit_span.arg("unit", frag.program->units().front()->name());
      } catch (...) {
        frag.error = std::current_exception();
      }
    };

    if (jobs > 1 && cc != nullptr && slices.size() > 1)
      cc->pool().run(slices.size(), jobs, parse_slice);
    else
      for (std::size_t i = 0; i < slices.size(); ++i) parse_slice(i);

    // Merge in textual slice order: trace shards first (one timeline, one
    // deterministic event order), then the textually-first error if any
    // slice failed, then the unit fragments themselves.
    if (cc != nullptr)
      for (Fragment& f : frags) cc->trace().append(std::move(f.trace));
    for (Fragment& f : frags)
      if (f.error) std::rethrow_exception(f.error);

    auto program = std::make_unique<Program>();
    for (Fragment& f : frags) program->merge(std::move(*f.program));

    // Worker scheduling interleaves allocations from the global id
    // counters arbitrarily, and prior compilations in this process
    // advance them — renumbering makes every id a pure function of the
    // source text (see Program::renumber_ids; the inliner repeats it
    // after splicing statement clones).
    program->renumber_ids();

    parse_span.arg("units",
                   static_cast<std::uint64_t>(program->units().size()));
    return program;
  } catch (const InternalError& e) {
    throw UserError(std::string("malformed source (parser invariant '") +
                    e.condition() + "' failed at " + e.file() + ":" +
                    std::to_string(e.line()) + ")");
  }
}

ExprPtr parse_expression(const std::string& text, SymbolTable& symtab) {
  // Reuse the statement machinery: parse "tmp_expr_result = <text>" inside
  // a scratch unit that shares symbols by name with `symtab`.
  std::vector<Token> toks = tokenize(text);
  Cursor c(toks, 1);

  // Minimal standalone expression parser: we re-run the Parser's grammar by
  // constructing a tiny unit around the expression would be heavyweight;
  // instead replicate resolution here through a local lambda-based recursive
  // descent.  To avoid duplicating the grammar we construct a Parser over a
  // synthetic one-line program and then steal the expression.
  std::string synthetic = "xpolaris_expr_tmp = " + text + "\nend\n";
  Parser p(synthetic);
  std::unique_ptr<Program> prog = p.parse();
  ProgramUnit* unit = prog->main();
  p_assert(unit->stmts().first() != nullptr);
  auto* assign = static_cast<AssignStmt*>(unit->stmts().first());
  p_assert(assign->kind() == StmtKind::Assign);
  ExprPtr result = assign->rhs_slot() ? std::move(assign->rhs_slot()) : nullptr;
  p_assert(result != nullptr);

  // Remap symbols into the caller's table by name.
  std::function<void(Expression&)> remap = [&](Expression& e) {
    if (e.kind() == ExprKind::VarRef) {
      auto& v = static_cast<VarRef&>(e);
      Symbol* s = symtab.lookup(v.symbol()->name());
      if (!s)
        s = symtab.declare(v.symbol()->name(), v.symbol()->type(),
                           SymbolKind::Variable);
      v.set_symbol(s);
    } else if (e.kind() == ExprKind::ArrayRef) {
      auto& a = static_cast<ArrayRef&>(e);
      Symbol* s = symtab.lookup(a.symbol()->name());
      if (!s)
        s = symtab.declare(a.symbol()->name(), a.symbol()->type(),
                           SymbolKind::Variable);
      a.set_symbol(s);
    }
    for (ExprPtr* slot : e.children()) remap(**slot);
  };
  remap(*result);
  return result;
}

}  // namespace polaris
