// Structural IR verifier.
//
// The Polaris paper (Section 2) makes enforced IR consistency a design
// pillar: StmtList revalidate()s after every edit and aliased structures
// "cause a run-time error".  Those checks fire *during* mutation; the
// verifier is the complementary whole-IR audit that can run between passes
// (`-verify-each`) and after pipeline completion.  It re-derives every
// consistency invariant from scratch and *reports* violations instead of
// asserting, so the fault-isolation layer can roll the offending pass back
// and keep compiling.
//
// Invariants checked per unit:
//   - statement-list integrity: prev/next symmetry, owner pointers, size,
//     tail, no cycles in the chain;
//   - multi-block well-formedness: balanced DO/ENDDO and IF/ENDIF with the
//     derived cross links (DoStmt::follow, EndDoStmt::header, the if-arm
//     chain, `outer`) agreeing with a fresh re-derivation;
//   - label resolution: labels unique, the label map consistent with the
//     statements, every GOTO target resolvable;
//   - symbol-table membership: every Symbol referenced from expressions,
//     DO indices, ParallelInfo annotations, formals, the function result,
//     dimension bounds, PARAMETER and DATA values lives in the unit's own
//     symbol table;
//   - expression-tree discipline: trees are acyclic, no node is shared
//     between two slots (the paper's aliased-structure error), and no
//     pattern Wildcard leaks into program IR.
#pragma once

#include <string>
#include <vector>

#include "ir/program.h"

namespace polaris {

class CompileContext;  // support/context.h

/// One invariant violation found by the verifier.
struct VerifierViolation {
  std::string unit;     ///< program unit name
  std::string rule;     ///< short rule id, e.g. "dangling-symbol"
  std::string where;    ///< offending statement/symbol, best effort
  std::string message;  ///< human-readable description
};

/// Audits one unit; returns every violation found (empty = consistent).
/// Never throws on corrupted IR — all walks are cycle- and bound-guarded.
/// The CompileContext overloads emit verify spans into the compile's
/// trace; the short forms run untraced (tests, standalone tools).
std::vector<VerifierViolation> verify_unit(const ProgramUnit& unit);
std::vector<VerifierViolation> verify_unit(const ProgramUnit& unit,
                                           CompileContext* cc);

/// Audits every unit plus program-level invariants (exactly one main unit,
/// unique unit names).
std::vector<VerifierViolation> verify_program(const Program& program);
std::vector<VerifierViolation> verify_program(const Program& program,
                                              CompileContext* cc);

/// "unit: [rule] where: message" lines joined with '\n' (diagnostics /
/// exception payloads).
std::string format_violations(const std::vector<VerifierViolation>& vs);

}  // namespace polaris
