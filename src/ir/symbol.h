// Symbols and symbol tables.
//
// A Symbol is owned by exactly one SymbolTable (the Polaris ownership
// convention: the creator owns; passing a pointer transfers ownership,
// passing a reference does not).  Expressions refer to symbols with
// non-owning Symbol* — the table outlives all references into it, and
// SymbolTable::remove() asserts that no live references remain.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/type.h"
#include "support/assert.h"

namespace polaris {

class Expression;
using ExprPtr = std::unique_ptr<Expression>;

enum class SymbolKind {
  Variable,    ///< ordinary variable (scalar or array)
  Parameter,   ///< Fortran PARAMETER (named constant)
  Function,    ///< user function program unit
  Subroutine,  ///< user subroutine program unit
  Intrinsic,   ///< intrinsic function (mod, min, max, abs, sqrt, ...)
};

/// One declared array dimension: lower and upper bound expressions.
/// `upper == nullptr` means assumed size ('*', legal only for formals).
struct Dimension {
  ExprPtr lower;  ///< null means the default lower bound of 1
  ExprPtr upper;

  Dimension();
  Dimension(ExprPtr lo, ExprPtr hi);
  Dimension(Dimension&&) noexcept;
  Dimension& operator=(Dimension&&) noexcept;
  ~Dimension();
};

class Symbol {
 public:
  Symbol(std::string name, Type type, SymbolKind kind);
  ~Symbol();

  Symbol(const Symbol&) = delete;
  Symbol& operator=(const Symbol&) = delete;

  const std::string& name() const { return name_; }
  Type type() const { return type_; }
  void set_type(Type t) { type_ = t; }
  SymbolKind kind() const { return kind_; }
  void set_kind(SymbolKind k) { kind_ = k; }

  /// Stable identity, unique process-wide; used for deterministic ordering.
  int id() const { return id_; }
  /// Renumbering hook for the frontend: after the per-unit parallel parse
  /// merges its fragments, symbols are renumbered 1..m in (unit order,
  /// creation order) so every id-derived ordering is a pure function of
  /// the source text, independent of worker count or prior compilations
  /// in the process.  Nothing else may reassign ids.
  void set_id(int id) { id_ = id; }

  bool is_array() const { return !dims_.empty(); }
  int rank() const { return static_cast<int>(dims_.size()); }
  const std::vector<Dimension>& dims() const { return dims_; }
  std::vector<Dimension>& dims() { return dims_; }
  void set_dims(std::vector<Dimension> dims) { dims_ = std::move(dims); }

  bool is_formal() const { return is_formal_; }
  void set_formal(bool f) { is_formal_ = f; }

  const std::string& common_block() const { return common_block_; }
  void set_common_block(const std::string& b) { common_block_ = b; }
  bool in_common() const { return !common_block_.empty(); }

  /// For SymbolKind::Parameter: the constant value expression.  Owned here.
  const Expression* param_value() const { return param_value_.get(); }
  void set_param_value(ExprPtr v);

  /// DATA-statement initial values, flattened in array element order.
  /// Owned here; empty if the variable has no DATA initialization.
  const std::vector<ExprPtr>& data_values() const { return data_values_; }
  void add_data_value(ExprPtr v);

 private:
  std::string name_;
  Type type_;
  SymbolKind kind_;
  int id_;
  std::vector<Dimension> dims_;
  bool is_formal_ = false;
  std::string common_block_;
  ExprPtr param_value_;
  std::vector<ExprPtr> data_values_;
};

/// Orders symbols by Symbol::id() — allocation order, preserved relatively
/// by ProgramUnit::clone.  Every symbol-keyed container whose iteration
/// order can reach the output must use this instead of pointer order:
/// after a fault-isolation rollback swaps in a cloned unit, pointer order
/// is arbitrary (heap reuse) but id order is stable, so compiles stay
/// bit-identical to a run that never attempted the failed pass.
struct SymbolIdLess {
  bool operator()(const Symbol* a, const Symbol* b) const {
    return a->id() < b->id();
  }
};

/// Deterministically ordered symbol set/map (see SymbolIdLess).
using SymbolSet = std::set<Symbol*, SymbolIdLess>;
template <typename V>
using SymbolMap = std::map<Symbol*, V, SymbolIdLess>;

/// Per-program-unit symbol table.  Names are canonicalized to lower case.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Declares a new symbol; asserts the name is not already declared.
  Symbol* declare(const std::string& name, Type type, SymbolKind kind);

  /// Returns the symbol or null.
  Symbol* lookup(const std::string& name) const;

  /// Returns an existing symbol or declares a new Variable of `type`.
  Symbol* get_or_declare(const std::string& name, Type type);

  /// Invents a fresh name with the given prefix ("t", "t0", "t1", ...) that
  /// does not collide with any declared name, and declares it.
  Symbol* fresh(const std::string& prefix, Type type);

  /// Removes a symbol from the table and destroys it.  The caller must
  /// guarantee no references remain in the program (checked by passes via
  /// ir::count_symbol_uses before calling this).
  void remove(Symbol* sym);

  bool contains(const std::string& name) const;

  /// Deterministic iteration in declaration order.
  const std::vector<Symbol*>& symbols() const { return order_; }
  std::size_t size() const { return order_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Symbol>> table_;
  std::vector<Symbol*> order_;
};

}  // namespace polaris
