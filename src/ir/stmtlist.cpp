#include "ir/stmtlist.h"

#include <functional>

namespace polaris {

StmtList::~StmtList() {
  // Unwind the unique_ptr chain iteratively to avoid deep recursion on
  // long programs.
  std::unique_ptr<Statement> cur = std::move(head_);
  while (cur) cur = std::move(cur->next_);
}

Statement* StmtList::push_back(StmtPtr s) {
  p_assert(s != nullptr);
  p_assert_msg(s->list_ == nullptr, "statement already belongs to a list");
  Statement* raw = s.get();
  if (!head_) {
    head_ = std::move(s);
  } else {
    tail_->next_ = std::move(s);
    raw->prev_ = tail_;
  }
  tail_ = raw;
  raw->list_ = this;
  ++size_;
  revalidate();
  return raw;
}

Statement* StmtList::insert_before(Statement* pos, StmtPtr s) {
  p_assert(pos != nullptr && pos->list_ == this);
  p_assert(s != nullptr && s->list_ == nullptr);
  Statement* raw = s.get();
  Statement* before = pos->prev_;
  if (before == nullptr) {
    s->next_ = std::move(head_);
    head_ = std::move(s);
  } else {
    s->next_ = std::move(before->next_);
    before->next_ = std::move(s);
    raw->prev_ = before;
  }
  pos->prev_ = raw;
  raw->list_ = this;
  ++size_;
  revalidate();
  return raw;
}

Statement* StmtList::insert_after(Statement* pos, StmtPtr s) {
  p_assert(pos != nullptr && pos->list_ == this);
  if (pos == tail_) return push_back(std::move(s));
  return insert_before(pos->next(), std::move(s));
}

void StmtList::splice_back(std::vector<StmtPtr> fragment) {
  for (auto& s : fragment) {
    p_assert(s != nullptr && s->list_ == nullptr);
    Statement* raw = s.get();
    if (!head_) {
      head_ = std::move(s);
    } else {
      tail_->next_ = std::move(s);
      raw->prev_ = tail_;
    }
    tail_ = raw;
    raw->list_ = this;
    ++size_;
  }
  revalidate();
}

void StmtList::splice_before(Statement* pos, std::vector<StmtPtr> fragment) {
  p_assert(pos != nullptr && pos->list_ == this);
  for (auto& s : fragment) {
    p_assert(s != nullptr && s->list_ == nullptr);
    Statement* raw = s.get();
    Statement* before = pos->prev_;
    if (before == nullptr) {
      s->next_ = std::move(head_);
      head_ = std::move(s);
    } else {
      s->next_ = std::move(before->next_);
      before->next_ = std::move(s);
      raw->prev_ = before;
    }
    pos->prev_ = raw;
    raw->list_ = this;
    ++size_;
  }
  revalidate();
}

void StmtList::splice_after(Statement* pos, std::vector<StmtPtr> fragment) {
  p_assert(pos != nullptr && pos->list_ == this);
  if (pos == tail_) {
    splice_back(std::move(fragment));
  } else {
    splice_before(pos->next(), std::move(fragment));
  }
}

std::vector<StmtPtr> StmtList::detach_range(Statement* first,
                                            Statement* last) {
  p_assert(first != nullptr && last != nullptr);
  p_assert(first->list_ == this && last->list_ == this);
  std::vector<StmtPtr> out;
  Statement* before = first->prev_;
  Statement* after = last->next();

  // Take ownership of the chain head for the range.
  std::unique_ptr<Statement> chain;
  if (before == nullptr) {
    chain = std::move(head_);
  } else {
    chain = std::move(before->next_);
  }
  // Walk the chain, detaching each element up to and including `last`.
  Statement* cur = chain.get();
  while (true) {
    p_assert_msg(cur != nullptr, "range end does not follow range start");
    std::unique_ptr<Statement> next = std::move(cur->next_);
    cur->prev_ = nullptr;
    cur->list_ = nullptr;
    cur->outer_ = nullptr;
    bool done = (cur == last);
    out.push_back(std::move(chain));
    --size_;
    chain = std::move(next);
    if (done) break;
    cur = chain.get();
  }
  // Reconnect the remainder.
  if (before == nullptr) {
    head_ = std::move(chain);
    if (head_) head_->prev_ = nullptr;
  } else {
    before->next_ = std::move(chain);
    if (before->next_) before->next_->prev_ = before;
  }
  if (after == nullptr) tail_ = before;
  return out;
}

void StmtList::remove(Statement* s) {
  p_assert(s != nullptr);
  detach_range(s, s);  // destroys via the returned vector going out of scope
  revalidate();
}

void StmtList::remove_range(Statement* first, Statement* last) {
  check_block(first, last);
  detach_range(first, last);
  revalidate();
}

std::vector<StmtPtr> StmtList::extract_range(Statement* first,
                                             Statement* last) {
  check_block(first, last);
  std::vector<StmtPtr> out = detach_range(first, last);
  revalidate();
  return out;
}

std::vector<StmtPtr> StmtList::clone_range(Statement* first,
                                           Statement* last) const {
  p_assert(first != nullptr && last != nullptr);
  p_assert(first->list_ == this && last->list_ == this);
  std::vector<StmtPtr> out;
  for (Statement* s = first;; s = s->next()) {
    p_assert_msg(s != nullptr, "range end does not follow range start");
    out.push_back(s->clone());
    if (s == last) break;
  }
  return out;
}

void StmtList::check_block(Statement* first, Statement* last) const {
  p_assert(first != nullptr && last != nullptr);
  p_assert(first->list_ == this && last->list_ == this);
  int do_depth = 0;
  int if_depth = 0;
  for (Statement* s = first;; s = s->next()) {
    p_assert_msg(s != nullptr, "range end does not follow range start");
    switch (s->kind()) {
      case StmtKind::Do: ++do_depth; break;
      case StmtKind::EndDo:
        p_assert_msg(do_depth > 0, "block contains unmatched END DO");
        --do_depth;
        break;
      case StmtKind::If: ++if_depth; break;
      case StmtKind::EndIf:
        p_assert_msg(if_depth > 0, "block contains unmatched END IF");
        --if_depth;
        break;
      case StmtKind::ElseIf:
      case StmtKind::Else:
        p_assert_msg(if_depth > 0, "block contains dangling ELSE");
        break;
      default:
        break;
    }
    if (s == last) break;
  }
  p_assert_msg(do_depth == 0, "block contains unmatched DO");
  p_assert_msg(if_depth == 0, "block contains unmatched IF");
}

void StmtList::revalidate() {
  labels_.clear();
  std::vector<DoStmt*> do_stack;
  // If-arm tracking: stack of the most recent open arm (If/ElseIf/Else).
  std::vector<Statement*> if_stack;
  Statement* prev_expected = nullptr;
  for (Statement* s = head_.get(); s != nullptr; s = s->next()) {
    p_assert_msg(s->prev_ == prev_expected, "corrupt prev link");
    p_assert_msg(s->list_ == this, "statement in list has foreign owner");
    prev_expected = s;

    s->outer_ = do_stack.empty() ? nullptr : do_stack.back();

    if (s->label() != 0) {
      p_assert_msg(labels_.find(s->label()) == labels_.end(),
                   "duplicate statement label " + std::to_string(s->label()));
      labels_[s->label()] = s;
    }

    switch (s->kind()) {
      case StmtKind::Do:
        do_stack.push_back(static_cast<DoStmt*>(s));
        break;
      case StmtKind::EndDo: {
        p_assert_msg(!do_stack.empty(), "END DO without matching DO");
        DoStmt* d = do_stack.back();
        do_stack.pop_back();
        d->follow_ = static_cast<EndDoStmt*>(s);
        static_cast<EndDoStmt*>(s)->header_ = d;
        // the ENDDO itself belongs to the enclosing loop, not to `d`
        s->outer_ = do_stack.empty() ? nullptr : do_stack.back();
        break;
      }
      case StmtKind::If:
        if_stack.push_back(s);
        break;
      case StmtKind::ElseIf: {
        p_assert_msg(!if_stack.empty(), "ELSE IF without matching IF");
        Statement* arm = if_stack.back();
        p_assert_msg(arm->kind() == StmtKind::If ||
                         arm->kind() == StmtKind::ElseIf,
                     "ELSE IF after ELSE");
        if (arm->kind() == StmtKind::If)
          static_cast<IfStmt*>(arm)->next_arm_ = s;
        else
          static_cast<ElseIfStmt*>(arm)->next_arm_ = s;
        if_stack.back() = s;
        break;
      }
      case StmtKind::Else: {
        p_assert_msg(!if_stack.empty(), "ELSE without matching IF");
        Statement* arm = if_stack.back();
        p_assert_msg(arm->kind() == StmtKind::If ||
                         arm->kind() == StmtKind::ElseIf,
                     "duplicate ELSE");
        if (arm->kind() == StmtKind::If)
          static_cast<IfStmt*>(arm)->next_arm_ = s;
        else
          static_cast<ElseIfStmt*>(arm)->next_arm_ = s;
        if_stack.back() = s;
        break;
      }
      case StmtKind::EndIf: {
        p_assert_msg(!if_stack.empty(), "END IF without matching IF");
        Statement* arm = if_stack.back();
        if_stack.pop_back();
        auto* endif = static_cast<EndIfStmt*>(s);
        // Walk back along the recorded arm to set end pointers; we only
        // have the last arm here, so propagate end_ through the chain by
        // re-walking from the IF.  The chain links were set as arms were
        // seen; find the IF by walking arm->prev? Instead store end on the
        // last arm and fix the chain below.
        switch (arm->kind()) {
          case StmtKind::If: {
            auto* i = static_cast<IfStmt*>(arm);
            i->end_ = endif;
            if (i->next_arm_ == nullptr) i->next_arm_ = endif;
            break;
          }
          case StmtKind::ElseIf: {
            auto* e = static_cast<ElseIfStmt*>(arm);
            e->end_ = endif;
            if (e->next_arm_ == nullptr) e->next_arm_ = endif;
            break;
          }
          case StmtKind::Else:
            static_cast<ElseStmt*>(arm)->end_ = endif;
            break;
          default:
            p_unreachable("bad arm kind");
        }
        break;
      }
      default:
        break;
    }
  }
  p_assert_msg(do_stack.empty(), "DO without matching END DO");
  p_assert_msg(if_stack.empty(), "IF without matching END IF");
  p_assert(tail_ == prev_expected);

  // Second sweep: propagate end_ pointers through full if chains (an
  // IF..ELSEIF..ELSE..ENDIF chain sets end_ only on its last arm above).
  std::vector<EndIfStmt*> end_stack;
  for (Statement* s = tail_; s != nullptr; s = s->prev()) {
    switch (s->kind()) {
      case StmtKind::EndIf:
        end_stack.push_back(static_cast<EndIfStmt*>(s));
        break;
      case StmtKind::If: {
        p_assert(!end_stack.empty());
        static_cast<IfStmt*>(s)->end_ = end_stack.back();
        end_stack.pop_back();
        break;
      }
      case StmtKind::ElseIf:
        p_assert(!end_stack.empty());
        static_cast<ElseIfStmt*>(s)->end_ = end_stack.back();
        break;
      case StmtKind::Else:
        p_assert(!end_stack.empty());
        static_cast<ElseStmt*>(s)->end_ = end_stack.back();
        break;
      default:
        break;
    }
  }
}

Statement* StmtList::find_label(int l) const {
  auto it = labels_.find(l);
  return it == labels_.end() ? nullptr : it->second;
}

std::vector<DoStmt*> StmtList::loops() const {
  std::vector<DoStmt*> out;
  for (Statement* s : *this)
    if (s->kind() == StmtKind::Do) out.push_back(static_cast<DoStmt*>(s));
  return out;
}

std::vector<DoStmt*> StmtList::loops_in(DoStmt* outer_do) const {
  p_assert(outer_do != nullptr && outer_do->list() == this);
  std::vector<DoStmt*> out;
  for (Statement* s = outer_do->next(); s != outer_do->follow();
       s = s->next()) {
    p_assert(s != nullptr);
    if (s->kind() == StmtKind::Do) out.push_back(static_cast<DoStmt*>(s));
  }
  return out;
}

int StmtList::depth(const Statement* s) const {
  int d = 0;
  for (DoStmt* o = s->outer(); o != nullptr; o = o->outer()) ++d;
  return d;
}

std::vector<Statement*> StmtList::body(DoStmt* d) const {
  p_assert(d != nullptr && d->list() == this && d->follow() != nullptr);
  std::vector<Statement*> out;
  for (Statement* s = d->next(); s != d->follow(); s = s->next()) {
    p_assert(s != nullptr);
    out.push_back(s);
  }
  return out;
}

void for_each_expr_slot(StmtList& list, Statement* first, Statement* last,
                        const std::function<void(Statement&, ExprPtr&)>& fn) {
  Statement* s = first ? first : list.first();
  Statement* stop = last ? last->next() : nullptr;
  for (; s != stop; s = s->next()) {
    p_assert(s != nullptr);
    for (ExprPtr* slot : s->expr_slots()) fn(*s, *slot);
  }
}

int count_symbol_uses(const StmtList& list, const Symbol* sym) {
  int count = 0;
  for (Statement* s : list) {
    if (s->kind() == StmtKind::Do &&
        static_cast<DoStmt*>(s)->index() == sym)
      ++count;
    for (const Expression* e : s->expressions()) {
      walk(*e, [&](const Expression& n) {
        if (n.kind() == ExprKind::VarRef &&
            static_cast<const VarRef&>(n).symbol() == sym)
          ++count;
        else if (n.kind() == ExprKind::ArrayRef &&
                 static_cast<const ArrayRef&>(n).symbol() == sym)
          ++count;
      });
    }
  }
  return count;
}

}  // namespace polaris
