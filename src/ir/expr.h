// Expression trees.
//
// Expressions are strict trees: sharing is not allowed (the paper:
// "detection of aliased structures ... causes a run-time error" — inserting
// one expression into two statements without copying is a bug).  We enforce
// this structurally with unique_ptr ownership; clone() produces deep copies.
//
// The Wildcard node supports Polaris's structural pattern matching
// ("Forbol"): a pattern is an ordinary expression tree that may contain
// wildcards anywhere; match() compares a pattern against a subject and binds
// wildcard names to subtrees, requiring consistent bindings for repeated
// names (needed for idioms like A(α) = A(α) + β).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/symbol.h"
#include "ir/type.h"
#include "support/assert.h"

namespace polaris {

enum class ExprKind {
  IntConst,
  RealConst,
  LogicalConst,
  StringConst,
  VarRef,
  ArrayRef,
  BinOp,
  UnOp,
  FuncCall,
  Wildcard,
};

enum class BinOpKind {
  Add, Sub, Mul, Div, Pow,
  Eq, Ne, Lt, Le, Gt, Ge,
  And, Or,
};

enum class UnOpKind { Neg, Not };

bool is_comparison(BinOpKind k);
bool is_arithmetic(BinOpKind k);
/// Fortran spelling: "+", ".lt.", ".and.", ...
std::string binop_spelling(BinOpKind k);

class Expression;
using ExprPtr = std::unique_ptr<Expression>;

/// Wildcard bindings produced by matching: name -> matched subtree
/// (non-owning views into the subject).
using Bindings = std::map<std::string, const Expression*>;

class Expression {
 public:
  virtual ~Expression() = default;
  Expression(const Expression&) = delete;
  Expression& operator=(const Expression&) = delete;

  ExprKind kind() const { return kind_; }

  /// Deep copy.
  virtual ExprPtr clone() const = 0;

  /// Structural equality (symbol identity for references, exact constants).
  bool equals(const Expression& other) const;

  /// Mutable child slots, for generic traversal and in-place replacement.
  virtual std::vector<ExprPtr*> children() = 0;
  std::vector<const Expression*> children() const;

  /// Approximate Fortran type of the expression's value.
  virtual Type type() const = 0;

  virtual void print(std::ostream& os) const = 0;
  std::string to_string() const;

  /// Structural hash, consistent with equals().
  std::size_t hash() const;

  /// Pattern matching: `this` is the pattern (may contain Wildcards),
  /// `subject` must not.  On success, bindings maps each wildcard name to
  /// the matched subject subtree; repeated names must match equal subtrees.
  bool match(const Expression& subject, Bindings& bindings) const;

  /// True if any node in the tree satisfies `pred`.
  bool contains(const std::function<bool(const Expression&)>& pred) const;
  /// True if the tree references `sym` (as VarRef or ArrayRef base).
  bool references(const Symbol* sym) const;

 protected:
  explicit Expression(ExprKind k) : kind_(k) {}

 private:
  ExprKind kind_;
};

std::ostream& operator<<(std::ostream& os, const Expression& e);

// --- leaf nodes -------------------------------------------------------------

class IntConst final : public Expression {
 public:
  explicit IntConst(std::int64_t v)
      : Expression(ExprKind::IntConst), value_(v) {}
  std::int64_t value() const { return value_; }
  ExprPtr clone() const override;
  std::vector<ExprPtr*> children() override { return {}; }
  Type type() const override { return Type::integer(); }
  void print(std::ostream& os) const override;

 private:
  std::int64_t value_;
};

class RealConst final : public Expression {
 public:
  RealConst(double v, bool is_double)
      : Expression(ExprKind::RealConst), value_(v), is_double_(is_double) {}
  double value() const { return value_; }
  bool is_double() const { return is_double_; }
  ExprPtr clone() const override;
  std::vector<ExprPtr*> children() override { return {}; }
  Type type() const override {
    return is_double_ ? Type::double_precision() : Type::real();
  }
  void print(std::ostream& os) const override;

 private:
  double value_;
  bool is_double_;
};

class LogicalConst final : public Expression {
 public:
  explicit LogicalConst(bool v)
      : Expression(ExprKind::LogicalConst), value_(v) {}
  bool value() const { return value_; }
  ExprPtr clone() const override;
  std::vector<ExprPtr*> children() override { return {}; }
  Type type() const override { return Type::logical(); }
  void print(std::ostream& os) const override;

 private:
  bool value_;
};

class StringConst final : public Expression {
 public:
  explicit StringConst(std::string v)
      : Expression(ExprKind::StringConst), value_(std::move(v)) {}
  const std::string& value() const { return value_; }
  ExprPtr clone() const override;
  std::vector<ExprPtr*> children() override { return {}; }
  Type type() const override { return Type::character(); }
  void print(std::ostream& os) const override;

 private:
  std::string value_;
};

/// Reference to a scalar variable (or to a whole array when used as an
/// actual argument).
class VarRef final : public Expression {
 public:
  explicit VarRef(Symbol* sym) : Expression(ExprKind::VarRef), sym_(sym) {
    p_assert(sym != nullptr);
  }
  Symbol* symbol() const { return sym_; }
  void set_symbol(Symbol* s) { p_assert(s); sym_ = s; }
  ExprPtr clone() const override;
  std::vector<ExprPtr*> children() override { return {}; }
  Type type() const override { return sym_->type(); }
  void print(std::ostream& os) const override;

 private:
  Symbol* sym_;
};

/// Subscripted array reference A(s1, ..., sk).
class ArrayRef final : public Expression {
 public:
  ArrayRef(Symbol* sym, std::vector<ExprPtr> subs);
  Symbol* symbol() const { return sym_; }
  void set_symbol(Symbol* s) { p_assert(s); sym_ = s; }
  const std::vector<ExprPtr>& subscripts() const { return subs_; }
  std::vector<ExprPtr>& subscripts() { return subs_; }
  int rank() const { return static_cast<int>(subs_.size()); }
  ExprPtr clone() const override;
  std::vector<ExprPtr*> children() override;
  Type type() const override { return sym_->type(); }
  void print(std::ostream& os) const override;

 private:
  Symbol* sym_;
  std::vector<ExprPtr> subs_;
};

class BinOp final : public Expression {
 public:
  BinOp(BinOpKind op, ExprPtr l, ExprPtr r);
  BinOpKind op() const { return op_; }
  const Expression& left() const { return *left_; }
  const Expression& right() const { return *right_; }
  Expression& left() { return *left_; }
  Expression& right() { return *right_; }
  ExprPtr take_left() { return std::move(left_); }
  ExprPtr take_right() { return std::move(right_); }
  ExprPtr clone() const override;
  std::vector<ExprPtr*> children() override { return {&left_, &right_}; }
  Type type() const override;
  void print(std::ostream& os) const override;

 private:
  BinOpKind op_;
  ExprPtr left_;
  ExprPtr right_;
};

class UnOp final : public Expression {
 public:
  UnOp(UnOpKind op, ExprPtr e);
  UnOpKind op() const { return op_; }
  const Expression& operand() const { return *operand_; }
  Expression& operand() { return *operand_; }
  ExprPtr take_operand() { return std::move(operand_); }
  ExprPtr clone() const override;
  std::vector<ExprPtr*> children() override { return {&operand_}; }
  Type type() const override { return operand_->type(); }
  void print(std::ostream& os) const override;

 private:
  UnOpKind op_;
  ExprPtr operand_;
};

/// Call to an intrinsic or user function: name(args...).
class FuncCall final : public Expression {
 public:
  FuncCall(std::string name, std::vector<ExprPtr> args, Type result_type);
  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }
  std::vector<ExprPtr>& args() { return args_; }
  ExprPtr clone() const override;
  std::vector<ExprPtr*> children() override;
  Type type() const override { return result_type_; }
  void set_type(Type t) { result_type_ = t; }
  void print(std::ostream& os) const override;

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
  Type result_type_;
};

/// Pattern wildcard.  Matches any subtree (optionally constrained to a
/// particular ExprKind); repeated use of the same name requires the matched
/// subtrees to be structurally equal.
class Wildcard final : public Expression {
 public:
  explicit Wildcard(std::string name)
      : Expression(ExprKind::Wildcard), name_(std::move(name)) {}
  Wildcard(std::string name, ExprKind required)
      : Expression(ExprKind::Wildcard),
        name_(std::move(name)),
        constrained_(true),
        required_(required) {}
  const std::string& name() const { return name_; }
  bool constrained() const { return constrained_; }
  ExprKind required_kind() const { return required_; }
  ExprPtr clone() const override;
  std::vector<ExprPtr*> children() override { return {}; }
  Type type() const override { return Type(); }
  void print(std::ostream& os) const override;

 private:
  std::string name_;
  bool constrained_ = false;
  ExprKind required_ = ExprKind::IntConst;
};

// --- generic walks ----------------------------------------------------------

/// Pre-order visit of every node in the tree (const).
void walk(const Expression& e,
          const std::function<void(const Expression&)>& fn);

/// Pre-order visit with mutable slot access: fn receives each slot; if it
/// replaces the slot's contents the new subtree is not revisited.
void walk_slots(ExprPtr& root, const std::function<void(ExprPtr&)>& fn);

/// Replaces every occurrence of a subtree equal to `from` with a clone of
/// `to`; returns the number of replacements.
int replace_all(ExprPtr& root, const Expression& from, const Expression& to);

/// Replaces every reference to scalar symbol `sym` with a clone of `to`.
int replace_var(ExprPtr& root, const Symbol* sym, const Expression& to);

/// Rewrites every VarRef/ArrayRef symbol in the tree through `map`
/// (identity for symbols not present).  Used by ProgramUnit::clone and the
/// fault-isolation rollback (AtomTable::remap).
void remap_symbols(Expression& e, const SymbolMap<Symbol*>& map);

}  // namespace polaris
