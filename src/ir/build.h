// Expression factory helpers.
//
// Concise builders used throughout passes and tests:
//   ib::add(ib::var(i), ib::ic(1))   ->   i + 1
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "ir/expr.h"

namespace polaris::ib {

inline ExprPtr ic(std::int64_t v) { return std::make_unique<IntConst>(v); }
inline ExprPtr rc(double v, bool dbl = false) {
  return std::make_unique<RealConst>(v, dbl);
}
inline ExprPtr lc(bool v) { return std::make_unique<LogicalConst>(v); }
inline ExprPtr var(Symbol* s) { return std::make_unique<VarRef>(s); }

inline ExprPtr aref(Symbol* s, std::vector<ExprPtr> subs) {
  return std::make_unique<ArrayRef>(s, std::move(subs));
}
inline ExprPtr aref(Symbol* s, ExprPtr s1) {
  std::vector<ExprPtr> subs;
  subs.push_back(std::move(s1));
  return aref(s, std::move(subs));
}
inline ExprPtr aref(Symbol* s, ExprPtr s1, ExprPtr s2) {
  std::vector<ExprPtr> subs;
  subs.push_back(std::move(s1));
  subs.push_back(std::move(s2));
  return aref(s, std::move(subs));
}

inline ExprPtr bin(BinOpKind op, ExprPtr l, ExprPtr r) {
  return std::make_unique<BinOp>(op, std::move(l), std::move(r));
}
inline ExprPtr add(ExprPtr l, ExprPtr r) {
  return bin(BinOpKind::Add, std::move(l), std::move(r));
}
inline ExprPtr sub(ExprPtr l, ExprPtr r) {
  return bin(BinOpKind::Sub, std::move(l), std::move(r));
}
inline ExprPtr mul(ExprPtr l, ExprPtr r) {
  return bin(BinOpKind::Mul, std::move(l), std::move(r));
}
inline ExprPtr div(ExprPtr l, ExprPtr r) {
  return bin(BinOpKind::Div, std::move(l), std::move(r));
}
inline ExprPtr pow(ExprPtr l, ExprPtr r) {
  return bin(BinOpKind::Pow, std::move(l), std::move(r));
}
inline ExprPtr neg(ExprPtr e) {
  return std::make_unique<UnOp>(UnOpKind::Neg, std::move(e));
}
inline ExprPtr lnot(ExprPtr e) {
  return std::make_unique<UnOp>(UnOpKind::Not, std::move(e));
}

inline ExprPtr eq(ExprPtr l, ExprPtr r) {
  return bin(BinOpKind::Eq, std::move(l), std::move(r));
}
inline ExprPtr ne(ExprPtr l, ExprPtr r) {
  return bin(BinOpKind::Ne, std::move(l), std::move(r));
}
inline ExprPtr lt(ExprPtr l, ExprPtr r) {
  return bin(BinOpKind::Lt, std::move(l), std::move(r));
}
inline ExprPtr le(ExprPtr l, ExprPtr r) {
  return bin(BinOpKind::Le, std::move(l), std::move(r));
}
inline ExprPtr gt(ExprPtr l, ExprPtr r) {
  return bin(BinOpKind::Gt, std::move(l), std::move(r));
}
inline ExprPtr ge(ExprPtr l, ExprPtr r) {
  return bin(BinOpKind::Ge, std::move(l), std::move(r));
}
inline ExprPtr land(ExprPtr l, ExprPtr r) {
  return bin(BinOpKind::And, std::move(l), std::move(r));
}
inline ExprPtr lor(ExprPtr l, ExprPtr r) {
  return bin(BinOpKind::Or, std::move(l), std::move(r));
}

inline ExprPtr call(const std::string& name, std::vector<ExprPtr> args,
                    Type t = Type::real()) {
  return std::make_unique<FuncCall>(name, std::move(args), t);
}

inline ExprPtr wild(const std::string& name) {
  return std::make_unique<Wildcard>(name);
}
inline ExprPtr wild(const std::string& name, ExprKind k) {
  return std::make_unique<Wildcard>(name, k);
}

}  // namespace polaris::ib
