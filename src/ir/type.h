// Fortran scalar types.
//
// Array-ness is a property of the Symbol (its declared dimensions), not of
// the type, mirroring Fortran 77 declarations.
#pragma once

#include <string>

#include "support/assert.h"

namespace polaris {

enum class TypeKind {
  None,             ///< not yet resolved
  Integer,
  Real,
  DoublePrecision,
  Logical,
  Character,
};

/// A scalar Fortran type.  Small value class.
class Type {
 public:
  constexpr Type() : kind_(TypeKind::None) {}
  constexpr explicit Type(TypeKind k) : kind_(k) {}

  constexpr TypeKind kind() const { return kind_; }
  constexpr bool operator==(const Type& o) const { return kind_ == o.kind_; }
  constexpr bool operator!=(const Type& o) const { return kind_ != o.kind_; }

  constexpr bool is_integer() const { return kind_ == TypeKind::Integer; }
  constexpr bool is_floating() const {
    return kind_ == TypeKind::Real || kind_ == TypeKind::DoublePrecision;
  }
  constexpr bool is_numeric() const { return is_integer() || is_floating(); }
  constexpr bool is_logical() const { return kind_ == TypeKind::Logical; }

  /// The Fortran keyword for this type ("integer", "real", ...).
  std::string name() const {
    switch (kind_) {
      case TypeKind::None: return "<none>";
      case TypeKind::Integer: return "integer";
      case TypeKind::Real: return "real";
      case TypeKind::DoublePrecision: return "double precision";
      case TypeKind::Logical: return "logical";
      case TypeKind::Character: return "character";
    }
    p_unreachable("bad TypeKind");
  }

  static constexpr Type integer() { return Type(TypeKind::Integer); }
  static constexpr Type real() { return Type(TypeKind::Real); }
  static constexpr Type double_precision() {
    return Type(TypeKind::DoublePrecision);
  }
  static constexpr Type logical() { return Type(TypeKind::Logical); }
  static constexpr Type character() { return Type(TypeKind::Character); }

  /// Usual Fortran numeric promotion: integer < real < double precision.
  static Type promote(Type a, Type b) {
    if (a.kind_ == TypeKind::DoublePrecision ||
        b.kind_ == TypeKind::DoublePrecision)
      return double_precision();
    if (a.kind_ == TypeKind::Real || b.kind_ == TypeKind::Real) return real();
    return integer();
  }

 private:
  TypeKind kind_;
};

}  // namespace polaris
