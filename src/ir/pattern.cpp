#include "ir/pattern.h"

namespace polaris {

ExprPtr instantiate(const Expression& templ, const Bindings& bindings) {
  if (templ.kind() == ExprKind::Wildcard) {
    const auto& w = static_cast<const Wildcard&>(templ);
    auto it = bindings.find(w.name());
    p_assert_msg(it != bindings.end(),
                 "unbound wildcard in template: " + w.name());
    return it->second->clone();
  }
  ExprPtr copy = templ.clone();
  for (ExprPtr* slot : copy->children())
    *slot = instantiate(**slot, bindings);
  return copy;
}

int rewrite_all(ExprPtr& root, const Expression& pattern,
                const Expression& replacement) {
  int count = 0;
  walk_slots(root, [&](ExprPtr& slot) {
    Bindings bindings;
    if (pattern.match(*slot, bindings)) {
      slot = instantiate(replacement, bindings);
      ++count;
    }
  });
  return count;
}

const Expression* find_match(const Expression& e, const Expression& pattern,
                             Bindings* bindings) {
  Bindings local;
  if (pattern.match(e, local)) {
    if (bindings) *bindings = std::move(local);
    return &e;
  }
  for (const Expression* c : e.children()) {
    if (const Expression* hit = find_match(*c, pattern, bindings)) return hit;
  }
  return nullptr;
}

}  // namespace polaris
