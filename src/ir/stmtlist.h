// StmtList: the consistency-enforcing statement container.
//
// The paper (Section 2): "To maintain complete control of consistency inside
// the StmtList class, the manipulation of statements or lists of statements
// is restricted by checks during the execution of Polaris.  For example, the
// block to be processed must be entirely well-formed with regard to
// multi-block statements such as do loops and block-if statements."
//
// StmtList owns its statements through an intrusive unique_ptr chain.
// Structural edits (insert / remove / extract / splice) trigger
// revalidate(), which re-derives all cross links (do->enddo, if-arm chain,
// enclosing-loop `outer` pointers, the label map) and p_asserts proper
// nesting.  Code that needs to assemble a temporarily ill-formed fragment
// builds it in a detached std::vector<StmtPtr> (the paper's
// List<Statement>) and splices it in when complete — consistency is checked
// at incorporation time.
#pragma once

#include <map>
#include <vector>

#include "ir/stmt.h"

namespace polaris {

class StmtList {
 public:
  StmtList() = default;
  ~StmtList();
  StmtList(const StmtList&) = delete;
  StmtList& operator=(const StmtList&) = delete;

  bool empty() const { return head_ == nullptr; }
  std::size_t size() const { return size_; }
  Statement* first() const { return head_.get(); }
  Statement* last() const { return tail_; }

  /// Appends and revalidates.  Returns the inserted statement.
  Statement* push_back(StmtPtr s);
  /// Inserts before/after an existing statement of this list.
  Statement* insert_before(Statement* pos, StmtPtr s);
  Statement* insert_after(Statement* pos, StmtPtr s);

  /// Appends/inserts a detached fragment (consistency checked afterwards).
  void splice_back(std::vector<StmtPtr> fragment);
  void splice_before(Statement* pos, std::vector<StmtPtr> fragment);
  void splice_after(Statement* pos, std::vector<StmtPtr> fragment);

  /// Removes and destroys a single statement.  The resulting list must
  /// still be well-formed (removing one half of a do/enddo pair asserts).
  void remove(Statement* s);

  /// Removes and destroys the inclusive range [first, last], which must be
  /// a well-formed block (balanced do/enddo and if/endif within).
  void remove_range(Statement* first, Statement* last);

  /// Detaches the inclusive range [first, last] without destroying it;
  /// the range must be a well-formed block.  Used for moving code.
  std::vector<StmtPtr> extract_range(Statement* first, Statement* last);

  /// Deep-copies the inclusive range [first, last] into a detached fragment.
  std::vector<StmtPtr> clone_range(Statement* first, Statement* last) const;

  /// The statement carrying numeric label `l`, or null.
  Statement* find_label(int l) const;

  /// Read-only view of the whole label map (the IR verifier cross-checks
  /// it against the labels statements actually carry, in both directions).
  const std::map<int, Statement*>& label_map() const { return labels_; }

  /// All DO statements, outermost first, in source order.
  std::vector<DoStmt*> loops() const;
  /// DO statements properly nested inside `outer_do` (any depth).
  std::vector<DoStmt*> loops_in(DoStmt* outer_do) const;
  /// Nesting depth of a statement (number of enclosing DOs).
  int depth(const Statement* s) const;

  /// Statements strictly inside the body of `d` (between DO and ENDDO),
  /// including nested structure, in source order.
  std::vector<Statement*> body(DoStmt* d) const;

  /// Re-derives all structural links and asserts well-formedness.
  /// Called automatically by every mutating operation; public so that
  /// passes mutating expressions in place can re-check invariants cheaply.
  void revalidate();

  /// Simple forward iteration over raw Statement pointers.
  class iterator {
   public:
    explicit iterator(Statement* s) : s_(s) {}
    Statement* operator*() const { return s_; }
    iterator& operator++() {
      s_ = s_->next();
      return *this;
    }
    bool operator!=(const iterator& o) const { return s_ != o.s_; }
    bool operator==(const iterator& o) const { return s_ == o.s_; }

   private:
    Statement* s_;
  };
  iterator begin() const { return iterator(head_.get()); }
  iterator end() const { return iterator(nullptr); }

 private:
  /// Test-only seam (see Statement): lets verifier tests corrupt the label
  /// map and derived links that the public API keeps consistent.
  friend class VerifierTestPeer;

  /// Checks [first,last] is a contiguous well-formed block of this list.
  void check_block(Statement* first, Statement* last) const;
  /// Detach without revalidation; shared by remove/extract.
  std::vector<StmtPtr> detach_range(Statement* first, Statement* last);

  std::unique_ptr<Statement> head_;
  Statement* tail_ = nullptr;
  std::size_t size_ = 0;
  std::map<int, Statement*> labels_;
};

/// Applies `fn` to every expression slot of every statement in [first,last]
/// inclusive (or the whole list when first==nullptr).
void for_each_expr_slot(StmtList& list, Statement* first, Statement* last,
                        const std::function<void(Statement&, ExprPtr&)>& fn);

/// Counts references to `sym` in all statements of the list (VarRef and
/// ArrayRef bases, plus DO indices).  Used before SymbolTable::remove to
/// honor the "no dangling references" rule.
int count_symbol_uses(const StmtList& list, const Symbol* sym);

}  // namespace polaris
