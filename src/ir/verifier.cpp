#include "ir/verifier.h"

#include <map>
#include <set>
#include <sstream>

#include "support/context.h"
#include "support/trace.h"

namespace polaris {

namespace {

const char* kind_name(StmtKind k) {
  switch (k) {
    case StmtKind::Assign: return "assign";
    case StmtKind::Do: return "do";
    case StmtKind::EndDo: return "enddo";
    case StmtKind::If: return "if";
    case StmtKind::ElseIf: return "elseif";
    case StmtKind::Else: return "else";
    case StmtKind::EndIf: return "endif";
    case StmtKind::Goto: return "goto";
    case StmtKind::Continue: return "continue";
    case StmtKind::Call: return "call";
    case StmtKind::Return: return "return";
    case StmtKind::Stop: return "stop";
    case StmtKind::Print: return "print";
    case StmtKind::Comment: return "comment";
  }
  return "?";
}

/// Safe statement identifier for reports; does not print expressions (they
/// may be the corrupt part).
std::string describe(const Statement* s) {
  if (s == nullptr) return "<null>";
  return std::string("stmt#") + std::to_string(s->id()) + "(" +
         kind_name(s->kind()) + ")";
}

class UnitVerifier {
 public:
  UnitVerifier(const ProgramUnit& unit, std::vector<VerifierViolation>& out)
      : unit_(unit), out_(out) {}

  void run() {
    collect_symbols();
    check_symtab();
    if (!check_list_links()) return;  // chain corrupt: later walks unsafe
    check_nesting();
    check_labels();
    check_statements();
    check_formals_and_result();
  }

 private:
  void report(const std::string& rule, const std::string& where,
              const std::string& message) {
    out_.push_back({unit_.name(), rule, where, message});
  }

  void collect_symbols() {
    for (Symbol* s : unit_.symtab().symbols())
      if (s != nullptr) owned_.insert(s);
  }

  void check_symtab() {
    std::set<std::string> names;
    for (Symbol* s : unit_.symtab().symbols()) {
      if (s == nullptr) {
        report("symtab", "<table>", "null symbol in declaration order");
        continue;
      }
      if (!names.insert(s->name()).second)
        report("symtab", s->name(), "duplicate symbol name in table");
      // Symbol-owned expressions must themselves be consistent.
      for (const Dimension& d : s->dims()) {
        if (d.lower) check_expr_tree(d.lower.get(), "dim of " + s->name());
        if (d.upper) check_expr_tree(d.upper.get(), "dim of " + s->name());
      }
      if (s->param_value())
        check_expr_tree(s->param_value(), "parameter " + s->name());
      for (const ExprPtr& v : s->data_values())
        if (v) check_expr_tree(v.get(), "data value of " + s->name());
    }
  }

  /// Walks the prev/next chain checking symmetry, ownership and size.
  /// Returns false when the chain itself is unusable.
  bool check_list_links() {
    const StmtList& list = unit_.stmts();
    const std::size_t limit = list.size() + 2;
    std::size_t n = 0;
    const Statement* prev = nullptr;
    const Statement* last_seen = nullptr;
    for (const Statement* s = list.first(); s != nullptr; s = s->next()) {
      if (++n > limit) {
        report("stmt-links", describe(s),
               "statement chain longer than recorded size (cycle?)");
        return false;
      }
      if (s->prev() != prev)
        report("stmt-links", describe(s),
               "prev link does not point at the preceding statement");
      if (s->list() != &list)
        report("stmt-links", describe(s),
               "statement in list has a foreign or null owner");
      prev = s;
      last_seen = s;
    }
    if (n != list.size())
      report("stmt-links", "<list>",
             "list size " + std::to_string(list.size()) + " but chain has " +
                 std::to_string(n) + " statements");
    if (last_seen != list.last())
      report("stmt-links", describe(list.last()),
             "tail pointer does not match the end of the chain");
    return true;
  }

  /// Re-derives DO/IF nesting and compares the stored cross links.
  void check_nesting() {
    std::vector<const DoStmt*> do_stack;
    std::vector<const Statement*> if_stack;
    for (const Statement* s = unit_.stmts().first(); s != nullptr;
         s = s->next()) {
      const DoStmt* expected_outer =
          do_stack.empty() ? nullptr : do_stack.back();
      switch (s->kind()) {
        case StmtKind::Do:
          do_stack.push_back(static_cast<const DoStmt*>(s));
          break;
        case StmtKind::EndDo: {
          auto* e = static_cast<const EndDoStmt*>(s);
          if (do_stack.empty()) {
            report("do-nest", describe(s), "END DO without matching DO");
            break;
          }
          const DoStmt* d = do_stack.back();
          do_stack.pop_back();
          expected_outer = do_stack.empty() ? nullptr : do_stack.back();
          if (d->follow() != e)
            report("do-nest", describe(d),
                   "DO follow link does not point at its END DO");
          if (e->header() != d)
            report("do-nest", describe(e),
                   "END DO header link does not point at its DO");
          break;
        }
        case StmtKind::If:
          if_stack.push_back(s);
          break;
        case StmtKind::ElseIf:
        case StmtKind::Else: {
          if (if_stack.empty()) {
            report("if-chain", describe(s), "arm outside any IF block");
            break;
          }
          const Statement* arm = if_stack.back();
          const Statement* next_arm =
              arm->kind() == StmtKind::If
                  ? static_cast<const IfStmt*>(arm)->next_arm()
                  : arm->kind() == StmtKind::ElseIf
                        ? static_cast<const ElseIfStmt*>(arm)->next_arm()
                        : nullptr;
          if (arm->kind() == StmtKind::Else)
            report("if-chain", describe(s), "arm after ELSE");
          else if (next_arm != s)
            report("if-chain", describe(arm),
                   "arm chain does not link to " + describe(s));
          if_stack.back() = s;
          break;
        }
        case StmtKind::EndIf: {
          if (if_stack.empty()) {
            report("if-chain", describe(s), "END IF without matching IF");
            break;
          }
          auto* endif = static_cast<const EndIfStmt*>(s);
          const Statement* arm = if_stack.back();
          if_stack.pop_back();
          const EndIfStmt* linked =
              arm->kind() == StmtKind::If
                  ? static_cast<const IfStmt*>(arm)->end()
                  : arm->kind() == StmtKind::ElseIf
                        ? static_cast<const ElseIfStmt*>(arm)->end()
                        : static_cast<const ElseStmt*>(arm)->end();
          if (linked != endif)
            report("if-chain", describe(arm),
                   "end link does not point at " + describe(endif));
          break;
        }
        default:
          break;
      }
      if (s->outer() != expected_outer)
        report("do-nest", describe(s),
               "outer link disagrees with derived nesting (have " +
                   describe(s->outer()) + ", expected " +
                   describe(expected_outer) + ")");
    }
    for (const DoStmt* d : do_stack)
      report("do-nest", describe(d), "DO without matching END DO");
    for (const Statement* a : if_stack)
      report("if-chain", describe(a), "IF without matching END IF");
  }

  void check_labels() {
    const StmtList& list = unit_.stmts();
    std::map<int, const Statement*> labels;
    for (const Statement* s = list.first(); s != nullptr; s = s->next()) {
      if (s->label() == 0) continue;
      auto [it, fresh] = labels.emplace(s->label(), s);
      if (!fresh)
        report("label", describe(s),
               "duplicate label " + std::to_string(s->label()) +
                   " (also on " + describe(it->second) + ")");
      if (list.find_label(s->label()) != s)
        report("label", describe(s),
               "label map is stale for label " + std::to_string(s->label()));
    }
    // The reverse direction: every map entry must point at a statement that
    // actually carries that label (a bogus entry would silently redirect
    // GOTO resolution).
    for (const auto& [label, target] : list.label_map()) {
      if (target == nullptr || target->label() != label)
        report("label", "label " + std::to_string(label),
               "label map entry does not match any labeled statement");
    }
    for (const Statement* s = list.first(); s != nullptr; s = s->next()) {
      if (s->kind() != StmtKind::Goto) continue;
      int target = static_cast<const GotoStmt*>(s)->target();
      if (labels.find(target) == labels.end())
        report("unresolved-label", describe(s),
               "GOTO target " + std::to_string(target) +
                   " does not label any statement");
    }
  }

  void check_statements() {
    for (const Statement* s = unit_.stmts().first(); s != nullptr;
         s = s->next()) {
      for (const Expression* e : s->expressions())
        check_expr_tree(e, describe(s));

      if (s->kind() == StmtKind::Assign) {
        const auto* a = static_cast<const AssignStmt*>(s);
        ExprKind lk = a->lhs().kind();
        if (lk != ExprKind::VarRef && lk != ExprKind::ArrayRef)
          report("bad-lhs", describe(s),
                 "assignment target is neither a variable nor an array "
                 "element");
      } else if (s->kind() == StmtKind::Do) {
        const auto* d = static_cast<const DoStmt*>(s);
        check_symbol(d->index(), describe(s), "DO index");
        check_parallel_info(d);
      }
    }
  }

  void check_parallel_info(const DoStmt* d) {
    const ParallelInfo& par = d->par;
    for (Symbol* s : par.private_vars)
      check_symbol(s, describe(d), "private variable");
    for (Symbol* s : par.lastvalue_vars)
      check_symbol(s, describe(d), "lastvalue variable");
    for (Symbol* s : par.speculative_arrays)
      check_symbol(s, describe(d), "speculative array");
    for (const ReductionInfo& r : par.reductions)
      check_symbol(r.var, describe(d), "reduction variable");
  }

  void check_formals_and_result() {
    for (Symbol* f : unit_.formals())
      check_symbol(f, "<formals>", "formal parameter");
    if (unit_.result() != nullptr)
      check_symbol(unit_.result(), "<result>", "function result");
  }

  void check_symbol(const Symbol* sym, const std::string& where,
                    const std::string& role) {
    if (sym == nullptr) {
      report("dangling-symbol", where, role + " is null");
      return;
    }
    if (owned_.count(sym) == 0)
      report("dangling-symbol", where,
             role + " '" + sym->name() +
                 "' is not in this unit's symbol table");
  }

  /// Iterative walk: membership of every referenced symbol, no Wildcards,
  /// no node shared between two slots, cycle-guarded.
  void check_expr_tree(const Expression* root, const std::string& where) {
    if (root == nullptr) {
      report("expr-tree", where, "null expression slot");
      return;
    }
    std::set<const Expression*> on_path;  // cycle detection for this tree
    std::vector<const Expression*> stack{root};
    std::size_t nodes = 0;
    while (!stack.empty()) {
      const Expression* e = stack.back();
      stack.pop_back();
      if (e == nullptr) {
        report("expr-tree", where, "null child in expression tree");
        continue;
      }
      if (++nodes > kMaxExprNodes) {
        report("expr-tree", where,
               "expression tree exceeds node limit (cycle?)");
        return;
      }
      if (!on_path.insert(e).second) {
        report("aliased-expression", where,
               "expression node reachable twice within one tree (cycle or "
               "internal sharing)");
        return;
      }
      if (!seen_nodes_.insert(e).second) {
        report("aliased-expression", where,
               "expression node shared between two statements/slots");
        return;
      }
      switch (e->kind()) {
        case ExprKind::VarRef:
          check_symbol(static_cast<const VarRef*>(e)->symbol(), where,
                       "variable reference");
          break;
        case ExprKind::ArrayRef: {
          const auto* a = static_cast<const ArrayRef*>(e);
          check_symbol(a->symbol(), where, "array reference");
          if (a->symbol() != nullptr && owned_.count(a->symbol()) &&
              a->symbol()->is_array() && a->rank() != a->symbol()->rank())
            report("rank-mismatch", where,
                   "reference to '" + a->symbol()->name() + "' has " +
                       std::to_string(a->rank()) + " subscripts, declared "
                       "rank " + std::to_string(a->symbol()->rank()));
          break;
        }
        case ExprKind::Wildcard:
          report("wildcard-in-ir", where,
                 "pattern wildcard leaked into program IR");
          break;
        default:
          break;
      }
      for (const Expression* c : e->children()) stack.push_back(c);
    }
  }

  static constexpr std::size_t kMaxExprNodes = 1u << 20;

  const ProgramUnit& unit_;
  std::vector<VerifierViolation>& out_;
  std::set<const Symbol*> owned_;
  std::set<const Expression*> seen_nodes_;  ///< across the whole unit
};

}  // namespace

std::vector<VerifierViolation> verify_unit(const ProgramUnit& unit) {
  return verify_unit(unit, nullptr);
}

std::vector<VerifierViolation> verify_unit(const ProgramUnit& unit,
                                           CompileContext* cc) {
  trace::TraceSpan span(cc != nullptr ? &cc->trace() : nullptr,
                        "verify-unit", "verifier");
  span.arg("unit", unit.name());
  std::vector<VerifierViolation> out;
  UnitVerifier(unit, out).run();
  span.arg("violations", static_cast<std::uint64_t>(out.size()));
  return out;
}

std::vector<VerifierViolation> verify_program(const Program& program) {
  return verify_program(program, nullptr);
}

std::vector<VerifierViolation> verify_program(const Program& program,
                                              CompileContext* cc) {
  trace::TraceSpan span(cc != nullptr ? &cc->trace() : nullptr,
                        "verify-program", "verifier");
  std::vector<VerifierViolation> out;
  std::set<std::string> names;
  int mains = 0;
  for (const auto& unit : program.units()) {
    if (unit == nullptr) {
      out.push_back({"<program>", "unit", "<null>", "null program unit"});
      continue;
    }
    if (!names.insert(unit->name()).second)
      out.push_back({unit->name(), "unit", "<program>",
                     "duplicate program unit name"});
    if (unit->kind() == UnitKind::Program) ++mains;
    UnitVerifier(*unit, out).run();
  }
  if (mains != 1)
    out.push_back({"<program>", "unit", "<program>",
                   "program has " + std::to_string(mains) +
                       " main units, expected exactly 1"});
  return out;
}

std::string format_violations(const std::vector<VerifierViolation>& vs) {
  std::ostringstream os;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i) os << '\n';
    os << vs[i].unit << ": [" << vs[i].rule << "] " << vs[i].where << ": "
       << vs[i].message;
  }
  return os.str();
}

}  // namespace polaris
