#include "ir/program.h"

#include <map>

#include "support/string_util.h"

namespace polaris {

ProgramUnit::ProgramUnit(UnitKind kind, std::string name)
    : kind_(kind), name_(to_lower(name)) {}

void ProgramUnit::add_formal(Symbol* s) {
  p_assert(s != nullptr);
  p_assert_msg(symtab_.lookup(s->name()) == s,
               "formal parameter not declared in this unit's symbol table");
  s->set_formal(true);
  formals_.push_back(s);
}

std::unique_ptr<ProgramUnit> ProgramUnit::clone(
    const std::string& new_name, SymbolMap<Symbol*>* out_map) const {
  auto copy = std::make_unique<ProgramUnit>(kind_, new_name);
  SymbolMap<Symbol*> map;

  // First pass: declare all symbols (dims and values cloned below so that
  // forward references between symbols resolve through `map`).
  for (Symbol* old_sym : symtab_.symbols()) {
    Symbol* new_sym =
        copy->symtab_.declare(old_sym->name(), old_sym->type(),
                              old_sym->kind());
    new_sym->set_formal(old_sym->is_formal());
    new_sym->set_common_block(old_sym->common_block());
    map[old_sym] = new_sym;
  }

  // Second pass: clone dimension bounds, parameter values and data values,
  // remapping symbol references into the new table.
  for (Symbol* old_sym : symtab_.symbols()) {
    Symbol* new_sym = map[old_sym];
    std::vector<Dimension> dims;
    for (const Dimension& d : old_sym->dims()) {
      ExprPtr lo = d.lower ? d.lower->clone() : nullptr;
      ExprPtr hi = d.upper ? d.upper->clone() : nullptr;
      if (lo) remap_symbols(*lo, map);
      if (hi) remap_symbols(*hi, map);
      dims.emplace_back(std::move(lo), std::move(hi));
    }
    new_sym->set_dims(std::move(dims));
    if (old_sym->param_value()) {
      ExprPtr v = old_sym->param_value()->clone();
      remap_symbols(*v, map);
      new_sym->set_param_value(std::move(v));
    }
    for (const ExprPtr& dv : old_sym->data_values()) {
      ExprPtr v = dv->clone();
      remap_symbols(*v, map);
      new_sym->add_data_value(std::move(v));
    }
  }

  // Statements: clone the whole list and remap.  ParallelInfo annotations
  // also carry raw Symbol* (privates, reductions, speculative arrays) and
  // must point into the new table — the fault-isolation snapshot/rollback
  // machinery relies on clones being fully self-contained.
  if (!stmts_.empty()) {
    std::vector<StmtPtr> frag =
        stmts_.clone_range(stmts_.first(), stmts_.last());
    // Clones keep the originals' ids: the snapshot/rollback machinery must
    // restore loop names ("do#<id>") bit-exactly, and under `-jobs=N` a
    // fresh id would depend on what other workers allocated concurrently.
    {
      Statement* orig = stmts_.first();
      for (StmtPtr& s : frag) {
        s->set_id(orig->id());
        orig = orig->next();
      }
    }
    auto remap_sym = [&map](Symbol*& sym) {
      auto it = map.find(sym);
      if (it != map.end()) sym = it->second;
    };
    for (StmtPtr& s : frag) {
      if (s->kind() == StmtKind::Do) {
        auto* d = static_cast<DoStmt*>(s.get());
        auto it = map.find(d->index());
        if (it != map.end()) d->set_index(it->second);
        for (Symbol*& v : d->par.private_vars) remap_sym(v);
        for (Symbol*& v : d->par.lastvalue_vars) remap_sym(v);
        for (Symbol*& v : d->par.speculative_arrays) remap_sym(v);
        for (ReductionInfo& r : d->par.reductions) remap_sym(r.var);
      }
      for (ExprPtr* slot : s->expr_slots()) remap_symbols(**slot, map);
    }
    copy->stmts_.splice_back(std::move(frag));
  }

  for (Symbol* f : formals_) copy->formals_.push_back(map.at(f));
  if (result_) copy->result_ = map.at(result_);
  if (out_map) out_map->insert(map.begin(), map.end());
  return copy;
}

int ProgramUnit::max_label() const {
  int mx = 0;
  for (Statement* s : stmts_) mx = std::max(mx, s->label());
  return mx;
}

ProgramUnit* Program::add_unit(std::unique_ptr<ProgramUnit> unit) {
  p_assert(unit != nullptr);
  p_assert_msg(find(unit->name()) == nullptr,
               "duplicate program unit: " + unit->name());
  units_.push_back(std::move(unit));
  return units_.back().get();
}

ProgramUnit* Program::find(const std::string& name) const {
  std::string key = to_lower(name);
  for (const auto& u : units_)
    if (u->name() == key) return u.get();
  return nullptr;
}

ProgramUnit* Program::main() const {
  ProgramUnit* found = nullptr;
  for (const auto& u : units_) {
    if (u->kind() == UnitKind::Program) {
      p_assert_msg(found == nullptr, "multiple main program units");
      found = u.get();
    }
  }
  p_assert_msg(found != nullptr, "program has no main unit");
  return found;
}

void Program::merge(Program&& other) {
  for (auto& u : other.units_) add_unit(std::move(u));
  other.units_.clear();
}

void Program::renumber_ids() {
  int next_stmt = 1;
  int next_sym = 1;
  for (const auto& unit : units_) {
    for (Statement* s = unit->stmts().first(); s != nullptr; s = s->next())
      s->set_id(next_stmt++);
    for (Symbol* s : unit->symtab().symbols()) s->set_id(next_sym++);
  }
}

ProgramUnit* Program::replace_unit(ProgramUnit* old_unit,
                                   std::unique_ptr<ProgramUnit> replacement) {
  p_assert(old_unit != nullptr && replacement != nullptr);
  for (auto& u : units_) {
    if (u.get() != old_unit) continue;
    u = std::move(replacement);
    return u.get();
  }
  p_unreachable("replace_unit: unit not owned by this program");
}

ProgramUnit* Program::replace_unit_at(std::size_t index,
                                      std::unique_ptr<ProgramUnit> replacement) {
  p_assert(index < units_.size() && replacement != nullptr);
  units_[index] = std::move(replacement);
  return units_[index].get();
}

void Program::reset_units(std::vector<std::unique_ptr<ProgramUnit>> units) {
  p_assert_msg(!units.empty(), "reset_units: empty unit list");
  for (const auto& u : units) p_assert(u != nullptr);
  units_ = std::move(units);
}

}  // namespace polaris
