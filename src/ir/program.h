// ProgramUnit and Program.
//
// A Program is a collection of ProgramUnits (paper, Section 2); a
// ProgramUnit holds a Fortran program unit's statements, symbol table,
// formal-parameter list and common-block membership.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/stmtlist.h"
#include "ir/symbol.h"

namespace polaris {

enum class UnitKind { Program, Subroutine, Function };

class ProgramUnit {
 public:
  ProgramUnit(UnitKind kind, std::string name);

  UnitKind kind() const { return kind_; }
  const std::string& name() const { return name_; }

  SymbolTable& symtab() { return symtab_; }
  const SymbolTable& symtab() const { return symtab_; }

  StmtList& stmts() { return stmts_; }
  const StmtList& stmts() const { return stmts_; }

  /// Formal parameters in declaration order (symbols live in symtab()).
  const std::vector<Symbol*>& formals() const { return formals_; }
  void add_formal(Symbol* s);

  /// For UnitKind::Function: the result variable (same name as the unit).
  Symbol* result() const { return result_; }
  void set_result(Symbol* s) { result_ = s; }

  /// Deep copy with a fresh symbol table; all statement/expression symbol
  /// references are remapped to the new table.  Used by the inliner to
  /// build its per-subprogram "template" objects and by the fault-isolation
  /// snapshot machinery.  When `out_map` is non-null the original-to-clone
  /// symbol mapping is merged into it (the rollback path feeds it to
  /// AtomTable::remap so interned atoms keep their ids).
  std::unique_ptr<ProgramUnit> clone(const std::string& new_name,
                                     SymbolMap<Symbol*>* out_map = nullptr)
      const;

  /// Highest numeric statement label used in the unit (0 when none).
  int max_label() const;

 private:
  UnitKind kind_;
  std::string name_;
  SymbolTable symtab_;
  StmtList stmts_;
  std::vector<Symbol*> formals_;
  Symbol* result_ = nullptr;
};

class Program {
 public:
  Program() = default;
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  /// Adds a unit; asserts the name is unique.  Transfers ownership (pointer
  /// argument — the Polaris ownership convention).
  ProgramUnit* add_unit(std::unique_ptr<ProgramUnit> unit);

  /// Finds a unit by (case-insensitive) name, or null.
  ProgramUnit* find(const std::string& name) const;

  /// The main program unit; asserts exactly one exists.
  ProgramUnit* main() const;

  const std::vector<std::unique_ptr<ProgramUnit>>& units() const {
    return units_;
  }

  /// Merges all units of `other` into this program (paper: "member
  /// functions for ... merging Programs").
  void merge(Program&& other);

  /// Renumbers statement ids to 1..n and symbol ids to 1..m in (unit
  /// order, creation order).  Ids normally come from process-global
  /// counters, so they encode allocation history; renumbering makes every
  /// id-derived artifact (`do#<id>` loop names, SymbolIdLess orderings) a
  /// pure function of the program — independent of worker count, of prior
  /// compilations in the process, and of which thread built which unit.
  /// Runs after the parallel parse merge and again after whole-program
  /// statement-creating passes (inline expansion clones statements with
  /// fresh global ids).
  void renumber_ids();

  /// Swaps `old_unit` (must be owned by this program) for `replacement`,
  /// destroying the old unit.  Returns the new raw pointer.  Used by the
  /// pass manager to restore a pre-pass snapshot after a pass fault.
  ProgramUnit* replace_unit(ProgramUnit* old_unit,
                            std::unique_ptr<ProgramUnit> replacement);

  /// Same, addressed by unit index.  Touches only that vector slot, so
  /// concurrent per-unit workers rolling back *different* units never
  /// scan (and race on) each other's entries.
  ProgramUnit* replace_unit_at(std::size_t index,
                               std::unique_ptr<ProgramUnit> replacement);

  /// Replaces the whole unit list (whole-program rollback for program-scope
  /// passes).  The new list must be non-empty.
  void reset_units(std::vector<std::unique_ptr<ProgramUnit>> units);

 private:
  std::vector<std::unique_ptr<ProgramUnit>> units_;
};

}  // namespace polaris
