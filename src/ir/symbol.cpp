#include "ir/symbol.h"

#include <atomic>

#include "ir/expr.h"
#include "support/string_util.h"

namespace polaris {

namespace {
std::atomic<int> g_next_symbol_id{1};
}

Dimension::Dimension() = default;
Dimension::Dimension(ExprPtr lo, ExprPtr hi)
    : lower(std::move(lo)), upper(std::move(hi)) {}
Dimension::Dimension(Dimension&&) noexcept = default;
Dimension& Dimension::operator=(Dimension&&) noexcept = default;
Dimension::~Dimension() = default;

Symbol::Symbol(std::string name, Type type, SymbolKind kind)
    : name_(to_lower(name)),
      type_(type),
      kind_(kind),
      id_(g_next_symbol_id.fetch_add(1)) {}

Symbol::~Symbol() = default;

void Symbol::set_param_value(ExprPtr v) { param_value_ = std::move(v); }

void Symbol::add_data_value(ExprPtr v) {
  data_values_.push_back(std::move(v));
}

Symbol* SymbolTable::declare(const std::string& name, Type type,
                             SymbolKind kind) {
  std::string key = to_lower(name);
  p_assert_msg(table_.find(key) == table_.end(),
               "duplicate symbol declaration: " + key);
  auto sym = std::make_unique<Symbol>(key, type, kind);
  Symbol* raw = sym.get();
  table_.emplace(key, std::move(sym));
  order_.push_back(raw);
  return raw;
}

Symbol* SymbolTable::lookup(const std::string& name) const {
  auto it = table_.find(to_lower(name));
  return it == table_.end() ? nullptr : it->second.get();
}

Symbol* SymbolTable::get_or_declare(const std::string& name, Type type) {
  if (Symbol* s = lookup(name)) return s;
  return declare(name, type, SymbolKind::Variable);
}

Symbol* SymbolTable::fresh(const std::string& prefix, Type type) {
  std::string base = to_lower(prefix);
  if (!contains(base)) return declare(base, type, SymbolKind::Variable);
  for (int i = 0;; ++i) {
    std::string candidate = base + std::to_string(i);
    if (!contains(candidate))
      return declare(candidate, type, SymbolKind::Variable);
  }
}

void SymbolTable::remove(Symbol* sym) {
  p_assert(sym != nullptr);
  auto it = table_.find(sym->name());
  p_assert_msg(it != table_.end() && it->second.get() == sym,
               "removing symbol not owned by this table: " + sym->name());
  auto pos = std::find(order_.begin(), order_.end(), sym);
  p_assert(pos != order_.end());
  order_.erase(pos);
  table_.erase(it);
}

bool SymbolTable::contains(const std::string& name) const {
  return table_.find(to_lower(name)) != table_.end();
}

}  // namespace polaris
