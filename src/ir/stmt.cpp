#include "ir/stmt.h"

#include <atomic>
#include <ostream>
#include <sstream>

#include "support/string_util.h"

namespace polaris {

namespace {
std::atomic<int> g_next_stmt_id{1};
}

Statement::Statement(StmtKind k) : kind_(k), id_(g_next_stmt_id.fetch_add(1)) {}

std::vector<const Expression*> Statement::expressions() const {
  std::vector<const Expression*> out;
  for (ExprPtr* slot : const_cast<Statement*>(this)->expr_slots())
    out.push_back(slot->get());
  return out;
}

std::string Statement::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Statement& s) {
  s.print(os);
  return os;
}

// --- AssignStmt ---------------------------------------------------------------

AssignStmt::AssignStmt(ExprPtr lhs, ExprPtr rhs)
    : Statement(StmtKind::Assign), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {
  p_assert(lhs_ != nullptr && rhs_ != nullptr);
  p_assert_msg(lhs_->kind() == ExprKind::VarRef ||
                   lhs_->kind() == ExprKind::ArrayRef,
               "assignment target must be a variable or array element");
}

Symbol* AssignStmt::target() const {
  if (lhs_->kind() == ExprKind::VarRef)
    return static_cast<const VarRef&>(*lhs_).symbol();
  return static_cast<const ArrayRef&>(*lhs_).symbol();
}

StmtPtr AssignStmt::clone() const {
  auto s = std::make_unique<AssignStmt>(lhs_->clone(), rhs_->clone());
  s->set_label(label());
  s->reduction_flag = reduction_flag;
  return s;
}

void AssignStmt::print(std::ostream& os) const {
  os << *lhs_ << " = " << *rhs_;
}

// --- DoStmt -------------------------------------------------------------------

DoStmt::DoStmt(Symbol* index, ExprPtr init, ExprPtr limit, ExprPtr step)
    : Statement(StmtKind::Do),
      index_(index),
      init_(std::move(init)),
      limit_(std::move(limit)),
      step_(std::move(step)) {
  p_assert(index_ != nullptr);
  p_assert(init_ != nullptr && limit_ != nullptr);
  if (!step_) step_ = std::make_unique<IntConst>(1);
}

std::string DoStmt::loop_name() const {
  if (label() != 0) return "do_" + std::to_string(label());
  return "do#" + std::to_string(id());
}

StmtPtr DoStmt::clone() const {
  auto s = std::make_unique<DoStmt>(index_, init_->clone(), limit_->clone(),
                                    step_->clone());
  s->set_label(label());
  s->par = par;
  return s;
}

void DoStmt::print(std::ostream& os) const {
  os << "do " << index_->name() << " = " << *init_ << ", " << *limit_;
  const bool unit_step = step_->kind() == ExprKind::IntConst &&
                         static_cast<const IntConst&>(*step_).value() == 1;
  if (!unit_step) os << ", " << *step_;
}

// --- EndDoStmt ------------------------------------------------------------------

StmtPtr EndDoStmt::clone() const {
  auto s = std::make_unique<EndDoStmt>();
  s->set_label(label());
  return s;
}

void EndDoStmt::print(std::ostream& os) const { os << "end do"; }

// --- If family ------------------------------------------------------------------

IfStmt::IfStmt(ExprPtr cond) : Statement(StmtKind::If), cond_(std::move(cond)) {
  p_assert(cond_ != nullptr);
}

StmtPtr IfStmt::clone() const {
  auto s = std::make_unique<IfStmt>(cond_->clone());
  s->set_label(label());
  return s;
}

void IfStmt::print(std::ostream& os) const {
  os << "if (" << *cond_ << ") then";
}

ElseIfStmt::ElseIfStmt(ExprPtr cond)
    : Statement(StmtKind::ElseIf), cond_(std::move(cond)) {
  p_assert(cond_ != nullptr);
}

StmtPtr ElseIfStmt::clone() const {
  auto s = std::make_unique<ElseIfStmt>(cond_->clone());
  s->set_label(label());
  return s;
}

void ElseIfStmt::print(std::ostream& os) const {
  os << "else if (" << *cond_ << ") then";
}

StmtPtr ElseStmt::clone() const {
  auto s = std::make_unique<ElseStmt>();
  s->set_label(label());
  return s;
}

void ElseStmt::print(std::ostream& os) const { os << "else"; }

StmtPtr EndIfStmt::clone() const {
  auto s = std::make_unique<EndIfStmt>();
  s->set_label(label());
  return s;
}

void EndIfStmt::print(std::ostream& os) const { os << "end if"; }

// --- control statements -----------------------------------------------------

StmtPtr GotoStmt::clone() const {
  auto s = std::make_unique<GotoStmt>(target_);
  s->set_label(label());
  return s;
}

void GotoStmt::print(std::ostream& os) const { os << "goto " << target_; }

StmtPtr ContinueStmt::clone() const {
  auto s = std::make_unique<ContinueStmt>();
  s->set_label(label());
  return s;
}

void ContinueStmt::print(std::ostream& os) const { os << "continue"; }

// --- CallStmt -----------------------------------------------------------------

CallStmt::CallStmt(std::string name, std::vector<ExprPtr> args)
    : Statement(StmtKind::Call),
      name_(to_lower(name)),
      args_(std::move(args)) {
  for (const auto& a : args_) p_assert(a != nullptr);
}

StmtPtr CallStmt::clone() const {
  std::vector<ExprPtr> args;
  args.reserve(args_.size());
  for (const auto& a : args_) args.push_back(a->clone());
  auto s = std::make_unique<CallStmt>(name_, std::move(args));
  s->set_label(label());
  return s;
}

std::vector<ExprPtr*> CallStmt::expr_slots() {
  std::vector<ExprPtr*> out;
  out.reserve(args_.size());
  for (auto& a : args_) out.push_back(&a);
  return out;
}

void CallStmt::print(std::ostream& os) const {
  os << "call " << name_ << "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i) os << ",";
    os << *args_[i];
  }
  os << ")";
}

// --- Return / Stop -----------------------------------------------------------

StmtPtr ReturnStmt::clone() const {
  auto s = std::make_unique<ReturnStmt>();
  s->set_label(label());
  return s;
}

void ReturnStmt::print(std::ostream& os) const { os << "return"; }

StmtPtr StopStmt::clone() const {
  auto s = std::make_unique<StopStmt>();
  s->set_label(label());
  return s;
}

void StopStmt::print(std::ostream& os) const { os << "stop"; }

// --- PrintStmt -----------------------------------------------------------------

PrintStmt::PrintStmt(std::vector<ExprPtr> items)
    : Statement(StmtKind::Print), items_(std::move(items)) {
  for (const auto& i : items_) p_assert(i != nullptr);
}

StmtPtr PrintStmt::clone() const {
  std::vector<ExprPtr> items;
  items.reserve(items_.size());
  for (const auto& i : items_) items.push_back(i->clone());
  auto s = std::make_unique<PrintStmt>(std::move(items));
  s->set_label(label());
  return s;
}

std::vector<ExprPtr*> PrintStmt::expr_slots() {
  std::vector<ExprPtr*> out;
  out.reserve(items_.size());
  for (auto& i : items_) out.push_back(&i);
  return out;
}

void PrintStmt::print(std::ostream& os) const {
  os << "print *";
  for (const auto& i : items_) os << ", " << *i;
}

// --- CommentStmt ----------------------------------------------------------------

StmtPtr CommentStmt::clone() const {
  auto s = std::make_unique<CommentStmt>(text_);
  s->set_label(label());
  return s;
}

void CommentStmt::print(std::ostream& os) const { os << "!" << text_; }

}  // namespace polaris
