// Pattern matching and replacement — the "Forbol" layer (paper Section 2:
// "powerful routines to test the structural-equality of expressions, as
// well as pattern-matching and replacement routines ... based on an
// abstract Wildcard class").
//
// A pattern is an ordinary expression tree that may contain Wildcards; a
// replacement template may contain wildcards with the same names, which
// are spliced with the matched subtrees:
//
//   rewrite_all(e, *pattern("?a + ?a"), *pattern("2*?a"))
//
// turns every `x + x` into `2*x`.
#pragma once

#include "ir/expr.h"

namespace polaris {

/// Instantiates a template: every Wildcard is replaced by a clone of its
/// binding.  Asserts that all wildcard names are bound.
ExprPtr instantiate(const Expression& templ, const Bindings& bindings);

/// Rewrites every subtree of `root` matching `pattern` (outermost-first,
/// left to right; rewritten subtrees are not revisited) with the
/// instantiated `replacement`.  Returns the number of rewrites.
int rewrite_all(ExprPtr& root, const Expression& pattern,
                const Expression& replacement);

/// Finds the first subtree of `e` matching `pattern` (pre-order); fills
/// `bindings` and returns it, or null.
const Expression* find_match(const Expression& e, const Expression& pattern,
                             Bindings* bindings);

}  // namespace polaris
