// Statements.
//
// Following the Polaris IR design, statements are simple *non-recursive*
// records kept in a flat, doubly-linked StmtList.  Multi-block constructs
// (do/enddo, block-if chains) are represented by marker statements whose
// cross links (DoStmt::follow, the if-arm chain) are *derived* data,
// recomputed and validated by StmtList::revalidate() after every structural
// edit.  Each statement also carries an `outer` link to its innermost
// enclosing DO, exactly as in the paper.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ir/expr.h"

namespace polaris {

class StmtList;
class DoStmt;
class EndDoStmt;
class EndIfStmt;

enum class StmtKind {
  Assign,
  Do,
  EndDo,
  If,
  ElseIf,
  Else,
  EndIf,
  Goto,
  Continue,
  Call,
  Return,
  Stop,
  Print,
  Comment,
};

/// How a reduction statement is to be implemented (paper Section 3.2).
enum class ReductionKind { None, Sum, Product, Min, Max };

/// Parallelization annotations attached to a DO loop by the analysis
/// pipeline; consumed by the code generator and the execution engine.
struct ReductionInfo {
  Symbol* var = nullptr;       ///< the reduction variable/array
  ReductionKind op = ReductionKind::Sum;
  bool histogram = false;      ///< sums into varying array elements
};

struct ParallelInfo {
  bool is_parallel = false;
  bool speculative = false;    ///< parallelize via the run-time PD test
  std::vector<Symbol*> private_vars;
  std::vector<Symbol*> lastvalue_vars;  ///< privates live-out of the loop
  std::vector<ReductionInfo> reductions;
  /// Arrays whose accesses the run-time PD test must shadow (set only for
  /// speculative loops: the statically unanalyzable arrays).
  std::vector<Symbol*> speculative_arrays;
  /// Dependence-test accounting: access pairs tested and which test
  /// resolved them (diagnostic; filled by the DOALL driver).
  int dep_pairs = 0;
  int dep_by_gcd = 0;
  int dep_by_banerjee = 0;
  int dep_by_rangetest = 0;
  std::string serial_reason;   ///< why the loop stayed serial (diagnostics)
  /// Machine-readable reason code behind serial_reason (kebab-case, e.g.
  /// "carried-dependence"); empty iff the loop is parallel.  Backed by a
  /// structured Missed remark carrying the same code.
  std::string serial_code;
};

class Statement {
 public:
  virtual ~Statement() = default;
  Statement(const Statement&) = delete;
  Statement& operator=(const Statement&) = delete;

  StmtKind kind() const { return kind_; }
  int id() const { return id_; }
  /// Overwrites the creation-order id.  Only for ProgramUnit::clone: a
  /// fault-isolation snapshot must restore statement identities — loop
  /// names are "do#<id>" — exactly, or a rolled-back unit would rename
  /// its loops (nondeterministically so under `-jobs=N`, where clone ids
  /// interleave with other workers' allocations).
  void set_id(int id) { id_ = id; }

  int label() const { return label_; }
  void set_label(int l) { label_ = l; }

  /// Innermost enclosing DO loop, or null (derived; set by revalidate()).
  DoStmt* outer() const { return outer_; }

  Statement* next() const { return next_.get(); }
  Statement* prev() const { return prev_; }
  StmtList* list() const { return list_; }

  /// Deep copy of the statement's content (label kept; links not copied —
  /// they are derived data recomputed on insertion).
  virtual std::unique_ptr<Statement> clone() const = 0;

  /// Mutable slots of every expression contained in this statement, for
  /// generic traversal during dependence analysis and substitution.
  virtual std::vector<ExprPtr*> expr_slots() = 0;
  std::vector<const Expression*> expressions() const;

  virtual void print(std::ostream& os) const = 0;
  std::string to_string() const;

 protected:
  explicit Statement(StmtKind k);

 private:
  friend class StmtList;
  /// Test-only seam: verifier tests corrupt derived links directly to
  /// exercise detection paths unreachable through the consistency-checked
  /// public API.  Defined in tests/ir/verifier_test.cpp only.
  friend class VerifierTestPeer;

  StmtKind kind_;
  int id_;
  int label_ = 0;
  DoStmt* outer_ = nullptr;
  std::unique_ptr<Statement> next_;  // intrusive ownership chain
  Statement* prev_ = nullptr;
  StmtList* list_ = nullptr;
};

using StmtPtr = std::unique_ptr<Statement>;

// --- concrete statements ------------------------------------------------------

/// lhs = rhs, lhs being a VarRef or ArrayRef.
class AssignStmt final : public Statement {
 public:
  AssignStmt(ExprPtr lhs, ExprPtr rhs);
  const Expression& lhs() const { return *lhs_; }
  const Expression& rhs() const { return *rhs_; }
  ExprPtr& lhs_slot() { return lhs_; }
  ExprPtr& rhs_slot() { return rhs_; }
  /// Symbol assigned by this statement (base symbol of the lhs).
  Symbol* target() const;

  /// Set when reduction recognition flags this as a reduction statement;
  /// cleared again if dependence analysis proves no carried dependence.
  ReductionKind reduction_flag = ReductionKind::None;

  StmtPtr clone() const override;
  std::vector<ExprPtr*> expr_slots() override { return {&lhs_, &rhs_}; }
  void print(std::ostream& os) const override;

 private:
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// do index = init, limit, step
class DoStmt final : public Statement {
 public:
  DoStmt(Symbol* index, ExprPtr init, ExprPtr limit, ExprPtr step);
  Symbol* index() const { return index_; }
  void set_index(Symbol* s) { p_assert(s); index_ = s; }
  const Expression& init() const { return *init_; }
  const Expression& limit() const { return *limit_; }
  const Expression& step() const { return *step_; }
  ExprPtr& init_slot() { return init_; }
  ExprPtr& limit_slot() { return limit_; }
  ExprPtr& step_slot() { return step_; }

  /// Matching ENDDO (derived; set by revalidate()).
  EndDoStmt* follow() const { return follow_; }
  /// First statement of the body (may be the ENDDO itself if empty).
  Statement* body_first() const { return next(); }

  ParallelInfo par;  ///< parallelization annotations

  /// Stable human-readable name for reports, e.g. "do#12" or "do_100".
  std::string loop_name() const;

  StmtPtr clone() const override;
  std::vector<ExprPtr*> expr_slots() override {
    return {&init_, &limit_, &step_};
  }
  void print(std::ostream& os) const override;

 private:
  friend class StmtList;
  Symbol* index_;
  ExprPtr init_;
  ExprPtr limit_;
  ExprPtr step_;
  EndDoStmt* follow_ = nullptr;
};

class EndDoStmt final : public Statement {
 public:
  EndDoStmt() : Statement(StmtKind::EndDo) {}
  /// The DO this ENDDO closes (derived).
  DoStmt* header() const { return header_; }
  StmtPtr clone() const override;
  std::vector<ExprPtr*> expr_slots() override { return {}; }
  void print(std::ostream& os) const override;

 private:
  friend class StmtList;
  DoStmt* header_ = nullptr;
};

/// if (cond) then
class IfStmt final : public Statement {
 public:
  explicit IfStmt(ExprPtr cond);
  const Expression& cond() const { return *cond_; }
  ExprPtr& cond_slot() { return cond_; }
  /// Next arm at this nesting level: ElseIf, Else, or the EndIf (derived).
  Statement* next_arm() const { return next_arm_; }
  EndIfStmt* end() const { return end_; }
  StmtPtr clone() const override;
  std::vector<ExprPtr*> expr_slots() override { return {&cond_}; }
  void print(std::ostream& os) const override;

 private:
  friend class StmtList;
  ExprPtr cond_;
  Statement* next_arm_ = nullptr;
  EndIfStmt* end_ = nullptr;
};

class ElseIfStmt final : public Statement {
 public:
  explicit ElseIfStmt(ExprPtr cond);
  const Expression& cond() const { return *cond_; }
  ExprPtr& cond_slot() { return cond_; }
  Statement* next_arm() const { return next_arm_; }
  EndIfStmt* end() const { return end_; }
  StmtPtr clone() const override;
  std::vector<ExprPtr*> expr_slots() override { return {&cond_}; }
  void print(std::ostream& os) const override;

 private:
  friend class StmtList;
  ExprPtr cond_;
  Statement* next_arm_ = nullptr;
  EndIfStmt* end_ = nullptr;
};

class ElseStmt final : public Statement {
 public:
  ElseStmt() : Statement(StmtKind::Else) {}
  EndIfStmt* end() const { return end_; }
  StmtPtr clone() const override;
  std::vector<ExprPtr*> expr_slots() override { return {}; }
  void print(std::ostream& os) const override;

 private:
  friend class StmtList;
  EndIfStmt* end_ = nullptr;
};

class EndIfStmt final : public Statement {
 public:
  EndIfStmt() : Statement(StmtKind::EndIf) {}
  StmtPtr clone() const override;
  std::vector<ExprPtr*> expr_slots() override { return {}; }
  void print(std::ostream& os) const override;
};

class GotoStmt final : public Statement {
 public:
  explicit GotoStmt(int target) : Statement(StmtKind::Goto), target_(target) {}
  int target() const { return target_; }
  StmtPtr clone() const override;
  std::vector<ExprPtr*> expr_slots() override { return {}; }
  void print(std::ostream& os) const override;

 private:
  int target_;
};

class ContinueStmt final : public Statement {
 public:
  ContinueStmt() : Statement(StmtKind::Continue) {}
  StmtPtr clone() const override;
  std::vector<ExprPtr*> expr_slots() override { return {}; }
  void print(std::ostream& os) const override;
};

/// call name(args...)
class CallStmt final : public Statement {
 public:
  CallStmt(std::string name, std::vector<ExprPtr> args);
  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }
  std::vector<ExprPtr>& args() { return args_; }
  StmtPtr clone() const override;
  std::vector<ExprPtr*> expr_slots() override;
  void print(std::ostream& os) const override;

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

class ReturnStmt final : public Statement {
 public:
  ReturnStmt() : Statement(StmtKind::Return) {}
  StmtPtr clone() const override;
  std::vector<ExprPtr*> expr_slots() override { return {}; }
  void print(std::ostream& os) const override;
};

class StopStmt final : public Statement {
 public:
  StopStmt() : Statement(StmtKind::Stop) {}
  StmtPtr clone() const override;
  std::vector<ExprPtr*> expr_slots() override { return {}; }
  void print(std::ostream& os) const override;
};

/// print *, items...
class PrintStmt final : public Statement {
 public:
  explicit PrintStmt(std::vector<ExprPtr> items);
  const std::vector<ExprPtr>& items() const { return items_; }
  StmtPtr clone() const override;
  std::vector<ExprPtr*> expr_slots() override;
  void print(std::ostream& os) const override;

 private:
  std::vector<ExprPtr> items_;
};

/// A source comment or compiler directive line, preserved verbatim.
class CommentStmt final : public Statement {
 public:
  explicit CommentStmt(std::string text)
      : Statement(StmtKind::Comment), text_(std::move(text)) {}
  const std::string& text() const { return text_; }
  StmtPtr clone() const override;
  std::vector<ExprPtr*> expr_slots() override { return {}; }
  void print(std::ostream& os) const override;

 private:
  std::string text_;
};

std::ostream& operator<<(std::ostream& os, const Statement& s);

}  // namespace polaris
