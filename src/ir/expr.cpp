#include "ir/expr.h"

#include <cmath>
#include <ostream>
#include <sstream>

#include "support/string_util.h"

namespace polaris {

bool is_comparison(BinOpKind k) {
  switch (k) {
    case BinOpKind::Eq: case BinOpKind::Ne: case BinOpKind::Lt:
    case BinOpKind::Le: case BinOpKind::Gt: case BinOpKind::Ge:
      return true;
    default:
      return false;
  }
}

bool is_arithmetic(BinOpKind k) {
  switch (k) {
    case BinOpKind::Add: case BinOpKind::Sub: case BinOpKind::Mul:
    case BinOpKind::Div: case BinOpKind::Pow:
      return true;
    default:
      return false;
  }
}

std::string binop_spelling(BinOpKind k) {
  switch (k) {
    case BinOpKind::Add: return "+";
    case BinOpKind::Sub: return "-";
    case BinOpKind::Mul: return "*";
    case BinOpKind::Div: return "/";
    case BinOpKind::Pow: return "**";
    case BinOpKind::Eq: return ".eq.";
    case BinOpKind::Ne: return ".ne.";
    case BinOpKind::Lt: return ".lt.";
    case BinOpKind::Le: return ".le.";
    case BinOpKind::Gt: return ".gt.";
    case BinOpKind::Ge: return ".ge.";
    case BinOpKind::And: return ".and.";
    case BinOpKind::Or: return ".or.";
  }
  p_unreachable("bad BinOpKind");
}

namespace {
/// Operator precedence for printing with minimal parentheses.
int precedence(const Expression& e) {
  switch (e.kind()) {
    case ExprKind::BinOp:
      switch (static_cast<const BinOp&>(e).op()) {
        case BinOpKind::Or: return 1;
        case BinOpKind::And: return 2;
        case BinOpKind::Eq: case BinOpKind::Ne: case BinOpKind::Lt:
        case BinOpKind::Le: case BinOpKind::Gt: case BinOpKind::Ge:
          return 3;
        case BinOpKind::Add: case BinOpKind::Sub: return 4;
        case BinOpKind::Mul: case BinOpKind::Div: return 5;
        case BinOpKind::Pow: return 6;
      }
      return 0;
    case ExprKind::UnOp:
      return static_cast<const UnOp&>(e).op() == UnOpKind::Neg ? 4 : 2;
    default:
      return 100;  // atoms never need parens
  }
}

void print_child(std::ostream& os, const Expression& parent,
                 const Expression& child, bool right_side) {
  int pp = precedence(parent);
  int cp = precedence(child);
  // '**' is right-associative: a**b**c means a**(b**c), so the *left*
  // child needs parentheses at equal precedence, not the right one.
  bool parent_is_pow =
      parent.kind() == ExprKind::BinOp &&
      static_cast<const BinOp&>(parent).op() == BinOpKind::Pow;
  bool parens =
      cp < pp || (cp == pp && (parent_is_pow ? !right_side : right_side));
  if (parens) os << "(";
  child.print(os);
  if (parens) os << ")";
}

std::size_t hash_combine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}
}  // namespace

std::vector<const Expression*> Expression::children() const {
  std::vector<const Expression*> out;
  for (ExprPtr* slot : const_cast<Expression*>(this)->children())
    out.push_back(slot->get());
  return out;
}

std::string Expression::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

bool Expression::equals(const Expression& other) const {
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case ExprKind::IntConst:
      return static_cast<const IntConst&>(*this).value() ==
             static_cast<const IntConst&>(other).value();
    case ExprKind::RealConst: {
      const auto& a = static_cast<const RealConst&>(*this);
      const auto& b = static_cast<const RealConst&>(other);
      return a.value() == b.value() && a.is_double() == b.is_double();
    }
    case ExprKind::LogicalConst:
      return static_cast<const LogicalConst&>(*this).value() ==
             static_cast<const LogicalConst&>(other).value();
    case ExprKind::StringConst:
      return static_cast<const StringConst&>(*this).value() ==
             static_cast<const StringConst&>(other).value();
    case ExprKind::VarRef:
      return static_cast<const VarRef&>(*this).symbol() ==
             static_cast<const VarRef&>(other).symbol();
    case ExprKind::ArrayRef: {
      const auto& a = static_cast<const ArrayRef&>(*this);
      const auto& b = static_cast<const ArrayRef&>(other);
      if (a.symbol() != b.symbol() || a.rank() != b.rank()) return false;
      for (int i = 0; i < a.rank(); ++i)
        if (!a.subscripts()[i]->equals(*b.subscripts()[i])) return false;
      return true;
    }
    case ExprKind::BinOp: {
      const auto& a = static_cast<const BinOp&>(*this);
      const auto& b = static_cast<const BinOp&>(other);
      return a.op() == b.op() && a.left().equals(b.left()) &&
             a.right().equals(b.right());
    }
    case ExprKind::UnOp: {
      const auto& a = static_cast<const UnOp&>(*this);
      const auto& b = static_cast<const UnOp&>(other);
      return a.op() == b.op() && a.operand().equals(b.operand());
    }
    case ExprKind::FuncCall: {
      const auto& a = static_cast<const FuncCall&>(*this);
      const auto& b = static_cast<const FuncCall&>(other);
      if (a.name() != b.name() || a.args().size() != b.args().size())
        return false;
      for (size_t i = 0; i < a.args().size(); ++i)
        if (!a.args()[i]->equals(*b.args()[i])) return false;
      return true;
    }
    case ExprKind::Wildcard:
      return static_cast<const Wildcard&>(*this).name() ==
             static_cast<const Wildcard&>(other).name();
  }
  p_unreachable("bad ExprKind");
}

std::size_t Expression::hash() const {
  std::size_t h = static_cast<std::size_t>(kind());
  switch (kind()) {
    case ExprKind::IntConst:
      return hash_combine(h, std::hash<std::int64_t>{}(
                                 static_cast<const IntConst&>(*this).value()));
    case ExprKind::RealConst:
      return hash_combine(h, std::hash<double>{}(
                                 static_cast<const RealConst&>(*this).value()));
    case ExprKind::LogicalConst:
      return hash_combine(
          h, static_cast<const LogicalConst&>(*this).value() ? 1u : 2u);
    case ExprKind::StringConst:
      return hash_combine(h, std::hash<std::string>{}(
                                 static_cast<const StringConst&>(*this).value()));
    case ExprKind::VarRef:
      return hash_combine(h, std::hash<int>{}(
                                 static_cast<const VarRef&>(*this).symbol()->id()));
    case ExprKind::Wildcard:
      return hash_combine(h, std::hash<std::string>{}(
                                 static_cast<const Wildcard&>(*this).name()));
    case ExprKind::ArrayRef: {
      const auto& a = static_cast<const ArrayRef&>(*this);
      h = hash_combine(h, std::hash<int>{}(a.symbol()->id()));
      for (const auto& s : a.subscripts()) h = hash_combine(h, s->hash());
      return h;
    }
    case ExprKind::BinOp: {
      const auto& b = static_cast<const BinOp&>(*this);
      h = hash_combine(h, static_cast<std::size_t>(b.op()));
      h = hash_combine(h, b.left().hash());
      return hash_combine(h, b.right().hash());
    }
    case ExprKind::UnOp: {
      const auto& u = static_cast<const UnOp&>(*this);
      h = hash_combine(h, static_cast<std::size_t>(u.op()));
      return hash_combine(h, u.operand().hash());
    }
    case ExprKind::FuncCall: {
      const auto& f = static_cast<const FuncCall&>(*this);
      h = hash_combine(h, std::hash<std::string>{}(f.name()));
      for (const auto& a : f.args()) h = hash_combine(h, a->hash());
      return h;
    }
  }
  p_unreachable("bad ExprKind");
}

bool Expression::match(const Expression& subject, Bindings& bindings) const {
  if (kind() == ExprKind::Wildcard) {
    const auto& w = static_cast<const Wildcard&>(*this);
    if (w.constrained() && subject.kind() != w.required_kind()) return false;
    auto it = bindings.find(w.name());
    if (it != bindings.end()) return it->second->equals(subject);
    bindings.emplace(w.name(), &subject);
    return true;
  }
  if (kind() != subject.kind()) return false;
  switch (kind()) {
    case ExprKind::IntConst:
    case ExprKind::RealConst:
    case ExprKind::LogicalConst:
    case ExprKind::StringConst:
    case ExprKind::VarRef:
      return equals(subject);
    case ExprKind::ArrayRef: {
      const auto& p = static_cast<const ArrayRef&>(*this);
      const auto& s = static_cast<const ArrayRef&>(subject);
      if (p.symbol() != s.symbol() || p.rank() != s.rank()) return false;
      for (int i = 0; i < p.rank(); ++i)
        if (!p.subscripts()[i]->match(*s.subscripts()[i], bindings))
          return false;
      return true;
    }
    case ExprKind::BinOp: {
      const auto& p = static_cast<const BinOp&>(*this);
      const auto& s = static_cast<const BinOp&>(subject);
      return p.op() == s.op() && p.left().match(s.left(), bindings) &&
             p.right().match(s.right(), bindings);
    }
    case ExprKind::UnOp: {
      const auto& p = static_cast<const UnOp&>(*this);
      const auto& s = static_cast<const UnOp&>(subject);
      return p.op() == s.op() && p.operand().match(s.operand(), bindings);
    }
    case ExprKind::FuncCall: {
      const auto& p = static_cast<const FuncCall&>(*this);
      const auto& s = static_cast<const FuncCall&>(subject);
      if (p.name() != s.name() || p.args().size() != s.args().size())
        return false;
      for (size_t i = 0; i < p.args().size(); ++i)
        if (!p.args()[i]->match(*s.args()[i], bindings)) return false;
      return true;
    }
    case ExprKind::Wildcard:
      p_unreachable("handled above");
  }
  p_unreachable("bad ExprKind");
}

bool Expression::contains(
    const std::function<bool(const Expression&)>& pred) const {
  if (pred(*this)) return true;
  for (const Expression* c : children())
    if (c->contains(pred)) return true;
  return false;
}

bool Expression::references(const Symbol* sym) const {
  return contains([sym](const Expression& e) {
    if (e.kind() == ExprKind::VarRef)
      return static_cast<const VarRef&>(e).symbol() == sym;
    if (e.kind() == ExprKind::ArrayRef)
      return static_cast<const ArrayRef&>(e).symbol() == sym;
    return false;
  });
}

std::ostream& operator<<(std::ostream& os, const Expression& e) {
  e.print(os);
  return os;
}

// --- node implementations ---------------------------------------------------

ExprPtr IntConst::clone() const { return std::make_unique<IntConst>(value_); }
void IntConst::print(std::ostream& os) const {
  if (value_ < 0)
    os << "(" << value_ << ")";
  else
    os << value_;
}

ExprPtr RealConst::clone() const {
  return std::make_unique<RealConst>(value_, is_double_);
}
void RealConst::print(std::ostream& os) const {
  std::ostringstream tmp;
  tmp << value_;
  std::string s = tmp.str();
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos)
    s += ".0";
  if (is_double_) {
    auto e = s.find('e');
    if (e != std::string::npos) s[e] = 'd';
    else s += "d0";
  }
  if (value_ < 0)
    os << "(" << s << ")";
  else
    os << s;
}

ExprPtr LogicalConst::clone() const {
  return std::make_unique<LogicalConst>(value_);
}
void LogicalConst::print(std::ostream& os) const {
  os << (value_ ? ".true." : ".false.");
}

ExprPtr StringConst::clone() const {
  return std::make_unique<StringConst>(value_);
}
void StringConst::print(std::ostream& os) const { os << "'" << value_ << "'"; }

ExprPtr VarRef::clone() const { return std::make_unique<VarRef>(sym_); }
void VarRef::print(std::ostream& os) const { os << sym_->name(); }

ArrayRef::ArrayRef(Symbol* sym, std::vector<ExprPtr> subs)
    : Expression(ExprKind::ArrayRef), sym_(sym), subs_(std::move(subs)) {
  p_assert(sym != nullptr);
  p_assert_msg(!subs_.empty(), "array reference with no subscripts");
  for (const auto& s : subs_) p_assert(s != nullptr);
}

ExprPtr ArrayRef::clone() const {
  std::vector<ExprPtr> subs;
  subs.reserve(subs_.size());
  for (const auto& s : subs_) subs.push_back(s->clone());
  return std::make_unique<ArrayRef>(sym_, std::move(subs));
}

std::vector<ExprPtr*> ArrayRef::children() {
  std::vector<ExprPtr*> out;
  out.reserve(subs_.size());
  for (auto& s : subs_) out.push_back(&s);
  return out;
}

void ArrayRef::print(std::ostream& os) const {
  os << sym_->name() << "(";
  for (size_t i = 0; i < subs_.size(); ++i) {
    if (i) os << ",";
    subs_[i]->print(os);
  }
  os << ")";
}

BinOp::BinOp(BinOpKind op, ExprPtr l, ExprPtr r)
    : Expression(ExprKind::BinOp),
      op_(op),
      left_(std::move(l)),
      right_(std::move(r)) {
  p_assert(left_ != nullptr && right_ != nullptr);
}

ExprPtr BinOp::clone() const {
  return std::make_unique<BinOp>(op_, left_->clone(), right_->clone());
}

Type BinOp::type() const {
  if (is_comparison(op_) || op_ == BinOpKind::And || op_ == BinOpKind::Or)
    return Type::logical();
  return Type::promote(left_->type(), right_->type());
}

void BinOp::print(std::ostream& os) const {
  print_child(os, *this, *left_, false);
  os << binop_spelling(op_);
  print_child(os, *this, *right_, true);
}

UnOp::UnOp(UnOpKind op, ExprPtr e)
    : Expression(ExprKind::UnOp), op_(op), operand_(std::move(e)) {
  p_assert(operand_ != nullptr);
}

ExprPtr UnOp::clone() const {
  return std::make_unique<UnOp>(op_, operand_->clone());
}

void UnOp::print(std::ostream& os) const {
  os << (op_ == UnOpKind::Neg ? "-" : ".not.");
  print_child(os, *this, *operand_, true);
}

FuncCall::FuncCall(std::string name, std::vector<ExprPtr> args,
                   Type result_type)
    : Expression(ExprKind::FuncCall),
      name_(to_lower(name)),
      args_(std::move(args)),
      result_type_(result_type) {
  for (const auto& a : args_) p_assert(a != nullptr);
}

ExprPtr FuncCall::clone() const {
  std::vector<ExprPtr> args;
  args.reserve(args_.size());
  for (const auto& a : args_) args.push_back(a->clone());
  return std::make_unique<FuncCall>(name_, std::move(args), result_type_);
}

std::vector<ExprPtr*> FuncCall::children() {
  std::vector<ExprPtr*> out;
  out.reserve(args_.size());
  for (auto& a : args_) out.push_back(&a);
  return out;
}

void FuncCall::print(std::ostream& os) const {
  os << name_ << "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i) os << ",";
    args_[i]->print(os);
  }
  os << ")";
}

ExprPtr Wildcard::clone() const {
  if (constrained_) return std::make_unique<Wildcard>(name_, required_);
  return std::make_unique<Wildcard>(name_);
}
void Wildcard::print(std::ostream& os) const { os << "?" << name_; }

// --- generic walks ----------------------------------------------------------

void walk(const Expression& e,
          const std::function<void(const Expression&)>& fn) {
  fn(e);
  for (const Expression* c : e.children()) walk(*c, fn);
}

void walk_slots(ExprPtr& root, const std::function<void(ExprPtr&)>& fn) {
  p_assert(root != nullptr);
  const Expression* before = root.get();
  fn(root);
  if (root.get() != before) return;  // replaced: do not descend
  for (ExprPtr* slot : root->children()) walk_slots(*slot, fn);
}

int replace_all(ExprPtr& root, const Expression& from, const Expression& to) {
  int count = 0;
  walk_slots(root, [&](ExprPtr& slot) {
    if (slot->equals(from)) {
      slot = to.clone();
      ++count;
    }
  });
  return count;
}

int replace_var(ExprPtr& root, const Symbol* sym, const Expression& to) {
  int count = 0;
  walk_slots(root, [&](ExprPtr& slot) {
    if (slot->kind() == ExprKind::VarRef &&
        static_cast<const VarRef&>(*slot).symbol() == sym) {
      slot = to.clone();
      ++count;
    }
  });
  return count;
}

void remap_symbols(Expression& e, const SymbolMap<Symbol*>& map) {
  if (e.kind() == ExprKind::VarRef) {
    auto& v = static_cast<VarRef&>(e);
    auto it = map.find(v.symbol());
    if (it != map.end()) v.set_symbol(it->second);
  } else if (e.kind() == ExprKind::ArrayRef) {
    auto& a = static_cast<ArrayRef&>(e);
    auto it = map.find(a.symbol());
    if (it != map.end()) a.set_symbol(it->second);
  }
  for (ExprPtr* slot : e.children()) remap_symbols(**slot, map);
}

}  // namespace polaris
