#include "machine/machine.h"

namespace polaris {

std::uint64_t schedule_doall(const std::vector<std::uint64_t>& iter_costs,
                             const MachineConfig& config,
                             std::size_t reduction_elements,
                             std::size_t lastvalue_vars,
                             std::uint64_t reduction_updates) {
  p_assert(config.processors >= 1);
  const std::size_t n = iter_costs.size();
  const std::size_t p = static_cast<std::size_t>(config.processors);

  std::uint64_t slowest = 0;
  if (config.scheduling == MachineConfig::Scheduling::Static) {
    // Static block distribution: processor k takes a contiguous chunk.
    const std::size_t base = n / p;
    const std::size_t extra = n % p;
    std::size_t start = 0;
    for (std::size_t k = 0; k < p && start < n; ++k) {
      std::size_t count = base + (k < extra ? 1 : 0);
      std::uint64_t sum = 0;
      for (std::size_t i = start; i < start + count; ++i)
        sum += iter_costs[i];
      slowest = std::max(slowest, sum);
      start += count;
    }
  } else {
    // Dynamic self-scheduling: iterations issued in order to the earliest
    // idle processor, each grab paying the dispatch cost.
    std::vector<std::uint64_t> busy(p, 0);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t k = 0;
      for (std::size_t j = 1; j < p; ++j)
        if (busy[j] < busy[k]) k = j;
      busy[k] += iter_costs[i] + config.dynamic_dispatch_cost;
    }
    for (std::size_t j = 0; j < p; ++j) slowest = std::max(slowest, busy[j]);
  }

  // Reduction implementation cost per the selected scheme.
  std::uint64_t reduction_cost = 0;
  const std::uint64_t elems =
      static_cast<std::uint64_t>(reduction_elements);
  switch (config.reduction_scheme) {
    case Options::ReductionScheme::Blocked:
      // In-place synchronized updates: contention serializes a fraction
      // of every update; no merge phase.
      reduction_cost = reduction_updates * config.blocked_sync_cost;
      break;
    case Options::ReductionScheme::Private:
      // Per-processor private accumulators, merged once at the end.
      reduction_cost =
          elems * config.reduction_merge_per_elem * (p - 1) /
          std::max<std::uint64_t>(p, 1);
      break;
    case Options::ReductionScheme::Expanded:
      // Shared accumulators expanded by a processor dimension:
      // initialization sweep plus the merge sweep.
      reduction_cost =
          elems * config.reduction_merge_per_elem +
          elems * config.reduction_merge_per_elem * (p - 1) /
              std::max<std::uint64_t>(p, 1);
      break;
  }

  std::uint64_t active =
      std::min<std::uint64_t>(p, std::max<std::size_t>(n, 1));
  std::uint64_t overhead = config.fork_join_cost +
                           active * config.per_proc_dispatch +
                           reduction_cost +
                           static_cast<std::uint64_t>(lastvalue_vars) *
                               config.lastvalue_cost;
  return slowest + overhead;
}

}  // namespace polaris
