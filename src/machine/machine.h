// Simulated shared-memory multiprocessor.
//
// Substitution for the paper's 8-processor SGI Challenge (and the Alliant
// FX/80 of Figure 6): the interpreter measures per-iteration work in cost
// units; this model schedules DOALL iterations over p processors and
// charges the overheads that shape real speedup curves — fork/join,
// per-processor scheduling, reduction merging, and speculative-execution
// costs.  Deterministic by construction, so benchmark outputs are
// reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.h"
#include "support/options.h"

namespace polaris {

struct MachineConfig {
  int processors = 8;

  /// Iteration scheduling policy.  Static block scheduling is the default
  /// (contiguous chunks); Dynamic models self-scheduling — each idle
  /// processor grabs the next iteration, paying a dispatch cost per grab,
  /// which balances triangular/irregular loops at the price of overhead.
  enum class Scheduling { Static, Dynamic };
  Scheduling scheduling = Scheduling::Static;
  std::uint64_t dynamic_dispatch_cost = 8;  ///< per iteration grab (Dynamic)

  /// How reductions are implemented (paper Section 3.2 / [14]):
  ///   Blocked  — updates to the shared accumulator are synchronized in
  ///              place: no merge phase, but every iteration pays a
  ///              synchronization cost (contention-bound).
  ///   Private  — per-processor private accumulators merged after the
  ///              loop (the default; merge cost per element per processor).
  ///   Expanded — accumulators expanded by a processor dimension in shared
  ///              memory: initialization plus a merge sweep.
  Options::ReductionScheme reduction_scheme =
      Options::ReductionScheme::Private;
  std::uint64_t blocked_sync_cost = 6;  ///< per reduction update (Blocked)

  // Overheads, in the interpreter's cost units (one unit ~ one simple op).
  std::uint64_t fork_join_cost = 1500;       ///< per parallel loop instance
  std::uint64_t per_proc_dispatch = 120;     ///< per processor per instance
  std::uint64_t reduction_merge_per_elem = 6; ///< per element per processor
  std::uint64_t lastvalue_cost = 20;         ///< per last-value variable

  /// Per-iteration multiplier modeling back-end code quality: 1.0 is
  /// neutral.  The PFA baseline's aggressive restructuring is modeled as
  /// <1.0 on loops it helps and >1.0 on loops it hurts (see driver).
  double serial_efficiency = 1.0;
};

/// Static block scheduling: time for the slowest processor's share plus
/// fork/join and dispatch overheads.  `reduction_updates` is the number of
/// reduction-statement executions (used by the Blocked scheme).
std::uint64_t schedule_doall(const std::vector<std::uint64_t>& iter_costs,
                             const MachineConfig& config,
                             std::size_t reduction_elements = 0,
                             std::size_t lastvalue_vars = 0,
                             std::uint64_t reduction_updates = 0);

/// Work-time accounting for one program run.
struct RunClock {
  std::uint64_t serial = 0;    ///< time with 1 processor (pure sequential)
  std::uint64_t parallel = 0;  ///< modeled time on config.processors

  void add_sequential(std::uint64_t cost) {
    serial += cost;
    parallel += cost;
  }
  double speedup() const {
    return parallel == 0 ? 1.0
                         : static_cast<double>(serial) /
                               static_cast<double>(parallel);
  }
};

}  // namespace polaris
