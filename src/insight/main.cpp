// The `polaris-insight` command-line tool: the suite-wide regression
// sentinel over the compiler's observability artifacts.
//
//   polaris-insight aggregate DIR [-o FILE]
//       Fold DIR's per-code artifacts (<code>.report.json,
//       <code>.remarks.jsonl, <code>.trace.json, plus any
//       POLARIS_BENCH_JSON *.jsonl logs) into one polaris-suite-profile
//       v1 document (stdout, or FILE with -o).  Generate the artifacts
//       with `polaris -profile-dir=DIR`.
//
//   polaris-insight diff BASELINE CURRENT [-json=FILE]
//                   [-stat-warn-pct=N] [-duration-warn-pct=N]
//                   [-fuel-warn-pct=N]
//       Classify the deltas between two profiles.  Parallel→serial flips
//       and reason-class changes are hard failures (exit 1, each named by
//       (code, unit, loop, reason-code)); threshold-gated statistic /
//       duration / fuel drifts and loop-set changes are warnings (exit 0).
//       -json=FILE additionally writes the machine-readable verdict
//       (polaris-suite-profile-diff v1; `-` for stdout).  Exit 2 on
//       usage or I/O errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "insight/insight.h"
#include "support/assert.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: polaris-insight aggregate DIR [-o FILE]\n"
               "       polaris-insight diff BASELINE CURRENT [-json=FILE]\n"
               "           [-stat-warn-pct=N] [-duration-warn-pct=N]\n"
               "           [-fuel-warn-pct=N]\n");
  return 2;
}

/// Parses a threshold percentage: a number >= 0 (0 = warn on any drift).
double parse_pct(const char* flag, const std::string& value) {
  std::size_t pos = 0;
  double pct = 0.0;
  try {
    pct = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (value.empty() || pos != value.size() || pct < 0.0)
    throw polaris::UserError("invalid " + std::string(flag) + " value '" +
                             value + "' (expected a number >= 0)");
  return pct;
}

bool write_text(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::printf("%s\n", text.c_str());
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "polaris-insight: cannot write %s\n", path.c_str());
    return false;
  }
  out << text << "\n";
  return static_cast<bool>(out);
}

int cmd_aggregate(int argc, char** argv) {
  std::string dir, out_path = "-";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (dir.empty()) {
      dir = argv[i];
    } else {
      return usage();
    }
  }
  if (dir.empty()) return usage();
  const polaris::JsonValue profile =
      polaris::insight::aggregate_directory(dir);
  return write_text(out_path, profile.serialize()) ? 0 : 2;
}

int cmd_diff(int argc, char** argv) {
  std::string baseline_path, current_path, json_path;
  polaris::insight::DiffThresholds thresholds;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "-json=", 6) == 0) {
      json_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "-stat-warn-pct=", 15) == 0) {
      thresholds.stat_warn_pct = parse_pct("-stat-warn-pct", argv[i] + 15);
    } else if (std::strncmp(argv[i], "-duration-warn-pct=", 19) == 0) {
      thresholds.duration_warn_pct =
          parse_pct("-duration-warn-pct", argv[i] + 19);
    } else if (std::strncmp(argv[i], "-fuel-warn-pct=", 15) == 0) {
      thresholds.fuel_warn_pct = parse_pct("-fuel-warn-pct", argv[i] + 15);
    } else if (argv[i][0] == '-' && std::strlen(argv[i]) > 1) {
      return usage();
    } else if (baseline_path.empty()) {
      baseline_path = argv[i];
    } else if (current_path.empty()) {
      current_path = argv[i];
    } else {
      return usage();
    }
  }
  if (baseline_path.empty() || current_path.empty()) return usage();

  const polaris::JsonValue baseline =
      polaris::parse_json_file(baseline_path);
  const polaris::JsonValue current = polaris::parse_json_file(current_path);
  const polaris::insight::DiffResult result =
      polaris::insight::diff_profiles(baseline, current, thresholds);

  // The table goes to stdout unless the verdict JSON claims it.
  if (json_path == "-") {
    std::fprintf(stderr, "%s", result.table().c_str());
  } else {
    std::printf("%s", result.table().c_str());
  }
  if (!json_path.empty() &&
      !write_text(json_path, result.to_json().serialize()))
    return 2;
  return result.regressed() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "aggregate") == 0)
      return cmd_aggregate(argc - 2, argv + 2);
    if (std::strcmp(argv[1], "diff") == 0)
      return cmd_diff(argc - 2, argv + 2);
    return usage();
  } catch (const polaris::UserError& e) {
    std::fprintf(stderr, "polaris-insight: %s\n", e.what());
    return 2;
  }
}
