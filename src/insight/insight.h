// polaris-insight: suite-wide profile aggregation and baseline diffing.
//
// The observability layer (DESIGN.md §7) gives every compile
// machine-readable artifacts — `-report-json` compile reports, `-remarks`
// JSONL streams, `-trace` Chrome traces — and `polaris -profile-dir=DIR`
// drops the full per-code artifact set for the 16-code suite in one
// command.  This library turns that directory into a single
// `polaris-suite-profile` v1 JSON document (loop inventory with reason
// classes, reason-code histograms, per-(code, pass, unit) span rollups,
// statistic totals, degradation and fuel summaries, bench rows) and diffs
// two profiles into a classified verdict:
//
//   - hard failures: a loop flipping parallel→serial, or a reason code
//     changing *class* (e.g. dependence → interprocedural) — the silent
//     parallelization regressions the ROADMAP calls out;
//   - warnings: statistic / duration / fuel drifts beyond configurable
//     thresholds, loop-set and histogram changes;
//   - improvements: serial→parallel flips.
//
// Loop identity: profiles key loops as `do[N]` — the loop's ordinal
// within its (code, unit) in report order — not the compiler's `do#<id>`
// statement name.  Statement ids come from a process-global counter, so
// under `-profile-dir`'s worker pool the raw names depend on compile
// interleaving across codes; the ordinal is byte-deterministic on any
// machine at any `-jobs=N`.
#pragma once

#include <string>
#include <vector>

#include "support/json.h"

namespace polaris::insight {

/// `polaris-suite-profile` document version.
inline constexpr int kSuiteProfileSchemaVersion = 1;
/// `polaris-suite-profile-diff` verdict version.
inline constexpr int kDiffSchemaVersion = 1;

/// Maps a closed-set loop reason code ("carried-dependence", ...) to its
/// failure class ("dependence", "structural", "io", "interprocedural",
/// "transformed", "unanalyzed").  Codes outside the closed set map to
/// "unknown:<code>" — a distinct class, so an emitter growing a new code
/// surfaces as a hard reason-class change, never a silent pass.
std::string reason_class(const std::string& reason_code);

/// Accumulates per-code artifacts into one suite profile.  Feed it the
/// parsed artifacts (any subset per code; a report is the only required
/// piece) and call profile().  Codes may arrive in any order — the
/// profile is assembled in sorted code order.
class ProfileBuilder {
 public:
  /// Ingests one code's `-report-json` document (schema
  /// polaris-compile-report).  Throws UserError when the document is not
  /// a v-compatible compile report.
  void add_report(const std::string& code, const JsonValue& report);
  /// Ingests one code's `-remarks` JSONL stream (already line-parsed).
  void add_remarks(const std::string& code,
                   const std::vector<JsonValue>& remarks);
  /// Ingests one code's `-trace` Chrome trace document; only complete
  /// ("ph":"X") spans with cat=="pass" contribute to the rollup.
  void add_trace(const std::string& code, const JsonValue& trace);
  /// Ingests POLARIS_BENCH_JSON rows; lines whose schema is not
  /// "polaris-bench-row" are ignored (old hand-rolled logs).
  void add_bench_rows(const std::vector<JsonValue>& rows);

  /// Assembles the `polaris-suite-profile` v1 document.  Throws UserError
  /// when no reports were ingested.
  JsonValue profile() const;

 private:
  struct CodeData {
    std::string code;
    JsonValue report;
    std::vector<JsonValue> remarks;
    JsonValue trace;
    bool has_report = false;
    bool has_trace = false;
  };
  CodeData& slot(const std::string& code);
  std::vector<CodeData> codes_;      ///< insertion order; sorted at build
  std::vector<JsonValue> bench_rows_;
};

/// Scans `dir` for the `-profile-dir` artifact layout — per code
/// `<code>.report.json`, `<code>.remarks.jsonl`, `<code>.trace.json` —
/// plus any other `*.jsonl` file holding polaris-bench-row lines, and
/// builds the suite profile.  Throws UserError when the directory holds
/// no reports or an artifact fails to parse.
JsonValue aggregate_directory(const std::string& dir);

/// Warning thresholds for diff_profiles.  Regressions (parallel flips,
/// reason-class changes) are never threshold-gated.
struct DiffThresholds {
  /// Statistic counters drifting more than this percentage warn.
  double stat_warn_pct = 5.0;
  /// Duration rollups (pass_timings ms, pass_spans total_us) drifting
  /// more than this percentage AND more than an absolute floor (1 ms /
  /// 1000 µs) warn; wall-clock jitters below the floor stay silent.
  double duration_warn_pct = 50.0;
  /// Governor fuel_spent drifting more than this percentage warns.
  double fuel_warn_pct = 25.0;
};

/// One classified delta.  `code`/`unit`/`loop` are filled as far as the
/// finding is localized (a stat drift has no loop).
struct DiffFinding {
  std::string kind;    ///< "parallel-flip", "reason-class-change", ...
  std::string code;
  std::string unit;
  std::string loop;
  std::string detail;  ///< human-readable specifics, names the reason codes
};

struct DiffResult {
  std::vector<DiffFinding> regressions;
  std::vector<DiffFinding> warnings;
  std::vector<DiffFinding> improvements;
  /// True when the two profiles are identical after scrubbing wall-clock
  /// duration fields — the jobs=1 vs jobs=8 invariant.
  bool zero_delta = false;

  bool regressed() const { return !regressions.empty(); }
  /// {"schema":"polaris-suite-profile-diff","version":1,...} verdict.
  JsonValue to_json() const;
  /// Human-readable classification table (multi-line, trailing newline).
  std::string table() const;
};

/// Classifies the deltas from `baseline` to `current` (both
/// polaris-suite-profile documents; throws UserError on schema mismatch).
DiffResult diff_profiles(const JsonValue& baseline, const JsonValue& current,
                         const DiffThresholds& thresholds = {});

}  // namespace polaris::insight
