#include "insight/insight.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "support/assert.h"

namespace polaris::insight {

namespace {

double num_or(const JsonValue& obj, const std::string& key, double dflt = 0) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->number : dflt;
}

std::string str_or(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->string_value : std::string();
}

bool bool_or(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_bool() && v->bool_value;
}

/// "parallel" | "speculative" | "serial" for one profile loop entry.
std::string loop_state(const JsonValue& loop) {
  if (bool_or(loop, "parallel")) return "parallel";
  if (bool_or(loop, "speculative")) return "speculative";
  return "serial";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw UserError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Ordered histogram: counts keyed by string, emitted sorted by key.
using Histogram = std::map<std::string, std::uint64_t>;

JsonValue histogram_to_json(const Histogram& h, const char* key_name) {
  JsonValue arr = JsonValue::array();
  for (const auto& [key, count] : h) {
    JsonValue entry = JsonValue::object();
    entry.set(key_name, JsonValue::str(key));
    entry.set("count", JsonValue::num(count));
    arr.add(std::move(entry));
  }
  return arr;
}

Histogram histogram_from_json(const JsonValue* arr, const char* key_name) {
  Histogram h;
  if (arr == nullptr || !arr->is_array()) return h;
  for (const JsonValue& entry : arr->items)
    h[str_or(entry, key_name)] +=
        static_cast<std::uint64_t>(num_or(entry, "count"));
  return h;
}

/// Zeroes every wall-clock duration field so two profiles from identical
/// decisions compare equal: "ms" (pass timings), "total_us" (span
/// rollups), "speedup" and any "wall_ms*" (bench rows).
void scrub_durations(JsonValue& v) {
  if (v.is_object()) {
    for (auto& [key, member] : v.members) {
      if (member.is_number() &&
          (key == "ms" || key == "total_us" || key == "speedup" ||
           key.compare(0, 7, "wall_ms") == 0))
        member.number = 0.0;
      else
        scrub_durations(member);
    }
  } else if (v.is_array()) {
    for (JsonValue& item : v.items) scrub_durations(item);
  }
}

/// Percentage drift of `to` relative to `from` (against a floor of 1 so a
/// 0 → N appearance still registers).
double drift_pct(double from, double to) {
  const double base = std::max(std::abs(from), 1.0);
  return std::abs(to - from) / base * 100.0;
}

std::string fmt(double d) {
  std::ostringstream os;
  if (d == std::floor(d) && std::abs(d) < 9.0e15)
    os << static_cast<long long>(d);
  else
    os << d;
  return os.str();
}

}  // namespace

std::string reason_class(const std::string& reason_code) {
  // The closed set from DESIGN.md §7 (mirrored by the schema golden
  // test); each code belongs to exactly one failure class.
  if (reason_code == "empty-body" || reason_code == "irregular-control-flow")
    return "structural";
  if (reason_code == "loop-io") return "io";
  if (reason_code == "unresolved-call") return "interprocedural";
  if (reason_code == "scalar-recurrence" ||
      reason_code == "carried-dependence")
    return "dependence";
  if (reason_code == "strength-reduced") return "transformed";
  if (reason_code == "not-analyzed") return "unanalyzed";
  return "unknown:" + reason_code;
}

ProfileBuilder::CodeData& ProfileBuilder::slot(const std::string& code) {
  for (CodeData& cd : codes_)
    if (cd.code == code) return cd;
  codes_.push_back(CodeData{});
  codes_.back().code = code;
  return codes_.back();
}

void ProfileBuilder::add_report(const std::string& code,
                                const JsonValue& report) {
  if (str_or(report, "schema") != "polaris-compile-report")
    throw UserError("'" + code + "': not a polaris-compile-report document");
  CodeData& cd = slot(code);
  cd.report = report;
  cd.has_report = true;
}

void ProfileBuilder::add_remarks(const std::string& code,
                                 const std::vector<JsonValue>& remarks) {
  CodeData& cd = slot(code);
  cd.remarks.insert(cd.remarks.end(), remarks.begin(), remarks.end());
}

void ProfileBuilder::add_trace(const std::string& code,
                               const JsonValue& trace) {
  CodeData& cd = slot(code);
  cd.trace = trace;
  cd.has_trace = true;
}

void ProfileBuilder::add_bench_rows(const std::vector<JsonValue>& rows) {
  for (const JsonValue& row : rows)
    if (str_or(row, "schema") == "polaris-bench-row")
      bench_rows_.push_back(row);
}

JsonValue ProfileBuilder::profile() const {
  std::vector<const CodeData*> codes;
  for (const CodeData& cd : codes_) codes.push_back(&cd);
  std::sort(codes.begin(), codes.end(),
            [](const CodeData* a, const CodeData* b) {
              return a->code < b->code;
            });
  if (codes.empty())
    throw UserError("no compile reports ingested — nothing to profile");
  for (const CodeData* cd : codes)
    if (!cd->has_report)
      throw UserError("code '" + cd->code +
                      "' has remarks/trace artifacts but no report.json");

  JsonValue doc = JsonValue::object();
  doc.set("schema", JsonValue::str("polaris-suite-profile"));
  doc.set("version", JsonValue::num(kSuiteProfileSchemaVersion));

  JsonValue code_names = JsonValue::array();
  for (const CodeData* cd : codes) code_names.add(JsonValue::str(cd->code));
  doc.set("codes", std::move(code_names));

  // --- loop inventory + reason histogram ---------------------------------
  std::uint64_t n_loops = 0, n_parallel = 0, n_speculative = 0;
  Histogram reasons;
  JsonValue loops = JsonValue::array();
  for (const CodeData* cd : codes) {
    const JsonValue* rloops = cd->report.find("loops");
    if (rloops == nullptr || !rloops->is_array()) continue;
    // Stable per-(code, unit) ordinal; see the header on why the raw
    // `do#<id>` statement name cannot be the key.
    Histogram unit_ordinal;
    for (const JsonValue& rl : rloops->items) {
      const std::string unit = str_or(rl, "unit");
      const std::uint64_t ordinal = unit_ordinal[unit]++;
      JsonValue entry = JsonValue::object();
      entry.set("code", JsonValue::str(cd->code));
      entry.set("unit", JsonValue::str(unit));
      entry.set("loop",
                JsonValue::str("do[" + std::to_string(ordinal) + "]"));
      entry.set("depth", JsonValue::num(num_or(rl, "depth")));
      const bool parallel = bool_or(rl, "parallel");
      const bool speculative = bool_or(rl, "speculative");
      entry.set("parallel", JsonValue::boolean(parallel));
      entry.set("speculative", JsonValue::boolean(speculative));
      const std::string code = str_or(rl, "reason_code");
      entry.set("reason_code", JsonValue::str(code));
      entry.set("reason_class",
                JsonValue::str(code.empty() ? "" : reason_class(code)));
      loops.add(std::move(entry));
      ++n_loops;
      if (parallel) ++n_parallel;
      else if (speculative) ++n_speculative;
      if (!code.empty()) ++reasons[code];
    }
  }

  JsonValue summary = JsonValue::object();
  summary.set("codes", JsonValue::num(static_cast<std::uint64_t>(
                           codes.size())));
  summary.set("loops", JsonValue::num(n_loops));
  summary.set("parallel", JsonValue::num(n_parallel));
  summary.set("speculative", JsonValue::num(n_speculative));
  summary.set("serial",
              JsonValue::num(n_loops - n_parallel - n_speculative));
  doc.set("summary", std::move(summary));
  doc.set("loops", std::move(loops));

  JsonValue reason_hist = JsonValue::array();
  for (const auto& [code, count] : reasons) {
    JsonValue entry = JsonValue::object();
    entry.set("reason_code", JsonValue::str(code));
    entry.set("class", JsonValue::str(reason_class(code)));
    entry.set("count", JsonValue::num(count));
    reason_hist.add(std::move(entry));
  }
  doc.set("reason_histogram", std::move(reason_hist));

  // --- statistic totals ---------------------------------------------------
  std::map<std::pair<std::string, std::string>, double> stat_totals;
  for (const CodeData* cd : codes) {
    const JsonValue* stats = cd->report.find("stats");
    if (stats == nullptr || !stats->is_array()) continue;
    for (const JsonValue& s : stats->items)
      stat_totals[{str_or(s, "component"), str_or(s, "name")}] +=
          num_or(s, "value");
  }
  JsonValue stats = JsonValue::array();
  for (const auto& [key, value] : stat_totals) {
    JsonValue entry = JsonValue::object();
    entry.set("component", JsonValue::str(key.first));
    entry.set("name", JsonValue::str(key.second));
    entry.set("value", JsonValue::num(value));
    stats.add(std::move(entry));
  }
  doc.set("stats", std::move(stats));

  // --- pass timing totals (first-seen pipeline order) ---------------------
  struct TimingTotal {
    std::string pass;
    double runs = 0, ms = 0, failures = 0;
  };
  std::vector<TimingTotal> timing_totals;
  for (const CodeData* cd : codes) {
    const JsonValue* timings = cd->report.find("pass_timings");
    if (timings == nullptr || !timings->is_array()) continue;
    for (const JsonValue& t : timings->items) {
      const std::string pass = str_or(t, "pass");
      auto it = std::find_if(timing_totals.begin(), timing_totals.end(),
                             [&](const TimingTotal& tt) {
                               return tt.pass == pass;
                             });
      if (it == timing_totals.end()) {
        timing_totals.push_back(TimingTotal{pass, 0, 0, 0});
        it = std::prev(timing_totals.end());
      }
      it->runs += num_or(t, "runs");
      it->ms += num_or(t, "ms");
      it->failures += num_or(t, "failures");
    }
  }
  JsonValue timings = JsonValue::array();
  for (const TimingTotal& tt : timing_totals) {
    JsonValue entry = JsonValue::object();
    entry.set("pass", JsonValue::str(tt.pass));
    entry.set("runs", JsonValue::num(tt.runs));
    entry.set("ms", JsonValue::num(tt.ms));
    entry.set("failures", JsonValue::num(tt.failures));
    timings.add(std::move(entry));
  }
  doc.set("pass_timings", std::move(timings));

  // --- trace span rollups per (code, pass, unit) --------------------------
  JsonValue spans = JsonValue::array();
  for (const CodeData* cd : codes) {
    if (!cd->has_trace) continue;
    const JsonValue* events = cd->trace.find("traceEvents");
    if (events == nullptr || !events->is_array()) continue;
    struct SpanTotal {
      std::string pass, unit;
      std::uint64_t count = 0;
      double total_us = 0;
    };
    std::vector<SpanTotal> totals;  // first-seen trace order
    for (const JsonValue& ev : events->items) {
      if (str_or(ev, "cat") != "pass" || str_or(ev, "ph") != "X") continue;
      const std::string pass = str_or(ev, "name");
      std::string unit;
      if (const JsonValue* args = ev.find("args")) unit = str_or(*args, "unit");
      auto it = std::find_if(totals.begin(), totals.end(),
                             [&](const SpanTotal& st) {
                               return st.pass == pass && st.unit == unit;
                             });
      if (it == totals.end()) {
        totals.push_back(SpanTotal{pass, unit, 0, 0});
        it = std::prev(totals.end());
      }
      ++it->count;
      it->total_us += num_or(ev, "dur");
    }
    for (const SpanTotal& st : totals) {
      JsonValue entry = JsonValue::object();
      entry.set("code", JsonValue::str(cd->code));
      entry.set("pass", JsonValue::str(st.pass));
      entry.set("unit", JsonValue::str(st.unit));
      entry.set("spans", JsonValue::num(st.count));
      entry.set("total_us", JsonValue::num(st.total_us));
      spans.add(std::move(entry));
    }
  }
  doc.set("pass_spans", std::move(spans));

  // --- remark histograms --------------------------------------------------
  std::uint64_t remark_total = 0;
  Histogram by_kind, by_reason;
  for (const CodeData* cd : codes) {
    for (const JsonValue& r : cd->remarks) {
      ++remark_total;
      ++by_kind[str_or(r, "kind")];
      ++by_reason[str_or(r, "reason")];
    }
  }
  JsonValue remarks = JsonValue::object();
  remarks.set("total", JsonValue::num(remark_total));
  remarks.set("by_kind", histogram_to_json(by_kind, "kind"));
  remarks.set("by_reason", histogram_to_json(by_reason, "reason"));
  doc.set("remarks", std::move(remarks));

  // --- degradation summary ------------------------------------------------
  std::uint64_t deg_events = 0, deg_occurrences = 0;
  Histogram by_action, by_trigger;
  for (const CodeData* cd : codes) {
    const JsonValue* degs = cd->report.find("degradations");
    if (degs == nullptr || !degs->is_array()) continue;
    for (const JsonValue& d : degs->items) {
      ++deg_events;
      const std::uint64_t count =
          static_cast<std::uint64_t>(num_or(d, "count", 1));
      deg_occurrences += count;
      ++by_action[str_or(d, "action")];
      by_trigger[str_or(d, "trigger")] += count;
    }
  }
  JsonValue degradations = JsonValue::object();
  degradations.set("events", JsonValue::num(deg_events));
  degradations.set("occurrences", JsonValue::num(deg_occurrences));
  degradations.set("by_action", histogram_to_json(by_action, "action"));
  degradations.set("by_trigger", histogram_to_json(by_trigger, "trigger"));
  doc.set("degradations", std::move(degradations));

  // --- governor fuel ------------------------------------------------------
  double fuel_limit = 0, fuel_spent = 0;
  Histogram trips;
  JsonValue fuel_by_code = JsonValue::array();
  for (const CodeData* cd : codes) {
    const JsonValue* res = cd->report.find("resource");
    if (res == nullptr || !res->is_object()) continue;
    fuel_limit = std::max(fuel_limit, num_or(*res, "fuel_limit"));
    const double spent = num_or(*res, "fuel_spent");
    fuel_spent += spent;
    if (const JsonValue* t = res->find("trips"); t != nullptr && t->is_object())
      for (const auto& [key, v] : t->members)
        if (v.is_number())
          trips[key] += static_cast<std::uint64_t>(v.number);
    JsonValue entry = JsonValue::object();
    entry.set("code", JsonValue::str(cd->code));
    entry.set("fuel_spent", JsonValue::num(spent));
    fuel_by_code.add(std::move(entry));
  }
  JsonValue resource = JsonValue::object();
  resource.set("fuel_limit", JsonValue::num(fuel_limit));
  resource.set("fuel_spent", JsonValue::num(fuel_spent));
  resource.set("fuel_by_code", std::move(fuel_by_code));
  resource.set("trips", histogram_to_json(trips, "trigger"));
  doc.set("resource", std::move(resource));

  // --- bench rows ---------------------------------------------------------
  JsonValue bench = JsonValue::array();
  for (const JsonValue& row : bench_rows_) bench.add(row);
  doc.set("bench", std::move(bench));

  return doc;
}

JsonValue aggregate_directory(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec))
    throw UserError("'" + dir + "' is not a directory");
  std::vector<std::string> names;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());

  ProfileBuilder builder;
  bool any_report = false;
  for (const std::string& name : names) {
    const std::string path = (fs::path(dir) / name).string();
    if (ends_with(name, ".report.json")) {
      builder.add_report(name.substr(0, name.size() - 12),
                         parse_json_file(path));
      any_report = true;
    } else if (ends_with(name, ".remarks.jsonl")) {
      try {
        builder.add_remarks(name.substr(0, name.size() - 14),
                            parse_jsonl(read_file(path)));
      } catch (const UserError& e) {
        throw UserError(path + ": " + e.what());
      }
    } else if (ends_with(name, ".trace.json")) {
      builder.add_trace(name.substr(0, name.size() - 11),
                        parse_json_file(path));
    } else if (ends_with(name, ".jsonl")) {
      // Anything else JSONL-shaped is treated as a POLARIS_BENCH_JSON
      // log; non-bench-row lines are skipped inside add_bench_rows.
      try {
        builder.add_bench_rows(parse_jsonl(read_file(path)));
      } catch (const UserError& e) {
        throw UserError(path + ": " + e.what());
      }
    }
  }
  if (!any_report)
    throw UserError("no *.report.json artifacts found in '" + dir +
                    "' (generate them with polaris -profile-dir=" + dir +
                    ")");
  return builder.profile();
}

namespace {

void check_profile_schema(const JsonValue& p, const char* which) {
  if (str_or(p, "schema") != "polaris-suite-profile")
    throw UserError(std::string(which) +
                    " is not a polaris-suite-profile document");
  if (static_cast<int>(num_or(p, "version")) != kSuiteProfileSchemaVersion)
    throw UserError(std::string(which) + " has unsupported profile version " +
                    fmt(num_or(p, "version")));
}

/// (code, unit, loop) → loop entry index over a profile's loops array.
std::map<std::string, const JsonValue*> index_loops(const JsonValue& profile) {
  std::map<std::string, const JsonValue*> out;
  const JsonValue* loops = profile.find("loops");
  if (loops == nullptr || !loops->is_array()) return out;
  for (const JsonValue& l : loops->items)
    out[str_or(l, "code") + "\x1f" + str_or(l, "unit") + "\x1f" +
        str_or(l, "loop")] = &l;
  return out;
}

std::map<std::string, double> index_stats(const JsonValue& profile) {
  std::map<std::string, double> out;
  const JsonValue* stats = profile.find("stats");
  if (stats == nullptr || !stats->is_array()) return out;
  for (const JsonValue& s : stats->items)
    out[str_or(s, "component") + "." + str_or(s, "name")] = num_or(s, "value");
  return out;
}

DiffFinding finding(std::string kind, const JsonValue* loop,
                    std::string detail) {
  DiffFinding f;
  f.kind = std::move(kind);
  if (loop != nullptr) {
    f.code = str_or(*loop, "code");
    f.unit = str_or(*loop, "unit");
    f.loop = str_or(*loop, "loop");
  }
  f.detail = std::move(detail);
  return f;
}

void diff_histograms(const Histogram& base, const Histogram& cur,
                     const char* kind, const char* what,
                     std::vector<DiffFinding>* warnings) {
  Histogram keys = base;
  for (const auto& [k, v] : cur) keys.emplace(k, 0);
  for (const auto& [key, unused] : keys) {
    const std::uint64_t b = base.count(key) ? base.at(key) : 0;
    const std::uint64_t c = cur.count(key) ? cur.at(key) : 0;
    if (b == c) continue;
    DiffFinding f;
    f.kind = kind;
    f.detail = std::string(what) + " '" + key + "': " + std::to_string(b) +
               " -> " + std::to_string(c);
    warnings->push_back(std::move(f));
  }
}

}  // namespace

DiffResult diff_profiles(const JsonValue& baseline, const JsonValue& current,
                         const DiffThresholds& thresholds) {
  check_profile_schema(baseline, "baseline");
  check_profile_schema(current, "current");

  DiffResult result;

  {
    JsonValue b = baseline, c = current;
    scrub_durations(b);
    scrub_durations(c);
    result.zero_delta = b.serialize() == c.serialize();
  }

  // --- loops --------------------------------------------------------------
  const auto base_loops = index_loops(baseline);
  const auto cur_loops = index_loops(current);
  for (const auto& [key, bl] : base_loops) {
    auto it = cur_loops.find(key);
    if (it == cur_loops.end()) {
      result.warnings.push_back(
          finding("loop-missing", bl, "loop disappeared from the profile"));
      continue;
    }
    const JsonValue* cl = it->second;
    const std::string bs = loop_state(*bl), cs = loop_state(*cl);
    const std::string bcode = str_or(*bl, "reason_code");
    const std::string ccode = str_or(*cl, "reason_code");
    if (bs != "serial" && cs == "serial") {
      result.regressions.push_back(finding(
          "parallel-flip", bl,
          bs + " -> serial, reason-code '" + ccode + "' (class " +
              reason_class(ccode) + ")"));
    } else if (bs == "parallel" && cs == "speculative") {
      result.warnings.push_back(
          finding("speculation-downgrade", bl,
                  "parallel -> speculative execution"));
    } else if (bs != "parallel" && cs == "parallel") {
      result.improvements.push_back(
          finding("parallelized", bl, bs + " -> parallel"));
    } else if (bs == "serial" && cs == "speculative") {
      result.improvements.push_back(
          finding("parallelized", bl, "serial -> speculative"));
    } else if (bs == "serial" && cs == "serial" && bcode != ccode) {
      const std::string bclass = str_or(*bl, "reason_class");
      const std::string cclass = str_or(*cl, "reason_class");
      if (bclass != cclass) {
        result.regressions.push_back(finding(
            "reason-class-change", bl,
            "'" + bcode + "' (" + bclass + ") -> '" + ccode + "' (" +
                cclass + ")"));
      } else {
        result.warnings.push_back(finding(
            "reason-code-change", bl,
            "'" + bcode + "' -> '" + ccode + "' (same class " + bclass +
                ")"));
      }
    }
  }
  for (const auto& [key, cl] : cur_loops)
    if (base_loops.find(key) == base_loops.end())
      result.warnings.push_back(
          finding("loop-new", cl, "loop not present in the baseline"));

  // --- code set -----------------------------------------------------------
  {
    auto code_set = [](const JsonValue& p) {
      Histogram out;
      const JsonValue* codes = p.find("codes");
      if (codes != nullptr && codes->is_array())
        for (const JsonValue& c : codes->items)
          if (c.is_string()) out[c.string_value] = 1;
      return out;
    };
    diff_histograms(code_set(baseline), code_set(current), "code-set-change",
                    "code", &result.warnings);
  }

  // --- statistics ---------------------------------------------------------
  {
    const auto bstats = index_stats(baseline);
    const auto cstats = index_stats(current);
    std::map<std::string, double> keys = bstats;
    keys.insert(cstats.begin(), cstats.end());
    for (const auto& [key, unused] : keys) {
      const double b = bstats.count(key) ? bstats.at(key) : 0;
      const double c = cstats.count(key) ? cstats.at(key) : 0;
      if (b == c) continue;
      if (drift_pct(b, c) <= thresholds.stat_warn_pct) continue;
      DiffFinding f;
      f.kind = "stat-drift";
      f.detail = key + ": " + fmt(b) + " -> " + fmt(c);
      result.warnings.push_back(std::move(f));
    }
  }

  // --- pass timings (summed ms; wall-clock, so floor-gated) ---------------
  {
    auto index_timings = [](const JsonValue& p) {
      std::map<std::string, std::pair<double, double>> out;  // ms, failures
      const JsonValue* t = p.find("pass_timings");
      if (t != nullptr && t->is_array())
        for (const JsonValue& e : t->items)
          out[str_or(e, "pass")] = {num_or(e, "ms"), num_or(e, "failures")};
      return out;
    };
    const auto bt = index_timings(baseline);
    const auto ct = index_timings(current);
    for (const auto& [pass, bv] : bt) {
      auto it = ct.find(pass);
      if (it == ct.end()) continue;  // pass-set change shows via loops/stats
      if (bv.second != it->second.second) {
        DiffFinding f;
        f.kind = "pass-failures-changed";
        f.detail = "pass '" + pass + "' failures: " + fmt(bv.second) +
                   " -> " + fmt(it->second.second);
        result.warnings.push_back(std::move(f));
      }
      const double bms = bv.first, cms = it->second.first;
      if (drift_pct(bms, cms) > thresholds.duration_warn_pct &&
          std::abs(cms - bms) > 1.0) {
        DiffFinding f;
        f.kind = "duration-drift";
        f.detail = "pass '" + pass + "' total ms: " + fmt(bms) + " -> " +
                   fmt(cms);
        result.warnings.push_back(std::move(f));
      }
    }
  }

  // --- span rollups -------------------------------------------------------
  {
    auto index_spans = [](const JsonValue& p) {
      std::map<std::string, double> out;
      const JsonValue* spans = p.find("pass_spans");
      if (spans != nullptr && spans->is_array())
        for (const JsonValue& s : spans->items)
          out[str_or(s, "code") + "/" + str_or(s, "pass") + "/" +
              str_or(s, "unit")] = num_or(s, "total_us");
      return out;
    };
    const auto bs = index_spans(baseline);
    const auto cs = index_spans(current);
    for (const auto& [key, bus] : bs) {
      auto it = cs.find(key);
      if (it == cs.end()) continue;
      if (drift_pct(bus, it->second) > thresholds.duration_warn_pct &&
          std::abs(it->second - bus) > 1000.0) {
        DiffFinding f;
        f.kind = "duration-drift";
        f.detail = "span " + key + " total us: " + fmt(bus) + " -> " +
                   fmt(it->second);
        result.warnings.push_back(std::move(f));
      }
    }
  }

  // --- remark + degradation histograms ------------------------------------
  {
    auto sub = [](const JsonValue& p, const char* outer, const char* inner) {
      const JsonValue* o = p.find(outer);
      return o != nullptr ? o->find(inner) : nullptr;
    };
    diff_histograms(
        histogram_from_json(sub(baseline, "remarks", "by_reason"), "reason"),
        histogram_from_json(sub(current, "remarks", "by_reason"), "reason"),
        "remark-drift", "remark reason", &result.warnings);
    diff_histograms(
        histogram_from_json(sub(baseline, "degradations", "by_trigger"),
                            "trigger"),
        histogram_from_json(sub(current, "degradations", "by_trigger"),
                            "trigger"),
        "degradation-drift", "degradation trigger", &result.warnings);
    diff_histograms(
        histogram_from_json(sub(baseline, "degradations", "by_action"),
                            "action"),
        histogram_from_json(sub(current, "degradations", "by_action"),
                            "action"),
        "degradation-drift", "degradation action", &result.warnings);
  }

  // --- governor fuel ------------------------------------------------------
  {
    const JsonValue* br = baseline.find("resource");
    const JsonValue* cr = current.find("resource");
    const double bf = br != nullptr ? num_or(*br, "fuel_spent") : 0;
    const double cf = cr != nullptr ? num_or(*cr, "fuel_spent") : 0;
    if (bf != cf && drift_pct(bf, cf) > thresholds.fuel_warn_pct) {
      DiffFinding f;
      f.kind = "fuel-drift";
      f.detail = "suite fuel_spent: " + fmt(bf) + " -> " + fmt(cf);
      result.warnings.push_back(std::move(f));
    }
    diff_histograms(
        histogram_from_json(br != nullptr ? br->find("trips") : nullptr,
                            "trigger"),
        histogram_from_json(cr != nullptr ? cr->find("trips") : nullptr,
                            "trigger"),
        "trips-drift", "ceiling trips", &result.warnings);
  }

  return result;
}

JsonValue DiffResult::to_json() const {
  auto findings_json = [](const std::vector<DiffFinding>& fs) {
    JsonValue arr = JsonValue::array();
    for (const DiffFinding& f : fs) {
      JsonValue entry = JsonValue::object();
      entry.set("kind", JsonValue::str(f.kind));
      entry.set("code", JsonValue::str(f.code));
      entry.set("unit", JsonValue::str(f.unit));
      entry.set("loop", JsonValue::str(f.loop));
      entry.set("detail", JsonValue::str(f.detail));
      arr.add(std::move(entry));
    }
    return arr;
  };
  JsonValue doc = JsonValue::object();
  doc.set("schema", JsonValue::str("polaris-suite-profile-diff"));
  doc.set("version", JsonValue::num(kDiffSchemaVersion));
  doc.set("verdict", JsonValue::str(regressed()
                                        ? "regression"
                                        : warnings.empty() ? "clean"
                                                           : "warnings"));
  doc.set("zero_delta", JsonValue::boolean(zero_delta));
  doc.set("regressions", findings_json(regressions));
  doc.set("warnings", findings_json(warnings));
  doc.set("improvements", findings_json(improvements));
  return doc;
}

std::string DiffResult::table() const {
  std::ostringstream os;
  auto section = [&os](const char* title,
                       const std::vector<DiffFinding>& fs) {
    os << title << " (" << fs.size() << ")\n";
    for (const DiffFinding& f : fs) {
      os << "  [" << f.kind << "]";
      if (!f.code.empty()) {
        os << " " << f.code;
        if (!f.unit.empty()) os << "/" << f.unit;
        if (!f.loop.empty()) os << " " << f.loop;
      }
      os << ": " << f.detail << "\n";
    }
  };
  section("regressions", regressions);
  section("warnings", warnings);
  section("improvements", improvements);
  os << "verdict: "
     << (regressed() ? "REGRESSION" : warnings.empty() ? "CLEAN" : "WARNINGS")
     << (zero_delta ? " (zero-delta)" : "") << "\n";
  return os.str();
}

}  // namespace polaris::insight
