#include "runtime/pdtest.h"

#include <cmath>

namespace polaris {

ShadowArrays::ShadowArrays(std::size_t elements)
    : n_(elements),
      a_w_(elements, false),
      a_r_(elements, false),
      a_np_(elements, false),
      iter_state_(elements, IterState::None) {}

void ShadowArrays::begin_iteration() {
  p_assert_msg(!in_iteration_, "nested begin_iteration");
  in_iteration_ = true;
}

void ShadowArrays::record_read(std::size_t index) {
  p_assert(in_iteration_);
  p_assert_msg(index < n_, "shadow index out of range");
  ++accesses_;
  if (iter_state_[index] == IterState::None) {
    iter_state_[index] = IterState::ReadFirst;
    touched_.push_back(index);
  }
}

void ShadowArrays::record_write(std::size_t index) {
  p_assert(in_iteration_);
  p_assert_msg(index < n_, "shadow index out of range");
  ++accesses_;
  switch (iter_state_[index]) {
    case IterState::None:
      iter_state_[index] = IterState::Written;
      touched_.push_back(index);
      ++w_count_;
      if (!a_w_[index]) {
        a_w_[index] = true;
        ++m_count_;
      }
      break;
    case IterState::ReadFirst:
      iter_state_[index] = IterState::ReadThenWritten;
      ++w_count_;
      if (!a_w_[index]) {
        a_w_[index] = true;
        ++m_count_;
      }
      break;
    case IterState::Written:
    case IterState::ReadThenWritten:
      break;  // only the first write of an iteration marks
  }
}

void ShadowArrays::end_iteration() {
  p_assert(in_iteration_);
  for (std::size_t index : touched_) {
    switch (iter_state_[index]) {
      case IterState::ReadFirst:
        a_r_[index] = true;
        break;
      case IterState::ReadThenWritten:
        a_np_[index] = true;
        break;
      case IterState::Written:
        break;
      case IterState::None:
        p_unreachable("touched element with no state");
    }
    iter_state_[index] = IterState::None;
  }
  touched_.clear();
  in_iteration_ = false;
}

PdVerdict ShadowArrays::analyze() const {
  p_assert_msg(!in_iteration_, "analyze during an open iteration");
  PdVerdict v;
  for (std::size_t i = 0; i < n_; ++i) {
    if (a_w_[i] && a_r_[i]) v.flow_anti = true;
    if (a_w_[i] && a_np_[i]) v.not_privatizable = true;
  }
  v.output_deps = (w_count_ != m_count_);
  return v;
}

std::uint64_t ShadowArrays::cost(int processors) const {
  p_assert(processors >= 1);
  const std::uint64_t mark_cost = 2;   // per access marking
  const std::uint64_t merge_cost = 4;  // per element per merge stage
  std::uint64_t per_proc = accesses_ * mark_cost /
                           static_cast<std::uint64_t>(processors);
  std::uint64_t stages = 0;
  for (int p = 1; p < processors; p *= 2) ++stages;
  std::uint64_t merge =
      stages * merge_cost *
      (n_ / static_cast<std::uint64_t>(processors) + 1);
  return per_proc + merge;
}

}  // namespace polaris
