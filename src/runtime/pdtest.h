// The Privatizing DOALL (PD) test — run-time dependence detection
// (paper Section 3.5; Rauchwerger & Padua [15, 16]).
//
// During speculative parallel execution of a loop, every access to an
// array under test marks shadow arrays:
//   A_w  — marked on the first write to an element in an iteration
//   A_r  — marked for elements read but never written during an iteration
//   A_np — marked for elements read before being written in an iteration
//          (such an element cannot be privatized)
// plus the counters w_A (total first-writes across iterations) and m_A
// (distinct marked cells of A_w).  After the loop:
//   any(A_w & A_r)            => flow/anti dependence (fatal)
//   w_A != m_A                => output dependence (fatal unless privatized)
//   any(A_w & A_np)           => privatization invalid
// The test itself is fully parallel with time O(a/p + log p).
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.h"

namespace polaris {

struct PdVerdict {
  bool flow_anti = false;      ///< any(A_w & A_r)
  bool output_deps = false;    ///< w_A != m_A
  bool not_privatizable = false;  ///< any(A_w & A_np)

  /// Fully parallel as-is (shared array)?
  bool parallel_shared() const { return !flow_anti && !output_deps; }
  /// Fully parallel with the array privatized per iteration?
  bool parallel_privatized() const { return !flow_anti && !not_privatizable; }
  /// The combined PD outcome: parallel either way.
  bool pass() const { return parallel_shared() || parallel_privatized(); }
};

/// Shadow arrays for one array under test.
class ShadowArrays {
 public:
  explicit ShadowArrays(std::size_t elements);

  /// Iteration protocol: begin, record accesses in program order, end.
  void begin_iteration();
  void record_read(std::size_t index);
  void record_write(std::size_t index);
  void end_iteration();

  PdVerdict analyze() const;

  std::uint64_t total_accesses() const { return accesses_; }
  std::uint64_t write_count() const { return w_count_; }
  std::uint64_t mark_count() const { return m_count_; }

  /// Modeled cost of marking plus the parallel post-analysis on p
  /// processors: O(a/p + log p) per the paper.
  std::uint64_t cost(int processors) const;

 private:
  enum class IterState : std::uint8_t {
    None,
    ReadFirst,          // read, no write yet this iteration
    Written,            // first access was a write
    ReadThenWritten,    // read before write this iteration
  };

  std::size_t n_;
  std::vector<bool> a_w_, a_r_, a_np_;
  std::vector<IterState> iter_state_;
  std::vector<std::size_t> touched_;  // indices dirtied this iteration
  bool in_iteration_ = false;
  std::uint64_t w_count_ = 0;
  std::uint64_t m_count_ = 0;
  std::uint64_t accesses_ = 0;
};

}  // namespace polaris
