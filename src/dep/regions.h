// Array-region helpers shared by privatization and dependence analysis:
// the interval of one subscript dimension as the loops between an access
// and an enclosing loop sweep their ranges.
#pragma once

#include <optional>

#include "ir/program.h"
#include "symbolic/compare.h"

namespace polaris {

/// A closed symbolic interval [lo, hi].
struct Interval {
  Polynomial lo;
  Polynomial hi;
};

/// Builds a FactContext with the bounds of every loop enclosing `s`
/// (outer loops included), ranked innermost-first for elimination, plus
/// the guard conditions of enclosing IF arms (range propagation "from the
/// program's control flow", paper Section 3.3.1).
FactContext loop_fact_context(Statement* s);

/// Adds facts derived from the conditions of the IF arms enclosing `s`:
/// a statement in the taken arm of `if (a .ge. b)` contributes a - b >= 0,
/// conjunctions are split, strict integer comparisons are tightened by 1.
/// (ELSE arms contribute nothing — negations are not synthesized.)
void add_guard_facts(FactContext& ctx, Statement* s);

/// Adds one loop's bound facts (index range + non-empty trip assumption)
/// to `ctx` with the given elimination rank.  No-op for non-constant
/// steps.
void add_loop_facts(FactContext& ctx, DoStmt* loop, int rank);

/// The interval of subscript dimension `dim` of `ref` at `stmt` as every
/// loop strictly inside `within` (and enclosing `stmt`) sweeps its range;
/// `within`'s own index and outer indices stay symbolic.  nullopt when a
/// bound is non-constant-step, monotonicity fails, or the result still
/// depends on a swept index through an opaque atom.
std::optional<Interval> access_interval(const ArrayRef& ref, int dim,
                                        Statement* stmt, DoStmt* within,
                                        const FactContext& ctx);

/// Proves interval containment inner ⊆ outer under `ctx`.
bool interval_contains(const Interval& outer, const Interval& inner,
                       const FactContext& ctx);

}  // namespace polaris
