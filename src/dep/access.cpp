#include "dep/access.h"

#include <algorithm>

namespace polaris {

namespace {

void collect_reads(const Expression& e, Statement* stmt,
                   SymbolMap<std::vector<ArrayAccess>>& out) {
  walk(e, [&](const Expression& node) {
    if (node.kind() == ExprKind::ArrayRef) {
      const auto& a = static_cast<const ArrayRef&>(node);
      out[a.symbol()].push_back({&a, stmt, /*is_write=*/false});
    }
  });
}

}  // namespace

SymbolMap<std::vector<ArrayAccess>> collect_array_accesses(
    DoStmt* loop) {
  SymbolMap<std::vector<ArrayAccess>> out;
  for (Statement* s = loop->next(); s != loop->follow(); s = s->next()) {
    p_assert(s != nullptr);
    if (s->kind() == StmtKind::Assign) {
      auto* a = static_cast<AssignStmt*>(s);
      if (a->lhs().kind() == ExprKind::ArrayRef) {
        const auto& lhs = static_cast<const ArrayRef&>(a->lhs());
        out[lhs.symbol()].push_back({&lhs, s, /*is_write=*/true});
        for (const auto& sub : lhs.subscripts()) collect_reads(*sub, s, out);
      }
      collect_reads(a->rhs(), s, out);
    } else {
      for (const Expression* e : s->expressions()) collect_reads(*e, s, out);
    }
  }
  return out;
}

std::vector<Symbol*> scalars_assigned(DoStmt* loop) {
  std::vector<Symbol*> out;
  auto add = [&](Symbol* s) {
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  };
  for (Statement* s = loop->next(); s != loop->follow(); s = s->next()) {
    p_assert(s != nullptr);
    if (s->kind() == StmtKind::Assign) {
      auto* a = static_cast<AssignStmt*>(s);
      if (a->lhs().kind() == ExprKind::VarRef) add(a->target());
    } else if (s->kind() == StmtKind::Do) {
      add(static_cast<DoStmt*>(s)->index());
    }
  }
  return out;
}

}  // namespace polaris
