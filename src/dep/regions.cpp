#include "dep/regions.h"

#include <algorithm>

#include "analysis/structure.h"
#include "symbolic/simplify.h"

namespace polaris {

namespace {

struct LoopBounds {
  Polynomial lo;
  Polynomial hi;
};

std::optional<LoopBounds> oriented_bounds(DoStmt* loop) {
  std::int64_t step = 0;
  if (!try_fold_int(loop->step(), &step) || step == 0) return std::nullopt;
  Polynomial init = Polynomial::from_expr(loop->init());
  Polynomial limit = Polynomial::from_expr(loop->limit());
  if (step > 0) return LoopBounds{init, limit};
  return LoopBounds{limit, init};
}

bool references_through_atoms(const Polynomial& p, const Symbol* sym) {
  for (AtomId a : p.atoms()) {
    const Expression& e = AtomTable::current().expr(a);
    if (AtomTable::current().symbol(a) == nullptr && e.references(sym))
      return true;
  }
  return false;
}

}  // namespace

void add_loop_facts(FactContext& ctx, DoStmt* loop, int rank) {
  auto bounds = oriented_bounds(loop);
  if (bounds) {
    ctx.add_ge0(Polynomial::symbol(loop->index()) - bounds->lo);
    ctx.add_ge0(bounds->hi - Polynomial::symbol(loop->index()));
    ctx.add_ge0(bounds->hi - bounds->lo);
  }
  ctx.set_rank(AtomTable::current().intern_symbol(loop->index()), rank);
}

namespace {

/// Splits a guard condition into >=0 facts (conjunctions recursively;
/// integer strict comparisons tightened by one).
void add_condition(FactContext& ctx, const Expression& cond) {
  if (cond.kind() == ExprKind::BinOp) {
    const auto& b = static_cast<const BinOp&>(cond);
    if (b.op() == BinOpKind::And) {
      add_condition(ctx, b.left());
      add_condition(ctx, b.right());
      return;
    }
    const bool integers =
        b.left().type().is_integer() && b.right().type().is_integer();
    Polynomial l = Polynomial::from_expr(b.left());
    Polynomial r = Polynomial::from_expr(b.right());
    Polynomial one = Polynomial::constant(Rational(1));
    switch (b.op()) {
      case BinOpKind::Ge:
        ctx.add_ge0(l - r);
        break;
      case BinOpKind::Gt:
        ctx.add_ge0(integers ? l - r - one : l - r);
        break;
      case BinOpKind::Le:
        ctx.add_ge0(r - l);
        break;
      case BinOpKind::Lt:
        ctx.add_ge0(integers ? r - l - one : r - l);
        break;
      case BinOpKind::Eq:
        ctx.add_ge0(l - r);
        ctx.add_ge0(r - l);
        break;
      default:
        break;
    }
  }
}

}  // namespace

void add_guard_facts(FactContext& ctx, Statement* s) {
  if (s == nullptr || s->list() == nullptr) return;
  // Track the enclosing if-chains (and the active arm) by a forward scan.
  struct Frame {
    Statement* arm;  // If / ElseIf / Else currently active
  };
  std::vector<Frame> stack;
  for (Statement* cur : *s->list()) {
    if (cur == s) break;
    switch (cur->kind()) {
      case StmtKind::If:
        stack.push_back({cur});
        break;
      case StmtKind::ElseIf:
      case StmtKind::Else:
        p_assert(!stack.empty());
        stack.back().arm = cur;
        break;
      case StmtKind::EndIf:
        p_assert(!stack.empty());
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  for (const Frame& f : stack) {
    if (f.arm->kind() == StmtKind::If)
      add_condition(ctx, static_cast<IfStmt*>(f.arm)->cond());
    else if (f.arm->kind() == StmtKind::ElseIf)
      add_condition(ctx, static_cast<ElseIfStmt*>(f.arm)->cond());
    // ELSE: only negated conditions would apply; not synthesized.
  }
}

FactContext loop_fact_context(Statement* s) {
  FactContext ctx;
  int rank = 1;
  for (DoStmt* d : enclosing_loops(s)) add_loop_facts(ctx, d, rank++);
  add_guard_facts(ctx, s);
  return ctx;
}

std::optional<Interval> access_interval(const ArrayRef& ref, int dim,
                                        Statement* stmt, DoStmt* within,
                                        const FactContext& ctx) {
  p_assert(dim >= 0 && dim < ref.rank());
  Polynomial f = Polynomial::from_expr(*ref.subscripts()[dim]);

  // Loops strictly inside `within` that enclose the access, innermost
  // first.
  std::vector<DoStmt*> sweep;
  bool found = (within == nullptr);
  for (DoStmt* d = stmt->outer(); d != nullptr; d = d->outer()) {
    if (d == within) {
      found = true;
      break;
    }
    sweep.push_back(d);
  }
  p_assert_msg(found, "access statement not inside the given loop");

  Interval out{f, f};
  for (DoStmt* d : sweep) {
    auto bounds = oriented_bounds(d);
    if (!bounds) return std::nullopt;
    AtomId a = AtomTable::current().intern_symbol(d->index());
    Extremes lo_ext = eliminate_range(out.lo, a, bounds->lo, bounds->hi, ctx);
    Extremes hi_ext = eliminate_range(out.hi, a, bounds->lo, bounds->hi, ctx);
    if (!lo_ext.min || !hi_ext.max) return std::nullopt;
    out.lo = std::move(*lo_ext.min);
    out.hi = std::move(*hi_ext.max);
    if (references_through_atoms(out.lo, d->index()) ||
        references_through_atoms(out.hi, d->index()))
      return std::nullopt;
  }
  return out;
}

bool interval_contains(const Interval& outer, const Interval& inner,
                       const FactContext& ctx) {
  return prove_ge0(inner.lo - outer.lo, ctx) &&
         prove_ge0(outer.hi - inner.hi, ctx);
}

}  // namespace polaris
