// The Range Test (paper Section 3.3.1; Blume & Eigenmann, SC'94).
//
// A loop is proven to carry no dependence between two array references when
// the *range* of elements accessed by one iteration cannot overlap the
// ranges of other iterations.  Ranges are computed by eliminating inner
// loops through their [init, limit] bounds using forward-difference
// monotonicity; the tested loop's consecutive iterations are then compared
// symbolically (max of iteration x strictly before min of iteration x+step,
// plus a monotonicity condition that extends the result to all iteration
// pairs).
//
// The paper's "symbolic permutation of the visitation order" is realized by
// choosing, for the common inner loops, whether each is *fixed* (treated as
// outer — both references see the same index value) or *eliminated*
// (swept).  The OCEAN FTRVMT nest needs the middle loop fixed while the
// outer loop is tested — precisely the swap the paper describes.
#pragma once

#include "analysis/analysis_manager.h"
#include "dep/access.h"
#include "support/diagnostics.h"
#include "support/options.h"
#include "symbolic/compare.h"

namespace polaris {

class RangeTest {
 public:
  /// `am` (optional) memoizes the per-pair fact contexts, which dominate
  /// setup cost when the same pairs are re-tested.
  explicit RangeTest(const Options& opts, AnalysisManager* am = nullptr)
      : opts_(opts), am_(am) {}

  /// True if `carrier` provably carries no dependence between accesses
  /// `a` and `b` (to the same array; at least one a write).  False means
  /// "could not prove", never "dependence proven".
  ///
  /// Conservative bail-out boundary: a ResourceBlowup tripping anywhere in
  /// the query (polynomial term ceiling, atom ceiling, compile fuel)
  /// yields false — "could not prove" is always a correct answer — and is
  /// recorded as a governor degradation event, never propagated.
  bool independent(DoStmt* carrier, const ArrayAccess& a,
                   const ArrayAccess& b) const;

 private:
  bool independent_impl(DoStmt* carrier, const ArrayAccess& a,
                        const ArrayAccess& b) const;
  struct RefRanges {
    std::optional<Polynomial> min;
    std::optional<Polynomial> max;
  };

  /// Extremes of subscript `f` with the loops in `eliminate` swept
  /// (innermost first); nullopt members when monotonicity fails or an
  /// opaque atom still references an eliminated index.
  RefRanges sweep(const Polynomial& f, const std::vector<DoStmt*>& eliminate,
                  const FactContext& ctx) const;

  bool test_dimension(DoStmt* carrier, const Polynomial& f,
                      const Polynomial& g,
                      const std::vector<DoStmt*>& elim_f,
                      const std::vector<DoStmt*>& elim_g,
                      std::int64_t step, const FactContext& ctx) const;

  const Options& opts_;
  AnalysisManager* am_ = nullptr;
};

}  // namespace polaris
