// Array access collection for dependence testing.
#pragma once

#include <map>
#include <vector>

#include "ir/program.h"

namespace polaris {

struct ArrayAccess {
  const ArrayRef* ref = nullptr;  ///< the reference (owned by its statement)
  Statement* stmt = nullptr;      ///< statement containing the reference
  bool is_write = false;
};

/// All array accesses inside the body of `loop` (including inner loop
/// bounds and IF conditions), grouped by array symbol.  The left-hand side
/// of an assignment is the only write; its subscripts are reads.
SymbolMap<std::vector<ArrayAccess>> collect_array_accesses(
    DoStmt* loop);

/// Scalar symbols assigned within the loop body (targets of scalar
/// assignments and inner-loop indices).
std::vector<Symbol*> scalars_assigned(DoStmt* loop);

}  // namespace polaris
