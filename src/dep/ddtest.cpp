#include "dep/ddtest.h"

#include <algorithm>

#include "analysis/structure.h"
#include "dep/linear.h"
#include "dep/rangetest.h"
#include "support/context.h"
#include "support/governor.h"
#include "support/statistic.h"
#include "support/trace.h"

namespace polaris {

namespace {

/// Common enclosing loops of both statements, outermost first.
std::vector<DoStmt*> common_nest(Statement* s1, Statement* s2) {
  std::vector<DoStmt*> n1 = enclosing_loops(s1);
  std::vector<DoStmt*> n2 = enclosing_loops(s2);
  std::vector<DoStmt*> out;
  for (size_t i = 0; i < n1.size() && i < n2.size() && n1[i] == n2[i]; ++i)
    out.push_back(n1[i]);
  return out;
}

enum class PairVerdict { Gcd, Banerjee, RangeTest, Dependent };

PairVerdict test_pair_impl(DoStmt* loop, const ArrayAccess& a,
                           const ArrayAccess& b, const Options& opts,
                           AnalysisManager& am) {
  std::vector<DoStmt*> nest = common_nest(a.stmt, b.stmt);
  p_assert_msg(std::find(nest.begin(), nest.end(), loop) != nest.end(),
               "carrier loop must enclose both accesses");

  const int rank = a.ref->rank();
  if (rank == b.ref->rank()) {
    // Linear battery, dimension by dimension: one provably independent
    // dimension kills the pair.
    for (int d = 0; d < rank; ++d) {
      Polynomial f = Polynomial::from_expr(*a.ref->subscripts()[d]);
      Polynomial g = Polynomial::from_expr(*b.ref->subscripts()[d]);
      LinearForm lf = extract_linear(f, nest);
      LinearForm lg = extract_linear(g, nest);
      if (opts.gcd_test &&
          gcd_test(lf, lg) == LinearVerdict::NoDependence)
        return PairVerdict::Gcd;
      if (opts.banerjee_test &&
          (siv_carried(lf, lg, nest, loop) == LinearVerdict::NoDependence ||
           banerjee_carried(lf, lg, nest, loop) ==
               LinearVerdict::NoDependence))
        return PairVerdict::Banerjee;
    }
    if (opts.range_test) {
      RangeTest rt(opts, &am);
      if (rt.independent(loop, a, b)) return PairVerdict::RangeTest;
    }
  }
  return PairVerdict::Dependent;
}

/// Conservative bail-out boundary around the whole linear battery: a
/// resource ceiling tripping inside subscript canonicalization or the
/// linear tests yields "Dependent" — assuming a dependence serializes the
/// loop, which is always correct.  (The range test has its own inner
/// boundary; this one covers the gcd/Banerjee path.)
PairVerdict test_pair(DoStmt* loop, const ArrayAccess& a,
                      const ArrayAccess& b, const Options& opts,
                      AnalysisManager& am) {
  try {
    return test_pair_impl(loop, a, b, opts, am);
  } catch (const ResourceBlowup& blow) {
    note_conservative_bailout("ddtest", blow);
    return PairVerdict::Dependent;
  }
}

POLARIS_STATISTIC("ddtest", pairs_tested,
                  "array reference pairs submitted to dependence testing");
POLARIS_STATISTIC("ddtest", pairs_independent_gcd,
                  "pairs proven independent by the GCD test");
POLARIS_STATISTIC("ddtest", pairs_independent_banerjee,
                  "pairs proven independent by the Banerjee test");
POLARIS_STATISTIC("ddtest", pairs_assumed_dependent,
                  "pairs no test could disprove (assumed dependent)");

}  // namespace

LoopDepStats test_loop_arrays(DoStmt* loop, const Options& opts,
                              Diagnostics& diags,
                              const SymbolSet& exempt,
                              const std::string& context) {
  AnalysisManager am;
  return test_loop_arrays(loop, opts, diags, exempt, context, am);
}

LoopDepStats test_loop_arrays(DoStmt* loop, const Options& opts,
                              Diagnostics& diags,
                              const SymbolSet& exempt,
                              const std::string& context,
                              AnalysisManager& am) {
  LoopDepStats stats;
  // The compile context rides on the analysis manager here: the tester's
  // callers always pass the shard's manager, and a context-less manager
  // (unit tests) simply runs untraced.
  CompileContext* cc = am.context();
  trace::TraceSpan batch_span(cc != nullptr ? &cc->trace() : nullptr,
                              "ddtest", "dep");
  batch_span.arg("loop", context);
  auto accesses = collect_array_accesses(loop);
  for (auto& [array, refs] : accesses) {
    if (exempt.count(array)) continue;
    for (size_t i = 0; i < refs.size(); ++i) {
      for (size_t j = i; j < refs.size(); ++j) {
        if (!refs[i].is_write && !refs[j].is_write) continue;
        // A reference paired with itself only matters for writes (output
        // dependence across iterations).
        if (i == j && !refs[i].is_write) continue;
        ++stats.pairs;
        ++pairs_tested;
        switch (test_pair(loop, refs[i], refs[j], opts, am)) {
          case PairVerdict::Gcd:
            ++stats.by_gcd;
            ++pairs_independent_gcd;
            break;
          case PairVerdict::Banerjee:
            ++stats.by_banerjee;
            ++pairs_independent_banerjee;
            break;
          case PairVerdict::RangeTest:
            ++stats.by_rangetest;
            break;
          case PairVerdict::Dependent: {
            ++pairs_assumed_dependent;
            std::string desc = array->name() + "(" +
                               refs[i].ref->to_string() + " vs " +
                               refs[j].ref->to_string() + ")";
            stats.blockers.push_back(desc);
            break;
          }
        }
      }
    }
  }
  batch_span.arg("pairs", static_cast<std::uint64_t>(stats.pairs));
  batch_span.arg("parallel", stats.parallel() ? "true" : "false");
  if (stats.parallel()) {
    diags.note("ddtest", context,
               "no carried array dependences (" +
                   std::to_string(stats.by_gcd) + " gcd, " +
                   std::to_string(stats.by_banerjee) + " banerjee, " +
                   std::to_string(stats.by_rangetest) + " rangetest)");
  } else {
    diags.note("ddtest", context,
               "assumed dependence on " + stats.blockers.front());
  }
  return stats;
}

}  // namespace polaris
