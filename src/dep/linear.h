// Linear (affine) dependence tests: GCD and Banerjee's inequalities with
// direction vectors.
//
// These are the "current compiler" tests the paper contrasts with the range
// test: they require subscripts linear in the loop indices with integer
// constant coefficients, and (for Banerjee) integer constant loop bounds.
// Nonlinear or symbolic forms make them answer "maybe" — exactly the
// limitation Section 3.3 describes.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "symbolic/poly.h"

namespace polaris {

class DoStmt;

/// f = sum_d coeff[d] * index_d + rest, rest free of all indices in `nest`.
struct LinearForm {
  bool valid = false;
  std::map<const DoStmt*, std::int64_t> coeffs;  ///< absent => coefficient 0
  Polynomial rest;
};

/// Extracts the linear form of a subscript polynomial over the loops of
/// `nest`.  Fails (valid=false) when any index occurs nonlinearly, in a
/// composite monomial (like n*i), inside an opaque atom, or with a
/// non-integer coefficient.
LinearForm extract_linear(const Polynomial& f,
                          const std::vector<DoStmt*>& nest);

/// Outcome of a linear test.
enum class LinearVerdict { NoDependence, MayDepend };

/// GCD test on one subscript pair: a dependence f(i..) == g(j..) requires
/// gcd of all coefficients to divide the constant difference.
LinearVerdict gcd_test(const LinearForm& f, const LinearForm& g);

/// Constant [lo, hi] bounds per loop, folded through PARAMETERs; nullopt
/// if a bound is not a compile-time integer constant.
struct ConstBounds {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};
std::optional<ConstBounds> constant_bounds(const DoStmt* loop);

/// Strong-SIV test, symbolic-bounds capable: when both subscripts depend
/// on no loop index except the carrier's, with equal coefficients, the
/// dependence distance is constant; a zero or non-divisible distance rules
/// out a carried dependence.  (Standard in 1996 compilers, so part of the
/// baseline battery.)
LinearVerdict siv_carried(const LinearForm& f, const LinearForm& g,
                          const std::vector<DoStmt*>& nest,
                          const DoStmt* carrier);

/// Banerjee test with direction vectors: can iterations I of `carrier`
/// (direction '<' or '>' at its level, '=' outside, any inside) satisfy
/// f(I) == g(J)?  Requires constant bounds for every loop of the nest and a
/// constant difference of the rest parts; returns MayDepend otherwise.
LinearVerdict banerjee_carried(const LinearForm& f, const LinearForm& g,
                               const std::vector<DoStmt*>& nest,
                               const DoStmt* carrier);

}  // namespace polaris
