#include "dep/linear.h"

#include <numeric>

#include "ir/stmt.h"
#include "symbolic/simplify.h"

namespace polaris {

namespace {

/// True if the atom's expression references `sym` anywhere (catches n*i
/// composites hidden inside opaque atoms like z(i)).
bool atom_references(AtomId a, const Symbol* sym) {
  return AtomTable::current().expr(a).references(sym);
}

}  // namespace

LinearForm extract_linear(const Polynomial& f,
                          const std::vector<DoStmt*>& nest) {
  LinearForm out;
  out.rest = f;
  for (const DoStmt* loop : nest) {
    Symbol* idx = loop->index();
    AtomId a = AtomTable::current().intern_symbol(idx);
    // The index must occur only as the pure monomial idx^1.
    Rational c = f.coefficient(Monomial::atom(a));
    Polynomial linear_part =
        Polynomial::atom(a) * Polynomial::constant(c);
    Polynomial remainder = out.rest - linear_part;
    if (remainder.contains(a)) return {};  // nonlinear or composite (n*i)
    if (!c.is_integer()) return {};        // fractional coefficient
    // Opaque atoms referencing the index (z(i), i/2 kept opaque, ...) also
    // disqualify the form.
    for (AtomId atom : remainder.atoms())
      if (AtomTable::current().symbol(atom) == nullptr &&
          atom_references(atom, idx))
        return {};
    if (!c.is_zero()) out.coeffs[loop] = c.as_integer();
    out.rest = remainder;
  }
  out.valid = true;
  return out;
}

LinearVerdict gcd_test(const LinearForm& f, const LinearForm& g) {
  if (!f.valid || !g.valid) return LinearVerdict::MayDepend;
  Polynomial diff = g.rest - f.rest;
  if (!diff.is_constant() || !diff.constant_value().is_integer())
    return LinearVerdict::MayDepend;
  std::int64_t c = diff.constant_value().as_integer();
  std::int64_t gcd = 0;
  for (const auto& [loop, a] : f.coeffs) gcd = std::gcd(gcd, a);
  for (const auto& [loop, b] : g.coeffs) gcd = std::gcd(gcd, b);
  if (gcd == 0) {
    // No index dependence at all: equal iff constants are equal.
    return c == 0 ? LinearVerdict::MayDepend : LinearVerdict::NoDependence;
  }
  return (c % gcd == 0) ? LinearVerdict::MayDepend
                        : LinearVerdict::NoDependence;
}

LinearVerdict siv_carried(const LinearForm& f, const LinearForm& g,
                          const std::vector<DoStmt*>& nest,
                          const DoStmt* carrier) {
  if (!f.valid || !g.valid) return LinearVerdict::MayDepend;
  // Only the carrier index may appear (other indices range freely in a
  // carried dependence, which symbolic bounds cannot constrain).
  for (const DoStmt* loop : nest) {
    if (loop == carrier) continue;
    if (f.coeffs.count(loop) || g.coeffs.count(loop))
      return LinearVerdict::MayDepend;
  }
  auto fit = f.coeffs.find(carrier);
  auto git = g.coeffs.find(carrier);
  std::int64_t a = fit == f.coeffs.end() ? 0 : fit->second;
  std::int64_t b = git == g.coeffs.end() ? 0 : git->second;
  if (a != b || a == 0) return LinearVerdict::MayDepend;
  Polynomial diff = g.rest - f.rest;
  if (!diff.is_constant() || !diff.constant_value().is_integer())
    return LinearVerdict::MayDepend;
  std::int64_t d = diff.constant_value().as_integer();
  if (d == 0) return LinearVerdict::NoDependence;  // same-iteration only
  if (d % a != 0) return LinearVerdict::NoDependence;
  return LinearVerdict::MayDepend;  // constant nonzero distance: carried
}

std::optional<ConstBounds> constant_bounds(const DoStmt* loop) {
  std::int64_t lo = 0, hi = 0, step = 1;
  auto* d = const_cast<DoStmt*>(loop);
  if (!try_fold_int(d->init(), &lo)) return std::nullopt;
  if (!try_fold_int(d->limit(), &hi)) return std::nullopt;
  if (!try_fold_int(d->step(), &step)) return std::nullopt;
  if (step == 1) return ConstBounds{lo, hi};
  if (step == -1) return ConstBounds{hi, lo};
  // Non-unit steps: widen to the enclosing interval (sound for exclusion).
  if (step > 1) return ConstBounds{lo, hi};
  if (step < -1) return ConstBounds{hi, lo};
  return std::nullopt;  // step 0 is malformed
}

namespace {

enum class Dir { Eq, Lt, Gt, Any };

struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

/// Extremes of a*i - b*j over the direction-constrained region of
/// (i, j) in [L, U] x [L, U].  Returns nullopt if the region is empty.
std::optional<Interval> level_extremes(std::int64_t a, std::int64_t b,
                                       std::int64_t L, std::int64_t U,
                                       Dir dir) {
  if (U < L) return std::nullopt;  // empty loop: no iterations at all
  auto eval = [&](std::int64_t i, std::int64_t j) { return a * i - b * j; };
  std::vector<std::pair<std::int64_t, std::int64_t>> vertices;
  switch (dir) {
    case Dir::Eq:
      vertices = {{L, L}, {U, U}};
      break;
    case Dir::Lt:
      if (U <= L) return std::nullopt;  // i < j impossible
      vertices = {{L, L + 1}, {L, U}, {U - 1, U}};
      break;
    case Dir::Gt:
      if (U <= L) return std::nullopt;
      vertices = {{L + 1, L}, {U, L}, {U, U - 1}};
      break;
    case Dir::Any:
      vertices = {{L, L}, {L, U}, {U, L}, {U, U}};
      break;
  }
  Interval out{eval(vertices[0].first, vertices[0].second),
               eval(vertices[0].first, vertices[0].second)};
  for (const auto& [i, j] : vertices) {
    out.lo = std::min(out.lo, eval(i, j));
    out.hi = std::max(out.hi, eval(i, j));
  }
  return out;
}

}  // namespace

LinearVerdict banerjee_carried(const LinearForm& f, const LinearForm& g,
                               const std::vector<DoStmt*>& nest,
                               const DoStmt* carrier) {
  if (!f.valid || !g.valid) return LinearVerdict::MayDepend;
  Polynomial diff = f.rest - g.rest;
  if (!diff.is_constant() || !diff.constant_value().is_integer())
    return LinearVerdict::MayDepend;
  std::int64_t c0 = diff.constant_value().as_integer();

  // A dependence carried by `carrier` has direction '=' for outer levels,
  // '<' or '>' at the carrier, anything inside.  Exclude both carrier
  // directions to prove independence.
  bool inside = false;
  std::vector<std::pair<const DoStmt*, Dir>> levels_base;
  for (const DoStmt* loop : nest) {
    if (loop == carrier) {
      inside = true;
      levels_base.emplace_back(loop, Dir::Lt);  // placeholder; varied below
    } else {
      levels_base.emplace_back(loop, inside ? Dir::Any : Dir::Eq);
    }
  }
  p_assert_msg(inside, "carrier not in nest");

  for (Dir carrier_dir : {Dir::Lt, Dir::Gt}) {
    std::int64_t lo = c0, hi = c0;
    bool feasible = true;
    for (auto& [loop, dir] : levels_base) {
      Dir use = (loop == carrier) ? carrier_dir : dir;
      auto bounds = constant_bounds(loop);
      if (!bounds) return LinearVerdict::MayDepend;
      std::int64_t a = 0, b = 0;
      auto fit = f.coeffs.find(loop);
      if (fit != f.coeffs.end()) a = fit->second;
      auto git = g.coeffs.find(loop);
      if (git != g.coeffs.end()) b = git->second;
      auto ext = level_extremes(a, b, bounds->lo, bounds->hi, use);
      if (!ext) {
        feasible = false;  // direction impossible (e.g. single iteration)
        break;
      }
      lo += ext->lo;
      hi += ext->hi;
    }
    if (feasible && lo <= 0 && 0 <= hi)
      return LinearVerdict::MayDepend;  // zero crossing: dependence possible
  }
  return LinearVerdict::NoDependence;
}

}  // namespace polaris
