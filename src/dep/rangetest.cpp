#include "dep/rangetest.h"

#include <algorithm>
#include <array>
#include <optional>
#include <utility>

#include "analysis/structure.h"
#include "dep/regions.h"
#include "support/context.h"
#include "support/governor.h"
#include "support/statistic.h"
#include "support/trace.h"
#include "symbolic/simplify.h"

namespace polaris {

namespace {

POLARIS_STATISTIC("rangetest", pairs_queried,
                  "reference pairs submitted to the symbolic range test");
POLARIS_STATISTIC("rangetest", pairs_proven,
                  "pairs the range test proved independent");
POLARIS_STATISTIC("rangetest", permutations_tried,
                  "fixed-subset loop permutations enumerated");

/// Bounds of a loop as polynomials oriented so lo <= index <= hi, for
/// constant steps (negative steps swap).  nullopt for symbolic steps.
struct LoopBounds {
  Polynomial lo;
  Polynomial hi;
};

std::optional<LoopBounds> oriented_bounds(DoStmt* loop) {
  std::int64_t step = 0;
  if (!try_fold_int(loop->step(), &step) || step == 0) return std::nullopt;
  Polynomial init = Polynomial::from_expr(loop->init());
  Polynomial limit = Polynomial::from_expr(loop->limit());
  if (step > 0) return LoopBounds{init, limit};
  return LoopBounds{limit, init};
}

AtomId index_atom(const DoStmt* loop) {
  return AtomTable::current().intern_symbol(loop->index());
}

unsigned popcount(std::size_t m) {
  unsigned n = 0;
  for (; m != 0; m &= m - 1) ++n;
  return n;
}

/// True if any atom of `p` is an opaque expression referencing `sym`
/// (e.g. z(k) after k was eliminated) — the sweep result would then still
/// depend on the swept index.
bool references_through_atoms(const Polynomial& p, const Symbol* sym) {
  for (AtomId a : p.atoms()) {
    const Expression& e = AtomTable::current().expr(a);
    if (AtomTable::current().symbol(a) == nullptr && e.references(sym))
      return true;
  }
  return false;
}

}  // namespace

RangeTest::RefRanges RangeTest::sweep(const Polynomial& f,
                                      const std::vector<DoStmt*>& eliminate,
                                      const FactContext& ctx) const {
  RefRanges out;
  out.min = f;
  out.max = f;
  for (DoStmt* loop : eliminate) {
    auto bounds = oriented_bounds(loop);
    if (!bounds) return {};
    AtomId a = index_atom(loop);
    Extremes lo_ext =
        eliminate_range(*out.min, a, bounds->lo, bounds->hi, ctx);
    Extremes hi_ext =
        eliminate_range(*out.max, a, bounds->lo, bounds->hi, ctx);
    if (!lo_ext.min || !hi_ext.max) return {};
    out.min = std::move(lo_ext.min);
    out.max = std::move(hi_ext.max);
    if (references_through_atoms(*out.min, loop->index()) ||
        references_through_atoms(*out.max, loop->index()))
      return {};
  }
  return out;
}

bool RangeTest::test_dimension(DoStmt* carrier, const Polynomial& f,
                               const Polynomial& g,
                               const std::vector<DoStmt*>& elim_f,
                               const std::vector<DoStmt*>& elim_g,
                               std::int64_t step,
                               const FactContext& ctx) const {
  RefRanges rf = sweep(f, elim_f, ctx);
  RefRanges rg = sweep(g, elim_g, ctx);
  if (!rf.min || !rg.min) return false;

  AtomId x = index_atom(carrier);
  auto carrier_bounds = oriented_bounds(carrier);
  if (!carrier_bounds) return false;

  // (a) Whole-range disjointness: the two references never touch the same
  // elements at all (for any iteration pair, equal or not).
  {
    Extremes f_lo = eliminate_range(*rf.min, x, carrier_bounds->lo,
                                    carrier_bounds->hi, ctx);
    Extremes f_hi = eliminate_range(*rf.max, x, carrier_bounds->lo,
                                    carrier_bounds->hi, ctx);
    Extremes g_lo = eliminate_range(*rg.min, x, carrier_bounds->lo,
                                    carrier_bounds->hi, ctx);
    Extremes g_hi = eliminate_range(*rg.max, x, carrier_bounds->lo,
                                    carrier_bounds->hi, ctx);
    if (f_lo.min && f_hi.max && g_lo.min && g_hi.max &&
        !references_through_atoms(*f_hi.max, carrier->index()) &&
        !references_through_atoms(*g_lo.min, carrier->index()) &&
        !references_through_atoms(*f_lo.min, carrier->index()) &&
        !references_through_atoms(*g_hi.max, carrier->index())) {
      if (prove_gt0(*g_lo.min - *f_hi.max, ctx) ||
          prove_gt0(*f_lo.min - *g_hi.max, ctx))
        return true;
    }
  }

  // (b) Consecutive-iteration test with the monotonicity extension.
  Polynomial next = Polynomial::atom(x) + Polynomial::constant(Rational(step));
  auto direction_ok = [&](const RefRanges& from, const RefRanges& to) {
    // Ranges increase with the iteration number: max_from(x) < min_to(x+s),
    // min_to monotone in the direction of travel.
    Monotonicity want_up =
        step > 0 ? Monotonicity::NonDecreasing : Monotonicity::NonIncreasing;
    Monotonicity want_down =
        step > 0 ? Monotonicity::NonIncreasing : Monotonicity::NonDecreasing;
    Polynomial to_min_next = to.min->substitute(x, next);
    if (prove_gt0(to_min_next - *from.max, ctx) &&
        monotonicity(*to.min, x, ctx) == want_up)
      return true;
    // Ranges decrease with the iteration number.
    Polynomial to_max_next = to.max->substitute(x, next);
    if (prove_gt0(*from.min - to_max_next, ctx) &&
        monotonicity(*to.max, x, ctx) == want_down)
      return true;
    return false;
  };
  return direction_ok(rf, rg) && direction_ok(rg, rf);
}

bool RangeTest::independent(DoStmt* carrier, const ArrayAccess& a,
                            const ArrayAccess& b) const {
  try {
    return independent_impl(carrier, a, b);
  } catch (const ResourceBlowup& blow) {
    // Conservative bail-out: the query's symbolic work hit a governor
    // ceiling.  "Could not prove independence" is always correct; the
    // partially-built fact context was not cached (pair_fact_context only
    // caches a compute() that returns), so a later un-governed query
    // starts clean.
    note_conservative_bailout("rangetest", blow);
    return false;
  }
}

bool RangeTest::independent_impl(DoStmt* carrier, const ArrayAccess& a,
                                 const ArrayAccess& b) const {
  p_assert(a.ref->symbol() == b.ref->symbol());
  p_assert(a.ref->rank() == b.ref->rank());
  ++pairs_queried;
  CompileContext* cc = am_ != nullptr ? am_->context() : nullptr;
  trace::TraceSpan pair_span(cc != nullptr ? &cc->trace() : nullptr,
                             "rangetest", "dep");
  pair_span.arg("array", a.ref->symbol()->name());

  std::int64_t step = 0;
  if (!try_fold_int(carrier->step(), &step) || step == 0) return false;

  // Loop sets: common inner loops may be fixed or eliminated; loops
  // enclosing only one access are always eliminated for that access.
  std::vector<DoStmt*> nest_a = enclosing_loops(a.stmt);
  std::vector<DoStmt*> nest_b = enclosing_loops(b.stmt);
  auto inside_carrier = [&](const std::vector<DoStmt*>& nest) {
    std::vector<DoStmt*> out;
    bool in = false;
    for (DoStmt* d : nest) {
      if (in) out.push_back(d);
      if (d == carrier) in = true;
    }
    p_assert_msg(in, "access not inside the carrier loop");
    return out;
  };
  std::vector<DoStmt*> inner_a = inside_carrier(nest_a);
  std::vector<DoStmt*> inner_b = inside_carrier(nest_b);

  std::vector<DoStmt*> common;
  for (DoStmt* d : inner_a)
    if (std::find(inner_b.begin(), inner_b.end(), d) != inner_b.end())
      common.push_back(d);

  // Facts: every enclosing loop of either access contributes its bounds,
  // plus the guard conditions around the carrier (they hold for every
  // execution of the body); ranks make inner indices eliminate first.
  // Memoized per (carrier, pair) when an AnalysisManager is attached —
  // DOALL probes and the final run re-test the same pairs.
  auto build_ctx = [&] {
    FactContext fc;
    add_guard_facts(fc, carrier);
    int rank = 1;
    for (DoStmt* d : nest_a) {
      auto bounds = oriented_bounds(d);
      if (bounds) {
        fc.add_ge0(Polynomial::symbol(d->index()) - bounds->lo);
        fc.add_ge0(bounds->hi - Polynomial::symbol(d->index()));
        fc.add_ge0(bounds->hi - bounds->lo);  // at least one iteration
      }
      fc.set_rank(index_atom(d), rank++);
    }
    for (DoStmt* d : nest_b) {
      if (std::find(nest_a.begin(), nest_a.end(), d) != nest_a.end())
        continue;
      auto bounds = oriented_bounds(d);
      if (bounds) {
        fc.add_ge0(Polynomial::symbol(d->index()) - bounds->lo);
        fc.add_ge0(bounds->hi - Polynomial::symbol(d->index()));
        fc.add_ge0(bounds->hi - bounds->lo);
      }
      fc.set_rank(index_atom(d), rank++);
    }
    return fc;
  };
  const FactContext local_ctx = am_ ? FactContext{} : build_ctx();
  const FactContext& ctx =
      am_ ? am_->pair_fact_context(carrier, a.stmt, b.stmt, build_ctx)
          : local_ctx;

  // Enumerate fixed-subsets of the common inner loops ("loop permutations"
  // in the paper's terms), bounded by the option.
  const size_t n_common = common.size();
  const size_t subsets = n_common >= 10 ? 1024 : (size_t{1} << n_common);
  size_t budget = static_cast<size_t>(std::max(1, opts_.max_loop_permutations));

  auto deeper_first = [this](std::vector<DoStmt*> v) {
    std::stable_sort(v.begin(), v.end(), [](DoStmt* p, DoStmt* q) {
      // Deeper loops (more enclosing DOs) first.
      int dp = 0, dq = 0;
      for (DoStmt* o = p->outer(); o; o = o->outer()) ++dp;
      for (DoStmt* o = q->outer(); o; o = o->outer()) ++dq;
      return dp > dq;
    });
    return v;
  };

  // The subscript polynomials are mask-invariant; memoize them across the
  // enumeration (every mask used to re-canonicalize every dimension).
  // Conversion stays lazy and in the legacy dimension order, so the
  // atom-interning sequence — and with it canonical term order — is the
  // same as converting inside the loop.
  std::vector<std::optional<std::pair<Polynomial, Polynomial>>> dim_polys(
      static_cast<size_t>(a.ref->rank()));
  auto dim = [&](int d) -> const std::pair<Polynomial, Polynomial>& {
    auto& slot = dim_polys[static_cast<size_t>(d)];
    if (!slot)
      slot.emplace(Polynomial::from_expr(*a.ref->subscripts()[d]),
                   Polynomial::from_expr(*b.ref->subscripts()[d]));
    return *slot;
  };

  auto try_mask = [&](size_t mask) -> bool {
    ++permutations_tried;
    // Each visitation order is a unit of symbolic search work; charging
    // it keeps hostile compile budgets from degenerating into exhaustive
    // permutation sweeps.
    if (ResourceGovernor* gov = ResourceGovernor::current()) gov->charge(16);
    std::vector<DoStmt*> fixed;
    for (size_t bit = 0; bit < n_common; ++bit)
      if (mask & (size_t{1} << bit)) fixed.push_back(common[bit]);

    auto build_elim = [&](const std::vector<DoStmt*>& inner) {
      std::vector<DoStmt*> elim;
      for (DoStmt* d : inner)
        if (std::find(fixed.begin(), fixed.end(), d) == fixed.end())
          elim.push_back(d);
      return deeper_first(std::move(elim));
    };
    std::vector<DoStmt*> elim_f = build_elim(inner_a);
    std::vector<DoStmt*> elim_g = build_elim(inner_b);

    // Per-dimension: any provably disjoint dimension kills the pair.
    bool ok = false;
    for (int d = 0; d < a.ref->rank() && !ok; ++d) {
      const auto& [f, g] = dim(d);
      ok = test_dimension(carrier, f, g, elim_f, elim_g, step, ctx);
    }
    if (ok) {
      ++pairs_proven;
      if (am_ != nullptr) am_->note_range_success(popcount(mask));
      pair_span.arg("proven", "true");
    }
    return ok;
  };

  if (opts_.rangetest_max_permutations <= 0) {
    // Legacy enumeration: ascending masks, bounded by twice the
    // permutation budget.  The default — byte-identical results.
    for (size_t mask = 0; mask < subsets && mask < budget * 2; ++mask)
      if (try_mask(mask)) return true;
    return false;
  }

  // Counter-guided enumeration under a hard cap: spend the budget on
  // popcount buckets where this unit's proofs have landed so far.  Bucket
  // priority is (observed successes desc, popcount asc — fixing fewer
  // loops keeps ranges wider and proofs cheaper); masks ascend within a
  // bucket.  The histogram is read once per query, so the order is fixed
  // before any of this query's own successes are recorded.
  const size_t cap = static_cast<size_t>(opts_.rangetest_max_permutations);
  const unsigned max_pop = static_cast<unsigned>(n_common >= 10 ? 10 : n_common);
  std::array<std::uint64_t, 16> successes{};
  if (am_ != nullptr) successes = am_->range_success_by_popcount();
  std::vector<unsigned> bucket_order;
  for (unsigned p = 0; p <= max_pop; ++p) bucket_order.push_back(p);
  std::stable_sort(bucket_order.begin(), bucket_order.end(),
                   [&](unsigned p, unsigned q) {
                     if (successes[p] != successes[q])
                       return successes[p] > successes[q];
                     return p < q;
                   });
  size_t tried = 0;
  for (unsigned p : bucket_order) {
    for (size_t mask = 0; mask < subsets; ++mask) {
      if (popcount(mask) != p) continue;
      if (tried++ >= cap) return false;
      if (try_mask(mask)) return true;
    }
  }
  return false;
}

}  // namespace polaris
