// Data-dependence driver: decides whether a loop carries array dependences.
//
// Applies, in order, the tests enabled by Options: GCD, Banerjee with
// direction vectors (the "current compiler" battery), then the range test
// (Polaris's addition).  Scalars are not handled here — the DOALL pass
// deals with them via privatization, induction and reduction analysis and
// passes the resolved symbols in `exempt`.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/analysis_manager.h"
#include "dep/access.h"
#include "support/diagnostics.h"
#include "support/options.h"

namespace polaris {

struct LoopDepStats {
  int pairs = 0;           ///< access pairs needing a test
  int by_gcd = 0;          ///< proven independent by the GCD test
  int by_banerjee = 0;     ///< proven by Banerjee with directions
  int by_rangetest = 0;    ///< proven by the range test
  std::vector<std::string> blockers;  ///< unresolved pairs (assumed deps)

  bool parallel() const { return blockers.empty(); }
};

/// Tests every array-access pair in `loop` (skipping arrays in `exempt`)
/// for dependences carried by `loop`.  `context` labels diagnostics, e.g.
/// "main/do_100".  Range-test fact contexts are memoized in `am` so probe
/// and final runs over the same loop share them.
LoopDepStats test_loop_arrays(DoStmt* loop, const Options& opts,
                              Diagnostics& diags,
                              const SymbolSet& exempt,
                              const std::string& context,
                              AnalysisManager& am);

/// Convenience overload with a private AnalysisManager.
LoopDepStats test_loop_arrays(DoStmt* loop, const Options& opts,
                              Diagnostics& diags,
                              const SymbolSet& exempt,
                              const std::string& context);

}  // namespace polaris
