// Minimal JSON value, writer, and parser.
//
// The observability layer emits three JSON surfaces — Chrome trace events,
// the remarks stream, and the `-report-json` compile report — and CI
// validates each by parsing it back.  No third-party JSON library is
// available in the build image, so this is a small self-contained
// implementation: a variant-style JsonValue, a serializer, and a strict
// recursive-descent parser (throws UserError on malformed input).  Object
// member order is preserved so serialize(parse(x)) round-trips stably.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace polaris {

/// Escapes a string for embedding inside JSON double quotes.
std::string json_escape(const std::string& s);

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;  ///< Array elements
  std::vector<std::pair<std::string, JsonValue>> members;  ///< Object fields

  // --- constructors ---------------------------------------------------------
  static JsonValue null() { return JsonValue{}; }
  static JsonValue boolean(bool b);
  static JsonValue num(double v);
  static JsonValue num(std::int64_t v);
  static JsonValue num(std::uint64_t v);
  static JsonValue num(int v) { return num(static_cast<std::int64_t>(v)); }
  static JsonValue str(std::string s);
  static JsonValue array();
  static JsonValue object();

  // --- building -------------------------------------------------------------
  JsonValue& add(JsonValue v);                      ///< append array element
  JsonValue& set(const std::string& key, JsonValue v);  ///< add object field

  // --- access ---------------------------------------------------------------
  bool is_null() const { return kind == Kind::Null; }
  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_string() const { return kind == Kind::String; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_bool() const { return kind == Kind::Bool; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Serializes this value as compact JSON.
  std::string serialize() const;
};

/// Parses `text` as a single JSON value with no trailing garbage.
/// Throws UserError with position information on malformed input.
JsonValue parse_json(const std::string& text);

/// Reads `path` and parses it as one JSON document.  Throws UserError
/// (naming the file) when the file cannot be read or does not parse —
/// the shared ingestion path for every tool that consumes the compiler's
/// JSON artifacts (polaris-insight, tests, the bench harness).
JsonValue parse_json_file(const std::string& path);

/// Parses a JSONL stream (one JSON document per line, the remarks /
/// POLARIS_BENCH_JSON shape).  Blank lines are skipped; a malformed line
/// throws UserError with its 1-based line number.
std::vector<JsonValue> parse_jsonl(const std::string& text);

}  // namespace polaris
