#include "support/assert.h"

#include <sstream>

namespace polaris {

namespace {
std::string format_message(const std::string& cond, const std::string& file,
                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "polaris internal error: assertion `" << cond << "' failed at "
     << file << ":" << line;
  if (!msg.empty()) os << ": " << msg;
  return os.str();
}
}  // namespace

InternalError::InternalError(const std::string& cond, const std::string& file,
                             int line, const std::string& msg)
    : std::logic_error(format_message(cond, file, line, msg)),
      cond_(cond),
      file_(file),
      line_(line) {}

namespace detail {
void assert_failed(const char* cond, const char* file, int line,
                   const std::string& msg) {
  throw InternalError(cond, file, line, msg);
}
}  // namespace detail

}  // namespace polaris
