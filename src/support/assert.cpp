#include "support/assert.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace polaris {

namespace {

std::string format_message(const std::string& cond, const std::string& file,
                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "polaris internal error: assertion `" << cond << "' failed at "
     << file << ":" << line;
  if (!msg.empty()) os << ": " << msg;
  return os.str();
}

/// Process-wide injection state.  Compilation is single-threaded today
/// (parallel per-unit pipelines are a ROADMAP item; injection will need to
/// become thread-local with them).
struct FaultState {
  fault::InjectionSpec spec;
  bool scope_active = false;
  bool scope_matches = false;
  bool fired_in_scope = false;
  long sites_in_scope = 0;
};
FaultState g_fault;

bool spec_matches(const std::string& pattern, const std::string& value) {
  return pattern == "*" || pattern == value;
}

}  // namespace

InternalError::InternalError(const std::string& cond, const std::string& file,
                             int line, const std::string& msg)
    : std::logic_error(format_message(cond, file, line, msg)),
      cond_(cond),
      file_(file),
      line_(line) {}

bool InternalError::injected() const {
  return cond_ == detail::kInjectedCond;
}

namespace fault {

InjectionSpec parse_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : spec) {
    if (c == ':') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);

  if (parts.size() > 3)
    throw UserError("bad fault-injection spec '" + spec +
                    "' (want PASS[:UNIT[:N]])");
  InjectionSpec out;
  if (parts[0].empty())
    throw UserError("bad fault-injection spec '" + spec +
                    "': empty pass name");
  out.pass = parts[0];
  if (parts.size() >= 2 && !parts[1].empty()) out.unit = parts[1];
  if (parts.size() == 3) {
    const std::string& n = parts[2];
    char* end = nullptr;
    long v = n.empty() ? 0 : std::strtol(n.c_str(), &end, 10);
    if (n.empty() || end == nullptr || *end != '\0' || v < 1)
      throw UserError("bad fault-injection spec '" + spec +
                      "': site index must be a positive integer");
    out.site = v;
  }
  // Unit names are canonicalized to lower case in the IR; match likewise.
  for (char& c : out.unit)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

void arm(const InjectionSpec& spec) {
  g_fault = FaultState{};
  g_fault.spec = spec;
  detail::fault_armed_flag = true;
}

void disarm() {
  detail::fault_armed_flag = false;
  g_fault = FaultState{};
}

bool armed() { return detail::fault_armed_flag; }

void set_scope(const std::string& pass, const std::string& unit) {
  g_fault.scope_active = true;
  g_fault.scope_matches = spec_matches(g_fault.spec.pass, pass) &&
                          spec_matches(g_fault.spec.unit, unit);
  g_fault.fired_in_scope = false;
  g_fault.sites_in_scope = 0;
}

void clear_scope() {
  g_fault.scope_active = false;
  g_fault.scope_matches = false;
  g_fault.sites_in_scope = 0;
}

bool consume_boundary_fault() {
  if (!detail::fault_armed_flag || !g_fault.scope_active ||
      !g_fault.scope_matches || g_fault.fired_in_scope)
    return false;
  g_fault.fired_in_scope = true;
  return true;
}

long sites_in_scope() { return g_fault.sites_in_scope; }

}  // namespace fault

namespace detail {

const char* const kInjectedCond = "fault-injection";

bool fault_armed_flag = false;

bool fault_tick_slow() {
  if (!g_fault.scope_active || !g_fault.scope_matches ||
      g_fault.fired_in_scope)
    return false;
  if (++g_fault.sites_in_scope != g_fault.spec.site) return false;
  g_fault.fired_in_scope = true;
  return true;
}

void assert_failed(const char* cond, const char* file, int line,
                   const std::string& msg) {
  throw InternalError(cond, file, line, msg);
}

}  // namespace detail

}  // namespace polaris
