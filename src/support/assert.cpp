#include "support/assert.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace polaris {

namespace {

std::string format_message(const std::string& cond, const std::string& file,
                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "polaris internal error: assertion `" << cond << "' failed at "
     << file << ":" << line;
  if (!msg.empty()) os << ": " << msg;
  return os.str();
}

bool spec_matches(const std::string& pattern, const std::string& value) {
  return pattern == "*" || pattern == value;
}

thread_local FaultInjector* tls_injector = nullptr;

}  // namespace

InternalError::InternalError(const std::string& cond, const std::string& file,
                             int line, const std::string& msg)
    : std::logic_error(format_message(cond, file, line, msg)),
      cond_(cond),
      file_(file),
      line_(line) {}

bool InternalError::injected() const {
  return cond_ == detail::kInjectedCond;
}

namespace fault {

InjectionSpec parse_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : spec) {
    if (c == ':') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);

  if (parts.size() > 3)
    throw UserError("bad fault-injection spec '" + spec +
                    "' (want PASS[:UNIT[:N]])");
  InjectionSpec out;
  if (parts[0].empty())
    throw UserError("bad fault-injection spec '" + spec +
                    "': empty pass name");
  out.pass = parts[0];
  if (parts.size() >= 2 && !parts[1].empty()) out.unit = parts[1];
  if (parts.size() == 3) {
    const std::string& n = parts[2];
    char* end = nullptr;
    long v = n.empty() ? 0 : std::strtol(n.c_str(), &end, 10);
    if (n.empty() || end == nullptr || *end != '\0' || v < 1)
      throw UserError("bad fault-injection spec '" + spec +
                      "': site index must be a positive integer");
    out.site = v;
  }
  // Unit names are canonicalized to lower case in the IR; match likewise.
  for (char& c : out.unit)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

void arm(const InjectionSpec& spec) {
  if (FaultInjector* inj = FaultInjector::current()) inj->arm(spec);
}

void disarm() {
  if (FaultInjector* inj = FaultInjector::current()) inj->disarm();
}

bool armed() {
  FaultInjector* inj = FaultInjector::current();
  return inj != nullptr && inj->armed();
}

void set_scope(const std::string& pass, const std::string& unit) {
  if (FaultInjector* inj = FaultInjector::current())
    inj->set_scope(pass, unit);
}

void clear_scope() {
  if (FaultInjector* inj = FaultInjector::current()) inj->clear_scope();
}

bool consume_boundary_fault() {
  FaultInjector* inj = FaultInjector::current();
  return inj != nullptr && inj->consume_boundary_fault();
}

long sites_in_scope() {
  FaultInjector* inj = FaultInjector::current();
  return inj != nullptr ? inj->sites_in_scope() : 0;
}

}  // namespace fault

void FaultInjector::arm(const fault::InjectionSpec& spec) {
  spec_ = spec;
  armed_ = true;
  scope_active_ = false;
  scope_matches_ = false;
  fired_in_scope_ = false;
  sites_in_scope_ = 0;
}

void FaultInjector::disarm() {
  spec_ = fault::InjectionSpec{};
  armed_ = false;
  scope_active_ = false;
  scope_matches_ = false;
  fired_in_scope_ = false;
  sites_in_scope_ = 0;
}

void FaultInjector::set_scope(const std::string& pass,
                              const std::string& unit) {
  scope_active_ = true;
  scope_matches_ =
      spec_matches(spec_.pass, pass) && spec_matches(spec_.unit, unit);
  fired_in_scope_ = false;
  sites_in_scope_ = 0;
}

void FaultInjector::clear_scope() {
  scope_active_ = false;
  scope_matches_ = false;
  sites_in_scope_ = 0;
}

bool FaultInjector::consume_boundary_fault() {
  if (!armed_ || !scope_active_ || !scope_matches_ || fired_in_scope_)
    return false;
  fired_in_scope_ = true;
  return true;
}

bool FaultInjector::tick() {
  if (!armed_ || !scope_active_ || !scope_matches_ || fired_in_scope_)
    return false;
  if (++sites_in_scope_ != spec_.site) return false;
  fired_in_scope_ = true;
  return true;
}

FaultInjector* FaultInjector::current() { return tls_injector; }

FaultInjector::Scope::Scope(FaultInjector* injector) : prev_(tls_injector) {
  tls_injector = injector;
}

FaultInjector::Scope::~Scope() { tls_injector = prev_; }

namespace detail {

const char* const kInjectedCond = "fault-injection";

bool fault_tick_slow() { return tls_injector->tick(); }

void assert_failed(const char* cond, const char* file, int line,
                   const std::string& msg) {
  throw InternalError(cond, file, line, msg);
}

}  // namespace detail

}  // namespace polaris
