#include "support/rational.h"

#include <ostream>

namespace polaris {

namespace {
__int128 gcd128(__int128 a, __int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    __int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::int64_t narrow(__int128 v) {
  p_assert_msg(v <= INT64_MAX && v >= INT64_MIN, "rational overflow");
  return static_cast<std::int64_t>(v);
}
}  // namespace

Rational Rational::make(__int128 n, __int128 d) {
  p_assert_msg(d != 0, "rational with zero denominator");
  if (d < 0) {
    n = -n;
    d = -d;
  }
  __int128 g = gcd128(n, d);
  if (g > 1) {
    n /= g;
    d /= g;
  }
  Rational r;
  r.num_ = narrow(n);
  r.den_ = narrow(d);
  return r;
}

Rational::Rational(std::int64_t n, std::int64_t d) {
  *this = make(n, d);
}

std::int64_t Rational::as_integer() const {
  p_assert_msg(den_ == 1, "rational is not an integer");
  return num_;
}

Rational Rational::operator-() const { return make(-__int128(num_), den_); }

Rational Rational::operator+(const Rational& o) const {
  return make(__int128(num_) * o.den_ + __int128(o.num_) * den_,
              __int128(den_) * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  return make(__int128(num_) * o.den_ - __int128(o.num_) * den_,
              __int128(den_) * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  return make(__int128(num_) * o.num_, __int128(den_) * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  p_assert_msg(o.num_ != 0, "rational division by zero");
  return make(__int128(num_) * o.den_, __int128(den_) * o.num_);
}

bool Rational::operator<(const Rational& o) const {
  return __int128(num_) * o.den_ < __int128(o.num_) * den_;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  os << r.num();
  if (r.den() != 1) os << "/" << r.den();
  return os;
}

}  // namespace polaris
