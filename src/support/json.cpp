#include "support/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/assert.h"

namespace polaris {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind = Kind::Bool;
  v.bool_value = b;
  return v;
}

JsonValue JsonValue::num(double d) {
  JsonValue v;
  v.kind = Kind::Number;
  v.number = d;
  return v;
}

JsonValue JsonValue::num(std::int64_t i) {
  return num(static_cast<double>(i));
}

JsonValue JsonValue::num(std::uint64_t u) {
  return num(static_cast<double>(u));
}

JsonValue JsonValue::str(std::string s) {
  JsonValue v;
  v.kind = Kind::String;
  v.string_value = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind = Kind::Array;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind = Kind::Object;
  return v;
}

JsonValue& JsonValue::add(JsonValue v) {
  p_assert(kind == Kind::Array);
  items.push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  p_assert(kind == Kind::Object);
  members.emplace_back(key, std::move(v));
  return *this;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

namespace {

void serialize_number(double d, std::string* out) {
  // Integers (the overwhelmingly common case in our reports) print without
  // a decimal point so they round-trip textually.
  if (d == std::floor(d) && std::abs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    *out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    *out += buf;
  }
}

void serialize_rec(const JsonValue& v, std::string* out) {
  switch (v.kind) {
    case JsonValue::Kind::Null:
      *out += "null";
      break;
    case JsonValue::Kind::Bool:
      *out += v.bool_value ? "true" : "false";
      break;
    case JsonValue::Kind::Number:
      serialize_number(v.number, out);
      break;
    case JsonValue::Kind::String:
      *out += '"';
      *out += json_escape(v.string_value);
      *out += '"';
      break;
    case JsonValue::Kind::Array: {
      *out += '[';
      bool first = true;
      for (const JsonValue& item : v.items) {
        if (!first) *out += ',';
        first = false;
        serialize_rec(item, out);
      }
      *out += ']';
      break;
    }
    case JsonValue::Kind::Object: {
      *out += '{';
      bool first = true;
      for (const auto& [key, value] : v.members) {
        if (!first) *out += ',';
        first = false;
        *out += '"';
        *out += json_escape(key);
        *out += "\":";
        serialize_rec(value, out);
      }
      *out += '}';
      break;
    }
  }
}

/// Strict recursive-descent JSON parser over a string.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw UserError("JSON parse error at offset " + std::to_string(pos_) +
                    ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    if (depth_ > 200) fail("nesting too deep");
    skip_ws();
    char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue::str(parse_string());
    if (c == 't') {
      if (!literal("true")) fail("bad literal");
      return JsonValue::boolean(true);
    }
    if (c == 'f') {
      if (!literal("false")) fail("bad literal");
      return JsonValue::boolean(false);
    }
    if (c == 'n') {
      if (!literal("null")) fail("bad literal");
      return JsonValue::null();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  JsonValue parse_object() {
    expect('{');
    ++depth_;
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    --depth_;
    return obj;
  }

  JsonValue parse_array() {
    expect('[');
    ++depth_;
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return arr;
    }
    while (true) {
      arr.add(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      break;
    }
    --depth_;
    return arr;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape digit");
            }
            // Only BMP code points are emitted by our writer; encode UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
      ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail("bad number");
    return JsonValue::num(std::strtod(text_.c_str() + start, nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string JsonValue::serialize() const {
  std::string out;
  serialize_rec(*this, &out);
  return out;
}

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw UserError("cannot open JSON file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_json(buf.str());
  } catch (const UserError& e) {
    throw UserError(path + ": " + e.what());
  }
}

std::vector<JsonValue> parse_jsonl(const std::string& text) {
  std::vector<JsonValue> out;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    bool blank = true;
    for (char c : line)
      if (c != ' ' && c != '\t' && c != '\r') blank = false;
    if (blank) continue;
    try {
      out.push_back(parse_json(line));
    } catch (const UserError& e) {
      throw UserError("JSONL line " + std::to_string(lineno) + ": " +
                      e.what());
    }
  }
  return out;
}

}  // namespace polaris
