// CompileContext: the per-compilation home of everything that used to be
// process-global compiler state.
//
// PRs 1-3 grew statistics, tracing, and fault injection as singletons
// (`StatisticRegistry::instance()`, a static trace collector behind a
// `g_on` flag, a `fault_armed_flag`).  That made compilations interfere:
// two Compiler instances in one process shared counters, and the
// ROADMAP's "parallel per-unit pass execution" item was impossible —
// every worker would race on the same mutable state.  CompileContext
// inverts the ownership: each compilation (and, under `-jobs=N`, each
// per-unit shard) owns its own
//
//   - StatisticRegistry   (POLARIS_STATISTIC counter values)
//   - trace::TraceCollector (span/instant/counter event buffer)
//   - FaultInjector       (deterministic fault-injection arming + scope)
//   - a Diagnostics sink  (bound to the CompileReport's sink, with an
//     owned fallback so a context is usable before a report exists)
//
// The context is threaded *explicitly* through the driver, pass manager,
// passes, dependence testers, GSA, and verifier.  Two kinds of call sites
// cannot take a parameter — `++statistic` expressions and `p_assert`
// macros — so the context is additionally bound to the executing thread
// (CompileContext::Scope), and those sites reach it through
// CompileContext::current() / FaultInjector::current().  A thread outside
// any Scope sees null and the sites degrade to no-ops.
//
// Shard protocol (see driver/pass_manager.cpp): each unit shard gets a
// fresh CompileContext whose trace collector shares the parent's time
// epoch; when the unit finishes, the parent calls merge_shard() in unit
// order, making every merged artifact deterministic regardless of worker
// count.  A faulted unit unwinds only its shard's state.
#pragma once

#include <memory>

#include "support/assert.h"
#include "support/diagnostics.h"
#include "support/governor.h"
#include "support/statistic.h"
#include "support/trace.h"
#include "support/worker_pool.h"

namespace polaris {

class CompileContext {
 public:
  CompileContext() = default;
  CompileContext(const CompileContext&) = delete;
  CompileContext& operator=(const CompileContext&) = delete;

  StatisticRegistry& stats() { return stats_; }
  const StatisticRegistry& stats() const { return stats_; }

  trace::TraceCollector& trace() { return trace_; }
  const trace::TraceCollector& trace() const { return trace_; }

  FaultInjector& fault() { return fault_; }
  const FaultInjector& fault() const { return fault_; }

  /// Resource ceilings + degradation-event record for this compilation
  /// (or this unit shard).  Symbolic code reaches it through
  /// ResourceGovernor::current(); merge_shard folds shard events and the
  /// fuel meter back in unit order.
  ResourceGovernor& governor() { return governor_; }
  const ResourceGovernor& governor() const { return governor_; }

  /// The diagnostics sink passes write remarks into.  Defaults to a sink
  /// owned by the context; the driver rebinds it to the CompileReport's
  /// sink so diagnostics land directly in the report.
  Diagnostics& diags() { return *diags_; }
  void bind_diagnostics(Diagnostics& sink) { diags_ = &sink; }

  /// The compilation's persistent worker pool, created lazily on first
  /// use and shared by every parallel phase of this compile (per-unit
  /// parsing, unit-scope pass groups).  Only the thread driving the
  /// compilation may call this — per-unit shard contexts never create
  /// pools (their jobs count is pinned to 1), so parallel regions cannot
  /// nest.
  WorkerPool& pool() {
    if (pool_ == nullptr) pool_ = std::make_unique<WorkerPool>();
    return *pool_;
  }

  /// Folds a finished unit shard into this context: counter values are
  /// summed, trace events appended (shards share this context's epoch, so
  /// timestamps stay on one timeline, and any spans the shard left open —
  /// e.g. after a fault unwound its worker — are closed first).  Shard
  /// diagnostics travel in the shard's CompileReport fragment, merged by
  /// the pass manager; fault-injection state is per-shard and never
  /// merges.  Call in unit order for deterministic output.
  void merge_shard(CompileContext& shard);

  /// Context bound to the calling thread (null outside any Scope) — the
  /// bridge for `++statistic` sites, which cannot take a parameter.
  static CompileContext* current();

  /// RAII thread binding: makes `ctx` the thread's current context and
  /// its FaultInjector the thread's current injector.  Nests; destruction
  /// restores the previous binding.  Pass null to explicitly unbind.
  class Scope {
   public:
    explicit Scope(CompileContext* ctx);
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope();

   private:
    CompileContext* prev_;
    FaultInjector::Scope fault_scope_;
  };

 private:
  StatisticRegistry stats_;
  trace::TraceCollector trace_;
  FaultInjector fault_;
  ResourceGovernor governor_;
  Diagnostics owned_diags_;
  Diagnostics* diags_ = &owned_diags_;
  std::unique_ptr<WorkerPool> pool_;  ///< lazy; see pool()
};

}  // namespace polaris
