#include "support/options.h"

namespace polaris {

Options Options::polaris() { return Options{}; }

Options Options::baseline() {
  Options o;
  o.inline_expansion = false;
  o.cascaded_induction = false;
  o.triangular_induction = false;
  o.multiplicative_induction = false;
  o.histogram_reductions = false;
  o.array_privatization = false;
  o.range_test = false;
  o.gsa_queries = false;
  o.pure_functions = false;
  o.strength_reduction = false;
  o.runtime_pd_test = false;
  return o;
}

void Options::set(const std::string& name, bool value) {
  if (name == "inline_expansion") inline_expansion = value;
  else if (name == "induction_subst") induction_subst = value;
  else if (name == "cascaded_induction") cascaded_induction = value;
  else if (name == "triangular_induction") triangular_induction = value;
  else if (name == "multiplicative_induction") multiplicative_induction = value;
  else if (name == "reductions") reductions = value;
  else if (name == "histogram_reductions") histogram_reductions = value;
  else if (name == "scalar_privatization") scalar_privatization = value;
  else if (name == "array_privatization") array_privatization = value;
  else if (name == "range_test") range_test = value;
  else if (name == "gcd_test") gcd_test = value;
  else if (name == "banerjee_test") banerjee_test = value;
  else if (name == "gsa_queries") gsa_queries = value;
  else if (name == "forward_substitution") forward_substitution = value;
  else if (name == "loop_normalization") loop_normalization = value;
  else if (name == "pure_functions") pure_functions = value;
  else if (name == "strength_reduction") strength_reduction = value;
  else if (name == "runtime_pd_test") runtime_pd_test = value;
  else if (name == "fault_recovery") fault_recovery = value;
  else if (name == "verify_each") verify_each = value;
  else if (name == "symbolic_canon_cache") symbolic_canon_cache = value;
  else if (name == "degradation_ladder") degradation_ladder = value;
  else p_assert_msg(false, "unknown option: " + name);
}

}  // namespace polaris
