// LLVM-style static statistic registry.
//
// Analyses scattered ad-hoc counters through diagnostics strings; this
// registry makes them first-class: a POLARIS_STATISTIC at namespace scope
// in a .cpp defines a named counter that registers itself once, costs one
// uint64 increment per event, and is dumped by `polaris -stats`, embedded
// in CompileReport::stats (as per-compilation deltas), and serialized into
// the `-report-json` payload.
//
// Rollback discipline: counters are process-global and monotonically
// increasing, so the fault-isolation layer snapshots all values before a
// pass invocation and restores them when the pass is rolled back — a
// failed pass leaves no orphan counts (see StatisticSnapshot).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace polaris {

/// One registered counter.  Construct only via POLARIS_STATISTIC (the
/// registry keeps a pointer for the process lifetime).
class Statistic {
 public:
  Statistic(const char* component, const char* name, const char* desc);
  Statistic(const Statistic&) = delete;
  Statistic& operator=(const Statistic&) = delete;

  Statistic& operator++() {
    ++value_;
    return *this;
  }
  Statistic& operator+=(std::uint64_t n) {
    value_ += n;
    return *this;
  }

  std::uint64_t value() const { return value_; }
  const char* component() const { return component_; }
  const char* name() const { return name_; }
  const char* desc() const { return desc_; }

 private:
  friend class StatisticRegistry;
  const char* component_;
  const char* name_;
  const char* desc_;
  std::uint64_t value_ = 0;
};

/// A named counter value (registry dump / per-compilation delta).
struct StatisticValue {
  std::string component;
  std::string name;
  std::string desc;
  std::uint64_t value = 0;
};

/// Raw values of every registered counter at one instant, in registration
/// order.  Restoring also zeroes counters registered *after* the snapshot
/// was taken (they can only have been touched by the rolled-back code).
using StatisticSnapshot = std::vector<std::uint64_t>;

class StatisticRegistry {
 public:
  static StatisticRegistry& instance();

  /// Current value of every registered counter (including zeros).
  std::vector<StatisticValue> values() const;

  StatisticSnapshot snapshot() const;
  void restore(const StatisticSnapshot& snap);

  /// Per-counter deltas `current - base`, non-zero entries only, in
  /// registration order.  `base` must be an earlier snapshot.
  std::vector<StatisticValue> delta_since(const StatisticSnapshot& base) const;

  /// Zeroes every counter (test isolation).
  void reset();

  std::size_t size() const { return stats_.size(); }

 private:
  friend class Statistic;
  void register_stat(Statistic* s) { stats_.push_back(s); }
  std::vector<Statistic*> stats_;
};

}  // namespace polaris

/// Defines a file-local statistic counter `NAME` under `COMPONENT` (a
/// string literal naming the pass or analysis).  Use at namespace scope:
///
///   POLARIS_STATISTIC("rangetest", pairs_proven,
///                     "pairs proven independent by the range test");
///   ...
///   ++pairs_proven;
#define POLARIS_STATISTIC(COMPONENT, NAME, DESC) \
  static ::polaris::Statistic NAME(COMPONENT, #NAME, DESC)
