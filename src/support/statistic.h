// LLVM-style statistic counters, with per-compile storage.
//
// Analyses scattered ad-hoc counters through diagnostics strings; this
// layer makes them first-class: a POLARIS_STATISTIC at namespace scope in
// a .cpp defines a named counter *descriptor* that registers itself once
// in the immutable StatisticCatalog.  The counter's VALUE is not global:
// it lives in the StatisticRegistry owned by the CompileContext of the
// compilation (or unit shard) the current thread is working on, so
// concurrent per-unit pipelines count independently and a `++counter`
// outside any compilation is a no-op.
//
// Rollback discipline: values are monotonically increasing within one
// registry, so the fault-isolation layer snapshots the shard's registry
// before a pass invocation and restores it when the pass is rolled back —
// a failed pass leaves no orphan counts (see StatisticSnapshot).  Shard
// registries are summed into the parent compile's registry in unit order
// when a parallel unit group finishes (CompileContext::merge_shard).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace polaris {

class StatisticRegistry;

/// One registered counter descriptor.  Construct only via
/// POLARIS_STATISTIC at namespace scope: registration happens during
/// static initialization (single-threaded, before main), after which the
/// catalog never changes — the descriptors carry no mutable state.
class Statistic {
 public:
  Statistic(const char* component, const char* name, const char* desc);
  Statistic(const Statistic&) = delete;
  Statistic& operator=(const Statistic&) = delete;

  /// Bumps this counter in the CompileContext bound to the current thread
  /// (no-op when the thread is not inside a compilation).
  Statistic& operator++();
  Statistic& operator+=(std::uint64_t n);

  std::size_t id() const { return id_; }
  const char* component() const { return component_; }
  const char* name() const { return name_; }
  const char* desc() const { return desc_; }

 private:
  const char* component_;
  const char* name_;
  const char* desc_;
  std::size_t id_;  ///< dense index into StatisticCatalog / registry values
};

/// The immutable process-wide list of counter descriptors, in registration
/// order.  Append-only during static initialization; read-only afterwards,
/// so concurrent compilations may consult it without synchronization.
class StatisticCatalog {
 public:
  static const std::vector<const Statistic*>& all();
  static std::size_t size() { return all().size(); }

 private:
  friend class Statistic;
  static std::vector<const Statistic*>& mutable_all();
};

/// A named counter value (registry dump / per-compilation delta).
struct StatisticValue {
  std::string component;
  std::string name;
  std::string desc;
  std::uint64_t value = 0;
};

/// Raw values of every cataloged counter at one instant, in catalog
/// order.
using StatisticSnapshot = std::vector<std::uint64_t>;

/// Per-compilation (or per-unit-shard) counter values, indexed by
/// Statistic::id().  Owned by a CompileContext; never shared between
/// threads.
class StatisticRegistry {
 public:
  StatisticRegistry();

  void bump(const Statistic& s, std::uint64_t n = 1);
  std::uint64_t value(const Statistic& s) const;

  /// Current value of every cataloged counter (including zeros).
  std::vector<StatisticValue> values() const;

  StatisticSnapshot snapshot() const;
  void restore(const StatisticSnapshot& snap);

  /// Per-counter deltas `current - base`, non-zero entries only, in
  /// catalog order.  `base` must be an earlier snapshot of this registry.
  std::vector<StatisticValue> delta_since(const StatisticSnapshot& base) const;

  /// Adds every counter of `shard` into this registry (the deterministic
  /// unit-order shard merge).
  void merge(const StatisticRegistry& shard);

  /// Zeroes every counter (test isolation).
  void reset();

  std::size_t size() const { return values_.size(); }

 private:
  std::vector<std::uint64_t> values_;
};

}  // namespace polaris

/// Defines a file-local statistic counter `NAME` under `COMPONENT` (a
/// string literal naming the pass or analysis).  Use at namespace scope:
///
///   POLARIS_STATISTIC("rangetest", pairs_proven,
///                     "pairs proven independent by the range test");
///   ...
///   ++pairs_proven;   // counts into the current thread's CompileContext
#define POLARIS_STATISTIC(COMPONENT, NAME, DESC) \
  static ::polaris::Statistic NAME(COMPONENT, #NAME, DESC)
