#include "support/diagnostics.h"

#include <algorithm>
#include <ostream>

#include "support/json.h"

namespace polaris {

const char* to_string(RemarkKind kind) {
  switch (kind) {
    case RemarkKind::None: return "none";
    case RemarkKind::Parallelized: return "parallelized";
    case RemarkKind::Missed: return "missed";
    case RemarkKind::Analysis: return "analysis";
  }
  return "?";
}

void Diagnostics::note(const std::string& pass, const std::string& context,
                       const std::string& message) {
  diags_.push_back({DiagSeverity::Note, pass, context, message});
}

void Diagnostics::warning(const std::string& pass, const std::string& context,
                          const std::string& message) {
  diags_.push_back({DiagSeverity::Warning, pass, context, message});
}

void Diagnostics::error(const std::string& pass, const std::string& context,
                        const std::string& message) {
  diags_.push_back({DiagSeverity::Error, pass, context, message});
}

void Diagnostics::remark(RemarkKind kind, const std::string& pass,
                         const std::string& context,
                         const std::string& reason,
                         const std::string& message,
                         std::vector<RemarkArg> args) {
  Diagnostic d;
  d.severity = DiagSeverity::Note;
  d.pass = pass;
  d.context = context;
  d.message = message;
  d.remark = kind;
  d.reason = reason;
  d.args = std::move(args);
  diags_.push_back(std::move(d));
}

void Diagnostics::truncate(std::size_t n) {
  if (n < diags_.size()) diags_.resize(n);
}

bool Diagnostics::has_errors() const {
  return count(DiagSeverity::Error) > 0;
}

std::size_t Diagnostics::count(DiagSeverity sev) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [&](const Diagnostic& d) { return d.severity == sev; }));
}

std::vector<const Diagnostic*> Diagnostics::remarks() const {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : diags_)
    if (d.remark != RemarkKind::None) out.push_back(&d);
  return out;
}

bool Diagnostics::contains(const std::string& needle) const {
  return std::any_of(diags_.begin(), diags_.end(), [&](const Diagnostic& d) {
    return d.message.find(needle) != std::string::npos;
  });
}

void Diagnostics::print(std::ostream& os) const {
  for (const Diagnostic& d : diags_) {
    switch (d.severity) {
      case DiagSeverity::Note: os << "note"; break;
      case DiagSeverity::Warning: os << "warning"; break;
      case DiagSeverity::Error: os << "error"; break;
    }
    os << " [" << d.pass << "] " << d.context << ": " << d.message << "\n";
  }
}

void Diagnostics::print_remarks(std::ostream& os) const {
  for (const Diagnostic* d : remarks()) {
    JsonValue obj = JsonValue::object();
    obj.set("kind", JsonValue::str(to_string(d->remark)));
    obj.set("pass", JsonValue::str(d->pass));
    obj.set("context", JsonValue::str(d->context));
    obj.set("reason", JsonValue::str(d->reason));
    obj.set("message", JsonValue::str(d->message));
    JsonValue args = JsonValue::object();
    for (const RemarkArg& a : d->args)
      args.set(a.key, JsonValue::str(a.value));
    obj.set("args", std::move(args));
    os << obj.serialize() << "\n";
  }
}

}  // namespace polaris
