#include "support/diagnostics.h"

#include <algorithm>
#include <ostream>

namespace polaris {

void Diagnostics::note(const std::string& pass, const std::string& context,
                       const std::string& message) {
  diags_.push_back({DiagSeverity::Note, pass, context, message});
}

void Diagnostics::warning(const std::string& pass, const std::string& context,
                          const std::string& message) {
  diags_.push_back({DiagSeverity::Warning, pass, context, message});
}

void Diagnostics::error(const std::string& pass, const std::string& context,
                        const std::string& message) {
  diags_.push_back({DiagSeverity::Error, pass, context, message});
}

void Diagnostics::truncate(std::size_t n) {
  if (n < diags_.size()) diags_.resize(n);
}

bool Diagnostics::has_errors() const {
  return count(DiagSeverity::Error) > 0;
}

std::size_t Diagnostics::count(DiagSeverity sev) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [&](const Diagnostic& d) { return d.severity == sev; }));
}

bool Diagnostics::contains(const std::string& needle) const {
  return std::any_of(diags_.begin(), diags_.end(), [&](const Diagnostic& d) {
    return d.message.find(needle) != std::string::npos;
  });
}

void Diagnostics::print(std::ostream& os) const {
  for (const Diagnostic& d : diags_) {
    switch (d.severity) {
      case DiagSeverity::Note: os << "note"; break;
      case DiagSeverity::Warning: os << "warning"; break;
      case DiagSeverity::Error: os << "error"; break;
    }
    os << " [" << d.pass << "] " << d.context << ": " << d.message << "\n";
  }
}

}  // namespace polaris
