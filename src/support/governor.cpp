#include "support/governor.h"

#include <algorithm>
#include <sstream>

#include "support/context.h"
#include "support/options.h"

namespace polaris {

const char* to_string(GovernorTrigger t) {
  switch (t) {
    case GovernorTrigger::PassBudget: return "pass-budget";
    case GovernorTrigger::CompileFuel: return "compile-fuel";
    case GovernorTrigger::PolyTerms: return "poly-terms";
    case GovernorTrigger::AtomCeiling: return "atom-ceiling";
  }
  return "?";
}

GovernorLimits limits_from_options(const Options& opts) {
  GovernorLimits l;
  if (opts.compile_budget_ms > 0.0)
    l.fuel = static_cast<std::uint64_t>(opts.compile_budget_ms *
                                        static_cast<double>(kFuelTicksPerMs));
  if (l.fuel == 0 && opts.compile_budget_ms > 0.0) l.fuel = 1;
  if (opts.max_poly_terms > 0)
    l.max_poly_terms = static_cast<std::size_t>(opts.max_poly_terms);
  if (opts.max_atoms_per_unit > 0)
    l.max_atoms = static_cast<std::size_t>(opts.max_atoms_per_unit);
  return l;
}

const char* ladder_rung_name(int rung) {
  switch (rung) {
    case 0: return "full";
    case 1: return "reduced";
    case 2: return "floor";
  }
  return "?";
}

Options degraded_options(const Options& base, int rung) {
  Options o = base;
  if (rung <= 0) return o;
  if (rung == 1) {
    // "reduced": quarter the permutation search, cap the guided budget,
    // halve GSA substitution depth, bound simplifier recursion.
    o.max_loop_permutations = std::max(1, base.max_loop_permutations / 4);
    o.rangetest_max_permutations =
        base.rangetest_max_permutations > 0
            ? std::min(base.rangetest_max_permutations, 8)
            : 8;
    o.max_gsa_subst_depth = std::max(1, base.max_gsa_subst_depth / 2);
    o.max_simplify_depth = base.max_simplify_depth > 0
                               ? std::min(base.max_simplify_depth, 16)
                               : 16;
    return o;
  }
  // "floor": linear dependence tests only (the "current compiler"
  // baseline shape), minimal search everywhere.  Still correct — every
  // switch here only forgoes optimization.
  o.range_test = false;
  o.max_loop_permutations = 1;
  o.rangetest_max_permutations = 1;
  o.max_gsa_subst_depth = 1;
  o.max_simplify_depth = 4;
  return o;
}

void ResourceGovernor::configure(const GovernorLimits& limits) {
  fuel_limit_ = limits.fuel;
  max_poly_terms_ = limits.max_poly_terms;
  max_atoms_ = limits.max_atoms;
  recompute_active();
}

void ResourceGovernor::set_fuel_limit(std::uint64_t fuel) {
  fuel_limit_ = fuel;
  recompute_active();
}

void ResourceGovernor::set_simplify_depth_limit(int depth) {
  simplify_depth_ = depth;
  recompute_active();
}

void ResourceGovernor::recompute_active() {
  active_ = fuel_limit_ != 0 || max_poly_terms_ != 0 || max_atoms_ != 0 ||
            simplify_depth_ != 0;
}

ResourceGovernor* ResourceGovernor::current() {
  CompileContext* cc = CompileContext::current();
  if (cc == nullptr) return nullptr;
  ResourceGovernor& g = cc->governor();
  return g.active() ? &g : nullptr;
}

void ResourceGovernor::note_trip(GovernorTrigger t) {
  ++trips_[static_cast<int>(t)];
}

std::uint64_t ResourceGovernor::trip_count(GovernorTrigger t) const {
  return trips_[static_cast<int>(t)];
}

void ResourceGovernor::charge(std::uint64_t ticks) {
  const std::uint64_t before = fuel_spent_;
  fuel_spent_ = before + ticks < before ? ~std::uint64_t{0} : before + ticks;
  // Every charge past the limit throws, not just the first crossing: an
  // exhausted shard stays exhausted, so each later ladder attempt trips
  // immediately and deterministically.
  if (fuel_limit_ != 0 && fuel_spent_ >= fuel_limit_) {
    note_trip(GovernorTrigger::CompileFuel);
    std::ostringstream os;
    os << "compile fuel exhausted (" << fuel_spent_ << " of " << fuel_limit_
       << " ticks)";
    throw ResourceBlowup(GovernorTrigger::CompileFuel, os.str());
  }
}

void ResourceGovernor::check_poly_terms(std::size_t terms) {
  if (max_poly_terms_ != 0 && terms > max_poly_terms_) {
    note_trip(GovernorTrigger::PolyTerms);
    std::ostringstream os;
    os << "polynomial grew to " << terms << " terms, ceiling "
       << max_poly_terms_;
    throw ResourceBlowup(GovernorTrigger::PolyTerms, os.str());
  }
}

void ResourceGovernor::check_atoms(std::size_t atoms) {
  if (max_atoms_ != 0 && atoms > max_atoms_) {
    note_trip(GovernorTrigger::AtomCeiling);
    std::ostringstream os;
    os << "atom table grew to " << atoms << " atoms, ceiling " << max_atoms_;
    throw ResourceBlowup(GovernorTrigger::AtomCeiling, os.str());
  }
}

std::uint64_t ResourceGovernor::shard_fuel_share(std::size_t n_units) const {
  if (fuel_limit_ == 0) return 0;
  if (n_units == 0) n_units = 1;
  const std::uint64_t share = fuel_remaining() / n_units;
  return share == 0 ? 1 : share;
}

void ResourceGovernor::add_spent(std::uint64_t ticks) {
  fuel_spent_ = fuel_spent_ + ticks < fuel_spent_ ? ~std::uint64_t{0}
                                                  : fuel_spent_ + ticks;
}

void ResourceGovernor::set_scope(const std::string& pass,
                                 const std::string& unit) {
  scope_pass_ = pass;
  scope_unit_ = unit;
}

void ResourceGovernor::clear_scope() {
  scope_pass_.clear();
  scope_unit_.clear();
}

void ResourceGovernor::record_event(DegradationEvent ev) {
  events_.push_back(std::move(ev));
}

bool ResourceGovernor::note_bailout(const char* site,
                                    GovernorTrigger trigger) {
  const char* trig = polaris::to_string(trigger);
  // Aggregate into the most recent matching event: bail-outs repeat
  // per-query (one hostile ceiling can trip hundreds of pair tests), and
  // one counted event per (pass, unit, site, trigger) run keeps the
  // report readable and byte-deterministic.
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->action == "conservative-bailout" && it->site == site &&
        it->trigger == trig && it->pass == scope_pass_ &&
        it->unit == scope_unit_) {
      ++it->count;
      return false;
    }
  }
  DegradationEvent ev;
  ev.pass = scope_pass_;
  ev.unit = scope_unit_;
  ev.trigger = trig;
  ev.action = "conservative-bailout";
  ev.site = site;
  ev.detail = std::string(site) + " returned the conservative answer";
  events_.push_back(std::move(ev));
  return true;
}

void ResourceGovernor::truncate_events(std::size_t mark) {
  if (mark < events_.size())
    events_.resize(mark);
}

void note_conservative_bailout(const char* site, const ResourceBlowup& b) {
  CompileContext* cc = CompileContext::current();
  if (cc == nullptr) return;
  ResourceGovernor& g = cc->governor();
  if (!g.note_bailout(site, b.trigger())) return;
  cc->diags().remark(
      RemarkKind::Analysis, "governor",
      g.scope_pass().empty() ? std::string(site)
                             : g.scope_pass() + "/" + g.scope_unit(),
      "resource-bailout",
      std::string(site) + " hit a resource ceiling and returned the "
          "conservative answer: " + b.detail(),
      {{"site", site}, {"trigger", polaris::to_string(b.trigger())}});
}

void ResourceGovernor::absorb(ResourceGovernor& shard) {
  add_spent(shard.fuel_spent_);
  for (int i = 0; i < 4; ++i) trips_[i] += shard.trips_[i];
  for (DegradationEvent& ev : shard.events_)
    events_.push_back(std::move(ev));
  shard.events_.clear();
}

}  // namespace polaris
