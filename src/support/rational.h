// Exact rational arithmetic for the symbolic kernel.
//
// The range test works with forward differences of polynomial subscript
// expressions such as (i*(n^2+n) + j^2 - j)/2 (TRFD, Figure 2 of the paper).
// Representing the division exactly requires rational coefficients; this
// small value type provides them with overflow checking.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <numeric>

#include "support/assert.h"

namespace polaris {

/// An exact rational number num/den with den > 0 and gcd(num,den) == 1.
/// All operations check for 64-bit overflow via __int128 intermediates.
class Rational {
 public:
  constexpr Rational() : num_(0), den_(1) {}
  Rational(std::int64_t n) : num_(n), den_(1) {}  // NOLINT: implicit by design
  Rational(std::int64_t n, std::int64_t d);

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  bool is_zero() const { return num_ == 0; }
  bool is_one() const { return num_ == 1 && den_ == 1; }
  bool is_integer() const { return den_ == 1; }
  /// Requires is_integer().
  std::int64_t as_integer() const;

  int sign() const { return num_ > 0 ? 1 : (num_ < 0 ? -1 : 0); }

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Requires o != 0.
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return *this < o || *this == o; }
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return o <= *this; }

  double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

 private:
  static Rational make(__int128 n, __int128 d);

  std::int64_t num_;
  std::int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace polaris
