#include "support/string_util.h"

#include <algorithm>
#include <cctype>

namespace polaris {

std::string to_lower(const std::string& s) {
  std::string r = s;
  std::transform(r.begin(), r.end(), r.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return r;
}

std::string to_upper(const std::string& s) {
  std::string r = s;
  std::transform(r.begin(), r.end(), r.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return r;
}

std::string trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string join(const std::vector<std::string>& pieces,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

}  // namespace polaris
