// Compiler switch registry.
//
// Polaris exposes user switches for each major transformation (the paper
// notes, e.g., that reduction parallelization may be disabled because
// partial-sum reassociation can change floating-point results).  Options is
// a plain value type: the driver owns one, passes receive it by const
// reference.
#pragma once

#include <string>

#include "support/assert.h"

namespace polaris {

struct Options {
  // --- analysis / transformation switches ---------------------------------
  bool inline_expansion = true;    ///< interprocedural analysis via inlining
  bool induction_subst = true;     ///< induction variable substitution
  bool cascaded_induction = true;  ///< inductions of inductions (Fig. 1)
  bool triangular_induction = true;  ///< inductions in non-rectangular nests
  bool multiplicative_induction = true;  ///< geometric recurrences K = K*c
  bool reductions = true;          ///< reduction recognition/transformation
  bool histogram_reductions = true;  ///< array (histogram) reductions
  bool scalar_privatization = true;
  bool array_privatization = true;
  bool range_test = true;          ///< symbolic nonlinear dependence test
  bool gcd_test = true;
  bool banerjee_test = true;
  bool gsa_queries = true;         ///< demand-driven GSA backward substitution
  bool forward_substitution = true;  ///< propagate scalar defs into uses
  bool loop_normalization = true;  ///< rewrite constant-step loops to unit step
  bool pure_functions = true;      ///< calls to pure functions don't serialize
  bool strength_reduction = true;  ///< reduce substituted induction exprs
  bool runtime_pd_test = false;    ///< speculative run-time parallelization

  // --- limits --------------------------------------------------------------
  int max_inline_depth = 8;        ///< recursion guard for the inliner driver
  int max_gsa_subst_depth = 16;    ///< demand-driven substitution budget
  int max_loop_permutations = 24;  ///< range-test visitation orders tried
  /// Hard cap on fixed-subset masks tried per range-test query
  /// (`-rangetest-max-permutations=N`).  0 keeps the legacy enumeration
  /// (ascending masks bounded by 2 * max_loop_permutations).  N > 0 tries
  /// at most N masks in counter-guided order: popcount buckets ranked by
  /// the shard's observed proof successes (AnalysisManager histogram),
  /// ties broken toward fewer fixed loops, masks ascending within a
  /// bucket — so the budget is spent where proofs actually landed.
  int rangetest_max_permutations = 0;

  // --- resource governor ----------------------------------------------------
  /// Whole-compile budget (`-compile-budget-ms=N` / POLARIS_COMPILE_BUDGET_MS)
  /// enforced as *deterministic fuel*: N × kFuelTicksPerMs logical work
  /// ticks charged at symbolic-work sites, split equally across unit
  /// shards — so a budgeted compile degrades at identical points at any
  /// `-jobs=N` and the artifacts stay byte-identical.  0 disables.
  double compile_budget_ms = 0.0;
  /// Ceiling on any one Polynomial's term count (`-max-poly-terms=N` /
  /// POLARIS_MAX_POLY_TERMS).  A query whose polynomial would exceed it
  /// bails out conservatively (assume dependence / leave unsimplified).
  /// 0 disables.
  int max_poly_terms = 0;
  /// Ceiling on the per-shard AtomTable (`-max-atoms-per-unit=N` /
  /// POLARIS_MAX_ATOMS_PER_UNIT).  0 disables.
  int max_atoms_per_unit = 0;
  /// Simplifier recursion depth limit; 0 = unlimited.  Not exposed as a
  /// flag — the degradation ladder sets it on retry rungs.
  int max_simplify_depth = 0;
  /// Retry an over-budget (pass, unit) on cheaper ladder rungs (reduced,
  /// floor) before dropping the pass.  When false, overruns drop the pass
  /// immediately (the pre-ladder behavior).
  bool degradation_ladder = true;

  // --- symbolic engine ------------------------------------------------------
  /// Memoize Expression->Polynomial canonicalization in the (per-shard)
  /// AtomTable, invalidated through PreservedAnalyses.  Off is a
  /// debugging/benchmark mode; results are byte-identical either way.
  bool symbolic_canon_cache = true;

  // --- code generation ------------------------------------------------------
  enum class ReductionScheme { Blocked, Private, Expanded };
  ReductionScheme reduction_scheme = ReductionScheme::Private;

  // --- pipeline -------------------------------------------------------------
  /// Empty: the standard battery.  Otherwise a comma-separated `-passes=`
  /// spec ("constprop,doall") consumed by PassPipeline::from_options.
  std::string pipeline_spec;

  // --- fault isolation ------------------------------------------------------
  /// Roll a failing pass back to its pre-pass snapshot and continue with
  /// the remaining passes (the LRPD shape: degrade to "less optimized,
  /// still correct").  When false, pass failures propagate as
  /// InternalError, aborting the compile.
  bool fault_recovery = true;
  /// Run the structural IR verifier after every pass; violations are
  /// treated like assertion failures (rollback or abort per
  /// fault_recovery).  The verifier always runs once after the pipeline
  /// regardless of this switch.
  bool verify_each = false;
  /// Per-pass, per-unit wall-time budget in milliseconds; a pass exceeding
  /// it at the unit boundary is rolled back and reported like a fault.
  /// 0 disables the budget.
  double pass_budget_ms = 0.0;
  /// Deterministic fault-injection spec "PASS[:UNIT[:N]]" (empty: off);
  /// armed by the driver for the duration of the pipeline.
  std::string fault_inject;

  // --- parallel compilation -------------------------------------------------
  /// Worker threads for unit-scope pass groups (`-jobs=N` / POLARIS_JOBS).
  /// Units are independent after state isolation (CompileContext shards),
  /// so groups fan out over them; 1 = run shards inline on the driver
  /// thread.  Output is byte-identical for every N: shards merge in unit
  /// order.  The CLI validates and caps at hardware_concurrency().
  int jobs = 1;

  // --- observability --------------------------------------------------------
  /// When non-empty, the compiler collects a hierarchical span trace for
  /// the compilation and writes Chrome trace-event JSON here (`-trace=` /
  /// POLARIS_TRACE).  Empty: tracing fully disabled (one branch per site).
  std::string trace_path;

  /// "Current compiler" (PFA-like) baseline: linear tests only, scalar
  /// privatization only, simple inductions, no inlining, no range test.
  static Options baseline();
  /// Full Polaris configuration (the defaults above).
  static Options polaris();

  /// Sets a switch by name ("range_test", "reductions", ...); asserts on
  /// unknown names so tests catch typos.
  void set(const std::string& name, bool value);
};

}  // namespace polaris
