// A persistent work-stealing worker pool.
//
// PR 4's parallel pass execution spawned and joined a fresh
// std::vector<std::thread> for every unit-scope pass group — thread
// creation cost on every group, and no way for the parser to share the
// workers.  WorkerPool keeps the threads alive for the lifetime of its
// owner (CompileContext, for compilations) and runs *batches* of
// index-identified tasks:
//
//   pool.run(n_tasks, max_workers, [&](std::size_t i) { ... });
//
// Tasks are dealt round-robin into per-participant deques; a participant
// pops from the front of its own deque and, when empty, steals from the
// back of a victim's, so one heavy task (tfft2 is ~2x the suite median)
// stops capping batch latency — the stealing participants drain the rest.
// The calling thread participates as a worker, so `max_workers == 1`
// runs every task inline with no thread ever spawned or woken.
//
// Determinism contract: scheduling decides only *when* a task runs, never
// what it computes — tasks are identified by index and must write their
// results into index-addressed slots.  Nothing here (worker identity,
// steal order, timing) may leak into task output.
//
// Thread-binding note: the pool's threads carry no CompileContext /
// AtomTable / FaultInjector bindings.  A task that needs them (pass
// shards do, parser slices don't) binds its own RAII scopes inside the
// task body, exactly as it would on a spawned thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace polaris {

class WorkerPool {
 public:
  WorkerPool() = default;
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  /// Runs fn(0), fn(1), ..., fn(n_tasks-1), blocking until every task has
  /// finished.  At most `max_workers` tasks execute concurrently — the
  /// calling thread counts toward that and participates; missing threads
  /// are spawned on demand and persist for reuse by later batches.  Tasks
  /// must not call back into run() (batches don't nest), and fn must not
  /// let exceptions escape (workers have no frame to rethrow into; catch
  /// into an std::exception_ptr slot and rethrow after run() returns).
  void run(std::size_t n_tasks, int max_workers,
           const std::function<void(std::size_t)>& fn);

  /// Number of persistent threads created so far (tests/benchmarks).
  int threads_spawned() const;

 private:
  /// One participant's task deque.  Own pops come off the front, steals
  /// off the back, both under the deque's mutex — task granularity here
  /// is a whole (unit, pass-group) or parse slice, so lock traffic is
  /// negligible next to task cost.
  struct Deque {
    std::mutex mu;
    std::deque<std::size_t> tasks;
  };

  void worker_main(std::size_t self);
  bool pop_or_steal(std::size_t self, std::size_t n_participants,
                    std::size_t* out);
  void drain(std::size_t self, std::size_t n_participants,
             const std::function<void(std::size_t)>& fn);

  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<Deque>> deques_;  ///< index 0 = caller

  std::mutex mu_;
  std::condition_variable batch_cv_;  ///< workers: a new batch is ready
  std::condition_variable done_cv_;   ///< caller: remaining hit zero
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t remaining_ = 0;          ///< tasks not yet finished
  std::size_t draining_ = 0;           ///< workers currently inside drain()
  std::size_t participants_ = 0;       ///< deque count of current batch
  std::uint64_t batch_ = 0;            ///< generation counter
  bool shutdown_ = false;
};

}  // namespace polaris
