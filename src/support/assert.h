// Polaris assertion and internal-error machinery.
//
// The Polaris paper (Section 2) stresses "extensive error checking throughout
// the system through the liberal use of assertions": every assumed condition
// is stated explicitly in a p_assert() which reports an error at run time if
// the assumption is violated.  We reproduce that discipline here.  Unlike
// <cassert>, p_assert is always on (analysis correctness matters more than
// the last few percent of compile speed) and failures raise a typed
// exception carrying the source location so tests can observe them.
#pragma once

#include <stdexcept>
#include <string>

namespace polaris {

/// Raised when a p_assert fails, i.e. an internal consistency error.
class InternalError : public std::logic_error {
 public:
  InternalError(const std::string& cond, const std::string& file, int line,
                const std::string& msg);

  const std::string& condition() const { return cond_; }
  const std::string& file() const { return file_; }
  int line() const { return line_; }

 private:
  std::string cond_;
  std::string file_;
  int line_;
};

/// Raised for errors in user input (bad Fortran source, unsupported
/// constructs) as opposed to bugs in Polaris itself.
class UserError : public std::runtime_error {
 public:
  explicit UserError(const std::string& msg) : std::runtime_error(msg) {}
};

namespace detail {
[[noreturn]] void assert_failed(const char* cond, const char* file, int line,
                                const std::string& msg);
}  // namespace detail

}  // namespace polaris

/// Polaris assertion: always enabled, throws polaris::InternalError on
/// failure.  Use for conditions that indicate a bug in the compiler.
#define p_assert(cond)                                                      \
  do {                                                                      \
    if (!(cond))                                                            \
      ::polaris::detail::assert_failed(#cond, __FILE__, __LINE__, "");      \
  } while (0)

/// p_assert with an explanatory message (may use ostream-style formatting
/// via std::string concatenation at the call site).
#define p_assert_msg(cond, msg)                                             \
  do {                                                                      \
    if (!(cond))                                                            \
      ::polaris::detail::assert_failed(#cond, __FILE__, __LINE__, (msg));   \
  } while (0)

/// Marks an unreachable code path.
#define p_unreachable(msg)                                                  \
  ::polaris::detail::assert_failed("unreachable", __FILE__, __LINE__, (msg))
