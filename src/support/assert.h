// Polaris assertion and internal-error machinery.
//
// The Polaris paper (Section 2) stresses "extensive error checking throughout
// the system through the liberal use of assertions": every assumed condition
// is stated explicitly in a p_assert() which reports an error at run time if
// the assumption is violated.  We reproduce that discipline here.  Unlike
// <cassert>, p_assert is always on (analysis correctness matters more than
// the last few percent of compile speed) and failures raise a typed
// exception carrying the source location so tests can observe them.
//
// Deterministic fault injection: every p_assert site doubles as an
// injection point.  When a FaultInjector is armed with a "PASS[:UNIT[:N]]"
// spec (the `-fault-inject=` flag / POLARIS_FAULT_INJECT env var) and the
// pass manager has declared the current (pass, unit) scope, the Nth
// assertion executed inside each matching scope throws an InternalError
// even though its condition holds — so the rollback/recovery path is
// exercisable in tests and CI instead of only on real bugs.  If fewer than
// N sites execute before the pass finishes, the pass manager forces the
// fault at the unit boundary (consume_boundary_fault), so an armed
// injection always fires for every matching scope.
//
// Ownership: each CompileContext owns a FaultInjector (arming state + per-
// scope counters), so concurrent per-unit shards count injection sites
// independently.  Because p_assert sites are macros with no context
// parameter, the active injector is reached through a thread-local pointer
// (FaultInjector::current / FaultInjector::Scope) bound by the pass
// manager around each pass invocation; an unbound thread pays one
// predictable branch per site.
#pragma once

#include <stdexcept>
#include <string>

namespace polaris {

/// Raised when a p_assert fails, i.e. an internal consistency error.
class InternalError : public std::logic_error {
 public:
  InternalError(const std::string& cond, const std::string& file, int line,
                const std::string& msg);

  const std::string& condition() const { return cond_; }
  const std::string& file() const { return file_; }
  int line() const { return line_; }

  /// True when this error was raised by deterministic fault injection
  /// rather than a genuine assertion failure.
  bool injected() const;

 private:
  std::string cond_;
  std::string file_;
  int line_;
};

/// Raised for errors in user input (bad Fortran source, unsupported
/// constructs) as opposed to bugs in Polaris itself.
class UserError : public std::runtime_error {
 public:
  explicit UserError(const std::string& msg) : std::runtime_error(msg) {}
};

namespace fault {

/// Parsed "PASS[:UNIT[:N]]" injection spec.  PASS and UNIT may be "*"
/// (match anything); UNIT defaults to "*", N to 1 (1-based site index).
struct InjectionSpec {
  std::string pass = "*";
  std::string unit = "*";
  long site = 1;
};

/// Parses a spec string; throws UserError on malformed input (empty pass,
/// non-numeric or non-positive N, trailing components).
InjectionSpec parse_spec(const std::string& spec);

}  // namespace fault

/// One compilation's (or one unit shard's) fault-injection state: the
/// armed spec plus the per-scope site counter.  Owned by a CompileContext;
/// only ever driven by the thread currently bound to it.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms injection for this injector.  Each (pass, unit) scope entered
  /// via set_scope counts its own assertion sites from 1 and fires at most
  /// once.
  void arm(const fault::InjectionSpec& spec);
  void disarm();
  bool armed() const { return armed_; }

  const fault::InjectionSpec& spec() const { return spec_; }

  /// Declares the (pass, unit) the currently executing code is attributed
  /// to; the pass manager brackets every pass invocation with these.  The
  /// site counter restarts on every set_scope call.
  void set_scope(const std::string& pass, const std::string& unit);
  void clear_scope();

  /// True when injection is armed for the current scope but has not fired
  /// there yet; marks the scope as fired.  The pass manager calls this at
  /// the unit boundary so a matching pass with fewer than N assertion
  /// sites still faults deterministically.
  bool consume_boundary_fault();

  /// Assertion sites executed inside the current scope (diagnostics/tests).
  long sites_in_scope() const { return sites_in_scope_; }

  /// Counts one assertion site; true when the fault should fire here.
  bool tick();

  /// The injector bound to the calling thread (null when none) — the
  /// bridge from p_assert macro sites, which cannot take a parameter, to
  /// the per-compile state.  Bind with FaultInjector::Scope.
  static FaultInjector* current();

  /// RAII thread binding.  Nested scopes restore the previous binding.
  class Scope {
   public:
    explicit Scope(FaultInjector* injector);
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope();

   private:
    FaultInjector* prev_;
  };

 private:
  fault::InjectionSpec spec_;
  bool armed_ = false;
  bool scope_active_ = false;
  bool scope_matches_ = false;
  bool fired_in_scope_ = false;
  long sites_in_scope_ = 0;
};

namespace fault {

/// Back-compat shims over the thread-current injector (tests and simple
/// single-compile tools).  No-ops / false / 0 when no injector is bound.
void arm(const InjectionSpec& spec);
void disarm();
bool armed();
void set_scope(const std::string& pass, const std::string& unit);
void clear_scope();
bool consume_boundary_fault();
long sites_in_scope();

}  // namespace fault

namespace detail {
[[noreturn]] void assert_failed(const char* cond, const char* file, int line,
                                const std::string& msg);
/// Condition string used for injected failures; InternalError::injected()
/// keys off it.
extern const char* const kInjectedCond;

bool fault_tick_slow();
/// Per-site injection hook: one thread-local load + branch when no armed
/// injector is bound to the thread.
inline bool fault_tick() {
  FaultInjector* injector = FaultInjector::current();
  return injector != nullptr && injector->armed() && fault_tick_slow();
}
}  // namespace detail

}  // namespace polaris

/// Polaris assertion: always enabled, throws polaris::InternalError on
/// failure.  Use for conditions that indicate a bug in the compiler.
/// Every site is also a deterministic fault-injection point (see above).
#define p_assert(cond)                                                      \
  do {                                                                      \
    if (::polaris::detail::fault_tick())                                    \
      ::polaris::detail::assert_failed(::polaris::detail::kInjectedCond,    \
                                       __FILE__, __LINE__,                  \
                                       "deterministic fault injection");    \
    if (!(cond))                                                            \
      ::polaris::detail::assert_failed(#cond, __FILE__, __LINE__, "");      \
  } while (0)

/// p_assert with an explanatory message (may use ostream-style formatting
/// via std::string concatenation at the call site).
#define p_assert_msg(cond, msg)                                             \
  do {                                                                      \
    if (::polaris::detail::fault_tick())                                    \
      ::polaris::detail::assert_failed(::polaris::detail::kInjectedCond,    \
                                       __FILE__, __LINE__,                  \
                                       "deterministic fault injection");    \
    if (!(cond))                                                            \
      ::polaris::detail::assert_failed(#cond, __FILE__, __LINE__, (msg));   \
  } while (0)

/// Marks an unreachable code path.
#define p_unreachable(msg)                                                  \
  ::polaris::detail::assert_failed("unreachable", __FILE__, __LINE__, (msg))
