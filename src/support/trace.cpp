#include "support/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "support/assert.h"
#include "support/json.h"

namespace polaris::trace {

namespace detail {
bool g_on = false;
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

struct Collector {
  std::string path;
  Clock::time_point t0;
  std::vector<TraceEvent> events;
};

Collector& collector() {
  static Collector c;
  return c;
}

}  // namespace

void start(const std::string& path) {
  p_assert_msg(!detail::g_on, "trace already started");
  Collector& c = collector();
  c.path = path;
  c.t0 = Clock::now();
  c.events.clear();
  detail::g_on = true;
}

std::string stop() {
  if (!detail::g_on) return std::string();
  detail::g_on = false;
  Collector& c = collector();
  std::string json = to_chrome_json(c.events);
  if (!c.path.empty()) {
    std::ofstream out(c.path);
    if (out)
      out << json;
    else
      std::fprintf(stderr, "polaris: cannot write trace to %s\n",
                   c.path.c_str());
  }
  c.events.clear();
  c.path.clear();
  return json;
}

const std::string& path() {
  static const std::string empty;
  return detail::g_on ? collector().path : empty;
}

std::size_t mark() { return detail::g_on ? collector().events.size() : 0; }

void truncate(std::size_t mark) {
  if (!detail::g_on) return;
  std::vector<TraceEvent>& ev = collector().events;
  if (mark < ev.size()) ev.resize(mark);
}

std::size_t event_count() {
  return detail::g_on ? collector().events.size() : 0;
}

std::uint64_t now_us() {
  if (!detail::g_on) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now() - collector().t0)
          .count());
}

void instant(const std::string& name, const std::string& category,
             std::vector<std::pair<std::string, std::string>> args) {
  if (!detail::g_on) return;
  TraceEvent e;
  e.phase = 'i';
  e.name = name;
  e.category = category;
  e.ts_us = now_us();
  e.args = std::move(args);
  collector().events.push_back(std::move(e));
}

void counter(const std::string& name,
             std::vector<std::pair<std::string, std::uint64_t>> series) {
  if (!detail::g_on) return;
  TraceEvent e;
  e.phase = 'C';
  e.name = name;
  e.category = "counter";
  e.ts_us = now_us();
  e.numeric_args = true;
  for (auto& [key, value] : series)
    e.args.emplace_back(std::move(key), std::to_string(value));
  collector().events.push_back(std::move(e));
}

TraceSpan::~TraceSpan() {
  // on() may have flipped off mid-span (a test calling stop()); drop the
  // event then rather than record against a dead collector.
  if (!active_ || !detail::g_on) return;
  TraceEvent e;
  e.phase = 'X';
  e.name = std::move(name_);
  e.category = std::move(category_);
  e.ts_us = t0_;
  e.dur_us = now_us() - t0_;
  e.args = std::move(args_);
  collector().events.push_back(std::move(e));
}

const std::vector<TraceEvent>& events() { return collector().events; }

std::string to_chrome_json(const std::vector<TraceEvent>& events) {
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(e.name) + "\",\"cat\":\"" +
           json_escape(e.category) + "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":1,\"tid\":1,\"ts\":" + std::to_string(e.ts_us);
    if (e.phase == 'X') out += ",\"dur\":" + std::to_string(e.dur_us);
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"" + json_escape(key) + "\":";
        if (e.numeric_args)
          out += value;
        else
          out += "\"" + json_escape(value) + "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace polaris::trace
