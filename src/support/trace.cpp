#include "support/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "support/assert.h"
#include "support/json.h"

namespace polaris::trace {

void TraceCollector::start(const std::string& path) {
  p_assert_msg(!on_, "trace collector already started");
  path_ = path;
  t0_ = Clock::now();
  events_.clear();
  open_spans_.clear();
  on_ = true;
}

void TraceCollector::start_shard_of(const TraceCollector& parent) {
  p_assert_msg(!on_, "trace collector already started");
  if (!parent.on_) return;
  path_.clear();  // shards never write files; the parent does at stop()
  t0_ = parent.t0_;
  events_.clear();
  open_spans_.clear();
  on_ = true;
}

std::string TraceCollector::stop() {
  if (!on_) return std::string();
  close_dangling_spans();
  on_ = false;
  std::string json = to_chrome_json(events_);
  if (!path_.empty()) {
    std::ofstream out(path_);
    if (out)
      out << json;
    else
      std::fprintf(stderr, "polaris: cannot write trace to %s\n",
                   path_.c_str());
  }
  events_.clear();
  path_.clear();
  return json;
}

void TraceCollector::close_dangling_spans() {
  // Innermost spans first so nesting containment holds for the emitted
  // events, matching the order their destructors would have run.
  while (!open_spans_.empty()) {
    TraceSpan* span = open_spans_.back();
    span->emit(/*dangling=*/true);
    span->collector_ = nullptr;  // emit() popped the registration
  }
}

const std::string& TraceCollector::path() const {
  static const std::string empty;
  return on_ ? path_ : empty;
}

void TraceCollector::truncate(std::size_t mark) {
  if (!on_) return;
  if (mark < events_.size()) events_.resize(mark);
}

std::uint64_t TraceCollector::now_us() const {
  if (!on_) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0_)
          .count());
}

void TraceCollector::instant(
    const std::string& name, const std::string& category,
    std::vector<std::pair<std::string, std::string>> args) {
  if (!on_) return;
  TraceEvent e;
  e.phase = 'i';
  e.name = name;
  e.category = category;
  e.ts_us = now_us();
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceCollector::counter(
    const std::string& name,
    std::vector<std::pair<std::string, std::uint64_t>> series) {
  if (!on_) return;
  TraceEvent e;
  e.phase = 'C';
  e.name = name;
  e.category = "counter";
  e.ts_us = now_us();
  e.numeric_args = true;
  for (auto& [key, value] : series)
    e.args.emplace_back(std::move(key), std::to_string(value));
  events_.push_back(std::move(e));
}

void TraceCollector::append(TraceCollector&& shard) {
  if (!shard.on_) return;
  shard.close_dangling_spans();
  shard.on_ = false;
  if (on_) {
    events_.insert(events_.end(),
                   std::make_move_iterator(shard.events_.begin()),
                   std::make_move_iterator(shard.events_.end()));
  }
  shard.events_.clear();
}

TraceSpan::TraceSpan(TraceCollector* c, const char* name, const char* category)
    : collector_(c != nullptr && c->collecting() ? c : nullptr) {
  if (collector_ == nullptr) return;
  name_ = name;
  category_ = category;
  t0_ = collector_->now_us();
  collector_->open_spans_.push_back(this);
}

TraceSpan::TraceSpan(TraceCollector* c, const std::string& name,
                     const char* category)
    : collector_(c != nullptr && c->collecting() ? c : nullptr) {
  if (collector_ == nullptr) return;
  name_ = name;
  category_ = category;
  t0_ = collector_->now_us();
  collector_->open_spans_.push_back(this);
}

TraceSpan::~TraceSpan() {
  if (collector_ == nullptr) return;
  emit(/*dangling=*/false);
}

void TraceSpan::emit(bool dangling) {
  // Unregister first: truncate() cannot drop the registration (it only
  // trims events), so the span is always present exactly once.
  auto& open = collector_->open_spans_;
  open.erase(std::find(open.begin(), open.end(), this));
  TraceEvent e;
  e.phase = 'X';
  e.name = std::move(name_);
  e.category = std::move(category_);
  e.ts_us = t0_;
  e.dur_us = collector_->now_us() - t0_;
  e.args = std::move(args_);
  if (dangling) e.args.emplace_back("dangling", "true");
  collector_->events_.push_back(std::move(e));
  collector_ = nullptr;
}

std::string to_chrome_json(const std::vector<TraceEvent>& events) {
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(e.name) + "\",\"cat\":\"" +
           json_escape(e.category) + "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":1,\"tid\":1,\"ts\":" + std::to_string(e.ts_us);
    if (e.phase == 'X') out += ",\"dur\":" + std::to_string(e.dur_us);
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"" + json_escape(key) + "\":";
        if (e.numeric_args)
          out += value;
        else
          out += "\"" + json_escape(value) + "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace polaris::trace
