#include "support/context.h"

namespace polaris {

namespace {
thread_local CompileContext* tls_context = nullptr;
}  // namespace

void CompileContext::merge_shard(CompileContext& shard) {
  stats_.merge(shard.stats_);
  trace_.append(std::move(shard.trace_));
  governor_.absorb(shard.governor_);
}

CompileContext* CompileContext::current() { return tls_context; }

CompileContext::Scope::Scope(CompileContext* ctx)
    : prev_(tls_context),
      fault_scope_(ctx != nullptr ? &ctx->fault() : nullptr) {
  tls_context = ctx;
}

CompileContext::Scope::~Scope() { tls_context = prev_; }

}  // namespace polaris
