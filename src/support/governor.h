// ResourceGovernor: deterministic resource ceilings with conservative
// degradation.
//
// Polaris's stance (and this repo's): expensive symbolic machinery must
// *degrade*, never crash or hang.  Before this layer, the only guard was
// `-pass-budget-ms` — a wholesale drop of any pass that overran its wall
// budget — and nothing bounded symbolic blow-up (polynomial term growth,
// atom-table growth, simplifier recursion) at all.  The governor closes
// both gaps:
//
//   - Symbolic ceilings.  `-max-poly-terms=N` bounds the term count of any
//     one Polynomial, `-max-atoms-per-unit=N` bounds the (per-shard)
//     AtomTable.  Checked at the handful of sites where symbolic state
//     grows (AtomTable::intern, Polynomial term insertion/normalization).
//   - A whole-compile budget, `-compile-budget-ms=N`.  Wall deadlines are
//     irreproducible — the same compile at `-jobs=1` and `-jobs=8` would
//     degrade at different points and the artifacts would diverge — so the
//     budget is *fuel*: N × kFuelTicksPerMs logical work ticks, charged at
//     deterministic symbolic-work sites (atom interns, term
//     normalizations, Expression→Polynomial conversion nodes, range-test
//     masks).  The same idiom as Z3's rlimit: ms-calibrated on a nominal
//     machine, bit-reproducible on every machine.  Under `-jobs=N` each
//     unit shard receives an equal share of the parent's remaining fuel
//     (`shard_fuel_share`), computed before any worker runs, so the
//     degradation points are identical at any worker count.
//
// A tripped ceiling throws ResourceBlowup.  The dependence testers and the
// simplifier catch it at their query boundaries and return the
// conservative answer ("assume dependence" / "unsimplified"); anything
// that escapes to the pass boundary engages the *degradation ladder* in
// the pass manager (see driver/pass_manager.cpp): retry the (pass, unit)
// with cheaper switches — `degraded_options` rungs "reduced" then "floor"
// — before finally dropping the pass via the existing rollback path.
// Every step is recorded as a DegradationEvent (surfaced in
// CompileReport::degradations and `-report-json`) and as a remark with a
// closed reason code.
#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

namespace polaris {

struct Options;

/// Which ceiling tripped.  Closed set; to_string values appear verbatim in
/// report JSON and remarks, so additions are schema-visible.
enum class GovernorTrigger {
  PassBudget,   ///< `-pass-budget-ms` wall overrun at the unit boundary
  CompileFuel,  ///< `-compile-budget-ms` deterministic fuel exhausted
  PolyTerms,    ///< `-max-poly-terms` polynomial term ceiling
  AtomCeiling,  ///< `-max-atoms-per-unit` atom-table ceiling
};
const char* to_string(GovernorTrigger t);

/// Thrown by governor check sites when a ceiling trips.  Deliberately NOT
/// an InternalError: fault isolation classifies InternalError as an
/// assertion failure, while a resource trip is an expected, recoverable
/// condition with its own conservative handling (query bail-out or
/// ladder).
class ResourceBlowup : public std::exception {
 public:
  ResourceBlowup(GovernorTrigger trigger, std::string detail)
      : trigger_(trigger), detail_(std::move(detail)) {
    what_ = std::string("resource ceiling tripped [") +
            polaris::to_string(trigger_) + "]: " + detail_;
  }
  GovernorTrigger trigger() const { return trigger_; }
  const std::string& detail() const { return detail_; }
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  GovernorTrigger trigger_;
  std::string detail_;
  std::string what_;
};

/// One step of resource-governed degradation: a ladder retry, a final
/// pass drop, or an aggregated run of conservative query bail-outs.
/// Serialized into report JSON (`"degradations"`) and compared
/// byte-for-byte across `-jobs=N` in the determinism battery, so every
/// field must be deterministic.
struct DegradationEvent {
  std::string pass;     ///< pass being governed ("doall", ...)
  std::string unit;     ///< unit name ("trfd", ...)
  std::string trigger;  ///< to_string(GovernorTrigger)
  /// Closed action set: "retry-reduced" | "retry-floor" | "drop-pass" |
  /// "conservative-bailout".
  std::string action;
  /// Bail-out site ("rangetest" | "ddtest" | "simplify"); empty for
  /// ladder steps.
  std::string site;
  int rung = 0;              ///< ladder rung the event applies to
  std::uint64_t count = 1;   ///< aggregated occurrences (bail-outs)
  std::string detail;        ///< human-readable specifics
};

/// Hard limits for one compilation (or one unit shard).  0 = unlimited
/// throughout.
struct GovernorLimits {
  std::uint64_t fuel = 0;        ///< logical work ticks
  std::size_t max_poly_terms = 0;
  std::size_t max_atoms = 0;
};

/// Fuel calibration: logical work ticks per "millisecond" of
/// `-compile-budget-ms`.  Chosen so a budget that would plausibly cover a
/// compile in wall time also covers it in fuel on a nominal machine; the
/// exact value only shifts where hostile budgets degrade, never
/// correctness, and is pinned here so artifacts stay comparable across
/// PRs.
constexpr std::uint64_t kFuelTicksPerMs = 50000;

/// Derives the governor limits `opts` asks for (fuel from
/// compile_budget_ms via kFuelTicksPerMs).
GovernorLimits limits_from_options(const Options& opts);

/// Ladder rungs tried per (pass, unit) before the pass is dropped:
/// rung 0 = the user's options, 1 = "reduced", 2 = "floor".
constexpr int kLadderRungs = 3;
const char* ladder_rung_name(int rung);

/// The cheaper-switch derivation for ladder rung `rung`: progressively
/// lower search limits (max_loop_permutations, capped
/// rangetest_max_permutations, GSA substitution depth, a simplify depth
/// limit) while leaving every correctness-relevant switch alone.  Rung 0
/// returns `base` unchanged; the floor rung additionally turns the range
/// test off (linear tests only — the "current compiler" baseline shape).
Options degraded_options(const Options& base, int rung);

/// Per-compilation (per-shard) resource accountant, owned by
/// CompileContext.  Inactive (all limits 0, no simplify depth) costs one
/// thread-local read and a branch per check site — the same class of
/// overhead as a fault tick.
class ResourceGovernor {
 public:
  /// Installs limits.  Never resets fuel_spent_ or recorded events: a
  /// ladder retry reconfigures the governor mid-compile and the meter
  /// must keep running.
  void configure(const GovernorLimits& limits);

  /// Overrides just the fuel limit — the shard-share hook.
  void set_fuel_limit(std::uint64_t fuel);

  /// Simplify recursion depth limit for the *current ladder attempt*
  /// (simplify() has no Options parameter, so the attempt switch lives
  /// here).  0 = unlimited.
  void set_simplify_depth_limit(int depth);
  int simplify_depth_limit() const { return simplify_depth_; }

  /// True when any ceiling or attempt switch is installed — the one
  /// branch every check site takes on the ungoverned path.
  bool active() const { return active_; }

  /// The thread's active governor: CompileContext::current()'s governor
  /// if a context is bound and its governor is active, else null.  The
  /// bridge for symbolic code (poly.cpp, simplify.cpp) that has no
  /// context parameter.
  static ResourceGovernor* current();

  // --- ceilings (throw ResourceBlowup) -----------------------------------
  /// Consumes `ticks` fuel; throws CompileFuel once the meter crosses the
  /// limit.  Saturates, never wraps.
  void charge(std::uint64_t ticks);
  /// Polynomial about to hold `terms` terms.
  void check_poly_terms(std::size_t terms);
  /// AtomTable about to hold `atoms` atoms.
  void check_atoms(std::size_t atoms);

  /// Bumps the trip counter for `t`.  Called at every throw site (and, for
  /// PassBudget, by the pass manager at the wall-budget boundary) so
  /// insight can aggregate how often each ceiling fired.  Counters are
  /// meters like fuel_spent_: folded by absorb(), never unwound by
  /// truncate_events — a ladder retry does not un-trip the ceiling that
  /// caused it.
  void note_trip(GovernorTrigger t);
  std::uint64_t trip_count(GovernorTrigger t) const;

  std::uint64_t fuel_limit() const { return fuel_limit_; }
  std::uint64_t fuel_spent() const { return fuel_spent_; }
  std::uint64_t fuel_remaining() const {
    return fuel_spent_ >= fuel_limit_ ? 0 : fuel_limit_ - fuel_spent_;
  }
  /// Equal split of the remaining fuel across `n_units` shards, floored
  /// at 1 tick so an exhausted parent yields exhausted (not unlimited)
  /// shards.  0 when no fuel limit is set.
  std::uint64_t shard_fuel_share(std::size_t n_units) const;
  /// Folds a finished shard's meter back into this one (saturating).
  void add_spent(std::uint64_t ticks);

  // --- attribution scope --------------------------------------------------
  /// The (pass, unit) new events are attributed to; set by the pass
  /// manager alongside the fault-injection scope.
  void set_scope(const std::string& pass, const std::string& unit);
  void clear_scope();
  const std::string& scope_pass() const { return scope_pass_; }
  const std::string& scope_unit() const { return scope_unit_; }

  // --- events -------------------------------------------------------------
  void record_event(DegradationEvent ev);
  /// Records a conservative query bail-out at `site` under the current
  /// scope, aggregating into an existing matching event when possible.
  /// Returns true when this created a new event (the caller emits the
  /// once-per-(pass,unit,site) remark on true).
  bool note_bailout(const char* site, GovernorTrigger trigger);
  const std::vector<DegradationEvent>& events() const { return events_; }
  /// Rollback support, mirroring Diagnostics::truncate: a failed ladder
  /// attempt unwinds the events it recorded.
  std::size_t event_mark() const { return events_.size(); }
  void truncate_events(std::size_t mark);
  /// Appends a shard's events (already in that unit's deterministic
  /// order) and folds its fuel meter; called by CompileContext::merge_shard
  /// in unit index order.
  void absorb(ResourceGovernor& shard);

 private:
  void recompute_active();

  std::uint64_t fuel_limit_ = 0;
  std::uint64_t fuel_spent_ = 0;
  std::uint64_t trips_[4] = {0, 0, 0, 0};  ///< indexed by GovernorTrigger
  std::size_t max_poly_terms_ = 0;
  std::size_t max_atoms_ = 0;
  int simplify_depth_ = 0;
  bool active_ = false;
  std::string scope_pass_;
  std::string scope_unit_;
  std::vector<DegradationEvent> events_;
};

/// The one-call bail-out recorder for conservative catch sites (dep
/// testers, simplifier): attributes the blow-up to the thread's governed
/// compile, aggregates repeat bail-outs at the same (pass, unit, site,
/// trigger), and emits a `resource-bailout` analysis remark for the first
/// occurrence.  No-op outside a compile scope.
void note_conservative_bailout(const char* site, const ResourceBlowup& b);

}  // namespace polaris
