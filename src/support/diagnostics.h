// Diagnostics sink: collects notes/warnings/errors emitted by passes.
//
// Polaris reports, per loop, why it could or could not parallelize.  Passes
// write structured messages here; the driver renders them in its compilation
// report and tests assert on their presence.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace polaris {

enum class DiagSeverity { Note, Warning, Error };

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::Note;
  std::string pass;     // which pass emitted it, e.g. "rangetest"
  std::string context;  // e.g. "MAIN/do_10" — unit and loop
  std::string message;
};

/// Accumulates diagnostics; owned by the driver, passed by reference into
/// passes (per the Polaris ownership convention, a T& argument does not
/// transfer ownership).
class Diagnostics {
 public:
  void note(const std::string& pass, const std::string& context,
            const std::string& message);
  void warning(const std::string& pass, const std::string& context,
               const std::string& message);
  void error(const std::string& pass, const std::string& context,
             const std::string& message);

  const std::vector<Diagnostic>& all() const { return diags_; }
  bool has_errors() const;
  std::size_t count(DiagSeverity sev) const;

  /// True if any diagnostic's message contains `needle` (test helper).
  bool contains(const std::string& needle) const;

  void clear() { diags_.clear(); }
  /// Drops every diagnostic past the first `n` — the fault-isolation layer
  /// unwinds a rolled-back pass's messages so the report matches a run
  /// that never attempted the pass.
  void truncate(std::size_t n);
  void print(std::ostream& os) const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace polaris
