// Diagnostics sink: collects notes/warnings/errors emitted by passes.
//
// Polaris reports, per loop, why it could or could not parallelize.  Passes
// write structured messages here; the driver renders them in its compilation
// report and tests assert on their presence.
//
// Beyond free-text messages, a diagnostic can be a *structured
// optimization remark* (the LLVM opt-remark idiom): a RemarkKind
// (Parallelized / Missed / Analysis), a machine-readable kebab-case
// reason code, and typed key-value args naming the loop, variable,
// dependence pair, or test that decided the outcome.  Remarks render as
// ordinary notes in the text views and as a JSONL stream with
// `-remarks=FILE`, and back every LoopReport::serial_reason with a
// queryable reason code.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace polaris {

enum class DiagSeverity { Note, Warning, Error };

/// Structured-remark classification (None for plain diagnostics).
enum class RemarkKind {
  None,          ///< not a remark: a plain free-text diagnostic
  Parallelized,  ///< a transformation fired (loop parallelized, ...)
  Missed,        ///< an optimization was blocked; reason says why
  Analysis,      ///< neutral analysis fact worth reporting
};

const char* to_string(RemarkKind kind);

/// One key-value remark argument ("variable" -> "ind", "test" -> "range").
struct RemarkArg {
  std::string key;
  std::string value;
};

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::Note;
  std::string pass;     // which pass emitted it, e.g. "rangetest"
  std::string context;  // e.g. "MAIN/do_10" — unit and loop
  std::string message;
  // --- structured-remark payload (remark != None only) ---------------------
  RemarkKind remark = RemarkKind::None;
  std::string reason;           ///< machine-readable code, e.g. "loop-io"
  std::vector<RemarkArg> args;  ///< typed key-value arguments
};

/// Accumulates diagnostics; owned by the driver, passed by reference into
/// passes (per the Polaris ownership convention, a T& argument does not
/// transfer ownership).
class Diagnostics {
 public:
  void note(const std::string& pass, const std::string& context,
            const std::string& message);
  void warning(const std::string& pass, const std::string& context,
               const std::string& message);
  void error(const std::string& pass, const std::string& context,
             const std::string& message);

  /// Emits a structured remark (severity Note).  `reason` is the stable
  /// machine-readable code; `message` the human rendering.
  void remark(RemarkKind kind, const std::string& pass,
              const std::string& context, const std::string& reason,
              const std::string& message,
              std::vector<RemarkArg> args = {});

  const std::vector<Diagnostic>& all() const { return diags_; }
  bool has_errors() const;
  std::size_t count(DiagSeverity sev) const;

  /// Remark-kind diagnostics only (the `-remarks=` stream).
  std::vector<const Diagnostic*> remarks() const;

  /// True if any diagnostic's message contains `needle` (test helper).
  bool contains(const std::string& needle) const;

  /// Appends every diagnostic of `other` in order (unit-shard merge).
  void append(const Diagnostics& other) {
    diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
  }

  void clear() { diags_.clear(); }
  /// Drops every diagnostic past the first `n` — the fault-isolation layer
  /// unwinds a rolled-back pass's messages so the report matches a run
  /// that never attempted the pass.
  void truncate(std::size_t n);
  void print(std::ostream& os) const;
  /// Writes the remarks stream: one JSON object per line, with kind,
  /// pass, context, reason, message, and args.
  void print_remarks(std::ostream& os) const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace polaris
