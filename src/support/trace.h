// Hierarchical scoped-span tracing with Chrome trace-event output.
//
// Polaris's `-timing` table answers "how long did each pass take overall";
// the tracer answers "what happened, when, inside which pass, on which
// unit" — parse, every pass x unit invocation, dependence-test batches,
// GSA-engine construction, verifier runs, and fault-isolation
// snapshot/rollback events, plus counter tracks for analysis-cache
// accounting.  Output is the Chrome trace-event JSON format, loadable in
// chrome://tracing or Perfetto (`-trace=FILE` / POLARIS_TRACE).
//
// Ownership: there is no global collector.  Each CompileContext owns a
// TraceCollector; per-unit shards own their own collector sharing the
// parent's time epoch, and the parent appends shard events in unit order
// when the parallel group finishes.  Instrumentation sites receive the
// collector explicitly (usually via the CompileContext threaded through
// the layer); a null collector reduces every site to one branch.
//
// Spans are RAII (TraceSpan) and *registered* with their collector while
// open, so an exception unwinding through an instrumented region closes
// its spans, a collector being stopped or finalized closes any spans
// still in flight (instead of silently dropping them), and the
// fault-isolation layer can truncate the event buffer to its pre-pass
// mark on rollback so a rolled-back pass contributes no events at all.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace polaris::trace {

/// One recorded trace event (Chrome trace-event model).
struct TraceEvent {
  char phase = 'X';       ///< 'X' complete span, 'i' instant, 'C' counter
  std::string name;
  std::string category;
  std::uint64_t ts_us = 0;   ///< microseconds since trace start
  std::uint64_t dur_us = 0;  ///< span duration ('X' only)
  /// Key-value args; for counters the values must be numeric literals
  /// (rendered unquoted so the viewer draws a counter track).
  std::vector<std::pair<std::string, std::string>> args;
  bool numeric_args = false;  ///< render arg values as numbers
};

class TraceSpan;

/// One compilation's (or one unit shard's) event buffer.  Single-threaded
/// by construction: a collector is only ever touched by the thread
/// currently working on its compile/shard.
class TraceCollector {
 public:
  TraceCollector() = default;
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Begins collecting; `path` is where stop() writes the JSON (empty:
  /// discard).  Starting an already-collecting collector is an error.
  void start(const std::string& path);

  /// Begins collecting as a shard of `parent`: shares the parent's time
  /// epoch so merged timestamps stay on one timeline, never writes a file
  /// itself.  No-op (shard stays off) when the parent is not collecting.
  void start_shard_of(const TraceCollector& parent);

  /// Closes any spans still open (they emit as complete events, tagged
  /// `dangling`), writes the collected events to the start() path, and
  /// disables collection.  Returns the serialized JSON so in-process
  /// consumers (tests) can validate without touching the file.
  std::string stop();

  /// True while events are being collected.  The one branch every
  /// instrumentation site pays when tracing is disabled.
  bool collecting() const { return on_; }

  /// The armed output path (empty when off).
  const std::string& path() const;

  /// Event-buffer high-water mark; pair with truncate() to unwind the
  /// events of a rolled-back pass.  Returns 0 when off.
  std::size_t mark() const { return on_ ? events_.size() : 0; }

  /// Drops every event recorded after `mark` (fault-isolation rollback).
  void truncate(std::size_t mark);

  /// Number of buffered events.
  std::size_t event_count() const { return on_ ? events_.size() : 0; }

  /// Instant event (rollback markers and similar point-in-time facts).
  void instant(const std::string& name, const std::string& category,
               std::vector<std::pair<std::string, std::string>> args = {});

  /// Counter sample: one track per `name`, one series per arg key.
  void counter(const std::string& name,
               std::vector<std::pair<std::string, std::uint64_t>> series);

  /// Microseconds since trace start (0 when off).
  std::uint64_t now_us() const;

  /// Appends a finished shard's events in place (the deterministic
  /// unit-order merge).  The shard must share this collector's epoch.
  void append(TraceCollector&& shard);

  /// Read-only view of the buffered events (tests, serialization).
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  friend class TraceSpan;
  using Clock = std::chrono::steady_clock;

  /// Emits the close event for every span still registered (innermost
  /// first, mirroring natural destruction order) and detaches them so
  /// their destructors become no-ops.
  void close_dangling_spans();

  bool on_ = false;
  std::string path_;
  Clock::time_point t0_{};
  std::vector<TraceEvent> events_;
  std::vector<TraceSpan*> open_spans_;  ///< registration stack, outermost first
};

/// RAII span.  With a null or non-collecting collector, construction is
/// one branch and no state is touched — the const char* overloads exist
/// so disabled call sites never materialize a std::string (these sit on
/// per-pair hot paths in the dependence testers).  The event is emitted
/// at destruction (or at collector stop, whichever comes first) as a
/// complete ('X') event, so nesting falls out of the ts/dur containment.
class TraceSpan {
 public:
  TraceSpan(TraceCollector* c, const char* name, const char* category);
  TraceSpan(TraceCollector* c, const std::string& name, const char* category);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  /// Attaches a key-value arg shown in the trace viewer's detail panel.
  void arg(const char* key, const std::string& value) {
    if (collector_ != nullptr) args_.emplace_back(key, value);
  }
  void arg(const char* key, const char* value) {
    if (collector_ != nullptr) args_.emplace_back(key, value);
  }
  void arg(const char* key, std::uint64_t value) {
    if (collector_ != nullptr) args_.emplace_back(key, std::to_string(value));
  }

 private:
  friend class TraceCollector;
  void emit(bool dangling);

  TraceCollector* collector_;  ///< null when inactive
  std::string name_;
  std::string category_;
  std::uint64_t t0_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Serializes events as Chrome trace JSON (what TraceCollector::stop()
/// writes).
std::string to_chrome_json(const std::vector<TraceEvent>& events);

}  // namespace polaris::trace
