// Hierarchical scoped-span tracing with Chrome trace-event output.
//
// Polaris's `-timing` table answers "how long did each pass take overall";
// the tracer answers "what happened, when, inside which pass, on which
// unit" — parse, every pass x unit invocation, dependence-test batches,
// GSA-engine construction, verifier runs, and fault-isolation
// snapshot/rollback events, plus counter tracks for analysis-cache
// accounting.  Output is the Chrome trace-event JSON format, loadable in
// chrome://tracing or Perfetto (`-trace=FILE` / POLARIS_TRACE).
//
// Cost discipline: tracing is off by default and every instrumentation
// site reduces to a single predictable branch on a global flag
// (trace::on()).  Spans are RAII (TraceSpan), so an exception unwinding
// through an instrumented region closes its spans; the fault-isolation
// layer additionally truncates the event buffer to its pre-pass mark on
// rollback so a rolled-back pass contributes no events at all.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace polaris::trace {

namespace detail {
extern bool g_on;  ///< set only between start()/stop(); read by on()
}  // namespace detail

/// True while a trace is being collected.  The one branch every
/// instrumentation site pays when tracing is disabled.
inline bool on() { return detail::g_on; }

/// One recorded trace event (Chrome trace-event model).
struct TraceEvent {
  char phase = 'X';       ///< 'X' complete span, 'i' instant, 'C' counter
  std::string name;
  std::string category;
  std::uint64_t ts_us = 0;   ///< microseconds since trace start
  std::uint64_t dur_us = 0;  ///< span duration ('X' only)
  /// Key-value args; for counters the values must be numeric literals
  /// (rendered unquoted so the viewer draws a counter track).
  std::vector<std::pair<std::string, std::string>> args;
  bool numeric_args = false;  ///< render arg values as numbers
};

/// Begins collecting; `path` is where stop() writes the JSON.  Calling
/// start while already collecting is an error (tests aside, the driver
/// arms exactly one trace per compile).
void start(const std::string& path);

/// Writes the collected events to the path given to start() (empty path:
/// discard) and disables collection.  Returns the serialized JSON so
/// in-process consumers (tests) can validate without touching the file.
std::string stop();

/// The armed output path (empty when off).
const std::string& path();

/// Event-buffer high-water mark; pair with truncate() to unwind the
/// events of a rolled-back pass.  Returns 0 when tracing is off.
std::size_t mark();

/// Drops every event recorded after `mark` (fault-isolation rollback).
void truncate(std::size_t mark);

/// Number of buffered events (tests).
std::size_t event_count();

/// Instant event (rollback markers and similar point-in-time facts).
void instant(const std::string& name, const std::string& category,
             std::vector<std::pair<std::string, std::string>> args = {});

/// Counter sample: one track per `name`, one series per arg key.
void counter(const std::string& name,
             std::vector<std::pair<std::string, std::uint64_t>> series);

/// Microseconds since trace start (0 when off).
std::uint64_t now_us();

/// RAII span.  When tracing is off, construction is one branch and no
/// state is touched — the const char* overloads exist so disabled call
/// sites never materialize a std::string (these sit on per-pair hot
/// paths in the dependence testers).  The event is emitted at
/// destruction as a complete ('X') event, so nesting falls out of the
/// ts/dur containment.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category)
      : active_(on()), name_(active_ ? name : ""),
        category_(active_ ? category : ""), t0_(active_ ? now_us() : 0) {}
  TraceSpan(const std::string& name, const char* category)
      : active_(on()), name_(active_ ? name : std::string()),
        category_(active_ ? category : ""), t0_(active_ ? now_us() : 0) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  /// Attaches a key-value arg shown in the trace viewer's detail panel.
  void arg(const char* key, const std::string& value) {
    if (active_) args_.emplace_back(key, value);
  }
  void arg(const char* key, const char* value) {
    if (active_) args_.emplace_back(key, value);
  }
  void arg(const char* key, std::uint64_t value) {
    if (active_) args_.emplace_back(key, std::to_string(value));
  }

 private:
  bool active_;
  std::string name_;
  std::string category_;
  std::uint64_t t0_;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Read-only view of the buffered events (tests).
const std::vector<TraceEvent>& events();

/// Serializes events as Chrome trace JSON (what stop() writes).
std::string to_chrome_json(const std::vector<TraceEvent>& events);

}  // namespace polaris::trace
