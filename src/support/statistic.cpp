#include "support/statistic.h"

namespace polaris {

Statistic::Statistic(const char* component, const char* name,
                     const char* desc)
    : component_(component), name_(name), desc_(desc) {
  StatisticRegistry::instance().register_stat(this);
}

StatisticRegistry& StatisticRegistry::instance() {
  static StatisticRegistry registry;
  return registry;
}

std::vector<StatisticValue> StatisticRegistry::values() const {
  std::vector<StatisticValue> out;
  out.reserve(stats_.size());
  for (const Statistic* s : stats_)
    out.push_back({s->component(), s->name(), s->desc(), s->value()});
  return out;
}

StatisticSnapshot StatisticRegistry::snapshot() const {
  StatisticSnapshot snap;
  snap.reserve(stats_.size());
  for (const Statistic* s : stats_) snap.push_back(s->value());
  return snap;
}

void StatisticRegistry::restore(const StatisticSnapshot& snap) {
  for (std::size_t i = 0; i < stats_.size(); ++i)
    stats_[i]->value_ = i < snap.size() ? snap[i] : 0;
}

std::vector<StatisticValue> StatisticRegistry::delta_since(
    const StatisticSnapshot& base) const {
  std::vector<StatisticValue> out;
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    const std::uint64_t before = i < base.size() ? base[i] : 0;
    const Statistic* s = stats_[i];
    if (s->value() == before) continue;
    out.push_back({s->component(), s->name(), s->desc(),
                   s->value() - before});
  }
  return out;
}

void StatisticRegistry::reset() {
  for (Statistic* s : stats_) s->value_ = 0;
}

}  // namespace polaris
