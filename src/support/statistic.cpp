#include "support/statistic.h"

#include "support/context.h"

namespace polaris {

Statistic::Statistic(const char* component, const char* name,
                     const char* desc)
    : component_(component), name_(name), desc_(desc) {
  std::vector<const Statistic*>& all = StatisticCatalog::mutable_all();
  id_ = all.size();
  all.push_back(this);
}

Statistic& Statistic::operator++() { return *this += 1; }

Statistic& Statistic::operator+=(std::uint64_t n) {
  if (CompileContext* ctx = CompileContext::current())
    ctx->stats().bump(*this, n);
  return *this;
}

const std::vector<const Statistic*>& StatisticCatalog::all() {
  return mutable_all();
}

std::vector<const Statistic*>& StatisticCatalog::mutable_all() {
  static std::vector<const Statistic*> catalog;
  return catalog;
}

StatisticRegistry::StatisticRegistry()
    : values_(StatisticCatalog::size(), 0) {}

void StatisticRegistry::bump(const Statistic& s, std::uint64_t n) {
  // The catalog is fixed before main(), but a registry constructed during
  // static initialization could predate later-registered counters.
  if (s.id() >= values_.size()) values_.resize(StatisticCatalog::size(), 0);
  values_[s.id()] += n;
}

std::uint64_t StatisticRegistry::value(const Statistic& s) const {
  return s.id() < values_.size() ? values_[s.id()] : 0;
}

std::vector<StatisticValue> StatisticRegistry::values() const {
  std::vector<StatisticValue> out;
  const auto& catalog = StatisticCatalog::all();
  out.reserve(catalog.size());
  for (const Statistic* s : catalog)
    out.push_back({s->component(), s->name(), s->desc(), value(*s)});
  return out;
}

StatisticSnapshot StatisticRegistry::snapshot() const {
  StatisticSnapshot snap = values_;
  snap.resize(StatisticCatalog::size(), 0);
  return snap;
}

void StatisticRegistry::restore(const StatisticSnapshot& snap) {
  values_ = snap;
}

std::vector<StatisticValue> StatisticRegistry::delta_since(
    const StatisticSnapshot& base) const {
  std::vector<StatisticValue> out;
  for (const Statistic* s : StatisticCatalog::all()) {
    const std::uint64_t now = value(*s);
    const std::uint64_t was = s->id() < base.size() ? base[s->id()] : 0;
    if (now != was)
      out.push_back({s->component(), s->name(), s->desc(), now - was});
  }
  return out;
}

void StatisticRegistry::merge(const StatisticRegistry& shard) {
  if (shard.values_.size() > values_.size())
    values_.resize(shard.values_.size(), 0);
  for (std::size_t i = 0; i < shard.values_.size(); ++i)
    values_[i] += shard.values_[i];
}

void StatisticRegistry::reset() { values_.assign(values_.size(), 0); }

}  // namespace polaris
