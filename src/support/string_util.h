// Small string helpers shared across the frontend and printers.
#pragma once

#include <string>
#include <vector>

namespace polaris {

/// Lower-cases ASCII (Fortran is case-insensitive; Polaris canonicalizes
/// identifiers to lower case on entry).
std::string to_lower(const std::string& s);
std::string to_upper(const std::string& s);

/// Strips leading and trailing whitespace.
std::string trim(const std::string& s);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> split(const std::string& s, char sep);

/// True if `s` begins with `prefix` / ends with `suffix`.
bool starts_with(const std::string& s, const std::string& prefix);
bool ends_with(const std::string& s, const std::string& suffix);

/// Joins the pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 const std::string& sep);

}  // namespace polaris
