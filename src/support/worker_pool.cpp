#include "support/worker_pool.h"

#include <algorithm>

#include "support/assert.h"

namespace polaris {

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  batch_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int WorkerPool::threads_spawned() const {
  return static_cast<int>(threads_.size());
}

bool WorkerPool::pop_or_steal(std::size_t self, std::size_t n_participants,
                              std::size_t* out) {
  {
    Deque& own = *deques_[self];
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.tasks.empty()) {
      *out = own.tasks.front();
      own.tasks.pop_front();
      return true;
    }
  }
  for (std::size_t k = 1; k < n_participants; ++k) {
    Deque& victim = *deques_[(self + k) % n_participants];
    std::lock_guard<std::mutex> lk(victim.mu);
    if (!victim.tasks.empty()) {
      *out = victim.tasks.back();
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void WorkerPool::drain(std::size_t self, std::size_t n_participants,
                       const std::function<void(std::size_t)>& fn) {
  std::size_t task = 0;
  while (pop_or_steal(self, n_participants, &task)) {
    fn(task);
    std::lock_guard<std::mutex> lk(mu_);
    if (--remaining_ == 0) done_cv_.notify_all();
  }
}

void WorkerPool::worker_main(std::size_t self) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t participants = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      batch_cv_.wait(lk, [&] { return shutdown_ || batch_ != seen; });
      if (shutdown_) return;
      seen = batch_;
      // Skip without touching the deques when the batch is already over (a
      // wake-up delivered after the caller drained everything itself) or
      // narrower than the pool (extra threads sit the batch out).
      if (fn_ == nullptr || self >= participants_) continue;
      fn = fn_;
      participants = participants_;
      ++draining_;
    }
    drain(self, participants, *fn);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--draining_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::run(std::size_t n_tasks, int max_workers,
                     const std::function<void(std::size_t)>& fn) {
  if (n_tasks == 0) return;
  const std::size_t participants =
      std::min<std::size_t>(n_tasks,
                            static_cast<std::size_t>(
                                max_workers < 1 ? 1 : max_workers));
  if (participants <= 1) {
    for (std::size_t i = 0; i < n_tasks; ++i) fn(i);
    return;
  }
  while (deques_.size() < participants)
    deques_.push_back(std::make_unique<Deque>());
  // Participant 0 is this thread; each extra participant is one
  // persistent worker thread, spawned the first time a batch needs it.
  while (threads_.size() + 1 < participants) {
    const std::size_t self = threads_.size() + 1;
    threads_.emplace_back([this, self] { worker_main(self); });
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    p_assert_msg(fn_ == nullptr, "WorkerPool::run does not nest");
    // Round-robin deal: deterministic initial placement (stealing then
    // rebalances dynamically without affecting any task's output).
    for (std::size_t i = 0; i < n_tasks; ++i)
      deques_[i % participants]->tasks.push_back(i);
    fn_ = &fn;
    remaining_ = n_tasks;
    participants_ = participants;
    ++batch_;
  }
  batch_cv_.notify_all();
  drain(0, participants, fn);
  // Wait for completion *and* for every worker to leave the batch — only
  // then is it safe to retire fn and let the next batch refill the deques.
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return remaining_ == 0 && draining_ == 0; });
    fn_ = nullptr;
  }
}

}  // namespace polaris
