#include "symbolic/compare.h"

#include <algorithm>

namespace polaris {

namespace {

/// Atoms of f ordered by descending elimination rank (innermost first);
/// rank ties broken by AtomId for determinism.
std::vector<AtomId> elimination_order(const Polynomial& f,
                                      const FactContext& ctx) {
  std::vector<AtomId> atoms = f.atoms();
  std::stable_sort(atoms.begin(), atoms.end(), [&](AtomId x, AtomId y) {
    return ctx.rank(x) > ctx.rank(y);
  });
  return atoms;
}

}  // namespace

bool prove_ge0(const Polynomial& f, const FactContext& ctx, int depth) {
  if (f.is_constant()) return f.constant_value() >= Rational(0);
  if (depth <= 0) return false;

  for (AtomId a : elimination_order(f, ctx)) {
    int deg = f.degree_in(a);
    Monotonicity mono = monotonicity(f, a, ctx, depth - 1);
    if (mono == Monotonicity::NonDecreasing ||
        (deg == 1 && mono == Monotonicity::Unknown)) {
      // Minimum over [lo, hi] is at a lower bound (for deg==1 we must also
      // check that the leading coefficient situation still makes a lower
      // bound the minimizer; if monotonicity is unknown, check both ends).
      bool need_both = (mono == Monotonicity::Unknown);
      for (const Polynomial& lo : ctx.lower_bounds(a)) {
        if (lo.contains(a)) continue;
        if (!prove_ge0(f.substitute(a, lo), ctx, depth - 1)) continue;
        if (!need_both) return true;
        for (const Polynomial& hi : ctx.upper_bounds(a)) {
          if (hi.contains(a)) continue;
          if (prove_ge0(f.substitute(a, hi), ctx, depth - 1)) return true;
        }
      }
    }
    if (mono == Monotonicity::NonIncreasing) {
      for (const Polynomial& hi : ctx.upper_bounds(a)) {
        if (hi.contains(a)) continue;
        if (prove_ge0(f.substitute(a, hi), ctx, depth - 1)) return true;
      }
    }
  }
  return false;
}

bool prove_gt0(const Polynomial& f, const FactContext& ctx, int depth) {
  // Clear coefficient denominators: f > 0 iff D*f > 0 for D > 0, and for
  // integer-valued D*f (integer atoms), D*f > 0 iff D*f - 1 >= 0.
  std::int64_t den = 1;
  for (const auto& [m, c] : f.terms()) {
    std::int64_t d = c.den();
    std::int64_t g = std::gcd(den, d);
    den = den / g * d;
  }
  Polynomial scaled = f * Polynomial::constant(Rational(den));
  return prove_ge0(scaled - Polynomial::constant(Rational(1)), ctx, depth);
}

Monotonicity monotonicity(const Polynomial& f, AtomId a,
                          const FactContext& ctx, int depth) {
  if (!f.contains(a)) return Monotonicity::Constant;
  Polynomial delta = f.forward_difference(a);
  if (delta.is_zero()) return Monotonicity::Constant;
  if (prove_ge0(delta, ctx, depth)) return Monotonicity::NonDecreasing;
  if (prove_ge0(-delta, ctx, depth)) return Monotonicity::NonIncreasing;
  return Monotonicity::Unknown;
}

Extremes eliminate_range(const Polynomial& f, AtomId a, const Polynomial& lo,
                         const Polynomial& hi, const FactContext& ctx,
                         int depth) {
  Extremes out;
  if (!f.contains(a)) {
    out.min = f;
    out.max = f;
    return out;
  }
  p_assert_msg(!lo.contains(a) && !hi.contains(a),
               "loop bounds reference the loop's own index");
  Monotonicity mono = monotonicity(f, a, ctx, depth);
  switch (mono) {
    case Monotonicity::Constant:
      p_unreachable("contains(a) but constant in a");
    case Monotonicity::NonDecreasing:
      out.min = f.substitute(a, lo);
      out.max = f.substitute(a, hi);
      return out;
    case Monotonicity::NonIncreasing:
      out.min = f.substitute(a, hi);
      out.max = f.substitute(a, lo);
      return out;
    case Monotonicity::Unknown:
      break;
  }
  // Linear occurrences are extremal at the interval endpoints even when the
  // coefficient's sign is unknown — but we do not know which endpoint is
  // which, so no single min/max polynomial exists.  Give up (the range test
  // will report "no" for this loop order and may try a permutation).
  return out;
}

// --- expression-level wrappers -------------------------------------------------

bool prove_le(const Expression& e1, const Expression& e2,
              const FactContext& ctx) {
  return prove_ge0(Polynomial::from_expr(e2) - Polynomial::from_expr(e1),
                   ctx);
}

bool prove_lt(const Expression& e1, const Expression& e2,
              const FactContext& ctx) {
  return prove_gt0(Polynomial::from_expr(e2) - Polynomial::from_expr(e1),
                   ctx);
}

bool prove_ge(const Expression& e1, const Expression& e2,
              const FactContext& ctx) {
  return prove_le(e2, e1, ctx);
}

bool prove_gt(const Expression& e1, const Expression& e2,
              const FactContext& ctx) {
  return prove_lt(e2, e1, ctx);
}

bool prove_eq(const Expression& e1, const Expression& e2,
              const FactContext& ctx) {
  Polynomial d = Polynomial::from_expr(e1) - Polynomial::from_expr(e2);
  if (d.is_zero()) return true;
  (void)ctx;
  return false;  // equality beyond cancellation requires both <= and >=
}

Cmp compare(const Expression& e1, const Expression& e2,
            const FactContext& ctx) {
  Polynomial d = Polynomial::from_expr(e1) - Polynomial::from_expr(e2);
  if (d.is_zero()) return Cmp::EQ;
  if (prove_gt0(d, ctx)) return Cmp::GT;
  if (prove_gt0(-d, ctx)) return Cmp::LT;
  if (prove_ge0(d, ctx)) return Cmp::GE;
  if (prove_ge0(-d, ctx)) return Cmp::LE;
  return Cmp::Unknown;
}

}  // namespace polaris
