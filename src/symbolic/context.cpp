#include "symbolic/context.h"

namespace polaris {

void FactContext::add_ge0(Polynomial f) {
  if (f.is_constant()) return;  // constants carry no variable information
  facts_.push_back(std::move(f));
}

void FactContext::add_ge0(const Expression& e) {
  add_ge0(Polynomial::from_expr(e));
}

void FactContext::add_range(Symbol* s, const Expression* lo,
                            const Expression* hi) {
  Polynomial v = Polynomial::symbol(s);
  if (lo) add_ge0(v - Polynomial::from_expr(*lo));
  if (hi) add_ge0(Polynomial::from_expr(*hi) - v);
}

void FactContext::add_loop(Symbol* index, const Expression& init,
                           const Expression& limit) {
  add_range(index, &init, &limit);
  // limit >= init (at least one iteration).
  add_ge0(Polynomial::from_expr(limit) - Polynomial::from_expr(init));
}

void FactContext::set_rank(AtomId a, int rank) { ranks_[a] = rank; }

int FactContext::rank(AtomId a) const {
  auto it = ranks_.find(a);
  return it == ranks_.end() ? 0 : it->second;
}

std::vector<Polynomial> FactContext::lower_bounds(AtomId a) const {
  // A fact f >= 0 with f = c*a + g, c a positive constant, yields
  // a >= -g/c; with c negative it yields an upper bound instead.
  std::vector<Polynomial> out;
  for (const Polynomial& f : facts_) {
    if (f.degree_in(a) != 1) continue;
    Rational c = f.coefficient(Monomial::atom(a));
    if (c.is_zero()) continue;  // 'a' only occurs in composite monomials
    Polynomial g = f - Polynomial::atom(a) * Polynomial::constant(c);
    if (g.contains(a)) continue;
    if (c.sign() > 0)
      out.push_back(-g * Polynomial::constant(Rational(1) / c));
  }
  return out;
}

std::vector<Polynomial> FactContext::upper_bounds(AtomId a) const {
  std::vector<Polynomial> out;
  for (const Polynomial& f : facts_) {
    if (f.degree_in(a) != 1) continue;
    Rational c = f.coefficient(Monomial::atom(a));
    if (c.is_zero()) continue;
    Polynomial g = f - Polynomial::atom(a) * Polynomial::constant(c);
    if (g.contains(a)) continue;
    if (c.sign() < 0)
      out.push_back(g * Polynomial::constant(Rational(-1) / c));
  }
  return out;
}

}  // namespace polaris
