#include "symbolic/poly.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "ir/build.h"
#include "support/governor.h"

namespace polaris {

// --- AtomTable ------------------------------------------------------------------

namespace {
thread_local AtomTable* tls_atom_table = nullptr;

/// Governor ceiling on a polynomial about to hold `n` terms; a no-op (one
/// TLS read) when the thread's compile is ungoverned.  Throws
/// ResourceBlowup, caught conservatively at dep-test / simplify query
/// boundaries or by the pass manager's degradation ladder.
inline void governor_note_terms(std::size_t n) {
  if (ResourceGovernor* gov = ResourceGovernor::current())
    gov->check_poly_terms(n);
}
}  // namespace

AtomTable& AtomTable::current() {
  if (tls_atom_table != nullptr) return *tls_atom_table;
  // Fallback for code running outside any compilation scope (standalone
  // symbolic manipulation, tests).  Thread-local, so even unscoped use
  // never shares mutable state across threads.
  thread_local AtomTable fallback;
  return fallback;
}

AtomTable::Scope::Scope(AtomTable* table) : prev_(tls_atom_table) {
  tls_atom_table = table;
}

AtomTable::Scope::~Scope() { tls_atom_table = prev_; }

AtomId AtomTable::intern(const Expression& e) {
  std::size_t h = e.hash();
  auto [lo, hi] = index_.equal_range(h);
  // Scan the whole bucket for the lowest matching id: remap collisions can
  // leave structurally equal atoms under distinct ids, and the multimap's
  // order among equal hashes is unspecified — the lowest id is the answer
  // the pre-collision table gave, so lookups stay deterministic.
  AtomId found = -1;
  for (auto it = lo; it != hi; ++it) {
    if (atoms_[static_cast<size_t>(it->second)]->equals(e) &&
        (found < 0 || it->second < found))
      found = it->second;
  }
  if (found >= 0) return found;
  // Ceiling + fuel are charged before the atom is stored, so a tripped
  // governor leaves the table exactly as it was.
  if (ResourceGovernor* gov = ResourceGovernor::current()) {
    gov->check_atoms(atoms_.size() + 1);
    gov->charge(4);
  }
  AtomId id = static_cast<AtomId>(atoms_.size());
  atoms_.push_back(e.clone());
  hashes_.push_back(h);
  index_.emplace(h, id);
  if (e.kind() == ExprKind::VarRef)
    symbol_ids_.emplace(static_cast<const VarRef&>(e).symbol(), id);
  return id;
}

AtomId AtomTable::intern_symbol(Symbol* s) {
  auto it = symbol_ids_.find(s);
  if (it != symbol_ids_.end()) return it->second;
  VarRef ref(s);
  return intern(ref);
}

const Expression& AtomTable::expr(AtomId id) const {
  p_assert(id >= 0 && static_cast<size_t>(id) < atoms_.size());
  return *atoms_[static_cast<size_t>(id)];
}

Symbol* AtomTable::symbol(AtomId id) const {
  const Expression& e = expr(id);
  if (e.kind() == ExprKind::VarRef)
    return static_cast<const VarRef&>(e).symbol();
  return nullptr;
}

void AtomTable::remap(const SymbolMap<Symbol*>& map) {
  for (ExprPtr& a : atoms_) remap_symbols(*a, map);
  index_.clear();
  symbol_ids_.clear();
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    std::size_t h = atoms_[i]->hash();
    hashes_[i] = h;
    index_.emplace(h, static_cast<AtomId>(i));
    if (atoms_[i]->kind() == ExprKind::VarRef)
      symbol_ids_.emplace(static_cast<const VarRef&>(*atoms_[i]).symbol(),
                          static_cast<AtomId>(i));
  }
  // Cache keys hold pre-remap symbol pointers; cached polynomials are only
  // valid against the remapped unit if re-derived.
  clear_canon_cache();
}

void AtomTable::truncate(std::size_t n) {
  if (n >= atoms_.size()) return;
  for (std::size_t i = n; i < atoms_.size(); ++i) {
    // The stored hash pins the dropped id to one index bucket — no scan of
    // the whole multimap as the old representation needed.
    auto [lo, hi] = index_.equal_range(hashes_[i]);
    for (auto it = lo; it != hi; ++it) {
      if (static_cast<std::size_t>(it->second) == i) {
        index_.erase(it);
        break;
      }
    }
    if (Symbol* s = symbol(static_cast<AtomId>(i))) {
      auto sit = symbol_ids_.find(s);
      if (sit != symbol_ids_.end() &&
          static_cast<std::size_t>(sit->second) == i)
        symbol_ids_.erase(sit);
    }
  }
  atoms_.resize(n);
  hashes_.resize(n);
  // Cached polynomials may reference the dropped ids.
  clear_canon_cache();
}

void AtomTable::reset() {
  atoms_.clear();
  hashes_.clear();
  index_.clear();
  symbol_ids_.clear();
  clear_canon_cache();
}

// --- canonicalization cache -----------------------------------------------------

AtomTable::CanonEntry::~CanonEntry() { delete poly; }

void AtomTable::set_canon_cache_enabled(bool on) {
  canon_enabled_ = on;
  if (!on) clear_canon_cache();
}

const Polynomial* AtomTable::canon_lookup(std::size_t hash,
                                          const Expression& e,
                                          bool exact_division) {
  if (!canon_enabled_) return nullptr;
  auto [lo, hi] = canon_.equal_range(hash);
  for (auto it = lo; it != hi; ++it) {
    if (it->second.exact_division == exact_division &&
        it->second.key->equals(e)) {
      ++canon_hits_;
      return it->second.poly;
    }
  }
  ++canon_misses_;
  return nullptr;
}

void AtomTable::canon_insert(std::size_t hash, const Expression& e,
                             bool exact_division, const Polynomial& p) {
  if (!canon_enabled_) return;
  canon_.emplace(hash,
                 CanonEntry(e.clone(), new Polynomial(p), exact_division));
}

void AtomTable::clear_canon_cache() { canon_.clear(); }

// --- Monomial ------------------------------------------------------------------

Monomial Monomial::atom(AtomId id, int power) {
  p_assert(power > 0);
  Monomial m;
  m.factors_.emplace_back(id, power);
  return m;
}

int Monomial::degree() const {
  int d = 0;
  for (const auto& [id, p] : factors_) d += p;
  return d;
}

int Monomial::degree_in(AtomId id) const {
  for (const auto& [a, p] : factors_)
    if (a == id) return p;
  return 0;
}

Monomial Monomial::operator*(const Monomial& o) const {
  Monomial out;
  auto a = factors_.begin();
  auto b = o.factors_.begin();
  while (a != factors_.end() || b != o.factors_.end()) {
    if (b == o.factors_.end() || (a != factors_.end() && a->first < b->first)) {
      out.factors_.push_back(*a++);
    } else if (a == factors_.end() || b->first < a->first) {
      out.factors_.push_back(*b++);
    } else {
      out.factors_.emplace_back(a->first, a->second + b->second);
      ++a;
      ++b;
    }
  }
  return out;
}

Monomial Monomial::without(AtomId id, int power) const {
  Monomial out;
  bool found = false;
  for (const auto& [a, p] : factors_) {
    if (a == id) {
      p_assert_msg(p >= power, "monomial division underflow");
      found = true;
      if (p > power) out.factors_.emplace_back(a, p - power);
    } else {
      out.factors_.emplace_back(a, p);
    }
  }
  p_assert_msg(found || power == 0, "monomial lacks requested factor");
  return out;
}

// --- Polynomial ------------------------------------------------------------------

Polynomial Polynomial::constant(const Rational& r) {
  Polynomial p;
  p.add_term(Monomial(), r);
  return p;
}

Polynomial Polynomial::atom(AtomId id) {
  Polynomial p;
  p.add_term(Monomial::atom(id), Rational(1));
  return p;
}

Polynomial Polynomial::symbol(Symbol* s) {
  return atom(AtomTable::current().intern_symbol(s));
}

void Polynomial::add_term(const Monomial& m, const Rational& c) {
  if (c.is_zero()) return;
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), m,
      [](const Term& t, const Monomial& key) { return t.first < key; });
  if (it != terms_.end() && it->first == m) {
    it->second += c;
    if (it->second.is_zero()) terms_.erase(it);
  } else {
    terms_.emplace(it, m, c);
    governor_note_terms(terms_.size());
  }
}

Polynomial Polynomial::normalized(TermList raw) {
  if (ResourceGovernor* gov = ResourceGovernor::current())
    gov->charge(raw.size());
  std::sort(raw.begin(), raw.end(),
            [](const Term& x, const Term& y) { return x.first < y.first; });
  Polynomial out;
  out.terms_.reserve(raw.size());
  for (Term& t : raw) {
    if (!out.terms_.empty() && out.terms_.back().first == t.first) {
      out.terms_.back().second += t.second;
      if (out.terms_.back().second.is_zero()) out.terms_.pop_back();
    } else if (!t.second.is_zero()) {
      out.terms_.push_back(std::move(t));
    }
  }
  governor_note_terms(out.terms_.size());
  return out;
}

bool Polynomial::is_constant() const {
  return terms_.empty() ||
         (terms_.size() == 1 && terms_.front().first.is_unit());
}

Rational Polynomial::constant_value() const {
  p_assert_msg(is_constant(), "polynomial is not constant");
  return terms_.empty() ? Rational(0) : terms_.front().second;
}

Rational Polynomial::coefficient(const Monomial& m) const {
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), m,
      [](const Term& t, const Monomial& key) { return t.first < key; });
  return it == terms_.end() || !(it->first == m) ? Rational(0) : it->second;
}

int Polynomial::degree_in(AtomId id) const {
  int d = 0;
  for (const auto& [m, c] : terms_) d = std::max(d, m.degree_in(id));
  return d;
}

std::vector<AtomId> Polynomial::atoms() const {
  std::vector<AtomId> out;
  for (const auto& [m, c] : terms_)
    for (const auto& [a, p] : m.factors())
      if (std::find(out.begin(), out.end(), a) == out.end())
        out.push_back(a);
  std::sort(out.begin(), out.end());
  return out;
}

Polynomial Polynomial::operator-() const {
  Polynomial out;
  out.terms_.reserve(terms_.size());
  for (const auto& [m, c] : terms_) out.terms_.emplace_back(m, -c);
  return out;
}

Polynomial Polynomial::operator+(const Polynomial& o) const {
  Polynomial out;
  out.terms_.reserve(terms_.size() + o.terms_.size());
  auto a = terms_.begin();
  auto b = o.terms_.begin();
  while (a != terms_.end() && b != o.terms_.end()) {
    if (a->first < b->first) {
      out.terms_.push_back(*a++);
    } else if (b->first < a->first) {
      out.terms_.push_back(*b++);
    } else {
      Rational c = a->second + b->second;
      if (!c.is_zero()) out.terms_.emplace_back(a->first, c);
      ++a;
      ++b;
    }
  }
  out.terms_.insert(out.terms_.end(), a, terms_.end());
  out.terms_.insert(out.terms_.end(), b, o.terms_.end());
  governor_note_terms(out.terms_.size());
  return out;
}

Polynomial Polynomial::operator-(const Polynomial& o) const {
  Polynomial out;
  out.terms_.reserve(terms_.size() + o.terms_.size());
  auto a = terms_.begin();
  auto b = o.terms_.begin();
  while (a != terms_.end() && b != o.terms_.end()) {
    if (a->first < b->first) {
      out.terms_.push_back(*a++);
    } else if (b->first < a->first) {
      out.terms_.emplace_back(b->first, -b->second);
      ++b;
    } else {
      Rational c = a->second - b->second;
      if (!c.is_zero()) out.terms_.emplace_back(a->first, c);
      ++a;
      ++b;
    }
  }
  out.terms_.insert(out.terms_.end(), a, terms_.end());
  for (; b != o.terms_.end(); ++b)
    out.terms_.emplace_back(b->first, -b->second);
  governor_note_terms(out.terms_.size());
  return out;
}

Polynomial Polynomial::operator*(const Polynomial& o) const {
  TermList raw;
  raw.reserve(terms_.size() * o.terms_.size());
  for (const auto& [m1, c1] : terms_)
    for (const auto& [m2, c2] : o.terms_) raw.emplace_back(m1 * m2, c1 * c2);
  return normalized(std::move(raw));
}

Polynomial Polynomial::pow(int k) const {
  p_assert(k >= 0);
  Polynomial out = constant(Rational(1));
  for (int i = 0; i < k; ++i) out = out * *this;
  return out;
}

Polynomial Polynomial::substitute(AtomId id, const Polynomial& value) const {
  TermList raw;
  raw.reserve(terms_.size());
  // value.pow(d) is shared across every term of degree d (the dominant
  // cost of the old term-at-a-time rebuild).
  std::vector<std::optional<Polynomial>> powers;
  for (const auto& [m, c] : terms_) {
    int d = m.degree_in(id);
    if (d == 0) {
      raw.emplace_back(m, c);
      continue;
    }
    if (powers.size() <= static_cast<std::size_t>(d))
      powers.resize(static_cast<std::size_t>(d) + 1);
    std::optional<Polynomial>& vp = powers[static_cast<std::size_t>(d)];
    if (!vp) vp = value.pow(d);
    Monomial rest = m.without(id, d);
    for (const auto& [vm, vc] : vp->terms_)
      raw.emplace_back(rest * vm, c * vc);
  }
  return normalized(std::move(raw));
}

Polynomial Polynomial::forward_difference(AtomId id) const {
  Polynomial shifted =
      substitute(id, Polynomial::atom(id) + constant(Rational(1)));
  return shifted - *this;
}

Polynomial faulhaber(int k, AtomId n) {
  // S_k(n) = sum_{i=1}^{n} i^k as an exact polynomial, k <= 6.
  Polynomial N = Polynomial::atom(n);
  Polynomial one = Polynomial::constant(Rational(1));
  auto C = [](std::int64_t num, std::int64_t den = 1) {
    return Polynomial::constant(Rational(num, den));
  };
  switch (k) {
    case 0:
      return N;
    case 1:  // n(n+1)/2
      return N * (N + one) * C(1, 2);
    case 2:  // n(n+1)(2n+1)/6
      return N * (N + one) * (C(2) * N + one) * C(1, 6);
    case 3:  // (n(n+1)/2)^2
      return (N * (N + one) * C(1, 2)).pow(2);
    case 4:  // n(n+1)(2n+1)(3n^2+3n-1)/30
      return N * (N + one) * (C(2) * N + one) *
             (C(3) * N.pow(2) + C(3) * N - one) * C(1, 30);
    case 5:  // n^2(n+1)^2(2n^2+2n-1)/12
      return N.pow(2) * (N + one).pow(2) *
             (C(2) * N.pow(2) + C(2) * N - one) * C(1, 12);
    case 6:  // n(n+1)(2n+1)(3n^4+6n^3-3n+1)/42
      return N * (N + one) * (C(2) * N + one) *
             (C(3) * N.pow(4) + C(6) * N.pow(3) - C(3) * N + one) * C(1, 42);
    default:
      p_assert_msg(false, "faulhaber: unsupported exponent " +
                              std::to_string(k));
  }
  p_unreachable("faulhaber");
}

Polynomial Polynomial::sum_over(AtomId id, const Polynomial& lo,
                                const Polynomial& hi) const {
  // Write f = sum_k g_k(rest) * id^k and sum each power exactly:
  //   sum_{i=lo}^{hi} i^k = S_k(hi) - S_k(lo-1).
  int maxdeg = degree_in(id);
  p_assert_msg(maxdeg <= 6, "sum_over: degree too high");
  // Collect g_k.
  std::vector<Polynomial> g(static_cast<size_t>(maxdeg) + 1);
  for (const auto& [m, c] : terms_)
    g[static_cast<size_t>(m.degree_in(id))].add_term(
        m.degree_in(id) > 0 ? m.without(id, m.degree_in(id)) : m, c);
  Polynomial lo_minus_1 = lo - constant(Rational(1));
  Polynomial out;
  for (int k = 0; k <= maxdeg; ++k) {
    if (g[static_cast<size_t>(k)].is_zero()) continue;
    Polynomial sk = faulhaber(k, id);
    Polynomial span = sk.substitute(id, hi) - sk.substitute(id, lo_minus_1);
    out = out + g[static_cast<size_t>(k)] * span;
  }
  return out;
}

// --- conversion from expressions -----------------------------------------------

namespace {

std::optional<Rational> rational_of_real(double v) {
  // Accept only values that are exactly small rationals with power-of-two
  // denominators (doubles are dyadic); bound the denominator to keep exact.
  double intpart;
  if (std::modf(v, &intpart) == 0.0 && std::abs(v) < 9e15)
    return Rational(static_cast<std::int64_t>(v));
  for (std::int64_t den : {2, 4, 8, 16, 32, 64, 128, 256}) {
    double scaled = v * static_cast<double>(den);
    if (std::modf(scaled, &intpart) == 0.0 && std::abs(scaled) < 9e15)
      return Rational(static_cast<std::int64_t>(scaled), den);
  }
  return std::nullopt;
}

Polynomial convert(const Expression& e, bool exact_division);

Polynomial opaque(const Expression& e) {
  return Polynomial::atom(AtomTable::current().intern(e));
}

/// Conversion of the interior (UnOp/BinOp) node kinds — the only recursive
/// cases, factored out so convert() can memoize them.
Polynomial convert_interior(const Expression& e, bool exact_division) {
  if (e.kind() == ExprKind::UnOp) {
    const auto& u = static_cast<const UnOp&>(e);
    if (u.op() == UnOpKind::Neg) return -convert(u.operand(), exact_division);
    return opaque(e);
  }
  const auto& b = static_cast<const BinOp&>(e);
  switch (b.op()) {
    case BinOpKind::Add:
      return convert(b.left(), exact_division) +
             convert(b.right(), exact_division);
    case BinOpKind::Sub:
      return convert(b.left(), exact_division) -
             convert(b.right(), exact_division);
    case BinOpKind::Mul:
      return convert(b.left(), exact_division) *
             convert(b.right(), exact_division);
    case BinOpKind::Div: {
      Polynomial den = convert(b.right(), exact_division);
      if (den.is_constant() && !den.constant_value().is_zero()) {
        Polynomial num = convert(b.left(), exact_division);
        Rational scale = Rational(1) / den.constant_value();
        if (exact_division || b.type().is_floating() || num.is_constant())
          return num * Polynomial::constant(scale);
      }
      return opaque(e);
    }
    case BinOpKind::Pow: {
      Polynomial ex = convert(b.right(), exact_division);
      if (ex.is_constant() && ex.constant_value().is_integer()) {
        std::int64_t k = ex.constant_value().as_integer();
        if (k >= 0 && k <= 8)
          return convert(b.left(), exact_division).pow(static_cast<int>(k));
      }
      return opaque(e);
    }
    default:
      return opaque(e);  // comparisons/logicals are not polynomial
  }
}

Polynomial convert(const Expression& e, bool exact_division) {
  // One fuel tick per conversion node: Expression→Polynomial traffic is
  // the compile's dominant symbolic cost, so it is the fuel meter's
  // primary clock.
  if (ResourceGovernor* gov = ResourceGovernor::current()) gov->charge(1);
  switch (e.kind()) {
    case ExprKind::IntConst:
      return Polynomial::constant(
          Rational(static_cast<const IntConst&>(e).value()));
    case ExprKind::RealConst: {
      auto r = rational_of_real(static_cast<const RealConst&>(e).value());
      return r ? Polynomial::constant(*r) : opaque(e);
    }
    case ExprKind::VarRef: {
      Symbol* s = static_cast<const VarRef&>(e).symbol();
      if (s->kind() == SymbolKind::Parameter && s->param_value())
        return convert(*s->param_value(), exact_division);
      return Polynomial::symbol(s);
    }
    case ExprKind::UnOp:
    case ExprKind::BinOp: {
      // Memoize interior conversions in the thread-bound table's cache.
      // Order-safety: a hit implies a prior full conversion of a
      // structurally equal subtree in the same mode, which already
      // interned every atom the result references — so caching never
      // changes atom-interning order (and thus never perturbs canonical
      // term order in printed artifacts).
      AtomTable& tab = AtomTable::current();
      if (!tab.canon_cache_enabled()) return convert_interior(e, exact_division);
      std::size_t h = e.hash();
      if (const Polynomial* hit = tab.canon_lookup(h, e, exact_division))
        return *hit;
      Polynomial p = convert_interior(e, exact_division);
      tab.canon_insert(h, e, exact_division, p);
      return p;
    }
    default:
      return opaque(e);  // ArrayRef, FuncCall, String, Logical, Wildcard
  }
}

}  // namespace

Polynomial Polynomial::from_expr(const Expression& e, bool exact_division) {
  // Constant integer division of constants must still truncate: handled in
  // convert() by only folding when numerator is constant too in that mode.
  // The truncation fix-up below stays outside the memoization: the cache
  // stores raw convert() results only.
  Polynomial p = convert(e, exact_division);
  if (!exact_division && p.is_constant()) {
    // Fortran integer constant folding truncates; leave rationals alone
    // only if they are exact integers.
    Rational c = p.constant_value();
    if (!c.is_integer() && e.type().is_integer()) {
      // Truncate toward zero as Fortran would.
      std::int64_t t = c.num() / c.den();
      return constant(Rational(t));
    }
  }
  return p;
}

// --- conversion back to expressions ----------------------------------------------

ExprPtr Polynomial::to_expr() const {
  if (terms_.empty()) return ib::ic(0);

  // Common denominator of all coefficients.
  std::int64_t den = 1;
  for (const auto& [m, c] : terms_) {
    std::int64_t d = c.den();
    std::int64_t g = std::gcd(den, d);
    den = den / g * d;
  }

  auto monomial_expr = [](const Monomial& m) -> ExprPtr {
    ExprPtr out;
    for (const auto& [a, p] : m.factors()) {
      for (int k = 0; k < p; ++k) {
        ExprPtr factor = AtomTable::current().expr(a).clone();
        out = out ? ib::mul(std::move(out), std::move(factor))
                  : std::move(factor);
      }
    }
    return out;  // null for the unit monomial
  };

  ExprPtr sum;
  // Emit higher-degree terms first for readability (terms_ is sorted in
  // monomial order; collect and reverse by degree, stable).
  std::vector<std::pair<const Monomial*, Rational>> ordered;
  for (const auto& [m, c] : terms_) ordered.emplace_back(&m, c);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& x, const auto& y) {
                     if (x.first->degree() != y.first->degree())
                       return x.first->degree() > y.first->degree();
                     // Positive coefficients first to avoid a leading '-'.
                     return x.second.sign() > y.second.sign();
                   });

  for (const auto& [m, c] : ordered) {
    Rational scaled = c * Rational(den);
    p_assert(scaled.is_integer());
    std::int64_t k = scaled.as_integer();
    ExprPtr me = monomial_expr(*m);
    ExprPtr term;
    if (me == nullptr) {
      term = ib::ic(k < 0 ? -k : k);
    } else if (k == 1 || k == -1) {
      term = std::move(me);
    } else {
      term = ib::mul(ib::ic(k < 0 ? -k : k), std::move(me));
    }
    if (!sum) {
      sum = k < 0 ? ib::neg(std::move(term)) : std::move(term);
    } else if (k < 0) {
      sum = ib::sub(std::move(sum), std::move(term));
    } else {
      sum = ib::add(std::move(sum), std::move(term));
    }
  }
  if (den != 1) sum = ib::div(std::move(sum), ib::ic(den));
  return sum;
}

std::string Polynomial::to_string() const { return to_expr()->to_string(); }

}  // namespace polaris
