#include "symbolic/simplify.h"

#include "ir/build.h"
#include "support/governor.h"
#include "support/statistic.h"
#include "symbolic/poly.h"

namespace polaris {

namespace {

POLARIS_STATISTIC("simplify", canonical_roundtrips,
                  "integer subtrees kept in canonical polynomial form");
POLARIS_STATISTIC("simplify", comparisons_folded,
                  "constant comparisons folded to a logical constant");

/// Counts nodes, a crude size metric to decide whether canonicalization
/// actually simplified anything.
int node_count(const Expression& e) {
  int n = 0;
  walk(e, [&](const Expression&) { ++n; });
  return n;
}

bool is_arith_kind(const Expression& e) {
  if (e.kind() == ExprKind::UnOp)
    return static_cast<const UnOp&>(e).op() == UnOpKind::Neg;
  if (e.kind() == ExprKind::BinOp)
    return is_arithmetic(static_cast<const BinOp&>(e).op());
  return false;
}

/// A simplified expression with its node count threaded alongside, so the
/// canonical-vs-structural size race at every integer subtree compares
/// counts accumulated during the rewrite instead of re-walking both
/// results at every level (which made simplification quadratic in depth).
struct SimpRes {
  ExprPtr e;
  int n;
};

SimpRes simplify_rec(const Expression& e, int depth);

/// Structural rewrite: the node itself with each child simplified.
/// Count identity: walk() visits a node then its children, so the total
/// is one plus the simplified children's counts.
SimpRes simplify_children(const Expression& e, int depth) {
  ExprPtr copy = e.clone();
  int n = 1;
  for (ExprPtr* slot : copy->children()) {
    SimpRes child = simplify_rec(**slot, depth + 1);
    n += child.n;
    *slot = std::move(child.e);
  }
  return {std::move(copy), n};
}

std::optional<double> fold_real(const Expression& e) {
  switch (e.kind()) {
    case ExprKind::IntConst:
      return static_cast<double>(static_cast<const IntConst&>(e).value());
    case ExprKind::RealConst:
      return static_cast<const RealConst&>(e).value();
    default:
      return std::nullopt;
  }
}

SimpRes simplify_float_binop(const BinOp& b, SimpRes l, SimpRes r) {
  auto lv = fold_real(*l.e);
  auto rv = fold_real(*r.e);
  bool dbl = b.type().kind() == TypeKind::DoublePrecision;
  if (lv && rv) {
    switch (b.op()) {
      case BinOpKind::Add: return {ib::rc(*lv + *rv, dbl), 1};
      case BinOpKind::Sub: return {ib::rc(*lv - *rv, dbl), 1};
      case BinOpKind::Mul: return {ib::rc(*lv * *rv, dbl), 1};
      case BinOpKind::Div:
        if (*rv != 0.0) return {ib::rc(*lv / *rv, dbl), 1};
        break;
      default:
        break;
    }
  }
  // Identities (exact in IEEE arithmetic for these operand positions).
  // A floating operand must already have the BinOp's floating kind: in
  // mixed-precision expressions like `real_x - 0.0d0` the operation's
  // double type is part of the semantics, and returning the bare REAL
  // operand would silently demote the subtree (and vice versa for a
  // DOUBLE operand in a REAL-typed operation).  Integer operands stay
  // foldable — the value is exact and the context converts.
  auto keeps_type = [&](const SimpRes& kept) {
    return !kept.e->type().is_floating() ||
           kept.e->type().kind() == b.type().kind();
  };
  if (rv && *rv == 0.0 &&
      (b.op() == BinOpKind::Add || b.op() == BinOpKind::Sub) &&
      keeps_type(l))
    return l;
  if (lv && *lv == 0.0 && b.op() == BinOpKind::Add && keeps_type(r)) return r;
  if (rv && *rv == 1.0 &&
      (b.op() == BinOpKind::Mul || b.op() == BinOpKind::Div) &&
      keeps_type(l))
    return l;
  if (lv && *lv == 1.0 && b.op() == BinOpKind::Mul && keeps_type(r)) return r;
  int n = 1 + l.n + r.n;
  return {ib::bin(b.op(), std::move(l.e), std::move(r.e)), n};
}

SimpRes simplify_rec(const Expression& e, int depth) {
  // Degradation-ladder depth limit (ResourceGovernor, retry rungs only):
  // past the limit the subtree is kept verbatim — unsimplified is always
  // a correct answer.
  if (ResourceGovernor* gov = ResourceGovernor::current()) {
    const int limit = gov->simplify_depth_limit();
    if (limit > 0 && depth >= limit) return {e.clone(), node_count(e)};
  }
  // Integer arithmetic: canonical polynomial round trip, kept only when it
  // does not grow the tree.  The structural rewrite must still be built —
  // its size decides the race, and its nested subtrees run their own races
  // (whose statistics are part of the deterministic compile record) — but
  // from_expr is memoized in the AtomTable's canonicalization cache, so
  // the nested conversions the structural recursion triggers are hits.
  if (is_arith_kind(e) && e.type().is_integer()) {
    Polynomial p = Polynomial::from_expr(e, /*exact_division=*/false);
    ExprPtr canon = p.to_expr();
    int canon_n = node_count(*canon);
    SimpRes structural = simplify_children(e, depth);
    if (canon_n <= structural.n) {
      ++canonical_roundtrips;
      return {std::move(canon), canon_n};
    }
    return structural;
  }
  switch (e.kind()) {
    case ExprKind::BinOp: {
      const auto& b = static_cast<const BinOp&>(e);
      SimpRes l = simplify_rec(b.left(), depth + 1);
      SimpRes r = simplify_rec(b.right(), depth + 1);
      if (is_arithmetic(b.op()) && b.type().is_floating())
        return simplify_float_binop(b, std::move(l), std::move(r));
      if (b.op() == BinOpKind::And || b.op() == BinOpKind::Or) {
        // Logical constant folding.
        auto as_bool = [](const Expression& x) -> std::optional<bool> {
          if (x.kind() == ExprKind::LogicalConst)
            return static_cast<const LogicalConst&>(x).value();
          return std::nullopt;
        };
        auto lb = as_bool(*l.e), rb = as_bool(*r.e);
        if (b.op() == BinOpKind::And) {
          if (lb && !*lb) return {ib::lc(false), 1};
          if (rb && !*rb) return {ib::lc(false), 1};
          if (lb && *lb) return r;
          if (rb && *rb) return l;
        } else {
          if (lb && *lb) return {ib::lc(true), 1};
          if (rb && *rb) return {ib::lc(true), 1};
          if (lb && !*lb) return r;
          if (rb && !*rb) return l;
        }
      }
      if (is_comparison(b.op())) {
        // Fold comparisons of constants via the polynomial difference.
        Polynomial d = Polynomial::from_expr(*l.e, false) -
                       Polynomial::from_expr(*r.e, false);
        if (d.is_constant()) {
          ++comparisons_folded;
          int s = d.constant_value().sign();
          switch (b.op()) {
            case BinOpKind::Lt: return {ib::lc(s < 0), 1};
            case BinOpKind::Le: return {ib::lc(s <= 0), 1};
            case BinOpKind::Gt: return {ib::lc(s > 0), 1};
            case BinOpKind::Ge: return {ib::lc(s >= 0), 1};
            case BinOpKind::Eq: return {ib::lc(s == 0), 1};
            case BinOpKind::Ne: return {ib::lc(s != 0), 1};
            default: break;
          }
        }
      }
      int n = 1 + l.n + r.n;
      return {ib::bin(b.op(), std::move(l.e), std::move(r.e)), n};
    }
    case ExprKind::UnOp: {
      const auto& u = static_cast<const UnOp&>(e);
      SimpRes op = simplify_rec(u.operand(), depth + 1);
      if (u.op() == UnOpKind::Not &&
          op.e->kind() == ExprKind::LogicalConst)
        return {ib::lc(!static_cast<const LogicalConst&>(*op.e).value()), 1};
      if (u.op() == UnOpKind::Neg) {
        if (auto v = fold_real(*op.e)) {
          if (op.e->kind() == ExprKind::IntConst)
            return {ib::ic(-static_cast<const IntConst&>(*op.e).value()), 1};
          return {ib::rc(-*v,
                         op.e->type().kind() == TypeKind::DoublePrecision),
                  1};
        }
      }
      int n = 1 + op.n;
      return {std::make_unique<UnOp>(u.op(), std::move(op.e)), n};
    }
    default:
      return simplify_children(e, depth);
  }
}

}  // namespace

// The three public entry points are conservative bail-out boundaries: a
// resource ceiling tripping mid-rewrite (polynomial term ceiling, atom
// ceiling, compile fuel) yields the original expression / "not a
// constant" instead of propagating — unsimplified is always correct.

ExprPtr simplify(const Expression& e) {
  try {
    return simplify_rec(e, 0).e;
  } catch (const ResourceBlowup& b) {
    note_conservative_bailout("simplify", b);
    return e.clone();
  }
}

void simplify_in_place(ExprPtr& e) {
  p_assert(e != nullptr);
  try {
    e = simplify_rec(*e, 0).e;
  } catch (const ResourceBlowup& b) {
    note_conservative_bailout("simplify", b);
  }
}

bool try_fold_int(const Expression& e, std::int64_t* out) {
  p_assert(out != nullptr);
  try {
    Polynomial p = Polynomial::from_expr(e, /*exact_division=*/false);
    if (!p.is_constant() || !p.constant_value().is_integer()) return false;
    *out = p.constant_value().as_integer();
    return true;
  } catch (const ResourceBlowup& b) {
    note_conservative_bailout("simplify", b);
    return false;
  }
}

}  // namespace polaris
