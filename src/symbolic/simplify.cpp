#include "symbolic/simplify.h"

#include "ir/build.h"
#include "support/statistic.h"
#include "symbolic/poly.h"

namespace polaris {

namespace {

POLARIS_STATISTIC("simplify", canonical_roundtrips,
                  "integer subtrees kept in canonical polynomial form");
POLARIS_STATISTIC("simplify", comparisons_folded,
                  "constant comparisons folded to a logical constant");

/// Counts nodes, a crude size metric to decide whether canonicalization
/// actually simplified anything.
int node_count(const Expression& e) {
  int n = 0;
  walk(e, [&](const Expression&) { ++n; });
  return n;
}

bool is_arith_kind(const Expression& e) {
  if (e.kind() == ExprKind::UnOp)
    return static_cast<const UnOp&>(e).op() == UnOpKind::Neg;
  if (e.kind() == ExprKind::BinOp)
    return is_arithmetic(static_cast<const BinOp&>(e).op());
  return false;
}

ExprPtr simplify_rec(const Expression& e);

ExprPtr simplify_children(const Expression& e) {
  ExprPtr copy = e.clone();
  for (ExprPtr* slot : copy->children()) *slot = simplify_rec(**slot);
  return copy;
}

std::optional<double> fold_real(const Expression& e) {
  switch (e.kind()) {
    case ExprKind::IntConst:
      return static_cast<double>(static_cast<const IntConst&>(e).value());
    case ExprKind::RealConst:
      return static_cast<const RealConst&>(e).value();
    default:
      return std::nullopt;
  }
}

ExprPtr simplify_float_binop(const BinOp& b, ExprPtr l, ExprPtr r) {
  auto lv = fold_real(*l);
  auto rv = fold_real(*r);
  bool dbl = b.type().kind() == TypeKind::DoublePrecision;
  if (lv && rv) {
    switch (b.op()) {
      case BinOpKind::Add: return ib::rc(*lv + *rv, dbl);
      case BinOpKind::Sub: return ib::rc(*lv - *rv, dbl);
      case BinOpKind::Mul: return ib::rc(*lv * *rv, dbl);
      case BinOpKind::Div:
        if (*rv != 0.0) return ib::rc(*lv / *rv, dbl);
        break;
      default:
        break;
    }
  }
  // Identities (exact in IEEE arithmetic for these operand positions).
  if (rv && *rv == 0.0 &&
      (b.op() == BinOpKind::Add || b.op() == BinOpKind::Sub))
    return l;
  if (lv && *lv == 0.0 && b.op() == BinOpKind::Add) return r;
  if (rv && *rv == 1.0 &&
      (b.op() == BinOpKind::Mul || b.op() == BinOpKind::Div))
    return l;
  if (lv && *lv == 1.0 && b.op() == BinOpKind::Mul) return r;
  return ib::bin(b.op(), std::move(l), std::move(r));
}

ExprPtr simplify_rec(const Expression& e) {
  // Integer arithmetic: canonical polynomial round trip, kept only when it
  // does not grow the tree.
  if (is_arith_kind(e) && e.type().is_integer()) {
    Polynomial p = Polynomial::from_expr(e, /*exact_division=*/false);
    ExprPtr canon = p.to_expr();
    ExprPtr structural = simplify_children(e);
    if (node_count(*canon) <= node_count(*structural)) {
      ++canonical_roundtrips;
      return canon;
    }
    return structural;
  }
  switch (e.kind()) {
    case ExprKind::BinOp: {
      const auto& b = static_cast<const BinOp&>(e);
      ExprPtr l = simplify_rec(b.left());
      ExprPtr r = simplify_rec(b.right());
      if (is_arithmetic(b.op()) && b.type().is_floating())
        return simplify_float_binop(b, std::move(l), std::move(r));
      if (b.op() == BinOpKind::And || b.op() == BinOpKind::Or) {
        // Logical constant folding.
        auto as_bool = [](const Expression& x) -> std::optional<bool> {
          if (x.kind() == ExprKind::LogicalConst)
            return static_cast<const LogicalConst&>(x).value();
          return std::nullopt;
        };
        auto lb = as_bool(*l), rb = as_bool(*r);
        if (b.op() == BinOpKind::And) {
          if (lb && !*lb) return ib::lc(false);
          if (rb && !*rb) return ib::lc(false);
          if (lb && *lb) return r;
          if (rb && *rb) return l;
        } else {
          if (lb && *lb) return ib::lc(true);
          if (rb && *rb) return ib::lc(true);
          if (lb && !*lb) return r;
          if (rb && !*rb) return l;
        }
      }
      if (is_comparison(b.op())) {
        // Fold comparisons of constants via the polynomial difference.
        Polynomial d = Polynomial::from_expr(*l, false) -
                       Polynomial::from_expr(*r, false);
        if (d.is_constant()) {
          ++comparisons_folded;
          int s = d.constant_value().sign();
          switch (b.op()) {
            case BinOpKind::Lt: return ib::lc(s < 0);
            case BinOpKind::Le: return ib::lc(s <= 0);
            case BinOpKind::Gt: return ib::lc(s > 0);
            case BinOpKind::Ge: return ib::lc(s >= 0);
            case BinOpKind::Eq: return ib::lc(s == 0);
            case BinOpKind::Ne: return ib::lc(s != 0);
            default: break;
          }
        }
      }
      return ib::bin(b.op(), std::move(l), std::move(r));
    }
    case ExprKind::UnOp: {
      const auto& u = static_cast<const UnOp&>(e);
      ExprPtr op = simplify_rec(u.operand());
      if (u.op() == UnOpKind::Not &&
          op->kind() == ExprKind::LogicalConst)
        return ib::lc(!static_cast<const LogicalConst&>(*op).value());
      if (u.op() == UnOpKind::Neg) {
        if (auto v = fold_real(*op)) {
          if (op->kind() == ExprKind::IntConst)
            return ib::ic(-static_cast<const IntConst&>(*op).value());
          return ib::rc(-*v, op->type().kind() == TypeKind::DoublePrecision);
        }
      }
      return std::make_unique<UnOp>(u.op(), std::move(op));
    }
    default:
      return simplify_children(e);
  }
}

}  // namespace

ExprPtr simplify(const Expression& e) { return simplify_rec(e); }

void simplify_in_place(ExprPtr& e) {
  p_assert(e != nullptr);
  e = simplify_rec(*e);
}

bool try_fold_int(const Expression& e, std::int64_t* out) {
  p_assert(out != nullptr);
  Polynomial p = Polynomial::from_expr(e, /*exact_division=*/false);
  if (!p.is_constant() || !p.constant_value().is_integer()) return false;
  *out = p.constant_value().as_integer();
  return true;
}

}  // namespace polaris
