// FactContext: what is known about variables at a program point.
//
// This is the "range propagation" substrate of the paper (Section 3.3.1):
// symbolic lower/upper bounds for variables, collected from DO headers,
// IF conditions and PARAMETER constants, which the expression-comparison
// engine consumes.  Facts are stored uniformly as polynomials known to be
// >= 0; variable ranges are derived views of those facts.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "symbolic/poly.h"

namespace polaris {

class FactContext {
 public:
  /// Records the fact `f >= 0`.
  void add_ge0(Polynomial f);
  /// Records `e >= 0` for an expression (canonicalized first).
  void add_ge0(const Expression& e);
  /// Records lo <= s <= hi (either side may be null).
  void add_range(Symbol* s, const Expression* lo, const Expression* hi);
  /// Records a DO-header fact: index in [init, limit] and limit >= init
  /// (dependence analysis assumes at least one iteration — an empty loop
  /// carries no dependence).  Only called for positive constant steps;
  /// negative steps swap the bounds at the call site.
  void add_loop(Symbol* index, const Expression& init,
                const Expression& limit);

  /// Elimination priority for the bounding recursion: higher rank atoms are
  /// eliminated first (innermost loop indices get the highest ranks).
  void set_rank(AtomId a, int rank);
  int rank(AtomId a) const;

  /// Lower-bound candidates for atom `a`: polynomials L with a >= L.
  std::vector<Polynomial> lower_bounds(AtomId a) const;
  /// Upper-bound candidates for atom `a`: polynomials U with a <= U.
  std::vector<Polynomial> upper_bounds(AtomId a) const;

  const std::vector<Polynomial>& facts() const { return facts_; }

 private:
  std::vector<Polynomial> facts_;  // each known >= 0
  std::map<AtomId, int> ranks_;
};

}  // namespace polaris
