// Expression simplification.
//
// Integer-typed arithmetic is canonicalized through the exact polynomial
// form (safe: integer arithmetic is associative).  Floating-point
// expressions are only folded conservatively — identities like x+0 and x*1
// and exact constant folding — because reassociation changes rounding
// (the same reason Polaris lets users disable reduction parallelization).
#pragma once

#include "ir/expr.h"

namespace polaris {

/// Returns a simplified deep copy of `e`.
ExprPtr simplify(const Expression& e);

/// Simplifies in place.
void simplify_in_place(ExprPtr& e);

/// True if `e` folds to an integer constant; the value is stored in *out.
bool try_fold_int(const Expression& e, std::int64_t* out);

}  // namespace polaris
