// Canonical multivariate polynomial form over expression "atoms".
//
// The symbolic analyses (range test, induction closed forms, expression
// comparison) all reduce expressions to a canonical sum-of-monomials with
// exact rational coefficients.  The paper's central example — the TRFD
// subscript (i*(n^2+n) + j^2 - j)/2 + k + 1 — needs rational coefficients
// so that forward differences like f(i,j+1,k) - f(i,j,k) = j come out
// exactly.
//
// Non-polynomial subexpressions (array references such as z(k), intrinsic
// calls, inexact divisions) are interned as opaque *atoms* and treated as
// indeterminates.  Two structurally equal subexpressions intern to the same
// atom, so cancellation works across them.
//
// Representation (hot path — every dependence query funnels through here):
// a Polynomial is a flat vector of (Monomial, Rational) terms sorted by
// monomial, and a Monomial keeps its (atom, power) factors in a small
// inline buffer that spills to the heap only beyond four factors.  Sums
// and differences are linear merges; products accumulate into a scratch
// vector normalized once.  The orderings are identical to the previous
// std::map representation, so canonical term order — and with it every
// printed artifact — is unchanged.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/expr.h"
#include "support/rational.h"

namespace polaris {

using AtomId = int;

class Polynomial;

/// Interning table of atoms.  Atoms are immutable; the table only grows —
/// except that the fault-isolation layer truncates it back to its pre-pass
/// size when a pass is rolled back, so atoms a failed pass interned (whose
/// ids would otherwise perturb canonical term ordering in later passes,
/// and whose symbols may die with the rolled-back unit) leave no trace.
///
/// Interning is hash-consed: every atom's structural hash is computed once
/// at intern time and kept in `hashes_`, the hash->id index is an
/// unordered_multimap (O(1) amortized lookup), and plain scalar VarRef
/// atoms — the overwhelmingly common case (loop indices, bounds symbols) —
/// additionally sit in a Symbol*->id map so intern_symbol() never builds
/// or hashes a temporary expression.
///
/// Ownership: there is no process-wide table.  Each compilation — and,
/// under `-jobs=N`, each per-unit shard — owns an AtomTable and binds it
/// to the working thread with AtomTable::Scope; Polynomial construction
/// reaches it via AtomTable::current().  Shards need separate tables so a
/// rollback's truncate/remap touches only the failing unit, and because
/// atom ids are only canonical relative to one table.  Per-unit ids are
/// deterministic regardless of worker count: a unit's interning order
/// depends only on that unit's own expressions.  A thread outside any
/// Scope falls back to a thread-local table so standalone symbolic code
/// (and the symbolic tests) need no setup.
///
/// The table also owns the Expression->Polynomial canonicalization cache
/// (see Polynomial::from_expr): cached polynomials reference atom ids and
/// key on Symbol identity, so their lifetime is exactly the table's —
/// truncate()/remap()/reset() drop the cache along with the ids it
/// references, and the pass manager clears it through the
/// PreservedAnalyses machinery whenever a pass rewrites the IR.
class AtomTable {
 public:
  AtomTable() = default;
  AtomTable(const AtomTable&) = delete;
  AtomTable& operator=(const AtomTable&) = delete;

  /// The table bound to the calling thread, or the thread's fallback
  /// table when no Scope is active.
  static AtomTable& current();

  /// RAII thread binding; nests, restoring the previous binding (pass
  /// null to rebind the fallback table).
  class Scope {
   public:
    explicit Scope(AtomTable* table);
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope();

   private:
    AtomTable* prev_;
  };

  /// Interns a structural copy of `e`; equal expressions share one id.
  AtomId intern(const Expression& e);
  /// Interns the VarRef atom of a scalar symbol (O(1) via the symbol map).
  AtomId intern_symbol(Symbol* s);

  const Expression& expr(AtomId id) const;
  /// The symbol if the atom is a plain VarRef, else null.
  Symbol* symbol(AtomId id) const;

  /// Number of interned atoms; pairs with truncate() for rollback.
  std::size_t size() const { return atoms_.size(); }
  /// Drops every atom with id >= n (and, when anything is dropped, the
  /// canonicalization cache — cached polynomials may reference the dropped
  /// ids).  Only valid when no live Polynomial or cached analysis
  /// references the dropped ids (the pass manager discards both when it
  /// rolls a pass back).
  void truncate(std::size_t n);
  /// Clears the table.  The driver calls this at the start of every
  /// compilation: atom identity keys on Symbol pointers, so atoms left by
  /// a previous compilation could be falsely reused when the allocator
  /// hands a new Symbol an old address — skewing canonical term order.
  /// Atom ids (and thus printed polynomial order) are canonical *per
  /// compilation*, never across compilations.
  void reset();
  /// Rewrites interned atoms through an original-to-clone symbol map and
  /// rebuilds the hash index (and drops the canonicalization cache, whose
  /// keys hold the pre-rollback symbol pointers).  After a rollback swaps
  /// a cloned unit in, the clone's symbols inherit the original symbols'
  /// atom ids — so canonical term ordering (and with it the printed
  /// output) is bit-identical to a run that never attempted the failed
  /// pass.
  void remap(const SymbolMap<Symbol*>& map);

  // --- canonicalization cache ----------------------------------------------
  /// Memoized Expression->Polynomial conversions, keyed on structural hash
  /// + exact_division mode with full structural-equality confirmation.
  /// Consulted per interior (BinOp/UnOp) node by Polynomial::from_expr, so
  /// repeated canonicalization of the same subscripts — the range test
  /// re-queries each pair per loop permutation, and rangetest/ddtest/GSA/
  /// induction all re-convert the same bounds — collapses to hash lookups.
  void set_canon_cache_enabled(bool on);
  bool canon_cache_enabled() const { return canon_enabled_; }
  /// Cached polynomial for a structurally-equal expression in the given
  /// mode, or null on a miss.  `hash` must be e.hash().
  const Polynomial* canon_lookup(std::size_t hash, const Expression& e,
                                 bool exact_division);
  /// Records a conversion (clones `e` as the collision-proof key).
  void canon_insert(std::size_t hash, const Expression& e,
                    bool exact_division, const Polynomial& p);
  void clear_canon_cache();
  std::uint64_t canon_hits() const { return canon_hits_; }
  std::uint64_t canon_misses() const { return canon_misses_; }
  std::size_t canon_entries() const { return canon_.size(); }

 private:
  struct CanonEntry {
    ExprPtr key;        ///< structural clone guarding against collisions
    Polynomial* poly;   ///< owned; raw to keep Polynomial incomplete here
    bool exact_division;
    CanonEntry(ExprPtr k, Polynomial* p, bool m)
        : key(std::move(k)), poly(p), exact_division(m) {}
    CanonEntry(CanonEntry&& o) noexcept
        : key(std::move(o.key)), poly(o.poly), exact_division(o.exact_division) {
      o.poly = nullptr;
    }
    CanonEntry& operator=(CanonEntry&&) = delete;
    CanonEntry(const CanonEntry&) = delete;
    ~CanonEntry();
  };

  std::vector<ExprPtr> atoms_;
  std::vector<std::size_t> hashes_;  ///< atom id -> structural hash
  std::unordered_multimap<std::size_t, AtomId> index_;
  std::unordered_map<const Symbol*, AtomId> symbol_ids_;  ///< VarRef fast path
  std::unordered_multimap<std::size_t, CanonEntry> canon_;
  bool canon_enabled_ = true;
  std::uint64_t canon_hits_ = 0;
  std::uint64_t canon_misses_ = 0;
};

/// Sorted (AtomId, power) factor list with a four-entry inline buffer.
/// Nearly every monomial the suite produces has <= 3 factors (the TRFD
/// subscript peaks at two), so products and comparisons run entirely out
/// of the inline storage; longer factor lists spill to a heap vector.
class FactorVec {
 public:
  using value_type = std::pair<AtomId, int>;

  FactorVec() = default;

  const value_type* begin() const { return data(); }
  const value_type* end() const { return data() + size_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const value_type& operator[](std::size_t i) const { return data()[i]; }

  void emplace_back(AtomId id, int power) {
    if (size_ < kInline) {
      inline_[size_] = value_type(id, power);
    } else {
      if (size_ == kInline)
        heap_.assign(inline_.begin(), inline_.end());
      heap_.emplace_back(id, power);
    }
    ++size_;
  }
  void push_back(const value_type& v) { emplace_back(v.first, v.second); }

  bool operator==(const FactorVec& o) const {
    if (size_ != o.size_) return false;
    const value_type* a = data();
    const value_type* b = o.data();
    for (std::size_t i = 0; i < size_; ++i)
      if (a[i] != b[i]) return false;
    return true;
  }
  bool operator<(const FactorVec& o) const {
    const value_type* a = data();
    const value_type* b = o.data();
    const std::size_t n = size_ < o.size_ ? size_ : o.size_;
    for (std::size_t i = 0; i < n; ++i) {
      if (a[i] < b[i]) return true;
      if (b[i] < a[i]) return false;
    }
    return size_ < o.size_;
  }

 private:
  static constexpr std::size_t kInline = 4;
  std::array<value_type, kInline> inline_{};
  std::vector<value_type> heap_;
  std::uint32_t size_ = 0;

  const value_type* data() const {
    return size_ <= kInline ? inline_.data() : heap_.data();
  }
};

/// A product of atom powers, e.g. n^2 * i.  Factors sorted by AtomId.
class Monomial {
 public:
  Monomial() = default;  // the empty product == 1
  static Monomial atom(AtomId id, int power = 1);

  const FactorVec& factors() const { return factors_; }
  bool is_unit() const { return factors_.empty(); }
  int degree() const;
  int degree_in(AtomId id) const;
  bool contains(AtomId id) const { return degree_in(id) > 0; }

  Monomial operator*(const Monomial& o) const;
  /// Divides out id^power; requires degree_in(id) >= power.
  Monomial without(AtomId id, int power) const;

  bool operator<(const Monomial& o) const { return factors_ < o.factors_; }
  bool operator==(const Monomial& o) const { return factors_ == o.factors_; }

 private:
  FactorVec factors_;
};

/// Canonical polynomial: flat list of (monomial, nonzero rational
/// coefficient) terms, sorted by monomial — the same order the previous
/// std::map representation iterated in, so term order in printed output
/// is unchanged.
class Polynomial {
 public:
  using Term = std::pair<Monomial, Rational>;
  using TermList = std::vector<Term>;

  Polynomial() = default;  // zero
  static Polynomial constant(const Rational& r);
  static Polynomial atom(AtomId id);
  static Polynomial symbol(Symbol* s);

  /// Canonicalizes an expression.  `exact_division` controls how integer
  /// division by a constant is treated: true (dependence-analysis mode, the
  /// Polaris assumption for compiler-generated subscripts) folds e/c into a
  /// rational scaling; false keeps e/c as an opaque atom (sound for
  /// arbitrary Fortran integer division, which truncates).
  ///
  /// Conversions of interior nodes are memoized in the thread-bound
  /// AtomTable's canonicalization cache (see AtomTable::canon_lookup);
  /// a hit returns the cached polynomial without re-walking the subtree.
  static Polynomial from_expr(const Expression& e,
                              bool exact_division = true);

  bool is_zero() const { return terms_.empty(); }
  bool is_constant() const;
  /// Requires is_constant().
  Rational constant_value() const;

  const TermList& terms() const { return terms_; }
  Rational coefficient(const Monomial& m) const;
  int degree_in(AtomId id) const;
  bool contains(AtomId id) const { return degree_in(id) > 0; }
  /// All atoms appearing in any monomial.
  std::vector<AtomId> atoms() const;

  Polynomial operator-() const;
  Polynomial operator+(const Polynomial& o) const;
  Polynomial operator-(const Polynomial& o) const;
  Polynomial operator*(const Polynomial& o) const;
  Polynomial pow(int k) const;

  bool operator==(const Polynomial& o) const { return terms_ == o.terms_; }
  bool operator!=(const Polynomial& o) const { return !(*this == o); }

  /// Replaces atom `id` by `value` everywhere (expanding powers).
  Polynomial substitute(AtomId id, const Polynomial& value) const;

  /// Forward difference in atom `id`: f[id := id+1] - f.  The monotonicity
  /// workhorse of the range test (paper Section 3.3.1).
  Polynomial forward_difference(AtomId id) const;

  /// Exact symbolic summation over atom `id` from `lo` to `hi` (both
  /// polynomials in other atoms), using Faulhaber's formulas; requires
  /// degree_in(id) <= 6.  Assumes hi >= lo - 1 (empty sums allowed).
  /// This computes the induction-variable closed forms of Section 3.2.
  Polynomial sum_over(AtomId id, const Polynomial& lo,
                      const Polynomial& hi) const;

  /// Rebuilds an expression: (integer-coefficient sum) / common-denominator.
  ExprPtr to_expr() const;

  std::string to_string() const;

 private:
  void add_term(const Monomial& m, const Rational& c);
  /// Sorts `raw` by monomial, sums equal monomials, drops zeros, and
  /// installs the result (product/substitution accumulation path).
  static Polynomial normalized(TermList raw);
  TermList terms_;
};

/// Faulhaber polynomial S_k(n) = sum_{i=1}^{n} i^k, as a Polynomial in the
/// given atom; supported for 0 <= k <= 6.  Exposed for testing.
Polynomial faulhaber(int k, AtomId n);

}  // namespace polaris
