// Canonical multivariate polynomial form over expression "atoms".
//
// The symbolic analyses (range test, induction closed forms, expression
// comparison) all reduce expressions to a canonical sum-of-monomials with
// exact rational coefficients.  The paper's central example — the TRFD
// subscript (i*(n^2+n) + j^2 - j)/2 + k + 1 — needs rational coefficients
// so that forward differences like f(i,j+1,k) - f(i,j,k) = j come out
// exactly.
//
// Non-polynomial subexpressions (array references such as z(k), intrinsic
// calls, inexact divisions) are interned as opaque *atoms* and treated as
// indeterminates.  Two structurally equal subexpressions intern to the same
// atom, so cancellation works across them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/expr.h"
#include "support/rational.h"

namespace polaris {

using AtomId = int;

/// Interning table of atoms.  Atoms are immutable; the table only grows —
/// except that the fault-isolation layer truncates it back to its pre-pass
/// size when a pass is rolled back, so atoms a failed pass interned (whose
/// ids would otherwise perturb canonical term ordering in later passes,
/// and whose symbols may die with the rolled-back unit) leave no trace.
///
/// Ownership: there is no process-wide table.  Each compilation — and,
/// under `-jobs=N`, each per-unit shard — owns an AtomTable and binds it
/// to the working thread with AtomTable::Scope; Polynomial construction
/// reaches it via AtomTable::current().  Shards need separate tables so a
/// rollback's truncate/remap touches only the failing unit, and because
/// atom ids are only canonical relative to one table.  Per-unit ids are
/// deterministic regardless of worker count: a unit's interning order
/// depends only on that unit's own expressions.  A thread outside any
/// Scope falls back to a thread-local table so standalone symbolic code
/// (and the symbolic tests) need no setup.
class AtomTable {
 public:
  AtomTable() = default;
  AtomTable(const AtomTable&) = delete;
  AtomTable& operator=(const AtomTable&) = delete;

  /// The table bound to the calling thread, or the thread's fallback
  /// table when no Scope is active.
  static AtomTable& current();
  /// Alias of current() kept for pre-CompileContext call sites (tests).
  static AtomTable& instance() { return current(); }

  /// RAII thread binding; nests, restoring the previous binding (pass
  /// null to rebind the fallback table).
  class Scope {
   public:
    explicit Scope(AtomTable* table);
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope();

   private:
    AtomTable* prev_;
  };

  /// Interns a structural copy of `e`; equal expressions share one id.
  AtomId intern(const Expression& e);
  /// Interns the VarRef atom of a scalar symbol.
  AtomId intern_symbol(Symbol* s);

  const Expression& expr(AtomId id) const;
  /// The symbol if the atom is a plain VarRef, else null.
  Symbol* symbol(AtomId id) const;

  /// Number of interned atoms; pairs with truncate() for rollback.
  std::size_t size() const { return atoms_.size(); }
  /// Drops every atom with id >= n.  Only valid when no live Polynomial or
  /// cached analysis references the dropped ids (the pass manager discards
  /// both when it rolls a pass back).
  void truncate(std::size_t n);
  /// Clears the table.  The driver calls this at the start of every
  /// compilation: atom identity keys on Symbol pointers, so atoms left by
  /// a previous compilation could be falsely reused when the allocator
  /// hands a new Symbol an old address — skewing canonical term order.
  /// Atom ids (and thus printed polynomial order) are canonical *per
  /// compilation*, never across compilations.
  void reset() { truncate(0); }
  /// Rewrites interned atoms through an original-to-clone symbol map and
  /// rebuilds the hash index.  After a rollback swaps a cloned unit in, the
  /// clone's symbols inherit the original symbols' atom ids — so canonical
  /// term ordering (and with it the printed output) is bit-identical to a
  /// run that never attempted the failed pass.
  void remap(const SymbolMap<Symbol*>& map);

 private:
  std::vector<ExprPtr> atoms_;
  std::multimap<std::size_t, AtomId> buckets_;
};

/// A product of atom powers, e.g. n^2 * i.  Factors sorted by AtomId.
class Monomial {
 public:
  Monomial() = default;  // the empty product == 1
  static Monomial atom(AtomId id, int power = 1);

  const std::vector<std::pair<AtomId, int>>& factors() const {
    return factors_;
  }
  bool is_unit() const { return factors_.empty(); }
  int degree() const;
  int degree_in(AtomId id) const;
  bool contains(AtomId id) const { return degree_in(id) > 0; }

  Monomial operator*(const Monomial& o) const;
  /// Divides out id^power; requires degree_in(id) >= power.
  Monomial without(AtomId id, int power) const;

  bool operator<(const Monomial& o) const { return factors_ < o.factors_; }
  bool operator==(const Monomial& o) const { return factors_ == o.factors_; }

 private:
  std::vector<std::pair<AtomId, int>> factors_;
};

/// Canonical polynomial: map monomial -> nonzero rational coefficient.
class Polynomial {
 public:
  Polynomial() = default;  // zero
  static Polynomial constant(const Rational& r);
  static Polynomial atom(AtomId id);
  static Polynomial symbol(Symbol* s);

  /// Canonicalizes an expression.  `exact_division` controls how integer
  /// division by a constant is treated: true (dependence-analysis mode, the
  /// Polaris assumption for compiler-generated subscripts) folds e/c into a
  /// rational scaling; false keeps e/c as an opaque atom (sound for
  /// arbitrary Fortran integer division, which truncates).
  static Polynomial from_expr(const Expression& e,
                              bool exact_division = true);

  bool is_zero() const { return terms_.empty(); }
  bool is_constant() const;
  /// Requires is_constant().
  Rational constant_value() const;

  const std::map<Monomial, Rational>& terms() const { return terms_; }
  Rational coefficient(const Monomial& m) const;
  int degree_in(AtomId id) const;
  bool contains(AtomId id) const { return degree_in(id) > 0; }
  /// All atoms appearing in any monomial.
  std::vector<AtomId> atoms() const;

  Polynomial operator-() const;
  Polynomial operator+(const Polynomial& o) const;
  Polynomial operator-(const Polynomial& o) const;
  Polynomial operator*(const Polynomial& o) const;
  Polynomial pow(int k) const;

  bool operator==(const Polynomial& o) const { return terms_ == o.terms_; }
  bool operator!=(const Polynomial& o) const { return !(*this == o); }

  /// Replaces atom `id` by `value` everywhere (expanding powers).
  Polynomial substitute(AtomId id, const Polynomial& value) const;

  /// Forward difference in atom `id`: f[id := id+1] - f.  The monotonicity
  /// workhorse of the range test (paper Section 3.3.1).
  Polynomial forward_difference(AtomId id) const;

  /// Exact symbolic summation over atom `id` from `lo` to `hi` (both
  /// polynomials in other atoms), using Faulhaber's formulas; requires
  /// degree_in(id) <= 6.  Assumes hi >= lo - 1 (empty sums allowed).
  /// This computes the induction-variable closed forms of Section 3.2.
  Polynomial sum_over(AtomId id, const Polynomial& lo,
                      const Polynomial& hi) const;

  /// Rebuilds an expression: (integer-coefficient sum) / common-denominator.
  ExprPtr to_expr() const;

  std::string to_string() const;

 private:
  void add_term(const Monomial& m, const Rational& c);
  std::map<Monomial, Rational> terms_;
};

/// Faulhaber polynomial S_k(n) = sum_{i=1}^{n} i^k, as a Polynomial in the
/// given atom; supported for 0 <= k <= 6.  Exposed for testing.
Polynomial faulhaber(int k, AtomId n);

}  // namespace polaris
