// Symbolic expression comparison and range elimination.
//
// The decision procedure behind the range test (paper Section 3.3.1):
// to prove f >= 0, eliminate variables one at a time — establish the
// monotonicity of f in a variable v via the sign of its forward difference
// f(v+1) - f(v), then replace v by the appropriate range endpoint from the
// FactContext, recursing until the polynomial is constant.  Degree-1
// occurrences are also handled without monotonicity (a linear function is
// extremal at interval endpoints).
#pragma once

#include <optional>

#include "symbolic/context.h"

namespace polaris {

/// Outcome of comparing two expressions e1 ? e2.
enum class Cmp { Unknown, LT, LE, EQ, GE, GT };

/// Proves f >= 0 under the facts in `ctx` (false = could not prove, not
/// "false").  `depth` bounds the elimination recursion.
bool prove_ge0(const Polynomial& f, const FactContext& ctx, int depth = 12);

/// Proves f > 0.  For integer-valued polynomials this uses f*D >= 1 with D
/// the common coefficient denominator.
bool prove_gt0(const Polynomial& f, const FactContext& ctx, int depth = 12);

/// Expression-level comparisons (canonicalize, then prove on differences).
bool prove_le(const Expression& e1, const Expression& e2,
              const FactContext& ctx);
bool prove_lt(const Expression& e1, const Expression& e2,
              const FactContext& ctx);
bool prove_ge(const Expression& e1, const Expression& e2,
              const FactContext& ctx);
bool prove_gt(const Expression& e1, const Expression& e2,
              const FactContext& ctx);
bool prove_eq(const Expression& e1, const Expression& e2,
              const FactContext& ctx);

/// Strongest provable relation between e1 and e2.
Cmp compare(const Expression& e1, const Expression& e2,
            const FactContext& ctx);

/// Monotonicity classification of f in atom `a` (paper: forward-difference
/// test).  NonDecreasing means f(a+1) - f(a) >= 0 is provable.
enum class Monotonicity { Unknown, Constant, NonDecreasing, NonIncreasing };
Monotonicity monotonicity(const Polynomial& f, AtomId a,
                          const FactContext& ctx, int depth = 12);

/// Extreme values of f as atom `a` sweeps [lo, hi]: min/max are polynomials
/// in the remaining atoms, or nullopt when monotonicity in `a` cannot be
/// established (and f is not linear in `a`).  This is the per-loop range
/// elimination step of the range test.
struct Extremes {
  std::optional<Polynomial> min;
  std::optional<Polynomial> max;
};
Extremes eliminate_range(const Polynomial& f, AtomId a, const Polynomial& lo,
                         const Polynomial& hi, const FactContext& ctx,
                         int depth = 12);

}  // namespace polaris
