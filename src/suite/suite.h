// The evaluation suite: 16 miniature PF77 programs, one per benchmark code
// in the paper's Table 1 / Figure 7 (6 Perfect, 8 SPEC, 2 NCSA).
//
// Each mini is distilled to the dominant loop patterns the paper (and the
// companion Polaris studies) attribute to that code — TRFD's induction
// nest, OCEAN's nonlinear FTRVMT subscripts, BDNA's gather/compress,
// MDG's histogram reductions, ARC2D's privatizable sweep buffers, APPLU's
// wavefront recurrence, and so on — so the per-code Polaris-vs-baseline
// outcome is governed by the same analyses as in the paper.  Every program
// prints deterministic checksums, so transformed runs are checked against
// reference runs.
#pragma once

#include <string>
#include <vector>

namespace polaris {

struct BenchProgram {
  std::string name;         ///< lower-case code name ("trfd")
  std::string origin;       ///< "PERFECT", "SPEC", or "NCSA"
  int paper_lines;          ///< Table 1: lines of code of the real program
  double paper_serial_sec;  ///< Table 1: serial seconds on the SGI Challenge
  std::string technique;    ///< dominant technique the mini exercises
  std::string source;       ///< PF77 source of the mini
};

/// All 16 programs in the paper's Table 1 order.
const std::vector<BenchProgram>& benchmark_suite();

/// Look up one program by name; asserts it exists.
const BenchProgram& suite_program(const std::string& name);

}  // namespace polaris
