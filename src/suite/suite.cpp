#include "suite/suite.h"

#include "support/assert.h"

namespace polaris {

namespace {

// Each mini is written so the paper's named technique decides its fate:
// the transformation Polaris applies (and the baseline lacks) governs
// whether the dominant loop parallelizes.  All programs print checksums.

const char* kApplu = R"F(
      program applu
c     parabolic/elliptic PDE solver: SSOR wavefront recurrence dominates;
c     neither compiler can parallelize it (true dependences), so the PFA
c     back end's better code generation wins slightly.
      parameter (nx = 60, ny = 60, nsteps = 4)
      real u(nx, ny)
      do j = 1, ny
        do i = 1, nx
          u(i, j) = mod(i*3 + j*7, 11)*0.1
        end do
      end do
      do s = 1, nsteps
        do j = 2, ny
          do i = 2, nx
            u(i, j) = (u(i - 1, j) + u(i, j - 1))*0.4999 + 0.01
          end do
        end do
      end do
      cks = 0.0
      do j = 1, ny
        do i = 1, nx
          cks = cks + u(i, j)
        end do
      end do
      print *, 'applu', cks
      end
)F";

const char* kAppsp = R"F(
      program appsp
c     gaussian-elimination style solver: long parallel sweeps plus 5-wide
c     block loops.  Both compilers find the parallelism, but PFA's
c     restructuring backfires on the short constant-trip inner loops.
      parameter (n = 2500, nb = 5, nsteps = 3)
      real v(n), rhs(n), c(nb)
      do i = 1, n
        v(i) = mod(i, 13)*0.25
      end do
      do kb = 1, nb
        c(kb) = kb*0.1
      end do
      do s = 1, nsteps
        do i = 2, n - 1
          rhs(i) = (v(i - 1) + v(i + 1))*0.5 - v(i)
        end do
        do i = 2, n - 1
          t = 0.0
          do kb = 1, nb
            t = t + rhs(i)*c(kb)
          end do
          v(i) = v(i) + t*0.2
        end do
      end do
      cks = 0.0
      do i = 1, n
        cks = cks + v(i)
      end do
      print *, 'appsp', cks
      end
)F";

const char* kArc2d = R"F(
      program arc2d
c     implicit finite-difference sweeps: the outer line loop needs the
c     work array w privatized (Polaris); the baseline only parallelizes
c     the short inner loops and drowns in fork/join overhead.
      parameter (im = 64, jm = 200, nsweep = 3)
      real q(im, jm), q2(im, jm), w(im)
      do j = 1, jm
        do i = 1, im
          q(i, j) = mod(i + j, 9)*0.125
          q2(i, j) = 0.0
        end do
      end do
      do s = 1, nsweep
        do j = 2, jm - 1
          do i = 1, im
            w(i) = q(i, j - 1) + q(i, j + 1)
          end do
          do i = 2, im - 1
            q2(i, j) = (w(i - 1) + w(i + 1))*0.25 + q(i, j)*0.5
          end do
        end do
        do j = 2, jm - 1
          do i = 2, im - 1
            q(i, j) = q2(i, j)
          end do
        end do
      end do
      cks = 0.0
      do j = 1, jm
        do i = 1, im
          cks = cks + q(i, j)
        end do
      end do
      print *, 'arc2d', cks
      end
)F";

const char* kBdna = R"F(
      program bdna
c     molecular dynamics of biomolecules: the paper's Figure 5 kernel —
c     gather/compress through IND with the monotonic-counter proof; array
c     privatization of A and IND enables the outer loop.
      parameter (n = 150)
      real x(n, n), y(n, n), a(n)
      integer ind(n), p
      real r, w, z, rcuts
      w = 0.1
      z = 0.05
      rcuts = 1.1
      do i = 1, n
        do j = 1, n
          x(i, j) = mod(i*5 + j*3, 17)*0.125
          y(i, j) = mod(i + j*11, 13)*0.0625
        end do
      end do
      do i = 2, n
        do j = 1, i - 1
          ind(j) = 0
          a(j) = (x(i, j) - y(i, j))*1.125 + (x(i, j) + y(i, j))*0.0625
          r = a(j)*0.75 + a(j)*0.25 + w
          if (r .lt. rcuts) ind(j) = 1
        end do
        p = 0
        do k = 1, i - 1
          if (ind(k) .ne. 0) then
            p = p + 1
            ind(p) = k
          end if
        end do
        do l = 1, p
          m = ind(l)
          x(i, l) = a(m) + z
        end do
      end do
      cks = 0.0
      do i = 1, n
        do j = 1, n
          cks = cks + x(i, j)
        end do
      end do
      print *, 'bdna', cks
      end
)F";

const char* kCmhog = R"F(
      program cmhog
c     3D ideal gas dynamics (NCSA): directional sweeps with a privatizable
c     interface-state buffer per column; symbolic grid sizes.
      parameter (maxn = 150)
      real d(maxn, maxn), dn(maxn, maxn), wl(maxn)
      integer nx, ny
      nx = 120
      ny = 120
      do j = 1, ny
        do i = 1, nx
          d(i, j) = mod(i*2 + j, 19)*0.0625 + 0.5
        end do
      end do
      do s = 1, 2
        do j = 2, ny - 1
          do i = 1, nx
            wl(i) = d(i, j)*0.75 + d(i, j - 1)*0.25
          end do
          do i = 2, nx - 1
            dn(i, j) = (wl(i - 1) + wl(i + 1))*0.5
          end do
        end do
        do j = 2, ny - 1
          do i = 2, nx - 1
            d(i, j) = dn(i, j)
          end do
        end do
      end do
      cks = 0.0
      do j = 1, ny
        do i = 1, nx
          cks = cks + d(i, j)
        end do
      end do
      print *, 'cmhog', cks
      end
)F";

const char* kCloud3d = R"F(
      program cloud3d
c     3D atmospheric convection (NCSA): parallel per-column microphysics
c     (needs the w buffer privatized) plus a sequential vertical
c     integration that bounds the overall speedup.
      parameter (nz = 60, ncol = 120, nsteps = 2)
      real t(nz, ncol), pr(nz, ncol), w(nz)
      do jc = 1, ncol
        do k = 1, nz
          t(k, jc) = mod(k*3 + jc, 23)*0.04 + 1.0
          pr(k, jc) = 0.0
        end do
      end do
      do s = 1, nsteps
        do jc = 1, ncol
          do k = 1, nz
            w(k) = t(k, jc)*0.9 + 0.1
          end do
          do k = 2, nz
            t(k, jc) = (w(k) + w(k - 1))*0.5
          end do
        end do
        do k = 2, nz
          do jc = 1, ncol
            pr(k, jc) = pr(k - 1, jc)*0.98 + t(k, jc)*0.02
          end do
        end do
      end do
      cks = 0.0
      do jc = 1, ncol
        do k = 1, nz
          cks = cks + t(k, jc) + pr(k, jc)
        end do
      end do
      print *, 'cloud3d', cks
      end
)F";

const char* kFlo52 = R"F(
      program flo52
c     transonic flow past an airfoil: multi-stage sweeps whose line buffer
c     must be privatized for the outer loop (Polaris), plus a max-norm
c     residual reduction.
      parameter (ni = 96, nj = 120, nstage = 3)
      real w(ni, nj), wn(ni, nj), fs(ni)
      do j = 1, nj
        do i = 1, ni
          w(i, j) = mod(i*3 + j, 11)*0.1 + 0.5
        end do
      end do
      res = 0.0
      do s = 1, nstage
        do j = 2, nj - 1
          do i = 1, ni
            fs(i) = w(i, j)*0.5 + w(i, j - 1)*0.25 + w(i, j + 1)*0.25
          end do
          do i = 2, ni - 1
            wn(i, j) = (fs(i - 1) + fs(i + 1))*0.5
          end do
        end do
        res = 0.0
        do j = 2, nj - 1
          do i = 2, ni - 1
            res = max(res, abs(wn(i, j) - w(i, j)))
            w(i, j) = wn(i, j)
          end do
        end do
      end do
      print *, 'flo52', w(ni/2, nj/2), res
      end
)F";

const char* kHydro2d = R"F(
      program hydro2d
c     galactic jets via Navier-Stokes: 2D stencils with a privatizable
c     row buffer and a global sum reduction.
      parameter (nx = 100, ny = 100, nsteps = 3)
      real ro(nx, ny), rn(nx, ny), row(nx)
      do j = 1, ny
        do i = 1, nx
          ro(i, j) = mod(i + 2*j, 7)*0.2 + 1.0
        end do
      end do
      do s = 1, nsteps
        do j = 2, ny - 1
          do i = 1, nx
            row(i) = ro(i, j)*0.6 + ro(i, j - 1)*0.2 + ro(i, j + 1)*0.2
          end do
          do i = 2, nx - 1
            rn(i, j) = (row(i - 1) + row(i) + row(i + 1))/3.0
          end do
        end do
        do j = 2, ny - 1
          do i = 2, nx - 1
            ro(i, j) = rn(i, j)
          end do
        end do
      end do
      total = 0.0
      do j = 1, ny
        do i = 1, nx
          total = total + ro(i, j)
        end do
      end do
      print *, 'hydro2d', total
      end
)F";

const char* kMdg = R"F(
      program mdg
c     molecular dynamics of water: pairwise forces accumulate into
c     per-particle arrays — histogram reductions (Polaris) — plus a
c     scalar energy reduction.
      parameter (np = 400, nnb = 27)
      real f(np), v(np)
      do i = 1, np
        v(i) = mod(i*13, 31)*0.03
        f(i) = 0.0
      end do
      energy = 0.0
      do i = 1, np
        do j = 1, nnb
          k = mod(i*7 + j*13, np) + 1
          f(k) = f(k) + v(i)*0.01
          f(i) = f(i) - v(k)*0.005
          energy = energy + v(i)*v(k)
        end do
      end do
      cks = 0.0
      do i = 1, np
        cks = cks + f(i)
      end do
      print *, 'mdg', cks, energy
      end
)F";

const char* kOcean = R"F(
      program ocean
c     Boussinesq fluid layer: the paper's Figure 3 FTRVMT kernel — the
c     nonlinear term 258*x*j defeats linear tests; the range test (with
c     the loop-order permutation) proves all three loops parallel.
      parameter (x = 4)
      integer z(0:3)
      real a(35000)
      do k = 0, x - 1
        z(k) = 24
      end do
      do i = 1, 33540
        a(i) = 0.0
      end do
      do k = 0, x - 1
        do j = 0, z(k)
          do i = 0, 128
            a(258*x*j + 129*k + i + 1) = a(258*x*j + 129*k + i + 1)
     &        + (k + 1)*0.25 + j*0.01 + (i + k)*0.002 + (j + k)*0.001
            a(258*x*j + 129*k + i + 1 + 129*x) = (i + 1)*0.004
     &        + (j + 1)*0.003 + (k + 1)*0.002 + (i + j + k)*0.001
          end do
        end do
      end do
      cks = 0.0
      do i = 1, 33540
        cks = cks + a(i)
      end do
      print *, 'ocean', cks
      end
)F";

const char* kSu2cor = R"F(
      program su2cor
c     Monte Carlo quantum mechanics: the lattice update is driven by a
c     sequential congruential generator; both compilers keep it serial,
c     and PFA's back end wins on code quality alone.
      parameter (ns = 500, ng = 40)
      real lat(ns), g(ns, ng)
      integer seed
      seed = 12345
      do i = 1, 15000
        seed = mod(seed*109 + 24691, 65536)
        lat(mod(i, ns) + 1) = seed*0.0001
      end do
      do j = 1, ng
        do i = 1, ns
          g(i, j) = lat(i)*0.01 + j*0.001
        end do
      end do
      do j = 2, ng
        do i = 1, ns
          g(i, j) = g(i, j - 1)*0.99 + g(i, j)*0.01
        end do
      end do
      cks = 0.0
      do i = 1, ns
        cks = cks + g(i, ng)
      end do
      print *, 'su2cor', cks
      end
)F";

const char* kSwim = R"F(
      program swim
c     shallow water equations: long regular 1D sweeps with no privatization
c     or symbolic obstacles — both compilers parallelize everything.
      parameter (n = 5000)
      real u(n), un(n)
      do i = 1, n
        u(i) = mod(i, 37)*0.05
      end do
      do i = 2, n - 1
        un(i) = u(i) + (u(i + 1) - 2.0*u(i) + u(i - 1))*0.125
      end do
      do i = 2, n - 1
        u(i) = un(i)
      end do
      do i = 2, n - 1
        un(i) = u(i) + (u(i + 1) - 2.0*u(i) + u(i - 1))*0.125
      end do
      do i = 2, n - 1
        u(i) = un(i)
      end do
      cks = 0.0
      do i = 1, n
        cks = cks + u(i)
      end do
      print *, 'swim', cks
      end
)F";

const char* kTfft2 = R"F(
      program tfft2
c     FFT kernel: butterfly strides j*le + k are nonlinear in the symbolic
c     block size le (a multiplicative recurrence the stage loop keeps);
c     only the range test proves the block loop parallel.
      parameter (n = 4096, m = 12)
      real xr(n)
      integer le
      do i = 1, n
        xr(i) = mod(i*11, 127)*0.01
      end do
      le = 1
      do l = 1, m - 3
        le = le*2
        do j = 0, n/le - 1
          do k = 0, le/2 - 1
            xr(j*le + k + 1) = xr(j*le + k + 1)
     &        + xr(j*le + k + 1 + le/2)*0.5
            xr(j*le + k + 1 + le/2) = xr(j*le + k + 1)
     &        - xr(j*le + k + 1 + le/2)*0.25
          end do
        end do
      end do
      cks = 0.0
      do i = 1, n
        cks = cks + xr(i)
      end do
      print *, 'tfft2', cks
      end
)F";

const char* kTomcatv = R"F(
      program tomcatv
c     2D mesh generation: both compilers parallelize the relaxation, but
c     the 2-trip displacement loop inside the nest trips PFA's
c     restructuring into overhead (the paper's tomcatv observation).
      parameter (nx = 60, ny = 60, niter = 3)
      real x(nx, ny, 2), xn(nx, ny, 2)
      do j = 1, ny
        do i = 1, nx
          x(i, j, 1) = i*1.0 + mod(j, 5)*0.01
          x(i, j, 2) = j*1.0 + mod(i, 7)*0.01
        end do
      end do
      do it = 1, niter
        do j = 2, ny - 1
          do i = 2, nx - 1
            do d = 1, 2
              xn(i, j, d) = (x(i - 1, j, d) + x(i + 1, j, d)
     &          + x(i, j - 1, d) + x(i, j + 1, d))*0.25
            end do
          end do
        end do
        do j = 2, ny - 1
          do i = 2, nx - 1
            do d = 1, 2
              x(i, j, d) = xn(i, j, d)
            end do
          end do
        end do
      end do
      cks = 0.0
      do j = 1, ny
        do i = 1, nx
          cks = cks + x(i, j, 1) + x(i, j, 2)
        end do
      end do
      print *, 'tomcatv', cks
      end
)F";

const char* kTrfd = R"F(
      program trfd
c     quantum mechanics integral transformation: the paper's Figure 2 OLDA
c     kernel — induction substitution produces the nonlinear subscript
c     (i*(n**2+n) + j**2 - j)/2 + k + 1 that only the range test handles;
c     the baseline cannot substitute in the triangular nest at all.
      parameter (nv = 40, nmo = 8)
      real xrsiq(6240)
      integer x
      do i = 1, 6240
        xrsiq(i) = 0.0
      end do
      x = 0
      do i = 0, nmo - 1
        do j = 0, nv - 1
          do k = 0, j - 1
            x = x + 1
            xrsiq(x) = (i + 1)*0.5 + j*0.25 + k*0.125
     &        + (i + j)*0.0625 + (j + k)*0.03125 + (i + k + 2)*0.015625
          end do
        end do
      end do
      cks = 0.0
      do i = 1, 6240
        cks = cks + xrsiq(i)
      end do
      print *, 'trfd', cks
      end
)F";

const char* kWave5 = R"F(
      program wave5
c     particle-in-cell plasma code: the particle push parallelizes for
c     both; the scatter through the computed index is not a recognizable
c     reduction and the field recurrence is serial, so overall speedup
c     stays near 1 (as the paper reports for a few codes).
      parameter (np = 6000, ngrid = 800)
      real px(np), vx(np), e(ngrid), field(ngrid)
      dat1 = 0.5
      do i = 1, np
        px(i) = mod(i*17, ngrid)*1.0
        vx(i) = mod(i, 11)*0.1 - 0.5
      end do
      do i = 1, np
        px(i) = px(i) + vx(i)*0.5
        if (px(i) .lt. 0.0) px(i) = px(i) + 799.0
      end do
      do i = 1, ngrid
        e(i) = 0.0
      end do
      do i = 1, np
        ig = int(px(i)) + 1
        if (ig .gt. ngrid) ig = ngrid
        e(ig) = e(ig)*0.5 + dat1*0.125
      end do
      do i = 2, ngrid
        field(i) = field(i - 1)*0.5 + e(i)
      end do
      cks = 0.0
      do i = 1, ngrid
        cks = cks + field(i)
      end do
      print *, 'wave5', cks
      end
)F";

std::vector<BenchProgram> make_suite() {
  // Table 1 order, with the paper's lines-of-code and serial seconds.
  return {
      {"applu", "SPEC", 3870, 1203.0, "wavefront recurrence (serial)", kApplu},
      {"appsp", "SPEC", 4439, 1241.0, "short-trip blocks (PFA backfire)", kAppsp},
      {"arc2d", "PERFECT", 4694, 215.0, "array privatization", kArc2d},
      {"bdna", "PERFECT", 4887, 56.0, "gather/compress privatization (Fig 5)", kBdna},
      {"cmhog", "NCSA", 11826, 2333.0, "array privatization, symbolic bounds", kCmhog},
      {"cloud3d", "NCSA", 9813, 20404.0, "partial: privatization + recurrence", kCloud3d},
      {"flo52", "PERFECT", 2370, 38.0, "privatization + max reduction", kFlo52},
      {"hydro2d", "SPEC", 4292, 1474.0, "privatization + sum reduction", kHydro2d},
      {"mdg", "PERFECT", 1430, 178.0, "histogram reductions", kMdg},
      {"ocean", "PERFECT", 3288, 118.0, "range test with permutation (Fig 3)", kOcean},
      {"su2cor", "SPEC", 2332, 779.0, "sequential RNG recurrence", kSu2cor},
      {"swim", "SPEC", 429, 1106.0, "plain affine loops (both succeed)", kSwim},
      {"tfft2", "SPEC", 642, 946.0, "symbolic-stride range test", kTfft2},
      {"tomcatv", "SPEC", 190, 1327.0, "2-trip inner loop (PFA backfire)", kTomcatv},
      {"trfd", "PERFECT", 580, 20.0, "induction + range test (Fig 2)", kTrfd},
      {"wave5", "SPEC", 7764, 788.0, "opaque scatter + serial field (near 1)", kWave5},
  };
}

}  // namespace

const std::vector<BenchProgram>& benchmark_suite() {
  static const std::vector<BenchProgram> suite = make_suite();
  return suite;
}

const BenchProgram& suite_program(const std::string& name) {
  for (const BenchProgram& p : benchmark_suite())
    if (p.name == name) return p;
  p_assert_msg(false, "unknown suite program: " + name);
}

}  // namespace polaris
