// Storage for the PF77 interpreter: scalars, arrays with resolved bounds,
// by-reference argument binding, and COMMON blocks.
//
// Array payloads are shared_ptr vectors so that whole-array arguments
// alias the caller's storage (Fortran by-reference semantics), including
// reshaped/linearized views with an element offset.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "interp/value.h"
#include "ir/symbol.h"

namespace polaris {

/// A resolved array: payload + per-dimension [lo, hi] bounds + flat offset
/// into the payload (for views starting mid-array).
struct ArrayStorage {
  std::shared_ptr<std::vector<Value>> data;
  std::vector<std::pair<std::int64_t, std::int64_t>> bounds;
  std::int64_t offset = 0;

  std::int64_t element_count() const {
    std::int64_t n = 1;
    for (const auto& [lo, hi] : bounds) n *= (hi - lo + 1);
    return n;
  }

  /// Column-major (Fortran) flat index of a subscript tuple; bounds
  /// checked with p_assert.
  std::size_t flat_index(const std::vector<std::int64_t>& subs) const;

  Value& at(const std::vector<std::int64_t>& subs) {
    return (*data)[flat_index(subs)];
  }
};

/// One variable's storage: scalar or array.
struct Cell {
  bool is_array = false;
  Value scalar;
  ArrayStorage array;
};

/// COMMON storage, shared across activations, keyed by (block, member
/// name) — the PF77 convention of name-matched common members.
class CommonStore {
 public:
  Cell* lookup(const std::string& block, const std::string& name);
  Cell* create(const std::string& block, const std::string& name);

 private:
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Cell>>
      cells_;
};

/// One activation frame: maps symbols to cells.  Cells for locals are
/// owned by the frame; formals and commons point elsewhere.
class Frame {
 public:
  /// Binds `sym` to frame-owned storage.
  Cell* create_local(Symbol* sym);
  /// Binds `sym` to external storage (argument/common aliasing).
  void bind(Symbol* sym, Cell* cell);

  Cell* lookup(Symbol* sym) const;
  bool bound(Symbol* sym) const { return cells_.count(sym) > 0; }

 private:
  SymbolMap<Cell*> cells_;
  std::vector<std::unique_ptr<Cell>> owned_;
};

}  // namespace polaris
