#include "interp/interp.h"

#include <cmath>
#include <sstream>

#include "dep/access.h"
#include "parser/parser.h"

namespace polaris {

namespace {

std::int64_t ipow(std::int64_t base, std::int64_t exp) {
  p_assert_msg(exp >= 0, "negative integer exponent");
  std::int64_t r = 1;
  for (std::int64_t i = 0; i < exp; ++i) r *= base;
  return r;
}

std::string format_value(const Value& v) {
  if (v.is_integer()) return std::to_string(v.as_int());
  if (v.is_logical()) return v.as_logical() ? "T" : "F";
  std::ostringstream os;
  os.precision(9);
  os << v.as_real();
  return os.str();
}

}  // namespace

Interpreter::Interpreter(Program& program, MachineConfig config,
                         CostModel costs)
    : program_(program), config_(config), costs_(costs) {}

RunResult run_program(Program& program, MachineConfig config) {
  Interpreter interp(program, config);
  return interp.run();
}

void Interpreter::count_statement() {
  ++result_.statements;
  if (result_.statements > stmt_limit_)
    throw UserError("interpreter statement limit exceeded");
}

RunResult Interpreter::run() {
  result_ = RunResult{};
  segment_cost_ = 0;
  cost_acc_ = &segment_cost_;
  ProgramUnit* main = program_.main();
  Frame frame;
  init_frame(*main, frame);
  UnitResult r;
  execute_unit(*main, frame, &r);
  result_.stopped = r.stopped;
  result_.clock.add_sequential(segment_cost_);
  segment_cost_ = 0;
  return result_;
}

void Interpreter::init_frame(ProgramUnit& unit, Frame& frame) {
  for (Symbol* sym : unit.symtab().symbols()) {
    if (frame.bound(sym)) continue;  // formal already bound by the caller
    if (sym->kind() != SymbolKind::Variable) continue;
    Cell* cell = nullptr;
    if (sym->in_common()) {
      cell = commons_.lookup(sym->common_block(), sym->name());
      bool fresh = (cell == nullptr);
      if (fresh) cell = commons_.create(sym->common_block(), sym->name());
      frame.bind(sym, cell);
      if (!fresh) continue;  // already initialized by another unit
    } else {
      cell = frame.create_local(sym);
    }
    if (sym->is_array()) {
      cell->is_array = true;
      resolve_array_bounds(unit, frame, sym, cell);
      std::size_t n = static_cast<std::size_t>(cell->array.element_count());
      cell->array.data = std::make_shared<std::vector<Value>>(
          n, Value::zero_of(sym->type()));
    } else {
      cell->scalar = Value::zero_of(sym->type());
    }
    // DATA initialization.
    if (!sym->data_values().empty()) {
      if (sym->is_array()) {
        p_assert_msg(sym->data_values().size() ==
                         cell->array.data->size(),
                     "DATA value count mismatch for " + sym->name());
        for (std::size_t i = 0; i < cell->array.data->size(); ++i)
          (*cell->array.data)[i] =
              eval(unit, frame, *sym->data_values()[i]).coerce_to(sym->type());
      } else {
        cell->scalar =
            eval(unit, frame, *sym->data_values()[0]).coerce_to(sym->type());
      }
    }
  }
}

void Interpreter::resolve_array_bounds(ProgramUnit& unit, Frame& frame,
                                       Symbol* sym, Cell* cell) {
  cell->array.bounds.clear();
  for (std::size_t d = 0; d < sym->dims().size(); ++d) {
    const Dimension& dim = sym->dims()[d];
    std::int64_t lo =
        dim.lower ? eval(unit, frame, *dim.lower).as_int() : 1;
    std::int64_t hi;
    if (dim.upper) {
      hi = eval(unit, frame, *dim.upper).as_int();
    } else {
      // Assumed size: must be the last dimension of a bound formal whose
      // payload already exists.
      p_assert_msg(d + 1 == sym->dims().size(),
                   "assumed-size dimension must be last: " + sym->name());
      p_assert_msg(cell->array.data != nullptr,
                   "assumed-size array without payload: " + sym->name());
      std::int64_t stride = 1;
      for (const auto& [blo, bhi] : cell->array.bounds)
        stride *= (bhi - blo + 1);
      std::int64_t remaining =
          static_cast<std::int64_t>(cell->array.data->size()) -
          cell->array.offset;
      hi = lo + remaining / stride - 1;
    }
    p_assert_msg(hi >= lo, "empty array dimension for " + sym->name());
    cell->array.bounds.emplace_back(lo, hi);
  }
}

void Interpreter::execute_unit(ProgramUnit& unit, Frame& frame,
                               UnitResult* out) {
  UnitResult r = execute_range(unit, frame, unit.stmts().first(), nullptr);
  if (out) *out = r;
}

Interpreter::UnitResult Interpreter::execute_range(ProgramUnit& unit,
                                                   Frame& frame,
                                                   Statement* first,
                                                   Statement* stop) {
  Statement* s = first;
  while (s != stop && s != nullptr) {
    UnitResult r = execute_statement(unit, frame, s);
    if (r.returned || r.stopped) return r;
  }
  return {};
}

Interpreter::UnitResult Interpreter::execute_statement(ProgramUnit& unit,
                                                       Frame& frame,
                                                       Statement*& s) {
  count_statement();
  switch (s->kind()) {
    case StmtKind::Assign: {
      auto* a = static_cast<AssignStmt*>(s);
      if (in_parallel_ && a->reduction_flag != ReductionKind::None)
        ++reduction_updates_;
      Value v = eval(unit, frame, a->rhs());
      store(unit, frame, a->lhs(), v);
      s = s->next();
      return {};
    }
    case StmtKind::Do: {
      auto* d = static_cast<DoStmt*>(s);
      std::int64_t init = eval(unit, frame, d->init()).as_int();
      std::int64_t limit = eval(unit, frame, d->limit()).as_int();
      std::int64_t step = eval(unit, frame, d->step()).as_int();
      p_assert_msg(step != 0, "DO step is zero");

      const bool wants_parallel =
          (d->par.is_parallel || d->par.speculative) && !in_parallel_ &&
          config_.processors > 1;
      if (wants_parallel) {
        UnitResult r =
            d->par.speculative
                ? run_speculative_loop(unit, frame, d, init, limit, step)
                : run_parallel_loop(unit, frame, d, init, limit, step);
        if (r.returned || r.stopped) return r;
        s = d->follow()->next();
        return {};
      }

      Cell* idx = frame.lookup(d->index());
      p_assert(idx != nullptr && !idx->is_array);
      for (std::int64_t v = init; step > 0 ? v <= limit : v >= limit;
           v += step) {
        idx->scalar = Value::integer(v);
        charge(costs_.loop_iter);
        UnitResult r = execute_range(unit, frame, d->next(), d->follow());
        if (r.returned || r.stopped) return r;
      }
      idx->scalar = Value::integer(
          step > 0 ? std::max(init, limit + step) : std::min(init, limit + step));
      s = d->follow()->next();
      return {};
    }
    case StmtKind::EndDo:
      s = s->next();
      return {};
    case StmtKind::If: {
      // Dispatch over the whole arm chain here; arm headers reached by
      // *sequential flow* (below) mean the previous arm completed and jump
      // to the END IF instead.
      Statement* arm = s;
      while (true) {
        if (arm->kind() == StmtKind::If || arm->kind() == StmtKind::ElseIf) {
          charge(costs_.branch);
          const Expression& cond =
              arm->kind() == StmtKind::If
                  ? static_cast<IfStmt*>(arm)->cond()
                  : static_cast<ElseIfStmt*>(arm)->cond();
          if (eval(unit, frame, cond).as_logical()) {
            s = arm->next();
            return {};
          }
          arm = arm->kind() == StmtKind::If
                    ? static_cast<IfStmt*>(arm)->next_arm()
                    : static_cast<ElseIfStmt*>(arm)->next_arm();
        } else {
          // ELSE (unconditionally taken) or END IF (no arm taken).
          s = arm->next();
          return {};
        }
      }
    }
    case StmtKind::ElseIf:
      s = static_cast<ElseIfStmt*>(s)->end();  // previous arm completed
      return {};
    case StmtKind::Else:
      s = static_cast<ElseStmt*>(s)->end();  // previous arm completed
      return {};
    case StmtKind::EndIf:
      s = s->next();
      return {};
    case StmtKind::Goto: {
      charge(costs_.branch);
      Statement* target =
          unit.stmts().find_label(static_cast<GotoStmt*>(s)->target());
      p_assert_msg(target != nullptr, "GOTO to unknown label");
      s = target;
      return {};
    }
    case StmtKind::Continue:
    case StmtKind::Comment:
      s = s->next();
      return {};
    case StmtKind::Call: {
      bool stopped = run_call(unit, frame, *static_cast<CallStmt*>(s));
      if (stopped) {
        UnitResult r;
        r.stopped = true;
        return r;
      }
      s = s->next();
      return {};
    }
    case StmtKind::Return: {
      UnitResult r;
      r.returned = true;
      return r;
    }
    case StmtKind::Stop: {
      UnitResult r;
      r.stopped = true;
      return r;
    }
    case StmtKind::Print: {
      auto* p = static_cast<PrintStmt*>(s);
      std::ostringstream line;
      bool first_item = true;
      for (const ExprPtr& item : p->items()) {
        if (!first_item) line << " ";
        first_item = false;
        if (item->kind() == ExprKind::StringConst) {
          line << static_cast<const StringConst&>(*item).value();
        } else {
          line << format_value(eval(unit, frame, *item));
        }
      }
      result_.output.push_back(line.str());
      s = s->next();
      return {};
    }
  }
  p_unreachable("bad statement kind");
}

// --- expression evaluation ------------------------------------------------------

Value Interpreter::eval(ProgramUnit& unit, Frame& frame,
                        const Expression& e) {
  switch (e.kind()) {
    case ExprKind::IntConst:
      return Value::integer(static_cast<const IntConst&>(e).value());
    case ExprKind::RealConst:
      return Value::real(static_cast<const RealConst&>(e).value());
    case ExprKind::LogicalConst:
      return Value::logical(static_cast<const LogicalConst&>(e).value());
    case ExprKind::StringConst:
      p_assert_msg(false, "string value outside PRINT");
    case ExprKind::VarRef: {
      Symbol* sym = static_cast<const VarRef&>(e).symbol();
      if (sym->kind() == SymbolKind::Parameter) {
        p_assert(sym->param_value() != nullptr);
        return eval(unit, frame, *sym->param_value()).coerce_to(sym->type());
      }
      Cell* cell = frame.lookup(sym);
      p_assert_msg(cell != nullptr, "unbound variable " + sym->name());
      p_assert_msg(!cell->is_array,
                   "whole array used as a value: " + sym->name());
      charge(costs_.mem);
      return cell->scalar;
    }
    case ExprKind::ArrayRef: {
      const auto& ref = static_cast<const ArrayRef&>(e);
      Cell* cell = frame.lookup(ref.symbol());
      p_assert_msg(cell != nullptr && cell->is_array,
                   "array not bound: " + ref.symbol()->name());
      std::vector<std::int64_t> subs = eval_subscripts(unit, frame, ref);
      std::size_t flat = cell->array.flat_index(subs);
      charge(costs_.mem);
      auto shadow = shadows_.find(ref.symbol());
      if (shadow != shadows_.end()) shadow->second->record_read(flat);
      return (*cell->array.data)[flat];
    }
    case ExprKind::BinOp: {
      const auto& b = static_cast<const BinOp&>(e);
      Value l = eval(unit, frame, b.left());
      Value r = eval(unit, frame, b.right());
      switch (b.op()) {
        case BinOpKind::Add:
          charge(costs_.add);
          if (l.is_integer() && r.is_integer())
            return Value::integer(l.as_int() + r.as_int());
          return Value::real(l.as_real() + r.as_real());
        case BinOpKind::Sub:
          charge(costs_.add);
          if (l.is_integer() && r.is_integer())
            return Value::integer(l.as_int() - r.as_int());
          return Value::real(l.as_real() - r.as_real());
        case BinOpKind::Mul:
          charge(costs_.mul);
          if (l.is_integer() && r.is_integer())
            return Value::integer(l.as_int() * r.as_int());
          return Value::real(l.as_real() * r.as_real());
        case BinOpKind::Div:
          charge(costs_.div);
          if (l.is_integer() && r.is_integer()) {
            p_assert_msg(r.as_int() != 0, "integer division by zero");
            return Value::integer(l.as_int() / r.as_int());
          }
          return Value::real(l.as_real() / r.as_real());
        case BinOpKind::Pow:
          charge(costs_.pow);
          if (l.is_integer() && r.is_integer())
            return Value::integer(ipow(l.as_int(), r.as_int()));
          return Value::real(std::pow(l.as_real(), r.as_real()));
        case BinOpKind::Eq: charge(costs_.add);
          if (l.is_integer() && r.is_integer())
            return Value::logical(l.as_int() == r.as_int());
          return Value::logical(l.as_real() == r.as_real());
        case BinOpKind::Ne: charge(costs_.add);
          if (l.is_integer() && r.is_integer())
            return Value::logical(l.as_int() != r.as_int());
          return Value::logical(l.as_real() != r.as_real());
        case BinOpKind::Lt: charge(costs_.add);
          if (l.is_integer() && r.is_integer())
            return Value::logical(l.as_int() < r.as_int());
          return Value::logical(l.as_real() < r.as_real());
        case BinOpKind::Le: charge(costs_.add);
          if (l.is_integer() && r.is_integer())
            return Value::logical(l.as_int() <= r.as_int());
          return Value::logical(l.as_real() <= r.as_real());
        case BinOpKind::Gt: charge(costs_.add);
          if (l.is_integer() && r.is_integer())
            return Value::logical(l.as_int() > r.as_int());
          return Value::logical(l.as_real() > r.as_real());
        case BinOpKind::Ge: charge(costs_.add);
          if (l.is_integer() && r.is_integer())
            return Value::logical(l.as_int() >= r.as_int());
          return Value::logical(l.as_real() >= r.as_real());
        case BinOpKind::And:
          charge(costs_.add);
          return Value::logical(l.as_logical() && r.as_logical());
        case BinOpKind::Or:
          charge(costs_.add);
          return Value::logical(l.as_logical() || r.as_logical());
      }
      p_unreachable("bad binop");
    }
    case ExprKind::UnOp: {
      const auto& u = static_cast<const UnOp&>(e);
      Value v = eval(unit, frame, u.operand());
      charge(costs_.add);
      if (u.op() == UnOpKind::Neg) {
        if (v.is_integer()) return Value::integer(-v.as_int());
        return Value::real(-v.as_real());
      }
      return Value::logical(!v.as_logical());
    }
    case ExprKind::FuncCall: {
      const auto& f = static_cast<const FuncCall&>(e);
      if (is_intrinsic_name(f.name())) return eval_intrinsic(unit, frame, f);
      return eval_user_function(unit, frame, f);
    }
    case ExprKind::Wildcard:
      p_assert_msg(false, "wildcard evaluated at run time");
  }
  p_unreachable("bad expression kind");
}

Value Interpreter::eval_intrinsic(ProgramUnit& unit, Frame& frame,
                                  const FuncCall& f) {
  charge(costs_.intrinsic);
  std::vector<Value> args;
  args.reserve(f.args().size());
  for (const ExprPtr& a : f.args()) args.push_back(eval(unit, frame, *a));
  const std::string& name = f.name();
  auto arity = [&](size_t n) {
    p_assert_msg(args.size() == n, "bad arity for intrinsic " + name);
  };
  if (name == "abs") {
    arity(1);
    if (args[0].is_integer())
      return Value::integer(std::abs(args[0].as_int()));
    return Value::real(std::fabs(args[0].as_real()));
  }
  if (name == "max" || name == "min") {
    p_assert_msg(args.size() >= 2, "bad arity for " + name);
    bool all_int = true;
    for (const Value& v : args) all_int = all_int && v.is_integer();
    if (all_int) {
      std::int64_t r = args[0].as_int();
      for (const Value& v : args)
        r = name == "max" ? std::max(r, v.as_int())
                          : std::min(r, v.as_int());
      return Value::integer(r);
    }
    double r = args[0].as_real();
    for (const Value& v : args)
      r = name == "max" ? std::max(r, v.as_real())
                        : std::min(r, v.as_real());
    return Value::real(r);
  }
  if (name == "mod") {
    arity(2);
    if (args[0].is_integer() && args[1].is_integer()) {
      p_assert_msg(args[1].as_int() != 0, "mod by zero");
      return Value::integer(args[0].as_int() % args[1].as_int());
    }
    return Value::real(std::fmod(args[0].as_real(), args[1].as_real()));
  }
  if (name == "sqrt") { arity(1); return Value::real(std::sqrt(args[0].as_real())); }
  if (name == "exp") { arity(1); return Value::real(std::exp(args[0].as_real())); }
  if (name == "log") { arity(1); return Value::real(std::log(args[0].as_real())); }
  if (name == "log10") { arity(1); return Value::real(std::log10(args[0].as_real())); }
  if (name == "sin") { arity(1); return Value::real(std::sin(args[0].as_real())); }
  if (name == "cos") { arity(1); return Value::real(std::cos(args[0].as_real())); }
  if (name == "tan") { arity(1); return Value::real(std::tan(args[0].as_real())); }
  if (name == "atan") { arity(1); return Value::real(std::atan(args[0].as_real())); }
  if (name == "atan2") {
    arity(2);
    return Value::real(std::atan2(args[0].as_real(), args[1].as_real()));
  }
  if (name == "sign") {
    arity(2);
    if (args[0].is_integer() && args[1].is_integer()) {
      std::int64_t m = std::abs(args[0].as_int());
      return Value::integer(args[1].as_int() >= 0 ? m : -m);
    }
    double m = std::fabs(args[0].as_real());
    return Value::real(args[1].as_real() >= 0 ? m : -m);
  }
  if (name == "int") {
    arity(1);
    return Value::integer(args[0].as_int());
  }
  if (name == "nint") {
    arity(1);
    return Value::integer(std::llround(args[0].as_real()));
  }
  if (name == "real") { arity(1); return Value::real(args[0].as_real()); }
  if (name == "dble") { arity(1); return Value::real(args[0].as_real()); }
  if (name == "iand") {
    arity(2);
    return Value::integer(args[0].as_int() & args[1].as_int());
  }
  if (name == "ior") {
    arity(2);
    return Value::integer(args[0].as_int() | args[1].as_int());
  }
  if (name == "ieor") {
    arity(2);
    return Value::integer(args[0].as_int() ^ args[1].as_int());
  }
  p_assert_msg(false, "unimplemented intrinsic " + name);
}

std::vector<std::int64_t> Interpreter::eval_subscripts(ProgramUnit& unit,
                                                       Frame& frame,
                                                       const ArrayRef& ref) {
  std::vector<std::int64_t> subs;
  subs.reserve(ref.subscripts().size());
  for (const ExprPtr& s : ref.subscripts())
    subs.push_back(eval(unit, frame, *s).as_int());
  return subs;
}

void Interpreter::store(ProgramUnit& unit, Frame& frame,
                        const Expression& lhs, Value v) {
  charge(costs_.mem);
  if (lhs.kind() == ExprKind::VarRef) {
    Symbol* sym = static_cast<const VarRef&>(lhs).symbol();
    Cell* cell = frame.lookup(sym);
    p_assert_msg(cell != nullptr && !cell->is_array,
                 "bad scalar store to " + sym->name());
    cell->scalar = v.coerce_to(sym->type());
    return;
  }
  const auto& ref = static_cast<const ArrayRef&>(lhs);
  Cell* cell = frame.lookup(ref.symbol());
  p_assert_msg(cell != nullptr && cell->is_array,
               "bad array store to " + ref.symbol()->name());
  std::vector<std::int64_t> subs = eval_subscripts(unit, frame, ref);
  std::size_t flat = cell->array.flat_index(subs);
  auto shadow = shadows_.find(ref.symbol());
  if (shadow != shadows_.end()) shadow->second->record_write(flat);
  (*cell->array.data)[flat] = v.coerce_to(ref.symbol()->type());
}

// --- calls ----------------------------------------------------------------------

namespace {
/// Copy-restore binding for array-element or expression actuals.
struct CopyBack {
  Cell* temp;
  Cell* target_cell;  // array cell
  std::size_t flat;
};
}  // namespace

bool Interpreter::run_call(ProgramUnit& unit, Frame& frame,
                           const CallStmt& call) {
  charge(costs_.call);
  ProgramUnit* callee = program_.find(call.name());
  p_assert_msg(callee != nullptr && callee->kind() == UnitKind::Subroutine,
               "call to unknown subroutine " + call.name());
  p_assert_msg(call.args().size() == callee->formals().size(),
               "argument count mismatch calling " + call.name());

  Frame inner;
  std::vector<CopyBack> copybacks;
  std::vector<std::unique_ptr<Cell>> temps;

  for (size_t i = 0; i < call.args().size(); ++i) {
    Symbol* formal = callee->formals()[i];
    const Expression& actual = *call.args()[i];
    if (actual.kind() == ExprKind::VarRef) {
      Symbol* asym = static_cast<const VarRef&>(actual).symbol();
      if (asym->kind() == SymbolKind::Parameter) {
        auto temp = std::make_unique<Cell>();
        temp->scalar = eval(unit, frame, actual).coerce_to(formal->type());
        inner.bind(formal, temp.get());
        temps.push_back(std::move(temp));
        continue;
      }
      Cell* cell = frame.lookup(asym);
      p_assert_msg(cell != nullptr, "unbound actual " + asym->name());
      if (cell->is_array) {
        // Whole-array aliasing: share the payload; bounds re-resolved in
        // callee terms below.
        auto view = std::make_unique<Cell>();
        view->is_array = true;
        view->array.data = cell->array.data;
        view->array.offset = cell->array.offset;
        inner.bind(formal, view.get());
        temps.push_back(std::move(view));
      } else {
        inner.bind(formal, cell);  // scalar by reference
      }
      continue;
    }
    if (actual.kind() == ExprKind::ArrayRef) {
      const auto& aref = static_cast<const ArrayRef&>(actual);
      Cell* cell = frame.lookup(aref.symbol());
      p_assert(cell != nullptr && cell->is_array);
      std::vector<std::int64_t> subs = eval_subscripts(unit, frame, aref);
      std::size_t flat = cell->array.flat_index(subs);
      if (formal->is_array()) {
        // Array section starting at the element.
        auto view = std::make_unique<Cell>();
        view->is_array = true;
        view->array.data = cell->array.data;
        view->array.offset = static_cast<std::int64_t>(flat);
        inner.bind(formal, view.get());
        temps.push_back(std::move(view));
      } else {
        // Scalar formal bound to an array element: copy-restore.
        auto temp = std::make_unique<Cell>();
        temp->scalar = (*cell->array.data)[flat];
        copybacks.push_back({temp.get(), cell, flat});
        inner.bind(formal, temp.get());
        temps.push_back(std::move(temp));
      }
      continue;
    }
    // Expression actual: evaluated copy (no copy-back).
    auto temp = std::make_unique<Cell>();
    temp->scalar = eval(unit, frame, actual).coerce_to(formal->type());
    inner.bind(formal, temp.get());
    temps.push_back(std::move(temp));
  }

  // Resolve bound array formals' dims in callee terms (scalars first —
  // already bound above).
  for (Symbol* formal : callee->formals()) {
    if (!formal->is_array()) continue;
    Cell* cell = inner.lookup(formal);
    p_assert(cell != nullptr);
    p_assert_msg(cell->is_array,
                 "scalar actual for array formal " + formal->name());
    resolve_array_bounds(*callee, inner, formal, cell);
  }

  init_frame(*callee, inner);
  UnitResult r;
  execute_unit(*callee, inner, &r);
  for (const CopyBack& cb : copybacks)
    (*cb.target_cell->array.data)[cb.flat] = cb.temp->scalar;
  return r.stopped;
}

Value Interpreter::eval_user_function(ProgramUnit& unit, Frame& frame,
                                      const FuncCall& f) {
  charge(costs_.call);
  ProgramUnit* callee = program_.find(f.name());
  p_assert_msg(callee != nullptr && callee->kind() == UnitKind::Function,
               "call to unknown function " + f.name());
  p_assert_msg(f.args().size() == callee->formals().size(),
               "argument count mismatch calling " + f.name());

  Frame inner;
  std::vector<std::unique_ptr<Cell>> temps;
  for (size_t i = 0; i < f.args().size(); ++i) {
    Symbol* formal = callee->formals()[i];
    const Expression& actual = *f.args()[i];
    if (actual.kind() == ExprKind::VarRef) {
      Symbol* asym = static_cast<const VarRef&>(actual).symbol();
      Cell* cell =
          asym->kind() == SymbolKind::Parameter ? nullptr : frame.lookup(asym);
      if (cell != nullptr && cell->is_array && formal->is_array()) {
        auto view = std::make_unique<Cell>();
        view->is_array = true;
        view->array.data = cell->array.data;
        view->array.offset = cell->array.offset;
        inner.bind(formal, view.get());
        temps.push_back(std::move(view));
        continue;
      }
      if (cell != nullptr && !cell->is_array) {
        inner.bind(formal, cell);
        continue;
      }
    }
    auto temp = std::make_unique<Cell>();
    temp->scalar = eval(unit, frame, actual).coerce_to(formal->type());
    inner.bind(formal, temp.get());
    temps.push_back(std::move(temp));
  }
  for (Symbol* formal : callee->formals()) {
    if (!formal->is_array()) continue;
    Cell* cell = inner.lookup(formal);
    p_assert(cell != nullptr && cell->is_array);
    resolve_array_bounds(*callee, inner, formal, cell);
  }
  init_frame(*callee, inner);
  UnitResult r;
  execute_unit(*callee, inner, &r);
  if (r.stopped) {
    result_.stopped = true;
    throw UserError("STOP inside function");
  }
  Cell* res = inner.lookup(callee->result());
  p_assert_msg(res != nullptr && !res->is_array,
               "function result unset: " + f.name());
  return res->scalar;
}

// --- parallel execution -----------------------------------------------------------

std::size_t Interpreter::reduction_elements(Frame& frame, const DoStmt* d) {
  std::size_t total = 0;
  for (const ReductionInfo& r : d->par.reductions) {
    Cell* cell = frame.lookup(r.var);
    if (cell != nullptr && cell->is_array)
      total += static_cast<std::size_t>(cell->array.element_count());
    else
      total += 1;
  }
  return total;
}

Interpreter::UnitResult Interpreter::run_parallel_loop(
    ProgramUnit& unit, Frame& frame, DoStmt* d, std::int64_t init,
    std::int64_t limit, std::int64_t step) {
  ++result_.parallel_instances;
  in_parallel_ = true;
  Cell* idx = frame.lookup(d->index());
  p_assert(idx != nullptr);
  const std::uint64_t updates_before = reduction_updates_;

  std::vector<std::uint64_t> iter_costs;
  std::uint64_t* saved_acc = cost_acc_;
  UnitResult out;
  for (std::int64_t v = init; step > 0 ? v <= limit : v >= limit;
       v += step) {
    idx->scalar = Value::integer(v);
    std::uint64_t iter_cost = costs_.loop_iter;
    cost_acc_ = &iter_cost;
    UnitResult r = execute_range(unit, frame, d->next(), d->follow());
    cost_acc_ = saved_acc;
    iter_costs.push_back(iter_cost);
    if (r.returned || r.stopped) {
      out = r;
      break;
    }
  }
  idx->scalar = Value::integer(
      step > 0 ? std::max(init, limit + step) : std::min(init, limit + step));
  in_parallel_ = false;

  std::uint64_t serial_sum = 0;
  for (std::uint64_t c : iter_costs) serial_sum += c;
  std::uint64_t par = schedule_doall(iter_costs, config_,
                                     reduction_elements(frame, d),
                                     d->par.lastvalue_vars.size(),
                                     reduction_updates_ - updates_before);
  result_.clock.serial += serial_sum;
  result_.clock.parallel += par;
  return out;
}

Interpreter::UnitResult Interpreter::run_speculative_loop(
    ProgramUnit& unit, Frame& frame, DoStmt* d, std::int64_t init,
    std::int64_t limit, std::int64_t step) {
  ++result_.speculative_attempts;
  Cell* idx = frame.lookup(d->index());
  p_assert(idx != nullptr);

  // Checkpoint: snapshot everything the loop may write (arrays in full,
  // assigned scalars).  The paper's implementation writes to temporaries;
  // the state-restoration cost is modeled below either way.
  std::map<Cell*, std::vector<Value>> array_checkpoint;
  std::map<Cell*, Value> scalar_checkpoint;
  std::uint64_t checkpoint_cost = 0;
  auto accesses = collect_array_accesses(d);
  for (const auto& [array, refs] : accesses) {
    bool written = false;
    for (const ArrayAccess& a : refs) written = written || a.is_write;
    if (!written) continue;
    Cell* cell = frame.lookup(array);
    if (cell == nullptr || !cell->is_array) continue;
    array_checkpoint[cell] = *cell->array.data;
    checkpoint_cost += cell->array.data->size() * costs_.mem;
  }
  for (Symbol* s : scalars_assigned(d)) {
    Cell* cell = frame.lookup(s);
    if (cell != nullptr && !cell->is_array)
      scalar_checkpoint[cell] = cell->scalar;
  }

  // Shadow arrays for the statically unanalyzable arrays.
  std::vector<std::unique_ptr<ShadowArrays>> shadow_storage;
  p_assert_msg(!d->par.speculative_arrays.empty(),
               "speculative loop without arrays under test");
  for (Symbol* s : d->par.speculative_arrays) {
    Cell* cell = frame.lookup(s);
    p_assert_msg(cell != nullptr && cell->is_array,
                 "speculative array not bound: " + s->name());
    shadow_storage.push_back(
        std::make_unique<ShadowArrays>(cell->array.data->size()));
    shadows_[s] = shadow_storage.back().get();
  }

  // Speculative parallel execution with marking.
  in_parallel_ = true;
  std::vector<std::uint64_t> iter_costs;
  std::uint64_t* saved_acc = cost_acc_;
  UnitResult out;
  for (std::int64_t v = init; step > 0 ? v <= limit : v >= limit;
       v += step) {
    idx->scalar = Value::integer(v);
    for (auto& sh : shadow_storage) sh->begin_iteration();
    std::uint64_t iter_cost = costs_.loop_iter;
    cost_acc_ = &iter_cost;
    UnitResult r = execute_range(unit, frame, d->next(), d->follow());
    cost_acc_ = saved_acc;
    for (auto& sh : shadow_storage) sh->end_iteration();
    iter_costs.push_back(iter_cost);
    if (r.returned || r.stopped) {
      out = r;
      break;
    }
  }
  in_parallel_ = false;
  for (Symbol* s : d->par.speculative_arrays) shadows_.erase(s);

  // Post-execution analysis.
  bool pass = true;
  std::uint64_t pd_cost = 0;
  for (auto& sh : shadow_storage) {
    pass = pass && sh->analyze().pass();
    pd_cost += sh->cost(config_.processors);
  }
  result_.pd_test_cost += pd_cost;

  std::uint64_t serial_sum = 0;
  for (std::uint64_t c : iter_costs) serial_sum += c;
  result_.clock.serial += serial_sum;

  if (pass) {
    std::uint64_t par = schedule_doall(iter_costs, config_,
                                       reduction_elements(frame, d),
                                       d->par.lastvalue_vars.size());
    result_.clock.parallel += par + pd_cost + checkpoint_cost;
    idx->scalar = Value::integer(step > 0 ? std::max(init, limit + step)
                                          : std::min(init, limit + step));
    return out;
  }

  // Failed: restore state, charge the wasted attempt, re-execute serially.
  ++result_.speculative_failures;
  for (auto& [cell, snapshot] : array_checkpoint)
    *cell->array.data = snapshot;
  for (auto& [cell, snapshot] : scalar_checkpoint) cell->scalar = snapshot;

  std::uint64_t wasted = schedule_doall(iter_costs, config_, 0, 0) + pd_cost +
                         checkpoint_cost;
  result_.speculative_wasted += wasted;
  result_.clock.parallel += wasted;

  // Sequential re-execution (results recomputed identically; costs flow
  // into both clocks... the serial reference already includes one
  // execution, so charge only the parallel clock for the re-run).
  std::uint64_t rerun_cost = 0;
  cost_acc_ = &rerun_cost;
  UnitResult r2;
  for (std::int64_t v = init; step > 0 ? v <= limit : v >= limit;
       v += step) {
    idx->scalar = Value::integer(v);
    charge(costs_.loop_iter);
    r2 = execute_range(unit, frame, d->next(), d->follow());
    if (r2.returned || r2.stopped) break;
  }
  cost_acc_ = saved_acc;
  result_.clock.parallel += rerun_cost;
  idx->scalar = Value::integer(step > 0 ? std::max(init, limit + step)
                                        : std::min(init, limit + step));
  return r2;
}

}  // namespace polaris
