#include "interp/memory.h"

namespace polaris {

std::size_t ArrayStorage::flat_index(
    const std::vector<std::int64_t>& subs) const {
  p_assert_msg(subs.size() == bounds.size(),
               "subscript rank mismatch at run time");
  std::int64_t index = 0;
  std::int64_t stride = 1;
  for (std::size_t d = 0; d < subs.size(); ++d) {
    const auto& [lo, hi] = bounds[d];
    p_assert_msg(subs[d] >= lo && subs[d] <= hi,
                 "array subscript out of declared bounds");
    index += (subs[d] - lo) * stride;
    stride *= (hi - lo + 1);
  }
  std::int64_t flat = offset + index;
  p_assert_msg(flat >= 0 &&
                   static_cast<std::size_t>(flat) < data->size(),
               "flat array index out of storage");
  return static_cast<std::size_t>(flat);
}

Cell* CommonStore::lookup(const std::string& block, const std::string& name) {
  auto it = cells_.find({block, name});
  return it == cells_.end() ? nullptr : it->second.get();
}

Cell* CommonStore::create(const std::string& block, const std::string& name) {
  auto cell = std::make_unique<Cell>();
  Cell* raw = cell.get();
  auto [it, inserted] = cells_.emplace(std::make_pair(block, name),
                                       std::move(cell));
  p_assert_msg(inserted, "duplicate common cell " + block + "/" + name);
  return raw;
}

Cell* Frame::create_local(Symbol* sym) {
  p_assert(sym != nullptr);
  p_assert_msg(!bound(sym), "symbol already bound: " + sym->name());
  auto cell = std::make_unique<Cell>();
  Cell* raw = cell.get();
  owned_.push_back(std::move(cell));
  cells_[sym] = raw;
  return raw;
}

void Frame::bind(Symbol* sym, Cell* cell) {
  p_assert(sym != nullptr && cell != nullptr);
  p_assert_msg(!bound(sym), "symbol already bound: " + sym->name());
  cells_[sym] = cell;
}

Cell* Frame::lookup(Symbol* sym) const {
  auto it = cells_.find(sym);
  return it == cells_.end() ? nullptr : it->second;
}

}  // namespace polaris
