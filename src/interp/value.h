// Runtime values for the PF77 interpreter.
#pragma once

#include <cstdint>
#include <string>

#include "ir/type.h"
#include "support/assert.h"

namespace polaris {

/// A Fortran scalar value.  Real and double precision share a double
/// representation (sufficient for the reproduction's numeric checks).
class Value {
 public:
  Value() : kind_(TypeKind::Integer), i_(0) {}
  static Value integer(std::int64_t v) {
    Value x;
    x.kind_ = TypeKind::Integer;
    x.i_ = v;
    return x;
  }
  static Value real(double v) {
    Value x;
    x.kind_ = TypeKind::Real;
    x.d_ = v;
    return x;
  }
  static Value logical(bool v) {
    Value x;
    x.kind_ = TypeKind::Logical;
    x.b_ = v;
    return x;
  }
  /// Zero value of a declared type.
  static Value zero_of(Type t) {
    if (t.is_integer()) return integer(0);
    if (t.is_logical()) return logical(false);
    return real(0.0);
  }

  TypeKind kind() const { return kind_; }
  bool is_integer() const { return kind_ == TypeKind::Integer; }
  bool is_real() const {
    return kind_ == TypeKind::Real || kind_ == TypeKind::DoublePrecision;
  }
  bool is_logical() const { return kind_ == TypeKind::Logical; }

  std::int64_t as_int() const {
    if (is_integer()) return i_;
    if (is_real()) return static_cast<std::int64_t>(d_);  // truncation
    p_assert_msg(false, "logical used as integer");
  }
  double as_real() const {
    if (is_real()) return d_;
    if (is_integer()) return static_cast<double>(i_);
    p_assert_msg(false, "logical used as real");
  }
  bool as_logical() const {
    p_assert_msg(is_logical(), "non-logical used in condition");
    return b_;
  }

  /// Coerces to the declared type of a storage location.
  Value coerce_to(Type t) const {
    if (t.is_integer()) return integer(as_int());
    if (t.is_logical()) return logical(as_logical());
    return real(as_real());
  }

  std::string to_string() const {
    if (is_integer()) return std::to_string(i_);
    if (is_logical()) return b_ ? "T" : "F";
    return std::to_string(d_);
  }

 private:
  TypeKind kind_;
  union {
    std::int64_t i_;
    double d_;
    bool b_;
  };
};

}  // namespace polaris
