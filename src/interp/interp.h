// PF77 interpreter with cost accounting and parallel-loop simulation.
//
// The interpreter plays two roles in the reproduction:
//   1. Semantics oracle: transformed programs must print exactly what the
//      originals print (the property tests' equivalence check).
//   2. Timing substrate: every operation charges cost units; loops marked
//      parallel by the DOALL pass are "executed" on the simulated
//      multiprocessor (per-iteration costs measured, then scheduled over p
//      processors with overheads), and loops marked speculative run the
//      full PD-test protocol — shadow marking, post-analysis, commit or
//      restore-and-reexecute (paper Section 3.5).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "interp/memory.h"
#include "ir/program.h"
#include "machine/machine.h"
#include "runtime/pdtest.h"

namespace polaris {

struct CostModel {
  std::uint64_t add = 1;
  std::uint64_t mul = 2;
  std::uint64_t div = 8;
  std::uint64_t pow = 12;
  std::uint64_t intrinsic = 16;
  std::uint64_t mem = 1;       ///< per scalar/array element access
  std::uint64_t branch = 1;
  std::uint64_t loop_iter = 2;
  std::uint64_t call = 24;
};

struct RunResult {
  std::vector<std::string> output;   ///< PRINT lines
  RunClock clock;                    ///< serial vs modeled parallel time
  std::uint64_t statements = 0;      ///< executed statement count
  int parallel_instances = 0;        ///< DOALL loop executions
  int speculative_attempts = 0;
  int speculative_failures = 0;
  std::uint64_t pd_test_cost = 0;    ///< total shadow+analysis cost
  std::uint64_t speculative_wasted = 0;  ///< failed-attempt parallel time
  bool stopped = false;              ///< STOP executed
};

class Interpreter {
 public:
  explicit Interpreter(Program& program, MachineConfig config = {},
                       CostModel costs = {});

  /// Executes the main program to completion.
  RunResult run();

  /// Safety valve for runaway programs (default 500M statements).
  void set_statement_limit(std::uint64_t limit) { stmt_limit_ = limit; }

 private:
  struct UnitResult {
    bool returned = false;
    bool stopped = false;
  };

  void execute_unit(ProgramUnit& unit, Frame& frame, UnitResult* out);
  UnitResult execute_range(ProgramUnit& unit, Frame& frame,
                           Statement* first, Statement* stop);
  UnitResult execute_statement(ProgramUnit& unit, Frame& frame,
                               Statement*& s);

  void init_frame(ProgramUnit& unit, Frame& frame);
  void resolve_array_bounds(ProgramUnit& unit, Frame& frame, Symbol* sym,
                            Cell* cell);

  Value eval(ProgramUnit& unit, Frame& frame, const Expression& e);
  Value eval_intrinsic(ProgramUnit& unit, Frame& frame, const FuncCall& f);
  Value eval_user_function(ProgramUnit& unit, Frame& frame,
                           const FuncCall& f);
  std::vector<std::int64_t> eval_subscripts(ProgramUnit& unit, Frame& frame,
                                            const ArrayRef& ref);
  void store(ProgramUnit& unit, Frame& frame, const Expression& lhs,
             Value v);
  /// Returns true if the callee executed STOP.
  bool run_call(ProgramUnit& unit, Frame& frame, const CallStmt& call);

  /// Parallel and speculative loop execution (see class comment).
  UnitResult run_parallel_loop(ProgramUnit& unit, Frame& frame, DoStmt* d,
                               std::int64_t init, std::int64_t limit,
                               std::int64_t step);
  UnitResult run_speculative_loop(ProgramUnit& unit, Frame& frame, DoStmt* d,
                                  std::int64_t init, std::int64_t limit,
                                  std::int64_t step);
  std::size_t reduction_elements(Frame& frame, const DoStmt* d);

  void charge(std::uint64_t cost) { *cost_acc_ += cost; }
  void count_statement();

  Program& program_;
  MachineConfig config_;
  CostModel costs_;
  CommonStore commons_;
  RunResult result_;
  std::uint64_t segment_cost_ = 0;   ///< cost since last clock flush
  std::uint64_t* cost_acc_ = &segment_cost_;
  bool in_parallel_ = false;
  std::uint64_t reduction_updates_ = 0;  ///< flagged-stmt executions
  std::uint64_t stmt_limit_ = 500'000'000;
  SymbolMap<ShadowArrays*> shadows_;  ///< active PD-test shadows
};

/// Convenience: run a program and return the result.
RunResult run_program(Program& program, MachineConfig config = {});

}  // namespace polaris
