// DOALL recognition driver.
//
// For each loop, combines the analyses in the order Polaris applies them:
// reduction recognition, scalar/array privatization, then array dependence
// testing with resolved symbols exempted.  A loop with no remaining
// carried dependences is marked parallel in its ParallelInfo annotation;
// otherwise the first blocker is recorded as the serialization reason.
// With the run-time option enabled, loops blocked only by subscripted
// subscripts are marked for speculative (PD-test) execution instead.
#pragma once

#include <set>
#include <string>

#include "analysis/analysis_manager.h"
#include "ir/program.h"
#include "support/diagnostics.h"
#include "support/options.h"

namespace polaris {

struct DoallSummary {
  int loops = 0;
  int parallel = 0;
  int speculative = 0;
};

/// Analyzes and annotates every loop of `unit`.  The Program overload
/// additionally computes pure functions interprocedurally so calls to them
/// do not serialize loops; the unit-only overload treats every user
/// function as opaque.  The pass only annotates — it preserves all cached
/// analyses — and its sub-analyses (reductions, privatization, dependence
/// tests) share `am`'s cached flow facts.
/// `pure` (may be null) is a precomputed pure-function set.  Under
/// parallel per-unit execution the pass manager snapshots purity once per
/// pass group, before units fan out to workers: pure_functions() reads
/// every unit's IR, and other workers are concurrently rewriting theirs.
/// Null computes the set here (sequential callers, tests).
DoallSummary mark_doall_loops(Program* program, ProgramUnit& unit,
                              const Options& opts, Diagnostics& diags,
                              AnalysisManager& am,
                              const std::set<std::string>* pure);
DoallSummary mark_doall_loops(Program* program, ProgramUnit& unit,
                              const Options& opts, Diagnostics& diags,
                              AnalysisManager& am);
DoallSummary mark_doall_loops(Program* program, ProgramUnit& unit,
                              const Options& opts, Diagnostics& diags);
DoallSummary mark_doall_loops(ProgramUnit& unit, const Options& opts,
                              Diagnostics& diags);

}  // namespace polaris
