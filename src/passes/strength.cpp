#include "passes/strength.h"

#include <map>

#include "analysis/structure.h"
#include "ir/build.h"
#include "symbolic/poly.h"
#include "symbolic/simplify.h"

namespace polaris {

namespace {

int node_count(const Expression& e) {
  int n = 0;
  walk(e, [&](const Expression&) { ++n; });
  return n;
}

/// A subscript eligible for reduction in loop M: affine in M's index with
/// a constant integer stride, everything else invariant in M.
struct Candidate {
  ExprPtr init_value;  ///< subscript with index := loop init
  ExprPtr stride;      ///< integer constant step contribution
};

std::optional<Candidate> analyze_subscript(const Expression& sub,
                                           DoStmt* loop,
                                           AnalysisManager& am) {
  if (node_count(sub) < 6) return std::nullopt;  // not worth a temp
  Polynomial f = Polynomial::from_expr(sub);
  AtomId k = AtomTable::current().intern_symbol(loop->index());
  if (f.degree_in(k) != 1) return std::nullopt;
  Rational c = f.coefficient(Monomial::atom(k));
  if (c.is_zero()) return std::nullopt;  // composite occurrence (n*k)
  Polynomial rest = f - Polynomial::atom(k) * Polynomial::constant(c);
  if (rest.contains(k)) return std::nullopt;
  // Opaque atoms must not hide the index or anything the loop modifies.
  const SymbolSet& modified =
      am.may_defined_symbols(loop, loop->follow());
  for (AtomId a : f.atoms()) {
    const Expression& ae = AtomTable::current().expr(a);
    if (AtomTable::current().symbol(a) == nullptr) {
      for (Symbol* m : modified)
        if (ae.references(m)) return std::nullopt;
      if (ae.references(loop->index())) return std::nullopt;
    } else if (AtomTable::current().symbol(a) != loop->index() &&
               modified.count(AtomTable::current().symbol(a))) {
      return std::nullopt;  // base varies inside the loop
    }
  }
  std::int64_t step = 0;
  if (!try_fold_int(loop->step(), &step) || step == 0) return std::nullopt;
  Rational stride = c * Rational(step);
  if (!stride.is_integer()) return std::nullopt;

  Candidate cand;
  Polynomial at_init =
      f.substitute(k, Polynomial::from_expr(loop->init()));
  cand.init_value = simplify(*at_init.to_expr());
  cand.stride = ib::ic(stride.as_integer());
  return cand;
}

/// True if `inner` contains no nested DO.
bool is_innermost(StmtList& stmts, DoStmt* inner) {
  return stmts.loops_in(inner).empty();
}

}  // namespace

int strength_reduce(ProgramUnit& unit, const Options& opts,
                    Diagnostics& diags) {
  AnalysisManager am;
  return strength_reduce(unit, opts, diags, am);
}

int strength_reduce(ProgramUnit& unit, const Options& opts,
                    Diagnostics& diags, AnalysisManager& am) {
  if (!opts.strength_reduction) return 0;
  int reduced = 0;
  StmtList& stmts = unit.stmts();

  for (DoStmt* parallel_loop : stmts.loops()) {
    if (!parallel_loop->par.is_parallel) continue;
    // Only the outermost parallel loop of a nest drives execution.
    bool inside_parallel = false;
    for (DoStmt* o = parallel_loop->outer(); o != nullptr; o = o->outer())
      if (o->par.is_parallel) inside_parallel = true;
    if (inside_parallel) continue;

    for (DoStmt* inner : stmts.loops_in(parallel_loop)) {
      if (!is_innermost(stmts, inner)) continue;

      // Collect eligible subscripts, one temp per distinct expression.
      std::map<std::string, Symbol*> temps;
      std::vector<StmtPtr> pre;     // t = init assignments
      std::vector<StmtPtr> post;    // t = t + stride increments
      for (Statement* s = inner->next(); s != inner->follow();
           s = s->next()) {
        for (ExprPtr* slot : s->expr_slots()) {
          walk_slots(*slot, [&](ExprPtr& node) {
            if (node->kind() != ExprKind::ArrayRef) return;
            auto& ar = static_cast<ArrayRef&>(*node);
            for (ExprPtr& sub : ar.subscripts()) {
              auto cand = analyze_subscript(*sub, inner, am);
              if (!cand) continue;
              std::string key = sub->to_string();
              Symbol* temp;
              auto it = temps.find(key);
              if (it != temps.end()) {
                temp = it->second;
              } else {
                temp = unit.symtab().fresh("isr", Type::integer());
                temps.emplace(key, temp);
                pre.push_back(std::make_unique<AssignStmt>(
                    ib::var(temp), std::move(cand->init_value)));
                post.push_back(std::make_unique<AssignStmt>(
                    ib::var(temp),
                    ib::add(ib::var(temp), std::move(cand->stride))));
              }
              sub = ib::var(temp);
              ++reduced;
            }
          });
        }
      }
      if (temps.empty()) continue;

      // Increments go at the end of the inner body; initializations just
      // before the inner loop.  (The body has no irregular flow — the
      // enclosing loop is parallel, which already excludes it.)
      Statement* before_follow = inner->follow()->prev();
      p_assert(before_follow != nullptr);
      stmts.splice_after(before_follow, std::move(post));
      stmts.splice_before(inner, std::move(pre));
      am.invalidate_all();  // spliced temp assignments stale region facts

      // Bookkeeping: the temps are private to every enclosing parallel
      // loop; the inner loop now carries a recurrence, so its own mark
      // (never used for execution here) is dropped.
      for (auto& [key, temp] : temps) {
        for (DoStmt* o = inner; o != nullptr; o = o->outer()) {
          if (o->par.is_parallel || o->par.speculative)
            o->par.private_vars.push_back(temp);
        }
      }
      if (inner->par.is_parallel) {
        inner->par.is_parallel = false;
        inner->par.serial_reason = "strength-reduced (outer loop parallel)";
        inner->par.serial_code = "strength-reduced";
        diags.remark(RemarkKind::Missed, "strength",
                     unit.name() + "/" + inner->loop_name(),
                     "strength-reduced",
                     "serial: strength-reduced (outer loop parallel)",
                     {{"temps", std::to_string(temps.size())}});
      }
      diags.note("strength", unit.name() + "/" + inner->loop_name(),
                 std::to_string(temps.size()) +
                     " induction temporaries introduced");
    }
  }
  return reduced;
}

}  // namespace polaris
