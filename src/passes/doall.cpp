#include "passes/doall.h"

#include <algorithm>

#include "analysis/purity.h"
#include "analysis/structure.h"
#include "dep/ddtest.h"
#include "passes/privatization.h"
#include "passes/reduction.h"

namespace polaris {

namespace {

/// Can this blocked pair plausibly be resolved at run time?  Polaris's
/// speculative path targets loops whose only unresolved accesses go
/// through subscripted subscripts (index arrays computed from input data).
bool subscripted_subscript_blockers(DoStmt* loop,
                                    const SymbolSet& exempt) {
  bool found_any = false;
  for (Statement* s = loop->next(); s != loop->follow(); s = s->next()) {
    if (s->kind() != StmtKind::Assign) continue;
    auto* a = static_cast<AssignStmt*>(s);
    if (a->lhs().kind() != ExprKind::ArrayRef) continue;
    const auto& lhs = static_cast<const ArrayRef&>(a->lhs());
    if (exempt.count(lhs.symbol())) continue;
    // Speculate on the *innermost* loop around the opaque write — outer
    // loops would re-speculate over whole inner instances (and the inner
    // loop's test is the profitable one, per the LRPD papers).
    if (s->outer() != loop) continue;
    for (const auto& sub : lhs.subscripts()) {
      if (sub->contains([](const Expression& e) {
            return e.kind() == ExprKind::ArrayRef;
          }))
        found_any = true;
    }
  }
  return found_any;
}

}  // namespace

DoallSummary mark_doall_loops(Program* program, ProgramUnit& unit,
                              const Options& opts, Diagnostics& diags) {
  AnalysisManager am;
  return mark_doall_loops(program, unit, opts, diags, am);
}

DoallSummary mark_doall_loops(Program* program, ProgramUnit& unit,
                              const Options& opts, Diagnostics& diags,
                              AnalysisManager& am) {
  return mark_doall_loops(program, unit, opts, diags, am, nullptr);
}

DoallSummary mark_doall_loops(Program* program, ProgramUnit& unit,
                              const Options& opts, Diagnostics& diags,
                              AnalysisManager& am,
                              const std::set<std::string>* pure_snapshot) {
  DoallSummary summary;
  // Pure functions are safe to call from concurrent iterations.
  std::set<std::string> pure;
  if (pure_snapshot != nullptr)
    pure = *pure_snapshot;
  else if (program != nullptr && opts.pure_functions)
    pure = pure_functions(*program);
  for (DoStmt* loop : unit.stmts().loops()) {
    ++summary.loops;
    loop->par = ParallelInfo{};
    const std::string context = unit.name() + "/" + loop->loop_name();

    // Every serialization site records the human-readable reason, the
    // machine-readable code (LoopReport::reason_code / `-remarks` stream),
    // and a structured Missed remark.
    auto serialize = [&](const std::string& code, const std::string& reason,
                         std::vector<RemarkArg> args = {}) {
      loop->par.serial_reason = reason;
      loop->par.serial_code = code;
      diags.remark(RemarkKind::Missed, "doall", context, code,
                   "serial: " + reason, std::move(args));
    };

    Statement* first = loop->next();
    Statement* last = loop->follow()->prev();
    if (first == loop->follow()) {
      serialize("empty-body", "empty body");
      continue;
    }
    if (has_irregular_flow(first, last)) {
      serialize("irregular-control-flow",
                "irregular control flow (goto/return/stop)");
      diags.note("doall", context, loop->par.serial_reason);
      continue;
    }
    SymbolSet written_arrays;
    for (Symbol* s : am.may_defined_symbols(first, last))
      if (s->is_array()) written_arrays.insert(s);
    if (has_impure_calls(first, last, pure, written_arrays)) {
      serialize("unresolved-call", "unresolved subprogram call");
      diags.note("doall", context, loop->par.serial_reason);
      continue;
    }
    bool has_io = false;
    for (Statement* s = first; s != loop->follow(); s = s->next())
      if (s->kind() == StmtKind::Print) has_io = true;
    if (has_io) {
      serialize("loop-io", "I/O statement in loop body");
      diags.note("doall", context, loop->par.serial_reason);
      continue;
    }

    // Reductions first: their statements are exempt from scalar analysis
    // and their accumulators from dependence testing.
    std::vector<RecognizedReduction> reductions =
        recognize_reductions(loop, opts, diags, am);

    // Paper Section 3.2: "the data-dependence pass later analyzes and
    // removes the flags for those statements which it can prove have no
    // loop-carried dependences."  An array reduction whose subscripts are
    // provably injective across iterations (e.g. v(i) = v(i) + t) needs no
    // reduction treatment — drop it and let the ordinary test cover it.
    for (auto it = reductions.begin(); it != reductions.end();) {
      if (!it->var->is_array()) {
        ++it;
        continue;
      }
      auto all_accesses = collect_array_accesses(loop);
      SymbolSet others;
      for (const auto& [sym, refs] : all_accesses)
        if (sym != it->var) others.insert(sym);
      Diagnostics scratch;
      LoopDepStats probe =
          test_loop_arrays(loop, opts, scratch, others, context, am);
      if (probe.parallel()) {
        for (AssignStmt* a : it->stmts) a->reduction_flag = ReductionKind::None;
        diags.note("reduction", context,
                   it->var->name() +
                       ": flag removed, no carried dependence (ddtest)");
        it = reductions.erase(it);
      } else {
        ++it;
      }
    }

    SymbolSet exempt;
    for (const RecognizedReduction& r : reductions) exempt.insert(r.var);

    // Privatization of scalars and arrays.
    PrivatizationResult priv =
        analyze_privatization(unit, loop, opts, diags, am);
    for (Symbol* s : priv.private_scalars) exempt.insert(s);
    for (Symbol* s : priv.private_arrays) exempt.insert(s);

    // Any assigned scalar that is neither private nor a reduction blocks
    // the loop (a scalar recurrence the induction pass did not remove).
    // Blocked *arrays* are not fatal here: the dependence tests below
    // decide whether their accesses actually conflict across iterations.
    std::string blocker;
    std::string blocker_code;
    std::vector<RemarkArg> blocker_args;
    for (Symbol* s : priv.blocked) {
      if (exempt.count(s) || s->is_array()) continue;
      blocker = s->name() + ": unresolved scalar recurrence";
      blocker_code = "scalar-recurrence";
      blocker_args = {{"variable", s->name()}};
      break;
    }

    LoopDepStats stats;
    if (blocker.empty()) {
      stats = test_loop_arrays(loop, opts, diags, exempt, context, am);
      loop->par.dep_pairs = stats.pairs;
      loop->par.dep_by_gcd = stats.by_gcd;
      loop->par.dep_by_banerjee = stats.by_banerjee;
      loop->par.dep_by_rangetest = stats.by_rangetest;
      if (!stats.parallel()) {
        blocker = "carried dependence: " + stats.blockers.front();
        blocker_code = "carried-dependence";
        blocker_args = {{"pair", stats.blockers.front()},
                        {"dep_pairs", std::to_string(stats.pairs)}};
      }
    }

    if (blocker.empty()) {
      loop->par.is_parallel = true;
      loop->par.private_vars = priv.private_scalars;
      loop->par.private_vars.insert(loop->par.private_vars.end(),
                                    priv.private_arrays.begin(),
                                    priv.private_arrays.end());
      loop->par.lastvalue_vars = priv.lastvalue_scalars;
      for (const RecognizedReduction& r : reductions)
        loop->par.reductions.push_back({r.var, r.op, r.histogram});
      ++summary.parallel;
      diags.note("doall", context, "parallel");
      diags.remark(
          RemarkKind::Parallelized, "doall", context, "parallel", "parallel",
          {{"dep_pairs", std::to_string(stats.pairs)},
           {"reductions", std::to_string(reductions.size())},
           {"private_vars", std::to_string(loop->par.private_vars.size())}});
      continue;
    }

    loop->par.serial_reason = blocker;
    loop->par.serial_code = blocker_code;
    if (opts.runtime_pd_test &&
        subscripted_subscript_blockers(loop, exempt)) {
      loop->par.speculative = true;
      // The PD test shadows every non-exempt array the loop writes.
      for (Statement* s = loop->next(); s != loop->follow(); s = s->next()) {
        if (s->kind() != StmtKind::Assign) continue;
        auto* a = static_cast<AssignStmt*>(s);
        if (a->lhs().kind() != ExprKind::ArrayRef) continue;
        Symbol* arr = a->target();
        if (exempt.count(arr)) continue;
        if (std::find(loop->par.speculative_arrays.begin(),
                      loop->par.speculative_arrays.end(),
                      arr) == loop->par.speculative_arrays.end())
          loop->par.speculative_arrays.push_back(arr);
      }
      loop->par.private_vars = priv.private_scalars;
      loop->par.private_vars.insert(loop->par.private_vars.end(),
                                    priv.private_arrays.begin(),
                                    priv.private_arrays.end());
      loop->par.lastvalue_vars = priv.lastvalue_scalars;
      for (const RecognizedReduction& r : reductions)
        loop->par.reductions.push_back({r.var, r.op, r.histogram});
      ++summary.speculative;
      diags.note("doall", context, "speculative (run-time PD test)");
      diags.remark(RemarkKind::Parallelized, "doall", context,
                   "speculative-pd-test", "speculative (run-time PD test)",
                   {{"blocked_on", blocker}});
    } else {
      diags.note("doall", context, "serial: " + blocker);
      diags.remark(RemarkKind::Missed, "doall", context, blocker_code,
                   "serial: " + blocker, std::move(blocker_args));
    }
  }
  return summary;
}

DoallSummary mark_doall_loops(ProgramUnit& unit, const Options& opts,
                              Diagnostics& diags) {
  return mark_doall_loops(nullptr, unit, opts, diags);
}

}  // namespace polaris
