#include "passes/inliner.h"

#include <algorithm>
#include <map>
#include <set>

#include "ir/build.h"
#include "symbolic/simplify.h"

namespace polaris {

namespace {

/// How a formal parameter maps to caller terms at one call site.
struct FormalMap {
  // Scalar formal: the replacement expression (actual or temp).
  ExprPtr scalar;
  // Array formal: the actual array plus an optional starting offset for
  // linearized access (actual must then be rank 1).
  Symbol* array = nullptr;
  bool linearize = false;
  ExprPtr linear_base;  ///< 0-based offset of the formal's first element
};

class Expander {
 public:
  Expander(Program& program, ProgramUnit& top, const Options& opts,
           Diagnostics& diags)
      : program_(program), top_(top), opts_(opts), diags_(diags) {}

  InlineResult run() {
    InlineResult result;
    std::set<int> skipped_ids;
    for (int round = 0; round < opts_.max_inline_depth * 64; ++round) {
      CallStmt* call = nullptr;
      for (Statement* s : top_.stmts()) {
        if (s->kind() != StmtKind::Call) continue;
        if (skipped_ids.count(s->id())) continue;
        auto* c = static_cast<CallStmt*>(s);
        ProgramUnit* callee = program_.find(c->name());
        if (callee != nullptr && callee->kind() == UnitKind::Subroutine) {
          call = c;
          break;
        }
      }
      if (call == nullptr) break;
      if (expand(call)) {
        ++result.expanded;
      } else {
        ++result.skipped;
        skipped_ids.insert(call->id());
      }
    }
    return result;
  }

 private:
  bool expand(CallStmt* call);

  /// Compile-time extent of one dimension (upper - lower + 1) as an
  /// expression in callee terms.
  static ExprPtr extent_expr(const Dimension& d) {
    ExprPtr lo = d.lower ? d.lower->clone() : ib::ic(1);
    if (!d.upper) return nullptr;  // assumed size
    return simplify(*ib::add(ib::sub(d.upper->clone(), std::move(lo)),
                             ib::ic(1)));
  }

  Program& program_;
  ProgramUnit& top_;
  const Options& opts_;
  Diagnostics& diags_;
  int temp_counter_ = 0;
};

bool Expander::expand(CallStmt* call) {
  ProgramUnit* callee = program_.find(call->name());
  p_assert(callee != nullptr);
  const std::string context = top_.name() + "/" + call->name();

  if (call->args().size() != callee->formals().size()) {
    diags_.warning("inline", context, "argument count mismatch");
    return false;
  }

  // Work object: a fresh clone of the callee (the template step and the
  // work-copy step collapse, since clone() is already side-effect free).
  std::unique_ptr<ProgramUnit> work = callee->clone(callee->name() + "_w");

  // --- symbol remapping -------------------------------------------------------
  // Locals get fresh names in the caller; commons unify by block+name.
  SymbolMap<Symbol*> sym_map;           // locals & commons
  SymbolMap<FormalMap> formal_map;      // formals

  for (size_t i = 0; i < work->formals().size(); ++i) {
    Symbol* formal = work->formals()[i];
    const Expression& actual = *call->args()[i];
    FormalMap fm;
    if (!formal->is_array()) {
      // Scalar formal.
      if (actual.kind() == ExprKind::VarRef ||
          actual.kind() == ExprKind::ArrayRef) {
        fm.scalar = actual.clone();
      } else {
        // Expression actual: bind to a caller temp (callee writes to it
        // are Fortran-undefined behaviour anyway).
        Symbol* temp = top_.symtab().fresh(
            callee->name() + "_a" + std::to_string(temp_counter_++),
            formal->type());
        std::vector<StmtPtr> init;
        init.push_back(
            std::make_unique<AssignStmt>(ib::var(temp), actual.clone()));
        top_.stmts().splice_before(call, std::move(init));
        fm.scalar = ib::var(temp);
      }
    } else {
      // Array formal: actual must be a whole array (VarRef of an array).
      if (actual.kind() != ExprKind::VarRef ||
          !static_cast<const VarRef&>(actual).symbol()->is_array()) {
        diags_.warning("inline", context,
                       "unsupported array actual for formal " +
                           formal->name());
        return false;
      }
      Symbol* actual_sym = static_cast<const VarRef&>(actual).symbol();
      fm.array = actual_sym;
      // Conforming when ranks match (bounds assumed compatible — the PF77
      // subset convention); otherwise linearize into a rank-1 actual.
      if (actual_sym->rank() != formal->rank()) {
        if (actual_sym->rank() != 1) {
          diags_.warning("inline", context,
                         "cannot linearize into rank-" +
                             std::to_string(actual_sym->rank()) +
                             " actual " + actual_sym->name());
          return false;
        }
        fm.linearize = true;
        fm.linear_base = ib::ic(0);
      }
    }
    formal_map.emplace(formal, std::move(fm));
  }

  for (Symbol* sym : work->symtab().symbols()) {
    if (sym->is_formal()) continue;
    if (sym->in_common()) {
      Symbol* existing = top_.symtab().lookup(sym->name());
      if (existing != nullptr &&
          existing->common_block() == sym->common_block()) {
        sym_map[sym] = existing;
      } else if (existing == nullptr) {
        Symbol* n = top_.symtab().declare(sym->name(), sym->type(),
                                          sym->kind());
        n->set_common_block(sym->common_block());
        sym_map[sym] = n;  // dims remapped below
      } else {
        diags_.warning("inline", context,
                       "common member clashes with caller symbol " +
                           sym->name());
        return false;
      }
    } else {
      Symbol* n = top_.symtab().fresh(callee->name() + "_" + sym->name(),
                                      sym->type());
      n->set_kind(sym->kind());
      if (sym->param_value())
        n->set_param_value(sym->param_value()->clone());
      sym_map[sym] = n;
    }
  }

  // Expression rewriter: formals -> actuals, locals/commons -> new syms.
  std::function<void(ExprPtr&)> rewrite = [&](ExprPtr& e) {
    // Children first so subscripts are already in caller terms.
    for (ExprPtr* slot : e->children()) rewrite(*slot);

    if (e->kind() == ExprKind::VarRef) {
      Symbol* s = static_cast<VarRef&>(*e).symbol();
      auto fit = formal_map.find(s);
      if (fit != formal_map.end()) {
        if (fit->second.scalar) {
          e = fit->second.scalar->clone();
        } else {
          e = ib::var(fit->second.array);  // whole-array pass-through
        }
        return;
      }
      auto sit = sym_map.find(s);
      if (sit != sym_map.end())
        static_cast<VarRef&>(*e).set_symbol(sit->second);
      return;
    }
    if (e->kind() == ExprKind::ArrayRef) {
      auto& ar = static_cast<ArrayRef&>(*e);
      Symbol* s = ar.symbol();
      auto fit = formal_map.find(s);
      if (fit != formal_map.end()) {
        p_assert(fit->second.array != nullptr);
        if (!fit->second.linearize) {
          ar.set_symbol(fit->second.array);
        } else {
          // Linearize: offset = sum (sub_d - lo_d) * stride_d, strides
          // from the *formal*'s declared shape.
          ExprPtr offset = fit->second.linear_base->clone();
          ExprPtr stride = ib::ic(1);
          for (int d = 0; d < ar.rank(); ++d) {
            const Dimension& dim = s->dims()[static_cast<size_t>(d)];
            ExprPtr lo = dim.lower ? dim.lower->clone() : ib::ic(1);
            rewrite(lo);
            ExprPtr term = ib::mul(
                ib::sub(ar.subscripts()[static_cast<size_t>(d)]->clone(),
                        std::move(lo)),
                stride->clone());
            offset = ib::add(std::move(offset), std::move(term));
            ExprPtr ext = extent_expr(dim);
            if (ext == nullptr && d + 1 < ar.rank()) {
              // assumed-size inner dimension: cannot compute strides
              offset = nullptr;
              break;
            }
            if (ext) {
              rewrite(ext);
              stride = ib::mul(std::move(stride), std::move(ext));
            }
          }
          p_assert_msg(offset != nullptr,
                       "assumed-size formal cannot be linearized");
          ExprPtr sub = simplify(*ib::add(std::move(offset), ib::ic(1)));
          e = ib::aref(fit->second.array, std::move(sub));
        }
        return;
      }
      auto sit = sym_map.find(s);
      if (sit != sym_map.end()) ar.set_symbol(sit->second);
      return;
    }
  };

  // Remap dims of newly declared locals/commons (may reference formals).
  for (auto& [old_sym, new_sym] : sym_map) {
    if (!old_sym->is_array() || !new_sym->dims().empty()) continue;
    std::vector<Dimension> dims;
    for (const Dimension& d : old_sym->dims()) {
      ExprPtr lo = d.lower ? d.lower->clone() : nullptr;
      ExprPtr hi = d.upper ? d.upper->clone() : nullptr;
      if (lo) rewrite(lo);
      if (hi) rewrite(hi);
      dims.emplace_back(std::move(lo), std::move(hi));
    }
    new_sym->set_dims(std::move(dims));
    for (const ExprPtr& dv : old_sym->data_values())
      new_sym->add_data_value(dv->clone());
  }

  // --- statement fragment -------------------------------------------------------
  if (work->stmts().empty()) {
    top_.stmts().remove(call);
    return true;
  }
  std::vector<StmtPtr> frag =
      work->stmts().clone_range(work->stmts().first(), work->stmts().last());

  // Label isolation: offset all labels/targets past the caller's maximum.
  int label_base = ((top_.max_label() / 1000) + 1) * 1000;
  bool has_return = false;
  int orig_max_label = 0;
  for (StmtPtr& s : frag) {
    orig_max_label = std::max(orig_max_label, s->label());
    if (s->kind() == StmtKind::Goto)
      orig_max_label = std::max(
          orig_max_label, static_cast<GotoStmt*>(s.get())->target());
  }
  for (StmtPtr& s : frag) {
    if (s->label() != 0) s->set_label(s->label() + label_base);
    if (s->kind() == StmtKind::Goto) {
      auto* g = static_cast<GotoStmt*>(s.get());
      int lab = s->label();
      s = std::make_unique<GotoStmt>(g->target() + label_base);
      s->set_label(lab);
    }
    if (s->kind() == StmtKind::Return) has_return = true;
  }
  int exit_label = label_base + orig_max_label + 1;
  if (has_return) {
    for (StmtPtr& s : frag) {
      if (s->kind() == StmtKind::Return) {
        int lab = s->label();
        s = std::make_unique<GotoStmt>(exit_label);
        s->set_label(lab);
      }
    }
    auto exit_stmt = std::make_unique<ContinueStmt>();
    exit_stmt->set_label(exit_label);
    frag.push_back(std::move(exit_stmt));
  }

  // Rewrite all expressions and DO indices.
  for (StmtPtr& s : frag) {
    if (s->kind() == StmtKind::Do) {
      auto* d = static_cast<DoStmt*>(s.get());
      auto sit = sym_map.find(d->index());
      if (sit != sym_map.end()) {
        d->set_index(sit->second);
      } else {
        auto fit = formal_map.find(d->index());
        if (fit != formal_map.end()) {
          diags_.warning("inline", context,
                         "formal used as DO index is unsupported");
          return false;
        }
      }
    }
    for (ExprPtr* slot : s->expr_slots()) rewrite(*slot);
  }

  top_.stmts().splice_before(call, std::move(frag));
  top_.stmts().remove(call);
  diags_.note("inline", context, "expanded");
  return true;
}

}  // namespace

InlineResult inline_calls(Program& program, const Options& opts,
                          Diagnostics& diags, ProgramUnit* top) {
  InlineResult result;
  if (!opts.inline_expansion) return result;
  if (top == nullptr) top = program.main();
  Expander expander(program, *top, opts, diags);
  return expander.run();
}

}  // namespace polaris
