// Inline expansion (paper Section 3.1).
//
// Polaris performs interprocedural analysis by fully inlining subprogram
// calls into the top-level routine.  The implementation follows the
// paper's template/work scheme: the first expansion of a callee builds a
// "template" (site-independent transformations: local renaming, label
// isolation); each call site then copies the template into a "work" object
// and applies site-specific transformations (formal-to-actual remapping,
// array linearization for nonconforming shapes) before splicing it in.
//
// Supported: subroutine calls with scalar actuals (variables, array
// elements, expressions), whole-array actuals (conforming shape or
// linearized), common blocks shared by name.  Unsupported (diagnosed,
// call left in place): recursion beyond the depth limit, user function
// calls in expressions, alternate entries.
#pragma once

#include "ir/program.h"
#include "support/diagnostics.h"
#include "support/options.h"

namespace polaris {

struct InlineResult {
  int expanded = 0;  ///< call sites expanded
  int skipped = 0;   ///< calls left in place (with a diagnostic)
};

/// Expands calls in `top` (default: the main program) until none remain or
/// the depth limit stops further expansion.
InlineResult inline_calls(Program& program, const Options& opts,
                          Diagnostics& diags, ProgramUnit* top = nullptr);

}  // namespace polaris
