#include "passes/forwardsub.h"

#include <map>
#include <set>

#include "symbolic/simplify.h"

namespace polaris {

namespace {

/// Node-count cap: substitution must not blow expressions up.
int node_count(const Expression& e) {
  int n = 0;
  walk(e, [&](const Expression&) { ++n; });
  return n;
}

class ForwardSub {
 public:
  explicit ForwardSub(ProgramUnit& unit) : unit_(unit) {}

  int run() {
    process_region(unit_.stmts().first(), nullptr);
    return rewrites_;
  }

 private:
  struct Definition {
    ExprPtr value;                  // fully substituted rhs at def point
    SymbolSet operands;     // scalar operands (kill on write)
    SymbolSet arrays;       // arrays read (kill on array write)
  };

  void kill_dependents(Symbol* written, bool is_array) {
    for (auto it = avail_.begin(); it != avail_.end();) {
      bool dead = it->first == written ||
                  (!is_array && it->second.operands.count(written)) ||
                  (is_array && it->second.arrays.count(written));
      it = dead ? avail_.erase(it) : ++it;
    }
  }

  void kill_all() { avail_.clear(); }

  /// Deep copy of the availability map (Definition owns its value tree).
  SymbolMap<Definition> snapshot() const {
    SymbolMap<Definition> out;
    for (const auto& [sym, d] : avail_) {
      Definition c;
      c.value = d.value->clone();
      c.operands = d.operands;
      c.arrays = d.arrays;
      out.emplace(sym, std::move(c));
    }
    return out;
  }

  void substitute_into(ExprPtr& slot) {
    for (auto& [sym, def] : avail_) {
      if (!slot->references(sym)) continue;
      if (node_count(*def.value) > 24) continue;
      rewrites_ += replace_var(slot, sym, *def.value);
    }
    simplify_in_place(slot);
  }

  /// Records a definition if it is propagatable; kills otherwise.
  void record(AssignStmt* a) {
    Symbol* target = a->target();
    bool scalar = a->lhs().kind() == ExprKind::VarRef;
    // Substitute into the statement first (rhs then lhs subscripts),
    // using pre-statement availability.
    substitute_into(a->rhs_slot());
    if (!scalar) {
      auto& lhs = static_cast<ArrayRef&>(*a->lhs_slot());
      for (ExprPtr* sub : lhs.children()) substitute_into(*sub);
    }
    kill_dependents(target, !scalar);
    if (!scalar) return;

    // Propagatable: rhs free of user function calls and of the target.
    const Expression& rhs = a->rhs();
    if (rhs.references(target)) return;
    bool has_call = rhs.contains([](const Expression& e) {
      return e.kind() == ExprKind::FuncCall;
    });
    if (has_call) return;  // conservative: even intrinsics stay put

    Definition def;
    def.value = rhs.clone();
    walk(rhs, [&](const Expression& e) {
      if (e.kind() == ExprKind::VarRef)
        def.operands.insert(static_cast<const VarRef&>(e).symbol());
      else if (e.kind() == ExprKind::ArrayRef)
        def.arrays.insert(static_cast<const ArrayRef&>(e).symbol());
    });
    avail_[target] = std::move(def);
  }

  /// Walks [first, stop) at one structural level.
  void process_region(Statement* first, Statement* stop) {
    for (Statement* s = first; s != stop && s != nullptr;) {
      // Any labeled statement is a potential control-flow join: nothing
      // known before it survives (conservative even for DO terminators).
      if (s->label() != 0) kill_all();
      switch (s->kind()) {
        case StmtKind::Assign:
          record(static_cast<AssignStmt*>(s));
          s = s->next();
          break;
        case StmtKind::Do: {
          auto* d = static_cast<DoStmt*>(s);
          substitute_into(d->init_slot());
          substitute_into(d->limit_slot());
          substitute_into(d->step_slot());
          // Inside the loop, definitions from before it would need proof
          // that the body never redefines them (later iterations would
          // otherwise see body values) — conservatively start fresh and
          // process the body in its own scope.
          auto saved = std::move(avail_);
          avail_.clear();
          process_region(d->next(), d->follow());
          avail_ = std::move(saved);
          // Kill defs invalidated by the loop body or its index.
          for (Statement* t = d; t != d->follow()->next(); t = t->next()) {
            if (t->kind() == StmtKind::Assign) {
              auto* a = static_cast<AssignStmt*>(t);
              kill_dependents(a->target(),
                              a->lhs().kind() == ExprKind::ArrayRef);
            } else if (t->kind() == StmtKind::Do) {
              kill_dependents(static_cast<DoStmt*>(t)->index(), false);
            } else if (t->kind() == StmtKind::Call) {
              kill_all();
              break;
            }
          }
          s = d->follow()->next();
          break;
        }
        case StmtKind::If: {
          auto* ifs = static_cast<IfStmt*>(s);
          substitute_into(ifs->cond_slot());
          // Each arm runs as its own region on a copy of the current
          // availability (its definitions are conditional and die at the
          // END IF); afterwards everything the chain may write is killed.
          Statement* arm = ifs;
          while (arm != ifs->end()) {
            Statement* term = nullptr;
            if (arm->kind() == StmtKind::If) {
              term = static_cast<IfStmt*>(arm)->next_arm();
            } else if (arm->kind() == StmtKind::ElseIf) {
              substitute_into(static_cast<ElseIfStmt*>(arm)->cond_slot());
              term = static_cast<ElseIfStmt*>(arm)->next_arm();
            } else {
              term = ifs->end();
            }
            auto saved = snapshot();
            process_region(arm->next(), term);
            avail_ = std::move(saved);
            arm = term;
          }
          for (Statement* t = ifs->next(); t != ifs->end(); t = t->next()) {
            if (t->kind() == StmtKind::Assign) {
              auto* a = static_cast<AssignStmt*>(t);
              kill_dependents(a->target(),
                              a->lhs().kind() == ExprKind::ArrayRef);
            } else if (t->kind() == StmtKind::Do) {
              kill_dependents(static_cast<DoStmt*>(t)->index(), false);
            } else if (t->kind() == StmtKind::Call) {
              kill_all();
              break;
            }
          }
          s = ifs->end()->next();
          break;
        }
        case StmtKind::Call:
          for (ExprPtr* slot : s->expr_slots()) substitute_into(*slot);
          kill_all();
          s = s->next();
          break;
        case StmtKind::Goto:
        case StmtKind::Continue:
          s = s->next();
          break;
        default:
          for (ExprPtr* slot : s->expr_slots()) substitute_into(*slot);
          s = s->next();
          break;
      }
    }
  }

  ProgramUnit& unit_;
  SymbolMap<Definition> avail_;
  int rewrites_ = 0;
};

}  // namespace

int forward_substitute(ProgramUnit& unit, const Options& opts,
                       Diagnostics& diags) {
  if (!opts.forward_substitution) return 0;
  ForwardSub fs(unit);
  int n = fs.run();
  if (n > 0)
    diags.note("forwardsub", unit.name(),
               std::to_string(n) + " scalar uses substituted");
  return n;
}

}  // namespace polaris
