// Loop normalization (paper Section 3.3: OCEAN's FTRVMT nest needed
// "interprocedural constant propagation and loop normalization" before the
// range test applied).
//
// Loops with constant step c not equal to 1 are rewritten to stride-1 form:
//     do i = lo, hi, c              do i_nrm = 0, (hi - lo)/c
//       ... i ...           =>        ... lo + c*i_nrm ...
//     end do                        end do
//                                   i = lo + c*max((hi - lo + c)/c, 0)
// which makes subscripts affine in the new index for every dependence
// test, re-enables induction substitution (which requires unit steps), and
// preserves Fortran's final-index-value semantics via the trailing
// assignment (emitted only when the old index is live after the loop).
// The index must not be assigned inside the body (checked).
#pragma once

#include "analysis/analysis_manager.h"
#include "ir/program.h"
#include "support/diagnostics.h"
#include "support/options.h"

namespace polaris {

/// Normalizes every constant-step loop with |step| != 1 (and negative unit
/// steps); returns the number of loops rewritten.  Structural queries go
/// through `am`; the pass invalidates it after each rewrite.
int normalize_loops(ProgramUnit& unit, const Options& opts,
                    Diagnostics& diags, AnalysisManager& am);

/// Convenience overload with a private AnalysisManager (no cross-pass
/// caching).
int normalize_loops(ProgramUnit& unit, const Options& opts,
                    Diagnostics& diags);

}  // namespace polaris
