#include "passes/induction.h"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/analysis_manager.h"
#include "analysis/structure.h"
#include "ir/build.h"
#include "symbolic/poly.h"
#include "symbolic/simplify.h"

namespace polaris {

namespace {

/// One recognized increment statement: K = K + inc.
struct IncrementSite {
  AssignStmt* stmt = nullptr;
  Symbol* var = nullptr;
  ExprPtr inc;  ///< owned copy of the increment expression
};

using Env = SymbolMap<Polynomial>;

/// Matches K = K + inc / K = inc + K / K = K - inc; returns the increment
/// or null.
ExprPtr match_increment(AssignStmt* a) {
  if (a->lhs().kind() != ExprKind::VarRef) return nullptr;
  Symbol* k = a->target();
  if (!k->type().is_integer()) return nullptr;
  if (a->rhs().kind() != ExprKind::BinOp) return nullptr;
  const auto& b = static_cast<const BinOp&>(a->rhs());
  auto is_k = [&](const Expression& e) {
    return e.kind() == ExprKind::VarRef &&
           static_cast<const VarRef&>(e).symbol() == k;
  };
  if (b.op() == BinOpKind::Add) {
    if (is_k(b.left()) && !b.right().references(k)) return b.right().clone();
    if (is_k(b.right()) && !b.left().references(k)) return b.left().clone();
  } else if (b.op() == BinOpKind::Sub) {
    if (is_k(b.left()) && !b.right().references(k))
      return ib::neg(b.right().clone());
  }
  return nullptr;
}

/// Matches K = K*c / K = c*K with c free of K; returns c or null.
ExprPtr match_scale(AssignStmt* a) {
  if (a->lhs().kind() != ExprKind::VarRef) return nullptr;
  Symbol* k = a->target();
  if (a->rhs().kind() != ExprKind::BinOp) return nullptr;
  const auto& b = static_cast<const BinOp&>(a->rhs());
  if (b.op() != BinOpKind::Mul) return nullptr;
  auto is_k = [&](const Expression& e) {
    return e.kind() == ExprKind::VarRef &&
           static_cast<const VarRef&>(e).symbol() == k;
  };
  if (is_k(b.left()) && !b.right().references(k)) return b.right().clone();
  if (is_k(b.right()) && !b.left().references(k)) return b.left().clone();
  return nullptr;
}

/// True if `s` lies under an IF (between nest start and s there is an
/// unclosed IF) — conditional increments are rejected.
bool under_if(DoStmt* nest, Statement* s) {
  int depth = 0;
  for (Statement* cur = nest->next(); cur != s; cur = cur->next()) {
    p_assert(cur != nullptr);
    if (cur->kind() == StmtKind::If) ++depth;
    else if (cur->kind() == StmtKind::EndIf) --depth;
  }
  return depth > 0;
}

AtomId atom_of(Symbol* s) { return AtomTable::current().intern_symbol(s); }

/// Evaluates an expression as a polynomial, substituting each candidate's
/// current value from `env`.
Polynomial eval_with_env(const Expression& e, const Env& env) {
  Polynomial p = Polynomial::from_expr(e);
  for (const auto& [sym, value] : env)
    p = p.substitute(atom_of(sym), value);
  return p;
}

class NestSolver {
 public:
  NestSolver(StmtList& stmts, DoStmt* nest, Diagnostics& diags,
             const std::string& context, AnalysisManager& am)
      : stmts_(stmts), nest_(nest), diags_(diags), context_(context),
        am_(am) {}

  /// Collects candidates; returns false if none.
  bool collect(bool allow_cascaded, bool allow_triangular);
  /// Performs substitution; returns number substituted.
  int run();

 private:
  /// Total increment of each candidate over one execution of [first,last)
  /// given entry values `env` (which is advanced to the exit values).
  /// Loop bounds inside are evaluated with the env at their entry.
  bool advance(Statement* first, Statement* last, Env& env);

  /// Per-iteration solution of an inner loop: env advances across the
  /// whole loop; `iter_env` receives values at the top of iteration x.
  bool solve_loop(DoStmt* loop, Env& env, Env* iter_env);

  /// Substitution walk: rewrites uses, deletes increment statements.
  bool substitute(Statement* first, Statement* last, Env env);

  bool is_candidate(Symbol* s) const {
    return std::find(order_.begin(), order_.end(), s) != order_.end();
  }

  StmtList& stmts_;
  DoStmt* nest_;
  Diagnostics& diags_;
  std::string context_;
  AnalysisManager& am_;
  std::vector<Symbol*> order_;  ///< candidates in cascade-topological order
  std::vector<IncrementSite> sites_;
  std::vector<Statement*> to_delete_;

 public:
  int rejected_count_ = 0;
};

bool NestSolver::collect(bool allow_cascaded, bool allow_triangular) {
  // Gather increment statements and all defs per scalar.
  SymbolMap<std::vector<IncrementSite>> incs;
  SymbolMap<int> other_defs;
  for (Statement* s = nest_->next(); s != nest_->follow(); s = s->next()) {
    if (s->kind() == StmtKind::Assign) {
      auto* a = static_cast<AssignStmt*>(s);
      if (a->lhs().kind() != ExprKind::VarRef) continue;
      ExprPtr inc = match_increment(a);
      if (inc) {
        incs[a->target()].push_back({a, a->target(), std::move(inc)});
      } else {
        ++other_defs[a->target()];
      }
    } else if (s->kind() == StmtKind::Do) {
      ++other_defs[static_cast<DoStmt*>(s)->index()];
    } else if (s->kind() == StmtKind::Call) {
      auto* c = static_cast<CallStmt*>(s);
      for (const ExprPtr& arg : c->args()) {
        walk(*arg, [&](const Expression& n) {
          if (n.kind() == ExprKind::VarRef)
            ++other_defs[static_cast<const VarRef&>(n).symbol()];
        });
      }
    }
  }
  // Loop indices of the nest (including the nest root) are not candidates.
  SymbolSet indices;
  indices.insert(nest_->index());
  for (DoStmt* d : stmts_.loops_in(nest_)) indices.insert(d->index());

  // Symbols the nest may modify (for invariance checks on increments).
  const SymbolSet& modified =
      am_.may_defined_symbols(nest_, nest_->follow());

  SymbolMap<std::vector<Symbol*>> cascades;  // K -> referenced cands
  std::vector<Symbol*> candidates;
  for (auto& [k, sites] : incs) {
    if (other_defs.count(k) || indices.count(k)) {
      ++rejected_count_;
      continue;
    }
    bool ok = true;
    std::vector<Symbol*> refs;
    for (const IncrementSite& site : sites) {
      if (under_if(nest_, site.stmt)) {
        diags_.note("induction", context_,
                    k->name() + ": conditional increment, rejected");
        ok = false;
        break;
      }
      // Loops enclosing the increment must have constant step 1 (within
      // the nest); without triangular support (the 1996-compiler model)
      // their bounds must also be independent of outer loop indices.
      for (DoStmt* d = site.stmt->outer(); d != nullptr; d = d->outer()) {
        std::int64_t step = 0;
        if (!try_fold_int(d->step(), &step) || step != 1) {
          diags_.note("induction", context_,
                      k->name() + ": non-unit step loop, rejected");
          ok = false;
        }
        if (!allow_triangular && ok) {
          for (DoStmt* outer = d->outer(); outer != nullptr;
               outer = outer->outer()) {
            if (d->init().references(outer->index()) ||
                d->limit().references(outer->index())) {
              diags_.note("induction", context_,
                          k->name() + ": triangular nest unsupported");
              ok = false;
            }
            if (outer == nest_) break;
          }
        }
        if (d == nest_ || !ok) break;
      }
      if (!ok) break;
      // Increment terms: loop indices, invariants, other candidates.
      bool bad_ref = false;
      walk(*site.inc, [&](const Expression& n) {
        if (n.kind() == ExprKind::VarRef) {
          Symbol* s = static_cast<const VarRef&>(n).symbol();
          if (incs.count(s) && !other_defs.count(s)) {
            refs.push_back(s);
          } else if (modified.count(s) && !indices.count(s)) {
            bad_ref = true;
          }
        } else if (n.kind() == ExprKind::ArrayRef) {
          bad_ref = true;  // array values are not symbolically tractable
        } else if (n.kind() == ExprKind::FuncCall) {
          bad_ref = true;
        }
      });
      if (!bad_ref) {
        // The summation machinery is polynomial: an increment whose
        // canonical form hides a loop index or candidate inside an opaque
        // atom (e.g. 2**i) cannot be summed and must be rejected.
        Polynomial p = Polynomial::from_expr(*site.inc);
        for (AtomId a : p.atoms()) {
          if (AtomTable::current().symbol(a) != nullptr) continue;
          const Expression& ae = AtomTable::current().expr(a);
          for (Symbol* idx : indices)
            if (ae.references(idx)) bad_ref = true;
          for (const auto& [cand, cand_sites] : incs)
            if (ae.references(cand)) bad_ref = true;
        }
      }
      if (bad_ref) {
        diags_.note("induction", context_,
                    k->name() + ": increment not invariant, rejected");
        ok = false;
        break;
      }
    }
    if (!ok) {
      ++rejected_count_;
      continue;
    }
    if (!allow_cascaded && !refs.empty()) {
      diags_.note("induction", context_,
                  k->name() + ": cascaded induction disabled, rejected");
      ++rejected_count_;
      continue;
    }
    candidates.push_back(k);
    cascades[k] = refs;
  }

  // Topological sort of cascades (reject cycles).
  std::vector<Symbol*> order;
  SymbolSet done, visiting;
  std::function<bool(Symbol*)> visit = [&](Symbol* k) {
    if (done.count(k)) return true;
    if (visiting.count(k)) return false;  // cycle
    visiting.insert(k);
    for (Symbol* r : cascades[k]) {
      if (std::find(candidates.begin(), candidates.end(), r) ==
          candidates.end())
        return false;  // cascade onto a rejected candidate
      if (!visit(r)) return false;
    }
    visiting.erase(k);
    done.insert(k);
    order.push_back(k);
    return true;
  };
  for (Symbol* k : candidates) {
    if (!visit(k)) {
      diags_.note("induction", context_,
                  k->name() + ": cyclic or invalid cascade, rejected");
      ++rejected_count_;
      // Remove k and anything depending on it by simply bailing out of
      // this candidate; already-ordered ones stay.
    }
  }
  order_ = std::move(order);

  for (auto& [k, sites] : incs) {
    if (!is_candidate(k)) continue;
    for (IncrementSite& site : sites) sites_.push_back(std::move(site));
  }
  return !order_.empty();
}

bool NestSolver::advance(Statement* first, Statement* last, Env& env) {
  for (Statement* s = first; s != last;) {
    p_assert(s != nullptr);
    if (s->kind() == StmtKind::Assign) {
      auto* a = static_cast<AssignStmt*>(s);
      if (a->lhs().kind() == ExprKind::VarRef && is_candidate(a->target())) {
        ExprPtr inc = match_increment(a);
        p_assert(inc != nullptr);
        env[a->target()] = env[a->target()] + eval_with_env(*inc, env);
      }
      s = s->next();
    } else if (s->kind() == StmtKind::Do) {
      auto* d = static_cast<DoStmt*>(s);
      if (!solve_loop(d, env, nullptr)) return false;
      s = d->follow()->next();
    } else {
      s = s->next();
    }
  }
  return true;
}

bool NestSolver::solve_loop(DoStmt* loop, Env& env, Env* iter_env) {
  // Bounds at loop entry (candidates substituted by entry values).
  Polynomial init = eval_with_env(loop->init(), env);
  Polynomial limit = eval_with_env(loop->limit(), env);
  AtomId x = atom_of(loop->index());

  // Per-iteration deltas, resolved in cascade order: for candidate K, run
  // a trial advance of the body with iteration-entry values env_iter and
  // measure K's increment as a function of x.
  Env env_iter = env;  // values at top of iteration x
  Env sums;            // S_K(x) = sum_{t=init}^{x-1} d_K(t)
  for (Symbol* k : order_) {
    Env trial = env_iter;
    if (!advance(loop->body_first(), loop->follow(), trial)) return false;
    Polynomial delta = trial[k] - env_iter[k];
    if (delta.contains(x) && delta.degree_in(x) > 6) return false;
    // S_K(x) = sum over t in [init, x-1] of delta(t).
    Polynomial upper = Polynomial::atom(x) - Polynomial::constant(1);
    Polynomial sk = delta.contains(x)
                        ? delta.sum_over(x, init, upper)
                        : delta * (Polynomial::atom(x) - init);
    sums[k] = sk;
    env_iter[k] = env[k] + sk;
  }
  if (iter_env) *iter_env = env_iter;
  // Exit values: S_K(limit + 1).
  for (Symbol* k : order_) {
    Polynomial total =
        sums[k].substitute(x, limit + Polynomial::constant(1));
    env[k] = env[k] + total;
  }
  return true;
}

bool NestSolver::substitute(Statement* first, Statement* last, Env env) {
  for (Statement* s = first; s != last;) {
    p_assert(s != nullptr);
    if (s->kind() == StmtKind::Assign) {
      auto* a = static_cast<AssignStmt*>(s);
      if (a->lhs().kind() == ExprKind::VarRef && is_candidate(a->target())) {
        env[a->target()] =
            env[a->target()] +
            eval_with_env(*match_increment(a), env);
        to_delete_.push_back(s);
        s = s->next();
        continue;
      }
      for (ExprPtr* slot : s->expr_slots()) {
        for (Symbol* k : order_) {
          ExprPtr closed = env[k].to_expr();
          replace_var(*slot, k, *closed);
        }
        simplify_in_place(*slot);
      }
      s = s->next();
    } else if (s->kind() == StmtKind::Do) {
      auto* d = static_cast<DoStmt*>(s);
      // Bounds are evaluated at loop entry: substitute with entry env.
      for (ExprPtr* slot : {&d->init_slot(), &d->limit_slot(),
                            &d->step_slot()}) {
        for (Symbol* k : order_) {
          ExprPtr closed = env[k].to_expr();
          replace_var(*slot, k, *closed);
        }
        simplify_in_place(*slot);
      }
      Env iter_env;
      Env env_after = env;
      if (!solve_loop(d, env_after, &iter_env)) return false;
      if (!substitute(d->body_first(), d->follow(), iter_env)) return false;
      env = std::move(env_after);
      s = d->follow()->next();
    } else {
      for (ExprPtr* slot : s->expr_slots()) {
        for (Symbol* k : order_) {
          ExprPtr closed = env[k].to_expr();
          replace_var(*slot, k, *closed);
        }
        simplify_in_place(*slot);
      }
      s = s->next();
    }
  }
  return true;
}

int NestSolver::run() {
  // Entry values: the variables' own pre-nest values, kept symbolic.
  Env env;
  for (Symbol* k : order_) env[k] = Polynomial::symbol(k);

  // Solve the whole nest once: iter_env holds values at the top of each
  // outermost iteration, exit_env the values after the nest.
  Env iter_env;
  Env exit_env = env;
  if (!solve_loop(nest_, exit_env, &iter_env)) {
    diags_.note("induction", context_, "closed form not computable");
    return 0;
  }
  if (!substitute(nest_->body_first(), nest_->follow(), iter_env)) return 0;

  // Last values for live-out candidates.
  for (Symbol* k : order_) {
    if (is_live_after(nest_, k)) {
      ExprPtr closed = simplify(*exit_env[k].to_expr());
      std::vector<StmtPtr> frag;
      frag.push_back(
          std::make_unique<AssignStmt>(ib::var(k), std::move(closed)));
      stmts_.splice_after(nest_->follow(), std::move(frag));
    }
  }

  // Delete the recurrence statements.
  for (Statement* s : to_delete_) stmts_.remove(s);

  for (Symbol* k : order_)
    diags_.note("induction", context_, k->name() + ": substituted");
  return static_cast<int>(order_.size());
}

/// Multiplicative (geometric) inductions, paper Section 3.2 / [13]:
/// K = K*c recurrences with a single loop-invariant factor c are rewritten
/// through a fresh unit counter:
///     kc = 0  (before the nest)
///     K = K*c          ->  kc = kc + 1
///     ...K... (in nest) ->  ...K*c**kc...
///     after nest, K live:  K = K*c**kc
/// The counter is an ordinary additive induction the main solver then
/// substitutes, yielding closed forms like K0 * c**((i-1)*m + j).
int rewrite_multiplicative(ProgramUnit& unit, DoStmt* nest,
                           Diagnostics& diags, const std::string& context,
                           AnalysisManager& am) {
  StmtList& stmts = unit.stmts();

  // Gather multiplicative sites and other defs per scalar.
  SymbolMap<std::vector<AssignStmt*>> sites;
  SymbolMap<ExprPtr> factors;
  SymbolSet invalid;
  const SymbolSet& modified =
      am.may_defined_symbols(nest, nest->follow());
  for (Statement* s = nest->next(); s != nest->follow(); s = s->next()) {
    if (s->kind() == StmtKind::Assign) {
      auto* a = static_cast<AssignStmt*>(s);
      if (a->lhs().kind() != ExprKind::VarRef) continue;
      Symbol* k = a->target();
      ExprPtr c = match_scale(a);
      if (c == nullptr) {
        invalid.insert(k);  // any non-multiplicative def disqualifies
        continue;
      }
      if (under_if(nest, s)) {
        invalid.insert(k);
        continue;
      }
      bool bad = false;
      walk(*c, [&](const Expression& e) {
        if (e.kind() == ExprKind::VarRef) {
          if (modified.count(static_cast<const VarRef&>(e).symbol()))
            bad = true;
        } else if (e.kind() == ExprKind::ArrayRef ||
                   e.kind() == ExprKind::FuncCall) {
          bad = true;
        }
      });
      // Enclosing loops must have constant step 1.
      for (DoStmt* d = s->outer(); d != nullptr; d = d->outer()) {
        std::int64_t step = 0;
        if (!try_fold_int(d->step(), &step) || step != 1) bad = true;
        if (d == nest) break;
      }
      if (bad) {
        invalid.insert(k);
        continue;
      }
      auto fit = factors.find(k);
      if (fit == factors.end()) {
        factors.emplace(k, c->clone());
      } else if (!fit->second->equals(*c)) {
        invalid.insert(k);  // mixed factors
        continue;
      }
      sites[k].push_back(a);
    } else if (s->kind() == StmtKind::Do) {
      invalid.insert(static_cast<DoStmt*>(s)->index());
    } else if (s->kind() == StmtKind::Call) {
      for (const Expression* e : s->expressions()) {
        walk(*e, [&](const Expression& n) {
          if (n.kind() == ExprKind::VarRef)
            invalid.insert(static_cast<const VarRef&>(n).symbol());
        });
      }
    }
  }

  // The rewrite only helps when K is a *value* (geometric series): uses in
  // array subscripts or DO bounds must stay symbolic or the dependence
  // tests lose the form (an exponential atom defeats the range test).
  for (Statement* s = nest->next(); s != nest->follow(); s = s->next()) {
    auto flag_subscript_uses = [&](const Expression& e) {
      walk(e, [&](const Expression& n) {
        if (n.kind() != ExprKind::ArrayRef) return;
        for (const auto& sub : static_cast<const ArrayRef&>(n).subscripts())
          for (auto& [k, unused] : sites)
            if (sub->references(k)) invalid.insert(k);
      });
    };
    if (s->kind() == StmtKind::Do) {
      auto* d = static_cast<DoStmt*>(s);
      for (auto& [k, unused] : sites) {
        if (d->init().references(k) || d->limit().references(k) ||
            d->step().references(k))
          invalid.insert(k);
      }
    }
    for (const Expression* e : s->expressions()) flag_subscript_uses(*e);
  }

  int rewritten = 0;
  for (auto& [k, k_sites] : sites) {
    if (invalid.count(k)) continue;
    const Expression& factor = *factors.at(k);

    Symbol* counter =
        unit.symtab().fresh(k->name() + "_cnt", Type::integer());
    bool live = is_live_after(nest, k);

    // kc = 0 before the nest.
    {
      std::vector<StmtPtr> frag;
      frag.push_back(std::make_unique<AssignStmt>(ib::var(counter),
                                                  ib::ic(0)));
      stmts.splice_before(nest, std::move(frag));
    }
    // Uses of K inside the nest (outside the sites) -> K * c**kc.
    ExprPtr closed = ib::mul(ib::var(k),
                             ib::pow(factor.clone(), ib::var(counter)));
    for (Statement* s = nest->next(); s != nest->follow(); s = s->next()) {
      bool is_site = false;
      if (s->kind() == StmtKind::Assign) {
        for (AssignStmt* site : k_sites)
          if (site == s) is_site = true;
      }
      if (is_site) continue;
      for (ExprPtr* slot : s->expr_slots()) replace_var(*slot, k, *closed);
    }
    // Sites become counter increments.
    for (AssignStmt* site : k_sites) {
      site->lhs_slot() = ib::var(counter);
      site->rhs_slot() = ib::add(ib::var(counter), ib::ic(1));
    }
    // Last value after the nest.
    if (live) {
      std::vector<StmtPtr> frag;
      frag.push_back(
          std::make_unique<AssignStmt>(ib::var(k), closed->clone()));
      stmts.splice_after(nest->follow(), std::move(frag));
    }
    diags.note("induction", context,
               k->name() + ": multiplicative, rewritten via counter " +
                   counter->name());
    ++rewritten;
  }
  return rewritten;
}

}  // namespace

InductionResult substitute_inductions(ProgramUnit& unit, const Options& opts,
                                      Diagnostics& diags) {
  AnalysisManager am;
  return substitute_inductions(unit, opts, diags, am);
}

InductionResult substitute_inductions(ProgramUnit& unit, const Options& opts,
                                      Diagnostics& diags,
                                      AnalysisManager& am) {
  InductionResult result;
  if (!opts.induction_subst) return result;
  // Outermost loops only; the solver handles the whole nest.
  for (DoStmt* loop : unit.stmts().loops()) {
    if (loop->outer() != nullptr) continue;
    std::string context = unit.name() + "/" + loop->loop_name();
    if (opts.multiplicative_induction) {
      int mult = rewrite_multiplicative(unit, loop, diags, context, am);
      if (mult > 0) am.invalidate_all();  // counters spliced into the nest
      result.substituted += mult;
    }
    NestSolver solver(unit.stmts(), loop, diags, context, am);
    bool any =
        solver.collect(opts.cascaded_induction, opts.triangular_induction);
    result.rejected += solver.rejected_count_;
    if (!any) continue;
    result.substituted += solver.run();
    am.invalidate_all();  // closed-form substitution rewrote the nest
  }
  return result;
}

}  // namespace polaris
