#include "passes/privatization.h"

#include <algorithm>
#include <map>

#include "analysis/gsa.h"
#include "analysis/structure.h"
#include "dep/access.h"
#include "dep/regions.h"
#include "ir/build.h"
#include "support/statistic.h"
#include "symbolic/simplify.h"

namespace polaris {

namespace {

POLARIS_STATISTIC("privatization", scalars_privatized,
                  "scalars proven private to a loop iteration");
POLARIS_STATISTIC("privatization", arrays_privatized,
                  "arrays proven private to a loop iteration");
POLARIS_STATISTIC("privatization", privatization_blocked,
                  "variables that failed the privatization proof");

/// True if `s` lies under an IF within `loop`'s body.
bool under_if(DoStmt* loop, Statement* s) {
  int depth = 0;
  for (Statement* cur = loop->next(); cur != s; cur = cur->next()) {
    p_assert(cur != nullptr);
    if (cur->kind() == StmtKind::If) ++depth;
    else if (cur->kind() == StmtKind::EndIf) --depth;
  }
  return depth > 0;
}

/// The BDNA Figure 5 idiom: the read is A(IND(l)) with l the index of its
/// containing loop `do l = 1, P`; an earlier inner "compress" loop fills
/// IND(1..P) with values of a variable whose range is known:
///     P = 0
///     do k = lo, hi
///       [if (cond) then]  P = P + 1 ; IND(P) = k  [end if]
///     end do
/// The read's *value* interval is then [lo, hi].
std::optional<Interval> gather_read_range(DoStmt* outer, Statement* read_stmt,
                                          const ArrayRef& read_ref,
                                          const FactContext& ctx) {
  if (read_ref.rank() != 1) return std::nullopt;
  const Expression* sub = read_ref.subscripts()[0].get();

  // Scalar-mediated form (the paper's Figure 5 literally): M = IND(L)
  // earlier in the same loop, then A(M).  Resolve M to IND(L).
  if (sub->kind() == ExprKind::VarRef) {
    Symbol* m = static_cast<const VarRef&>(*sub).symbol();
    DoStmt* rl = read_stmt->outer();
    if (rl == nullptr) return std::nullopt;
    const Expression* resolved = nullptr;
    for (Statement* q = rl->next(); q != read_stmt; q = q->next()) {
      if (q->kind() == StmtKind::Assign) {
        auto* a = static_cast<AssignStmt*>(q);
        if (a->lhs().kind() == ExprKind::VarRef && a->target() == m)
          resolved = &a->rhs();
      }
    }
    if (resolved == nullptr || resolved->kind() != ExprKind::ArrayRef)
      return std::nullopt;
    sub = resolved;
  }
  if (sub->kind() != ExprKind::ArrayRef) return std::nullopt;
  const auto& ind_ref = static_cast<const ArrayRef&>(*sub);
  Symbol* ind = ind_ref.symbol();
  if (ind_ref.rank() != 1 ||
      ind_ref.subscripts()[0]->kind() != ExprKind::VarRef)
    return std::nullopt;
  Symbol* l = static_cast<const VarRef&>(*ind_ref.subscripts()[0]).symbol();

  // l must be the index of the read's loop, with bounds [1, P].
  DoStmt* read_loop = read_stmt->outer();
  if (read_loop == nullptr || read_loop->index() != l) return std::nullopt;
  std::int64_t one = 0;
  if (!try_fold_int(read_loop->init(), &one) || one != 1) return std::nullopt;
  if (read_loop->limit().kind() != ExprKind::VarRef) return std::nullopt;
  Symbol* p = static_cast<const VarRef&>(read_loop->limit()).symbol();

  // Find the compress loop: an earlier loop inside `outer` containing
  // P = P + 1 immediately followed by IND(P) = <value>.
  for (Statement* s = outer->next(); s != read_loop; s = s->next()) {
    p_assert(s != nullptr);
    if (s->kind() != StmtKind::Do) continue;
    auto* k_loop = static_cast<DoStmt*>(s);
    for (Statement* t = k_loop->next(); t != k_loop->follow();
         t = t->next()) {
      if (t->kind() != StmtKind::Assign) continue;
      auto* inc = static_cast<AssignStmt*>(t);
      // P = P + 1
      ExprPtr pat = ib::add(ib::var(p), ib::ic(1));
      if (!(inc->lhs().kind() == ExprKind::VarRef && inc->target() == p &&
            inc->rhs().equals(*pat)))
        continue;
      Statement* nxt = t->next();
      if (nxt == nullptr || nxt->kind() != StmtKind::Assign) continue;
      auto* store = static_cast<AssignStmt*>(nxt);
      if (store->lhs().kind() != ExprKind::ArrayRef) continue;
      const auto& sref = static_cast<const ArrayRef&>(store->lhs());
      if (sref.symbol() != ind || sref.rank() != 1) continue;
      if (!(sref.subscripts()[0]->kind() == ExprKind::VarRef &&
            static_cast<const VarRef&>(*sref.subscripts()[0]).symbol() == p))
        continue;
      // P must start at 0 before the compress loop.
      bool p_zeroed = false;
      for (Statement* q = outer->next(); q != k_loop; q = q->next()) {
        if (q->kind() == StmtKind::Assign) {
          auto* a = static_cast<AssignStmt*>(q);
          if (a->lhs().kind() == ExprKind::VarRef && a->target() == p) {
            std::int64_t z = -1;
            p_zeroed = try_fold_int(a->rhs(), &z) && z == 0;
          }
        }
      }
      if (!p_zeroed) return std::nullopt;
      // The stored value's interval over the compress loop's sweep.
      Polynomial v = Polynomial::from_expr(store->rhs());
      AtomId kx = AtomTable::current().intern_symbol(k_loop->index());
      std::int64_t step = 0;
      if (!try_fold_int(k_loop->step(), &step) || step == 0)
        return std::nullopt;
      Polynomial klo = Polynomial::from_expr(
          step > 0 ? k_loop->init() : k_loop->limit());
      Polynomial khi = Polynomial::from_expr(
          step > 0 ? k_loop->limit() : k_loop->init());
      Extremes ex = eliminate_range(v, kx, klo, khi, ctx);
      if (!ex.min || !ex.max) return std::nullopt;
      // IND must not be rewritten between the compress loop and the read.
      for (Statement* q = k_loop->follow(); q != read_stmt; q = q->next()) {
        if (q->kind() == StmtKind::Assign &&
            static_cast<AssignStmt*>(q)->lhs().kind() == ExprKind::ArrayRef &&
            static_cast<AssignStmt*>(q)->target() == ind)
          return std::nullopt;
      }
      return Interval{*ex.min, *ex.max};
    }
  }
  return std::nullopt;
}

/// Monotonic-counter facts (the GSA monotonic-variable identification of
/// Section 3.4): a scalar initialized to a constant before an inner loop
/// and only ever incremented by 1 inside it (conditionally or not) is
/// bounded by [init, init + trip_count].  Adds those facts to `ctx` so
/// read intervals like IND(1:P) can be compared against definition
/// regions.
void add_counter_facts(FactContext& ctx, DoStmt* loop) {
  // Collect per-scalar: constant inits at body level, +1 increments, and
  // any disqualifying defs.
  struct CounterInfo {
    std::optional<std::int64_t> init;
    DoStmt* inc_loop = nullptr;
    int incs = 0;
    bool bad = false;
  };
  SymbolMap<CounterInfo> info;
  for (Statement* s = loop->next(); s != loop->follow(); s = s->next()) {
    if (s->kind() == StmtKind::Do) {
      info[static_cast<DoStmt*>(s)->index()].bad = true;
      continue;
    }
    if (s->kind() != StmtKind::Assign) continue;
    auto* a = static_cast<AssignStmt*>(s);
    if (a->lhs().kind() != ExprKind::VarRef) continue;
    Symbol* v = a->target();
    CounterInfo& ci = info[v];
    std::int64_t c = 0;
    ExprPtr inc_pat = ib::add(ib::var(v), ib::ic(1));
    if (a->rhs().equals(*inc_pat)) {
      DoStmt* encl = s->outer();
      if (encl == loop || encl == nullptr) {
        ci.bad = true;  // increments directly at body level: unbounded use
      } else if (ci.inc_loop != nullptr && ci.inc_loop != encl) {
        ci.bad = true;
      } else {
        ci.inc_loop = encl;
        ++ci.incs;
      }
    } else if (try_fold_int(a->rhs(), &c) && s->outer() == loop) {
      if (ci.init.has_value()) ci.bad = true;  // reinitialized
      ci.init = c;
    } else {
      ci.bad = true;
    }
  }
  for (const auto& [v, ci] : info) {
    if (ci.bad || !ci.init || ci.inc_loop == nullptr || ci.incs != 1)
      continue;
    std::int64_t step = 0;
    if (!try_fold_int(ci.inc_loop->step(), &step) || step != 1) continue;
    Polynomial trips = Polynomial::from_expr(ci.inc_loop->limit()) -
                       Polynomial::from_expr(ci.inc_loop->init()) +
                       Polynomial::constant(1);
    Polynomial p = Polynomial::symbol(v);
    Polynomial c0 = Polynomial::constant(Rational(*ci.init));
    ctx.add_ge0(p - c0);           // v >= init
    ctx.add_ge0(c0 + trips - p);   // v <= init + trips
  }
}

}  // namespace

PrivatizationResult analyze_privatization(ProgramUnit& unit, DoStmt* loop,
                                          const Options& opts,
                                          Diagnostics& diags) {
  AnalysisManager am;
  return analyze_privatization(unit, loop, opts, diags, am);
}

PrivatizationResult analyze_privatization(ProgramUnit& unit, DoStmt* loop,
                                          const Options& opts,
                                          Diagnostics& diags,
                                          AnalysisManager& am) {
  PrivatizationResult result;
  const std::string context = unit.name() + "/" + loop->loop_name();
  Statement* body_first = loop->next();
  Statement* body_last = loop->follow()->prev();
  const bool empty_body = (body_first == loop->follow());

  // --- scalars ---------------------------------------------------------------
  SymbolSet exposed, must;
  if (!empty_body) {
    exposed = am.upward_exposed_scalars(body_first, body_last);
    must = am.must_defined_scalars(body_first, body_last);
  }
  for (Symbol* s : scalars_assigned(loop)) {
    bool is_inner_index = false;
    for (DoStmt* d : unit.stmts().loops_in(loop))
      if (d->index() == s) is_inner_index = true;

    if (!opts.scalar_privatization && !is_inner_index) {
      result.blocked.push_back(s);
      continue;
    }
    if (exposed.count(s)) {
      diags.note("privatization", context,
                 s->name() + ": upward-exposed use, not privatizable");
      ++privatization_blocked;
      result.blocked.push_back(s);
      continue;
    }
    bool live_out = is_live_after(loop, s);
    if (live_out && !must.count(s)) {
      diags.note("privatization", context,
                 s->name() + ": live-out but conditionally assigned");
      ++privatization_blocked;
      result.blocked.push_back(s);
      continue;
    }
    ++scalars_privatized;
    result.private_scalars.push_back(s);
    if (live_out) result.lastvalue_scalars.push_back(s);
  }

  // --- arrays ----------------------------------------------------------------
  auto accesses = collect_array_accesses(loop);
  GsaQuery& gsa = am.gsa(unit);
  for (auto& [array, refs] : accesses) {
    bool written = std::any_of(refs.begin(), refs.end(),
                               [](const ArrayAccess& a) { return a.is_write; });
    if (!written) continue;
    if (!opts.array_privatization) {
      result.blocked.push_back(array);
      continue;
    }
    if (is_live_after(loop, array)) {
      diags.note("privatization", context,
                 array->name() + ": live after loop, no array copy-out");
      result.blocked.push_back(array);
      continue;
    }

    // Walk accesses in statement order; writes outside IFs contribute
    // definition intervals, every read must be covered by a prior one.
    Statement* at = empty_body ? loop : body_first;
    FactContext ctx =
        am.fact_context(at, [&] { return loop_fact_context(at); });
    int inner_rank = 100;
    for (DoStmt* d : unit.stmts().loops_in(loop))
      add_loop_facts(ctx, d, inner_rank++);
    add_counter_facts(ctx, loop);
    std::vector<std::vector<Interval>> defs;  // per-dim lists
    int rank = array->rank() > 0 ? array->rank() : refs.front().ref->rank();
    defs.resize(static_cast<size_t>(rank));
    bool ok = true;
    std::string why;

    // Accesses are collected per statement in body order; reads before
    // writes within one statement (rhs evaluates first).
    std::vector<const ArrayAccess*> ordered;
    for (Statement* s = loop->next(); s != loop->follow(); s = s->next()) {
      for (const ArrayAccess& a : refs)
        if (a.stmt == s && !a.is_write) ordered.push_back(&a);
      for (const ArrayAccess& a : refs)
        if (a.stmt == s && a.is_write) ordered.push_back(&a);
    }

    for (const ArrayAccess* a : ordered) {
      if (!ok) break;
      if (a->is_write) {
        if (under_if(loop, a->stmt)) continue;  // conditional: no coverage
        bool usable = true;
        std::vector<Interval> iv;
        for (int d = 0; d < rank; ++d) {
          auto interval = access_interval(*a->ref, d, a->stmt, loop, ctx);
          if (!interval) {
            usable = false;
            break;
          }
          iv.push_back(std::move(*interval));
        }
        if (usable)
          for (int d = 0; d < rank; ++d)
            defs[static_cast<size_t>(d)].push_back(iv[static_cast<size_t>(d)]);
        continue;
      }
      // Read: every dimension must be inside some recorded def interval.
      for (int d = 0; d < rank && ok; ++d) {
        auto check = [&](const Interval& interval) {
          for (const Interval& def : defs[static_cast<size_t>(d)]) {
            if (interval_contains(def, interval, ctx)) return true;
            // Symbolic containment may need reaching-definition knowledge
            // (paper Figure 4: MP >= M*P).
            if (opts.gsa_queries) {
              ExprPtr rlo = interval.lo.to_expr();
              ExprPtr rhi = interval.hi.to_expr();
              ExprPtr dlo = def.lo.to_expr();
              ExprPtr dhi = def.hi.to_expr();
              if (gsa.prove_ge_at(*rlo, *dlo, loop, ctx) &&
                  gsa.prove_le_at(*rhi, *dhi, loop, ctx))
                return true;
            }
          }
          return false;
        };
        auto interval = access_interval(*a->ref, d, a->stmt, loop, ctx);
        bool covered = interval.has_value() && check(*interval);
        if (!covered && rank == 1 && opts.gsa_queries) {
          // The gather idiom (paper Figure 5): the subscript's *values*
          // come from a monotonic compress loop with a known range.
          auto gathered = gather_read_range(loop, a->stmt, *a->ref, ctx);
          covered = gathered.has_value() && check(*gathered);
        }
        if (!covered) {
          ok = false;
          why = "read " + a->ref->to_string() + " not covered by a prior def";
        }
      }
    }

    if (ok) {
      diags.note("privatization", context, array->name() + ": privatized");
      ++arrays_privatized;
      result.private_arrays.push_back(array);
    } else {
      diags.note("privatization", context, array->name() + ": " + why);
      ++privatization_blocked;
      result.blocked.push_back(array);
    }
  }
  return result;
}

}  // namespace polaris
