#include "passes/normalize.h"

#include "analysis/structure.h"
#include "ir/build.h"
#include "symbolic/simplify.h"

namespace polaris {

int normalize_loops(ProgramUnit& unit, const Options& opts,
                    Diagnostics& diags) {
  AnalysisManager am;
  return normalize_loops(unit, opts, diags, am);
}

int normalize_loops(ProgramUnit& unit, const Options& opts,
                    Diagnostics& diags, AnalysisManager& am) {
  if (!opts.loop_normalization) return 0;
  int rewritten = 0;
  for (DoStmt* loop : unit.stmts().loops()) {
    std::int64_t step = 0;
    if (!try_fold_int(loop->step(), &step)) continue;  // symbolic step
    if (step == 1 || step == 0) continue;

    Symbol* index = loop->index();
    Statement* body_first = loop->next();
    Statement* body_last = loop->follow()->prev();
    const bool empty = (body_first == loop->follow());

    // The body must not assign the index, and the bounds' operands must
    // not be modified inside (textual substitution re-evaluates them).
    if (!empty) {
      const SymbolSet& modified =
          am.may_defined_symbols(body_first, body_last);
      if (modified.count(index)) continue;
      SymbolSet bound_syms;
      for (const Expression* e : {&loop->init(), &loop->limit()}) {
        walk(*e, [&](const Expression& n) {
          if (n.kind() == ExprKind::VarRef)
            bound_syms.insert(static_cast<const VarRef&>(n).symbol());
          else if (n.kind() == ExprKind::ArrayRef)
            bound_syms.insert(static_cast<const ArrayRef&>(n).symbol());
        });
      }
      bool clobbered = false;
      for (Symbol* s : bound_syms)
        if (modified.count(s)) clobbered = true;
      if (clobbered) continue;
    }

    ExprPtr lo = loop->init().clone();
    ExprPtr hi = loop->limit().clone();
    const std::string context = unit.name() + "/" + loop->loop_name();

    Symbol* nrm = unit.symtab().fresh(index->name() + "_nrm",
                                      Type::integer());
    // Replacement for the old index: lo + step*nrm.
    ExprPtr value = simplify(*ib::add(
        lo->clone(), ib::mul(ib::ic(step), ib::var(nrm))));

    if (!empty) {
      for (Statement* s = body_first; s != loop->follow(); s = s->next())
        for (ExprPtr* slot : s->expr_slots())
          replace_var(*slot, index, *value);
    }

    // Fortran leaves the index at its first out-of-range value; preserve
    // that when the index is live after the loop.
    if (is_live_after(loop, index)) {
      // trips = max((hi - lo + step)/step, 0); final = lo + step*trips.
      ExprPtr trips = ib::div(
          ib::add(ib::sub(hi->clone(), lo->clone()), ib::ic(step)),
          ib::ic(step));
      std::vector<ExprPtr> args;
      args.push_back(std::move(trips));
      args.push_back(ib::ic(0));
      ExprPtr final_value = simplify(*ib::add(
          lo->clone(),
          ib::mul(ib::ic(step),
                  ib::call("max", std::move(args), Type::integer()))));
      std::vector<StmtPtr> frag;
      frag.push_back(std::make_unique<AssignStmt>(ib::var(index),
                                                  std::move(final_value)));
      unit.stmts().splice_after(loop->follow(), std::move(frag));
    }

    // Rewrite the header: do nrm = 0, (hi - lo)/step.
    loop->set_index(nrm);
    loop->init_slot() = ib::ic(0);
    loop->limit_slot() = simplify(
        *ib::div(ib::sub(std::move(hi), std::move(lo)), ib::ic(step)));
    loop->step_slot() = ib::ic(1);
    unit.stmts().revalidate();

    diags.note("normalize", context,
               index->name() + ": step " + std::to_string(step) +
                   " loop normalized (index " + nrm->name() + ")");
    ++rewritten;
    am.invalidate_all();  // the rewrite stales any cached region facts
  }
  return rewritten;
}

}  // namespace polaris
