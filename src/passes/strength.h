// Strength reduction of substituted induction expressions.
//
// Induction substitution can cause "unusually large code expansion"
// (paper, Figure 1 discussion): closed forms like
// (i*(n**2+n) + j**2 - j)/2 + k + 1 are re-evaluated per element.  The
// paper's remedy — "a scheme which assigns initial closed-form values to
// private copies of induction variables at each parallel loop header,
// leaving uses in the remainder of the loop body in their original form"
// — is implemented here: inside a loop marked parallel, every innermost
// loop whose subscripts are affine in its index with an expensive base
// gets a private running counter:
//
//     do k = 0, j-1                      t = <f at k=init>
//       a(<f(k)>) = ...        =>        do k = 0, j-1
//     end do                               a(t) = ...
//                                          t = t + <stride>
//                                        end do
//
// The counter is private to the enclosing parallel loop (added to its
// ParallelInfo), and the inner loop's own parallel mark is dropped (the
// execution engine always chooses the outermost parallel loop anyway).
#pragma once

#include "analysis/analysis_manager.h"
#include "ir/program.h"
#include "support/diagnostics.h"
#include "support/options.h"

namespace polaris {

/// Runs after DOALL marking; returns the number of subscripts reduced.
/// Invariance checks go through `am`'s cached may-defined sets; the pass
/// invalidates it after each rewritten inner loop.
int strength_reduce(ProgramUnit& unit, const Options& opts,
                    Diagnostics& diags, AnalysisManager& am);

/// Convenience overload with a private AnalysisManager.
int strength_reduce(ProgramUnit& unit, const Options& opts,
                    Diagnostics& diags);

}  // namespace polaris
