#include "passes/constprop.h"

#include "symbolic/simplify.h"

namespace polaris {

int propagate_constants(ProgramUnit& unit) {
  int changed = 0;
  for (Statement* s : unit.stmts()) {
    for (ExprPtr* slot : s->expr_slots()) {
      std::string before = (*slot)->to_string();
      simplify_in_place(*slot);
      if ((*slot)->to_string() != before) ++changed;
    }
  }
  unit.stmts().revalidate();
  return changed;
}

}  // namespace polaris
