// Reduction recognition (paper Section 3.2).
//
// Recognizes statements of the idiom
//     A(a1,...,an) = A(a1,...,an) op beta      (n may be 0: scalar)
// with op in {+, -, *, min, max}, where beta and the subscripts do not
// reference A and A is not referenced elsewhere in the loop outside other
// reduction statements on A.  Single-address reductions accumulate into a
// fixed location; histogram reductions sum into varying elements.
// Statements are flagged (AssignStmt::reduction_flag), mirroring Polaris's
// directive-based flow where the dependence pass later clears flags it can
// disprove.
#pragma once

#include <vector>

#include "analysis/analysis_manager.h"
#include "ir/program.h"
#include "support/diagnostics.h"
#include "support/options.h"

namespace polaris {

struct RecognizedReduction {
  Symbol* var = nullptr;
  ReductionKind op = ReductionKind::None;
  bool histogram = false;
  std::vector<AssignStmt*> stmts;
};

/// Finds and flags the reductions of `loop`.  Only statements directly in
/// the loop body (any nesting depth) participate; candidates invalidated
/// by other references to A are not returned and their flags are cleared.
/// Invariance checks share `am`'s cached loop facts.
std::vector<RecognizedReduction> recognize_reductions(DoStmt* loop,
                                                      const Options& opts,
                                                      Diagnostics& diags,
                                                      AnalysisManager& am);

/// Convenience overload with a private AnalysisManager.
std::vector<RecognizedReduction> recognize_reductions(DoStmt* loop,
                                                      const Options& opts,
                                                      Diagnostics& diags);

}  // namespace polaris
