// Forward substitution of scalar definitions.
//
// Real Fortran writes subscripts through scalar temporaries:
//     i1 = j*le + k + 1
//     x(i1) = x(i1) + t
// Dependence analysis sees the opaque scalar i1 unless the definition is
// propagated into the uses.  This pass walks each straight-line region,
// tracking available unconditional scalar definitions, and substitutes
// them into later statements of the same region until the variable or any
// operand is redefined.  Definitions whose right-hand sides read arrays
// are propagated too (enabling the BDNA A(IND(L)) gather form) with kills
// on any write to that array.  The definitions themselves stay in place —
// dead ones are privatizable scalars and harmless.
#pragma once

#include "ir/program.h"
#include "support/diagnostics.h"
#include "support/options.h"

namespace polaris {

/// Runs forward substitution over every region of the unit; returns the
/// number of uses rewritten.
int forward_substitute(ProgramUnit& unit, const Options& opts,
                       Diagnostics& diags);

}  // namespace polaris
