// Induction variable substitution (paper Section 3.2).
//
// Recognizes scalar recurrences K = K + inc where inc is an enclosing loop
// index expression, a loop-invariant expression, or an expression over
// *other* induction candidates (cascaded inductions, Figure 1), inside
// arbitrary (including triangular) loop nests.  Closed forms are computed
// by summing the per-iteration increment over the iteration space with
// exact Faulhaber summation, then every use is replaced by the closed form
// at that point; the recurrence statements are deleted and a last-value
// assignment is emitted when the variable is live after the nest.
//
// Requirements for a candidate (checked; failures are diagnosed, not
// fatal): integer scalar; every definition in the nest has the recurrence
// form and is unconditional (not under an IF); loops containing increments
// have constant step 1; increments reference no variable that the nest may
// modify (other than candidates); no cyclic cascades.
#pragma once

#include "analysis/analysis_manager.h"
#include "ir/program.h"
#include "support/diagnostics.h"
#include "support/options.h"

namespace polaris {

struct InductionResult {
  int substituted = 0;  ///< candidates successfully substituted
  int rejected = 0;     ///< candidates found but rejected
};

/// Runs induction substitution on every outermost loop nest of `unit`.
/// Structural queries go through `am`; the pass invalidates it after each
/// substituted nest.
InductionResult substitute_inductions(ProgramUnit& unit, const Options& opts,
                                      Diagnostics& diags,
                                      AnalysisManager& am);

/// Convenience overload with a private AnalysisManager.
InductionResult substitute_inductions(ProgramUnit& unit, const Options& opts,
                                      Diagnostics& diags);

}  // namespace polaris
