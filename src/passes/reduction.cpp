#include "passes/reduction.h"

#include <map>

#include "analysis/structure.h"
#include "ir/build.h"
#include "support/statistic.h"

namespace polaris {

namespace {

POLARIS_STATISTIC("reduction", reductions_recognized,
                  "reduction statements recognized (paper Section 3.2)");
POLARIS_STATISTIC("reduction", histogram_reductions,
                  "recognized reductions with subscripted accumulators");

/// Matches one reduction statement; fills op and returns true.  beta is
/// the non-accumulator operand.
bool match_reduction(AssignStmt* a, ReductionKind* op) {
  Symbol* target = a->target();
  const Expression& lhs = a->lhs();
  const Expression& rhs = a->rhs();

  auto same_location = [&](const Expression& e) {
    return e.equals(lhs);
  };

  if (rhs.kind() == ExprKind::BinOp) {
    const auto& b = static_cast<const BinOp&>(rhs);
    if (b.op() == BinOpKind::Add) {
      if (same_location(b.left()) && !b.right().references(target)) {
        *op = ReductionKind::Sum;
        return true;
      }
      if (same_location(b.right()) && !b.left().references(target)) {
        *op = ReductionKind::Sum;
        return true;
      }
    } else if (b.op() == BinOpKind::Sub) {
      if (same_location(b.left()) && !b.right().references(target)) {
        *op = ReductionKind::Sum;  // A = A - beta accumulates -beta
        return true;
      }
    } else if (b.op() == BinOpKind::Mul) {
      if ((same_location(b.left()) && !b.right().references(target)) ||
          (same_location(b.right()) && !b.left().references(target))) {
        *op = ReductionKind::Product;
        return true;
      }
    }
  } else if (rhs.kind() == ExprKind::FuncCall) {
    const auto& f = static_cast<const FuncCall&>(rhs);
    if ((f.name() == "min" || f.name() == "max") && f.args().size() == 2) {
      const Expression& x = *f.args()[0];
      const Expression& y = *f.args()[1];
      if ((same_location(x) && !y.references(target)) ||
          (same_location(y) && !x.references(target))) {
        *op = f.name() == "min" ? ReductionKind::Min : ReductionKind::Max;
        return true;
      }
    }
  }
  return false;
}

/// The subscripts of the accumulator must not reference the accumulator
/// itself (the paper's alpha_i conditions).
bool subscripts_clean(const AssignStmt* a) {
  if (a->lhs().kind() != ExprKind::ArrayRef) return true;
  Symbol* target =
      static_cast<const ArrayRef&>(a->lhs()).symbol();
  for (const auto& sub :
       static_cast<const ArrayRef&>(a->lhs()).subscripts())
    if (sub->references(target)) return false;
  return true;
}

}  // namespace

std::vector<RecognizedReduction> recognize_reductions(DoStmt* loop,
                                                      const Options& opts,
                                                      Diagnostics& diags) {
  AnalysisManager am;
  return recognize_reductions(loop, opts, diags, am);
}

std::vector<RecognizedReduction> recognize_reductions(DoStmt* loop,
                                                      const Options& opts,
                                                      Diagnostics& diags,
                                                      AnalysisManager& am) {
  std::vector<RecognizedReduction> out;
  if (!opts.reductions) return out;

  // Phase 1: flag candidates by pattern (the Wildcard-based recognition).
  SymbolMap<RecognizedReduction> candidates;
  SymbolMap<bool> invalid;
  for (Statement* s = loop->next(); s != loop->follow(); s = s->next()) {
    if (s->kind() != StmtKind::Assign) continue;
    auto* a = static_cast<AssignStmt*>(s);
    ReductionKind op = ReductionKind::None;
    if (!match_reduction(a, &op) || !subscripts_clean(a)) continue;
    Symbol* target = a->target();
    RecognizedReduction& r = candidates[target];
    if (r.var == nullptr) {
      r.var = target;
      r.op = op;
    } else if (r.op != op) {
      invalid[target] = true;  // mixed operators cannot be combined
    }
    if (a->lhs().kind() == ExprKind::ArrayRef) {
      // Histogram when the subscripts vary within the loop (reference a
      // loop index or any variable the loop modifies).
      const auto& lref = static_cast<const ArrayRef&>(a->lhs());
      for (const auto& sub : lref.subscripts())
        if (!am.is_loop_invariant(*sub, loop)) r.histogram = true;
    }
    r.stmts.push_back(a);
    a->reduction_flag = op;
  }

  // Phase 2: validate — A must not be referenced outside its reduction
  // statements within the loop (the paper's side condition).
  for (Statement* s = loop->next(); s != loop->follow(); s = s->next()) {
    for (ExprPtr* slot : s->expr_slots()) {
      // Skip the reduction statement's own lhs/rhs occurrences.
      auto it_stmt = [&]() -> RecognizedReduction* {
        if (s->kind() != StmtKind::Assign) return nullptr;
        auto* a = static_cast<AssignStmt*>(s);
        auto found = candidates.find(a->target());
        if (found == candidates.end()) return nullptr;
        for (AssignStmt* rs : found->second.stmts)
          if (rs == a) return &found->second;
        return nullptr;
      }();
      for (auto& [sym, r] : candidates) {
        if (it_stmt != nullptr && it_stmt->var == sym) continue;
        if ((*slot)->references(sym)) invalid[sym] = true;
      }
    }
  }

  for (auto& [sym, r] : candidates) {
    if (invalid.count(sym)) {
      for (AssignStmt* a : r.stmts) a->reduction_flag = ReductionKind::None;
      diags.note("reduction", loop->loop_name(),
                 sym->name() + ": candidate invalidated by other uses");
      continue;
    }
    if (r.histogram && !opts.histogram_reductions) {
      for (AssignStmt* a : r.stmts) a->reduction_flag = ReductionKind::None;
      diags.note("reduction", loop->loop_name(),
                 sym->name() + ": histogram reductions disabled");
      continue;
    }
    diags.note("reduction", loop->loop_name(),
               sym->name() + (r.histogram ? ": histogram reduction"
                                          : ": single-address reduction"));
    ++reductions_recognized;
    if (r.histogram) ++histogram_reductions;
    out.push_back(r);
  }
  return out;
}

}  // namespace polaris
