// Constant propagation and expression cleanup.
//
// Folds PARAMETER constants and simplifies every expression in the unit
// (the paper's loop-normalization companion: several analyses assume
// folded bounds, e.g. Banerjee's constant-bounds requirement).  Scalar
// constants assigned once before their only uses are propagated through
// the GSA query engine during analysis instead, so this pass stays purely
// local and always safe.
#pragma once

#include "ir/program.h"

namespace polaris {

/// Simplifies all expressions; returns the number of changed slots.
int propagate_constants(ProgramUnit& unit);

}  // namespace polaris
