// Scalar and array privatization (paper Section 3.4).
//
// A variable is privatizable in a loop when every use in an iteration is
// dominated by a definition in the same iteration — it is a per-iteration
// temporary.  Scalars use upward-exposed-use analysis.  Arrays compare
// per-iteration *regions*: unconditional writes contribute definition
// intervals (bounds swept over inner loops), and every read's interval
// must be contained in a definition interval that precedes it.  Symbolic
// containment queries go through the comparison engine, falling back to
// GSA backward substitution (the paper's Figure 4: MP >= M*P), and a
// monotonic-counter idiom recognizer handles the BDNA Figure 5 pattern
// (compress loop writing IND(P), P a monotonic counter, then gather via
// A(IND(L))).
#pragma once

#include <vector>

#include "analysis/analysis_manager.h"
#include "ir/program.h"
#include "support/diagnostics.h"
#include "support/options.h"

namespace polaris {

struct PrivatizationResult {
  std::vector<Symbol*> private_scalars;
  std::vector<Symbol*> lastvalue_scalars;  ///< subset needing copy-out
  std::vector<Symbol*> private_arrays;
  std::vector<Symbol*> blocked;  ///< assigned scalars/arrays left shared
};

/// Analyzes `loop` within `unit`.  Does not transform the program; the
/// DOALL pass records the result in the loop's ParallelInfo (private
/// storage is instantiated by the execution engine).  Flow facts and the
/// GSA engine come from `am`, so repeated queries across loops and passes
/// hit the cache.
PrivatizationResult analyze_privatization(ProgramUnit& unit, DoStmt* loop,
                                          const Options& opts,
                                          Diagnostics& diags,
                                          AnalysisManager& am);

/// Convenience overload with a private AnalysisManager.
PrivatizationResult analyze_privatization(ProgramUnit& unit, DoStmt* loop,
                                          const Options& opts,
                                          Diagnostics& diags);

}  // namespace polaris
