#include "driver/compiler.h"

#include "parser/parser.h"
#include "parser/printer.h"
#include "passes/constprop.h"
#include "passes/forwardsub.h"
#include "passes/normalize.h"
#include "passes/strength.h"
#include "symbolic/simplify.h"

namespace polaris {

std::unique_ptr<Program> Compiler::compile(const std::string& source,
                                           CompileReport* report) {
  std::unique_ptr<Program> program = parse_program(source);
  transform(*program, report);
  return program;
}

void Compiler::transform(Program& program, CompileReport* report) {
  CompileReport local;
  CompileReport& rep = report ? *report : local;

  // 1. Interprocedural analysis via inline expansion (Section 3.1).
  rep.inlining = inline_calls(program, opts_, rep.diagnostics);

  for (const auto& unit : program.units()) {
    // 2. Constant propagation / simplification, then loop normalization
    //    (unit steps for the induction and dependence machinery).
    propagate_constants(*unit);
    normalize_loops(*unit, opts_, rep.diagnostics);
    // 3. Induction variable substitution (Section 3.2).
    InductionResult ind =
        substitute_inductions(*unit, opts_, rep.diagnostics);
    rep.induction.substituted += ind.substituted;
    rep.induction.rejected += ind.rejected;
    // 3b. Forward substitution exposes subscripts written through scalar
    //     temporaries to the dependence tests.
    forward_substitute(*unit, opts_, rep.diagnostics);
    // 4. DOALL recognition: reductions, privatization, dependence tests
    //    (Sections 3.2-3.5).
    DoallSummary ds =
        mark_doall_loops(&program, *unit, opts_, rep.diagnostics);
    // 5. Strength reduction of substituted induction expressions inside
    //    parallel loops (the paper's private-copy scheme).
    strength_reduce(*unit, opts_, rep.diagnostics);
    rep.doall.loops += ds.loops;
    rep.doall.parallel += ds.parallel;
    rep.doall.speculative += ds.speculative;

    for (DoStmt* loop : unit->stmts().loops()) {
      LoopReport lr;
      lr.unit = unit->name();
      lr.loop = loop->loop_name();
      lr.depth = unit->stmts().depth(loop);
      lr.parallel = loop->par.is_parallel;
      lr.speculative = loop->par.speculative;
      lr.serial_reason = loop->par.serial_reason;
      lr.dep_pairs = loop->par.dep_pairs;
      lr.dep_by_gcd = loop->par.dep_by_gcd;
      lr.dep_by_banerjee = loop->par.dep_by_banerjee;
      lr.dep_by_rangetest = loop->par.dep_by_rangetest;
      rep.loops.push_back(std::move(lr));
    }
  }
  rep.annotated_source = to_source(program);
}

ExecutionConfig backend_config(CompilerMode mode, const Program& program,
                               int processors) {
  ExecutionConfig cfg;
  cfg.machine.processors = processors;
  if (mode == CompilerMode::Polaris) return cfg;

  // The PFA back end restructures loops aggressively (interchange,
  // unrolling, fusion).  On long regular loops that lowers overhead and
  // improves locality; on nests whose *inner* loops have short constant
  // trip counts the restructuring backfires (extra bookkeeping dominates).
  bool short_inner = false;
  bool any_nest = false;
  for (const auto& unit : program.units()) {
    for (DoStmt* loop : unit->stmts().loops()) {
      if (loop->outer() == nullptr) continue;  // want inner loops
      any_nest = true;
      std::int64_t init = 0, limit = 0;
      if (try_fold_int(loop->init(), &init) &&
          try_fold_int(loop->limit(), &limit)) {
        if (limit - init + 1 <= 8) short_inner = true;
      }
    }
  }
  cfg.codegen_factor = short_inner ? 1.8 : (any_nest ? 0.92 : 1.0);
  return cfg;
}

}  // namespace polaris
