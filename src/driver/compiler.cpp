#include "driver/compiler.h"

#include "driver/pass_manager.h"
#include "ir/verifier.h"
#include "parser/parser.h"
#include "parser/printer.h"
#include "support/assert.h"
#include "support/context.h"
#include "support/governor.h"
#include "support/statistic.h"
#include "support/trace.h"
#include "symbolic/poly.h"
#include "symbolic/simplify.h"

namespace polaris {

namespace {

/// Arms deterministic fault injection on this compilation's injector for
/// the duration of one transform when Options::fault_inject is set;
/// disarms on every exit path.
class FaultArmGuard {
 public:
  FaultArmGuard(FaultInjector& injector, const std::string& spec)
      : injector_(injector) {
    if (!spec.empty()) {
      injector_.arm(fault::parse_spec(spec));
      armed_ = true;
    }
  }
  ~FaultArmGuard() {
    if (armed_) injector_.disarm();
  }
  FaultArmGuard(const FaultArmGuard&) = delete;
  FaultArmGuard& operator=(const FaultArmGuard&) = delete;

 private:
  FaultInjector& injector_;
  bool armed_ = false;
};

/// Arms the compilation's trace collector when Options::trace_path is set
/// and no outer scope already armed it (Compiler::compile arms before
/// calling transform; transform must not re-arm).  On destruction the
/// owning guard stops the collector and writes the Chrome trace file.
class TraceOwnGuard {
 public:
  TraceOwnGuard(trace::TraceCollector& collector, const std::string& path)
      : collector_(collector) {
    if (!path.empty() && !collector_.collecting()) {
      collector_.start(path);
      owner_ = true;
    }
  }
  ~TraceOwnGuard() {
    if (owner_) collector_.stop();
  }
  TraceOwnGuard(const TraceOwnGuard&) = delete;
  TraceOwnGuard& operator=(const TraceOwnGuard&) = delete;

 private:
  trace::TraceCollector& collector_;
  bool owner_ = false;
};

}  // namespace

std::unique_ptr<Program> Compiler::compile(const std::string& source,
                                           CompileReport* report) {
  CompileContext cc;
  return compile(source, report, cc);
}

std::unique_ptr<Program> Compiler::compile(const std::string& source,
                                           CompileReport* report,
                                           CompileContext& cc) {
  CompileContext::Scope ctx_scope(&cc);
  TraceOwnGuard tracing(cc.trace(), opts_.trace_path);
  trace::TraceSpan compile_span(&cc.trace(), "compile", "driver");
  std::unique_ptr<Program> program = parse_program(source, &cc, opts_.jobs);
  transform(*program, report, cc);
  return program;
}

void Compiler::transform(Program& program, CompileReport* report) {
  CompileContext cc;
  transform(program, report, cc);
}

void Compiler::transform(Program& program, CompileReport* report,
                         CompileContext& cc) {
  CompileReport local;
  CompileReport& rep = report ? *report : local;

  // Bind the context (and so its fault injector) to this thread for the
  // `++statistic` / p_assert bridges, and route pass diagnostics straight
  // into the report's sink.
  CompileContext::Scope ctx_scope(&cc);
  cc.bind_diagnostics(rep.diagnostics);

  // Atom identity keys on Symbol pointers: give every compilation a fresh
  // thread-bound table so a recycled heap address can never alias an atom
  // from a previous compilation (which would skew canonical term order).
  // Unit shards bind their own tables on their worker threads.
  AtomTable atoms;
  atoms.set_canon_cache_enabled(opts_.symbolic_canon_cache);
  AtomTable::Scope atom_scope(&atoms);

  // Arms only when Compiler::compile (or a test) hasn't already; the
  // pipeline span then nests under the compile span when both exist.
  TraceOwnGuard tracing(cc.trace(), opts_.trace_path);
  trace::TraceSpan pipeline_span(&cc.trace(), "pipeline", "driver");
  StatisticSnapshot stats_base = cc.stats().snapshot();

  // The battery (inline expansion, constant propagation, normalization,
  // induction substitution, forward substitution, DOALL recognition,
  // strength reduction — paper Sections 3.1-3.5) runs through the pass
  // manager; Options::pipeline_spec swaps in a custom `-passes=` battery.
  AnalysisManager am(&cc);
  PassContext ctx{program, opts_, rep, cc};
  FaultArmGuard inject(cc.fault(), opts_.fault_inject);
  // Degradation events recorded before this transform (an embedder
  // reusing one context for several compiles) belong to earlier reports.
  const std::size_t degradations_base = cc.governor().event_mark();
  // Fuel/trip meters are never reset either, so the report carries the
  // delta this transform burned, mirroring degradations_base.
  const ResourceGovernor& gov = cc.governor();
  const std::uint64_t fuel_base = gov.fuel_spent();
  const std::uint64_t trips_base[4] = {
      gov.trip_count(GovernorTrigger::PassBudget),
      gov.trip_count(GovernorTrigger::CompileFuel),
      gov.trip_count(GovernorTrigger::PolyTerms),
      gov.trip_count(GovernorTrigger::AtomCeiling)};
  PassPipeline::from_options(opts_).run(program, am, ctx);
  rep.analysis = am.stats();
  rep.degradations.assign(
      cc.governor().events().begin() +
          static_cast<std::ptrdiff_t>(degradations_base),
      cc.governor().events().end());
  // The pipeline disarms the governor on exit, so the installed limit
  // must be recomputed from the options, not read off the meter.
  rep.resource.fuel_limit = limits_from_options(opts_).fuel;
  rep.resource.fuel_spent = gov.fuel_spent() - fuel_base;
  rep.resource.trips_pass_budget =
      gov.trip_count(GovernorTrigger::PassBudget) - trips_base[0];
  rep.resource.trips_compile_fuel =
      gov.trip_count(GovernorTrigger::CompileFuel) - trips_base[1];
  rep.resource.trips_poly_terms =
      gov.trip_count(GovernorTrigger::PolyTerms) - trips_base[2];
  rep.resource.trips_atom_ceiling =
      gov.trip_count(GovernorTrigger::AtomCeiling) - trips_base[3];

  // The structural verifier always runs once after the pipeline (not just
  // under -verify-each): corrupted IR must never escape into the printed
  // output or the execution engine.
  std::vector<VerifierViolation> violations = verify_program(program, &cc);
  if (!violations.empty())
    throw InternalError("ir-verifier", "post-pipeline", 0,
                        format_violations(violations));

  for (const auto& unit : program.units()) {
    for (DoStmt* loop : unit->stmts().loops()) {
      LoopReport lr;
      lr.unit = unit->name();
      lr.loop = loop->loop_name();
      lr.depth = unit->stmts().depth(loop);
      lr.parallel = loop->par.is_parallel;
      lr.speculative = loop->par.speculative;
      lr.serial_reason = loop->par.serial_reason;
      lr.reason_code = loop->par.serial_code;
      // Every serial loop must carry a machine-readable code.  A loop the
      // DOALL pass never visited (custom `-passes=` battery without doall)
      // gets the explicit fallback instead of an empty field.
      if (!lr.parallel && lr.reason_code.empty()) {
        lr.reason_code = "not-analyzed";
        if (lr.serial_reason.empty())
          lr.serial_reason = "loop not analyzed for parallelism";
      }
      lr.dep_pairs = loop->par.dep_pairs;
      lr.dep_by_gcd = loop->par.dep_by_gcd;
      lr.dep_by_banerjee = loop->par.dep_by_banerjee;
      lr.dep_by_rangetest = loop->par.dep_by_rangetest;
      rep.loops.push_back(std::move(lr));
    }
  }
  rep.annotated_source = to_source(program);
  rep.stats = cc.stats().delta_since(stats_base);
}

ExecutionConfig backend_config(CompilerMode mode, const Program& program,
                               int processors) {
  ExecutionConfig cfg;
  cfg.machine.processors = processors;
  if (mode == CompilerMode::Polaris) return cfg;

  // The PFA back end restructures loops aggressively (interchange,
  // unrolling, fusion).  On long regular loops that lowers overhead and
  // improves locality; on nests whose *inner* loops have short constant
  // trip counts the restructuring backfires (extra bookkeeping dominates).
  bool short_inner = false;
  bool any_nest = false;
  for (const auto& unit : program.units()) {
    for (DoStmt* loop : unit->stmts().loops()) {
      if (loop->outer() == nullptr) continue;  // want inner loops
      any_nest = true;
      std::int64_t init = 0, limit = 0;
      if (try_fold_int(loop->init(), &init) &&
          try_fold_int(loop->limit(), &limit)) {
        if (limit - init + 1 <= 8) short_inner = true;
      }
    }
  }
  cfg.codegen_factor = short_inner ? 1.8 : (any_nest ? 0.92 : 1.0);
  return cfg;
}

}  // namespace polaris
