// The `polaris` command-line driver: source-to-source restructuring of
// PF77 files, like the original compiler's front door.
//
//   polaris file.f                 annotated parallel source to stdout
//   polaris -report file.f         per-loop analysis report
//   polaris -diag file.f           full pass diagnostics
//   polaris -baseline file.f       run the 1996-compiler battery instead
//   polaris -omp file.f            emit OpenMP directives instead of csrd$
//   polaris -run [-p N] file.f     execute on the simulated N-processor
//                                  machine (default 8) and print speedup
//   polaris -seq file.f            execute sequentially (reference)
//   polaris -passes=SPEC file.f    run a custom pass pipeline, e.g.
//                                  -passes=constprop,normalize,doall
//   polaris -timing file.f         per-pass wall time, IR deltas, and
//                                  analysis-cache hit rates
//   polaris -jobs=N file.f         restructure program units on N worker
//                                  threads (default 1; also settable via
//                                  the POLARIS_JOBS env var; capped at the
//                                  machine's hardware concurrency).  Every
//                                  report artifact is byte-identical to a
//                                  -jobs=1 run.
//   polaris -rangetest-max-permutations=N file.f
//                                  cap the range test at N fixed-subset
//                                  masks per query, tried in counter-guided
//                                  order (popcount buckets ranked by the
//                                  unit's observed proof successes).  The
//                                  default keeps the legacy enumeration.
//   polaris -no-canon-cache file.f disable the symbolic canonicalization
//                                  cache (debug/bench mode; results are
//                                  byte-identical either way)
//
// Observability layer:
//   polaris -trace=FILE file.f         write a Chrome trace (chrome://tracing
//                                      / Perfetto) of the whole compile; also
//                                      settable via the POLARIS_TRACE env var
//   polaris -stats file.f              dump every statistic counter the
//                                      compile incremented
//   polaris -remarks=FILE file.f       stream structured optimization remarks
//                                      (JSONL; `-` for stdout)
//   polaris -report-json=FILE file.f   serialize the whole compile report as
//                                      stable-schema JSON (`-` for stdout)
//   polaris -profile-dir=DIR           compile every suite code (no file.f
//                                      needed) and drop per-code
//                                      <code>.report.json /
//                                      <code>.remarks.jsonl /
//                                      <code>.trace.json artifacts into DIR
//                                      — the input set for
//                                      `polaris-insight aggregate`.  Codes
//                                      are fanned over the `-jobs` pool.
// -remarks / -report-json / -stats also read POLARIS_REMARKS /
// POLARIS_REPORT_JSON / POLARIS_STATS env vars when the flag is absent
// (flag wins; POLARIS_STATS takes 1/true/on/yes or 0/false/off/no).
//
// Fault isolation (robustness layer):
//   polaris -verify-each file.f        run the IR verifier after every pass
//   polaris -fault-inject=P[:U[:N]]    force the Nth assertion in pass P on
//                                      unit U to fire (also settable via the
//                                      POLARIS_FAULT_INJECT env var)
//   polaris -pass-budget-ms=N          roll back any pass exceeding N ms
//                                      on a unit
//   polaris -no-recover                disable rollback: the first pass
//                                      fault aborts (exit 3) and writes a
//                                      repro bundle to polaris-crash-<unit>.f
//
// Resource governor (see support/governor.h):
//   polaris -compile-budget-ms=N       whole-compile budget as deterministic
//                                      fuel (N x 50000 logical work ticks);
//                                      exhaustion degrades, never aborts
//   polaris -max-poly-terms=N          ceiling on any one symbolic
//                                      polynomial's term count
//   polaris -max-atoms-per-unit=N      ceiling on the per-unit atom table
//   polaris -no-degrade                disable the degradation ladder: a
//                                      resource trip at a pass boundary
//                                      drops the pass immediately instead
//                                      of retrying on cheaper switches
// Each governor flag (and -pass-budget-ms) also reads a POLARIS_* env var
// of the same spelling (POLARIS_COMPILE_BUDGET_MS, POLARIS_MAX_POLY_TERMS,
// POLARIS_MAX_ATOMS_PER_UNIT, POLARIS_PASS_BUDGET_MS) when the flag is
// absent.
//
// A recovered fault still exits 0: the program compiles without the failed
// pass's transformation on that unit, and a warning goes to stderr.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "driver/compiler.h"
#include "driver/profile_dir.h"
#include "driver/report_json.h"
#include "interp/interp.h"
#include "parser/parser.h"
#include "parser/printer.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: polaris [-report] [-diag] [-baseline] [-omp] [-run] "
               "[-seq] [-p N] [-passes=SPEC] [-jobs=N] [-timing] [-verify-each] "
               "[-fault-inject=SPEC] [-pass-budget-ms=N] [-no-recover] "
               "[-compile-budget-ms=N] [-max-poly-terms=N] "
               "[-max-atoms-per-unit=N] [-no-degrade] "
               "[-rangetest-max-permutations=N] [-no-canon-cache] "
               "[-trace=FILE] [-stats] [-remarks=FILE] [-report-json=FILE] "
               "[-profile-dir=DIR] file.f\n");
  return 2;
}

/// Writes the crash repro bundle (unit source + pipeline spec) next to the
/// current directory; best-effort — a failed write only warns.
void write_crash_bundle(const polaris::CompileReport::CrashInfo& ci) {
  const std::string path = "polaris-crash-" + ci.unit + ".f";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "polaris: could not write repro bundle %s\n",
                 path.c_str());
    return;
  }
  out << "* Polaris crash repro: pass '" << ci.pass << "' faulted on unit '"
      << ci.unit << "'\n"
      << "* reproduce with: polaris -no-recover -passes=" << ci.passes_spec
      << " " << path << "\n"
      << ci.unit_source;
  std::fprintf(stderr, "polaris: repro bundle written to %s\n", path.c_str());
}

/// Parses and validates a `-jobs=` / POLARIS_JOBS value.  Rejects
/// anything but a positive decimal integer; values beyond the machine's
/// hardware concurrency are capped (extra workers only add contention,
/// and output is jobs-count independent anyway).
int parse_jobs(const std::string& value) {
  std::size_t pos = 0;
  long n = 0;
  try {
    n = std::stol(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (value.empty() || pos != value.size() || n < 1)
    throw polaris::UserError("invalid -jobs value '" + value +
                             "' (expected a positive integer)");
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0 && n > static_cast<long>(hw)) {
    // Audible, not silent: a capped request is honored differently than
    // written, and that should be visible in CI logs when someone wonders
    // why -jobs=32 did not scale.
    std::fprintf(stderr,
                 "polaris: note: -jobs=%ld capped to this machine's %u "
                 "hardware thread%s\n",
                 n, hw, hw == 1 ? "" : "s");
    n = static_cast<long>(hw);
  }
  return static_cast<int>(n);
}

/// Parses and validates a `-p N` processor count for the simulated
/// machine.  Same contract as every other numeric flag: a positive
/// decimal integer, fully consumed — "-p 4junk" is an error, not 4, and
/// an out-of-range value is rejected instead of overflowing.
int parse_processors(const std::string& value) {
  std::size_t pos = 0;
  long n = 0;
  try {
    n = std::stol(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (value.empty() || pos != value.size() || n < 1 || n > 2147483647)
    throw polaris::UserError("invalid -p value '" + value +
                             "' (expected a positive integer)");
  return static_cast<int>(n);
}

/// Parses and validates a `-rangetest-max-permutations=` value: a positive
/// decimal integer (the legacy enumeration has no flag spelling — omit the
/// switch to keep it).
int parse_rangetest_cap(const std::string& value) {
  std::size_t pos = 0;
  long n = 0;
  try {
    n = std::stol(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (value.empty() || pos != value.size() || n < 1)
    throw polaris::UserError(
        "invalid -rangetest-max-permutations value '" + value +
        "' (expected a positive integer)");
  return static_cast<int>(n);
}

/// Parses and validates a governor ceiling (`-max-poly-terms=`,
/// `-max-atoms-per-unit=`, or its POLARIS_* env spelling).  Accepted
/// range: a decimal integer >= 1 (omit the switch for unlimited; 0 is
/// rejected rather than silently meaning "off").
int parse_ceiling(const char* flag, const std::string& value) {
  std::size_t pos = 0;
  long n = 0;
  try {
    n = std::stol(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (value.empty() || pos != value.size() || n < 1)
    throw polaris::UserError("invalid " + std::string(flag) + " value '" +
                             value +
                             "' (expected an integer in range [1, 2^31))");
  return static_cast<int>(std::min<long>(n, 2147483647));
}

/// Parses and validates a budget (`-compile-budget-ms=` or the
/// POLARIS_COMPILE_BUDGET_MS / POLARIS_PASS_BUDGET_MS env spelling).
/// Accepted range: a decimal number > 0 (fractional ms allowed; omit the
/// switch for unlimited).
double parse_budget_ms(const char* flag, const std::string& value) {
  std::size_t pos = 0;
  double ms = 0.0;
  try {
    ms = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (value.empty() || pos != value.size() || !(ms > 0.0))
    throw polaris::UserError("invalid " + std::string(flag) + " value '" +
                             value +
                             "' (expected a number greater than 0)");
  return ms;
}

/// Env-var fallback: returns the flag value when given, else the env var's
/// value when set, else "".
std::string flag_or_env(const std::string& flag_value, const char* env_name) {
  if (!flag_value.empty()) return flag_value;
  if (const char* env = std::getenv(env_name)) return env;
  return std::string();
}

/// Parses a boolean env value (POLARIS_STATS).  The flag spelling is
/// presence-only, so the env var gets the usual on/off vocabulary; empty
/// means unset (off).
bool parse_bool_env(const char* name, const std::string& value) {
  if (value == "1" || value == "true" || value == "on" || value == "yes")
    return true;
  if (value.empty() || value == "0" || value == "false" || value == "off" ||
      value == "no")
    return false;
  throw polaris::UserError("invalid " + std::string(name) + " value '" +
                           value +
                           "' (expected 1/true/on/yes or 0/false/off/no)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace polaris;

  bool report_mode = false, diag_mode = false, baseline = false;
  bool run_mode = false, seq_mode = false, omp = false, timing = false;
  bool passes_given = false;
  bool verify_each = false, no_recover = false;
  bool stats_mode = false, no_canon_cache = false, no_degrade = false;
  double pass_budget_ms = 0.0;
  int processors = 8;
  std::string path, passes_spec, fault_inject, jobs_arg, rangetest_cap_arg;
  std::string processors_arg;
  std::string trace_path, remarks_path, report_json_path, profile_dir;
  std::string compile_budget_arg, max_poly_arg, max_atoms_arg;
  std::string pass_budget_env, stats_env;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-report") == 0) report_mode = true;
    else if (std::strcmp(argv[i], "-diag") == 0) diag_mode = true;
    else if (std::strcmp(argv[i], "-baseline") == 0) baseline = true;
    else if (std::strcmp(argv[i], "-run") == 0) run_mode = true;
    else if (std::strcmp(argv[i], "-omp") == 0) omp = true;
    else if (std::strcmp(argv[i], "-seq") == 0) seq_mode = true;
    else if (std::strcmp(argv[i], "-timing") == 0) timing = true;
    else if (std::strcmp(argv[i], "-verify-each") == 0) verify_each = true;
    else if (std::strcmp(argv[i], "-no-recover") == 0) no_recover = true;
    else if (std::strcmp(argv[i], "-stats") == 0) stats_mode = true;
    else if (std::strncmp(argv[i], "-trace=", 7) == 0)
      trace_path = argv[i] + 7;
    else if (std::strncmp(argv[i], "-remarks=", 9) == 0)
      remarks_path = argv[i] + 9;
    else if (std::strncmp(argv[i], "-report-json=", 13) == 0)
      report_json_path = argv[i] + 13;
    else if (std::strncmp(argv[i], "-profile-dir=", 13) == 0)
      profile_dir = argv[i] + 13;
    else if (std::strncmp(argv[i], "-fault-inject=", 14) == 0)
      fault_inject = argv[i] + 14;
    else if (std::strncmp(argv[i], "-pass-budget-ms=", 16) == 0) {
      pass_budget_ms = std::atof(argv[i] + 16);
      if (pass_budget_ms <= 0.0) return usage();
    }
    else if (std::strncmp(argv[i], "-passes=", 8) == 0) {
      passes_given = true;
      passes_spec = argv[i] + 8;
    }
    else if (std::strncmp(argv[i], "-jobs=", 6) == 0)
      jobs_arg = argv[i] + 6;
    else if (std::strncmp(argv[i], "-rangetest-max-permutations=", 28) == 0)
      rangetest_cap_arg = argv[i] + 28;
    else if (std::strncmp(argv[i], "-compile-budget-ms=", 19) == 0)
      compile_budget_arg = argv[i] + 19;
    else if (std::strncmp(argv[i], "-max-poly-terms=", 16) == 0)
      max_poly_arg = argv[i] + 16;
    else if (std::strncmp(argv[i], "-max-atoms-per-unit=", 20) == 0)
      max_atoms_arg = argv[i] + 20;
    else if (std::strcmp(argv[i], "-no-degrade") == 0)
      no_degrade = true;
    else if (std::strcmp(argv[i], "-no-canon-cache") == 0)
      no_canon_cache = true;
    else if (std::strcmp(argv[i], "-p") == 0 && i + 1 < argc)
      processors_arg = argv[++i];
    else if (argv[i][0] == '-') {
      return usage();
    } else {
      path = argv[i];
    }
  }
  if (path.empty() && profile_dir.empty()) return usage();
  if (fault_inject.empty()) {
    if (const char* env = std::getenv("POLARIS_FAULT_INJECT"))
      fault_inject = env;
  }
  if (trace_path.empty()) {
    if (const char* env = std::getenv("POLARIS_TRACE")) trace_path = env;
  }
  if (jobs_arg.empty()) {
    if (const char* env = std::getenv("POLARIS_JOBS")) jobs_arg = env;
  }
  // Observability outputs get the same flag-wins-over-env treatment as
  // POLARIS_TRACE.  POLARIS_STATS is a boolean, validated below inside the
  // try block so a bad value gets a flag-grade UserError.
  remarks_path = flag_or_env(remarks_path, "POLARIS_REMARKS");
  report_json_path = flag_or_env(report_json_path, "POLARIS_REPORT_JSON");
  if (!stats_mode) stats_env = flag_or_env("", "POLARIS_STATS");
  // Governor flags fall back to POLARIS_* env vars; validation happens
  // below inside the try block so a bad env value gets the same UserError
  // (with the accepted range) as a bad flag.
  compile_budget_arg =
      flag_or_env(compile_budget_arg, "POLARIS_COMPILE_BUDGET_MS");
  max_poly_arg = flag_or_env(max_poly_arg, "POLARIS_MAX_POLY_TERMS");
  max_atoms_arg = flag_or_env(max_atoms_arg, "POLARIS_MAX_ATOMS_PER_UNIT");
  if (pass_budget_ms <= 0.0)
    pass_budget_env = flag_or_env("", "POLARIS_PASS_BUDGET_MS");

  std::string source;
  if (!path.empty()) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "polaris: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  CompileReport report;
  try {
    if (!stats_env.empty())
      stats_mode = parse_bool_env("POLARIS_STATS", stats_env);
    if (!processors_arg.empty()) processors = parse_processors(processors_arg);
    if (seq_mode) {
      auto prog = parse_program(source);
      RunResult r = run_program(*prog, MachineConfig{});
      for (const std::string& line : r.output)
        std::printf("%s\n", line.c_str());
      std::fprintf(stderr, "[polaris] sequential time: %llu units\n",
                   static_cast<unsigned long long>(r.clock.serial));
      return r.stopped ? 1 : 0;
    }

    CompilerMode mode =
        baseline ? CompilerMode::Baseline : CompilerMode::Polaris;
    Compiler compiler(mode);
    if (passes_given) {
      PassPipeline::parse(passes_spec);  // reject bad specs before compiling
      compiler.options().pipeline_spec = passes_spec;
    }
    compiler.options().verify_each = verify_each;
    compiler.options().fault_recovery = !no_recover;
    compiler.options().pass_budget_ms = pass_budget_ms;
    compiler.options().fault_inject = fault_inject;
    compiler.options().trace_path = trace_path;
    if (!jobs_arg.empty()) compiler.options().jobs = parse_jobs(jobs_arg);
    if (!rangetest_cap_arg.empty())
      compiler.options().rangetest_max_permutations =
          parse_rangetest_cap(rangetest_cap_arg);
    if (no_canon_cache) compiler.options().symbolic_canon_cache = false;
    if (!compile_budget_arg.empty())
      compiler.options().compile_budget_ms =
          parse_budget_ms("-compile-budget-ms", compile_budget_arg);
    if (!max_poly_arg.empty())
      compiler.options().max_poly_terms =
          parse_ceiling("-max-poly-terms", max_poly_arg);
    if (!max_atoms_arg.empty())
      compiler.options().max_atoms_per_unit =
          parse_ceiling("-max-atoms-per-unit", max_atoms_arg);
    if (!pass_budget_env.empty())
      compiler.options().pass_budget_ms =
          parse_budget_ms("-pass-budget-ms", pass_budget_env);
    if (no_degrade) compiler.options().degradation_ladder = false;

    // Suite profiling replaces the single-file compile: the full option
    // set above applies to every code, then the process exits.
    if (!profile_dir.empty())
      return run_profile_suite(profile_dir, compiler.options());

    auto prog = compiler.compile(source, &report);

    if (!remarks_path.empty()) {
      if (remarks_path == "-") {
        report.diagnostics.print_remarks(std::cout);
      } else {
        std::ofstream out(remarks_path);
        if (!out) {
          std::fprintf(stderr, "polaris: cannot write %s\n",
                       remarks_path.c_str());
          return 1;
        }
        report.diagnostics.print_remarks(out);
      }
    }
    if (!report_json_path.empty()) {
      const std::string doc = compile_report_json(report);
      if (report_json_path == "-") {
        std::printf("%s\n", doc.c_str());
      } else {
        std::ofstream out(report_json_path);
        if (!out) {
          std::fprintf(stderr, "polaris: cannot write %s\n",
                       report_json_path.c_str());
          return 1;
        }
        out << doc << "\n";
      }
    }

    for (const PassFailure& f : report.failures)
      std::fprintf(stderr,
                   "polaris: warning: pass '%s' %s failure on unit '%s'%s; "
                   "rolled back and continued\n",
                   f.pass.c_str(), to_string(f.kind), f.unit.c_str(),
                   f.injected ? " (injected)" : "");

    if (timing) {
      std::printf("%-12s %5s %10s %6s %7s %7s %9s %7s\n", "pass", "runs",
                  "ms", "diags", "stmt+-", "expr+-", "aqueries", "ahits");
      double total_ms = 0.0;
      for (const PassTiming& t : report.pass_timings) {
        std::printf("%-12s %5d %10.3f %6d %+7ld %+7ld %9llu %7llu\n",
                    t.pass.c_str(), t.runs, t.ms, t.diags, t.stmt_delta,
                    t.expr_delta,
                    static_cast<unsigned long long>(t.analysis_queries),
                    static_cast<unsigned long long>(t.analysis_hits));
        total_ms += t.ms;
      }
      std::printf("total: %.3f ms; analysis cache: %llu queries, "
                  "%llu hits, %llu recomputes, %llu invalidations\n",
                  total_ms,
                  static_cast<unsigned long long>(report.analysis.queries),
                  static_cast<unsigned long long>(report.analysis.hits),
                  static_cast<unsigned long long>(report.analysis.recomputes),
                  static_cast<unsigned long long>(
                      report.analysis.invalidations));
    }

    if (stats_mode) {
      std::printf("=== statistics (per-compile deltas) ===\n");
      for (const StatisticValue& sv : report.stats)
        std::printf("%8llu %-14s %-28s %s\n",
                    static_cast<unsigned long long>(sv.value),
                    sv.component.c_str(), sv.name.c_str(), sv.desc.c_str());
    }

    if (report_mode) {
      std::printf("%d loops, %d parallel, %d speculative; %d calls "
                  "inlined; %d inductions substituted\n",
                  report.doall.loops, report.doall.parallel,
                  report.doall.speculative, report.inlining.expanded,
                  report.induction.substituted);
      for (const LoopReport& lr : report.loops) {
        std::printf("  %s/%-8s depth %d : %s%s", lr.unit.c_str(),
                    lr.loop.c_str(), lr.depth,
                    lr.parallel
                        ? "PARALLEL"
                        : (lr.speculative ? "SPECULATIVE" : "serial"),
                    lr.serial_reason.empty()
                        ? ""
                        : ("  (" + lr.serial_reason + ")").c_str());
        if (lr.dep_pairs > 0)
          std::printf("  [%d pairs: %d gcd, %d banerjee/siv, %d rangetest]",
                      lr.dep_pairs, lr.dep_by_gcd, lr.dep_by_banerjee,
                      lr.dep_by_rangetest);
        std::printf("\n");
      }
    }
    if (diag_mode) {
      for (const Diagnostic& d : report.diagnostics.all())
        std::printf("[%s] %s: %s\n", d.pass.c_str(), d.context.c_str(),
                    d.message.c_str());
    }
    if (run_mode) {
      auto ref = parse_program(source);
      RunResult ref_run = run_program(*ref, MachineConfig{});
      ExecutionConfig cfg = backend_config(mode, *prog, processors);
      RunResult run = run_program(*prog, cfg.machine);
      for (const std::string& line : run.output)
        std::printf("%s\n", line.c_str());
      if (ref_run.output != run.output) {
        std::fprintf(stderr,
                     "[polaris] ERROR: output differs from sequential "
                     "reference\n");
        return 1;
      }
      std::fprintf(
          stderr, "[polaris] %d processors: %llu units (speedup %.2f)\n",
          processors, static_cast<unsigned long long>(run.clock.parallel),
          static_cast<double>(ref_run.clock.serial) /
              (static_cast<double>(run.clock.parallel) *
               cfg.codegen_factor));
    }
    // When a machine-readable stream goes to stdout, keep it the only
    // thing on stdout so consumers can pipe it straight into a parser.
    const bool structured_stdout =
        remarks_path == "-" || report_json_path == "-";
    if (!report_mode && !diag_mode && !run_mode && !timing && !stats_mode &&
        !structured_stdout) {
      if (omp)
        std::printf("%s",
                    to_source(*prog, DirectiveStyle::OpenMP).c_str());
      else
        std::printf("%s", report.annotated_source.c_str());
    }
    return 0;
  } catch (const UserError& e) {
    std::fprintf(stderr, "polaris: %s\n", e.what());
    return 1;
  } catch (const InternalError& e) {
    if (report.crash) {
      std::fprintf(stderr,
                   "polaris: internal error in pass '%s' on unit '%s': %s\n",
                   report.crash->pass.c_str(), report.crash->unit.c_str(),
                   e.what());
      write_crash_bundle(*report.crash);
    } else {
      std::fprintf(stderr, "polaris: internal error: %s\n", e.what());
    }
    return 3;
  }
}
