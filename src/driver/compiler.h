// The Polaris driver: full source-to-source restructuring pipeline.
//
//   parse -> inline expansion -> constant propagation -> induction
//   substitution -> DOALL recognition (reductions, privatization,
//   dependence tests) -> annotated source + per-loop report.
//
// The pipeline itself is assembled by the pass manager
// (driver/pass_manager.h): Options::pipeline_spec selects a custom
// `-passes=` battery, otherwise the standard one runs.  An
// AnalysisManager carries cached flow facts across passes.
//
// Two modes reproduce the paper's comparison: CompilerMode::Polaris runs
// the full battery; CompilerMode::Baseline models the 1996 commercial
// compiler ("PFA"): linear dependence tests only, scalar privatization,
// simple inductions, no inlining, no range test, no array privatization.
// The baseline's stronger *back end* (loop interchange/unrolling/fusion)
// is modeled by backend_config(): a code-generation time factor that
// usually helps but hurts loops with short constant-trip inner loops —
// the paper's explanation for appsp and tomcatv (Section 4.2).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analysis_manager.h"
#include "driver/pass_manager.h"
#include "ir/program.h"
#include "machine/machine.h"
#include "passes/doall.h"
#include "passes/induction.h"
#include "passes/inliner.h"
#include "support/diagnostics.h"
#include "support/options.h"
#include "support/statistic.h"

namespace polaris {

enum class CompilerMode { Polaris, Baseline };

struct LoopReport {
  std::string unit;
  std::string loop;
  int depth = 0;
  bool parallel = false;
  bool speculative = false;
  std::string serial_reason;
  /// Machine-readable code behind serial_reason ("carried-dependence",
  /// "loop-io", ...); non-empty for every non-parallel loop.
  std::string reason_code;
  // Dependence-test accounting (pairs tested / resolved per test).
  int dep_pairs = 0;
  int dep_by_gcd = 0;
  int dep_by_banerjee = 0;
  int dep_by_rangetest = 0;
};

struct CompileReport {
  InlineResult inlining;
  InductionResult induction;
  DoallSummary doall;
  std::vector<LoopReport> loops;
  Diagnostics diagnostics;
  std::string annotated_source;  ///< the source-to-source output
  /// Per-pass instrumentation in pipeline order (wall time, diagnostics,
  /// IR deltas, analysis-cache hit rates) — the `-timing` CLI payload.
  std::vector<PassTiming> pass_timings;
  /// Aggregate AnalysisManager accounting for the whole compilation.
  AnalysisManager::Stats analysis;
  /// Per-compilation deltas of every POLARIS_STATISTIC counter that moved
  /// during this compile (the `-stats` payload, embedded in report JSON).
  std::vector<StatisticValue> stats;
  /// Pass invocations that faulted.  With fault recovery (default) each
  /// was rolled back and the compile continued; the driver reports them as
  /// warnings and still exits 0.
  std::vector<PassFailure> failures;
  /// Resource-governed degradation steps, in deterministic (unit-order)
  /// sequence: ladder retries, final pass drops, and aggregated
  /// conservative query bail-outs (see support/governor.h).  Empty for an
  /// ungoverned compile.
  std::vector<DegradationEvent> degradations;
  /// Governor fuel accounting for this compile: the installed limit, the
  /// ticks this compile burned, and how often each ceiling tripped.  All
  /// zero for an ungoverned compile.  Fuel and the symbolic-ceiling trips
  /// are deterministic fuel-site counts (jobs-invariant); pass-budget
  /// trips follow wall time like PassFailure::Kind::Budget records do.
  struct ResourceUsage {
    std::uint64_t fuel_limit = 0;
    std::uint64_t fuel_spent = 0;
    std::uint64_t trips_pass_budget = 0;
    std::uint64_t trips_compile_fuel = 0;
    std::uint64_t trips_poly_terms = 0;
    std::uint64_t trips_atom_ceiling = 0;
  };
  ResourceUsage resource;

  /// Repro context stashed just before an InternalError escapes recovery;
  /// the CLI writes it to polaris-crash-<unit>.f for offline debugging.
  struct CrashInfo {
    std::string pass;         ///< failing pass
    std::string unit;         ///< failing unit
    std::string unit_source;  ///< pre-pass snapshot of the unit, printed
    std::string passes_spec;  ///< `-passes=` spec reproducing the pipeline
  };
  std::optional<CrashInfo> crash;
};

class Compiler {
 public:
  explicit Compiler(Options opts) : opts_(std::move(opts)) {}
  explicit Compiler(CompilerMode mode)
      : opts_(mode == CompilerMode::Polaris ? Options::polaris()
                                            : Options::baseline()) {}

  const Options& options() const { return opts_; }
  Options& options() { return opts_; }

  /// Parses and restructures `source`.  The returned program carries the
  /// DOALL annotations the execution engine consumes.  The two-argument
  /// form owns a CompileContext for the duration of the call; pass `cc`
  /// to keep the compilation's statistics, trace, and fault-injection
  /// state alive afterwards (tests inspect it; embedders aggregate it).
  std::unique_ptr<Program> compile(const std::string& source,
                                   CompileReport* report = nullptr);
  std::unique_ptr<Program> compile(const std::string& source,
                                   CompileReport* report, CompileContext& cc);

  /// Restructures an already-parsed program in place.
  void transform(Program& program, CompileReport* report = nullptr);
  void transform(Program& program, CompileReport* report, CompileContext& cc);

 private:
  Options opts_;
};

/// Execution-time configuration for a compiled program under a backend.
struct ExecutionConfig {
  MachineConfig machine;
  /// Multiplier on the compiled program's execution time modeling backend
  /// code quality (1.0 for the Polaris-generated code).
  double codegen_factor = 1.0;
};

/// Models the paper's PFA back end: inspects the program's parallel loops
/// and returns a factor < 1 when aggressive restructuring helps (long
/// regular loops) or > 1 when it backfires (short constant-trip inner
/// loops, cf. appsp/tomcatv).
ExecutionConfig backend_config(CompilerMode mode, const Program& program,
                               int processors);

}  // namespace polaris
