#include "driver/pass_manager.h"

#include <chrono>
#include <sstream>

#include "driver/compiler.h"
#include "ir/verifier.h"
#include "parser/printer.h"
#include "passes/constprop.h"
#include "passes/doall.h"
#include "passes/forwardsub.h"
#include "passes/induction.h"
#include "passes/inliner.h"
#include "passes/normalize.h"
#include "passes/privatization.h"
#include "passes/reduction.h"
#include "passes/strength.h"
#include "support/statistic.h"
#include "support/string_util.h"
#include "support/trace.h"
#include "symbolic/poly.h"

namespace polaris {

namespace {

/// Preserve everything when nothing changed, nothing when the IR did.
PreservedAnalyses preserved_if_unchanged(int changes) {
  return changes == 0 ? PreservedAnalyses::all() : PreservedAnalyses::none();
}

class InlinePass : public Pass {
 public:
  std::string name() const override { return "inline"; }
  bool program_scope() const override { return true; }
  PreservedAnalyses run(ProgramUnit&, AnalysisManager&,
                        PassContext& ctx) override {
    InlineResult r = inline_calls(ctx.program, ctx.opts,
                                  ctx.report.diagnostics);
    ctx.report.inlining.expanded += r.expanded;
    ctx.report.inlining.skipped += r.skipped;
    return preserved_if_unchanged(r.expanded);
  }
};

class ConstPropPass : public Pass {
 public:
  std::string name() const override { return "constprop"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager&,
                        PassContext&) override {
    return preserved_if_unchanged(propagate_constants(unit));
  }
};

class NormalizePass : public Pass {
 public:
  std::string name() const override { return "normalize"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager& am,
                        PassContext& ctx) override {
    return preserved_if_unchanged(
        normalize_loops(unit, ctx.opts, ctx.report.diagnostics, am));
  }
};

class InductionPass : public Pass {
 public:
  std::string name() const override { return "induction"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager& am,
                        PassContext& ctx) override {
    InductionResult r =
        substitute_inductions(unit, ctx.opts, ctx.report.diagnostics, am);
    ctx.report.induction.substituted += r.substituted;
    ctx.report.induction.rejected += r.rejected;
    return preserved_if_unchanged(r.substituted);
  }
};

class ForwardSubPass : public Pass {
 public:
  std::string name() const override { return "forwardsub"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager&,
                        PassContext& ctx) override {
    return preserved_if_unchanged(
        forward_substitute(unit, ctx.opts, ctx.report.diagnostics));
  }
};

class DoallPass : public Pass {
 public:
  std::string name() const override { return "doall"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager& am,
                        PassContext& ctx) override {
    DoallSummary ds = mark_doall_loops(&ctx.program, unit, ctx.opts,
                                       ctx.report.diagnostics, am);
    ctx.report.doall.loops += ds.loops;
    ctx.report.doall.parallel += ds.parallel;
    ctx.report.doall.speculative += ds.speculative;
    // Annotation only: ParallelInfo and reduction flags do not affect any
    // cached flow fact.
    return PreservedAnalyses::all();
  }
};

class StrengthPass : public Pass {
 public:
  std::string name() const override { return "strength"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager& am,
                        PassContext& ctx) override {
    return preserved_if_unchanged(
        strength_reduce(unit, ctx.opts, ctx.report.diagnostics, am));
  }
};

/// Standalone reduction recognition (paper Section 3.2): flags reduction
/// statements on every loop without running the full DOALL driver.  In the
/// standard battery this runs as a sub-analysis of `doall`; registering it
/// separately lets `-passes=` ablations and fault-injection tests target
/// it directly.
class ReductionPass : public Pass {
 public:
  std::string name() const override { return "reduction"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager& am,
                        PassContext& ctx) override {
    for (DoStmt* loop : unit.stmts().loops())
      recognize_reductions(loop, ctx.opts, ctx.report.diagnostics, am);
    // Statement flags only; no cached flow fact depends on them.
    return PreservedAnalyses::all();
  }
};

/// Standalone privatization analysis (paper Section 3.4): records each
/// loop's private/lastvalue variables in its ParallelInfo without deciding
/// parallelism.  Like `reduction`, a sub-analysis of `doall` in the
/// standard battery.
class PrivatizationPass : public Pass {
 public:
  std::string name() const override { return "privatization"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager& am,
                        PassContext& ctx) override {
    for (DoStmt* loop : unit.stmts().loops()) {
      PrivatizationResult r = analyze_privatization(
          unit, loop, ctx.opts, ctx.report.diagnostics, am);
      loop->par.private_vars = r.private_scalars;
      loop->par.private_vars.insert(loop->par.private_vars.end(),
                                    r.private_arrays.begin(),
                                    r.private_arrays.end());
      loop->par.lastvalue_vars = r.lastvalue_scalars;
    }
    return PreservedAnalyses::all();
  }
};

struct Registration {
  const char* name;
  std::unique_ptr<Pass> (*make)();
};

template <typename P>
std::unique_ptr<Pass> make_pass() {
  return std::make_unique<P>();
}

/// In standard battery order; standard() instantiates exactly this list.
const Registration kRegistry[] = {
    {"inline", make_pass<InlinePass>},
    {"constprop", make_pass<ConstPropPass>},
    {"normalize", make_pass<NormalizePass>},
    {"induction", make_pass<InductionPass>},
    {"forwardsub", make_pass<ForwardSubPass>},
    {"doall", make_pass<DoallPass>},
    {"strength", make_pass<StrengthPass>},
};

/// Available to `-passes=` specs but not part of the standard battery
/// (there they run inside `doall`).
const Registration kExtraRegistry[] = {
    {"reduction", make_pass<ReductionPass>},
    {"privatization", make_pass<PrivatizationPass>},
};

std::unique_ptr<Pass> create_pass(const std::string& name) {
  for (const Registration& r : kRegistry)
    if (name == r.name) return r.make();
  for (const Registration& r : kExtraRegistry)
    if (name == r.name) return r.make();
  return nullptr;
}

IrSize program_ir_size(const Program& program) {
  IrSize total;
  for (const auto& unit : program.units()) {
    IrSize s = unit_ir_size(*unit);
    total.stmts += s.stmts;
    total.exprs += s.exprs;
  }
  return total;
}

}  // namespace

IrSize unit_ir_size(const ProgramUnit& unit) {
  IrSize size;
  for (const Statement* s : unit.stmts()) {
    ++size.stmts;
    for (const Expression* e : s->expressions())
      walk(*e, [&](const Expression&) { ++size.exprs; });
  }
  return size;
}

void PassPipeline::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

std::vector<std::string> PassPipeline::pass_names() const {
  std::vector<std::string> out;
  for (const auto& p : passes_) out.push_back(p->name());
  return out;
}

PassPipeline PassPipeline::standard() {
  PassPipeline pipeline;
  for (const Registration& r : kRegistry) pipeline.add(r.make());
  return pipeline;
}

PassPipeline PassPipeline::parse(const std::string& spec) {
  PassPipeline pipeline;
  for (const std::string& raw : split(spec, ',')) {
    std::string name = trim(raw);
    if (name.empty())
      throw UserError("empty pass name in pipeline spec '" + spec + "'");
    std::unique_ptr<Pass> pass = create_pass(name);
    if (pass == nullptr)
      throw UserError("unknown pass '" + name + "' in pipeline spec (known: " +
                      join(registered_passes(), ",") + ")");
    pipeline.add(std::move(pass));
  }
  if (pipeline.empty())
    throw UserError("empty pipeline spec");
  return pipeline;
}

PassPipeline PassPipeline::from_options(const Options& opts) {
  return opts.pipeline_spec.empty() ? standard() : parse(opts.pipeline_spec);
}

std::vector<std::string> PassPipeline::registered_passes() {
  std::vector<std::string> out;
  for (const Registration& r : kRegistry) out.emplace_back(r.name);
  for (const Registration& r : kExtraRegistry) out.emplace_back(r.name);
  return out;
}

const char* to_string(PassFailure::Kind kind) {
  switch (kind) {
    case PassFailure::Kind::Assertion: return "assertion";
    case PassFailure::Kind::Verifier: return "verifier";
    case PassFailure::Kind::Budget: return "budget";
  }
  return "?";
}

void PassPipeline::run(Program& program, AnalysisManager& am,
                       PassContext& ctx) const {
  const std::size_t first_timing = ctx.report.pass_timings.size();
  for (const auto& pass : passes_) {
    PassTiming t;
    t.pass = pass->name();
    ctx.report.pass_timings.push_back(std::move(t));
  }

  const std::string repro_spec = ctx.opts.pipeline_spec.empty()
                                     ? join(pass_names(), ",")
                                     : ctx.opts.pipeline_spec;
  constexpr std::size_t kProgramScope = static_cast<std::size_t>(-1);

  // One pass invocation under fault isolation.  The unit is addressed by
  // index, not reference: a rollback swaps the unit object under the
  // program, and a reference captured before the pass ran would dangle.
  auto run_one = [&](Pass& pass, std::size_t unit_index, PassTiming& timing) {
    const bool whole_program = unit_index == kProgramScope;
    auto unit_ptr = [&]() -> ProgramUnit* {
      return whole_program ? program.main()
                           : program.units()[unit_index].get();
    };
    ProgramUnit* unit = unit_ptr();
    const std::string unit_name = unit->name();

    // Pre-pass state: deep IR snapshot (all units for program scope) plus
    // the report counters and diagnostics mark, so a failed pass leaves no
    // trace beyond its PassFailure record.
    std::vector<std::unique_ptr<ProgramUnit>> snapshot;
    SymbolMap<Symbol*> snap_map;  // original -> snapshot symbols
    {
      trace::TraceSpan snap_span("snapshot", "fault");
      if (whole_program) {
        for (const auto& u : program.units())
          snapshot.push_back(u->clone(u->name(), &snap_map));
      } else {
        snapshot.push_back(unit->clone(unit_name, &snap_map));
      }
    }
    const InlineResult inl_before = ctx.report.inlining;
    const InductionResult ind_before = ctx.report.induction;
    const DoallSummary doall_before = ctx.report.doall;
    const std::size_t diags_before = ctx.report.diagnostics.all().size();
    const AnalysisManager::Stats stats_before = am.stats();
    const std::size_t atoms_before = AtomTable::instance().size();
    IrSize before =
        whole_program ? program_ir_size(program) : unit_ir_size(*unit);

    // The invocation's trace span plus the rollback marks: everything a
    // failed pass emitted (child spans, instants) and every statistic it
    // bumped is unwound along with the IR, so an injected fault leaves the
    // observability record identical to a run that skipped the pass — save
    // for the invocation span itself, tagged rolled_back, and one rollback
    // instant event.
    const std::size_t trace_mark = trace::mark();
    const StatisticSnapshot stats_mark =
        StatisticRegistry::instance().snapshot();
    trace::TraceSpan pass_span(pass.name(), "pass");
    pass_span.arg("unit", unit_name);

    // Rollback (or, with recovery off, crash-bundle preparation) for one
    // failed invocation.
    auto fail = [&](PassFailure::Kind kind, const std::string& message,
                    bool was_injected) {
      ctx.report.diagnostics.truncate(diags_before);
      ctx.report.inlining = inl_before;
      ctx.report.induction = ind_before;
      ctx.report.doall = doall_before;
      PassFailure f;
      f.pass = pass.name();
      f.unit = unit_name;
      f.kind = kind;
      f.message = message;
      f.injected = was_injected;
      f.recovered = ctx.opts.fault_recovery;
      if (!ctx.opts.fault_recovery) {
        CompileReport::CrashInfo ci;
        ci.pass = f.pass;
        ci.unit = f.unit;
        ci.passes_spec = repro_spec;
        std::ostringstream os;
        for (const auto& u : snapshot) print_unit(os, *u);
        ci.unit_source = os.str();
        ctx.report.crash = std::move(ci);
        ctx.report.failures.push_back(std::move(f));
        return;  // caller (re)throws
      }
      // Atoms the failed pass interned would shift canonical term ordering
      // in every later polynomial round-trip; drop them, then transfer the
      // surviving atoms' ids to the snapshot's symbols so later passes see
      // the same atom order as a run that never attempted this pass.  Must
      // happen before the snapshot is swapped in: remap reads the original
      // symbols (snap_map keys), which the swap destroys.
      AtomTable::instance().truncate(atoms_before);
      AtomTable::instance().remap(snap_map);
      if (whole_program)
        program.reset_units(std::move(snapshot));
      else
        program.replace_unit(unit, std::move(snapshot.front()));
      am.invalidate_all();
      // Unwind the observability record too: drop trace events emitted
      // inside the failed pass (its own span emits later, at scope exit,
      // and survives), zero statistics back to the pre-pass snapshot, and
      // leave one instant event marking the rollback itself.
      trace::truncate(trace_mark);
      StatisticRegistry::instance().restore(stats_mark);
      pass_span.arg("rolled_back", "true");
      trace::instant("rollback", "fault",
                     {{"pass", pass.name()},
                      {"unit", unit_name},
                      {"kind", to_string(kind)}});
      ctx.report.diagnostics.warning(
          "fault-isolation", f.pass + "/" + f.unit,
          std::string(to_string(kind)) +
              (was_injected ? " (injected)" : "") +
              " failure; pass rolled back, continuing without it: " +
              message);
      ++timing.failures;
      ctx.report.failures.push_back(std::move(f));
    };

    const auto t0 = std::chrono::steady_clock::now();
    bool failed = false;
    PreservedAnalyses preserved = PreservedAnalyses::all();
    fault::set_scope(pass.name(), unit_name);
    try {
      preserved = pass.run(*unit, am, ctx);
      // An armed injection that found fewer than N assertion sites in this
      // pass/unit still fires, at the unit boundary — so the recovery path
      // is exercisable for every pass regardless of its assertion density.
      if (fault::consume_boundary_fault())
        throw InternalError(detail::kInjectedCond, "unit-boundary", 0,
                            "deterministic fault injection at unit boundary");
      fault::clear_scope();
    } catch (const InternalError& e) {
      fault::clear_scope();
      failed = true;
      fail(PassFailure::Kind::Assertion, e.what(), e.injected());
      if (!ctx.opts.fault_recovery) throw;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    if (!failed) {
      am.invalidate(preserved);
      if (ctx.opts.pass_budget_ms > 0.0 && ms > ctx.opts.pass_budget_ms) {
        failed = true;
        std::ostringstream os;
        os << "pass ran " << ms << " ms, budget "
           << ctx.opts.pass_budget_ms << " ms";
        fail(PassFailure::Kind::Budget, os.str(), false);
        if (!ctx.opts.fault_recovery)
          throw InternalError("pass-over-budget", pass.name(), 0, os.str());
      }
    }
    if (!failed && ctx.opts.verify_each) {
      std::vector<VerifierViolation> vs =
          whole_program ? verify_program(program) : verify_unit(*unit_ptr());
      if (!vs.empty()) {
        failed = true;
        fail(PassFailure::Kind::Verifier, format_violations(vs), false);
        if (!ctx.opts.fault_recovery)
          throw InternalError("verify-each", pass.name(), 0,
                              format_violations(vs));
      }
    }

    unit = unit_ptr();  // a rollback replaced the unit object
    IrSize after =
        whole_program ? program_ir_size(program) : unit_ir_size(*unit);
    ++timing.runs;
    timing.ms += ms;
    timing.diags += static_cast<int>(ctx.report.diagnostics.all().size() -
                                     diags_before);
    timing.stmt_delta += after.stmts - before.stmts;
    timing.expr_delta += after.exprs - before.exprs;
    timing.analysis_queries += am.stats().queries - stats_before.queries;
    timing.analysis_hits += am.stats().hits - stats_before.hits;
    if (trace::on()) {
      const AnalysisManager::Stats s = am.stats();
      trace::counter("analysis-cache",
                     {{"queries", static_cast<std::uint64_t>(s.queries)},
                      {"hits", static_cast<std::uint64_t>(s.hits)}});
    }
  };

  // Group maximal runs of unit-scope passes so every unit sees the whole
  // group in order before the next unit starts (the seed driver's order);
  // program-scope passes run alone.
  std::size_t i = 0;
  while (i < passes_.size()) {
    if (passes_[i]->program_scope()) {
      run_one(*passes_[i], kProgramScope,
              ctx.report.pass_timings[first_timing + i]);
      ++i;
      continue;
    }
    std::size_t group_end = i;
    while (group_end < passes_.size() &&
           !passes_[group_end]->program_scope())
      ++group_end;
    for (std::size_t ui = 0; ui < program.units().size(); ++ui)
      for (std::size_t j = i; j < group_end; ++j)
        run_one(*passes_[j], ui,
                ctx.report.pass_timings[first_timing + j]);
    i = group_end;
  }
}

}  // namespace polaris
