#include "driver/pass_manager.h"

#include <chrono>

#include "driver/compiler.h"
#include "passes/constprop.h"
#include "passes/doall.h"
#include "passes/forwardsub.h"
#include "passes/induction.h"
#include "passes/inliner.h"
#include "passes/normalize.h"
#include "passes/strength.h"
#include "support/string_util.h"

namespace polaris {

namespace {

/// Preserve everything when nothing changed, nothing when the IR did.
PreservedAnalyses preserved_if_unchanged(int changes) {
  return changes == 0 ? PreservedAnalyses::all() : PreservedAnalyses::none();
}

class InlinePass : public Pass {
 public:
  std::string name() const override { return "inline"; }
  bool program_scope() const override { return true; }
  PreservedAnalyses run(ProgramUnit&, AnalysisManager&,
                        PassContext& ctx) override {
    InlineResult r = inline_calls(ctx.program, ctx.opts,
                                  ctx.report.diagnostics);
    ctx.report.inlining.expanded += r.expanded;
    ctx.report.inlining.skipped += r.skipped;
    return preserved_if_unchanged(r.expanded);
  }
};

class ConstPropPass : public Pass {
 public:
  std::string name() const override { return "constprop"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager&,
                        PassContext&) override {
    return preserved_if_unchanged(propagate_constants(unit));
  }
};

class NormalizePass : public Pass {
 public:
  std::string name() const override { return "normalize"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager& am,
                        PassContext& ctx) override {
    return preserved_if_unchanged(
        normalize_loops(unit, ctx.opts, ctx.report.diagnostics, am));
  }
};

class InductionPass : public Pass {
 public:
  std::string name() const override { return "induction"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager& am,
                        PassContext& ctx) override {
    InductionResult r =
        substitute_inductions(unit, ctx.opts, ctx.report.diagnostics, am);
    ctx.report.induction.substituted += r.substituted;
    ctx.report.induction.rejected += r.rejected;
    return preserved_if_unchanged(r.substituted);
  }
};

class ForwardSubPass : public Pass {
 public:
  std::string name() const override { return "forwardsub"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager&,
                        PassContext& ctx) override {
    return preserved_if_unchanged(
        forward_substitute(unit, ctx.opts, ctx.report.diagnostics));
  }
};

class DoallPass : public Pass {
 public:
  std::string name() const override { return "doall"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager& am,
                        PassContext& ctx) override {
    DoallSummary ds = mark_doall_loops(&ctx.program, unit, ctx.opts,
                                       ctx.report.diagnostics, am);
    ctx.report.doall.loops += ds.loops;
    ctx.report.doall.parallel += ds.parallel;
    ctx.report.doall.speculative += ds.speculative;
    // Annotation only: ParallelInfo and reduction flags do not affect any
    // cached flow fact.
    return PreservedAnalyses::all();
  }
};

class StrengthPass : public Pass {
 public:
  std::string name() const override { return "strength"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager& am,
                        PassContext& ctx) override {
    return preserved_if_unchanged(
        strength_reduce(unit, ctx.opts, ctx.report.diagnostics, am));
  }
};

struct Registration {
  const char* name;
  std::unique_ptr<Pass> (*make)();
};

template <typename P>
std::unique_ptr<Pass> make_pass() {
  return std::make_unique<P>();
}

/// In standard battery order; parse() and standard() both consult this.
const Registration kRegistry[] = {
    {"inline", make_pass<InlinePass>},
    {"constprop", make_pass<ConstPropPass>},
    {"normalize", make_pass<NormalizePass>},
    {"induction", make_pass<InductionPass>},
    {"forwardsub", make_pass<ForwardSubPass>},
    {"doall", make_pass<DoallPass>},
    {"strength", make_pass<StrengthPass>},
};

std::unique_ptr<Pass> create_pass(const std::string& name) {
  for (const Registration& r : kRegistry)
    if (name == r.name) return r.make();
  return nullptr;
}

IrSize program_ir_size(const Program& program) {
  IrSize total;
  for (const auto& unit : program.units()) {
    IrSize s = unit_ir_size(*unit);
    total.stmts += s.stmts;
    total.exprs += s.exprs;
  }
  return total;
}

}  // namespace

IrSize unit_ir_size(const ProgramUnit& unit) {
  IrSize size;
  for (const Statement* s : unit.stmts()) {
    ++size.stmts;
    for (const Expression* e : s->expressions())
      walk(*e, [&](const Expression&) { ++size.exprs; });
  }
  return size;
}

void PassPipeline::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

std::vector<std::string> PassPipeline::pass_names() const {
  std::vector<std::string> out;
  for (const auto& p : passes_) out.push_back(p->name());
  return out;
}

PassPipeline PassPipeline::standard() {
  PassPipeline pipeline;
  for (const Registration& r : kRegistry) pipeline.add(r.make());
  return pipeline;
}

PassPipeline PassPipeline::parse(const std::string& spec) {
  PassPipeline pipeline;
  for (const std::string& raw : split(spec, ',')) {
    std::string name = trim(raw);
    if (name.empty())
      throw UserError("empty pass name in pipeline spec '" + spec + "'");
    std::unique_ptr<Pass> pass = create_pass(name);
    if (pass == nullptr)
      throw UserError("unknown pass '" + name + "' in pipeline spec (known: " +
                      join(registered_passes(), ",") + ")");
    pipeline.add(std::move(pass));
  }
  if (pipeline.empty())
    throw UserError("empty pipeline spec");
  return pipeline;
}

PassPipeline PassPipeline::from_options(const Options& opts) {
  return opts.pipeline_spec.empty() ? standard() : parse(opts.pipeline_spec);
}

std::vector<std::string> PassPipeline::registered_passes() {
  std::vector<std::string> out;
  for (const Registration& r : kRegistry) out.emplace_back(r.name);
  return out;
}

void PassPipeline::run(Program& program, AnalysisManager& am,
                       PassContext& ctx) const {
  const std::size_t first_timing = ctx.report.pass_timings.size();
  for (const auto& pass : passes_) {
    PassTiming t;
    t.pass = pass->name();
    ctx.report.pass_timings.push_back(std::move(t));
  }

  auto run_one = [&](Pass& pass, ProgramUnit& unit, PassTiming& timing) {
    const bool whole_program = pass.program_scope();
    IrSize before =
        whole_program ? program_ir_size(program) : unit_ir_size(unit);
    const std::size_t diags_before = ctx.report.diagnostics.all().size();
    const AnalysisManager::Stats stats_before = am.stats();
    const auto t0 = std::chrono::steady_clock::now();

    PreservedAnalyses preserved = pass.run(unit, am, ctx);

    const auto t1 = std::chrono::steady_clock::now();
    am.invalidate(preserved);
    IrSize after =
        whole_program ? program_ir_size(program) : unit_ir_size(unit);

    ++timing.runs;
    timing.ms +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    timing.diags += static_cast<int>(ctx.report.diagnostics.all().size() -
                                     diags_before);
    timing.stmt_delta += after.stmts - before.stmts;
    timing.expr_delta += after.exprs - before.exprs;
    timing.analysis_queries += am.stats().queries - stats_before.queries;
    timing.analysis_hits += am.stats().hits - stats_before.hits;
  };

  // Group maximal runs of unit-scope passes so every unit sees the whole
  // group in order before the next unit starts (the seed driver's order);
  // program-scope passes run alone.
  std::size_t i = 0;
  while (i < passes_.size()) {
    if (passes_[i]->program_scope()) {
      run_one(*passes_[i], *program.main(),
              ctx.report.pass_timings[first_timing + i]);
      ++i;
      continue;
    }
    std::size_t group_end = i;
    while (group_end < passes_.size() &&
           !passes_[group_end]->program_scope())
      ++group_end;
    for (const auto& unit : program.units())
      for (std::size_t j = i; j < group_end; ++j)
        run_one(*passes_[j], *unit,
                ctx.report.pass_timings[first_timing + j]);
    i = group_end;
  }
}

}  // namespace polaris
