#include "driver/pass_manager.h"

#include <chrono>
#include <sstream>

#include "analysis/purity.h"
#include "driver/compiler.h"
#include "ir/verifier.h"
#include "parser/printer.h"
#include "passes/constprop.h"
#include "passes/doall.h"
#include "passes/forwardsub.h"
#include "passes/induction.h"
#include "passes/inliner.h"
#include "passes/normalize.h"
#include "passes/privatization.h"
#include "passes/reduction.h"
#include "passes/strength.h"
#include "support/statistic.h"
#include "support/string_util.h"
#include "support/trace.h"
#include "symbolic/poly.h"

namespace polaris {

namespace {

/// Preserve everything when nothing changed, nothing when the IR did.
PreservedAnalyses preserved_if_unchanged(int changes) {
  return changes == 0 ? PreservedAnalyses::all() : PreservedAnalyses::none();
}

class InlinePass : public Pass {
 public:
  std::string name() const override { return "inline"; }
  bool program_scope() const override { return true; }
  PreservedAnalyses run(ProgramUnit&, AnalysisManager&,
                        PassContext& ctx) override {
    InlineResult r = inline_calls(ctx.program, ctx.opts,
                                  ctx.report.diagnostics);
    // Expansion splices statement clones carrying fresh process-global
    // ids into callers; renumbering here (the pass is serial and
    // whole-program) keeps every downstream `do#<id>` artifact a pure
    // function of the program.
    if (r.expanded != 0) ctx.program.renumber_ids();
    ctx.report.inlining.expanded += r.expanded;
    ctx.report.inlining.skipped += r.skipped;
    return preserved_if_unchanged(r.expanded);
  }
};

class ConstPropPass : public Pass {
 public:
  std::string name() const override { return "constprop"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager&,
                        PassContext&) override {
    return preserved_if_unchanged(propagate_constants(unit));
  }
};

class NormalizePass : public Pass {
 public:
  std::string name() const override { return "normalize"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager& am,
                        PassContext& ctx) override {
    return preserved_if_unchanged(
        normalize_loops(unit, ctx.opts, ctx.report.diagnostics, am));
  }
};

class InductionPass : public Pass {
 public:
  std::string name() const override { return "induction"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager& am,
                        PassContext& ctx) override {
    InductionResult r =
        substitute_inductions(unit, ctx.opts, ctx.report.diagnostics, am);
    ctx.report.induction.substituted += r.substituted;
    ctx.report.induction.rejected += r.rejected;
    return preserved_if_unchanged(r.substituted);
  }
};

class ForwardSubPass : public Pass {
 public:
  std::string name() const override { return "forwardsub"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager&,
                        PassContext& ctx) override {
    return preserved_if_unchanged(
        forward_substitute(unit, ctx.opts, ctx.report.diagnostics));
  }
};

class DoallPass : public Pass {
 public:
  std::string name() const override { return "doall"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager& am,
                        PassContext& ctx) override {
    DoallSummary ds = mark_doall_loops(&ctx.program, unit, ctx.opts,
                                       ctx.report.diagnostics, am, ctx.pure);
    ctx.report.doall.loops += ds.loops;
    ctx.report.doall.parallel += ds.parallel;
    ctx.report.doall.speculative += ds.speculative;
    // Annotation only: ParallelInfo and reduction flags do not affect any
    // cached flow fact.
    return PreservedAnalyses::all();
  }
};

class StrengthPass : public Pass {
 public:
  std::string name() const override { return "strength"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager& am,
                        PassContext& ctx) override {
    return preserved_if_unchanged(
        strength_reduce(unit, ctx.opts, ctx.report.diagnostics, am));
  }
};

/// Standalone reduction recognition (paper Section 3.2): flags reduction
/// statements on every loop without running the full DOALL driver.  In the
/// standard battery this runs as a sub-analysis of `doall`; registering it
/// separately lets `-passes=` ablations and fault-injection tests target
/// it directly.
class ReductionPass : public Pass {
 public:
  std::string name() const override { return "reduction"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager& am,
                        PassContext& ctx) override {
    for (DoStmt* loop : unit.stmts().loops())
      recognize_reductions(loop, ctx.opts, ctx.report.diagnostics, am);
    // Statement flags only; no cached flow fact depends on them.
    return PreservedAnalyses::all();
  }
};

/// Standalone privatization analysis (paper Section 3.4): records each
/// loop's private/lastvalue variables in its ParallelInfo without deciding
/// parallelism.  Like `reduction`, a sub-analysis of `doall` in the
/// standard battery.
class PrivatizationPass : public Pass {
 public:
  std::string name() const override { return "privatization"; }
  PreservedAnalyses run(ProgramUnit& unit, AnalysisManager& am,
                        PassContext& ctx) override {
    for (DoStmt* loop : unit.stmts().loops()) {
      PrivatizationResult r = analyze_privatization(
          unit, loop, ctx.opts, ctx.report.diagnostics, am);
      loop->par.private_vars = r.private_scalars;
      loop->par.private_vars.insert(loop->par.private_vars.end(),
                                    r.private_arrays.begin(),
                                    r.private_arrays.end());
      loop->par.lastvalue_vars = r.lastvalue_scalars;
    }
    return PreservedAnalyses::all();
  }
};

struct Registration {
  const char* name;
  std::unique_ptr<Pass> (*make)();
};

template <typename P>
std::unique_ptr<Pass> make_pass() {
  return std::make_unique<P>();
}

/// In standard battery order; standard() instantiates exactly this list.
const Registration kRegistry[] = {
    {"inline", make_pass<InlinePass>},
    {"constprop", make_pass<ConstPropPass>},
    {"normalize", make_pass<NormalizePass>},
    {"induction", make_pass<InductionPass>},
    {"forwardsub", make_pass<ForwardSubPass>},
    {"doall", make_pass<DoallPass>},
    {"strength", make_pass<StrengthPass>},
};

/// Available to `-passes=` specs but not part of the standard battery
/// (there they run inside `doall`).
const Registration kExtraRegistry[] = {
    {"reduction", make_pass<ReductionPass>},
    {"privatization", make_pass<PrivatizationPass>},
};

std::unique_ptr<Pass> create_pass(const std::string& name) {
  for (const Registration& r : kRegistry)
    if (name == r.name) return r.make();
  for (const Registration& r : kExtraRegistry)
    if (name == r.name) return r.make();
  return nullptr;
}

IrSize program_ir_size(const Program& program) {
  IrSize total;
  for (const auto& unit : program.units()) {
    IrSize s = unit_ir_size(*unit);
    total.stmts += s.stmts;
    total.exprs += s.exprs;
  }
  return total;
}

}  // namespace

IrSize unit_ir_size(const ProgramUnit& unit) {
  IrSize size;
  for (const Statement* s : unit.stmts()) {
    ++size.stmts;
    for (const Expression* e : s->expressions())
      walk(*e, [&](const Expression&) { ++size.exprs; });
  }
  return size;
}

void PassPipeline::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

std::vector<std::string> PassPipeline::pass_names() const {
  std::vector<std::string> out;
  for (const auto& p : passes_) out.push_back(p->name());
  return out;
}

PassPipeline PassPipeline::standard() {
  PassPipeline pipeline;
  for (const Registration& r : kRegistry) pipeline.add(r.make());
  return pipeline;
}

PassPipeline PassPipeline::parse(const std::string& spec) {
  PassPipeline pipeline;
  for (const std::string& raw : split(spec, ',')) {
    std::string name = trim(raw);
    if (name.empty())
      throw UserError("empty pass name in pipeline spec '" + spec + "'");
    std::unique_ptr<Pass> pass = create_pass(name);
    if (pass == nullptr)
      throw UserError("unknown pass '" + name + "' in pipeline spec (known: " +
                      join(registered_passes(), ",") + ")");
    pipeline.add(std::move(pass));
  }
  if (pipeline.empty())
    throw UserError("empty pipeline spec");
  return pipeline;
}

PassPipeline PassPipeline::from_options(const Options& opts) {
  return opts.pipeline_spec.empty() ? standard() : parse(opts.pipeline_spec);
}

std::vector<std::string> PassPipeline::registered_passes() {
  std::vector<std::string> out;
  for (const Registration& r : kRegistry) out.emplace_back(r.name);
  for (const Registration& r : kExtraRegistry) out.emplace_back(r.name);
  return out;
}

const char* to_string(PassFailure::Kind kind) {
  switch (kind) {
    case PassFailure::Kind::Assertion: return "assertion";
    case PassFailure::Kind::Verifier: return "verifier";
    case PassFailure::Kind::Budget: return "budget";
    case PassFailure::Kind::Resource: return "resource";
  }
  return "?";
}

namespace {

constexpr std::size_t kProgramScope = static_cast<std::size_t>(-1);

/// Outcome of one pass attempt (one ladder rung).
struct AttemptResult {
  bool failed = false;
  bool will_retry = false;  ///< rolled back without a PassFailure; ladder retries
  PassFailure::Kind kind = PassFailure::Kind::Assertion;
  GovernorTrigger trigger = GovernorTrigger::PassBudget;
  std::string message;
  bool injected = false;
};

/// One pass invocation under fault isolation, against the state of the
/// given PassContext — the parent compile's for program-scope passes, a
/// unit shard's inside unit-scope groups.  The unit is addressed by
/// index, not reference: a rollback swaps the unit object under the
/// program, and a reference captured before the pass ran would dangle.
///
/// `attempt_opts` are the (possibly ladder-degraded) switches the pass
/// runs with; everything else — fault recovery, budgets, verify-each —
/// is read from `ctx.opts`, the user's options.  On failure: a retryable
/// kind (Budget, Resource — never assertions, verifier violations, or
/// injected faults) with `allow_retry` rolls all state back and returns
/// will_retry for the caller's ladder; any other failure takes the full
/// fault-isolation path (PassFailure record, warning, crash bundle /
/// rethrow in no-recover mode).
AttemptResult run_attempt(Pass& pass, std::size_t unit_index,
                          PassTiming& timing, PassContext& ctx,
                          const Options& attempt_opts, bool allow_retry,
                          AnalysisManager& am,
                          const std::string& repro_spec) {
  Program& program = ctx.program;
  CompileContext& cc = ctx.cc;
  const bool whole_program = unit_index == kProgramScope;
  auto unit_ptr = [&]() -> ProgramUnit* {
    return whole_program ? program.main()
                         : program.units()[unit_index].get();
  };
  ProgramUnit* unit = unit_ptr();
  const std::string unit_name = unit->name();

  // Pre-pass state: deep IR snapshot (all units for program scope) plus
  // the report counters and diagnostics mark, so a failed pass leaves no
  // trace beyond its PassFailure record.
  std::vector<std::unique_ptr<ProgramUnit>> snapshot;
  SymbolMap<Symbol*> snap_map;  // original -> snapshot symbols
  {
    trace::TraceSpan snap_span(&cc.trace(), "snapshot", "fault");
    if (whole_program) {
      for (const auto& u : program.units())
        snapshot.push_back(u->clone(u->name(), &snap_map));
    } else {
      snapshot.push_back(unit->clone(unit_name, &snap_map));
    }
  }
  const InlineResult inl_before = ctx.report.inlining;
  const InductionResult ind_before = ctx.report.induction;
  const DoallSummary doall_before = ctx.report.doall;
  const std::size_t diags_before = ctx.report.diagnostics.all().size();
  const AnalysisManager::Stats stats_before = am.stats();
  const std::size_t atoms_before = AtomTable::current().size();
  const std::size_t gov_mark = cc.governor().event_mark();
  IrSize before =
      whole_program ? program_ir_size(program) : unit_ir_size(*unit);

  // The invocation's trace span plus the rollback marks: everything a
  // failed pass emitted (child spans, instants) and every statistic it
  // bumped is unwound along with the IR, so an injected fault leaves the
  // observability record identical to a run that skipped the pass — save
  // for the invocation span itself, tagged rolled_back, and one rollback
  // instant event.
  const std::size_t trace_mark = cc.trace().mark();
  const StatisticSnapshot stats_mark = cc.stats().snapshot();
  trace::TraceSpan pass_span(&cc.trace(), pass.name(), "pass");
  pass_span.arg("unit", unit_name);

  // Shared unwind for retries and recovered failures: IR, atoms, report
  // counters, diagnostics, trace, statistics, and the governor's
  // degradation events all return to the attempt's start.
  auto rollback_state = [&]() {
    ctx.report.diagnostics.truncate(diags_before);
    ctx.report.inlining = inl_before;
    ctx.report.induction = ind_before;
    ctx.report.doall = doall_before;
    // Atoms the failed pass interned would shift canonical term ordering
    // in every later polynomial round-trip; drop them, then transfer the
    // surviving atoms' ids to the snapshot's symbols so later passes see
    // the same atom order as a run that never attempted this pass.  Must
    // happen before the snapshot is swapped in: remap reads the original
    // symbols (snap_map keys), which the swap destroys.  The table is the
    // thread-bound one — a unit shard's own, so a concurrent rollback
    // never touches another worker's atoms.
    AtomTable::current().truncate(atoms_before);
    AtomTable::current().remap(snap_map);
    if (whole_program)
      program.reset_units(std::move(snapshot));
    else
      program.replace_unit_at(unit_index, std::move(snapshot.front()));
    am.invalidate_all();
    // Unwind the observability record too: drop trace events emitted
    // inside the failed pass (its own span emits later, at scope exit,
    // and survives), zero statistics back to the pre-pass snapshot, and
    // drop any degradation events (query bail-outs) the attempt recorded.
    cc.trace().truncate(trace_mark);
    cc.stats().restore(stats_mark);
    cc.governor().truncate_events(gov_mark);
    pass_span.arg("rolled_back", "true");
  };

  // Rollback (or, with recovery off, crash-bundle preparation) for one
  // finally-failed invocation.
  auto fail = [&](PassFailure::Kind kind, const std::string& message,
                  bool was_injected) {
    PassFailure f;
    f.pass = pass.name();
    f.unit = unit_name;
    f.kind = kind;
    f.message = message;
    f.injected = was_injected;
    f.recovered = ctx.opts.fault_recovery;
    if (!ctx.opts.fault_recovery) {
      ctx.report.diagnostics.truncate(diags_before);
      ctx.report.inlining = inl_before;
      ctx.report.induction = ind_before;
      ctx.report.doall = doall_before;
      CompileReport::CrashInfo ci;
      ci.pass = f.pass;
      ci.unit = f.unit;
      ci.passes_spec = repro_spec;
      std::ostringstream os;
      for (const auto& u : snapshot) print_unit(os, *u);
      ci.unit_source = os.str();
      ctx.report.crash = std::move(ci);
      ctx.report.failures.push_back(std::move(f));
      return;  // caller (re)throws
    }
    rollback_state();
    cc.trace().instant("rollback", "fault",
                       {{"pass", pass.name()},
                        {"unit", unit_name},
                        {"kind", to_string(kind)}});
    ctx.report.diagnostics.warning(
        "fault-isolation", f.pass + "/" + f.unit,
        std::string(to_string(kind)) +
            (was_injected ? " (injected)" : "") +
            " failure; pass rolled back, continuing without it: " +
            message);
    ++timing.failures;
    ctx.report.failures.push_back(std::move(f));
  };

  const auto t0 = std::chrono::steady_clock::now();
  AttemptResult result;
  PreservedAnalyses preserved = PreservedAnalyses::all();
  cc.fault().set_scope(pass.name(), unit_name);
  cc.governor().set_scope(pass.name(), unit_name);
  // The ladder's attempt switches: the simplifier has no Options
  // parameter, so its depth limit rides on the governor for the duration
  // of this attempt (restored below whatever happens).
  cc.governor().set_simplify_depth_limit(attempt_opts.max_simplify_depth);
  struct AttemptGuard {
    CompileContext& cc;
    int restore_depth;
    ~AttemptGuard() {
      cc.governor().set_simplify_depth_limit(restore_depth);
      cc.governor().clear_scope();
    }
  } attempt_guard{cc, ctx.opts.max_simplify_depth};
  PassContext attempt_ctx{program, attempt_opts, ctx.report, cc, ctx.pure};
  try {
    preserved = pass.run(*unit, am, attempt_ctx);
    // An armed injection that found fewer than N assertion sites in this
    // pass/unit still fires, at the unit boundary — so the recovery path
    // is exercisable for every pass regardless of its assertion density.
    if (cc.fault().consume_boundary_fault())
      throw InternalError(detail::kInjectedCond, "unit-boundary", 0,
                          "deterministic fault injection at unit boundary");
    cc.fault().clear_scope();
  } catch (const ResourceBlowup& blow) {
    // A resource ceiling tripped and escaped the conservative query
    // boundaries (e.g. inside a transformation's own symbolic rewriting,
    // where a partial rewrite must not be kept).  Retryable.
    cc.fault().clear_scope();
    result.failed = true;
    result.kind = PassFailure::Kind::Resource;
    result.trigger = blow.trigger();
    result.message = blow.what();
    if (!ctx.opts.fault_recovery) {
      fail(result.kind, result.message, false);
      throw InternalError("resource-exhausted", pass.name(), 0,
                          result.message);
    }
  } catch (const InternalError& e) {
    cc.fault().clear_scope();
    result.failed = true;
    result.kind = PassFailure::Kind::Assertion;
    result.message = e.what();
    result.injected = e.injected();
    fail(result.kind, result.message, result.injected);
    if (!ctx.opts.fault_recovery) throw;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  if (!result.failed) {
    am.invalidate(preserved);
    if (ctx.opts.pass_budget_ms > 0.0 && ms > ctx.opts.pass_budget_ms) {
      result.failed = true;
      result.kind = PassFailure::Kind::Budget;
      result.trigger = GovernorTrigger::PassBudget;
      // The wall budget has no throw site inside the governor, so the trip
      // is noted here at the detection boundary.
      cc.governor().note_trip(GovernorTrigger::PassBudget);
      std::ostringstream os;
      os << "pass ran " << ms << " ms, budget "
         << ctx.opts.pass_budget_ms << " ms";
      result.message = os.str();
      if (!allow_retry) {
        fail(PassFailure::Kind::Budget, result.message, false);
        if (!ctx.opts.fault_recovery)
          throw InternalError("pass-over-budget", pass.name(), 0,
                              result.message);
      }
    } else if (ctx.opts.verify_each) {
      std::vector<VerifierViolation> vs = whole_program
                                              ? verify_program(program, &cc)
                                              : verify_unit(*unit_ptr(), &cc);
      if (!vs.empty()) {
        result.failed = true;
        result.kind = PassFailure::Kind::Verifier;
        result.message = format_violations(vs);
        fail(PassFailure::Kind::Verifier, result.message, false);
        if (!ctx.opts.fault_recovery)
          throw InternalError("verify-each", pass.name(), 0, result.message);
      }
    }
  }

  // Ladder handoff: a retryable failure that has not been recorded yet
  // (Resource caught above, Budget detected just now) either rolls back
  // for the next rung or takes the final-drop path.
  if (result.failed &&
      (result.kind == PassFailure::Kind::Resource ||
       result.kind == PassFailure::Kind::Budget) &&
      ctx.opts.fault_recovery) {
    if (allow_retry) {
      result.will_retry = true;
      rollback_state();
      cc.trace().instant("ladder-retry", "governor",
                         {{"pass", pass.name()},
                          {"unit", unit_name},
                          {"trigger", to_string(result.trigger)}});
    } else if (result.kind == PassFailure::Kind::Resource) {
      // Budget's final drop was recorded above; Resource's happens here.
      fail(result.kind, result.message, false);
    }
  }

  unit = unit_ptr();  // a rollback replaced the unit object
  IrSize after =
      whole_program ? program_ir_size(program) : unit_ir_size(*unit);
  timing.ms += ms;
  timing.diags += static_cast<int>(ctx.report.diagnostics.all().size() -
                                   diags_before);
  timing.stmt_delta += after.stmts - before.stmts;
  timing.expr_delta += after.exprs - before.exprs;
  timing.analysis_queries += am.stats().queries - stats_before.queries;
  timing.analysis_hits += am.stats().hits - stats_before.hits;
  if (cc.trace().collecting()) {
    const AnalysisManager::Stats s = am.stats();
    cc.trace().counter("analysis-cache",
                       {{"queries", static_cast<std::uint64_t>(s.queries)},
                        {"hits", static_cast<std::uint64_t>(s.hits)}});
  }
  return result;
}

/// One (pass, unit) under fault isolation *and* the degradation ladder:
/// up to kLadderRungs attempts on progressively cheaper switches for
/// resource failures, then the drop.  Exactly one PassTiming run and at
/// most one PassFailure are recorded per call, whatever the rung count —
/// intermediate rungs surface as DegradationEvents and remarks only.
void run_one(Pass& pass, std::size_t unit_index, PassTiming& timing,
             PassContext& ctx, AnalysisManager& am,
             const std::string& repro_spec) {
  CompileContext& cc = ctx.cc;
  const bool ladder_on =
      ctx.opts.fault_recovery && ctx.opts.degradation_ladder;
  AttemptResult r;
  int rung = 0;
  for (;; ++rung) {
    const bool last_rung = !ladder_on || rung >= kLadderRungs - 1;
    const Options attempt_opts = degraded_options(ctx.opts, rung);
    r = run_attempt(pass, unit_index, timing, ctx, attempt_opts,
                    /*allow_retry=*/!last_rung, am, repro_spec);
    if (!r.will_retry) break;

    const std::string unit_name =
        unit_index == kProgramScope
            ? ctx.program.main()->name()
            : ctx.program.units()[unit_index]->name();
    const int next_rung = rung + 1;
    DegradationEvent ev;
    ev.pass = pass.name();
    ev.unit = unit_name;
    ev.trigger = to_string(r.trigger);
    ev.action = std::string("retry-") + ladder_rung_name(next_rung);
    ev.rung = next_rung;
    // Wall-clock details are scrubbed for byte-determinism; resource
    // details (tick/term/atom counts) are deterministic and kept.
    ev.detail = r.kind == PassFailure::Kind::Budget
                    ? "pass exceeded its wall budget"
                    : r.message;
    cc.governor().record_event(std::move(ev));
    ctx.report.diagnostics.remark(
        RemarkKind::Analysis, "governor", pass.name() + "/" + unit_name,
        "pass-degraded",
        std::string("resource overrun [") + to_string(r.trigger) +
            "]; retrying " + pass.name() + " with " +
            ladder_rung_name(next_rung) + " switches",
        {{"pass", pass.name()},
         {"rung", ladder_rung_name(next_rung)},
         {"trigger", to_string(r.trigger)}});
  }

  if (r.failed && ctx.opts.fault_recovery && !r.injected &&
      (r.kind == PassFailure::Kind::Budget ||
       r.kind == PassFailure::Kind::Resource)) {
    const std::string unit_name =
        unit_index == kProgramScope
            ? ctx.program.main()->name()
            : ctx.program.units()[unit_index]->name();
    DegradationEvent ev;
    ev.pass = pass.name();
    ev.unit = unit_name;
    ev.trigger = to_string(r.trigger);
    ev.action = "drop-pass";
    ev.rung = rung;
    ev.detail = r.kind == PassFailure::Kind::Budget
                    ? "every ladder rung exceeded the wall budget"
                    : r.message;
    cc.governor().record_event(std::move(ev));
    ctx.report.diagnostics.remark(
        RemarkKind::Analysis, "governor",
        pass.name() + "/" + unit_name, "pass-dropped",
        std::string("resource overrun [") + to_string(r.trigger) +
            "] persisted through every ladder rung; " + pass.name() +
            " dropped on " + unit_name,
        {{"pass", pass.name()}, {"trigger", to_string(r.trigger)}});
  }
  ++timing.runs;
}

/// Per-unit compilation state.  Everything a worker thread touches while
/// running one unit through a pass group lives here (or in the unit
/// itself); nothing is shared with other workers.
struct UnitShard {
  CompileContext cc;
  CompileReport report;          ///< fragment: counters, diags, failures
  AnalysisManager am{&cc};
  AtomTable atoms;               ///< per-shard so rollback stays isolated
  std::vector<PassTiming> timings;  ///< one row per pass in the group
  std::exception_ptr error;      ///< set only in no-recover mode
};

/// Sums a shard's report fragment into the parent report.  Called in unit
/// index order, which fixes the order of diagnostics and failures.
void merge_report_fragment(CompileReport& into, CompileReport& shard) {
  into.inlining.expanded += shard.inlining.expanded;
  into.inlining.skipped += shard.inlining.skipped;
  into.induction.substituted += shard.induction.substituted;
  into.induction.rejected += shard.induction.rejected;
  into.doall.loops += shard.doall.loops;
  into.doall.parallel += shard.doall.parallel;
  into.doall.speculative += shard.doall.speculative;
  into.diagnostics.append(shard.diagnostics);
  for (PassFailure& f : shard.failures) into.failures.push_back(std::move(f));
  if (shard.crash.has_value() && !into.crash.has_value())
    into.crash = std::move(shard.crash);
}

}  // namespace

void PassPipeline::run_unit_group(std::size_t group_begin,
                                  std::size_t group_end,
                                  std::size_t first_timing, Program& program,
                                  AnalysisManager& am, PassContext& ctx) const {
  const std::size_t n_units = program.units().size();
  const std::size_t n_passes = group_end - group_begin;
  const std::string repro_spec = ctx.opts.pipeline_spec.empty()
                                     ? join(pass_names(), ",")
                                     : ctx.opts.pipeline_spec;

  // Purity is the one cross-unit read inside a unit-scope group (DOALL
  // asks whether calls serialize a loop).  Snapshot it here, while the IR
  // is quiescent — workers are about to start rewriting their units.
  bool group_has_doall = false;
  for (std::size_t j = group_begin; j < group_end; ++j)
    if (passes_[j]->name() == "doall") group_has_doall = true;
  std::set<std::string> pure_snapshot;
  if (group_has_doall && ctx.opts.pure_functions)
    pure_snapshot = pure_functions(program);

  // Shard setup happens on this thread, in unit order, before any worker
  // runs: collectors adopt the parent's trace epoch and injectors the
  // parent's armed spec.  Resource ceilings are per-shard (the PR 5
  // histogram precedent), and the compile-fuel budget is an equal split
  // of the parent's *remaining* fuel — computed here, while execution is
  // still serial, so the shares (and with them every degradation point)
  // are identical at any `-jobs=N`.
  GovernorLimits shard_limits = limits_from_options(ctx.opts);
  shard_limits.fuel = ctx.cc.governor().shard_fuel_share(n_units);
  std::vector<std::unique_ptr<UnitShard>> shards;
  shards.reserve(n_units);
  for (std::size_t ui = 0; ui < n_units; ++ui) {
    auto sh = std::make_unique<UnitShard>();
    sh->atoms.set_canon_cache_enabled(ctx.opts.symbolic_canon_cache);
    sh->cc.trace().start_shard_of(ctx.cc.trace());
    if (ctx.cc.fault().armed()) sh->cc.fault().arm(ctx.cc.fault().spec());
    sh->cc.governor().configure(shard_limits);
    sh->cc.bind_diagnostics(sh->report.diagnostics);
    sh->timings.resize(n_passes);
    for (std::size_t j = 0; j < n_passes; ++j)
      sh->timings[j].pass = passes_[group_begin + j]->name();
    shards.push_back(std::move(sh));
  }

  // Run every unit through the whole group.  The worker binds the shard's
  // context and atom table to its thread, so `++statistic`, p_assert
  // fault ticks, and polynomial interning all land in shard state.
  auto run_unit = [&](std::size_t ui) {
    UnitShard& sh = *shards[ui];
    CompileContext::Scope cc_scope(&sh.cc);
    AtomTable::Scope atom_scope(&sh.atoms);
    PassContext shard_ctx{program,   ctx.opts,       sh.report,
                          sh.cc,     &pure_snapshot};
    try {
      for (std::size_t j = group_begin; j < group_end; ++j)
        run_one(*passes_[j], ui, sh.timings[j - group_begin], shard_ctx,
                sh.am, repro_spec);
    } catch (...) {
      // Only reachable with fault recovery off; recovery handles failures
      // inside run_one.  The shard is left as-is and judged at merge.
      sh.error = std::current_exception();
    }
  };

  const int jobs =
      static_cast<int>(std::min<std::size_t>(
          n_units, static_cast<std::size_t>(std::max(1, ctx.opts.jobs))));
  if (jobs <= 1) {
    for (std::size_t ui = 0; ui < n_units; ++ui) {
      run_unit(ui);
      // No-recover parity with the sequential driver: units after an
      // aborting one are never attempted.
      if (shards[ui]->error != nullptr) break;
    }
  } else {
    // The compilation's persistent pool (shared with the parallel parse):
    // workers stay alive across pass groups, so a pipeline with many
    // unit-scope groups pays thread start-up once instead of per group,
    // and idle workers steal queued units instead of spinning on a shared
    // counter.
    ctx.cc.pool().run(n_units, jobs, run_unit);
  }

  // Deterministic merge, strictly in unit index order: report artifacts,
  // timing rows, analysis accounting, then the shard's counters and trace
  // events.  With recovery off the lowest failing unit index wins — its
  // shard is merged (it carries the crash bundle), later shards are
  // discarded, and the original exception resumes its flight.
  for (std::size_t ui = 0; ui < n_units; ++ui) {
    UnitShard& sh = *shards[ui];
    for (std::size_t j = 0; j < n_passes; ++j) {
      PassTiming& dst = ctx.report.pass_timings[first_timing + group_begin + j];
      const PassTiming& src = sh.timings[j];
      dst.runs += src.runs;
      dst.ms += src.ms;
      dst.diags += src.diags;
      dst.stmt_delta += src.stmt_delta;
      dst.expr_delta += src.expr_delta;
      dst.analysis_queries += src.analysis_queries;
      dst.analysis_hits += src.analysis_hits;
      dst.failures += src.failures;
    }
    merge_report_fragment(ctx.report, sh.report);
    am.absorb_stats(sh.am.stats());
    ctx.cc.merge_shard(sh.cc);
    if (sh.error != nullptr) std::rethrow_exception(sh.error);
  }

  // The parent manager's caches key on Statement pointers the shards just
  // rewrote; drop them (without perturbing the accounting) so a later
  // program-scope pass can never read a stale fact.
  am.clear_caches();
}

void PassPipeline::run(Program& program, AnalysisManager& am,
                       PassContext& ctx) const {
  // Arm the compile's resource ceilings for the pipeline's duration.
  // Program-scope passes charge the parent's meter directly; unit groups
  // split the remaining fuel across their shards.  Disarmed again after
  // the last pass so post-pipeline work (final verification, report
  // assembly, printing) can never trip a ceiling it has no recovery for.
  ctx.cc.governor().configure(limits_from_options(ctx.opts));
  const std::size_t first_timing = ctx.report.pass_timings.size();
  for (const auto& pass : passes_) {
    PassTiming t;
    t.pass = pass->name();
    ctx.report.pass_timings.push_back(std::move(t));
  }

  const std::string repro_spec = ctx.opts.pipeline_spec.empty()
                                     ? join(pass_names(), ",")
                                     : ctx.opts.pipeline_spec;

  // Program-scope passes run alone, serially, against the parent context;
  // maximal runs of unit-scope passes are grouped and fanned out over the
  // units (every unit sees the whole group in order — the seed driver's
  // order — and jobs=1 takes the identical shard path inline).
  std::size_t i = 0;
  while (i < passes_.size()) {
    if (passes_[i]->program_scope()) {
      run_one(*passes_[i], kProgramScope,
              ctx.report.pass_timings[first_timing + i], ctx, am, repro_spec);
      ++i;
      continue;
    }
    std::size_t group_end = i;
    while (group_end < passes_.size() &&
           !passes_[group_end]->program_scope())
      ++group_end;
    run_unit_group(i, group_end, first_timing, program, am, ctx);
    i = group_end;
  }
  ctx.cc.governor().configure(GovernorLimits{});
}

}  // namespace polaris
