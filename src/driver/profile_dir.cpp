#include "driver/profile_dir.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <vector>

#include "driver/compiler.h"
#include "driver/report_json.h"
#include "suite/suite.h"
#include "support/worker_pool.h"

namespace polaris {

int run_profile_suite(const std::string& dir, const Options& base) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "polaris: cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  const std::vector<BenchProgram>& suite = benchmark_suite();
  std::atomic<int> failures{0};
  std::mutex io_mu;
  auto compile_one = [&](std::size_t i) {
    const BenchProgram& bp = suite[i];
    Options opts = base;
    opts.jobs = 1;
    opts.trace_path = (fs::path(dir) / (bp.name + ".trace.json")).string();
    Compiler compiler(opts);
    CompileReport rep;
    try {
      compiler.compile(bp.source, &rep);
    } catch (const std::exception& e) {
      std::scoped_lock lk(io_mu);
      std::fprintf(stderr, "polaris: %s: compile failed: %s\n",
                   bp.name.c_str(), e.what());
      ++failures;
      return;
    }
    std::ofstream rj(fs::path(dir) / (bp.name + ".report.json"));
    rj << compile_report_json(rep) << "\n";
    std::ofstream rm(fs::path(dir) / (bp.name + ".remarks.jsonl"));
    rep.diagnostics.print_remarks(rm);
    if (!rj || !rm) {
      std::scoped_lock lk(io_mu);
      std::fprintf(stderr, "polaris: %s: cannot write artifacts in %s\n",
                   bp.name.c_str(), dir.c_str());
      ++failures;
    }
  };
  // The fan-out pool is local to this call (each compile is pinned to
  // jobs=1, so per-compile pools are never created); code identity never
  // depends on which worker compiles it — parse-time id renumbering makes
  // every artifact a pure function of the code's source.
  WorkerPool pool;
  pool.run(suite.size(), std::max(1, base.jobs), compile_one);
  if (failures.load() != 0) return 1;
  std::fprintf(stderr, "polaris: wrote %zu artifact sets to %s\n",
               suite.size(), dir.c_str());
  return 0;
}

}  // namespace polaris
