// The pass-manager layer: the restructuring battery as data, not code.
//
// The seed hard-coded the Polaris pipeline as a fixed call sequence in
// Compiler::transform.  This layer reifies each transformation as a Pass
// with a uniform signature (the LLVM PassInfoMixin/PreservedAnalyses
// idiom), assembles them into a PassPipeline — either the named standard
// battery or a textual spec such as
//
//     -passes=inline,constprop,normalize,induction,forwardsub,doall,strength
//
// — and runs the pipeline with per-pass instrumentation: wall time,
// diagnostics emitted, IR statement/expression deltas, and analysis-cache
// hit rates.  Ablations reorder or drop passes without code edits; the
// AnalysisManager carries flow facts across passes and is invalidated
// according to each pass's PreservedAnalyses declaration.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/analysis_manager.h"
#include "ir/program.h"
#include "support/context.h"
#include "support/diagnostics.h"
#include "support/options.h"

namespace polaris {

struct CompileReport;  // driver/compiler.h; carries the pass result counters

/// Everything a pass may read or update besides the unit it transforms.
/// Under `-jobs=N` each unit shard gets its own PassContext whose report
/// and cc are the shard's — a pass never shares mutable state with
/// another worker.
struct PassContext {
  Program& program;        ///< whole program (inliner, purity analysis)
  const Options& opts;     ///< transformation switches
  CompileReport& report;   ///< result counters + diagnostics sink
  CompileContext& cc;      ///< stats/trace/fault state of this (shard's) compile
  /// Pure-function names, snapshotted by the pass manager before a
  /// unit-scope group fans out (purity reads every unit; workers are
  /// rewriting theirs).  Null outside unit-scope groups — compute on
  /// demand, the IR is quiescent.
  const std::set<std::string>* pure = nullptr;
};

/// One restructuring pass.  Unit-scope passes run once per program unit;
/// program-scope passes (the inliner) run once for the whole program and
/// receive the main unit as `unit`.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  virtual bool program_scope() const { return false; }
  /// Transforms `unit` and declares which cached analyses survived.
  virtual PreservedAnalyses run(ProgramUnit& unit, AnalysisManager& am,
                                PassContext& ctx) = 0;
};

/// Per-pass instrumentation, accumulated over every unit the pass ran on.
struct PassTiming {
  std::string pass;
  int runs = 0;             ///< invocations (units, or 1 for program scope)
  double ms = 0.0;          ///< total wall time
  int diags = 0;            ///< diagnostics emitted
  long stmt_delta = 0;      ///< IR statements added minus removed
  long expr_delta = 0;      ///< IR expression nodes added minus removed
  std::uint64_t analysis_queries = 0;  ///< AnalysisManager lookups
  std::uint64_t analysis_hits = 0;     ///< answered from cache
  int failures = 0;         ///< invocations rolled back (fault isolation)
};

/// One isolated pass failure.  With fault recovery on (the default), the
/// pass was rolled back on that unit and compilation continued — the LRPD
/// shape: the program still compiles, just without this pass's
/// transformation on this unit.  With recovery off, the failure aborted
/// the compile (recovered = false) after stashing a repro bundle in
/// CompileReport::crash.
struct PassFailure {
  enum class Kind {
    Assertion,  ///< a p_assert fired inside the pass (or was injected)
    Verifier,   ///< the post-pass IR verifier found violations
    Budget,     ///< the pass exceeded Options::pass_budget_ms on the unit
    Resource,   ///< a ResourceGovernor ceiling tripped and escaped to the
                ///< pass boundary (every degradation-ladder rung failed)
  };
  std::string pass;
  std::string unit;
  Kind kind = Kind::Assertion;
  std::string message;
  bool injected = false;  ///< raised by deterministic fault injection
  bool recovered = true;
};

const char* to_string(PassFailure::Kind kind);

/// IR size metric used for the per-pass deltas.
struct IrSize {
  long stmts = 0;
  long exprs = 0;
};
IrSize unit_ir_size(const ProgramUnit& unit);

class PassPipeline {
 public:
  void add(std::unique_ptr<Pass> pass);
  bool empty() const { return passes_.empty(); }
  std::vector<std::string> pass_names() const;

  /// The standard Polaris battery.  Options::polaris() and
  /// Options::baseline() both resolve to this pipeline — the switches
  /// inside Options decide what each pass actually does.
  static PassPipeline standard();

  /// Builds a pipeline from a comma-separated spec ("constprop,doall").
  /// Throws UserError on an empty component or unknown pass name.
  static PassPipeline parse(const std::string& spec);

  /// The pipeline `opts` selects: parse(opts.pipeline_spec) when set,
  /// standard() otherwise.
  static PassPipeline from_options(const Options& opts);

  /// Registered pass names: the standard battery followed by the extra
  /// analysis passes available to `-passes=` specs only ("reduction",
  /// "privatization" — sub-analyses of `doall` in the standard battery).
  static std::vector<std::string> registered_passes();

  /// Runs the pipeline over `program`.  Consecutive unit-scope passes are
  /// grouped and applied unit-by-unit (each unit sees the whole group in
  /// order before the next unit starts — the order the seed driver used);
  /// program-scope passes form their own group.  Appends one PassTiming
  /// per pipeline position to `ctx.report.pass_timings` and invalidates
  /// `am` per each pass's PreservedAnalyses.
  ///
  /// Parallel execution: unit-scope groups ALWAYS run through per-unit
  /// shards — each unit gets a fresh CompileContext (trace epoch shared
  /// with the parent), CompileReport fragment, AnalysisManager, and
  /// AtomTable, all bound to the worker thread while the unit's passes
  /// run.  `ctx.opts.jobs` workers pull unit indices from a shared
  /// counter (1 = inline on the calling thread, same code path).  Shards
  /// merge into the parent in unit index order, so every report artifact
  /// is byte-identical regardless of worker count or completion order.
  ///
  /// Fault isolation: every pass invocation runs against a pre-pass deep
  /// snapshot of its unit (all units for program-scope passes).  An
  /// InternalError thrown by the pass, a `-verify-each` verifier
  /// violation, or a `-pass-budget-ms` overrun rolls the unit back to the
  /// snapshot, fully invalidates `am`, unwinds the pass's diagnostics and
  /// result counters, records a PassFailure in `ctx.report.failures`, and
  /// continues with the remaining passes.  With Options::fault_recovery
  /// off, the failure propagates instead after stashing a repro bundle in
  /// `ctx.report.crash`.  With `-jobs=N` a failing unit unwinds only its
  /// own shard; in no-recover mode the lowest-unit-index failure wins
  /// deterministically and later shards are discarded unmerged.
  ///
  /// Degradation ladder (ResourceGovernor): a *resource* failure — a
  /// `-pass-budget-ms` overrun or a ResourceBlowup that escaped the
  /// conservative query boundaries — does not drop the pass immediately.
  /// The (pass, unit) is rolled back and retried on progressively cheaper
  /// option rungs (degraded_options: "reduced", then "floor") before the
  /// final drop; only the final drop records a PassFailure (so
  /// `failures.size()` still counts dropped invocations, one per (pass,
  /// unit)), while each retry and the drop are recorded as
  /// DegradationEvents on the governor plus `pass-degraded` /
  /// `pass-dropped` remarks.  Assertion and verifier failures never
  /// ladder, injected faults never ladder, and `-no-degrade`
  /// (Options::degradation_ladder = false) restores the immediate-drop
  /// behavior.  Compile fuel (`-compile-budget-ms`) is split equally
  /// across unit shards before workers start, keeping every degradation
  /// point — and thus every artifact — byte-identical at any `-jobs=N`.
  void run(Program& program, AnalysisManager& am, PassContext& ctx) const;

 private:
  void run_unit_group(std::size_t group_begin, std::size_t group_end,
                      std::size_t first_timing, Program& program,
                      AnalysisManager& am, PassContext& ctx) const;

  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace polaris
