// `-profile-dir=DIR` implementation: compile every benchmark-suite code
// with the caller's options and drop the per-code artifact triple
// (<code>.report.json, <code>.remarks.jsonl, <code>.trace.json) into DIR
// — the input set `polaris-insight aggregate` consumes.
//
// Lives in the driver library (not main.cpp) so tests and tools can run
// the suite profiler in-process; the fan-out runs on a WorkerPool with
// each individual compile pinned to jobs=1, so the parallelism lives
// *across* codes and every artifact is byte-identical to a serial run
// (modulo wall-clock duration fields, which insight's diff scrubs).
#pragma once

#include <string>

#include "support/options.h"

namespace polaris {

/// Compiles the whole suite into `dir` with `base`'s option set, fanning
/// codes over `base.jobs` pool workers.  Returns a process exit code:
/// 0 on success, 1 when any code failed to compile or write.
int run_profile_suite(const std::string& dir, const Options& base);

}  // namespace polaris
