// CompileReport -> stable-schema JSON (`polaris -report-json=FILE`).
//
// The full decision record of one compilation — per-loop outcomes with
// structured reason codes, optimization remarks, pass timings, fault
// failures, statistic deltas, and analysis-cache accounting — as a single
// JSON document the bench harness and CI can consume without scraping
// text output.
//
// Schema stability: the document carries {"schema": "polaris-compile-
// report", "version": N}.  Additions bump nothing (consumers must ignore
// unknown fields); renames/removals/semantic changes bump `version`.
// The current schema is documented in DESIGN.md §7.
#pragma once

#include <string>

#include "driver/compiler.h"
#include "support/json.h"

namespace polaris {

/// Current `-report-json` schema version.
inline constexpr int kCompileReportSchemaVersion = 1;

/// Builds the JSON document for `report`.
JsonValue compile_report_to_json(const CompileReport& report);

/// compile_report_to_json(...).serialize() — one compact JSON document.
std::string compile_report_json(const CompileReport& report);

}  // namespace polaris
