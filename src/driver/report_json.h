// CompileReport -> stable-schema JSON (`polaris -report-json=FILE`).
//
// The full decision record of one compilation — per-loop outcomes with
// structured reason codes, optimization remarks, pass timings, fault
// failures, statistic deltas, and analysis-cache accounting — as a single
// JSON document the bench harness and CI can consume without scraping
// text output.
//
// Schema stability: the document carries {"schema": "polaris-compile-
// report", "version": N}.  Additions bump nothing (consumers must ignore
// unknown fields); renames/removals/semantic changes bump `version`.
// The current schema is documented in DESIGN.md §7.
#pragma once

#include <string>

#include "driver/compiler.h"
#include "support/json.h"

namespace polaris {

/// Current `-report-json` schema version.
inline constexpr int kCompileReportSchemaVersion = 1;

/// Builds the JSON document for `report`.
JsonValue compile_report_to_json(const CompileReport& report);

/// compile_report_to_json(...).serialize() — one compact JSON document.
std::string compile_report_json(const CompileReport& report);

/// Current POLARIS_BENCH_JSON row schema version.  Every row the bench
/// binaries append is one JSONL line starting
/// {"schema":"polaris-bench-row","version":1,"bench":NAME,...} so
/// polaris-insight can ingest a bench log without per-bench parsers.
inline constexpr int kBenchRowSchemaVersion = 1;

/// Starts a bench row: the schema/version header plus the bench name.
/// Callers `set` their payload fields and hand the row to
/// append_bench_row / append_bench_row_env.
JsonValue bench_row(const std::string& bench);

/// Appends `row` as one JSONL line to `path` (create/append).  Returns
/// false when the file cannot be opened — benches treat that like an
/// unset POLARIS_BENCH_JSON and keep running.
bool append_bench_row(const std::string& path, const JsonValue& row);

/// append_bench_row to $POLARIS_BENCH_JSON; no-op when the variable is
/// unset or empty.
void append_bench_row_env(const JsonValue& row);

}  // namespace polaris
