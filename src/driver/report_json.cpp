#include "driver/report_json.h"

#include <cstdio>
#include <cstdlib>

namespace polaris {

namespace {

JsonValue loop_to_json(const LoopReport& lr) {
  JsonValue loop = JsonValue::object();
  loop.set("unit", JsonValue::str(lr.unit));
  loop.set("loop", JsonValue::str(lr.loop));
  loop.set("depth", JsonValue::num(lr.depth));
  loop.set("parallel", JsonValue::boolean(lr.parallel));
  loop.set("speculative", JsonValue::boolean(lr.speculative));
  loop.set("reason_code", JsonValue::str(lr.reason_code));
  loop.set("serial_reason", JsonValue::str(lr.serial_reason));
  JsonValue dep = JsonValue::object();
  dep.set("pairs", JsonValue::num(lr.dep_pairs));
  dep.set("gcd", JsonValue::num(lr.dep_by_gcd));
  dep.set("banerjee", JsonValue::num(lr.dep_by_banerjee));
  dep.set("rangetest", JsonValue::num(lr.dep_by_rangetest));
  loop.set("dep", std::move(dep));
  return loop;
}

JsonValue remark_to_json(const Diagnostic& d) {
  JsonValue remark = JsonValue::object();
  remark.set("kind", JsonValue::str(to_string(d.remark)));
  remark.set("pass", JsonValue::str(d.pass));
  remark.set("context", JsonValue::str(d.context));
  remark.set("reason", JsonValue::str(d.reason));
  remark.set("message", JsonValue::str(d.message));
  JsonValue args = JsonValue::object();
  for (const RemarkArg& a : d.args) args.set(a.key, JsonValue::str(a.value));
  remark.set("args", std::move(args));
  return remark;
}

JsonValue timing_to_json(const PassTiming& t) {
  JsonValue timing = JsonValue::object();
  timing.set("pass", JsonValue::str(t.pass));
  timing.set("runs", JsonValue::num(t.runs));
  timing.set("ms", JsonValue::num(t.ms));
  timing.set("diags", JsonValue::num(t.diags));
  timing.set("stmt_delta", JsonValue::num(static_cast<std::int64_t>(t.stmt_delta)));
  timing.set("expr_delta", JsonValue::num(static_cast<std::int64_t>(t.expr_delta)));
  timing.set("analysis_queries", JsonValue::num(t.analysis_queries));
  timing.set("analysis_hits", JsonValue::num(t.analysis_hits));
  timing.set("failures", JsonValue::num(t.failures));
  return timing;
}

JsonValue failure_to_json(const PassFailure& f) {
  JsonValue failure = JsonValue::object();
  failure.set("pass", JsonValue::str(f.pass));
  failure.set("unit", JsonValue::str(f.unit));
  failure.set("kind", JsonValue::str(to_string(f.kind)));
  failure.set("message", JsonValue::str(f.message));
  failure.set("injected", JsonValue::boolean(f.injected));
  failure.set("recovered", JsonValue::boolean(f.recovered));
  return failure;
}

JsonValue degradation_to_json(const DegradationEvent& e) {
  JsonValue ev = JsonValue::object();
  ev.set("pass", JsonValue::str(e.pass));
  ev.set("unit", JsonValue::str(e.unit));
  ev.set("trigger", JsonValue::str(e.trigger));
  ev.set("action", JsonValue::str(e.action));
  ev.set("site", JsonValue::str(e.site));
  ev.set("rung", JsonValue::num(e.rung));
  ev.set("count", JsonValue::num(e.count));
  ev.set("detail", JsonValue::str(e.detail));
  return ev;
}

}  // namespace

JsonValue compile_report_to_json(const CompileReport& report) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", JsonValue::str("polaris-compile-report"));
  doc.set("version", JsonValue::num(kCompileReportSchemaVersion));

  JsonValue summary = JsonValue::object();
  summary.set("loops", JsonValue::num(report.doall.loops));
  summary.set("parallel", JsonValue::num(report.doall.parallel));
  summary.set("speculative", JsonValue::num(report.doall.speculative));
  summary.set("calls_inlined", JsonValue::num(report.inlining.expanded));
  summary.set("inductions_substituted",
              JsonValue::num(report.induction.substituted));
  doc.set("summary", std::move(summary));

  JsonValue loops = JsonValue::array();
  for (const LoopReport& lr : report.loops) loops.add(loop_to_json(lr));
  doc.set("loops", std::move(loops));

  JsonValue remarks = JsonValue::array();
  for (const Diagnostic* d : report.diagnostics.remarks())
    remarks.add(remark_to_json(*d));
  doc.set("remarks", std::move(remarks));

  JsonValue timings = JsonValue::array();
  for (const PassTiming& t : report.pass_timings)
    timings.add(timing_to_json(t));
  doc.set("pass_timings", std::move(timings));

  JsonValue failures = JsonValue::array();
  for (const PassFailure& f : report.failures)
    failures.add(failure_to_json(f));
  doc.set("failures", std::move(failures));

  // Additive since version 1: resource-governor degradation sequence
  // (empty array for ungoverned compiles).
  JsonValue degradations = JsonValue::array();
  for (const DegradationEvent& e : report.degradations)
    degradations.add(degradation_to_json(e));
  doc.set("degradations", std::move(degradations));

  JsonValue stats = JsonValue::array();
  for (const StatisticValue& s : report.stats) {
    JsonValue stat = JsonValue::object();
    stat.set("component", JsonValue::str(s.component));
    stat.set("name", JsonValue::str(s.name));
    stat.set("value", JsonValue::num(s.value));
    stats.add(std::move(stat));
  }
  doc.set("stats", std::move(stats));

  JsonValue cache = JsonValue::object();
  cache.set("queries", JsonValue::num(report.analysis.queries));
  cache.set("hits", JsonValue::num(report.analysis.hits));
  cache.set("recomputes", JsonValue::num(report.analysis.recomputes));
  cache.set("invalidations", JsonValue::num(report.analysis.invalidations));
  doc.set("analysis_cache", std::move(cache));

  // Additive since version 1: governor fuel accounting.  Trip keys are
  // the GovernorTrigger to_string values.
  JsonValue resource = JsonValue::object();
  resource.set("fuel_limit", JsonValue::num(report.resource.fuel_limit));
  resource.set("fuel_spent", JsonValue::num(report.resource.fuel_spent));
  JsonValue trips = JsonValue::object();
  trips.set("pass-budget", JsonValue::num(report.resource.trips_pass_budget));
  trips.set("compile-fuel",
            JsonValue::num(report.resource.trips_compile_fuel));
  trips.set("poly-terms", JsonValue::num(report.resource.trips_poly_terms));
  trips.set("atom-ceiling",
            JsonValue::num(report.resource.trips_atom_ceiling));
  resource.set("trips", std::move(trips));
  doc.set("resource", std::move(resource));

  return doc;
}

std::string compile_report_json(const CompileReport& report) {
  return compile_report_to_json(report).serialize();
}

JsonValue bench_row(const std::string& bench) {
  JsonValue row = JsonValue::object();
  row.set("schema", JsonValue::str("polaris-bench-row"));
  row.set("version", JsonValue::num(kBenchRowSchemaVersion));
  row.set("bench", JsonValue::str(bench));
  return row;
}

bool append_bench_row(const std::string& path, const JsonValue& row) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  std::fprintf(f, "%s\n", row.serialize().c_str());
  std::fclose(f);
  return true;
}

void append_bench_row_env(const JsonValue& row) {
  const char* path = std::getenv("POLARIS_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  append_bench_row(path, row);
}

}  // namespace polaris
