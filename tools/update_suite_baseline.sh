#!/bin/sh
# Regenerates tests/data/suite_profile_baseline.json — the pinned
# polaris-suite-profile the insight_suite_baseline ctest diffs every run
# against.  Refreshes are deliberate: run this after an intentional
# parallelization change, review the printed diff, and commit the new
# baseline with the change that caused it.
#
# usage: tools/update_suite_baseline.sh [BUILD_DIR]   (default: build)
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
polaris="$build/src/driver/polaris"
insight="$build/src/insight/polaris-insight"
baseline="$repo/tests/data/suite_profile_baseline.json"

for bin in "$polaris" "$insight"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (cmake --build $build)" >&2
    exit 1
  fi
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$polaris" -profile-dir="$tmp/artifacts"
"$insight" aggregate "$tmp/artifacts" -o "$tmp/profile.json"

if [ -f "$baseline" ]; then
  echo "--- diff against the current baseline ---"
  # Regressions here are *expected* when the refresh is intentional; the
  # table is printed for review, not gated on.
  "$insight" diff "$baseline" "$tmp/profile.json" || true
  echo "-----------------------------------------"
fi

mv "$tmp/profile.json" "$baseline"
echo "wrote $baseline"
