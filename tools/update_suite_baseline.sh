#!/bin/sh
# Regenerates tests/data/suite_profile_baseline.json — the pinned
# polaris-suite-profile the insight_suite_baseline ctest diffs every run
# against.  Refreshes are deliberate: run this after an intentional
# parallelization change, review the printed diff, and commit the new
# baseline with the change that caused it.
#
# usage: tools/update_suite_baseline.sh [BUILD_DIR]   (default: build)
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
polaris="$build/src/driver/polaris"
insight="$build/src/insight/polaris-insight"
baseline="$repo/tests/data/suite_profile_baseline.json"

for bin in "$polaris" "$insight"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (cmake --build $build)" >&2
    exit 1
  fi
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Scrub every POLARIS_* knob from the environment: a baseline generated
# under a caller's stray POLARIS_JOBS / POLARIS_FAULT_INJECT / governor
# ceiling would silently pin that configuration's numbers as "expected".
# (env -u is POSIX and tolerates variables that are not set.)
scrubbed_env="env -u POLARIS_TRACE -u POLARIS_STATS -u POLARIS_FAULT_INJECT \
  -u POLARIS_JOBS -u POLARIS_REMARKS -u POLARIS_REPORT_JSON \
  -u POLARIS_COMPILE_BUDGET_MS -u POLARIS_MAX_POLY_TERMS \
  -u POLARIS_MAX_ATOMS_PER_UNIT -u POLARIS_PASS_BUDGET_MS \
  -u POLARIS_BENCH_JSON"

$scrubbed_env "$polaris" -profile-dir="$tmp/artifacts"
$scrubbed_env "$insight" aggregate "$tmp/artifacts" -o "$tmp/profile.json"

if [ -f "$baseline" ]; then
  echo "--- diff against the current baseline ---"
  # Regressions here are *expected* when the refresh is intentional; the
  # table is printed for review, not gated on.
  "$insight" diff "$baseline" "$tmp/profile.json" || true
  echo "-----------------------------------------"
fi

mv "$tmp/profile.json" "$baseline"
echo "wrote $baseline"
