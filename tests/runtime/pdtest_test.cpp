// PD test shadow-array semantics (paper Section 3.5.2).
#include "runtime/pdtest.h"

#include <gtest/gtest.h>

namespace polaris {
namespace {

TEST(PdTestTest, DisjointWritesPass) {
  // Iteration i writes element i: fully parallel, no privatization needed.
  ShadowArrays sh(10);
  for (std::size_t i = 0; i < 10; ++i) {
    sh.begin_iteration();
    sh.record_write(i);
    sh.end_iteration();
  }
  PdVerdict v = sh.analyze();
  EXPECT_TRUE(v.parallel_shared());
  EXPECT_TRUE(v.pass());
  EXPECT_FALSE(v.flow_anti);
  EXPECT_FALSE(v.output_deps);
}

TEST(PdTestTest, FlowDependenceFails) {
  // Iteration 0 writes element 5; iteration 1 reads it.
  ShadowArrays sh(10);
  sh.begin_iteration();
  sh.record_write(5);
  sh.end_iteration();
  sh.begin_iteration();
  sh.record_read(5);
  sh.end_iteration();
  PdVerdict v = sh.analyze();
  EXPECT_TRUE(v.flow_anti);
  EXPECT_FALSE(v.pass());
}

TEST(PdTestTest, PrivatizableTemporaryPasses) {
  // Every iteration writes element 0 then reads it: invalid shared (output
  // deps) but valid privatized.
  ShadowArrays sh(4);
  for (int i = 0; i < 3; ++i) {
    sh.begin_iteration();
    sh.record_write(0);
    sh.record_read(0);
    sh.end_iteration();
  }
  PdVerdict v = sh.analyze();
  EXPECT_FALSE(v.flow_anti);         // reads follow same-iteration writes
  EXPECT_TRUE(v.output_deps);        // w=3 marks=1
  EXPECT_FALSE(v.not_privatizable);
  EXPECT_FALSE(v.parallel_shared());
  EXPECT_TRUE(v.parallel_privatized());
  EXPECT_TRUE(v.pass());
}

TEST(PdTestTest, ReadBeforeWriteNotPrivatizable) {
  // Iterations read element 0 before writing it: A_np marked.
  ShadowArrays sh(4);
  for (int i = 0; i < 2; ++i) {
    sh.begin_iteration();
    sh.record_read(0);
    sh.record_write(0);
    sh.end_iteration();
  }
  PdVerdict v = sh.analyze();
  EXPECT_TRUE(v.not_privatizable);
  EXPECT_TRUE(v.output_deps);
  EXPECT_FALSE(v.pass());
}

TEST(PdTestTest, ReadOnlyElementsAreFree) {
  ShadowArrays sh(4);
  for (int i = 0; i < 3; ++i) {
    sh.begin_iteration();
    sh.record_read(3);  // never written by anyone
    sh.record_write(static_cast<std::size_t>(i));
    sh.end_iteration();
  }
  PdVerdict v = sh.analyze();
  EXPECT_TRUE(v.pass());
  EXPECT_TRUE(v.parallel_shared());
}

TEST(PdTestTest, WriteCountersDistinguishOutputDeps) {
  ShadowArrays sh(4);
  sh.begin_iteration();
  sh.record_write(1);
  sh.record_write(1);  // second write same iteration: not re-marked
  sh.end_iteration();
  EXPECT_EQ(sh.write_count(), 1u);
  EXPECT_EQ(sh.mark_count(), 1u);
  sh.begin_iteration();
  sh.record_write(1);  // different iteration: counted again
  sh.end_iteration();
  EXPECT_EQ(sh.write_count(), 2u);
  EXPECT_EQ(sh.mark_count(), 1u);
  EXPECT_TRUE(sh.analyze().output_deps);
}

TEST(PdTestTest, MixedPatternExactVerdict) {
  // Element 0: private temporary (w then r each iteration).
  // Element 1: disjoint writes.
  // Element 2: read-only.
  ShadowArrays sh(8);
  for (int i = 0; i < 2; ++i) {
    sh.begin_iteration();
    sh.record_write(0);
    sh.record_read(0);
    sh.record_write(static_cast<std::size_t>(3 + i));
    sh.record_read(2);
    sh.end_iteration();
  }
  PdVerdict v = sh.analyze();
  EXPECT_FALSE(v.flow_anti);
  EXPECT_TRUE(v.output_deps);          // element 0 written twice
  EXPECT_FALSE(v.not_privatizable);
  EXPECT_TRUE(v.parallel_privatized());
}

TEST(PdTestTest, CostScalesWithProcessors) {
  ShadowArrays sh(1000);
  for (int i = 0; i < 100; ++i) {
    sh.begin_iteration();
    for (std::size_t k = 0; k < 50; ++k)
      sh.record_write((static_cast<std::size_t>(i) * 53 + k) % 1000);
    sh.end_iteration();
  }
  EXPECT_GT(sh.cost(1), sh.cost(4));
  EXPECT_GT(sh.cost(4), sh.cost(16));
  EXPECT_EQ(sh.total_accesses(), 5000u);
}

TEST(PdTestTest, ProtocolMisuseAsserts) {
  ShadowArrays sh(4);
  EXPECT_THROW(sh.record_read(0), InternalError);  // outside iteration
  sh.begin_iteration();
  EXPECT_THROW(sh.begin_iteration(), InternalError);
  EXPECT_THROW(sh.record_write(99), InternalError);  // out of range
  sh.end_iteration();
  EXPECT_NO_THROW(sh.analyze());
}

}  // namespace
}  // namespace polaris
