// PassPipeline tests: spec parsing, standard-battery equivalence, and the
// per-pass instrumentation the `-timing` flag surfaces.
#include "driver/pass_manager.h"

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "parser/parser.h"

namespace polaris {
namespace {

const char* kVectorKernel =
    "      program t\n"
    "      real a(100), b(100)\n"
    "      do i = 1, 100\n"
    "        b(i) = 1.0*i\n"
    "      end do\n"
    "      do i = 1, 100\n"
    "        a(i) = b(i)*2.0\n"
    "      end do\n"
    "      end\n";

TEST(PassPipelineTest, ParsesValidSpec) {
  PassPipeline p = PassPipeline::parse("constprop,doall");
  EXPECT_EQ(p.pass_names(),
            (std::vector<std::string>{"constprop", "doall"}));
}

TEST(PassPipelineTest, ParseTrimsAndAllowsReordering) {
  PassPipeline p = PassPipeline::parse(" doall , constprop ");
  EXPECT_EQ(p.pass_names(),
            (std::vector<std::string>{"doall", "constprop"}));
}

TEST(PassPipelineTest, RejectsUnknownPass) {
  EXPECT_THROW(PassPipeline::parse("constprop,bogus"), UserError);
  try {
    PassPipeline::parse("bogus");
    FAIL() << "expected UserError";
  } catch (const UserError& e) {
    // The message names the offender and lists the registry.
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("doall"), std::string::npos);
  }
}

TEST(PassPipelineTest, RejectsEmptySpecAndEmptyComponent) {
  EXPECT_THROW(PassPipeline::parse(""), UserError);
  EXPECT_THROW(PassPipeline::parse("constprop,,doall"), UserError);
  EXPECT_THROW(PassPipeline::parse(","), UserError);
}

TEST(PassPipelineTest, StandardBatteryMatchesRegistry) {
  // The standard battery is the registry prefix; "reduction" and
  // "privatization" are registered extras available to -passes= specs only.
  EXPECT_EQ(PassPipeline::standard().pass_names(),
            (std::vector<std::string>{"inline", "constprop", "normalize",
                                      "induction", "forwardsub", "doall",
                                      "strength"}));
  EXPECT_EQ(PassPipeline::registered_passes(),
            (std::vector<std::string>{"inline", "constprop", "normalize",
                                      "induction", "forwardsub", "doall",
                                      "strength", "reduction",
                                      "privatization"}));
}

TEST(PassPipelineTest, FromOptionsSelectsSpecOrStandard) {
  Options opts = Options::polaris();
  EXPECT_EQ(PassPipeline::from_options(opts).pass_names(),
            PassPipeline::standard().pass_names());
  opts.pipeline_spec = "normalize,doall";
  EXPECT_EQ(PassPipeline::from_options(opts).pass_names(),
            (std::vector<std::string>{"normalize", "doall"}));
}

TEST(PassPipelineTest, CustomPipelineDrivesCompiler) {
  Options opts = Options::polaris();
  opts.pipeline_spec = "doall";  // dependence testing alone
  Compiler compiler(opts);
  CompileReport report;
  compiler.compile(kVectorKernel, &report);
  EXPECT_EQ(report.doall.loops, 2);
  EXPECT_EQ(report.doall.parallel, 2);
  // Only the requested pass ran.
  ASSERT_EQ(report.pass_timings.size(), 1u);
  EXPECT_EQ(report.pass_timings[0].pass, "doall");
}

TEST(PassPipelineTest, TimingsCoverEveryPassInOrder) {
  Compiler compiler(CompilerMode::Polaris);
  CompileReport report;
  compiler.compile(kVectorKernel, &report);

  std::vector<std::string> timed;
  for (const PassTiming& t : report.pass_timings) {
    timed.push_back(t.pass);
    EXPECT_GE(t.runs, 1) << t.pass;
    EXPECT_GE(t.ms, 0.0) << t.pass;
  }
  EXPECT_EQ(timed, PassPipeline::standard().pass_names());
  // The battery exercised the analysis cache and got hits from it.
  EXPECT_GT(report.analysis.queries, 0u);
  EXPECT_GT(report.analysis.hits, 0u);
}

TEST(PassPipelineTest, InstrumentationRecordsIrGrowth) {
  // Strength reduction splices temp assignments into a parallel loop with
  // a substituted induction expression: positive statement delta.
  const char* src =
      "      program t\n"
      "      real a(400)\n"
      "      k = 0\n"
      "      do i = 1, 20\n"
      "        do j = 1, 20\n"
      "          k = k + 1\n"
      "          a(k) = 1.0\n"
      "        end do\n"
      "      end do\n"
      "      end\n";
  Compiler compiler(CompilerMode::Polaris);
  CompileReport report;
  compiler.compile(src, &report);

  long induction_stmt_delta = 0, strength_stmt_delta = 0;
  for (const PassTiming& t : report.pass_timings) {
    if (t.pass == "induction") induction_stmt_delta = t.stmt_delta;
    if (t.pass == "strength") strength_stmt_delta = t.stmt_delta;
  }
  EXPECT_LT(induction_stmt_delta, 0);  // k = k + 1 substituted away
  EXPECT_GT(strength_stmt_delta, 0);   // private-copy temps spliced in
}

TEST(PassPipelineTest, StandardPipelineMatchesDirectBattery) {
  // Options::polaris() through the pipeline must report exactly what the
  // seed's hard-coded call sequence reported.
  Compiler compiler(CompilerMode::Polaris);
  CompileReport report;
  compiler.compile(kVectorKernel, &report);
  EXPECT_EQ(report.doall.loops, 2);
  EXPECT_EQ(report.doall.parallel, 2);
  EXPECT_EQ(report.doall.speculative, 0);
  ASSERT_EQ(report.loops.size(), 2u);
  EXPECT_TRUE(report.loops[0].parallel);
  EXPECT_TRUE(report.loops[1].parallel);
}

}  // namespace
}  // namespace polaris
