// Fault-isolated pass execution, end to end through the Compiler API.
//
// The headline guarantee under test: a pass that faults on every unit is
// rolled back so cleanly that the compile is *bit-identical* to a pipeline
// that never ran the pass at all — IR, symbol ids, interned atoms, and all.
// Plus the satellite behaviors: budget overruns roll back like faults,
// `-verify-each` stays clean across the whole suite in both compiler
// modes, and recovery-off compiles stash a crash-repro bundle.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "driver/compiler.h"
#include "driver/pass_manager.h"
#include "suite/suite.h"
#include "support/assert.h"

namespace polaris {
namespace {

/// Comma-joins a pass-name list into a `-passes=` spec.
std::string join_spec(const std::vector<std::string>& names) {
  std::string spec;
  for (const auto& n : names) {
    if (!spec.empty()) spec += ",";
    spec += n;
  }
  return spec;
}

std::vector<std::string> standard_names() {
  return PassPipeline::standard().pass_names();
}

/// The spec the round-trip runs with `pass` present: the standard battery
/// for standard passes, or the standard battery with the extra pass
/// spliced in before `doall` for registry-only passes.
std::vector<std::string> spec_with(const std::string& pass) {
  std::vector<std::string> names = standard_names();
  if (std::find(names.begin(), names.end(), pass) == names.end()) {
    auto it = std::find(names.begin(), names.end(), "doall");
    names.insert(it, pass);
  }
  return names;
}

std::vector<std::string> without(std::vector<std::string> names,
                                 const std::string& pass) {
  names.erase(std::remove(names.begin(), names.end(), pass), names.end());
  return names;
}

/// Compiles `source` and returns the annotated output.
std::string compile_annotated(Options opts, const std::string& source,
                              CompileReport* report = nullptr) {
  CompileReport local;
  Compiler c(std::move(opts));
  c.compile(source, report ? report : &local);
  return (report ? *report : local).annotated_source;
}

// For every registered pass and every suite code: injecting a fault into
// the pass on every unit must produce output identical to the same
// pipeline with the pass omitted.  This is the rollback acceptance
// criterion — any state the failed pass leaked (IR, diagnostics, report
// counters, interned atoms, symbol ordering) shows up as a diff.
TEST(FaultIsolation, InjectedFaultMatchesPassOmittedPipeline) {
  for (const std::string& pass : PassPipeline::registered_passes()) {
    const std::vector<std::string> with_names = spec_with(pass);
    const std::string skipped = join_spec(without(with_names, pass));
    for (const auto& bench : benchmark_suite()) {
      Options faulted = Options::polaris();
      faulted.pipeline_spec = join_spec(with_names);
      faulted.fault_inject = pass;
      CompileReport rep;
      const std::string out = compile_annotated(faulted, bench.source, &rep);

      ASSERT_FALSE(rep.failures.empty()) << pass << " on " << bench.name;
      for (const PassFailure& f : rep.failures) {
        EXPECT_EQ(f.pass, pass);
        EXPECT_EQ(f.kind, PassFailure::Kind::Assertion);
        EXPECT_TRUE(f.injected);
        EXPECT_TRUE(f.recovered);
      }

      Options clean = Options::polaris();
      clean.pipeline_spec = skipped;
      CompileReport clean_rep;
      const std::string ref = compile_annotated(clean, bench.source, &clean_rep);
      EXPECT_TRUE(clean_rep.failures.empty());
      EXPECT_EQ(out, ref) << "rollback of '" << pass
                          << "' leaked state on " << bench.name;
    }
  }
}

// A budget so small every pass overruns it: all invocations roll back with
// Kind::Budget, and the result equals a compile where *every* pass faults
// (i.e. no transformation was retained at all).
TEST(FaultIsolation, ExhaustedBudgetRollsBackEveryPass) {
  const auto& bench = suite_program("trfd");

  Options budget = Options::polaris();
  budget.pass_budget_ms = 1e-9;
  CompileReport rep;
  const std::string out = compile_annotated(budget, bench.source, &rep);

  ASSERT_FALSE(rep.failures.empty());
  for (const PassFailure& f : rep.failures) {
    EXPECT_EQ(f.kind, PassFailure::Kind::Budget);
    EXPECT_FALSE(f.injected);
    EXPECT_TRUE(f.recovered);
  }
  int total_runs = 0;
  for (const PassTiming& t : rep.pass_timings) total_runs += t.runs;
  EXPECT_EQ(static_cast<int>(rep.failures.size()), total_runs);

  Options all_faults = Options::polaris();
  all_faults.fault_inject = "*";
  const std::string ref = compile_annotated(all_faults, bench.source);
  EXPECT_EQ(out, ref);
}

// -verify-each across the full 16-code suite in both compiler modes:
// every pass leaves structurally valid IR, so zero failures are recorded.
TEST(FaultIsolation, VerifyEachCleanAcrossSuiteAndModes) {
  for (CompilerMode mode : {CompilerMode::Polaris, CompilerMode::Baseline}) {
    for (const auto& bench : benchmark_suite()) {
      Options opts = mode == CompilerMode::Polaris ? Options::polaris()
                                                   : Options::baseline();
      opts.verify_each = true;
      CompileReport rep;
      compile_annotated(opts, bench.source, &rep);
      EXPECT_TRUE(rep.failures.empty())
          << bench.name << " mode="
          << (mode == CompilerMode::Polaris ? "polaris" : "baseline");
    }
  }
}

// With recovery off, the injected fault escapes as InternalError and the
// report carries a crash-repro bundle naming the pass and unit.
TEST(FaultIsolation, NoRecoveryStashesCrashBundle) {
  const auto& bench = suite_program("ocean");
  Options opts = Options::polaris();
  opts.fault_recovery = false;
  opts.fault_inject = "doall";
  Compiler c(opts);
  CompileReport rep;
  bool threw = false;
  try {
    c.compile(bench.source, &rep);
  } catch (const InternalError& e) {
    threw = true;
    EXPECT_TRUE(e.injected());
  }
  EXPECT_TRUE(threw);
  ASSERT_TRUE(rep.crash.has_value());
  EXPECT_EQ(rep.crash->pass, "doall");
  EXPECT_FALSE(rep.crash->unit.empty());
  EXPECT_FALSE(rep.crash->unit_source.empty());
  EXPECT_NE(rep.crash->passes_spec.find("doall"), std::string::npos);
}

// Rollback unwinds diagnostics emitted by the failed pass but adds the
// fault-isolation warning, so users can see what was skipped.
TEST(FaultIsolation, RollbackWarnsAndUnwindsPassDiagnostics) {
  const auto& bench = suite_program("trfd");
  Options opts = Options::polaris();
  opts.fault_inject = "induction";
  CompileReport rep;
  compile_annotated(opts, bench.source, &rep);
  ASSERT_FALSE(rep.failures.empty());
  bool warned = false;
  for (const auto& d : rep.diagnostics.all())
    if (d.pass == "fault-isolation") warned = true;
  EXPECT_TRUE(warned);
  // The rolled-back pass reports zero retained transformations.
  EXPECT_EQ(rep.induction.substituted, 0);
}

// Targeted injection: PASS:UNIT:N faults only the named unit; other units
// keep the transformation.
TEST(FaultIsolation, UnitScopedInjectionLeavesOtherUnitsTransformed) {
  const auto& bench = suite_program("trfd");
  Options all = Options::polaris();
  CompileReport ref;
  compile_annotated(all, bench.source, &ref);

  Options scoped = Options::polaris();
  scoped.fault_inject = "doall:nosuchunit";
  CompileReport rep;
  const std::string out = compile_annotated(scoped, bench.source, &rep);
  // No unit matches: nothing fires, output equals the clean compile.
  EXPECT_TRUE(rep.failures.empty());
  EXPECT_EQ(out, ref.annotated_source);
}

// Soak test (ROADMAP follow-up to the fault-isolation PR): sweep the
// injected site index N for one (pass, unit) scope until the scope runs
// out of real assertion sites and the injection falls through to the
// unit-boundary fault.  Two invariants across the whole sweep: every N
// rolls back to the identical compile output (which site fires must not
// matter — the rollback is all-or-nothing), and the sweep terminates by
// hitting the boundary path, proving N beyond the site count still faults
// deterministically instead of silently not firing.
TEST(FaultIsolation, SiteSweepExhaustsScopeThenFaultsAtUnitBoundary) {
  const auto& bench = suite_program("trfd");
  // normalize executes a few dozen assertion sites on trfd — large enough
  // to exercise real sites, small enough to sweep past exhaustively.
  const std::string pass = "normalize";

  // Resolve the unit name the injection scopes to from a clean compile.
  Options clean = Options::polaris();
  CompileReport clean_rep;
  compile_annotated(clean, bench.source, &clean_rep);
  ASSERT_FALSE(clean_rep.loops.empty());
  const std::string unit = clean_rep.loops.front().unit;

  std::string reference_out;
  bool hit_boundary = false;
  int sites_exercised = 0;
  constexpr int kMaxSweep = 200;
  for (int n = 1; n <= kMaxSweep && !hit_boundary; ++n) {
    Options opts = Options::polaris();
    opts.fault_inject = pass + ":" + unit + ":" + std::to_string(n);
    CompileReport rep;
    const std::string out = compile_annotated(opts, bench.source, &rep);

    ASSERT_EQ(rep.failures.size(), 1u) << "N=" << n;
    const PassFailure& f = rep.failures.front();
    EXPECT_EQ(f.pass, pass);
    EXPECT_EQ(f.unit, unit);
    EXPECT_EQ(f.kind, PassFailure::Kind::Assertion);
    EXPECT_TRUE(f.injected);
    EXPECT_TRUE(f.recovered);
    if (f.message.find("unit boundary") != std::string::npos)
      hit_boundary = true;
    else
      ++sites_exercised;

    if (n == 1)
      reference_out = out;
    else
      EXPECT_EQ(out, reference_out)
          << "rollback output depends on which site fired (N=" << n << ")";
  }
  EXPECT_TRUE(hit_boundary)
      << "scope has more than " << kMaxSweep << " assertion sites";
  // The sweep exercised every real site before falling off the end.
  EXPECT_GT(sites_exercised, 0);
}

}  // namespace
}  // namespace polaris
