// The observability layer end to end: machine-readable reason codes on
// every serial loop, structured remarks, the statistics registry wired
// into CompileReport, Chrome-trace emission, `-report-json` schema
// round-tripping, and the interaction of all of it with fault-isolation
// rollback (a rolled-back pass must unwind its trace events and statistic
// increments, not just its IR).
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "driver/compiler.h"
#include "driver/pass_manager.h"
#include "driver/report_json.h"
#include "parser/parser.h"
#include "suite/suite.h"
#include "support/json.h"
#include "support/trace.h"

namespace polaris {
namespace {

CompileReport compile_report(Options opts, const std::string& source) {
  CompileReport rep;
  Compiler(std::move(opts)).compile(source, &rep);
  return rep;
}

/// The closed set of reason codes the compiler can attach to a serial
/// loop; DESIGN.md §7 documents each.
const std::set<std::string>& known_reason_codes() {
  static const std::set<std::string> codes = {
      "empty-body",        "irregular-control-flow",
      "unresolved-call",   "loop-io",
      "scalar-recurrence", "carried-dependence",
      "strength-reduced",  "not-analyzed",
  };
  return codes;
}

// Satellite (a): across the whole 16-code suite in both compiler modes,
// no loop is reported serial without a machine-readable reason code from
// the documented set (and a human-readable serial_reason to match).
TEST(ReasonCodes, EveryNonParallelLoopCarriesAKnownCode) {
  for (CompilerMode mode : {CompilerMode::Polaris, CompilerMode::Baseline}) {
    for (const auto& bench : benchmark_suite()) {
      Options opts = mode == CompilerMode::Polaris ? Options::polaris()
                                                   : Options::baseline();
      CompileReport rep = compile_report(opts, bench.source);
      for (const LoopReport& lr : rep.loops) {
        if (lr.parallel) {
          EXPECT_TRUE(lr.reason_code.empty())
              << bench.name << "/" << lr.loop << ": parallel loop with code";
          continue;
        }
        EXPECT_FALSE(lr.reason_code.empty())
            << bench.name << "/" << lr.loop << " (" << lr.serial_reason
            << "): serial without reason code";
        EXPECT_TRUE(known_reason_codes().count(lr.reason_code))
            << bench.name << "/" << lr.loop << ": unknown code '"
            << lr.reason_code << "'";
        EXPECT_FALSE(lr.serial_reason.empty())
            << bench.name << "/" << lr.loop;
      }
    }
  }
}

// A pipeline that never runs the DOALL pass still explains its serial
// loops — with the explicit "not-analyzed" fallback, not an empty field.
TEST(ReasonCodes, SkippingDoallYieldsNotAnalyzed) {
  Options opts = Options::polaris();
  opts.pipeline_spec = "constprop,normalize";
  CompileReport rep = compile_report(opts, suite_program("trfd").source);
  ASSERT_FALSE(rep.loops.empty());
  for (const LoopReport& lr : rep.loops) {
    EXPECT_FALSE(lr.parallel);
    EXPECT_EQ(lr.reason_code, "not-analyzed");
    EXPECT_FALSE(lr.serial_reason.empty());
  }
}

// Every serial-loop decision is mirrored by a Missed remark whose reason
// equals the loop's reason code, and every parallelized loop by a
// Parallelized remark; the JSONL stream parses line by line.
TEST(Remarks, MirrorLoopOutcomesAndSerializeAsJsonl) {
  CompileReport rep =
      compile_report(Options::polaris(), suite_program("ocean").source);
  std::set<std::string> missed_contexts;
  std::set<std::string> parallel_contexts;
  for (const Diagnostic* d : rep.diagnostics.remarks()) {
    EXPECT_NE(d->remark, RemarkKind::None);
    EXPECT_FALSE(d->reason.empty()) << d->message;
    if (d->remark == RemarkKind::Missed) missed_contexts.insert(d->context);
    if (d->remark == RemarkKind::Parallelized)
      parallel_contexts.insert(d->context);
  }
  for (const LoopReport& lr : rep.loops) {
    const std::string context = lr.unit + "/" + lr.loop;
    if (lr.parallel || lr.speculative)
      EXPECT_TRUE(parallel_contexts.count(context)) << context;
    else
      EXPECT_TRUE(missed_contexts.count(context)) << context;
  }

  std::ostringstream os;
  rep.diagnostics.print_remarks(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    JsonValue doc = parse_json(line);
    ASSERT_TRUE(doc.is_object());
    EXPECT_NE(doc.find("kind"), nullptr);
    EXPECT_NE(doc.find("reason"), nullptr);
    EXPECT_NE(doc.find("context"), nullptr);
  }
  EXPECT_EQ(lines, rep.diagnostics.remarks().size());
  EXPECT_GT(lines, 0u);
}

// `-report-json`: the document parses, carries the schema header, and
// agrees field-for-field with the in-memory CompileReport.
TEST(ReportJson, RoundTripsThroughTheParser) {
  CompileReport rep =
      compile_report(Options::polaris(), suite_program("trfd").source);
  const std::string text = compile_report_json(rep);
  JsonValue doc = parse_json(text);

  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->string_value, "polaris-compile-report");
  EXPECT_EQ(doc.find("version")->number, kCompileReportSchemaVersion);

  const JsonValue* summary = doc.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->find("loops")->number, rep.doall.loops);
  EXPECT_EQ(summary->find("parallel")->number, rep.doall.parallel);

  const JsonValue* loops = doc.find("loops");
  ASSERT_NE(loops, nullptr);
  ASSERT_EQ(loops->items.size(), rep.loops.size());
  for (std::size_t i = 0; i < rep.loops.size(); ++i) {
    const JsonValue& l = loops->items[i];
    EXPECT_EQ(l.find("unit")->string_value, rep.loops[i].unit);
    EXPECT_EQ(l.find("loop")->string_value, rep.loops[i].loop);
    EXPECT_EQ(l.find("parallel")->bool_value, rep.loops[i].parallel);
    EXPECT_EQ(l.find("reason_code")->string_value, rep.loops[i].reason_code);
    EXPECT_EQ(l.find("dep")->find("pairs")->number, rep.loops[i].dep_pairs);
  }

  const JsonValue* timings = doc.find("pass_timings");
  ASSERT_NE(timings, nullptr);
  EXPECT_EQ(timings->items.size(), rep.pass_timings.size());
  const JsonValue* stats = doc.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->items.size(), rep.stats.size());
  const JsonValue* cache = doc.find("analysis_cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->find("queries")->number,
            static_cast<double>(rep.analysis.queries));

  // Stable round trip: parse -> serialize reproduces the document.
  EXPECT_EQ(doc.serialize(), text);
}

// The compile populates CompileReport::stats with per-compile deltas; a
// second identical compile reports the same deltas (the registry is
// process-global but the report is snapshot-relative).
TEST(ReportStats, DeltasAreSnapshotRelative) {
  const std::string& src = suite_program("bdna").source;
  CompileReport first = compile_report(Options::polaris(), src);
  CompileReport second = compile_report(Options::polaris(), src);
  ASSERT_FALSE(first.stats.empty());
  ASSERT_EQ(first.stats.size(), second.stats.size());
  for (std::size_t i = 0; i < first.stats.size(); ++i) {
    EXPECT_EQ(first.stats[i].component, second.stats[i].component);
    EXPECT_EQ(first.stats[i].name, second.stats[i].name);
    EXPECT_EQ(first.stats[i].value, second.stats[i].value)
        << first.stats[i].component << "." << first.stats[i].name;
  }
}

struct ParsedTrace {
  JsonValue doc;
  std::vector<const JsonValue*> events;
};

ParsedTrace parse_trace(const std::string& json) {
  ParsedTrace t;
  t.doc = parse_json(json);
  const JsonValue* evs = t.doc.find("traceEvents");
  if (evs != nullptr)
    for (const JsonValue& e : evs->items) t.events.push_back(&e);
  return t;
}

const JsonValue* find_event(const ParsedTrace& t, const std::string& name) {
  for (const JsonValue* e : t.events)
    if (e->find("name")->string_value == name) return e;
  return nullptr;
}

bool contained_in(const JsonValue& child, const JsonValue& parent) {
  const double cts = child.find("ts")->number;
  const double pts = parent.find("ts")->number;
  const double cdur = child.find("dur") ? child.find("dur")->number : 0;
  const double pdur = parent.find("dur") ? parent.find("dur")->number : 0;
  return cts >= pts && cts + cdur <= pts + pdur;
}

// Tentpole acceptance: the trace is valid Chrome trace JSON with exactly
// one pass-category span per (pass, unit) invocation — as counted by the
// pass-timing table — all nested inside the compile span, with parse and
// pipeline spans present.
TEST(Trace, PassSpansMatchTimingRunsAndNestUnderCompile) {
  CompileContext cc;
  cc.trace().start("");
  CompileReport rep;
  Compiler(Options::polaris())
      .compile(suite_program("trfd").source, &rep, cc);
  ParsedTrace t = parse_trace(cc.trace().stop());

  const JsonValue* compile = find_event(t, "compile");
  ASSERT_NE(compile, nullptr);
  ASSERT_NE(find_event(t, "parse"), nullptr);
  ASSERT_NE(find_event(t, "pipeline"), nullptr);

  int pass_spans = 0;
  for (const JsonValue* e : t.events) {
    if (e->find("cat")->string_value != "pass") continue;
    ++pass_spans;
    EXPECT_EQ(e->find("ph")->string_value, "X");
    EXPECT_NE(e->find("args")->find("unit"), nullptr);
    EXPECT_TRUE(contained_in(*e, *compile))
        << e->find("name")->string_value << " span escapes the compile span";
  }
  int timing_runs = 0;
  for (const PassTiming& pt : rep.pass_timings) timing_runs += pt.runs;
  EXPECT_EQ(pass_spans, timing_runs);

  // Dependence-test batches and analysis-cache counter tracks made it in.
  EXPECT_NE(find_event(t, "ddtest"), nullptr);
  EXPECT_NE(find_event(t, "analysis-cache"), nullptr);
}

// When a compile is not being traced, nothing accumulates.
TEST(Trace, DisabledCompileLeavesNoEvents) {
  CompileContext cc;
  ASSERT_FALSE(cc.trace().collecting());
  CompileReport rep;
  Compiler(Options::polaris())
      .compile(suite_program("trfd").source, &rep, cc);
  EXPECT_EQ(cc.trace().event_count(), 0u);
}

// Satellite (c): on a no-fault compile, the per-pass IR deltas in the
// `-timing` table telescope exactly to the whole-program IR size change,
// and the per-pass analysis-cache numbers sum to the aggregate totals.
TEST(Timing, IrDeltasTelescopeToNetSizeChange) {
  for (const char* code : {"trfd", "ocean", "bdna", "arc2d"}) {
    const std::string& src = suite_program(code).source;
    auto prog = parse_program(src);
    long stmts_before = 0, exprs_before = 0;
    for (const auto& u : prog->units()) {
      IrSize s = unit_ir_size(*u);
      stmts_before += s.stmts;
      exprs_before += s.exprs;
    }

    CompileReport rep;
    Compiler(Options::polaris()).transform(*prog, &rep);
    ASSERT_TRUE(rep.failures.empty()) << code;

    long stmts_after = 0, exprs_after = 0;
    for (const auto& u : prog->units()) {
      IrSize s = unit_ir_size(*u);
      stmts_after += s.stmts;
      exprs_after += s.exprs;
    }
    long stmt_delta = 0, expr_delta = 0;
    std::uint64_t queries = 0, hits = 0;
    for (const PassTiming& t : rep.pass_timings) {
      stmt_delta += t.stmt_delta;
      expr_delta += t.expr_delta;
      queries += t.analysis_queries;
      hits += t.analysis_hits;
    }
    EXPECT_EQ(stmt_delta, stmts_after - stmts_before) << code;
    EXPECT_EQ(expr_delta, exprs_after - exprs_before) << code;
    EXPECT_EQ(queries, rep.analysis.queries) << code;
    EXPECT_EQ(hits, rep.analysis.hits) << code;
  }
}

// Satellite (b): rolling back a faulted pass unwinds its statistic
// increments and trace events.  A doall-injected compile must report
// byte-identical statistics to a compile that omitted doall, its trace
// must contain no dependence-test spans (they all ran inside the
// rolled-back pass), and the rollback itself must be visible as an
// instant event plus a rolled_back tag on the pass span.
TEST(Rollback, UnwindsStatisticsAndTraceEvents) {
  const std::string& src = suite_program("trfd").source;
  const std::vector<std::string> names = PassPipeline::standard().pass_names();
  std::string spec_without_doall;
  for (const auto& n : names) {
    if (n == "doall") continue;
    if (!spec_without_doall.empty()) spec_without_doall += ",";
    spec_without_doall += n;
  }

  Options faulted = Options::polaris();
  faulted.fault_inject = "doall";
  CompileContext cc;
  cc.trace().start("");
  CompileReport faulted_rep;
  Compiler(faulted).compile(src, &faulted_rep, cc);
  ParsedTrace t = parse_trace(cc.trace().stop());
  ASSERT_FALSE(faulted_rep.failures.empty());

  Options clean = Options::polaris();
  clean.pipeline_spec = spec_without_doall;
  CompileReport clean_rep = compile_report(clean, src);

  ASSERT_EQ(faulted_rep.stats.size(), clean_rep.stats.size());
  for (std::size_t i = 0; i < clean_rep.stats.size(); ++i) {
    EXPECT_EQ(faulted_rep.stats[i].name, clean_rep.stats[i].name);
    EXPECT_EQ(faulted_rep.stats[i].value, clean_rep.stats[i].value)
        << faulted_rep.stats[i].component << "."
        << faulted_rep.stats[i].name;
  }

  EXPECT_EQ(find_event(t, "ddtest"), nullptr)
      << "rolled-back doall leaked dependence-test trace events";
  const JsonValue* rollback = find_event(t, "rollback");
  ASSERT_NE(rollback, nullptr);
  EXPECT_EQ(rollback->find("ph")->string_value, "i");
  EXPECT_EQ(rollback->find("args")->find("pass")->string_value, "doall");

  bool tagged = false;
  for (const JsonValue* e : t.events) {
    if (e->find("name")->string_value != "doall") continue;
    const JsonValue* args = e->find("args");
    if (args && args->find("rolled_back")) tagged = true;
  }
  EXPECT_TRUE(tagged) << "faulted pass span not tagged rolled_back";
}

}  // namespace
}  // namespace polaris
