// Symbolic-kernel statistics baseline (the `bench-smoke` battery).
//
// The hot-path rework (hash-consed atoms, flat polynomial terms, memoized
// canonicalization, counter-guided range-test search) must change *speed*
// and nothing else.  The statistic deltas of a whole-suite compile are the
// cheapest observable proxy for "nothing else": every extra or missing
// `simplify.canonical_roundtrips` or `rangetest.permutations_tried` tick
// means the engine took a different decision path somewhere.  This test
// compiles all 16 suite codes as one program at -jobs=1 and asserts the
// per-compile deltas against the checked-in baseline
// (tests/data/stats_baseline.json, the values the `-report-json` stats
// section carries).  An intentional algorithm change updates the baseline
// file in the same commit; an accidental one fails here.
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "suite/suite.h"
#include "support/json.h"

namespace polaris {
namespace {

/// All 16 suite codes as units of one program (the bench_scaling shape):
/// each mini's `program <name>` card demoted to `subroutine <name>` under
/// a trivial driver.
std::string combined_suite_source() {
  std::string src = "      program driver\n      end\n";
  for (const BenchProgram& bp : benchmark_suite()) {
    std::string body = bp.source;
    const std::string card = "program " + bp.name;
    std::size_t at = body.find(card);
    if (at != std::string::npos)
      body.replace(at, card.size(), "subroutine " + bp.name);
    src += body;
    if (!body.empty() && body.back() != '\n') src += '\n';
  }
  return src;
}

std::map<std::string, std::int64_t> load_baseline() {
  std::ifstream in(POLARIS_STATS_BASELINE);
  std::ostringstream text;
  text << in.rdbuf();
  JsonValue doc = parse_json(text.str());
  std::map<std::string, std::int64_t> out;
  for (const auto& [key, value] : doc.members)
    out[key] = static_cast<std::int64_t>(value.number);
  return out;
}

TEST(StatsBaseline, SuiteCompileDeltasMatchCheckedInBaseline) {
  ASSERT_TRUE(std::ifstream(POLARIS_STATS_BASELINE).good())
      << "baseline file missing: " << POLARIS_STATS_BASELINE;
  std::map<std::string, std::int64_t> baseline = load_baseline();
  ASSERT_FALSE(baseline.empty());

  Options opts = Options::polaris();
  opts.jobs = 1;
  Compiler compiler(opts);
  CompileReport rep;
  compiler.compile(combined_suite_source(), &rep);

  std::map<std::string, std::int64_t> got;
  for (const StatisticValue& s : rep.stats)
    got[s.component + "." + s.name] = s.value;

  // Every baselined counter must be present with exactly its recorded
  // value — and no counter may appear that the baseline does not know
  // (a new statistic that fires during suite compiles belongs in the
  // baseline file, in the same commit that introduces it).
  for (const auto& [key, expected] : baseline) {
    auto it = got.find(key);
    ASSERT_NE(it, got.end()) << "counter disappeared: " << key;
    EXPECT_EQ(it->second, expected) << key;
  }
  for (const auto& [key, value] : got)
    EXPECT_TRUE(baseline.count(key))
        << "unbaselined counter fired during the suite compile: " << key
        << " = " << value;
}

// The cache-off compile takes the slow path through every conversion yet
// must land on the identical decision record.
TEST(StatsBaseline, CacheOffCompileMatchesSameBaseline) {
  std::map<std::string, std::int64_t> baseline = load_baseline();
  Options opts = Options::polaris();
  opts.jobs = 1;
  opts.symbolic_canon_cache = false;
  Compiler compiler(opts);
  CompileReport rep;
  compiler.compile(combined_suite_source(), &rep);
  std::map<std::string, std::int64_t> got;
  for (const StatisticValue& s : rep.stats)
    got[s.component + "." + s.name] = s.value;
  for (const auto& [key, expected] : baseline) {
    auto it = got.find(key);
    ASSERT_NE(it, got.end()) << key;
    EXPECT_EQ(it->second, expected) << key;
  }
}

}  // namespace
}  // namespace polaris
