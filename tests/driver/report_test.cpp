// Compile-report plumbing: dependence-test accounting and diagnostics
// surface through CompileReport for tooling (the CLI's -report view).
#include <gtest/gtest.h>

#include "driver/compiler.h"

namespace polaris {
namespace {

TEST(ReportTest, DepStatsSurfacePerLoop) {
  Compiler compiler(CompilerMode::Polaris);
  CompileReport report;
  compiler.compile(
      "      program t\n"
      "      real a(100), b(100)\n"
      "      do i = 1, 100\n"
      "        a(i) = b(i) + b(i + 1)\n"
      "      end do\n"
      "      print *, a(1)\n"
      "      end\n",
      &report);
  ASSERT_EQ(report.loops.size(), 1u);
  const LoopReport& lr = report.loops[0];
  EXPECT_TRUE(lr.parallel);
  EXPECT_GE(lr.dep_pairs, 1);
  EXPECT_EQ(lr.dep_pairs,
            lr.dep_by_gcd + lr.dep_by_banerjee + lr.dep_by_rangetest);
}

TEST(ReportTest, RangeTestCreditedForNonlinear) {
  Compiler compiler(CompilerMode::Polaris);
  CompileReport report;
  compiler.compile(
      "      program t\n"
      "      real a(10000)\n"
      "      do i = 0, m - 1\n"
      "        do j = 1, n\n"
      "          a(n*i + j) = 1.0\n"
      "        end do\n"
      "      end do\n"
      "      print *, a(1)\n"
      "      end\n",
      &report);
  bool rangetest_used = false;
  for (const LoopReport& lr : report.loops)
    if (lr.dep_by_rangetest > 0) rangetest_used = true;
  EXPECT_TRUE(rangetest_used);
}

TEST(ReportTest, AnnotatedSourceAlwaysPresent) {
  Compiler compiler(CompilerMode::Baseline);
  CompileReport report;
  compiler.compile("      x = 1\n", &report);
  EXPECT_FALSE(report.annotated_source.empty());
  EXPECT_NE(report.annotated_source.find("x = 1"), std::string::npos);
}

TEST(ReportTest, DiagnosticsAccumulateAcrossPasses) {
  Compiler compiler(CompilerMode::Polaris);
  CompileReport report;
  compiler.compile(
      "      program t\n"
      "      real a(1000)\n"
      "      k = 0\n"
      "      do i = 1, 100\n"
      "        do j = 1, i\n"
      "          k = k + 1\n"
      "          a(k) = 1.0\n"
      "        end do\n"
      "      end do\n"
      "      end\n",
      &report);
  EXPECT_TRUE(report.diagnostics.contains("substituted"));   // induction
  EXPECT_TRUE(report.diagnostics.contains("parallel"));      // doall
}

}  // namespace
}  // namespace polaris
