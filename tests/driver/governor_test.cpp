// Resource-governed compilation, end to end through the Compiler API.
//
// The headline guarantees under test: a compile under hostile ceilings
// (`-max-poly-terms=8 -compile-budget-ms=50` and far worse) never throws,
// records its degradation steps as a closed-vocabulary DegradationEvent
// sequence, produces output that *executes identically* to the
// unconstrained compile (the degraded program is less optimized, never
// less correct), and degrades at byte-identical points at any `-jobs=N`.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "driver/compiler.h"
#include "driver/report_json.h"
#include "interp/interp.h"
#include "parser/parser.h"
#include "suite/suite.h"

namespace polaris {
namespace {

/// Replaces the numeric value of every `"ms": <number>` field — the only
/// nondeterministic content in the report document.
std::string scrub_ms(const std::string& json) {
  std::string out;
  out.reserve(json.size());
  const std::string key = "\"ms\":";
  std::size_t i = 0;
  while (i < json.size()) {
    if (json.compare(i, key.size(), key) == 0) {
      out += key;
      out += 'X';
      i += key.size();
      if (i < json.size() && json[i] == ' ') ++i;
      while (i < json.size() &&
             (std::isdigit(static_cast<unsigned char>(json[i])) ||
              json[i] == '.' || json[i] == '-' || json[i] == '+' ||
              json[i] == 'e' || json[i] == 'E'))
        ++i;
    } else {
      out += json[i++];
    }
  }
  return out;
}

/// Renumbers every `do#<N>` loop name by order of first appearance (ids
/// come from a process-wide counter; see determinism_test.cpp).
std::string normalize_loop_ids(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  std::map<std::string, int> seen;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text.compare(i, 3, "do#") == 0) {
      std::size_t j = i + 3;
      while (j < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[j])))
        ++j;
      const std::string id = text.substr(i + 3, j - (i + 3));
      auto [it, _] = seen.emplace(id, static_cast<int>(seen.size()) + 1);
      out += "do#";
      out += std::to_string(it->second);
      i = j;
    } else {
      out += text[i++];
    }
  }
  return out;
}

const std::set<std::string> kActions = {"retry-reduced", "retry-floor",
                                        "drop-pass", "conservative-bailout"};
const std::set<std::string> kTriggers = {"pass-budget", "compile-fuel",
                                         "poly-terms", "atom-ceiling"};

void expect_closed_vocabulary(const std::vector<DegradationEvent>& events,
                              const std::string& label) {
  for (const DegradationEvent& e : events) {
    EXPECT_TRUE(kActions.count(e.action))
        << label << ": open action '" << e.action << "'";
    EXPECT_TRUE(kTriggers.count(e.trigger))
        << label << ": open trigger '" << e.trigger << "'";
    EXPECT_FALSE(e.pass.empty()) << label;
    EXPECT_GE(e.count, 1u) << label;
    if (e.action == "conservative-bailout")
      EXPECT_FALSE(e.site.empty()) << label;
    else
      EXPECT_TRUE(e.site.empty()) << label << ": " << e.action;
  }
}

/// A nest whose induction substitution builds multi-term polynomials —
/// small ceilings reliably trip inside the pass (not just inside query
/// boundaries), engaging the full ladder.
std::string deep_nest_source() {
  return "      program deep\n"
         "      integer k, i, j\n"
         "      real a(5050), s\n"
         "      k = 0\n"
         "      do i = 1, 100\n"
         "        do j = 1, i\n"
         "          k = k + 1\n"
         "          a(k) = i*0.5 + j\n"
         "        end do\n"
         "      end do\n"
         "      s = 0.0\n"
         "      do i = 1, 5050\n"
         "        s = s + a(i)\n"
         "      end do\n"
         "      print *, s\n"
         "      end\n";
}

/// Multi-unit program (mirrors determinism_test.cpp) so governed shard
/// fuel shares genuinely fan out over workers.
std::string multi_unit_source() {
  std::ostringstream src;
  src << "      program driver\n"
         "      real a(100), b(100), c(100)\n"
         "      call initab(a, b)\n"
         "      call scalev(a)\n"
         "      call combine(a, b, c)\n"
         "      call redsum(c, s)\n"
         "      call sweep(c)\n"
         "      call finish(c, t)\n"
         "      print *, s + t\n"
         "      end\n"
         "      subroutine initab(a, b)\n"
         "      real a(100), b(100)\n"
         "      do i = 1, 100\n"
         "        a(i) = i*1.0\n"
         "        b(i) = 200.0 - i\n"
         "      end do\n"
         "      end\n"
         "      subroutine scalev(a)\n"
         "      real a(100)\n"
         "      do i = 1, 100\n"
         "        t = a(i)*2.0\n"
         "        a(i) = t + 1.0\n"
         "      end do\n"
         "      end\n"
         "      subroutine combine(a, b, c)\n"
         "      real a(100), b(100), c(100)\n"
         "      do i = 1, 100\n"
         "        c(i) = a(i) + b(i)\n"
         "      end do\n"
         "      end\n"
         "      subroutine redsum(c, s)\n"
         "      real c(100)\n"
         "      s = 0.0\n"
         "      do i = 1, 100\n"
         "        s = s + c(i)\n"
         "      end do\n"
         "      end\n"
         "      subroutine sweep(c)\n"
         "      real c(100)\n"
         "      do i = 1, 50\n"
         "        c(i) = c(i) + c(i + 50)\n"
         "      end do\n"
         "      end\n"
         "      subroutine finish(c, t)\n"
         "      real c(100)\n"
         "      t = 0.0\n"
         "      do i = 1, 100\n"
         "        t = t + c(i)*0.5\n"
         "      end do\n"
         "      end\n";
  return src.str();
}

struct GovernedRun {
  CompileReport report;
  std::string annotated_source;
  std::string report_json;  ///< scrubbed + loop-id-normalized
};

GovernedRun governed_compile(Options opts, const std::string& source) {
  GovernedRun r;
  Compiler c(std::move(opts));
  c.compile(source, &r.report);  // must not throw: degradation, not failure
  r.annotated_source = r.report.annotated_source;
  r.report_json =
      normalize_loop_ids(scrub_ms(compile_report_json(r.report)));
  return r;
}

// The acceptance ceiling from the issue — `-max-poly-terms=8
// -compile-budget-ms=50` — over the full 16-code suite: every compile
// finishes cleanly (no throw = CLI exit 0), every recorded failure is a
// recovered resource/budget drop, and every degradation event uses the
// closed vocabulary.
TEST(GovernedCompile, HostileCeilingsAcrossSuiteStayClean) {
  for (const auto& bench : benchmark_suite()) {
    Options opts = Options::polaris();
    opts.max_poly_terms = 8;
    opts.compile_budget_ms = 50.0;
    opts.max_atoms_per_unit = 64;
    GovernedRun run = governed_compile(opts, bench.source);
    EXPECT_FALSE(run.annotated_source.empty()) << bench.name;
    expect_closed_vocabulary(run.report.degradations, bench.name);
    for (const PassFailure& f : run.report.failures) {
      EXPECT_TRUE(f.recovered) << bench.name;
      EXPECT_TRUE(f.kind == PassFailure::Kind::Resource ||
                  f.kind == PassFailure::Kind::Budget)
          << bench.name << ": " << to_string(f.kind);
    }
  }
}

// Interpreter differential: for each suite code, the program compiled
// under hostile ceilings must execute with *identical output* to both the
// unconstrained compile and the sequential reference.  This is the
// correctness half of "degrade, never break".
TEST(GovernedCompile, DegradedOutputExecutesIdenticallyToUnconstrained) {
  for (const char* name : {"trfd", "arc2d", "tfft2", "mdg"}) {
    const std::string& src = suite_program(name).source;

    auto ref = parse_program(src);
    RunResult ref_run = run_program(*ref, MachineConfig{});

    Options free_opts = Options::polaris();
    Compiler free_c(free_opts);
    auto free_prog = free_c.compile(src);
    RunResult free_run = run_program(*free_prog, MachineConfig{});

    Options gov_opts = Options::polaris();
    gov_opts.max_poly_terms = 6;
    gov_opts.compile_budget_ms = 0.01;
    gov_opts.max_atoms_per_unit = 48;
    Compiler gov_c(gov_opts);
    CompileReport rep;
    auto gov_prog = gov_c.compile(src, &rep);
    RunResult gov_run = run_program(*gov_prog, MachineConfig{});

    EXPECT_EQ(gov_run.output, ref_run.output) << name;
    EXPECT_EQ(gov_run.output, free_run.output) << name;
  }
}

// Each ceiling has a deterministic synthetic tripwire: the deep nest
// trips poly-terms, atom-ceiling, and compile-fuel individually, and each
// trip is visible as a degradation event with exactly that trigger.
TEST(GovernedCompile, EachCeilingTripsItsOwnTrigger) {
  struct Case {
    const char* trigger;
    void (*apply)(Options&);
  };
  const Case cases[] = {
      {"poly-terms", [](Options& o) { o.max_poly_terms = 2; }},
      {"atom-ceiling", [](Options& o) { o.max_atoms_per_unit = 3; }},
      {"compile-fuel", [](Options& o) { o.compile_budget_ms = 0.001; }},
  };
  for (const Case& c : cases) {
    Options opts = Options::polaris();
    c.apply(opts);
    GovernedRun run = governed_compile(opts, deep_nest_source());
    expect_closed_vocabulary(run.report.degradations, c.trigger);
    bool saw_trigger = false;
    for (const DegradationEvent& e : run.report.degradations)
      if (e.trigger == c.trigger) saw_trigger = true;
    EXPECT_TRUE(saw_trigger) << c.trigger << " never tripped";
  }
}

// The full ladder on one (pass, unit): a poly-term ceiling the induction
// substitution cannot fit under at any rung walks retry-reduced →
// retry-floor → drop-pass, records exactly one recovered Resource
// failure, and the report JSON carries the same sequence.
TEST(GovernedCompile, LadderWalksReducedFloorDrop) {
  Options opts = Options::polaris();
  opts.max_poly_terms = 2;
  GovernedRun run = governed_compile(opts, deep_nest_source());

  std::vector<std::string> induction_actions;
  for (const DegradationEvent& e : run.report.degradations)
    if (e.pass == "induction" && e.action != "conservative-bailout")
      induction_actions.push_back(e.action);
  EXPECT_EQ(induction_actions,
            (std::vector<std::string>{"retry-reduced", "retry-floor",
                                      "drop-pass"}));

  ASSERT_EQ(run.report.failures.size(), 1u);
  EXPECT_EQ(run.report.failures[0].pass, "induction");
  EXPECT_EQ(run.report.failures[0].kind, PassFailure::Kind::Resource);
  EXPECT_TRUE(run.report.failures[0].recovered);
  EXPECT_FALSE(run.report.failures[0].injected);

  // One timing row still counts one run for the laddered pass (ladder
  // retries are not extra runs), preserving failures == dropped runs.
  for (const PassTiming& t : run.report.pass_timings)
    if (t.pass == "induction") EXPECT_EQ(t.runs, 1);

  // The events made it into report JSON verbatim.
  EXPECT_NE(run.report_json.find("\"action\":\"drop-pass\""),
            std::string::npos);

  // `-no-degrade`: the same ceiling drops the pass immediately — same
  // single failure, no retry events at all.
  Options no_ladder = opts;
  no_ladder.degradation_ladder = false;
  GovernedRun direct = governed_compile(no_ladder, deep_nest_source());
  ASSERT_EQ(direct.report.failures.size(), 1u);
  EXPECT_EQ(direct.report.failures[0].kind, PassFailure::Kind::Resource);
  for (const DegradationEvent& e : direct.report.degradations)
    EXPECT_TRUE(e.action == "drop-pass" ||
                e.action == "conservative-bailout")
        << e.action;
}

// Degradation determinism: the governed multi-unit compile — fuel shares
// split across six subroutine shards — produces byte-identical report
// JSON (degradation sequence included) and annotated source at -jobs=1
// and -jobs=8, across several rounds.
TEST(GovernedCompile, DegradationPointsAreJobsCountInvariant) {
  const std::string src = multi_unit_source();
  Options base = Options::polaris();
  base.compile_budget_ms = 0.005;
  base.max_poly_terms = 4;

  Options seq = base;
  seq.jobs = 1;
  GovernedRun ref = governed_compile(seq, src);
  EXPECT_FALSE(ref.report.degradations.empty());

  Options par = base;
  par.jobs = 8;
  for (int round = 0; round < 4; ++round) {
    GovernedRun run = governed_compile(par, src);
    EXPECT_EQ(run.report_json, ref.report_json) << "round " << round;
    EXPECT_EQ(run.annotated_source, ref.annotated_source)
        << "round " << round;
    ASSERT_EQ(run.report.degradations.size(),
              ref.report.degradations.size());
    for (std::size_t i = 0; i < ref.report.degradations.size(); ++i) {
      const DegradationEvent& a = ref.report.degradations[i];
      const DegradationEvent& b = run.report.degradations[i];
      EXPECT_EQ(a.pass, b.pass) << i;
      EXPECT_EQ(a.unit, b.unit) << i;
      EXPECT_EQ(a.trigger, b.trigger) << i;
      EXPECT_EQ(a.action, b.action) << i;
      EXPECT_EQ(a.site, b.site) << i;
      EXPECT_EQ(a.rung, b.rung) << i;
      EXPECT_EQ(a.count, b.count) << i;
      EXPECT_EQ(a.detail, b.detail) << i;
    }
  }
}

// Governed suite compiles are jobs-invariant too (single-unit codes, but
// the shard fuel-share path still runs).
TEST(GovernedCompile, SuiteDegradationJobsInvariant) {
  for (const char* name : {"trfd", "hydro2d"}) {
    const std::string& src = suite_program(name).source;
    Options base = Options::polaris();
    base.compile_budget_ms = 0.02;
    base.max_poly_terms = 8;
    Options seq = base;
    seq.jobs = 1;
    Options par = base;
    par.jobs = 8;
    GovernedRun a = governed_compile(seq, src);
    GovernedRun b = governed_compile(par, src);
    EXPECT_EQ(a.report_json, b.report_json) << name;
    EXPECT_EQ(a.annotated_source, b.annotated_source) << name;
  }
}

// An ungoverned compile records nothing: the governor stays inactive and
// the degradations array is empty (also pins the report-JSON default).
TEST(GovernedCompile, UngovernedCompileRecordsNoEvents) {
  Options opts = Options::polaris();
  GovernedRun run = governed_compile(opts, deep_nest_source());
  EXPECT_TRUE(run.report.degradations.empty());
  EXPECT_TRUE(run.report.failures.empty());
  EXPECT_NE(run.report_json.find("\"degradations\":[]"), std::string::npos);
}

// Conservative bail-outs surface as aggregated events plus a
// `resource-bailout` remark (one per pass/unit/site/trigger run), with
// the governor's closed reason code.
TEST(GovernedCompile, BailoutsAggregateAndEmitRemarks) {
  Options opts = Options::polaris();
  opts.max_atoms_per_unit = 3;
  GovernedRun run = governed_compile(opts, deep_nest_source());
  std::size_t bailouts = 0;
  for (const DegradationEvent& e : run.report.degradations)
    if (e.action == "conservative-bailout") {
      ++bailouts;
      EXPECT_FALSE(e.site.empty());
    }
  ASSERT_GT(bailouts, 0u);
  std::size_t remarks = 0;
  for (const Diagnostic* d : run.report.diagnostics.remarks())
    if (d->reason == "resource-bailout") ++remarks;
  EXPECT_EQ(remarks, bailouts);
}

}  // namespace
}  // namespace polaris
