// Parallel-compilation determinism, end to end over the 16-code suite.
//
// The tentpole guarantee under test: `-jobs=N` changes wall-clock time and
// nothing else.  Every report artifact — report JSON, the remarks JSONL
// stream, per-compile statistic deltas, diagnostics, and the annotated
// source-to-source output — must be byte-identical between a sequential
// compile and an 8-worker compile, for every suite code in both compiler
// modes.  (Wall-clock "ms" fields in the timing table are the one
// legitimate difference; the comparison scrubs exactly those.)
//
// Plus the fault-isolation interaction: a unit that faults under
// concurrency unwinds only its own shard — sibling units keep their
// transformations, the report matches the sequential faulted report, and
// with recovery off the lowest-unit-index failure wins deterministically.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/compiler.h"
#include "driver/profile_dir.h"
#include "driver/report_json.h"
#include "suite/suite.h"

namespace polaris {
namespace {

/// Replaces the numeric value of every `"ms": <number>` field — the only
/// nondeterministic content in the report document.
std::string scrub_ms(const std::string& json) {
  std::string out;
  out.reserve(json.size());
  const std::string key = "\"ms\":";
  std::size_t i = 0;
  while (i < json.size()) {
    if (json.compare(i, key.size(), key) == 0) {
      out += key;
      out += 'X';
      i += key.size();
      if (i < json.size() && json[i] == ' ') ++i;
      while (i < json.size() &&
             (std::isdigit(static_cast<unsigned char>(json[i])) ||
              json[i] == '.' || json[i] == '-' || json[i] == '+' ||
              json[i] == 'e' || json[i] == 'E'))
        ++i;
    } else {
      out += json[i++];
    }
  }
  return out;
}

/// Replaces the values of the wall-clock `"ts"` / `"dur"` fields in a
/// Chrome trace document — like "ms" in the report, the only fields a
/// worker count may legitimately change.
std::string scrub_trace_times(const std::string& json) {
  std::string out;
  out.reserve(json.size());
  std::size_t i = 0;
  auto scrub_key = [&](const char* key, std::size_t len) {
    if (json.compare(i, len, key) != 0) return false;
    out += key;
    out += 'X';
    i += len;
    while (i < json.size() &&
           (std::isdigit(static_cast<unsigned char>(json[i])) ||
            json[i] == '.' || json[i] == '-'))
      ++i;
    return true;
  };
  while (i < json.size()) {
    if (scrub_key("\"ts\":", 5) || scrub_key("\"dur\":", 6)) continue;
    out += json[i++];
  }
  return out;
}

/// Every byte-comparable artifact of one compile, timing scrubbed.  Since
/// the parse-boundary id renumbering landed, statement ids (and so the
/// `do#<N>` loop names in every artifact) are a pure function of the
/// source text — the comparison is raw bytes, with no loop-id
/// normalization pass hiding reorderings.
struct Artifacts {
  std::string report_json;
  std::string remarks;
  std::string annotated_source;
  std::string diagnostics;
  std::string trace;  ///< Chrome trace, ts/dur scrubbed
  std::vector<StatisticValue> stats;
  std::vector<PassFailure> failures;
  std::optional<CompileReport::CrashInfo> crash;
};

Artifacts compile_artifacts(Options opts, const std::string& source) {
  namespace fs = std::filesystem;
  // Pid-qualified: ctest runs each test as its own process, concurrently,
  // and a bare sequence number would collide across them.
  static int trace_seq = 0;
  const fs::path trace_path =
      fs::temp_directory_path() /
      ("polaris_determinism_" + std::to_string(::getpid()) + "_" +
       std::to_string(trace_seq++) + ".trace.json");
  opts.trace_path = trace_path.string();
  Artifacts a;
  CompileReport rep;
  Compiler c(std::move(opts));
  try {
    c.compile(source, &rep);
  } catch (const InternalError&) {
    // no-recover compiles abort; the report still carries the crash info
  }
  a.report_json = scrub_ms(compile_report_json(rep));
  std::ostringstream remarks, diags;
  rep.diagnostics.print_remarks(remarks);
  rep.diagnostics.print(diags);
  a.remarks = remarks.str();
  a.diagnostics = diags.str();
  a.annotated_source = rep.annotated_source;
  a.stats = rep.stats;
  a.failures = rep.failures;
  a.crash = rep.crash;
  std::ifstream tr(trace_path);
  std::ostringstream trbuf;
  trbuf << tr.rdbuf();
  a.trace = scrub_trace_times(trbuf.str());
  std::error_code ec;
  fs::remove(trace_path, ec);
  return a;
}

void expect_identical(const Artifacts& seq, const Artifacts& par,
                      const std::string& label) {
  EXPECT_EQ(seq.report_json, par.report_json) << label;
  EXPECT_EQ(seq.remarks, par.remarks) << label;
  EXPECT_EQ(seq.annotated_source, par.annotated_source) << label;
  EXPECT_EQ(seq.diagnostics, par.diagnostics) << label;
  EXPECT_EQ(seq.trace, par.trace) << label;
  ASSERT_EQ(seq.stats.size(), par.stats.size()) << label;
  for (std::size_t i = 0; i < seq.stats.size(); ++i) {
    EXPECT_EQ(seq.stats[i].name, par.stats[i].name) << label;
    EXPECT_EQ(seq.stats[i].value, par.stats[i].value)
        << label << ": " << seq.stats[i].component << "."
        << seq.stats[i].name;
  }
}

class JobsDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(JobsDeterminism, EightWorkersMatchSequentialByteForByte) {
  const std::string& src = suite_program(GetParam()).source;
  for (CompilerMode mode : {CompilerMode::Polaris, CompilerMode::Baseline}) {
    Options seq_opts = mode == CompilerMode::Polaris ? Options::polaris()
                                                     : Options::baseline();
    Options par_opts = seq_opts;
    seq_opts.jobs = 1;
    par_opts.jobs = 8;
    Artifacts seq = compile_artifacts(seq_opts, src);
    Artifacts par = compile_artifacts(par_opts, src);
    expect_identical(seq, par,
                     std::string(GetParam()) +
                         (mode == CompilerMode::Polaris ? "/polaris"
                                                        : "/baseline"));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, JobsDeterminism,
    ::testing::Values("applu", "appsp", "arc2d", "bdna", "cloud3d", "cmhog",
                      "flo52", "hydro2d", "mdg", "ocean", "su2cor", "swim",
                      "tfft2", "tomcatv", "trfd", "wave5"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

// The suite minis are single-unit programs (jobs clamps to the unit
// count there), so the concurrency tests run on a synthetic multi-unit
// program: a driver plus six subroutines, each with its own
// parallelizable (and privatization/reduction-exercising) loops, so
// eight workers genuinely race over shards.
std::string multi_unit_source() {
  std::ostringstream src;
  src << "      program driver\n"
         "      real a(100), b(100), c(100)\n"
         "      call initab(a, b)\n"
         "      call scalev(a)\n"
         "      call combine(a, b, c)\n"
         "      call redsum(c, s)\n"
         "      call sweep(c)\n"
         "      call finish(c, t)\n"
         "      print *, s + t\n"
         "      end\n"
         "      subroutine initab(a, b)\n"
         "      real a(100), b(100)\n"
         "      do i = 1, 100\n"
         "        a(i) = i*1.0\n"
         "        b(i) = 200.0 - i\n"
         "      end do\n"
         "      end\n"
         "      subroutine scalev(a)\n"
         "      real a(100)\n"
         "      do i = 1, 100\n"
         "        t = a(i)*2.0\n"
         "        a(i) = t + 1.0\n"
         "      end do\n"
         "      end\n"
         "      subroutine combine(a, b, c)\n"
         "      real a(100), b(100), c(100)\n"
         "      do i = 1, 100\n"
         "        c(i) = a(i) + b(i)\n"
         "      end do\n"
         "      end\n"
         "      subroutine redsum(c, s)\n"
         "      real c(100)\n"
         "      s = 0.0\n"
         "      do i = 1, 100\n"
         "        s = s + c(i)\n"
         "      end do\n"
         "      end\n"
         "      subroutine sweep(c)\n"
         "      real c(100)\n"
         "      do i = 1, 50\n"
         "        c(i) = c(i) + c(i + 50)\n"
         "      end do\n"
         "      end\n"
         "      subroutine finish(c, t)\n"
         "      real c(100)\n"
         "      t = 0.0\n"
         "      do i = 1, 100\n"
         "        t = t + c(i)*0.5\n"
         "      end do\n"
         "      end\n";
  return src.str();
}

// Multi-unit determinism: with six subroutine units actually fanned out
// over eight workers, every artifact still matches the sequential run.
TEST(JobsDeterminismMultiUnit, EightWorkersMatchSequential) {
  const std::string src = multi_unit_source();
  Options seq_opts = Options::polaris();
  Options par_opts = seq_opts;
  seq_opts.jobs = 1;
  par_opts.jobs = 8;
  for (int round = 0; round < 4; ++round) {
    Artifacts seq = compile_artifacts(seq_opts, src);
    Artifacts par = compile_artifacts(par_opts, src);
    expect_identical(seq, par, "multi-unit round " + std::to_string(round));
  }
}

// The canonicalization cache is an invisible accelerator: with it off,
// every artifact (including statistic deltas such as
// simplify.canonical_roundtrips) must match the cached compile byte for
// byte, at both worker counts.  This pins the cache's correctness
// contract — a hit returns exactly what the uncached conversion would
// have produced, and caching never perturbs atom interning order (which
// would reshuffle canonical term order in the annotated source).
class CanonCacheDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(CanonCacheDeterminism, CacheOffMatchesCacheOnByteForByte) {
  const std::string& src = suite_program(GetParam()).source;
  for (int jobs : {1, 8}) {
    Options on = Options::polaris();
    on.jobs = jobs;
    Options off = on;
    off.symbolic_canon_cache = false;
    Artifacts cached = compile_artifacts(on, src);
    Artifacts uncached = compile_artifacts(off, src);
    expect_identical(cached, uncached,
                     std::string(GetParam()) + "/jobs=" +
                         std::to_string(jobs));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, CanonCacheDeterminism,
    ::testing::Values("arc2d", "hydro2d", "tfft2", "trfd"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

TEST(CanonCacheDeterminism, MultiUnitCacheOffMatchesCacheOn) {
  const std::string src = multi_unit_source();
  Options on = Options::polaris();
  on.jobs = 8;
  Options off = on;
  off.symbolic_canon_cache = false;
  Artifacts cached = compile_artifacts(on, src);
  Artifacts uncached = compile_artifacts(off, src);
  expect_identical(cached, uncached, "multi-unit cache on/off");
}

// An injected fault on one unit under 8 workers rolls back only that
// unit's shard: exactly the targeted invocation is recorded as failed,
// sibling units keep their parallelized loops, and the whole report is
// byte-identical to the sequential faulted compile.
TEST(JobsFaultIsolation, FaultedUnitUnwindsOnlyItsOwnShard) {
  const std::string src = multi_unit_source();

  Options clean = Options::polaris();
  clean.jobs = 8;
  Artifacts clean_run = compile_artifacts(clean, src);

  Options faulted = clean;
  faulted.fault_inject = "doall:scalev";
  Artifacts par = compile_artifacts(faulted, src);

  Options faulted_seq = faulted;
  faulted_seq.jobs = 1;
  Artifacts seq = compile_artifacts(faulted_seq, src);

  ASSERT_EQ(par.failures.size(), 1u);
  EXPECT_EQ(par.failures[0].pass, "doall");
  EXPECT_EQ(par.failures[0].unit, "scalev");
  EXPECT_TRUE(par.failures[0].injected);
  EXPECT_TRUE(par.failures[0].recovered);

  // Sibling units were untouched by the rollback: the faulted compile
  // still parallelizes loops (just not scalev's), and its output differs
  // from the clean run only where scalev's directives would be.
  EXPECT_NE(par.annotated_source, clean_run.annotated_source);
  EXPECT_NE(par.annotated_source.find("csrd$ doall"), std::string::npos);

  expect_identical(seq, par, "multi-unit/doall:scalev");
  ASSERT_EQ(seq.failures.size(), 1u);
}

// With recovery off, concurrent workers may fault on several units; the
// merge must deterministically surface the lowest unit index — the same
// crash the sequential compile reports.
TEST(JobsFaultIsolation, NoRecoverCrashIsDeterministicUnderConcurrency) {
  const std::string src = multi_unit_source();
  Options opts = Options::polaris();
  opts.fault_inject = "doall";  // matches every unit
  opts.fault_recovery = false;

  opts.jobs = 1;
  Artifacts seq = compile_artifacts(opts, src);
  ASSERT_TRUE(seq.crash.has_value());

  opts.jobs = 8;
  for (int round = 0; round < 4; ++round) {
    Artifacts par = compile_artifacts(opts, src);
    ASSERT_TRUE(par.crash.has_value());
    EXPECT_EQ(par.crash->pass, seq.crash->pass);
    EXPECT_EQ(par.crash->unit, seq.crash->unit);
    EXPECT_EQ(par.crash->unit_source, seq.crash->unit_source);
  }
}

// A malformed unit in the middle of a multi-unit program must produce the
// same textually-first UserError — whole-file line numbers included — from
// a full Compiler::compile at every worker count, run after run.
TEST(ParallelParseDiagnostics, MalformedUnitIsDeterministicUnderJobs) {
  std::string src = multi_unit_source();
  const std::size_t pos = src.find("      subroutine redsum");
  ASSERT_NE(pos, std::string::npos);
  src.insert(pos, "      subroutine broken\n      x = 'oops\n      end\n");
  std::string expected;
  for (int round = 0; round < 4; ++round) {
    for (int jobs : {1, 8}) {
      Options opts = Options::polaris();
      opts.jobs = jobs;
      Compiler c(opts);
      try {
        c.compile(src, nullptr);
        FAIL() << "expected UserError at jobs=" << jobs;
      } catch (const UserError& e) {
        if (expected.empty()) {
          expected = e.what();
          EXPECT_NE(expected.find("unterminated"), std::string::npos)
              << expected;
        }
        EXPECT_EQ(expected, e.what())
            << "jobs=" << jobs << " round=" << round;
      }
    }
  }
}

// The -profile-dir batch: every artifact file it writes (report JSON,
// remarks JSONL, Chrome trace — three per suite code) must be
// byte-identical between a sequential batch and an 8-worker batch once
// wall-clock fields are scrubbed.  This covers the per-code artifact
// *files* end to end, where the in-process tests above cover the report
// structures.
TEST(ProfileDirDeterminism, EightWorkersMatchSequentialFileForFile) {
  namespace fs = std::filesystem;
  const fs::path base = fs::temp_directory_path() / "polaris_profdir_det";
  const fs::path seq_dir = base / "seq";
  const fs::path par_dir = base / "par";
  fs::remove_all(base);

  Options opts = Options::polaris();
  opts.jobs = 1;
  ASSERT_EQ(run_profile_suite(seq_dir.string(), opts), 0);
  opts.jobs = 8;
  ASSERT_EQ(run_profile_suite(par_dir.string(), opts), 0);

  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(seq_dir))
    names.push_back(entry.path().filename().string());
  std::sort(names.begin(), names.end());
  // Three artifact files per suite code.
  EXPECT_EQ(names.size(), 3 * benchmark_suite().size());

  auto slurp_scrubbed = [](const fs::path& p) {
    std::ifstream in(p);
    std::ostringstream buf;
    buf << in.rdbuf();
    return scrub_trace_times(scrub_ms(buf.str()));
  };
  for (const std::string& name : names) {
    ASSERT_TRUE(fs::exists(par_dir / name)) << name;
    EXPECT_EQ(slurp_scrubbed(seq_dir / name), slurp_scrubbed(par_dir / name))
        << name;
  }
  std::size_t par_count = 0;
  for (const auto& entry : fs::directory_iterator(par_dir)) {
    (void)entry;
    ++par_count;
  }
  EXPECT_EQ(par_count, names.size());
  fs::remove_all(base);
}

}  // namespace
}  // namespace polaris
