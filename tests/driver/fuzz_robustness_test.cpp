// Whole-compiler fuzzing through the fault-injection hooks (the ROADMAP
// follow-up to the fault-isolation PR): mutated suite sources — truncated,
// spliced across programs, garbled — are driven through the *full*
// restructuring pipeline while deterministic fault injection arms
// randomized backend sites (the same hook POLARIS_FAULT_INJECT feeds in
// the CLI).  The contract: every outcome is clean — either a UserError
// (malformed input is the user's problem, CLI exit 1) or a compile that
// finishes with only recovered PassFailures (CLI exit 0).  An
// InternalError escaping with recovery on is a real bug and fails the
// test by escaping the harness.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "driver/compiler.h"
#include "driver/pass_manager.h"
#include "suite/suite.h"

namespace polaris {
namespace {

/// Cuts the source mid-statement, leaving dangling DO/IF nests and half
/// tokens.
std::string truncate(const std::string& src, std::mt19937& rng) {
  if (src.empty()) return src;
  return src.substr(0, 1 + rng() % src.size());
}

/// Splices the head of one suite program onto the tail of another at
/// random cut points — structurally plausible Fortran with mismatched
/// units, declarations, and nesting.
std::string splice(const std::string& a, const std::string& b,
                   std::mt19937& rng) {
  const std::string head = a.substr(0, rng() % (a.size() + 1));
  const std::string tail = b.substr(rng() % (b.size() + 1));
  return head + tail;
}

/// Random single-character overwrites/erases/inserts.
std::string garble(std::string src, std::mt19937& rng) {
  const char alphabet[] = "abcxyz0189()+-*/=.,$ \n";
  const int mutations = 1 + static_cast<int>(rng() % 12);
  for (int m = 0; m < mutations && !src.empty(); ++m) {
    const std::size_t pos = rng() % src.size();
    switch (rng() % 3) {
      case 0:
        src[pos] = alphabet[rng() % (sizeof(alphabet) - 1)];
        break;
      case 1:
        src.erase(pos, 1 + rng() % 3);
        break;
      default:
        src.insert(pos, 1, alphabet[rng() % (sizeof(alphabet) - 1)]);
        break;
    }
  }
  return src.empty() ? "x = 1\n" : src;
}

/// One fuzz iteration: compile `src` with fault injection armed at a
/// randomized (pass, site) and require a clean outcome.  UserError is the
/// accepted parse-reject path; a completed compile must have recovered
/// every failure it recorded.  InternalError is deliberately not caught.
void compile_expecting_clean_outcome(const std::string& src,
                                     std::mt19937& rng,
                                     const std::string& what) {
  const std::vector<std::string> passes = PassPipeline::registered_passes();
  Options opts = Options::polaris();
  // Arm a randomized backend site: a random pass, sometimes pinned to its
  // Nth assertion site so deep sites fire too, sometimes every pass.
  switch (rng() % 4) {
    case 0:
      opts.fault_inject = "*";
      break;
    case 1:
      opts.fault_inject = passes[rng() % passes.size()];
      break;
    default:
      opts.fault_inject = passes[rng() % passes.size()] + "::" +
                          std::to_string(1 + rng() % 40);
      break;
  }
  // Mix hostile resource ceilings into a third of the runs: blow-ups and
  // injected faults interleave at the same pass boundaries.
  if (rng() % 3 == 0) {
    opts.max_poly_terms = 2 + static_cast<int>(rng() % 8);
    opts.compile_budget_ms = 0.001 * static_cast<double>(1 + rng() % 50);
  }

  Compiler c(opts);
  CompileReport rep;
  try {
    c.compile(src, &rep);
    for (const PassFailure& f : rep.failures)
      EXPECT_TRUE(f.recovered) << what << " pass=" << f.pass;
    EXPECT_FALSE(rep.annotated_source.empty()) << what;
  } catch (const UserError&) {
    // the clean reject path for malformed input
  }
}

class CompilerFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(CompilerFuzz, MutatedSourcesUnderInjectionNeverLeak) {
  std::mt19937 rng(GetParam() * 2654435761u + 1);
  const auto& suite = benchmark_suite();
  const std::string& a = suite[rng() % suite.size()].source;
  const std::string& b = suite[rng() % suite.size()].source;

  std::string src;
  switch (rng() % 3) {
    case 0:
      src = truncate(a, rng);
      break;
    case 1:
      src = splice(a, b, rng);
      break;
    default:
      src = garble(a, rng);
      break;
  }
  compile_expecting_clean_outcome(src, rng, "seed " +
                                               std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompilerFuzz, ::testing::Range(1u, 49u));

// The deterministic sweeps: every suite code, truncated at fixed
// fractions and garbled at a fixed stride, compiled with injection armed
// on a scope derived from the code's name — reproducible without a seed.
TEST(CompilerRobustness, TruncatedSuiteCodesUnderInjectionStayClean) {
  for (const auto& bench : benchmark_suite()) {
    std::mt19937 rng(static_cast<unsigned>(bench.name.size()) * 7919u);
    for (double frac : {0.25, 0.5, 0.75, 0.95}) {
      const std::string cut =
          bench.source.substr(0, static_cast<std::size_t>(
                                     bench.source.size() * frac));
      compile_expecting_clean_outcome(cut, rng, bench.name + " truncated");
    }
  }
}

TEST(CompilerRobustness, GarbledSuiteCodesUnderInjectionStayClean) {
  for (const auto& bench : benchmark_suite()) {
    std::mt19937 rng(static_cast<unsigned>(bench.name[0]) * 104729u);
    std::string garbled = bench.source;
    const char junk[] = ")(=$*";
    for (std::size_t i = 13; i < garbled.size(); i += 41)
      garbled[i] = junk[i % (sizeof(junk) - 1)];
    compile_expecting_clean_outcome(garbled, rng, bench.name + " garbled");
  }
}

}  // namespace
}  // namespace polaris
