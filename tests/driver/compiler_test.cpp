// End-to-end driver tests: the full pipeline on realistic kernels, with
// the semantic-equivalence property (transformed programs print exactly
// what the originals print) and modeled-speedup checks.
#include "driver/compiler.h"

#include <gtest/gtest.h>

#include "interp/interp.h"
#include "parser/parser.h"

namespace polaris {
namespace {

/// Runs `src` untransformed (reference) and transformed under `mode`;
/// checks identical output and returns both results.
struct EquivalenceResult {
  RunResult reference;
  RunResult transformed;
  CompileReport report;
};

EquivalenceResult check_equivalence(const std::string& src,
                                    CompilerMode mode = CompilerMode::Polaris,
                                    int processors = 8) {
  EquivalenceResult out;

  auto ref_prog = parse_program(src);
  out.reference = run_program(*ref_prog, MachineConfig{});

  Compiler compiler(mode);
  auto prog = compiler.compile(src, &out.report);
  ExecutionConfig cfg = backend_config(mode, *prog, processors);
  out.transformed = run_program(*prog, cfg.machine);

  EXPECT_EQ(out.reference.output, out.transformed.output)
      << "transformation changed program output";
  return out;
}

TEST(CompilerTest, VectorKernelParallelizes) {
  auto r = check_equivalence(
      "      program t\n"
      "      real a(2000), b(2000)\n"
      "      do i = 1, 2000\n"
      "        b(i) = 1.0*i\n"
      "      end do\n"
      "      do i = 1, 2000\n"
      "        a(i) = b(i)*2.0 + 1.0\n"
      "      end do\n"
      "      print *, a(1), a(2000)\n"
      "      end\n");
  EXPECT_EQ(r.report.doall.parallel, 2);
  EXPECT_GT(r.transformed.clock.speedup(), 3.0);
}

TEST(CompilerTest, InductionThenRangeTestTrfdShape) {
  // The paper's Figure 2 flow: induction substitution introduces the
  // nonlinear subscript; the range test then proves all loops parallel.
  auto r = check_equivalence(
      "      program trfd\n"
      "      parameter (n = 24, m = 6)\n"
      "      real a(10000)\n"
      "      integer x\n"
      "      x = 0\n"
      "      do i = 0, m - 1\n"
      "        do j = 0, n - 1\n"
      "          do k = 0, j - 1\n"
      "            x = x + 1\n"
      "            a(x) = i + j + k + 1.5\n"
      "          end do\n"
      "        end do\n"
      "      end do\n"
      "      s = 0.0\n"
      "      do i = 1, m*(n*n - n)/2\n"
      "        s = s + a(i)\n"
      "      end do\n"
      "      print *, s\n"
      "      end\n");
  EXPECT_GE(r.report.induction.substituted, 1);
  // The triple nest's outermost loop is parallel under Polaris.
  bool outer_parallel = false;
  for (const LoopReport& lr : r.report.loops)
    if (lr.depth == 0 && lr.parallel) outer_parallel = true;
  EXPECT_TRUE(outer_parallel);
  EXPECT_GT(r.transformed.clock.speedup(), 2.0);
}

TEST(CompilerTest, BaselineMissesTrfdShape) {
  std::string src =
      "      program trfd\n"
      "      parameter (n = 24, m = 6)\n"
      "      real a(10000)\n"
      "      integer x\n"
      "      x = 0\n"
      "      do i = 0, m - 1\n"
      "        do j = 0, n - 1\n"
      "          do k = 0, j - 1\n"
      "            x = x + 1\n"
      "            a(x) = 1.0\n"
      "          end do\n"
      "        end do\n"
      "      end do\n"
      "      end\n";
  auto r = check_equivalence(src, CompilerMode::Baseline);
  // The baseline substitutes the induction but cannot prove the nonlinear
  // subscript independent: the nest stays serial.
  EXPECT_EQ(r.report.doall.parallel, 0);
}

TEST(CompilerTest, ReductionLoopParallelizes) {
  auto r = check_equivalence(
      "      program t\n"
      "      real a(5000)\n"
      "      do i = 1, 5000\n"
      "        a(i) = mod(i, 7)*0.5\n"
      "      end do\n"
      "      s = 0.0\n"
      "      do i = 1, 5000\n"
      "        s = s + a(i)\n"
      "      end do\n"
      "      print *, s\n"
      "      end\n");
  EXPECT_EQ(r.report.doall.parallel, 2);
  EXPECT_GT(r.transformed.clock.speedup(), 3.0);
}

TEST(CompilerTest, PrivatizationEnablesOuterLoop) {
  auto r = check_equivalence(
      "      program t\n"
      "      real a(200,200), w(200)\n"
      "      do i = 1, 200\n"
      "        do j = 1, 200\n"
      "          w(j) = i*1.0 + j\n"
      "        end do\n"
      "        do k = 1, 200\n"
      "          a(i,k) = w(k)*2.0\n"
      "        end do\n"
      "      end do\n"
      "      print *, a(200,200)\n"
      "      end\n");
  bool outer_parallel = false;
  for (const LoopReport& lr : r.report.loops)
    if (lr.depth == 0 && lr.parallel) outer_parallel = true;
  EXPECT_TRUE(outer_parallel);
}

TEST(CompilerTest, BaselineKeepsWorkArrayLoopSerial) {
  std::string src =
      "      program t\n"
      "      real a(200,200), w(200)\n"
      "      do i = 1, 200\n"
      "        do j = 1, 200\n"
      "          w(j) = i*1.0 + j\n"
      "        end do\n"
      "        do k = 1, 200\n"
      "          a(i,k) = w(k)*2.0\n"
      "        end do\n"
      "      end do\n"
      "      print *, a(200,200)\n"
      "      end\n";
  auto r = check_equivalence(src, CompilerMode::Baseline);
  for (const LoopReport& lr : r.report.loops) {
    if (lr.depth == 0) {
      EXPECT_FALSE(lr.parallel);
    }
  }
}

TEST(CompilerTest, InliningEnablesAnalysis) {
  auto r = check_equivalence(
      "      program t\n"
      "      real a(1000)\n"
      "      do i = 1, 10\n"
      "        call work(a, i)\n"
      "      end do\n"
      "      print *, a(1), a(1000)\n"
      "      end\n"
      "      subroutine work(a, i)\n"
      "      real a(1000)\n"
      "      do j = 1, 100\n"
      "        a((i - 1)*100 + j) = i*1.0 + j\n"
      "      end do\n"
      "      end\n");
  EXPECT_GE(r.report.inlining.expanded, 1);
  bool outer_parallel = false;
  for (const LoopReport& lr : r.report.loops)
    if (lr.unit == "t" && lr.depth == 0 && lr.parallel)
      outer_parallel = true;
  EXPECT_TRUE(outer_parallel);
}

TEST(CompilerTest, SpeculativeLoopRunsPdTest) {
  Options opts = Options::polaris();
  opts.runtime_pd_test = true;
  Compiler compiler(opts);
  CompileReport report;
  // Subscripted subscripts with a permutation index array: actually
  // parallel at run time, but statically opaque.
  auto prog = compiler.compile(
      "      program t\n"
      "      real a(500)\n"
      "      integer idx(500)\n"
      "      do i = 1, 500\n"
      "        idx(i) = 501 - i\n"
      "      end do\n"
      "      do i = 1, 500\n"
      "        a(idx(i)) = i*2.0\n"
      "      end do\n"
      "      print *, a(1), a(500)\n"
      "      end\n",
      &report);
  EXPECT_EQ(report.doall.speculative, 1);
  MachineConfig cfg;
  cfg.processors = 8;
  auto run = run_program(*prog, cfg);
  EXPECT_EQ(run.speculative_attempts, 1);
  EXPECT_EQ(run.speculative_failures, 0);
  EXPECT_GT(run.pd_test_cost, 0u);
  ASSERT_EQ(run.output.size(), 1u);
  EXPECT_EQ(run.output[0], "1000 2");
}

TEST(CompilerTest, SpeculationFailureFallsBackSerially) {
  Options opts = Options::polaris();
  opts.runtime_pd_test = true;
  Compiler compiler(opts);
  CompileReport report;
  // idx maps everything to element 1 and reads it: genuine dependences.
  auto prog = compiler.compile(
      "      program t\n"
      "      real a(100)\n"
      "      integer idx(100)\n"
      "      do i = 1, 100\n"
      "        idx(i) = 1\n"
      "      end do\n"
      "      a(1) = 0.0\n"
      "      do i = 1, 100\n"
      "        a(idx(i)) = a(idx(i)) + a(mod(i, 100) + 1)\n"
      "      end do\n"
      "      print *, a(1)\n"
      "      end\n",
      &report);
  ASSERT_EQ(report.doall.speculative, 1);
  MachineConfig cfg;
  cfg.processors = 8;
  auto run = run_program(*prog, cfg);
  EXPECT_EQ(run.speculative_failures, 1);
  EXPECT_GT(run.speculative_wasted, 0u);
  // The serial fallback recomputed the correct value: compare against an
  // untransformed run.
  auto ref_prog = parse_program(
      "      program t\n"
      "      real a(100)\n"
      "      integer idx(100)\n"
      "      do i = 1, 100\n"
      "        idx(i) = 1\n"
      "      end do\n"
      "      a(1) = 0.0\n"
      "      do i = 1, 100\n"
      "        a(idx(i)) = a(idx(i)) + a(mod(i, 100) + 1)\n"
      "      end do\n"
      "      print *, a(1)\n"
      "      end\n");
  auto ref = run_program(*ref_prog, MachineConfig{});
  EXPECT_EQ(run.output, ref.output);
}

TEST(CompilerTest, AnnotatedSourceCarriesDirectives) {
  Compiler compiler(CompilerMode::Polaris);
  CompileReport report;
  compiler.compile(
      "      program t\n"
      "      real a(100)\n"
      "      do i = 1, 100\n"
      "        a(i) = 1.0\n"
      "      end do\n"
      "      end\n",
      &report);
  EXPECT_NE(report.annotated_source.find("!csrd$ doall"), std::string::npos);
}

TEST(CompilerTest, BackendConfigPenalizesShortInnerTrips) {
  auto prog = parse_program(
      "      program t\n"
      "      real a(100,4)\n"
      "      do i = 1, 100\n"
      "        do j = 1, 4\n"
      "          a(i,j) = 1.0\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  ExecutionConfig pfa = backend_config(CompilerMode::Baseline, *prog, 8);
  EXPECT_GT(pfa.codegen_factor, 1.0);
  ExecutionConfig pol = backend_config(CompilerMode::Polaris, *prog, 8);
  EXPECT_DOUBLE_EQ(pol.codegen_factor, 1.0);

  auto prog2 = parse_program(
      "      program t\n"
      "      real a(100,100)\n"
      "      do i = 1, 100\n"
      "        do j = 1, 100\n"
      "          a(i,j) = 1.0\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  ExecutionConfig pfa2 = backend_config(CompilerMode::Baseline, *prog2, 8);
  EXPECT_LT(pfa2.codegen_factor, 1.0);
}

TEST(CompilerTest, GotoLoopStaysSerialButCorrect) {
  auto r = check_equivalence(
      "      program t\n"
      "      real a(100)\n"
      "      i = 0\n"
      "   10 i = i + 1\n"
      "      a(i) = i*1.0\n"
      "      if (i .lt. 100) goto 10\n"
      "      print *, a(50)\n"
      "      end\n");
  EXPECT_EQ(r.report.doall.parallel, 0);
}

}  // namespace
}  // namespace polaris
