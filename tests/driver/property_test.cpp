// Property test: for randomly generated structured programs, the full
// Polaris pipeline (and the baseline pipeline) must preserve program
// output exactly.  The generator emits loops, conditionals, scalar
// temporaries, reductions, stencil and strided array accesses — all with
// statically safe subscripts — and every seed's program is executed three
// ways (reference, Polaris-transformed, baseline-transformed) and
// compared.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "driver/compiler.h"
#include "interp/interp.h"
#include "parser/parser.h"

namespace polaris {
namespace {

class ProgramGenerator {
 public:
  explicit ProgramGenerator(unsigned seed) : rng_(seed) {}

  std::string generate() {
    out_.str("");
    out_ << "      program rnd\n";
    out_ << "      parameter (n = 40)\n";
    out_ << "      real va(50), vb(50), vc(50)\n";
    out_ << "      real g(50, 10)\n";
    emit_init();
    int stmts = 3 + pick(4);
    for (int i = 0; i < stmts; ++i) emit_top_level();
    emit_checksum();
    out_ << "      end\n";
    return out_.str();
  }

 private:
  int pick(int n) { return static_cast<int>(rng_() % static_cast<unsigned>(n)); }
  std::string num(double v) {
    std::ostringstream os;
    os << v;
    std::string s = os.str();
    if (s.find('.') == std::string::npos) s += ".0";
    return s;
  }

  std::string indent() { return std::string(6 + 2 * depth_, ' '); }

  /// A loop index currently in scope, or "1".
  std::string index_or_one() {
    if (scopes_.empty()) return "1";
    return scopes_[static_cast<size_t>(pick(static_cast<int>(scopes_.size())))];
  }

  /// Safe 1-D subscript in [1, 50] given indices range over [1, n=40].
  std::string subscript() {
    switch (pick(4)) {
      case 0: return index_or_one();
      case 1: return index_or_one() + " + " + std::to_string(pick(10));
      case 2: return "mod(" + index_or_one() + "*" +
                     std::to_string(1 + pick(7)) + ", 50) + 1";
      default: return std::to_string(1 + pick(50));
    }
  }

  std::string array_read() {
    const char* arr[] = {"va", "vb", "vc"};
    return std::string(arr[pick(3)]) + "(" + subscript() + ")";
  }

  /// Random real-valued expression.
  std::string expr(int d = 0) {
    if (d >= 2 || pick(3) == 0) {
      switch (pick(4)) {
        case 0: return num(0.25 * (1 + pick(8)));
        case 1: return array_read();
        case 2: return index_or_one() + "*" + num(0.125 * (1 + pick(4)));
        default: return scalar();
      }
    }
    const char* ops[] = {" + ", " - ", "*"};
    return "(" + expr(d + 1) + ops[pick(3)] + expr(d + 1) + ")";
  }

  std::string scalar() {
    const char* s[] = {"s1", "s2", "s3"};
    return s[pick(3)];
  }

  void emit_init() {
    out_ << "      do i0 = 1, 50\n";
    out_ << "        va(i0) = mod(i0*7, 13)*0.25\n";
    out_ << "        vb(i0) = mod(i0*3, 11)*0.5\n";
    out_ << "        vc(i0) = 0.0\n";
    out_ << "      end do\n";
    out_ << "      s1 = 1.0\n      s2 = 0.5\n      s3 = 0.0\n";
  }

  void emit_top_level() {
    emit_loop(/*allow_nest=*/true);
  }

  void emit_loop(bool allow_nest) {
    std::string idx = "i" + std::to_string(++index_counter_);
    out_ << indent() << "do " << idx << " = 1, n\n";
    scopes_.push_back(idx);
    ++depth_;
    int body = 1 + pick(3);
    for (int i = 0; i < body; ++i) emit_statement(allow_nest);
    --depth_;
    scopes_.pop_back();
    out_ << indent() << "end do\n";
  }

  void emit_statement(bool allow_nest) {
    switch (pick(6)) {
      case 0:  // array assignment
        out_ << indent() << array_read() << " = " << expr() << "\n";
        break;
      case 1:  // scalar temp def + use
        out_ << indent() << "t1 = " << expr() << "\n";
        out_ << indent() << array_read() << " = t1*0.5\n";
        break;
      case 2:  // reduction
        out_ << indent() << "s3 = s3 + " << expr() << "\n";
        break;
      case 3:  // conditional
        out_ << indent() << "if (" << expr() << " .gt. " << expr()
             << ") then\n";
        ++depth_;
        out_ << indent() << array_read() << " = " << expr() << "\n";
        --depth_;
        if (pick(2) == 0) {
          out_ << indent() << "else\n";
          ++depth_;
          out_ << indent() << "s2 = s2*0.875 + 0.125\n";
          --depth_;
        }
        out_ << indent() << "end if\n";
        break;
      case 4:  // stencil-like with a distinct source array
        out_ << indent() << "vc(" << index_or_one() << ") = va("
             << index_or_one() << ") + vb(" << index_or_one() << ")*0.5\n";
        break;
      default:
        if (allow_nest && depth_ < 3) {
          emit_loop(/*allow_nest=*/false);
        } else {
          out_ << indent() << scalar() << " = " << expr() << "\n";
        }
        break;
    }
  }

  void emit_checksum() {
    out_ << "      ck = 0.0\n";
    out_ << "      do i9 = 1, 50\n";
    out_ << "        ck = ck + va(i9) + vb(i9)*0.5 + vc(i9)*0.25\n";
    out_ << "      end do\n";
    out_ << "      print *, ck, s1, s2, s3\n";
  }

  std::mt19937 rng_;
  std::ostringstream out_;
  std::vector<std::string> scopes_;
  int depth_ = 0;
  int index_counter_ = 0;
};

class TransformationProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(TransformationProperty, OutputPreservedUnderBothPipelines) {
  ProgramGenerator gen(GetParam());
  std::string source = gen.generate();
  SCOPED_TRACE("seed " + std::to_string(GetParam()) + "\n" + source);

  auto ref = parse_program(source);
  RunResult ref_run = run_program(*ref, MachineConfig{});
  ASSERT_FALSE(ref_run.output.empty());

  for (CompilerMode mode : {CompilerMode::Polaris, CompilerMode::Baseline}) {
    Compiler compiler(mode);
    auto prog = compiler.compile(source);
    MachineConfig cfg;
    cfg.processors = 8;
    RunResult run = run_program(*prog, cfg);
    EXPECT_EQ(ref_run.output, run.output)
        << (mode == CompilerMode::Polaris ? "Polaris" : "baseline")
        << " transformation changed output";
  }
}

TEST_P(TransformationProperty, SpeculationPreservesOutput) {
  ProgramGenerator gen(GetParam() + 10007);
  std::string source = gen.generate();
  SCOPED_TRACE("seed " + std::to_string(GetParam()));

  auto ref = parse_program(source);
  RunResult ref_run = run_program(*ref, MachineConfig{});

  Options opts = Options::polaris();
  opts.runtime_pd_test = true;
  Compiler compiler(opts);
  auto prog = compiler.compile(source);
  MachineConfig cfg;
  cfg.processors = 8;
  RunResult run = run_program(*prog, cfg);
  EXPECT_EQ(ref_run.output, run.output);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformationProperty,
                         ::testing::Range(1u, 33u));

}  // namespace
}  // namespace polaris
