// Source-to-source fixed point: the annotated output of the compiler is
// itself an executable parallel program — re-parsing it re-attaches the
// csrd$ doall annotations, and running it on the simulated machine yields
// the same output AND the same parallel structure without re-analysis.
#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "interp/interp.h"
#include "parser/parser.h"
#include "parser/printer.h"
#include "suite/suite.h"

namespace polaris {
namespace {

TEST(RoundTripTest, DirectivesReattachOnParse) {
  const char* src =
      "      program t\n"
      "      real a(2000)\n"
      "      do i = 1, 2000\n"
      "        r = i*0.5\n"
      "        a(i) = r + 1.0\n"
      "      end do\n"
      "      s = 0.0\n"
      "      do i = 1, 2000\n"
      "        s = s + a(i)\n"
      "      end do\n"
      "      print *, s\n"
      "      end\n";
  Compiler compiler(CompilerMode::Polaris);
  CompileReport report;
  auto prog = compiler.compile(src, &report);
  ASSERT_EQ(report.doall.parallel, 2);

  // Re-parse the printed output: annotations come back without analysis.
  auto reparsed = parse_program(report.annotated_source);
  int parallel = 0, with_reduction = 0, with_private = 0;
  for (DoStmt* d : reparsed->main()->stmts().loops()) {
    if (d->par.is_parallel) ++parallel;
    if (!d->par.reductions.empty()) ++with_reduction;
    if (!d->par.private_vars.empty()) ++with_private;
  }
  EXPECT_EQ(parallel, 2);
  EXPECT_EQ(with_reduction, 1);
  EXPECT_GE(with_private, 1);

  // And it executes in parallel with identical output.
  auto ref = parse_program(src);
  auto ref_run = run_program(*ref, MachineConfig{});
  MachineConfig cfg;
  cfg.processors = 8;
  auto run = run_program(*reparsed, cfg);
  EXPECT_EQ(ref_run.output, run.output);
  EXPECT_EQ(run.parallel_instances, 2);
  EXPECT_GT(run.clock.speedup(), 3.0);
}

TEST(RoundTripTest, SpeculativeDirectiveCarriesShadows) {
  const char* src =
      "      program t\n"
      "      real a(500)\n"
      "      integer idx(500)\n"
      "      do i = 1, 500\n"
      "        idx(i) = 501 - i\n"
      "      end do\n"
      "      do i = 1, 500\n"
      "        a(idx(i)) = i*2.0\n"
      "      end do\n"
      "      print *, a(1), a(500)\n"
      "      end\n";
  Options opts = Options::polaris();
  opts.runtime_pd_test = true;
  Compiler compiler(opts);
  CompileReport report;
  auto prog = compiler.compile(src, &report);
  ASSERT_EQ(report.doall.speculative, 1);
  EXPECT_NE(report.annotated_source.find("speculative doall"),
            std::string::npos);
  EXPECT_NE(report.annotated_source.find("shadow(a)"), std::string::npos);

  auto reparsed = parse_program(report.annotated_source);
  DoStmt* spec = nullptr;
  for (DoStmt* d : reparsed->main()->stmts().loops())
    if (d->par.speculative) spec = d;
  ASSERT_NE(spec, nullptr);
  ASSERT_EQ(spec->par.speculative_arrays.size(), 1u);
  EXPECT_EQ(spec->par.speculative_arrays[0]->name(), "a");

  auto ref = parse_program(src);
  auto ref_run = run_program(*ref, MachineConfig{});
  MachineConfig cfg;
  cfg.processors = 8;
  auto run = run_program(*reparsed, cfg);
  EXPECT_EQ(ref_run.output, run.output);
  EXPECT_EQ(run.speculative_attempts, 1);
  EXPECT_EQ(run.speculative_failures, 0);
}

TEST(RoundTripTest, WholeSuiteOutputIsExecutableInParallel) {
  // For every suite code: compile, print, re-parse, execute the printed
  // program on 8 processors — identical output, and wherever the compiler
  // found parallel loops the re-parsed program runs parallel instances.
  for (const BenchProgram& p : benchmark_suite()) {
    SCOPED_TRACE(p.name);
    Compiler compiler(CompilerMode::Polaris);
    CompileReport report;
    auto prog = compiler.compile(p.source, &report);

    auto ref = parse_program(p.source);
    auto ref_run = run_program(*ref, MachineConfig{});

    auto reparsed = parse_program(report.annotated_source);
    MachineConfig cfg;
    cfg.processors = 8;
    auto run = run_program(*reparsed, cfg);
    EXPECT_EQ(ref_run.output, run.output);
    if (report.doall.parallel > 0) {
      EXPECT_GT(run.parallel_instances, 0);
    }
  }
}

}  // namespace
}  // namespace polaris
