#include "machine/machine.h"

#include <gtest/gtest.h>

namespace polaris {
namespace {

MachineConfig cheap(int p) {
  MachineConfig c;
  c.processors = p;
  c.fork_join_cost = 0;
  c.per_proc_dispatch = 0;
  c.reduction_merge_per_elem = 0;
  c.lastvalue_cost = 0;
  return c;
}

TEST(MachineTest, PerfectSplitWithoutOverheads) {
  std::vector<std::uint64_t> iters(8, 100);
  EXPECT_EQ(schedule_doall(iters, cheap(8)), 100u);
  EXPECT_EQ(schedule_doall(iters, cheap(4)), 200u);
  EXPECT_EQ(schedule_doall(iters, cheap(1)), 800u);
}

TEST(MachineTest, UnevenRemainderGoesToEarlyProcessors) {
  std::vector<std::uint64_t> iters(10, 100);
  // p=4: chunks 3,3,2,2 -> slowest 300.
  EXPECT_EQ(schedule_doall(iters, cheap(4)), 300u);
}

TEST(MachineTest, ImbalancedIterations) {
  // One heavy iteration dominates regardless of p.
  std::vector<std::uint64_t> iters(8, 10);
  iters[3] = 1000;
  EXPECT_GE(schedule_doall(iters, cheap(8)), 1000u);
}

TEST(MachineTest, OverheadsAdded) {
  MachineConfig c = cheap(4);
  c.fork_join_cost = 500;
  c.per_proc_dispatch = 10;
  std::vector<std::uint64_t> iters(4, 100);
  EXPECT_EQ(schedule_doall(iters, c), 100u + 500u + 4u * 10u);
}

TEST(MachineTest, ReductionMergeCost) {
  MachineConfig c = cheap(4);
  c.reduction_merge_per_elem = 8;
  std::vector<std::uint64_t> iters(4, 100);
  std::uint64_t with = schedule_doall(iters, c, /*reduction_elements=*/64);
  std::uint64_t without = schedule_doall(iters, c, 0);
  EXPECT_GT(with, without);
}

TEST(MachineTest, EmptyLoopIsJustOverhead) {
  MachineConfig c = cheap(4);
  c.fork_join_cost = 100;
  std::vector<std::uint64_t> none;
  EXPECT_EQ(schedule_doall(none, c), 100u);
}

TEST(MachineTest, RunClockSpeedup) {
  RunClock clock;
  clock.add_sequential(1000);
  EXPECT_DOUBLE_EQ(clock.speedup(), 1.0);
  clock.serial += 7000;
  clock.parallel += 1000;
  EXPECT_DOUBLE_EQ(clock.speedup(), 4.0);
}

TEST(MachineTest, SpeedupSaturatesWithOverheads) {
  // Fixed overhead bounds speedup below p (Amdahl-like shape).
  std::vector<std::uint64_t> iters(64, 100);
  MachineConfig base = cheap(1);
  std::uint64_t serial = schedule_doall(iters, base);
  double last = 0.0;
  for (int p : {2, 4, 8, 16}) {
    MachineConfig c = cheap(p);
    c.fork_join_cost = 800;
    double s = static_cast<double>(serial) /
               static_cast<double>(schedule_doall(iters, c));
    EXPECT_GT(s, last);
    EXPECT_LT(s, p);
    last = s;
  }
}

}  // namespace
}  // namespace polaris

namespace polaris {
namespace {

TEST(MachineTest, ReductionSchemesOrdering) {
  // With many updates and few elements, Blocked pays per update while
  // Private pays per element: Private must win; Expanded costs more than
  // Private (extra initialization sweep).
  std::vector<std::uint64_t> iters(64, 100);
  MachineConfig c;
  c.processors = 8;
  c.fork_join_cost = 0;
  c.per_proc_dispatch = 0;
  c.lastvalue_cost = 0;
  c.reduction_merge_per_elem = 6;
  c.blocked_sync_cost = 6;

  auto with_scheme = [&](Options::ReductionScheme s) {
    MachineConfig m = c;
    m.reduction_scheme = s;
    return schedule_doall(iters, m, /*elements=*/4, /*lastvalues=*/0,
                          /*updates=*/6400);
  };
  std::uint64_t blocked = with_scheme(Options::ReductionScheme::Blocked);
  std::uint64_t priv = with_scheme(Options::ReductionScheme::Private);
  std::uint64_t expanded = with_scheme(Options::ReductionScheme::Expanded);
  EXPECT_LT(priv, blocked);
  EXPECT_LT(priv, expanded);
  EXPECT_LT(expanded, blocked);
}

TEST(MachineTest, BlockedWinsForHugeSparseAccumulators) {
  // A large histogram touched a few times: merging every element is
  // wasteful, synchronized in-place updates are cheap.
  std::vector<std::uint64_t> iters(64, 100);
  MachineConfig c;
  c.processors = 8;
  c.fork_join_cost = 0;
  c.per_proc_dispatch = 0;
  auto with_scheme = [&](Options::ReductionScheme s) {
    MachineConfig m = c;
    m.reduction_scheme = s;
    return schedule_doall(iters, m, /*elements=*/100000, 0, /*updates=*/64);
  };
  EXPECT_LT(with_scheme(Options::ReductionScheme::Blocked),
            with_scheme(Options::ReductionScheme::Private));
}

}  // namespace
}  // namespace polaris

namespace polaris {
namespace {

TEST(MachineTest, DynamicSchedulingBalancesTriangularWork) {
  // Triangular per-iteration cost (like BDNA's outer loop): static block
  // scheduling loads the last chunk heaviest; self-scheduling balances.
  std::vector<std::uint64_t> iters;
  for (int i = 1; i <= 128; ++i)
    iters.push_back(static_cast<std::uint64_t>(i) * 10);
  MachineConfig stat;
  stat.processors = 8;
  stat.fork_join_cost = 0;
  stat.per_proc_dispatch = 0;
  MachineConfig dyn = stat;
  dyn.scheduling = MachineConfig::Scheduling::Dynamic;
  dyn.dynamic_dispatch_cost = 4;
  EXPECT_LT(schedule_doall(iters, dyn), schedule_doall(iters, stat));
}

TEST(MachineTest, DynamicDispatchCostHurtsUniformWork) {
  std::vector<std::uint64_t> iters(128, 50);
  MachineConfig stat;
  stat.processors = 8;
  stat.fork_join_cost = 0;
  stat.per_proc_dispatch = 0;
  MachineConfig dyn = stat;
  dyn.scheduling = MachineConfig::Scheduling::Dynamic;
  dyn.dynamic_dispatch_cost = 20;
  EXPECT_GT(schedule_doall(iters, dyn), schedule_doall(iters, stat));
}

}  // namespace
}  // namespace polaris
