#include "interp/interp.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace polaris {
namespace {

RunResult run_src(const std::string& src, MachineConfig cfg = {}) {
  auto p = parse_program(src);
  return run_program(*p, cfg);
}

TEST(InterpTest, ArithmeticAndPrint) {
  auto r = run_src(
      "      program t\n"
      "      i = 2 + 3*4\n"
      "      x = 1.5*2.0\n"
      "      print *, i, x\n"
      "      end\n");
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0], "14 3");
}

TEST(InterpTest, IntegerDivisionTruncates) {
  auto r = run_src(
      "      print *, 7/2, (-7)/2, mod(7,2)\n");
  EXPECT_EQ(r.output[0], "3 -3 1");
}

TEST(InterpTest, DoLoopAccumulation) {
  auto r = run_src(
      "      s = 0.0\n"
      "      do i = 1, 10\n"
      "        s = s + i\n"
      "      end do\n"
      "      print *, s, i\n");
  // Sum 1..10 = 55; index after loop = 11.
  EXPECT_EQ(r.output[0], "55 11");
}

TEST(InterpTest, NegativeStepAndZeroTrip) {
  auto r = run_src(
      "      k = 0\n"
      "      do i = 10, 1, -2\n"
      "        k = k + 1\n"
      "      end do\n"
      "      m = 0\n"
      "      do j = 5, 1\n"
      "        m = m + 1\n"
      "      end do\n"
      "      print *, k, m\n");
  EXPECT_EQ(r.output[0], "5 0");
}

TEST(InterpTest, IfElseChain) {
  auto r = run_src(
      "      do i = 1, 4\n"
      "        if (i .eq. 1) then\n"
      "          k = 10\n"
      "        else if (i .eq. 2) then\n"
      "          k = 20\n"
      "        else\n"
      "          k = 30\n"
      "        end if\n"
      "        print *, k\n"
      "      end do\n");
  ASSERT_EQ(r.output.size(), 4u);
  EXPECT_EQ(r.output[0], "10");
  EXPECT_EQ(r.output[1], "20");
  EXPECT_EQ(r.output[2], "30");
  EXPECT_EQ(r.output[3], "30");
}

TEST(InterpTest, LogicalIfAndOperators) {
  auto r = run_src(
      "      x = 2.0\n"
      "      if (x .gt. 1.0 .and. x .lt. 3.0) print *, 'in'\n"
      "      if (.not. (x .eq. 2.0)) print *, 'out'\n");
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0], "in");
}

TEST(InterpTest, ArraysAndBounds) {
  auto r = run_src(
      "      program t\n"
      "      real a(3, 0:2)\n"
      "      do j = 0, 2\n"
      "        do i = 1, 3\n"
      "          a(i, j) = i*10 + j\n"
      "        end do\n"
      "      end do\n"
      "      print *, a(1,0), a(3,2), a(2,1)\n"
      "      end\n");
  EXPECT_EQ(r.output[0], "10 32 21");
}

TEST(InterpTest, OutOfBoundsAborts) {
  EXPECT_THROW(run_src("      program t\n"
                       "      real a(3)\n"
                       "      a(4) = 1.0\n"
                       "      end\n"),
               InternalError);
}

TEST(InterpTest, GotoFlow) {
  auto r = run_src(
      "      program t\n"
      "      i = 0\n"
      "   10 i = i + 1\n"
      "      if (i .lt. 3) goto 10\n"
      "      print *, i\n"
      "      end\n");
  EXPECT_EQ(r.output[0], "3");
}

TEST(InterpTest, DataInitialization) {
  auto r = run_src(
      "      program t\n"
      "      real a(4)\n"
      "      integer k\n"
      "      data a /1.0, 2*2.5, 4.0/\n"
      "      data k /7/\n"
      "      print *, a(1), a(2), a(3), a(4), k\n"
      "      end\n");
  EXPECT_EQ(r.output[0], "1 2.5 2.5 4 7");
}

TEST(InterpTest, SubroutineByReference) {
  auto r = run_src(
      "      program t\n"
      "      x = 1.0\n"
      "      call bump(x)\n"
      "      print *, x\n"
      "      end\n"
      "      subroutine bump(a)\n"
      "      a = a + 1.0\n"
      "      end\n");
  EXPECT_EQ(r.output[0], "2");
}

TEST(InterpTest, ArrayArgumentAliased) {
  auto r = run_src(
      "      program t\n"
      "      real v(5)\n"
      "      call fill(v, 5)\n"
      "      print *, v(1), v(5)\n"
      "      end\n"
      "      subroutine fill(a, n)\n"
      "      real a(n)\n"
      "      do i = 1, n\n"
      "        a(i) = i*1.0\n"
      "      end do\n"
      "      end\n");
  EXPECT_EQ(r.output[0], "1 5");
}

TEST(InterpTest, ArraySectionArgument) {
  // Passing v(3) gives the callee a view starting at element 3.
  auto r = run_src(
      "      program t\n"
      "      real v(6)\n"
      "      call fill(v(3), 2)\n"
      "      print *, v(1), v(3), v(4)\n"
      "      end\n"
      "      subroutine fill(a, n)\n"
      "      real a(n)\n"
      "      do i = 1, n\n"
      "        a(i) = 9.0\n"
      "      end do\n"
      "      end\n");
  EXPECT_EQ(r.output[0], "0 9 9");
}

TEST(InterpTest, ScalarElementCopyRestore) {
  auto r = run_src(
      "      program t\n"
      "      real v(3)\n"
      "      v(2) = 5.0\n"
      "      call bump(v(2))\n"
      "      print *, v(2)\n"
      "      end\n"
      "      subroutine bump(a)\n"
      "      a = a + 1.0\n"
      "      end\n");
  EXPECT_EQ(r.output[0], "6");
}

TEST(InterpTest, UserFunction) {
  auto r = run_src(
      "      program t\n"
      "      y = sq(3.0) + sq(4.0)\n"
      "      print *, y\n"
      "      end\n"
      "      real function sq(x)\n"
      "      sq = x*x\n"
      "      end\n");
  EXPECT_EQ(r.output[0], "25");
}

TEST(InterpTest, CommonBlocksShareStorage) {
  auto r = run_src(
      "      program t\n"
      "      common /blk/ x, y\n"
      "      x = 1.0\n"
      "      y = 2.0\n"
      "      call swap\n"
      "      print *, x, y\n"
      "      end\n"
      "      subroutine swap\n"
      "      common /blk/ x, y\n"
      "      t = x\n"
      "      x = y\n"
      "      y = t\n"
      "      end\n");
  EXPECT_EQ(r.output[0], "2 1");
}

TEST(InterpTest, Intrinsics) {
  auto r = run_src(
      "      print *, abs(-3), max(2, 7, 5), min(1.5, 0.5), sqrt(16.0),\n"
      "     &  sign(3, -1), nint(2.6)\n");
  EXPECT_EQ(r.output[0], "3 7 0.5 4 -3 3");
}

TEST(InterpTest, StopTerminates) {
  auto r = run_src(
      "      print *, 1\n"
      "      stop\n"
      "      print *, 2\n");
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_TRUE(r.stopped);
}

TEST(InterpTest, StopInsideSubroutineTerminates) {
  auto r = run_src(
      "      program t\n"
      "      call quit\n"
      "      print *, 'after'\n"
      "      end\n"
      "      subroutine quit\n"
      "      stop\n"
      "      end\n");
  EXPECT_TRUE(r.stopped);
  EXPECT_TRUE(r.output.empty());
}

TEST(InterpTest, StatementLimitGuards) {
  auto p = parse_program(
      "      program t\n"
      "   10 continue\n"
      "      goto 10\n"
      "      end\n");
  Interpreter interp(*p);
  interp.set_statement_limit(1000);
  EXPECT_THROW(interp.run(), UserError);
}

TEST(InterpTest, CostsAccumulate) {
  auto r = run_src(
      "      s = 0.0\n"
      "      do i = 1, 100\n"
      "        s = s + i*2\n"
      "      end do\n");
  EXPECT_GT(r.clock.serial, 100u);
  EXPECT_EQ(r.clock.serial, r.clock.parallel);  // nothing parallel
}

TEST(InterpTest, ParallelLoopSpeedsUpModeledClock) {
  auto p = parse_program(
      "      program t\n"
      "      real a(4000)\n"
      "      do i = 1, 4000\n"
      "        a(i) = i*2.0 + 1.0\n"
      "      end do\n"
      "      print *, a(123)\n"
      "      end\n");
  // Mark the loop parallel by hand (the driver normally does this).
  DoStmt* loop = p->main()->stmts().loops()[0];
  loop->par.is_parallel = true;
  MachineConfig cfg;
  cfg.processors = 8;
  auto r = run_program(*p, cfg);
  EXPECT_EQ(r.output[0], "247");
  EXPECT_EQ(r.parallel_instances, 1);
  EXPECT_GT(r.clock.speedup(), 4.0);
  EXPECT_LT(r.clock.speedup(), 8.0);
}

TEST(InterpTest, NestedParallelOnlyOutermostCounts) {
  auto p = parse_program(
      "      program t\n"
      "      real a(50,50)\n"
      "      do i = 1, 50\n"
      "        do j = 1, 50\n"
      "          a(i,j) = i + j\n"
      "        end do\n"
      "      end do\n"
      "      end\n");
  for (DoStmt* loop : p->main()->stmts().loops())
    loop->par.is_parallel = true;
  MachineConfig cfg;
  cfg.processors = 4;
  auto r = run_program(*p, cfg);
  EXPECT_EQ(r.parallel_instances, 1);  // inner executed within iterations
}

}  // namespace
}  // namespace polaris
