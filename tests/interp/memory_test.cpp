#include "interp/memory.h"

#include <gtest/gtest.h>

namespace polaris {
namespace {

ArrayStorage make_array(std::vector<std::pair<std::int64_t, std::int64_t>> b) {
  ArrayStorage a;
  a.bounds = std::move(b);
  a.data = std::make_shared<std::vector<Value>>(
      static_cast<std::size_t>(a.element_count()), Value::real(0.0));
  return a;
}

TEST(MemoryTest, ColumnMajorIndexing) {
  // Fortran order: first subscript varies fastest.
  ArrayStorage a = make_array({{1, 3}, {1, 4}});
  EXPECT_EQ(a.element_count(), 12);
  EXPECT_EQ(a.flat_index({1, 1}), 0u);
  EXPECT_EQ(a.flat_index({2, 1}), 1u);
  EXPECT_EQ(a.flat_index({1, 2}), 3u);
  EXPECT_EQ(a.flat_index({3, 4}), 11u);
}

TEST(MemoryTest, NonUnitLowerBounds) {
  ArrayStorage a = make_array({{0, 2}, {-1, 1}});
  EXPECT_EQ(a.element_count(), 9);
  EXPECT_EQ(a.flat_index({0, -1}), 0u);
  EXPECT_EQ(a.flat_index({2, 1}), 8u);
}

TEST(MemoryTest, OffsetViews) {
  // A view starting at element 5 of a 10-element payload, reshaped 1-D.
  ArrayStorage base = make_array({{1, 10}});
  ArrayStorage view;
  view.data = base.data;
  view.offset = 4;  // element 5, 0-based
  view.bounds = {{1, 6}};
  view.at({1}) = Value::real(9.0);
  EXPECT_DOUBLE_EQ(base.at({5}).as_real(), 9.0);
}

TEST(MemoryTest, BoundsViolationAsserts) {
  ArrayStorage a = make_array({{1, 3}});
  EXPECT_THROW(a.flat_index({0}), InternalError);
  EXPECT_THROW(a.flat_index({4}), InternalError);
  EXPECT_THROW(a.flat_index({1, 1}), InternalError);  // rank mismatch
}

TEST(MemoryTest, FrameLocalAndBinding) {
  SymbolTable symtab;
  Symbol* x = symtab.declare("x", Type::real(), SymbolKind::Variable);
  Symbol* y = symtab.declare("y", Type::real(), SymbolKind::Variable);
  Frame f;
  Cell* cx = f.create_local(x);
  cx->scalar = Value::real(2.5);
  EXPECT_EQ(f.lookup(x), cx);
  EXPECT_EQ(f.lookup(y), nullptr);

  Frame g;
  g.bind(y, cx);  // aliasing: by-reference argument semantics
  g.lookup(y)->scalar = Value::real(7.0);
  EXPECT_DOUBLE_EQ(f.lookup(x)->scalar.as_real(), 7.0);
}

TEST(MemoryTest, DoubleBindAsserts) {
  SymbolTable symtab;
  Symbol* x = symtab.declare("x", Type::real(), SymbolKind::Variable);
  Frame f;
  f.create_local(x);
  EXPECT_THROW(f.create_local(x), InternalError);
}

TEST(MemoryTest, CommonStoreSharedByBlockAndName) {
  CommonStore commons;
  EXPECT_EQ(commons.lookup("blk", "x"), nullptr);
  Cell* c = commons.create("blk", "x");
  EXPECT_EQ(commons.lookup("blk", "x"), c);
  EXPECT_EQ(commons.lookup("other", "x"), nullptr);
  EXPECT_THROW(commons.create("blk", "x"), InternalError);
}

TEST(MemoryTest, ValueCoercion) {
  EXPECT_EQ(Value::real(2.9).coerce_to(Type::integer()).as_int(), 2);
  EXPECT_EQ(Value::real(-2.9).coerce_to(Type::integer()).as_int(), -2);
  EXPECT_DOUBLE_EQ(Value::integer(3).coerce_to(Type::real()).as_real(), 3.0);
  EXPECT_THROW(Value::logical(true).as_int(), InternalError);
  EXPECT_THROW(Value::integer(1).as_logical(), InternalError);
  EXPECT_EQ(Value::zero_of(Type::integer()).as_int(), 0);
  EXPECT_FALSE(Value::zero_of(Type::logical()).as_logical());
}

}  // namespace
}  // namespace polaris
