// The top-level unit splitter and the parallel per-unit parse built on it.
// The load-bearing property everywhere: a sliced parse is *indistinguishable*
// from a whole-file parse — same units, same printed source, same
// diagnostics, same line numbers — at any worker count.
#include "parser/splitter.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "parser/printer.h"
#include "suite/suite.h"
#include "support/context.h"

namespace polaris {
namespace {

TEST(SplitterTest, SingleUnit) {
  auto slices = split_units("      program main\n      x = 1\n      end\n");
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].start_line, 1);
  EXPECT_EQ(slices[0].text, "      program main\n      x = 1\n      end\n");
}

TEST(SplitterTest, TwoUnitsCutAfterEnd) {
  const std::string src =
      "      subroutine a\n      end\n"
      "      subroutine b\n      end\n";
  auto slices = split_units(src);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].text, "      subroutine a\n      end\n");
  EXPECT_EQ(slices[0].start_line, 1);
  EXPECT_EQ(slices[1].text, "      subroutine b\n      end\n");
  EXPECT_EQ(slices[1].start_line, 3);
}

TEST(SplitterTest, CommentsBetweenUnitsAttachToNextSlice) {
  const std::string src =
      "      subroutine a\n      end\n"
      "c bridge comment\n\n"
      "      subroutine b\n      end\n";
  auto slices = split_units(src);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].text, "      subroutine a\n      end\n");
  EXPECT_EQ(slices[1].start_line, 3);
  EXPECT_EQ(slices[1].text,
            "c bridge comment\n\n      subroutine b\n      end\n");
}

TEST(SplitterTest, LabeledEndTerminates) {
  const std::string src =
      "      subroutine a\n  100 end\n      subroutine b\n      end\n";
  auto slices = split_units(src);
  ASSERT_EQ(slices.size(), 2u);
}

TEST(SplitterTest, EndWithInlineCommentTerminates) {
  const std::string src =
      "      subroutine a\n      end ! of a\n"
      "      subroutine b\n      end\n";
  auto slices = split_units(src);
  ASSERT_EQ(slices.size(), 2u);
}

TEST(SplitterTest, EndDoAndEndIfAreNotTerminators) {
  const std::string src =
      "      subroutine a\n"
      "      do i = 1, 4\n"
      "      if (i .gt. 2) then\n"
      "      end if\n"
      "      end do\n"
      "      enddo\n"
      "      end\n";
  auto slices = split_units(src);
  ASSERT_EQ(slices.size(), 1u);
}

TEST(SplitterTest, ContinuedLineEndingInEndIsNotATerminator) {
  // "x = y + &\n end" joins to "x = y + end" — one (malformed) logical
  // line, not a unit terminator.
  const std::string src =
      "      subroutine a\n      x = y + &\n     & zend\n      end\n";
  auto slices = split_units(src);
  ASSERT_EQ(slices.size(), 1u);
}

TEST(SplitterTest, TrailingCommentsDropTrailingSliceDirectivesKeepIt) {
  auto dropped = split_units(
      "      subroutine a\n      end\nc trailing chatter\n\n");
  EXPECT_EQ(dropped.size(), 1u);
  auto kept = split_units("      subroutine a\n      end\ncsrd$ doall\n");
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[1].text, "csrd$ doall\n");
}

TEST(SplitterTest, EmptyAndBlankSources) {
  EXPECT_TRUE(split_units("").empty());
  EXPECT_TRUE(split_units("\n\nc nothing here\n").empty());
}

TEST(SplitterTest, SlicesConcatenateToTheSource) {
  for (const auto& bench : benchmark_suite()) {
    auto slices = split_units(bench.source);
    ASSERT_GE(slices.size(), 1u) << bench.name;
    std::string joined;
    for (const auto& s : slices) joined += s.text;
    // Trailing comment/blank lines may be dropped; everything kept must be
    // a byte-exact prefix of the source.
    EXPECT_EQ(bench.source.compare(0, joined.size(), joined), 0)
        << bench.name;
    // start_line of each slice matches its position in the concatenation.
    int line = 1;
    for (const auto& s : slices) {
      EXPECT_EQ(s.start_line, line) << bench.name;
      for (char c : s.text)
        if (c == '\n') ++line;
    }
  }
}

TEST(SplitterTest, SlicedParseMatchesWholeFileParseOverSuite) {
  for (const auto& bench : benchmark_suite()) {
    auto whole = parse_program(bench.source);
    auto slices = split_units(bench.source);
    // Every slice parses on its own, and the unit totals agree with the
    // whole-file parse.
    std::size_t sliced_units = 0;
    for (const auto& s : slices)
      sliced_units += parse_program(s.text)->units().size();
    EXPECT_EQ(sliced_units, whole->units().size()) << bench.name;
  }
}

TEST(ParallelParseTest, JobsCountsProduceIdenticalPrintedSource) {
  for (const auto& bench : benchmark_suite()) {
    CompileContext cc1, cc8;
    auto serial = parse_program(bench.source, &cc1, 1);
    auto parallel = parse_program(bench.source, &cc8, 8);
    EXPECT_EQ(to_source(*serial), to_source(*parallel)) << bench.name;
    ASSERT_EQ(serial->units().size(), parallel->units().size()) << bench.name;
    for (std::size_t u = 0; u < serial->units().size(); ++u) {
      const auto& su = serial->units()[u];
      const auto& pu = parallel->units()[u];
      EXPECT_EQ(su->name(), pu->name());
      // Renumbered ids are a pure function of the text: compare them
      // directly, not modulo a normalization pass.
      const Statement* a = su->stmts().first();
      const Statement* b = pu->stmts().first();
      while (a != nullptr && b != nullptr) {
        EXPECT_EQ(a->id(), b->id()) << bench.name << "/" << su->name();
        a = a->next();
        b = b->next();
      }
      EXPECT_EQ(a == nullptr, b == nullptr);
      ASSERT_EQ(su->symtab().size(), pu->symtab().size());
      for (std::size_t k = 0; k < su->symtab().size(); ++k) {
        EXPECT_EQ(su->symtab().symbols()[k]->name(),
                  pu->symtab().symbols()[k]->name());
        EXPECT_EQ(su->symtab().symbols()[k]->id(),
                  pu->symtab().symbols()[k]->id());
      }
    }
  }
}

TEST(ParallelParseTest, IdsStartAtOneRegardlessOfProcessHistory) {
  // Earlier compilations advance the process-global counters; the
  // renumbering pass must hide that completely.
  auto first = parse_program("      x = 1\n      y = x\n      end\n");
  auto again = parse_program("      x = 1\n      y = x\n      end\n");
  ASSERT_EQ(first->units().size(), 1u);
  ASSERT_EQ(again->units().size(), 1u);
  EXPECT_EQ(first->units()[0]->stmts().first()->id(), 1);
  EXPECT_EQ(again->units()[0]->stmts().first()->id(), 1);
  EXPECT_EQ(first->units()[0]->symtab().symbols()[0]->id(),
            again->units()[0]->symtab().symbols()[0]->id());
}

TEST(ParallelParseTest, MalformedUnitPoisonsOnlyItselfDeterministically) {
  // Unit b is malformed; a and c are fine.  At every jobs count the same
  // textually-first UserError must surface, with whole-file line numbers.
  const std::string src =
      "      subroutine a\n      x = 1\n      end\n"    // lines 1-3
      "      subroutine b\n      x = 'oops\n      end\n"  // lines 4-6
      "      subroutine c\n      y = 2\n      end\n";
  std::string msg1, msg8;
  for (int round = 0; round < 4; ++round) {
    CompileContext cc1, cc8;
    try {
      parse_program(src, &cc1, 1);
      FAIL() << "expected UserError";
    } catch (const UserError& e) {
      if (msg1.empty()) msg1 = e.what();
      EXPECT_EQ(msg1, e.what());
    }
    try {
      parse_program(src, &cc8, 8);
      FAIL() << "expected UserError";
    } catch (const UserError& e) {
      if (msg8.empty()) msg8 = e.what();
      EXPECT_EQ(msg8, e.what());
    }
  }
  EXPECT_EQ(msg1, msg8);
  EXPECT_NE(msg1.find("line 5"), std::string::npos) << msg1;
}

TEST(ParallelParseTest, FirstOfSeveralBadUnitsWins) {
  const std::string src =
      "      subroutine a\n      x = @\n      end\n"
      "      subroutine b\n      y = 'oops\n      end\n";
  for (int jobs : {1, 8}) {
    CompileContext cc;
    try {
      parse_program(src, &cc, jobs);
      FAIL() << "expected UserError";
    } catch (const UserError& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
          << "jobs=" << jobs << ": " << e.what();
    }
  }
}

}  // namespace
}  // namespace polaris
